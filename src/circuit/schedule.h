// ASAP scheduling of a circuit into moments (parallel time steps), and
// derivation of idle ("delay line") locations: a qubit that is alive during
// a moment but not acted on accumulates storage noise and counts as a fault
// location, exactly as in the paper's error model.
#pragma once

#include <cstddef>
#include <vector>

#include "circuit/circuit.h"

namespace eqc::circuit {

struct Schedule {
  /// moments[t] = indices into circuit.ops() executed in time step t.
  std::vector<std::vector<std::size_t>> moments;
  /// idle[t] = qubits alive but unused during time step t.
  std::vector<std::vector<std::uint32_t>> idle;
  /// First / last moment in which each qubit is used (kNoOperand if never).
  std::vector<std::size_t> first_use;
  std::vector<std::size_t> last_use;

  std::size_t depth() const { return moments.size(); }
  std::size_t total_idle_locations() const;
};

/// Greedy ASAP schedule preserving program order per qubit.  Classical
/// data dependences (measure -> classically-controlled op) are respected by
/// treating classical slots like registers with a next-free time as well.
Schedule schedule(const Circuit& circuit);

}  // namespace eqc::circuit
