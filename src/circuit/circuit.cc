#include "circuit/circuit.h"

#include <sstream>

#include "common/assert.h"

namespace eqc::circuit {

Circuit::Circuit(std::size_t num_qubits) : num_qubits_(num_qubits) {
  EQC_EXPECTS(num_qubits > 0);
}

void Circuit::check_qubit(std::uint32_t q) const {
  EQC_EXPECTS(q < num_qubits_);
}

Circuit& Circuit::push(OpKind kind, std::uint32_t q0, std::uint32_t q1,
                       std::uint32_t q2, std::uint32_t carg) {
  Op op;
  op.kind = kind;
  op.q = {q0, q1, q2};
  op.carg = carg;
  const int a = arity(kind);
  for (int i = 0; i < a; ++i) {
    EQC_EXPECTS(op.q[i] != kNoOperand);
    check_qubit(op.q[i]);
    for (int j = 0; j < i; ++j) EQC_EXPECTS(op.q[i] != op.q[j]);
  }
  ops_.push_back(op);
  return *this;
}

Circuit& Circuit::prep_z(std::uint32_t q) { return push(OpKind::PrepZ, q); }
Circuit& Circuit::prep_x(std::uint32_t q) { return push(OpKind::PrepX, q); }
Circuit& Circuit::h(std::uint32_t q) { return push(OpKind::H, q); }
Circuit& Circuit::x(std::uint32_t q) { return push(OpKind::X, q); }
Circuit& Circuit::y(std::uint32_t q) { return push(OpKind::Y, q); }
Circuit& Circuit::z(std::uint32_t q) { return push(OpKind::Z, q); }
Circuit& Circuit::s(std::uint32_t q) { return push(OpKind::S, q); }
Circuit& Circuit::sdg(std::uint32_t q) { return push(OpKind::Sdg, q); }
Circuit& Circuit::t(std::uint32_t q) { return push(OpKind::T, q); }
Circuit& Circuit::tdg(std::uint32_t q) { return push(OpKind::Tdg, q); }
Circuit& Circuit::cnot(std::uint32_t c, std::uint32_t t) {
  return push(OpKind::CNOT, c, t);
}
Circuit& Circuit::cz(std::uint32_t a, std::uint32_t b) {
  return push(OpKind::CZ, a, b);
}
Circuit& Circuit::cs(std::uint32_t c, std::uint32_t t) {
  return push(OpKind::CS, c, t);
}
Circuit& Circuit::csdg(std::uint32_t c, std::uint32_t t) {
  return push(OpKind::CSdg, c, t);
}
Circuit& Circuit::swap(std::uint32_t a, std::uint32_t b) {
  return push(OpKind::Swap, a, b);
}
Circuit& Circuit::ccx(std::uint32_t c0, std::uint32_t c1, std::uint32_t t) {
  return push(OpKind::CCX, c0, c1, t);
}
Circuit& Circuit::ccz(std::uint32_t a, std::uint32_t b, std::uint32_t c) {
  return push(OpKind::CCZ, a, b, c);
}
Circuit& Circuit::idle(std::uint32_t q) { return push(OpKind::Idle, q); }

std::uint32_t Circuit::measure_z(std::uint32_t q) {
  const auto slot = static_cast<std::uint32_t>(num_cbits_++);
  push(OpKind::MeasureZ, q, kNoOperand, kNoOperand, slot);
  return slot;
}

std::uint32_t Circuit::add_classical_func(ClassicalFunc f) {
  EQC_EXPECTS(f != nullptr);
  funcs_.push_back(std::move(f));
  return static_cast<std::uint32_t>(funcs_.size() - 1);
}

std::uint32_t Circuit::cbit_func(std::uint32_t slot) {
  return add_classical_func(
      [slot](const std::vector<bool>& bits) { return bits.at(slot); });
}

Circuit& Circuit::x_if(std::uint32_t f, std::uint32_t q) {
  EQC_EXPECTS(f < funcs_.size());
  return push(OpKind::XIfC, q, kNoOperand, kNoOperand, f);
}
Circuit& Circuit::z_if(std::uint32_t f, std::uint32_t q) {
  EQC_EXPECTS(f < funcs_.size());
  return push(OpKind::ZIfC, q, kNoOperand, kNoOperand, f);
}
Circuit& Circuit::s_if(std::uint32_t f, std::uint32_t q) {
  EQC_EXPECTS(f < funcs_.size());
  return push(OpKind::SIfC, q, kNoOperand, kNoOperand, f);
}
Circuit& Circuit::sdg_if(std::uint32_t f, std::uint32_t q) {
  EQC_EXPECTS(f < funcs_.size());
  return push(OpKind::SdgIfC, q, kNoOperand, kNoOperand, f);
}
Circuit& Circuit::cnot_if(std::uint32_t f, std::uint32_t c, std::uint32_t t) {
  EQC_EXPECTS(f < funcs_.size());
  return push(OpKind::CNOTIfC, c, t, kNoOperand, f);
}
Circuit& Circuit::cz_if(std::uint32_t f, std::uint32_t a, std::uint32_t b) {
  EQC_EXPECTS(f < funcs_.size());
  return push(OpKind::CZIfC, a, b, kNoOperand, f);
}

Circuit& Circuit::append(const Circuit& other) {
  EQC_EXPECTS(other.num_qubits_ == num_qubits_);
  const auto cbit_base = static_cast<std::uint32_t>(num_cbits_);
  const auto func_base = static_cast<std::uint32_t>(funcs_.size());
  for (const auto& f : other.funcs_) {
    // Re-base: the imported condition sees the imported measurement slots.
    funcs_.push_back([f, cbit_base](const std::vector<bool>& bits) {
      std::vector<bool> shifted(bits.begin() + cbit_base, bits.end());
      return f(shifted);
    });
  }
  for (Op op : other.ops_) {
    if (op.kind == OpKind::MeasureZ)
      op.carg += cbit_base;
    else if (is_classically_controlled(op.kind))
      op.carg += func_base;
    ops_.push_back(op);
  }
  num_cbits_ += other.num_cbits_;
  return *this;
}

Circuit inverse(const Circuit& c) {
  Circuit inv(c.num_qubits());
  const auto& ops = c.ops();
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    const Op& op = *it;
    switch (op.kind) {
      case OpKind::H: inv.h(op.q[0]); break;
      case OpKind::X: inv.x(op.q[0]); break;
      case OpKind::Y: inv.y(op.q[0]); break;
      case OpKind::Z: inv.z(op.q[0]); break;
      case OpKind::S: inv.sdg(op.q[0]); break;
      case OpKind::Sdg: inv.s(op.q[0]); break;
      case OpKind::T: inv.tdg(op.q[0]); break;
      case OpKind::Tdg: inv.t(op.q[0]); break;
      case OpKind::CNOT: inv.cnot(op.q[0], op.q[1]); break;
      case OpKind::CZ: inv.cz(op.q[0], op.q[1]); break;
      case OpKind::CS: inv.csdg(op.q[0], op.q[1]); break;
      case OpKind::CSdg: inv.cs(op.q[0], op.q[1]); break;
      case OpKind::Swap: inv.swap(op.q[0], op.q[1]); break;
      case OpKind::CCX: inv.ccx(op.q[0], op.q[1], op.q[2]); break;
      case OpKind::CCZ: inv.ccz(op.q[0], op.q[1], op.q[2]); break;
      default:
        throw ContractViolation(
            "inverse(): circuit contains a non-unitary op: " +
            std::string(name(op.kind)));
    }
  }
  return inv;
}

std::string Circuit::to_string() const {
  std::ostringstream os;
  for (const Op& op : ops_) {
    os << name(op.kind);
    for (int i = 0; i < arity(op.kind); ++i) os << ' ' << op.q[i];
    if (op.carg != kNoOperand) os << " c" << op.carg;
    os << '\n';
  }
  return os.str();
}

}  // namespace eqc::circuit
