#include "circuit/tab_backend.h"

#include "common/assert.h"

namespace eqc::circuit {

void TabBackend::t(std::size_t) {
  throw ContractViolation("TabBackend: T gate is not Clifford");
}
void TabBackend::tdg(std::size_t) {
  throw ContractViolation("TabBackend: Tdg gate is not Clifford");
}

void TabBackend::cs(std::size_t c, std::size_t t) {
  // Lowered when the control is classical (the classical-ancilla regime).
  if (tab_.is_deterministic_z(c)) {
    if (tab_.deterministic_z_value(c)) tab_.s(t);
    return;
  }
  throw ContractViolation(
      "TabBackend: controlled-S with non-classical control is not Clifford");
}

void TabBackend::csdg(std::size_t c, std::size_t t) {
  if (tab_.is_deterministic_z(c)) {
    if (tab_.deterministic_z_value(c)) tab_.sdg(t);
    return;
  }
  throw ContractViolation(
      "TabBackend: controlled-Sdg with non-classical control is not Clifford");
}

void TabBackend::ccx(std::size_t c0, std::size_t c1, std::size_t t) {
  // Lower using whichever control is classical (deterministic Z value).
  if (tab_.is_deterministic_z(c0)) {
    if (tab_.deterministic_z_value(c0)) tab_.cnot(c1, t);
    return;
  }
  if (tab_.is_deterministic_z(c1)) {
    if (tab_.deterministic_z_value(c1)) tab_.cnot(c0, t);
    return;
  }
  throw ContractViolation(
      "TabBackend: CCX with both controls non-classical cannot be lowered");
}

void TabBackend::ccz(std::size_t a, std::size_t b, std::size_t c) {
  // CCZ is symmetric: any deterministic participant lowers it.
  const std::size_t qs[3] = {a, b, c};
  for (int i = 0; i < 3; ++i) {
    if (tab_.is_deterministic_z(qs[i])) {
      if (tab_.deterministic_z_value(qs[i]))
        tab_.cz(qs[(i + 1) % 3], qs[(i + 2) % 3]);
      return;
    }
  }
  throw ContractViolation(
      "TabBackend: CCZ with no classical participant cannot be lowered");
}

}  // namespace eqc::circuit
