#include "circuit/execute.h"

#include <algorithm>

#include "common/assert.h"

namespace eqc::circuit {

namespace {

std::vector<std::uint32_t> op_qubits(const Op& op) {
  std::vector<std::uint32_t> qs;
  for (int k = 0; k < arity(op.kind); ++k) qs.push_back(op.q[k]);
  return qs;
}

FaultSite::Kind site_kind(OpKind k) {
  switch (k) {
    case OpKind::PrepZ:
    case OpKind::PrepX:
      return FaultSite::Kind::PrepOutput;
    case OpKind::MeasureZ:
      return FaultSite::Kind::MeasureInput;
    case OpKind::Idle:
      return FaultSite::Kind::Idle;
    default:
      return FaultSite::Kind::GateOutput;
  }
}

void apply_op(const Circuit& circuit, const Op& op, Backend& b,
              std::vector<bool>& cbits) {
  auto cond = [&](std::uint32_t f) {
    return circuit.classical_funcs().at(f)(cbits);
  };
  switch (op.kind) {
    case OpKind::PrepZ: b.prep_z(op.q[0]); break;
    case OpKind::PrepX: b.prep_x(op.q[0]); break;
    case OpKind::H: b.h(op.q[0]); break;
    case OpKind::X: b.x(op.q[0]); break;
    case OpKind::Y: b.y(op.q[0]); break;
    case OpKind::Z: b.z(op.q[0]); break;
    case OpKind::S: b.s(op.q[0]); break;
    case OpKind::Sdg: b.sdg(op.q[0]); break;
    case OpKind::T: b.t(op.q[0]); break;
    case OpKind::Tdg: b.tdg(op.q[0]); break;
    case OpKind::CNOT: b.cnot(op.q[0], op.q[1]); break;
    case OpKind::CZ: b.cz(op.q[0], op.q[1]); break;
    case OpKind::CS: b.cs(op.q[0], op.q[1]); break;
    case OpKind::CSdg: b.csdg(op.q[0], op.q[1]); break;
    case OpKind::Swap: b.swap(op.q[0], op.q[1]); break;
    case OpKind::CCX: b.ccx(op.q[0], op.q[1], op.q[2]); break;
    case OpKind::CCZ: b.ccz(op.q[0], op.q[1], op.q[2]); break;
    case OpKind::MeasureZ:
      cbits.at(op.carg) = b.measure_z(op.q[0]);
      break;
    case OpKind::XIfC:
      if (cond(op.carg)) b.x(op.q[0]);
      break;
    case OpKind::ZIfC:
      if (cond(op.carg)) b.z(op.q[0]);
      break;
    case OpKind::SIfC:
      if (cond(op.carg)) b.s(op.q[0]);
      break;
    case OpKind::SdgIfC:
      if (cond(op.carg)) b.sdg(op.q[0]);
      break;
    case OpKind::CNOTIfC:
      if (cond(op.carg)) b.cnot(op.q[0], op.q[1]);
      break;
    case OpKind::CZIfC:
      if (cond(op.carg)) b.cz(op.q[0], op.q[1]);
      break;
    case OpKind::Idle:
      break;  // noise-only op
  }
}

}  // namespace

ExecResult execute(const Circuit& circuit, Backend& backend,
                   FaultInjector* injector, const ExecOptions& options) {
  EQC_EXPECTS(backend.num_qubits() >= circuit.num_qubits());
  const Schedule sched = schedule(circuit);
  const auto& ops = circuit.ops();

  ExecResult result;
  result.cbits.assign(circuit.num_cbits(), false);

  std::size_t ordinal = 0;
  auto visit = [&](FaultSite::Kind kind, std::size_t moment,
                   std::size_t op_index, std::vector<std::uint32_t> qubits) {
    if (injector != nullptr) {
      FaultSite site;
      site.kind = kind;
      site.ordinal = ordinal;
      site.moment = moment;
      site.op_index = op_index;
      site.qubits = std::move(qubits);
      injector->visit(site, backend);
    }
    ++ordinal;
  };

  if (options.include_input_sites) {
    const std::size_t kNever = ~std::size_t{0};
    for (std::uint32_t q = 0; q < circuit.num_qubits(); ++q)
      if (sched.first_use[q] != kNever)
        visit(FaultSite::Kind::Input, 0, FaultSite::kNoOp, {q});
  }

  for (std::size_t t = 0; t < sched.moments.size(); ++t) {
    for (std::size_t idx : sched.moments[t]) {
      const Op& op = ops[idx];
      if (op.kind == OpKind::MeasureZ) {
        // Fault strikes before the readout (models readout error).
        visit(FaultSite::Kind::MeasureInput, t, idx, op_qubits(op));
        apply_op(circuit, op, backend, result.cbits);
      } else {
        apply_op(circuit, op, backend, result.cbits);
        visit(site_kind(op.kind), t, idx, op_qubits(op));
      }
    }
    for (std::uint32_t q : sched.idle[t])
      visit(FaultSite::Kind::Idle, t, FaultSite::kNoOp, {q});
  }
  return result;
}

void PlantedInjector::plant(std::size_t ordinal, pauli::PauliString fault) {
  planted_.emplace_back(ordinal, std::move(fault));
  visited_.push_back(false);
}

void PlantedInjector::visit(const FaultSite& site, Backend& backend) {
  for (std::size_t i = 0; i < planted_.size(); ++i) {
    const auto& [ord, fault] = planted_[i];
    if (ord != site.ordinal) continue;
    // The planted fault must act within the site's qubit set.
    for (std::size_t q : fault.support())
      EQC_EXPECTS(std::find(site.qubits.begin(), site.qubits.end(),
                            static_cast<std::uint32_t>(q)) !=
                  site.qubits.end());
    backend.apply_pauli(fault);
    visited_[i] = true;
  }
}

bool PlantedInjector::all_planted_visited() const {
  return std::all_of(visited_.begin(), visited_.end(),
                     [](bool v) { return v; });
}

std::vector<std::size_t> PlantedInjector::unvisited_ordinals() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < planted_.size(); ++i)
    if (!visited_[i]) out.push_back(planted_[i].first);
  return out;
}

std::vector<FaultSite> enumerate_fault_sites(const Circuit& circuit,
                                             const ExecOptions& options) {
  // Site enumeration is a pure function of the schedule; no simulation
  // needed.  This mirrors execute()'s visitation order exactly.
  const Schedule sched = schedule(circuit);
  const auto& ops = circuit.ops();
  std::vector<FaultSite> sites;
  std::size_t ordinal = 0;

  auto add = [&](FaultSite::Kind kind, std::size_t moment,
                 std::size_t op_index, std::vector<std::uint32_t> qubits) {
    FaultSite site;
    site.kind = kind;
    site.ordinal = ordinal++;
    site.moment = moment;
    site.op_index = op_index;
    site.qubits = std::move(qubits);
    sites.push_back(std::move(site));
  };

  if (options.include_input_sites) {
    const std::size_t kNever = ~std::size_t{0};
    for (std::uint32_t q = 0; q < circuit.num_qubits(); ++q)
      if (sched.first_use[q] != kNever)
        add(FaultSite::Kind::Input, 0, FaultSite::kNoOp, {q});
  }
  for (std::size_t t = 0; t < sched.moments.size(); ++t) {
    for (std::size_t idx : sched.moments[t])
      add(site_kind(ops[idx].kind), t, idx, op_qubits(ops[idx]));
    for (std::uint32_t q : sched.idle[t])
      add(FaultSite::Kind::Idle, t, FaultSite::kNoOp, {q});
  }
  return sites;
}

}  // namespace eqc::circuit
