// Circuit execution with explicit fault sites.
//
// The executor walks the ASAP schedule moment by moment and, at every fault
// location — input, prep output, gate output, measurement input, delay line —
// gives an optional FaultInjector the chance to apply a Pauli error.  The
// site enumeration order is deterministic, which is what lets the analysis
// module plant specific single faults and fault pairs and replay the circuit
// exactly (the paper's "count the potential places for two errors"
// methodology).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "circuit/backend.h"
#include "circuit/circuit.h"
#include "circuit/schedule.h"

namespace eqc::circuit {

struct FaultSite {
  enum class Kind : std::uint8_t {
    Input,         ///< error on an input qubit before the circuit starts
    PrepOutput,    ///< error after an ancilla (re-)preparation
    GateOutput,    ///< error after a unitary gate
    MeasureInput,  ///< error right before a measurement
    Idle,          ///< storage error on a waiting qubit ("delay line")
  };

  Kind kind;
  std::size_t ordinal;  ///< position in the deterministic visitation order
  std::size_t moment;
  std::size_t op_index;  ///< index into circuit.ops(); kNoOp for Input/Idle
  std::vector<std::uint32_t> qubits;  ///< qubits the fault may act on

  static constexpr std::size_t kNoOp = ~std::size_t{0};
};

/// Visitor invoked at every fault site during execution.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  /// May call backend.apply_pauli() to inject an error at this site.
  virtual void visit(const FaultSite& site, Backend& backend) = 0;
};

struct ExecOptions {
  /// Emit an Input fault site for every used qubit before the first moment.
  bool include_input_sites = false;
};

struct ExecResult {
  std::vector<bool> cbits;
};

/// Runs `circuit` on `backend`; throws if the backend rejects an op.
ExecResult execute(const Circuit& circuit, Backend& backend,
                   FaultInjector* injector = nullptr,
                   const ExecOptions& options = {});

/// Injector that only records the visited sites (used to enumerate the
/// fault locations of a circuit without disturbing it).
class SiteCollector final : public FaultInjector {
 public:
  void visit(const FaultSite& site, Backend&) override {
    sites_.push_back(site);
  }
  const std::vector<FaultSite>& sites() const { return sites_; }

 private:
  std::vector<FaultSite> sites_;
};

/// Injector that applies pre-chosen Paulis at pre-chosen site ordinals.
class PlantedInjector final : public FaultInjector {
 public:
  /// `fault` must act only on the site's qubits (checked at visit time).
  void plant(std::size_t ordinal, pauli::PauliString fault);
  void visit(const FaultSite& site, Backend& backend) override;

  /// True iff every planted fault's ordinal was visited by an execution.
  /// A false return means a plant silently did nothing — typically a stale
  /// ordinal kept across a circuit edit; callers should treat it as a bug.
  bool all_planted_visited() const;
  /// Ordinals of plants that were never visited (diagnostics).
  std::vector<std::size_t> unvisited_ordinals() const;

 private:
  std::vector<std::pair<std::size_t, pauli::PauliString>> planted_;
  std::vector<bool> visited_;
};

/// Enumerates all fault sites of `circuit` (runs it once on a throwaway
/// tableau backend when `clifford_ok`, otherwise on a state vector).
std::vector<FaultSite> enumerate_fault_sites(const Circuit& circuit,
                                             const ExecOptions& options = {});

}  // namespace eqc::circuit
