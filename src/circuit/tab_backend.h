// Stabilizer-tableau implementation of the Backend interface.
//
// Non-Clifford handling:
//  * T / Tdg throw — they are never needed in the circuits this backend runs.
//  * CCX / CCZ are *lowered*: if at least one participating control is in a
//    deterministic Z-basis state (the "classical ancilla" regime of the
//    paper) the gate reduces to identity or CNOT/CZ, which are Clifford.
//    This is not a hack: the paper's Sec. 5 observation is precisely that
//    classical-basis controls make these gates classical reversible logic.
#pragma once

#include "circuit/backend.h"
#include "stab/tableau.h"

namespace eqc::circuit {

// Not `final`: src/testing fuzzes the backend pair by subclassing this with
// deliberately wrong gate implementations (planted bugs) and checking that
// the differential oracle flags them.
class TabBackend : public Backend {
 public:
  TabBackend(std::size_t num_qubits, Rng rng)
      : tab_(num_qubits), rng_(rng) {}

  stab::Tableau& tableau() { return tab_; }
  const stab::Tableau& tableau() const { return tab_; }

  std::size_t num_qubits() const override { return tab_.num_qubits(); }

  void prep_z(std::size_t q) override { tab_.reset(q, rng_); }
  void prep_x(std::size_t q) override {
    tab_.reset(q, rng_);
    tab_.h(q);
  }
  void h(std::size_t q) override { tab_.h(q); }
  void x(std::size_t q) override { tab_.x(q); }
  void y(std::size_t q) override { tab_.y(q); }
  void z(std::size_t q) override { tab_.z(q); }
  void s(std::size_t q) override { tab_.s(q); }
  void sdg(std::size_t q) override { tab_.sdg(q); }
  [[noreturn]] void t(std::size_t q) override;
  [[noreturn]] void tdg(std::size_t q) override;
  void cnot(std::size_t c, std::size_t t) override { tab_.cnot(c, t); }
  void cz(std::size_t a, std::size_t b) override { tab_.cz(a, b); }
  void cs(std::size_t c, std::size_t t) override;
  void csdg(std::size_t c, std::size_t t) override;
  void swap(std::size_t a, std::size_t b) override { tab_.swap(a, b); }
  void ccx(std::size_t c0, std::size_t c1, std::size_t t) override;
  void ccz(std::size_t a, std::size_t b, std::size_t c) override;

  bool measure_z(std::size_t q) override { return tab_.measure(q, rng_); }
  double expectation_z(std::size_t q) const override {
    return tab_.expectation_z(q);
  }
  void apply_pauli(const pauli::PauliString& p) override {
    tab_.apply_pauli(p);
  }
  Rng& rng() override { return rng_; }

 private:
  stab::Tableau tab_;
  Rng rng_;
};

}  // namespace eqc::circuit
