// Canonical 64-bit circuit fingerprint (FNV-1a over the op stream).
//
// Two circuits fingerprint equal iff they have the same width and emit the
// same ops in the same order with the same operands — the byte-identity
// notion used by the golden-equivalence contract (tests/test_golden_equiv):
// a generic gadget instantiated with (Steane, k = 1, paper noise) must
// fingerprint-match the pre-refactor hard-wired builder it replaced.
#pragma once

#include <cstdint>

#include "circuit/circuit.h"

namespace eqc::circuit {

inline std::uint64_t fingerprint(const Circuit& c) {
  constexpr std::uint64_t kOffset = 1469598103934665603ULL;
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  auto mix = [](std::uint64_t h, std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= kPrime;
    }
    return h;
  };
  std::uint64_t h = kOffset;
  h = mix(h, c.num_qubits(), 8);
  for (const auto& op : c.ops()) {
    h = mix(h, static_cast<std::uint64_t>(op.kind), 1);
    h = mix(h, op.q[0], 4);
    h = mix(h, op.q[1], 4);
    h = mix(h, op.q[2], 4);
    h = mix(h, op.carg, 4);
  }
  return h;
}

}  // namespace eqc::circuit
