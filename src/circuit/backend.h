// Simulation backend interface.
//
// The executor drives a Backend; two implementations exist:
//  * SvBackend  — exact dense state vector (any op, <= ~24 qubits);
//  * TabBackend — CHP stabilizer tableau (Clifford only; CCX/CCZ are lowered
//    when their controls are "classical", i.e. deterministic in the Z basis —
//    which is exactly the regime the paper's classical-ancilla technique
//    guarantees).
#pragma once

#include <cstddef>

#include "common/rng.h"
#include "pauli/pauli_string.h"

namespace eqc::circuit {

class Backend {
 public:
  virtual ~Backend() = default;

  virtual std::size_t num_qubits() const = 0;

  virtual void prep_z(std::size_t q) = 0;
  virtual void prep_x(std::size_t q) = 0;
  virtual void h(std::size_t q) = 0;
  virtual void x(std::size_t q) = 0;
  virtual void y(std::size_t q) = 0;
  virtual void z(std::size_t q) = 0;
  virtual void s(std::size_t q) = 0;
  virtual void sdg(std::size_t q) = 0;
  virtual void t(std::size_t q) = 0;
  virtual void tdg(std::size_t q) = 0;
  virtual void cnot(std::size_t c, std::size_t t) = 0;
  virtual void cz(std::size_t a, std::size_t b) = 0;
  virtual void cs(std::size_t control, std::size_t target) = 0;
  virtual void csdg(std::size_t control, std::size_t target) = 0;
  virtual void swap(std::size_t a, std::size_t b) = 0;
  virtual void ccx(std::size_t c0, std::size_t c1, std::size_t t) = 0;
  virtual void ccz(std::size_t a, std::size_t b, std::size_t c) = 0;

  virtual bool measure_z(std::size_t q) = 0;
  virtual double expectation_z(std::size_t q) const = 0;
  virtual void apply_pauli(const pauli::PauliString& p) = 0;

  /// RNG used for measurement collapse / resets.
  virtual Rng& rng() = 0;
};

}  // namespace eqc::circuit
