#include "circuit/schedule.h"

#include <algorithm>

#include "common/assert.h"

namespace eqc::circuit {

std::size_t Schedule::total_idle_locations() const {
  std::size_t n = 0;
  for (const auto& qs : idle) n += qs.size();
  return n;
}

Schedule schedule(const Circuit& circuit) {
  const std::size_t nq = circuit.num_qubits();
  const std::size_t kNever = ~std::size_t{0};

  Schedule out;
  out.first_use.assign(nq, kNever);
  out.last_use.assign(nq, kNever);

  std::vector<std::size_t> qubit_free(nq, 0);
  // Classical slots become available one step after the measurement that
  // writes them; a classically controlled op must come strictly later.
  std::vector<std::size_t> cbit_ready(circuit.num_cbits(), 0);

  const auto& ops = circuit.ops();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    std::size_t slot = 0;
    for (int k = 0; k < arity(op.kind); ++k)
      slot = std::max(slot, qubit_free[op.q[k]]);
    if (is_classically_controlled(op.kind)) {
      // Conservative: depends on every classical bit written so far.
      for (std::size_t c = 0; c < cbit_ready.size(); ++c)
        slot = std::max(slot, cbit_ready[c]);
    }
    if (out.moments.size() <= slot) out.moments.resize(slot + 1);
    out.moments[slot].push_back(i);
    for (int k = 0; k < arity(op.kind); ++k) {
      const std::uint32_t q = op.q[k];
      qubit_free[q] = slot + 1;
      if (out.first_use[q] == kNever) out.first_use[q] = slot;
      out.last_use[q] = slot;
    }
    if (op.kind == OpKind::MeasureZ) cbit_ready[op.carg] = slot + 1;
  }

  // Idle locations: alive (between first and last use) but unused.
  out.idle.resize(out.moments.size());
  for (std::size_t t = 0; t < out.moments.size(); ++t) {
    std::vector<bool> used(nq, false);
    for (std::size_t idx : out.moments[t])
      for (int k = 0; k < arity(ops[idx].kind); ++k) used[ops[idx].q[k]] = true;
    for (std::uint32_t q = 0; q < nq; ++q) {
      if (used[q]) continue;
      if (out.first_use[q] == kNever) continue;
      if (t > out.first_use[q] && t < out.last_use[q]) out.idle[t].push_back(q);
    }
  }
  return out;
}

}  // namespace eqc::circuit
