// State-vector implementation of the Backend interface.
#pragma once

#include "circuit/backend.h"
#include "qsim/state_vector.h"

namespace eqc::circuit {

class SvBackend final : public Backend {
 public:
  SvBackend(std::size_t num_qubits, Rng rng)
      : state_(num_qubits), rng_(rng) {}
  /// Wraps an existing state (moved in).
  SvBackend(qsim::StateVector state, Rng rng)
      : state_(std::move(state)), rng_(rng) {}

  qsim::StateVector& state() { return state_; }
  const qsim::StateVector& state() const { return state_; }

  std::size_t num_qubits() const override { return state_.num_qubits(); }

  void prep_z(std::size_t q) override { state_.reset(q, rng_); }
  void prep_x(std::size_t q) override;
  void h(std::size_t q) override;
  void x(std::size_t q) override;
  void y(std::size_t q) override;
  void z(std::size_t q) override;
  void s(std::size_t q) override;
  void sdg(std::size_t q) override;
  void t(std::size_t q) override;
  void tdg(std::size_t q) override;
  void cnot(std::size_t c, std::size_t t) override { state_.apply_cnot(c, t); }
  void cz(std::size_t a, std::size_t b) override { state_.apply_cz(a, b); }
  void cs(std::size_t c, std::size_t t) override;
  void csdg(std::size_t c, std::size_t t) override;
  void swap(std::size_t a, std::size_t b) override { state_.apply_swap(a, b); }
  void ccx(std::size_t c0, std::size_t c1, std::size_t t) override;
  void ccz(std::size_t a, std::size_t b, std::size_t c) override;

  bool measure_z(std::size_t q) override { return state_.measure(q, rng_); }
  double expectation_z(std::size_t q) const override {
    return state_.expectation_z(q);
  }
  void apply_pauli(const pauli::PauliString& p) override {
    state_.apply_pauli(p);
  }
  Rng& rng() override { return rng_; }

 private:
  qsim::StateVector state_;
  Rng rng_;
};

}  // namespace eqc::circuit
