// State-vector implementation of the Backend interface.
//
// Adjacent single-qubit gates on the same qubit are FUSED: each gate
// accumulates into a pending per-qubit 2x2 unitary (a cheap matrix-matrix
// product) and only the product touches the exponentially sized amplitude
// array — via StateVector::apply1, whose shape dispatch keeps diagonal /
// anti-diagonal products on the specialized kernels.  Pending gates are
// flushed before any operation that consumes the involved qubits (2-qubit
// gates flush just their operands; measurement, Pauli injection and state
// readout flush everything), so observable behavior matches the eager
// backend up to floating-point association.
#pragma once

#include <vector>

#include "circuit/backend.h"
#include "qsim/state_vector.h"

namespace eqc::circuit {

class SvBackend final : public Backend {
 public:
  SvBackend(std::size_t num_qubits, Rng rng)
      : state_(num_qubits), rng_(rng), pending_(num_qubits) {}
  /// Wraps an existing state (moved in).
  SvBackend(qsim::StateVector state, Rng rng)
      : state_(std::move(state)), rng_(rng), pending_(state_.num_qubits()) {}

  qsim::StateVector& state() {
    flush_all();
    return state_;
  }
  const qsim::StateVector& state() const {
    flush_all();
    return state_;
  }

  std::size_t num_qubits() const override { return state_.num_qubits(); }

  void prep_z(std::size_t q) override {
    flush_all();
    state_.reset(q, rng_);
  }
  void prep_x(std::size_t q) override;
  void h(std::size_t q) override;
  void x(std::size_t q) override;
  void y(std::size_t q) override;
  void z(std::size_t q) override;
  void s(std::size_t q) override;
  void sdg(std::size_t q) override;
  void t(std::size_t q) override;
  void tdg(std::size_t q) override;
  void cnot(std::size_t c, std::size_t t) override {
    flush(c);
    flush(t);
    state_.apply_cnot(c, t);
  }
  void cz(std::size_t a, std::size_t b) override {
    flush(a);
    flush(b);
    state_.apply_cz(a, b);
  }
  void cs(std::size_t c, std::size_t t) override;
  void csdg(std::size_t c, std::size_t t) override;
  void swap(std::size_t a, std::size_t b) override {
    flush(a);
    flush(b);
    state_.apply_swap(a, b);
  }
  void ccx(std::size_t c0, std::size_t c1, std::size_t t) override;
  void ccz(std::size_t a, std::size_t b, std::size_t c) override;

  bool measure_z(std::size_t q) override {
    flush_all();
    return state_.measure(q, rng_);
  }
  double expectation_z(std::size_t q) const override {
    flush_all();
    return state_.expectation_z(q);
  }
  void apply_pauli(const pauli::PauliString& p) override {
    flush_all();
    state_.apply_pauli(p);
  }
  Rng& rng() override { return rng_; }

 private:
  /// Accumulates `u` onto qubit q's pending product.
  void fuse(std::size_t q, const Mat2& u);
  /// Applies and clears qubit q's pending product, if any.
  void flush(std::size_t q) const;
  void flush_all() const;

  struct Pending {
    bool active = false;
    Mat2 u;
  };

  /// mutable: const readers (state(), expectation_z) must be able to flush
  /// pending gates — the amplitudes they observe are the same either way,
  /// flushing only moves when the arithmetic happens.
  mutable qsim::StateVector state_;
  Rng rng_;
  mutable std::vector<Pending> pending_;
};

}  // namespace eqc::circuit
