// Circuit container + fluent builder.
//
// A Circuit owns a fixed-width qubit register, an op list, the classical
// bits written by measurements, and the classical condition functions used
// by the measurement-based baseline protocols.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "circuit/op.h"

namespace eqc::circuit {

/// Classical predicate over the measured bits.
using ClassicalFunc = std::function<bool(const std::vector<bool>&)>;

class Circuit {
 public:
  explicit Circuit(std::size_t num_qubits);

  std::size_t num_qubits() const { return num_qubits_; }
  std::size_t num_cbits() const { return num_cbits_; }
  const std::vector<Op>& ops() const { return ops_; }
  const std::vector<ClassicalFunc>& classical_funcs() const { return funcs_; }

  // --- Builder (each returns *this for chaining). -------------------------
  Circuit& prep_z(std::uint32_t q);
  Circuit& prep_x(std::uint32_t q);
  Circuit& h(std::uint32_t q);
  Circuit& x(std::uint32_t q);
  Circuit& y(std::uint32_t q);
  Circuit& z(std::uint32_t q);
  Circuit& s(std::uint32_t q);
  Circuit& sdg(std::uint32_t q);
  Circuit& t(std::uint32_t q);
  Circuit& tdg(std::uint32_t q);
  Circuit& cnot(std::uint32_t control, std::uint32_t target);
  Circuit& cz(std::uint32_t a, std::uint32_t b);
  Circuit& cs(std::uint32_t control, std::uint32_t target);
  Circuit& csdg(std::uint32_t control, std::uint32_t target);
  Circuit& swap(std::uint32_t a, std::uint32_t b);
  Circuit& ccx(std::uint32_t c0, std::uint32_t c1, std::uint32_t target);
  Circuit& ccz(std::uint32_t a, std::uint32_t b, std::uint32_t c);
  Circuit& idle(std::uint32_t q);
  /// Allocates a classical slot, returns its index.
  std::uint32_t measure_z(std::uint32_t q);

  /// Registers a classical condition; returns its id for the *_if ops.
  std::uint32_t add_classical_func(ClassicalFunc f);
  /// Condition that is simply "classical bit `slot` is 1".
  std::uint32_t cbit_func(std::uint32_t slot);

  Circuit& x_if(std::uint32_t func_id, std::uint32_t q);
  Circuit& z_if(std::uint32_t func_id, std::uint32_t q);
  Circuit& s_if(std::uint32_t func_id, std::uint32_t q);
  Circuit& sdg_if(std::uint32_t func_id, std::uint32_t q);
  Circuit& cnot_if(std::uint32_t func_id, std::uint32_t control,
                   std::uint32_t target);
  Circuit& cz_if(std::uint32_t func_id, std::uint32_t a, std::uint32_t b);

  /// Appends all ops of `other` (same register width required); classical
  /// slots and functions of `other` are re-based onto this circuit.
  Circuit& append(const Circuit& other);

  /// Total op count (= gate fault locations, before idle/input locations).
  std::size_t size() const { return ops_.size(); }

  /// Multi-line human-readable dump (debugging aid).
  std::string to_string() const;

 private:
  Circuit& push(OpKind kind, std::uint32_t q0 = kNoOperand,
                std::uint32_t q1 = kNoOperand, std::uint32_t q2 = kNoOperand,
                std::uint32_t carg = kNoOperand);
  void check_qubit(std::uint32_t q) const;

  std::size_t num_qubits_;
  std::size_t num_cbits_ = 0;
  std::vector<Op> ops_;
  std::vector<ClassicalFunc> funcs_;
};

/// The inverse of a purely unitary circuit: each gate replaced by its
/// adjoint, in reverse order.  Throws ContractViolation on preparations,
/// measurements, idles, or classically controlled ops (not invertible /
/// not unitary).  `c` followed by `inverse(c)` is the identity channel.
Circuit inverse(const Circuit& c);

}  // namespace eqc::circuit
