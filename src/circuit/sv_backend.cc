#include "circuit/sv_backend.h"

#include "qsim/gates.h"

namespace eqc::circuit {

void SvBackend::prep_x(std::size_t q) {
  state_.reset(q, rng_);
  state_.apply1(q, qsim::gate_h());
}
void SvBackend::h(std::size_t q) { state_.apply1(q, qsim::gate_h()); }
void SvBackend::x(std::size_t q) { state_.apply1(q, qsim::gate_x()); }
void SvBackend::y(std::size_t q) { state_.apply1(q, qsim::gate_y()); }
void SvBackend::z(std::size_t q) { state_.apply1(q, qsim::gate_z()); }
void SvBackend::s(std::size_t q) { state_.apply1(q, qsim::gate_s()); }
void SvBackend::sdg(std::size_t q) { state_.apply1(q, qsim::gate_sdg()); }
void SvBackend::t(std::size_t q) { state_.apply1(q, qsim::gate_t()); }
void SvBackend::tdg(std::size_t q) { state_.apply1(q, qsim::gate_tdg()); }

void SvBackend::cs(std::size_t c, std::size_t t) {
  state_.apply_controlled({c}, t, qsim::gate_s());
}

void SvBackend::csdg(std::size_t c, std::size_t t) {
  state_.apply_controlled({c}, t, qsim::gate_sdg());
}

void SvBackend::ccx(std::size_t c0, std::size_t c1, std::size_t t) {
  state_.apply_controlled({c0, c1}, t, qsim::gate_x());
}

void SvBackend::ccz(std::size_t a, std::size_t b, std::size_t c) {
  state_.apply_controlled({a, b}, c, qsim::gate_z());
}

}  // namespace eqc::circuit
