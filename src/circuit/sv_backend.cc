#include "circuit/sv_backend.h"

#include "qsim/gates.h"

namespace eqc::circuit {

void SvBackend::fuse(std::size_t q, const Mat2& u) {
  Pending& p = pending_[q];
  if (p.active) {
    p.u = u * p.u;  // later gate acts after (to the left of) the pending one
  } else {
    p.active = true;
    p.u = u;
  }
}

void SvBackend::flush(std::size_t q) const {
  Pending& p = pending_[q];
  if (!p.active) return;
  p.active = false;
  state_.apply1(q, p.u);
}

void SvBackend::flush_all() const {
  for (std::size_t q = 0; q < pending_.size(); ++q) flush(q);
}

void SvBackend::prep_x(std::size_t q) {
  flush_all();
  state_.reset(q, rng_);
  state_.apply_h(q);
}
void SvBackend::h(std::size_t q) {
  // H breaks the diagonal/anti-diagonal shape, so an unfused H goes to the
  // dedicated kernel; fusion still wins when it lands on a pending product.
  if (pending_[q].active) {
    fuse(q, qsim::gate_h());
  } else {
    state_.apply_h(q);
  }
}
void SvBackend::x(std::size_t q) { fuse(q, qsim::gate_x()); }
void SvBackend::y(std::size_t q) { fuse(q, qsim::gate_y()); }
void SvBackend::z(std::size_t q) { fuse(q, qsim::gate_z()); }
void SvBackend::s(std::size_t q) { fuse(q, qsim::gate_s()); }
void SvBackend::sdg(std::size_t q) { fuse(q, qsim::gate_sdg()); }
void SvBackend::t(std::size_t q) { fuse(q, qsim::gate_t()); }
void SvBackend::tdg(std::size_t q) { fuse(q, qsim::gate_tdg()); }

void SvBackend::cs(std::size_t c, std::size_t t) {
  flush(c);
  flush(t);
  state_.apply_controlled({c}, t, qsim::gate_s());
}

void SvBackend::csdg(std::size_t c, std::size_t t) {
  flush(c);
  flush(t);
  state_.apply_controlled({c}, t, qsim::gate_sdg());
}

void SvBackend::ccx(std::size_t c0, std::size_t c1, std::size_t t) {
  flush(c0);
  flush(c1);
  flush(t);
  state_.apply_controlled({c0, c1}, t, qsim::gate_x());
}

void SvBackend::ccz(std::size_t a, std::size_t b, std::size_t c) {
  flush(a);
  flush(b);
  flush(c);
  state_.apply_controlled({a, b}, c, qsim::gate_z());
}

}  // namespace eqc::circuit
