// Circuit operation vocabulary.
//
// The op set is deliberately small: the Clifford group generators, the two
// non-Clifford gates the paper's constructions are about (T and the
// classical-reversible CCX/CCZ), measurement, and the classically-controlled
// gates needed by the measurement-*based* baselines.  Idle is an explicit
// "delay line" op so noise and fault enumeration can count waiting qubits,
// matching the paper's error model ("per gate, per input bit, and per delay
// line").
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace eqc::circuit {

inline constexpr std::uint32_t kNoOperand = ~std::uint32_t{0};

enum class OpKind : std::uint8_t {
  PrepZ,   // (re-)prepare |0>  — fresh-ancilla supply
  PrepX,   // (re-)prepare |+>
  H,
  X,
  Y,
  Z,
  S,
  Sdg,
  T,
  Tdg,
  CNOT,  // q0 = control, q1 = target
  CZ,
  CS,    // controlled-S (q0 = control, q1 = target); non-Clifford
  CSdg,  // controlled-S^dagger; non-Clifford
  Swap,
  CCX,  // q0, q1 = controls, q2 = target
  CCZ,
  MeasureZ,  // outcome written to classical slot `carg`
  // Classically controlled gates (measurement-based baselines only).  The
  // condition is classical function `carg` evaluated over the classical bits.
  XIfC,
  ZIfC,
  SIfC,
  SdgIfC,
  CNOTIfC,  // q0 = control qubit, q1 = target qubit
  CZIfC,
  Idle,  // explicit delay-line step on q0
};

/// Number of qubit operands the op kind uses.
constexpr int arity(OpKind k) {
  switch (k) {
    case OpKind::CNOT:
    case OpKind::CZ:
    case OpKind::CS:
    case OpKind::CSdg:
    case OpKind::Swap:
    case OpKind::CNOTIfC:
    case OpKind::CZIfC:
      return 2;
    case OpKind::CCX:
    case OpKind::CCZ:
      return 3;
    default:
      return 1;
  }
}

/// True if the op is a unitary in the Clifford group (ignoring classical
/// control, which preserves Clifford-ness given classical condition bits).
constexpr bool is_clifford_unitary(OpKind k) {
  switch (k) {
    case OpKind::T:
    case OpKind::Tdg:
    case OpKind::CS:
    case OpKind::CSdg:
    case OpKind::CCX:
    case OpKind::CCZ:
      return false;
    default:
      return true;
  }
}

constexpr bool is_classically_controlled(OpKind k) {
  switch (k) {
    case OpKind::XIfC:
    case OpKind::ZIfC:
    case OpKind::SIfC:
    case OpKind::SdgIfC:
    case OpKind::CNOTIfC:
    case OpKind::CZIfC:
      return true;
    default:
      return false;
  }
}

constexpr std::string_view name(OpKind k) {
  switch (k) {
    case OpKind::PrepZ: return "prep0";
    case OpKind::PrepX: return "prep+";
    case OpKind::H: return "H";
    case OpKind::X: return "X";
    case OpKind::Y: return "Y";
    case OpKind::Z: return "Z";
    case OpKind::S: return "S";
    case OpKind::Sdg: return "Sdg";
    case OpKind::T: return "T";
    case OpKind::Tdg: return "Tdg";
    case OpKind::CNOT: return "CNOT";
    case OpKind::CZ: return "CZ";
    case OpKind::CS: return "CS";
    case OpKind::CSdg: return "CSdg";
    case OpKind::Swap: return "SWAP";
    case OpKind::CCX: return "CCX";
    case OpKind::CCZ: return "CCZ";
    case OpKind::MeasureZ: return "MZ";
    case OpKind::XIfC: return "X?";
    case OpKind::ZIfC: return "Z?";
    case OpKind::SIfC: return "S?";
    case OpKind::SdgIfC: return "Sdg?";
    case OpKind::CNOTIfC: return "CNOT?";
    case OpKind::CZIfC: return "CZ?";
    case OpKind::Idle: return "idle";
  }
  return "?";
}

/// One operation instance.
struct Op {
  OpKind kind;
  std::array<std::uint32_t, 3> q{kNoOperand, kNoOperand, kNoOperand};
  /// MeasureZ: destination classical slot.  *IfC: classical function id.
  std::uint32_t carg = kNoOperand;
};

}  // namespace eqc::circuit
