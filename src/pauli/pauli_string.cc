#include "pauli/pauli_string.h"

#include <bit>

#include "common/assert.h"

namespace eqc::pauli {

char to_char(Pauli p) {
  switch (p) {
    case Pauli::I: return 'I';
    case Pauli::X: return 'X';
    case Pauli::Y: return 'Y';
    case Pauli::Z: return 'Z';
  }
  return '?';
}

PauliString::PauliString(std::size_t num_qubits)
    : n_(num_qubits),
      x_((num_qubits + 63) / 64, 0),
      z_((num_qubits + 63) / 64, 0) {}

PauliString PauliString::from_string(const std::string& labels) {
  PauliString p(labels.size());
  for (std::size_t q = 0; q < labels.size(); ++q) {
    switch (labels[q]) {
      case 'I': break;
      case 'X': p.set(q, Pauli::X); break;
      case 'Y': p.set(q, Pauli::Y); break;
      case 'Z': p.set(q, Pauli::Z); break;
      default:
        throw ContractViolation("PauliString::from_string: bad label");
    }
  }
  return p;
}

PauliString PauliString::single(std::size_t num_qubits, std::size_t qubit,
                                Pauli p) {
  PauliString out(num_qubits);
  out.set(qubit, p);
  return out;
}

Pauli PauliString::get(std::size_t qubit) const {
  EQC_EXPECTS(qubit < n_);
  const bool x = x_bit(qubit);
  const bool z = z_bit(qubit);
  if (x && z) return Pauli::Y;
  if (x) return Pauli::X;
  if (z) return Pauli::Z;
  return Pauli::I;
}

void PauliString::set(std::size_t qubit, Pauli p) {
  EQC_EXPECTS(qubit < n_);
  // Clear any previous operator on this qubit first (including the i that a
  // stored Y contributed, so repeated set() calls stay phase-exact).
  if (x_bit(qubit) && z_bit(qubit)) phase_ = (phase_ + 3) % 4;
  switch (p) {
    case Pauli::I: set_bits(qubit, false, false); break;
    case Pauli::X: set_bits(qubit, true, false); break;
    case Pauli::Z: set_bits(qubit, false, true); break;
    case Pauli::Y:
      // Y = i * XZ in the X-before-Z convention.
      set_bits(qubit, true, true);
      phase_ = (phase_ + 1) % 4;
      break;
  }
}

bool PauliString::x_bit(std::size_t qubit) const {
  EQC_EXPECTS(qubit < n_);
  return (x_[word(qubit)] & bit(qubit)) != 0;
}

bool PauliString::z_bit(std::size_t qubit) const {
  EQC_EXPECTS(qubit < n_);
  return (z_[word(qubit)] & bit(qubit)) != 0;
}

void PauliString::set_bits(std::size_t qubit, bool x, bool z) {
  EQC_EXPECTS(qubit < n_);
  if (x)
    x_[word(qubit)] |= bit(qubit);
  else
    x_[word(qubit)] &= ~bit(qubit);
  if (z)
    z_[word(qubit)] |= bit(qubit);
  else
    z_[word(qubit)] &= ~bit(qubit);
}

std::size_t PauliString::count_y() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < x_.size(); ++i)
    n += static_cast<std::size_t>(std::popcount(x_[i] & z_[i]));
  return n;
}

bool PauliString::is_hermitian() const {
  // Operator = i^{phase - n_Y} * (product of I/X/Y/Z labels).
  return (phase_ - static_cast<int>(count_y())) % 2 == 0;
}

std::size_t PauliString::weight() const {
  std::size_t w = 0;
  for (std::size_t i = 0; i < x_.size(); ++i)
    w += static_cast<std::size_t>(std::popcount(x_[i] | z_[i]));
  return w;
}

std::vector<std::size_t> PauliString::support() const {
  std::vector<std::size_t> out;
  for (std::size_t q = 0; q < n_; ++q)
    if (x_bit(q) || z_bit(q)) out.push_back(q);
  return out;
}

bool PauliString::is_identity() const { return weight() == 0; }

bool PauliString::commutes_with(const PauliString& other) const {
  EQC_EXPECTS(n_ == other.n_);
  // Symplectic inner product: parity of |{q : x_q z'_q + z_q x'_q = 1}|.
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < x_.size(); ++i)
    acc ^= (x_[i] & other.z_[i]) ^ (z_[i] & other.x_[i]);
  return std::popcount(acc) % 2 == 0;
}

void PauliString::multiply_by(const PauliString& other) {
  EQC_EXPECTS(n_ == other.n_);
  // (X^x1 Z^z1)(X^x2 Z^z2) = (-1)^(z1.x2) X^(x1+x2) Z^(z1+z2) per qubit.
  int sign_flips = 0;
  for (std::size_t i = 0; i < x_.size(); ++i) {
    sign_flips += std::popcount(z_[i] & other.x_[i]);
    x_[i] ^= other.x_[i];
    z_[i] ^= other.z_[i];
  }
  phase_ = (phase_ + other.phase_ + 2 * (sign_flips % 2)) % 4;
}

void PauliString::conjugate_h(std::size_t q) {
  EQC_EXPECTS(q < n_);
  const bool x = x_bit(q);
  const bool z = z_bit(q);
  set_bits(q, z, x);
  // H (XZ) H = ZX = -XZ.
  if (x && z) phase_ = (phase_ + 2) % 4;
}

void PauliString::conjugate_s(std::size_t q) {
  EQC_EXPECTS(q < n_);
  if (x_bit(q)) {
    // S X S+ = i XZ,  S (XZ) S+ = i X.
    set_bits(q, true, !z_bit(q));
    phase_ = (phase_ + 1) % 4;
  }
}

void PauliString::conjugate_sdg(std::size_t q) {
  EQC_EXPECTS(q < n_);
  if (x_bit(q)) {
    // S+ X S = -i XZ,  S+ (XZ) S = -i X.
    set_bits(q, true, !z_bit(q));
    phase_ = (phase_ + 3) % 4;
  }
}

void PauliString::conjugate_x(std::size_t q) {
  EQC_EXPECTS(q < n_);
  if (z_bit(q)) phase_ = (phase_ + 2) % 4;
}

void PauliString::conjugate_z(std::size_t q) {
  EQC_EXPECTS(q < n_);
  if (x_bit(q)) phase_ = (phase_ + 2) % 4;
}

void PauliString::conjugate_y(std::size_t q) {
  EQC_EXPECTS(q < n_);
  if (x_bit(q) != z_bit(q)) phase_ = (phase_ + 2) % 4;
}

void PauliString::conjugate_cnot(std::size_t control, std::size_t target) {
  EQC_EXPECTS(control < n_ && target < n_ && control != target);
  // X on control spreads to target; Z on target spreads to control.
  // In the X-before-Z (XZ-literal) convention no phase correction arises.
  if (x_bit(control)) set_bits(target, !x_bit(target), z_bit(target));
  if (z_bit(target)) set_bits(control, x_bit(control), !z_bit(control));
}

void PauliString::conjugate_cz(std::size_t a, std::size_t b) {
  EQC_EXPECTS(a < n_ && b < n_ && a != b);
  const bool xa = x_bit(a);
  const bool xb = x_bit(b);
  if (xa) set_bits(b, xb, !z_bit(b));
  if (xb) set_bits(a, xa, !z_bit(a));
  if (xa && xb) phase_ = (phase_ + 2) % 4;
}

void PauliString::conjugate_swap(std::size_t a, std::size_t b) {
  EQC_EXPECTS(a < n_ && b < n_);
  const bool xa = x_bit(a), za = z_bit(a);
  const bool xb = x_bit(b), zb = z_bit(b);
  set_bits(a, xb, zb);
  set_bits(b, xa, za);
}

PauliString PauliString::random_single(std::size_t num_qubits,
                                       std::size_t qubit, Rng& rng) {
  static constexpr Pauli kChoices[3] = {Pauli::X, Pauli::Y, Pauli::Z};
  return single(num_qubits, qubit, kChoices[rng.below(3)]);
}

PauliString PauliString::random(std::size_t num_qubits, Rng& rng) {
  PauliString p(num_qubits);
  for (std::size_t q = 0; q < num_qubits; ++q)
    p.set(q, static_cast<Pauli>(rng.below(4)));
  return p;
}

std::string PauliString::to_string() const {
  std::string out(n_, 'I');
  for (std::size_t q = 0; q < n_; ++q) out[q] = to_char(get(q));
  return out;
}

bool operator==(const PauliString& a, const PauliString& b) {
  return a.n_ == b.n_ && a.phase_ == b.phase_ && a.x_ == b.x_ && a.z_ == b.z_;
}

}  // namespace eqc::pauli
