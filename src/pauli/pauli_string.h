// n-qubit Pauli operators with exact phase tracking, plus their conjugation
// through the Clifford gates used everywhere in the fault-tolerance
// constructions (error propagation: how a fault at one location spreads).
//
// Representation: P = i^phase * prod_q X_q^{x_q} Z_q^{z_q}, with the X part
// written to the left of the Z part on every qubit.  Under this convention
//   (x=1,z=0) -> X,  (x=0,z=1) -> Z,  (x=1,z=1) -> XZ = -iY.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace eqc::pauli {

/// Single-qubit Pauli label.
enum class Pauli : std::uint8_t { I = 0, X = 1, Y = 2, Z = 3 };

char to_char(Pauli p);

/// An n-qubit Pauli operator with an i^k global phase.
class PauliString {
 public:
  PauliString() = default;
  explicit PauliString(std::size_t num_qubits);

  /// Parse from e.g. "XIZY" (qubit 0 first). Throws on bad characters.
  static PauliString from_string(const std::string& labels);

  /// Weight-1 operator: `p` on `qubit`, identity elsewhere.
  static PauliString single(std::size_t num_qubits, std::size_t qubit, Pauli p);

  std::size_t num_qubits() const { return n_; }

  Pauli get(std::size_t qubit) const;
  void set(std::size_t qubit, Pauli p);

  bool x_bit(std::size_t qubit) const;
  bool z_bit(std::size_t qubit) const;
  void set_bits(std::size_t qubit, bool x, bool z);

  /// Phase exponent k in i^k (0..3).
  int phase() const { return phase_; }
  void set_phase(int k) { phase_ = ((k % 4) + 4) % 4; }

  /// True iff the operator is Hermitian (overall sign +-1 once the i
  /// factors of the stored Y = i XZ qubits are accounted for).
  bool is_hermitian() const;
  /// Number of qubits with both x and z bits set (label Y).
  std::size_t count_y() const;

  /// Number of qubits acted on non-trivially.
  std::size_t weight() const;
  /// Indices of qubits acted on non-trivially.
  std::vector<std::size_t> support() const;
  bool is_identity() const;  ///< identity up to phase

  /// True iff this commutes with other (phases are irrelevant).
  bool commutes_with(const PauliString& other) const;

  /// In-place multiplication: *this = *this * other (phase-exact).
  void multiply_by(const PauliString& other);

  // --- Conjugation by Clifford gates: P -> U P U^dagger (phase-exact). ---
  void conjugate_h(std::size_t q);
  void conjugate_s(std::size_t q);      ///< S = diag(1, i)
  void conjugate_sdg(std::size_t q);    ///< S^dagger
  void conjugate_x(std::size_t q);
  void conjugate_y(std::size_t q);
  void conjugate_z(std::size_t q);
  void conjugate_cnot(std::size_t control, std::size_t target);
  void conjugate_cz(std::size_t a, std::size_t b);
  void conjugate_swap(std::size_t a, std::size_t b);

  /// Uniformly random non-identity single-qubit Pauli placed on `qubit`.
  static PauliString random_single(std::size_t num_qubits, std::size_t qubit,
                                   Rng& rng);

  /// Uniformly random n-qubit Pauli label string (phase 0; may be identity).
  static PauliString random(std::size_t num_qubits, Rng& rng);

  std::string to_string() const;  ///< labels only, e.g. "XIZY"

  friend bool operator==(const PauliString& a, const PauliString& b);

 private:
  std::size_t word(std::size_t qubit) const { return qubit >> 6; }
  std::uint64_t bit(std::size_t qubit) const { return 1ULL << (qubit & 63); }

  std::size_t n_ = 0;
  std::vector<std::uint64_t> x_;
  std::vector<std::uint64_t> z_;
  int phase_ = 0;  // exponent of i
};

}  // namespace eqc::pauli
