// Deterministic, splittable random number generation.
//
// Every stochastic component of the library (noise injection, measurement
// collapse, ensemble sampling) draws from an eqc::Rng that is seeded
// explicitly, so every experiment in the paper reproduction is replayable
// from a stated seed.  The generator is xoshiro256** (Blackman & Vigna),
// seeded through SplitMix64 as its authors recommend.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

#include "common/assert.h"

namespace eqc {

/// SplitMix64 step; used for seeding and for deriving child seeds.
std::uint64_t split_mix64(std::uint64_t& state);

namespace rng_detail {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace rng_detail

/// Counter-split stream derivation: the seed of stream `index` under master
/// seed `seed`, as a pure function of the pair.  Unlike Rng::split(), which
/// advances (and therefore depends on) the parent stream, adjacent indices
/// yield decorrelated streams no matter which order — or on which thread —
/// they are instantiated.  This is the per-trial / per-item scheme shared by
/// the Monte-Carlo driver and the campaign engine.
std::uint64_t derive_stream_seed(std::uint64_t seed, std::uint64_t index);

/// xoshiro256** pseudo-random generator with convenience distributions.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Raw 64 random bits.  Inline: this is the innermost operation of the
  /// Monte-Carlo drivers (one bernoulli per fault site per trial), and the
  /// batch frame engine in particular is sampling-bound.
  std::uint64_t operator()() {
    const std::uint64_t result = rng_detail::rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rng_detail::rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1): 53 top bits scaled into the unit interval.
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// True with probability p (p is clamped to [0,1]; NaN violates the
  /// contract — both clamp branches and the uniform() compare are false
  /// for NaN, which would silently read as "never").
  bool bernoulli(double p) {
    EQC_EXPECTS(!std::isnan(p));
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Uniform integer in [0, bound) — bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Derive an independent child generator (for per-trial / per-computer
  /// streams that must not interact).
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace eqc
