// Deterministic, splittable random number generation.
//
// Every stochastic component of the library (noise injection, measurement
// collapse, ensemble sampling) draws from an eqc::Rng that is seeded
// explicitly, so every experiment in the paper reproduction is replayable
// from a stated seed.  The generator is xoshiro256** (Blackman & Vigna),
// seeded through SplitMix64 as its authors recommend.
#pragma once

#include <array>
#include <cstdint>

namespace eqc {

/// SplitMix64 step; used for seeding and for deriving child seeds.
std::uint64_t split_mix64(std::uint64_t& state);

/// Counter-split stream derivation: the seed of stream `index` under master
/// seed `seed`, as a pure function of the pair.  Unlike Rng::split(), which
/// advances (and therefore depends on) the parent stream, adjacent indices
/// yield decorrelated streams no matter which order — or on which thread —
/// they are instantiated.  This is the per-trial / per-item scheme shared by
/// the Monte-Carlo driver and the campaign engine.
std::uint64_t derive_stream_seed(std::uint64_t seed, std::uint64_t index);

/// xoshiro256** pseudo-random generator with convenience distributions.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Raw 64 random bits.
  std::uint64_t operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// True with probability p (p is clamped to [0,1]; NaN violates the
  /// contract — both clamp branches and the uniform() compare are false
  /// for NaN, which would silently read as "never").
  bool bernoulli(double p);

  /// Uniform integer in [0, bound) — bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Derive an independent child generator (for per-trial / per-computer
  /// streams that must not interact).
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace eqc
