// Deterministic sharded worker pool.
//
// The campaign engine and the Monte-Carlo trial driver share one
// parallelism discipline: the work stream is partitioned into a fixed
// number of logical SHARDS (independent of the worker count), each shard
// is processed by exactly one worker in stream order, and per-item
// randomness is counter-split off a stated seed (common/rng.h:
// derive_stream_seed) — never drawn from a sequentially advanced master.
// Under that discipline every item's outcome is a pure function of its
// position, so the merged result is BYTE-IDENTICAL for any `jobs` value;
// threads only change the wall clock.
#pragma once

#include <functional>

namespace eqc::parallel {

/// Resolves a worker-count request: 0 means "one per hardware thread"
/// (at least 1); any other value is returned unchanged.
unsigned resolve_jobs(unsigned jobs);

/// Invokes `body(shard)` once for every shard in [0, num_shards), spread
/// over up to `jobs` worker threads (`jobs` is resolved first; a resolved
/// count of 1 runs inline on the calling thread, spawning nothing).
/// Shards are claimed atomically in index order; each is processed by
/// exactly one worker.  `body` must be safe to invoke concurrently on
/// distinct shards.  The first exception thrown by any shard is rethrown
/// on the calling thread after all workers join.
void for_each_shard(unsigned num_shards, unsigned jobs,
                    const std::function<void(unsigned)>& body);

}  // namespace eqc::parallel
