#include "common/rng.h"

namespace eqc {

std::uint64_t split_mix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = split_mix64(sm);
}

std::uint64_t derive_stream_seed(std::uint64_t seed, std::uint64_t index) {
  // Two throwaway SplitMix64 rounds decorrelate adjacent indices before the
  // third output is used as the child seed (the Rng constructor runs the
  // state through SplitMix64 again to fill all four xoshiro words).
  std::uint64_t state = seed ^ (0x9E3779B97F4A7C15ULL * (index + 1));
  (void)split_mix64(state);
  (void)split_mix64(state);
  return split_mix64(state);
}

std::uint64_t Rng::below(std::uint64_t bound) {
  EQC_EXPECTS(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

Rng Rng::split() {
  // A fresh seed derived from two outputs keeps the child stream decorrelated
  // from the parent's subsequent output.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a ^ rng_detail::rotl(b, 29) ^ 0xD1B54A32D192ED03ULL);
}

}  // namespace eqc
