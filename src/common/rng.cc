#include "common/rng.h"

#include <cmath>

#include "common/assert.h"

namespace eqc {

std::uint64_t split_mix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = split_mix64(sm);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

std::uint64_t derive_stream_seed(std::uint64_t seed, std::uint64_t index) {
  // Two throwaway SplitMix64 rounds decorrelate adjacent indices before the
  // third output is used as the child seed (the Rng constructor runs the
  // state through SplitMix64 again to fill all four xoshiro words).
  std::uint64_t state = seed ^ (0x9E3779B97F4A7C15ULL * (index + 1));
  (void)split_mix64(state);
  (void)split_mix64(state);
  return split_mix64(state);
}

bool Rng::bernoulli(double p) {
  EQC_EXPECTS(!std::isnan(p));
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  EQC_EXPECTS(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

Rng Rng::split() {
  // A fresh seed derived from two outputs keeps the child stream decorrelated
  // from the parent's subsequent output.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a ^ rotl(b, 29) ^ 0xD1B54A32D192ED03ULL);
}

}  // namespace eqc
