#include "common/stats.h"

#include <cmath>

#include "common/assert.h"

namespace eqc {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return mean_; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const {
  if (n_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

json::Value FailureCounter::to_json_value() const {
  const auto iv = interval();
  json::Object obj;
  obj.emplace_back("trials", json::Value(trials));
  obj.emplace_back("failures", json::Value(failures));
  obj.emplace_back("rate", json::Value(rate()));
  obj.emplace_back("rate_unbiased", json::Value(rate_unbiased()));
  obj.emplace_back("wilson_low", json::Value(iv.low));
  obj.emplace_back("wilson_high", json::Value(iv.high));
  obj.emplace_back("stopped_early", json::Value(stopped_early));
  return json::Value(std::move(obj));
}

BinomialInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                                 double z) {
  EQC_EXPECTS(successes <= trials);
  BinomialInterval out;
  if (trials == 0) return out;
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (phat + z2 / (2.0 * n)) / denom;
  const double margin =
      z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n)) / denom;
  out.center = phat;
  out.low = center - margin;
  out.high = center + margin;
  if (out.low < 0.0) out.low = 0.0;
  if (out.high > 1.0) out.high = 1.0;
  return out;
}

}  // namespace eqc
