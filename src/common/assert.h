// Contract-checking macros (C++ Core Guidelines I.6/I.8 style).
//
// EQC_EXPECTS  — precondition on a public API
// EQC_ENSURES  — postcondition
// EQC_CHECK    — internal invariant
//
// All three are always on (the library is a research instrument; silent
// corruption is worse than the nanoseconds saved) and throw
// eqc::ContractViolation so tests can assert on misuse.
#pragma once

#include <stdexcept>
#include <string>

namespace eqc {

/// Thrown when a precondition, postcondition or invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace eqc

#define EQC_EXPECTS(cond)                                                   \
  do {                                                                      \
    if (!(cond))                                                            \
      ::eqc::detail::contract_fail("precondition", #cond, __FILE__, __LINE__); \
  } while (0)

#define EQC_ENSURES(cond)                                                    \
  do {                                                                       \
    if (!(cond))                                                             \
      ::eqc::detail::contract_fail("postcondition", #cond, __FILE__, __LINE__); \
  } while (0)

#define EQC_CHECK(cond)                                                  \
  do {                                                                   \
    if (!(cond))                                                         \
      ::eqc::detail::contract_fail("invariant", #cond, __FILE__, __LINE__); \
  } while (0)
