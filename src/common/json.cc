#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace eqc::json {

namespace {

[[noreturn]] void fail(const std::string& what) { throw JsonError(what); }

struct Parser {
  const char* p;
  const char* end;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
      ++p;
  }

  char peek() {
    if (p >= end) fail("unexpected end of JSON input");
    return *p;
  }

  void expect(char c) {
    if (p >= end || *p != c)
      fail(std::string("expected '") + c + "' in JSON input");
    ++p;
  }

  bool consume_literal(const char* lit) {
    const char* q = p;
    for (const char* l = lit; *l; ++l, ++q)
      if (q >= end || *q != *l) return false;
    p = q;
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (p >= end) fail("unterminated JSON string");
      const char c = *p++;
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (p >= end) fail("unterminated escape in JSON string");
      const char e = *p++;
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (end - p < 4) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p++;
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the code point (surrogate pairs unsupported; the
          // library only ever emits ASCII).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape in JSON string");
      }
    }
  }

  Value parse_number() {
    const char* start = p;
    if (p < end && *p == '-') ++p;
    while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    bool integral = true;
    if (p < end && *p == '.') {
      integral = false;
      ++p;
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (p < end && (*p == 'e' || *p == 'E')) {
      integral = false;
      ++p;
      if (p < end && (*p == '+' || *p == '-')) ++p;
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    const std::string token(start, p);
    if (token.empty() || token == "-") fail("malformed JSON number");
    if (integral) {
      if (token[0] == '-') {
        std::int64_t v = 0;
        const auto res = std::from_chars(token.data(),
                                         token.data() + token.size(), v);
        if (res.ec == std::errc() && res.ptr == token.data() + token.size())
          return Value(v);
      } else {
        std::uint64_t v = 0;
        const auto res = std::from_chars(token.data(),
                                         token.data() + token.size(), v);
        if (res.ec == std::errc() && res.ptr == token.data() + token.size())
          return Value(v);
      }
      // fall through to double on overflow
    }
    return Value(std::strtod(token.c_str(), nullptr));
  }

  Value parse_value(int depth) {
    if (depth > 200) fail("JSON nesting too deep");
    skip_ws();
    const char c = peek();
    if (c == '{') {
      ++p;
      Object obj;
      skip_ws();
      if (peek() == '}') {
        ++p;
        return Value(std::move(obj));
      }
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        obj.emplace_back(std::move(key), parse_value(depth + 1));
        skip_ws();
        if (peek() == ',') {
          ++p;
          continue;
        }
        expect('}');
        return Value(std::move(obj));
      }
    }
    if (c == '[') {
      ++p;
      Array arr;
      skip_ws();
      if (peek() == ']') {
        ++p;
        return Value(std::move(arr));
      }
      while (true) {
        arr.push_back(parse_value(depth + 1));
        skip_ws();
        if (peek() == ',') {
          ++p;
          continue;
        }
        expect(']');
        return Value(std::move(arr));
      }
    }
    if (c == '"') return Value(parse_string());
    if (consume_literal("true")) return Value(true);
    if (consume_literal("false")) return Value(false);
    if (consume_literal("null")) return Value();
    return parse_number();
  }
};

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

bool Value::as_bool() const {
  if (type_ != Type::Bool) fail("JSON value is not a bool");
  return bool_;
}

std::int64_t Value::as_i64() const {
  if (type_ == Type::Int) return int_;
  if (type_ == Type::Uint) {
    if (uint_ > static_cast<std::uint64_t>(INT64_MAX))
      fail("JSON integer out of int64 range");
    return static_cast<std::int64_t>(uint_);
  }
  fail("JSON value is not an integer");
}

std::uint64_t Value::as_u64() const {
  if (type_ == Type::Uint) return uint_;
  if (type_ == Type::Int) {
    if (int_ < 0) fail("JSON integer is negative");
    return static_cast<std::uint64_t>(int_);
  }
  fail("JSON value is not an integer");
}

double Value::as_double() const {
  switch (type_) {
    case Type::Double: return double_;
    case Type::Int: return static_cast<double>(int_);
    case Type::Uint: return static_cast<double>(uint_);
    default: fail("JSON value is not a number");
  }
}

const std::string& Value::as_string() const {
  if (type_ != Type::String) fail("JSON value is not a string");
  return string_;
}

const Array& Value::as_array() const {
  if (type_ != Type::Array) fail("JSON value is not an array");
  return array_;
}

Array& Value::as_array() {
  if (type_ != Type::Array) fail("JSON value is not an array");
  return array_;
}

const Object& Value::as_object() const {
  if (type_ != Type::Object) fail("JSON value is not an object");
  return object_;
}

Object& Value::as_object() {
  if (type_ != Type::Object) fail("JSON value is not an object");
  return object_;
}

const Value* Value::find(const std::string& key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

const Value& Value::at(const std::string& key) const {
  const Value* v = find(key);
  if (v == nullptr) fail("missing JSON key: " + key);
  return *v;
}

void Value::set(const std::string& key, Value v) {
  if (type_ == Type::Null) {
    type_ = Type::Object;
    object_.clear();
  }
  if (type_ != Type::Object) fail("JSON value is not an object");
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(key, std::move(v));
}

Value Value::parse(const std::string& text) {
  Parser parser{text.data(), text.data() + text.size()};
  Value v = parser.parse_value(0);
  parser.skip_ws();
  if (parser.p != parser.end) fail("trailing characters after JSON document");
  return v;
}

void Value::dump_to(std::string& out) const {
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Int: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%" PRId64, int_);
      out += buf;
      break;
    }
    case Type::Uint: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%" PRIu64, uint_);
      out += buf;
      break;
    }
    case Type::Double: {
      if (std::isfinite(double_)) {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", double_);
        out += buf;
      } else {
        out += "null";  // JSON has no Inf/NaN
      }
      break;
    }
    case Type::String: dump_string(string_, out); break;
    case Type::Array: {
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        array_[i].dump_to(out);
      }
      out.push_back(']');
      break;
    }
    case Type::Object: {
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out.push_back(',');
        dump_string(object_[i].first, out);
        out.push_back(':');
        object_[i].second.dump_to(out);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

}  // namespace eqc::json
