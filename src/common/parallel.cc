#include "common/parallel.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace eqc::parallel {

unsigned resolve_jobs(unsigned jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void for_each_shard(unsigned num_shards, unsigned jobs,
                    const std::function<void(unsigned)>& body) {
  if (num_shards == 0) return;
  const unsigned workers = std::min(resolve_jobs(jobs), num_shards);

  // Pool shape and busy/idle split depend on the worker count and the
  // machine, so everything here is Det::Runtime.
  static obs::Counter& c_pools =
      obs::counter("parallel.pools", obs::Det::Runtime);
  static obs::Counter& c_shards =
      obs::counter("parallel.shards_claimed", obs::Det::Runtime);
  static obs::Counter& c_busy_us =
      obs::counter("parallel.busy_us", obs::Det::Runtime);
  static obs::Counter& c_idle_us =
      obs::counter("parallel.idle_us", obs::Det::Runtime);
  c_pools.add(1);

  std::atomic<unsigned> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto drain = [&] {
    // One span per worker drain (not per shard): MC blocks shard per
    // trial, and per-trial events would swamp the trace.
    obs::Span span("parallel.drain");
    const bool timed = obs::timing_enabled();
    const auto drain_start =
        timed ? std::chrono::steady_clock::now()
              : std::chrono::steady_clock::time_point{};
    std::uint64_t claimed = 0;
    double busy_us = 0.0;
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) break;
      const unsigned shard = next.fetch_add(1);
      if (shard >= num_shards) break;
      ++claimed;
      const auto t0 = timed ? std::chrono::steady_clock::now()
                            : std::chrono::steady_clock::time_point{};
      try {
        body(shard);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
      if (timed)
        busy_us += std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    }
    c_shards.add(claimed);
    if (timed) {
      const double total_us = std::chrono::duration<double, std::micro>(
                                  std::chrono::steady_clock::now() -
                                  drain_start)
                                  .count();
      c_busy_us.add(static_cast<std::uint64_t>(busy_us));
      c_idle_us.add(static_cast<std::uint64_t>(
          total_us > busy_us ? total_us - busy_us : 0.0));
    }
    span.arg("shards", claimed);
  };

  if (workers == 1) {
    drain();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
      pool.emplace_back([&drain, w] {
        if (obs::trace_active())
          obs::set_thread_label("worker-" + std::to_string(w));
        drain();
      });
    for (auto& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace eqc::parallel
