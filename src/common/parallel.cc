#include "common/parallel.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace eqc::parallel {

unsigned resolve_jobs(unsigned jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void for_each_shard(unsigned num_shards, unsigned jobs,
                    const std::function<void(unsigned)>& body) {
  if (num_shards == 0) return;
  const unsigned workers = std::min(resolve_jobs(jobs), num_shards);

  std::atomic<unsigned> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto drain = [&] {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const unsigned shard = next.fetch_add(1);
      if (shard >= num_shards) return;
      try {
        body(shard);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  if (workers == 1) {
    drain();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(drain);
    for (auto& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace eqc::parallel
