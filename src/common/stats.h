// Statistics helpers for the Monte-Carlo experiments: streaming accumulators
// and binomial (Wilson score) confidence intervals for failure rates.
#pragma once

#include <cstdint>

namespace eqc {

/// Streaming mean / variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  std::uint64_t count() const { return n_; }
  double mean() const;
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;
  double stderr_mean() const;  ///< standard error of the mean

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Wilson score interval for a binomial proportion.
struct BinomialInterval {
  double center = 0.0;
  double low = 0.0;
  double high = 0.0;
};

/// Wilson interval at approximately 95% confidence (z = 1.96).
BinomialInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                                 double z = 1.96);

/// Failure-rate bookkeeping for a Monte-Carlo experiment.
struct FailureCounter {
  std::uint64_t trials = 0;
  std::uint64_t failures = 0;

  void add(bool failed) {
    ++trials;
    if (failed) ++failures;
  }
  double rate() const { return trials == 0 ? 0.0 : double(failures) / double(trials); }
  BinomialInterval interval(double z = 1.96) const {
    return wilson_interval(failures, trials, z);
  }
  /// Folds another counter in (shard merging in the campaign engine).
  FailureCounter& merge(const FailureCounter& other) {
    trials += other.trials;
    failures += other.failures;
    return *this;
  }
};

}  // namespace eqc
