// Statistics helpers for the Monte-Carlo experiments: streaming accumulators
// and binomial (Wilson score) confidence intervals for failure rates.
#pragma once

#include <cstdint>

#include "common/json.h"

namespace eqc {

/// Streaming mean / variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  std::uint64_t count() const { return n_; }
  double mean() const;
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;
  double stderr_mean() const;  ///< standard error of the mean

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Wilson score interval for a binomial proportion.
struct BinomialInterval {
  double center = 0.0;
  double low = 0.0;
  double high = 0.0;
};

/// Wilson interval at approximately 95% confidence (z = 1.96).
BinomialInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                                 double z = 1.96);

/// Failure-rate bookkeeping for a Monte-Carlo experiment.
struct FailureCounter {
  std::uint64_t trials = 0;
  std::uint64_t failures = 0;
  /// True when the run that produced these counts was terminated by a
  /// failure-budget stopping rule (run_trials_until) rather than by
  /// exhausting its trial budget.  Under that negative-binomial stopping
  /// rule the plain binomial rate() is biased upward and the Wilson
  /// interval's nominal coverage does not hold, so consumers must either
  /// annotate the estimate or switch estimator (see rate_unbiased()).
  bool stopped_early = false;

  void add(bool failed) {
    ++trials;
    if (failed) ++failures;
  }
  double rate() const { return trials == 0 ? 0.0 : double(failures) / double(trials); }
  /// Stopping-rule-aware point estimate: the plain binomial MLE when the
  /// trial budget was exhausted, and the unbiased negative-binomial
  /// estimator (failures - 1) / (trials - 1) when the run stopped early on
  /// its failure budget (the last trial is a failure by construction).
  double rate_unbiased() const {
    if (!stopped_early || failures == 0) return rate();
    if (trials <= 1) return rate();
    return double(failures - 1) / double(trials - 1);
  }
  BinomialInterval interval(double z = 1.96) const {
    return wilson_interval(failures, trials, z);
  }
  /// Folds another counter in (shard merging in the campaign engine and
  /// the parallel trial driver).
  FailureCounter& merge(const FailureCounter& other) {
    trials += other.trials;
    failures += other.failures;
    stopped_early = stopped_early || other.stopped_early;
    return *this;
  }
  /// Canonical JSON: counts, both estimators, the Wilson interval and the
  /// stopping flag — deterministic, so reports embedding it can be compared
  /// byte-for-byte across `jobs` values.
  json::Value to_json_value() const;
};

}  // namespace eqc
