#include "common/matrix.h"

#include <cmath>
#include <sstream>

namespace eqc {

namespace {

template <typename M>
bool unitary_impl(const M& m, std::size_t n, double tol) {
  // U is unitary iff U * U^dagger == I.
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      cplx sum = 0;
      for (std::size_t k = 0; k < n; ++k) sum += m(r, k) * std::conj(m(c, k));
      const cplx want = (r == c) ? cplx{1, 0} : cplx{0, 0};
      if (std::abs(sum - want) > tol) return false;
    }
  }
  return true;
}

}  // namespace

Mat2 Mat2::identity() {
  Mat2 m;
  m(0, 0) = 1;
  m(1, 1) = 1;
  return m;
}

Mat2 Mat2::adjoint() const {
  Mat2 m;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 2; ++c) m(r, c) = std::conj((*this)(c, r));
  return m;
}

bool Mat2::is_unitary(double tol) const { return unitary_impl(*this, 2, tol); }

std::string Mat2::to_string() const {
  std::ostringstream os;
  os << "[[" << a[0] << ", " << a[1] << "], [" << a[2] << ", " << a[3] << "]]";
  return os.str();
}

Mat2 operator*(const Mat2& lhs, const Mat2& rhs) {
  Mat2 out;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 2; ++c)
      out(r, c) = lhs(r, 0) * rhs(0, c) + lhs(r, 1) * rhs(1, c);
  return out;
}

Mat2 operator*(cplx scalar, const Mat2& m) {
  Mat2 out = m;
  for (auto& x : out.a) x *= scalar;
  return out;
}

bool approx_equal(const Mat2& lhs, const Mat2& rhs, double tol) {
  for (std::size_t i = 0; i < 4; ++i)
    if (std::abs(lhs.a[i] - rhs.a[i]) > tol) return false;
  return true;
}

bool approx_equal_up_to_phase(const Mat2& lhs, const Mat2& rhs, double tol) {
  // Find the first entry of rhs with non-negligible magnitude and use it to
  // fix the relative phase.
  for (std::size_t i = 0; i < 4; ++i) {
    if (std::abs(rhs.a[i]) > tol) {
      if (std::abs(lhs.a[i]) < tol) return false;
      const cplx phase = lhs.a[i] / rhs.a[i];
      if (std::abs(std::abs(phase) - 1.0) > tol) return false;
      return approx_equal(lhs, phase * rhs, tol);
    }
  }
  return approx_equal(lhs, rhs, tol);  // rhs is (numerically) zero
}

Mat4 Mat4::identity() {
  Mat4 m;
  for (std::size_t i = 0; i < 4; ++i) m(i, i) = 1;
  return m;
}

Mat4 Mat4::adjoint() const {
  Mat4 m;
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) m(r, c) = std::conj((*this)(c, r));
  return m;
}

bool Mat4::is_unitary(double tol) const { return unitary_impl(*this, 4, tol); }

Mat4 operator*(const Mat4& lhs, const Mat4& rhs) {
  Mat4 out;
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) {
      cplx sum = 0;
      for (std::size_t k = 0; k < 4; ++k) sum += lhs(r, k) * rhs(k, c);
      out(r, c) = sum;
    }
  return out;
}

bool approx_equal(const Mat4& lhs, const Mat4& rhs, double tol) {
  for (std::size_t i = 0; i < 16; ++i)
    if (std::abs(lhs.a[i] - rhs.a[i]) > tol) return false;
  return true;
}

Mat4 kron(const Mat2& a, const Mat2& b) {
  Mat4 out;
  for (std::size_t ar = 0; ar < 2; ++ar)
    for (std::size_t ac = 0; ac < 2; ++ac)
      for (std::size_t br = 0; br < 2; ++br)
        for (std::size_t bc = 0; bc < 2; ++bc)
          out(2 * ar + br, 2 * ac + bc) = a(ar, ac) * b(br, bc);
  return out;
}

}  // namespace eqc
