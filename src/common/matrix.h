// Small dense complex matrices used to describe single- and two-qubit gates.
//
// These are value types with fixed dimension 2 or 4; the state-vector
// simulator consumes them directly.  For anything larger the library works
// at the circuit level, never with explicit matrices.
#pragma once

#include <array>
#include <complex>
#include <cstddef>
#include <string>

namespace eqc {

using cplx = std::complex<double>;

inline constexpr double kTolerance = 1e-9;

/// Dense complex 2x2 matrix (row-major).
struct Mat2 {
  std::array<cplx, 4> a{};

  cplx& operator()(std::size_t r, std::size_t c) { return a[2 * r + c]; }
  const cplx& operator()(std::size_t r, std::size_t c) const { return a[2 * r + c]; }

  static Mat2 identity();
  Mat2 adjoint() const;
  bool is_unitary(double tol = kTolerance) const;
  std::string to_string() const;
};

Mat2 operator*(const Mat2& lhs, const Mat2& rhs);
Mat2 operator*(cplx scalar, const Mat2& m);
bool approx_equal(const Mat2& lhs, const Mat2& rhs, double tol = kTolerance);
/// Equal up to a global phase e^{i theta}.
bool approx_equal_up_to_phase(const Mat2& lhs, const Mat2& rhs,
                              double tol = kTolerance);

/// Dense complex 4x4 matrix (row-major), for two-qubit gates.
struct Mat4 {
  std::array<cplx, 16> a{};

  cplx& operator()(std::size_t r, std::size_t c) { return a[4 * r + c]; }
  const cplx& operator()(std::size_t r, std::size_t c) const { return a[4 * r + c]; }

  static Mat4 identity();
  Mat4 adjoint() const;
  bool is_unitary(double tol = kTolerance) const;
};

Mat4 operator*(const Mat4& lhs, const Mat4& rhs);
bool approx_equal(const Mat4& lhs, const Mat4& rhs, double tol = kTolerance);

/// Kronecker product a (x) b: qubit of `a` is the more significant index.
Mat4 kron(const Mat2& a, const Mat2& b);

}  // namespace eqc
