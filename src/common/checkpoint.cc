#include "common/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/assert.h"
#include "obs/metrics.h"

namespace eqc {

void write_file_atomically(const std::string& path,
                           const std::string& content) {
  // One site covers every engine's checkpoint/report writes (campaign, MC,
  // matrix, fuzz, serve).  Write counts follow wall-clock cadence legs, so
  // both metrics are Det::Runtime.
  static obs::Counter& c_writes =
      obs::counter("checkpoint.writes", obs::Det::Runtime);
  static obs::Histogram& h_write_ms = obs::histogram(
      "checkpoint.write_ms", {0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100},
      obs::Det::Runtime);
  c_writes.add(1);
  obs::LatencyTimer timer(h_write_ms);

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    EQC_CHECK(out.good());
    out << content;
    out.flush();
    EQC_CHECK(out.good());
  }
  EQC_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0);
}

bool read_file(const std::string& path, std::string& content) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  content = ss.str();
  return true;
}

std::string quarantine_corrupt_file(const std::string& path) {
  const std::string dest = path + ".corrupt";
  if (std::rename(path.c_str(), dest.c_str()) != 0) return std::string();
  return dest;
}

json::Value parse_checkpoint_document(const std::string& text,
                                      const std::string& kind,
                                      std::uint64_t schema_version) {
  json::Value doc;
  try {
    doc = json::Value::parse(text);
  } catch (const json::JsonError& e) {
    throw CheckpointCorrupt("checkpoint is not valid JSON (truncated or "
                            "corrupt): " +
                            std::string(e.what()));
  }
  if (!doc.is_object())
    throw CheckpointCorrupt("checkpoint document is not a JSON object");
  const json::Value* got_kind = doc.find("kind");
  if (got_kind == nullptr || !got_kind->is_string() ||
      got_kind->as_string() != kind)
    throw CheckpointCorrupt("checkpoint kind mismatch: expected \"" + kind +
                            "\"");
  const json::Value* version = doc.find("schema_version");
  if (version == nullptr || !version->is_number())
    throw CheckpointCorrupt("checkpoint has no schema_version");
  std::uint64_t got = 0;
  try {
    got = version->as_u64();
  } catch (const json::JsonError&) {
    throw CheckpointCorrupt("checkpoint schema_version is not an integer");
  }
  if (got != schema_version)
    throw CheckpointCorrupt(
        "checkpoint schema_version mismatch: file has " + std::to_string(got) +
        ", loader implements " + std::to_string(schema_version));
  return doc;
}

}  // namespace eqc
