// Crash-safe checkpoint plumbing shared by every resumable engine
// (analysis/campaign, noise/monte_carlo, testing/fuzz, serve/*).
//
// A checkpoint is a single JSON document written ATOMICALLY (tmp file +
// rename), so a reader never observes a torn write from a crash between
// bytes — the file is either the previous complete document or the new
// one.  What a reader CAN observe is damage from outside the process
// (disk corruption, manual edits, a copy truncated in flight).  All
// loaders therefore parse through parse_checkpoint_document, which
// converts every malformed-input failure into the distinct
// CheckpointCorrupt error — callers can tell "this checkpoint is damaged,
// fall back to a fresh start" apart from "this checkpoint belongs to a
// different run" (a fingerprint mismatch, ContractViolation) and from
// programming errors.
//
// Every checkpoint document carries an envelope:
//   { "kind": "<engine-specific string>", "schema_version": N, ... }
// A kind or schema_version mismatch is corruption-by-construction: the
// bytes cannot be interpreted under the schema the loader implements.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/json.h"

namespace eqc {

/// Thrown when a checkpoint (or journal) file cannot be interpreted:
/// unparseable JSON, missing envelope, wrong kind, or a schema_version the
/// loader does not implement.  Distinct from ContractViolation (fingerprint
/// mismatch / API misuse) so callers can fall back to a fresh start on
/// corruption while still failing loudly on operator error.
class CheckpointCorrupt : public std::runtime_error {
 public:
  explicit CheckpointCorrupt(const std::string& what)
      : std::runtime_error(what) {}
};

/// Writes `content` to `path` via a same-directory temp file + rename, so
/// readers (and a post-crash restart) see either the old bytes or the new
/// bytes, never a prefix.  Flushes user-space buffers before the rename.
void write_file_atomically(const std::string& path, const std::string& content);

/// Reads a whole file; false when it cannot be opened.
bool read_file(const std::string& path, std::string& content);

/// Moves a damaged checkpoint aside to "<path>.corrupt" (best effort) so a
/// fresh start does not silently overwrite the evidence.  Returns the
/// quarantine path, or an empty string when nothing was moved.
std::string quarantine_corrupt_file(const std::string& path);

/// Parses one checkpoint document and validates its envelope.  Throws
/// CheckpointCorrupt when `text` is not valid JSON, is not an object, or
/// its "kind" / "schema_version" members are absent or mismatched.
json::Value parse_checkpoint_document(const std::string& text,
                                      const std::string& kind,
                                      std::uint64_t schema_version);

/// Checkpoint cadence: a write is due every `every_items` completed items
/// OR — when `min_interval_sec > 0` — whenever that much wall time elapsed
/// since the last write, whichever comes first.  The time leg bounds the
/// work a crash can lose even when individual items are slow (a shard that
/// takes seconds per item would otherwise stretch an item-count cadence
/// into minutes of unjournaled progress).
class CheckpointCadence {
 public:
  using Clock = std::chrono::steady_clock;

  CheckpointCadence(std::uint64_t every_items, double min_interval_sec,
                    Clock::time_point now = Clock::now())
      : every_items_(every_items == 0 ? 1 : every_items),
        min_interval_sec_(min_interval_sec),
        last_write_(now) {}

  /// Records one completed item; true when a checkpoint is now due.
  bool item_done(Clock::time_point now = Clock::now()) {
    ++items_since_write_;
    if (items_since_write_ >= every_items_) return true;
    if (min_interval_sec_ > 0.0) {
      const std::chrono::duration<double> dt = now - last_write_;
      if (dt.count() >= min_interval_sec_) return true;
    }
    return false;
  }

  /// Resets both legs after a checkpoint write.
  void wrote(Clock::time_point now = Clock::now()) {
    items_since_write_ = 0;
    last_write_ = now;
  }

 private:
  std::uint64_t every_items_;
  double min_interval_sec_;
  std::uint64_t items_since_write_ = 0;
  Clock::time_point last_write_;
};

}  // namespace eqc
