// Minimal JSON value type with a parser and a deterministic serializer.
//
// Used by the fault-campaign engine for checkpoints, reports and replay
// artifacts.  Design constraints that rule out an off-the-shelf library:
//  * object members keep INSERTION order and dump() is byte-deterministic,
//    so a parallel campaign can be compared bit-for-bit against a serial
//    one by comparing serialized reports;
//  * integers up to 64 bits round-trip exactly (site ordinals and trial
//    counters must not pass through a double);
//  * no external dependency.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace eqc::json {

/// Thrown by Value::parse on malformed input and by the typed accessors on
/// a type mismatch.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class Value;
using Array = std::vector<Value>;
/// Insertion-ordered object representation (deterministic dumps).
using Object = std::vector<std::pair<std::string, Value>>;

class Value {
 public:
  enum class Type { Null, Bool, Int, Uint, Double, String, Array, Object };

  Value() = default;
  Value(std::nullptr_t) {}
  Value(bool b) : type_(Type::Bool), bool_(b) {}
  Value(std::int64_t v) : type_(Type::Int), int_(v) {}
  Value(std::uint64_t v) : type_(Type::Uint), uint_(v) {}
  Value(int v) : Value(static_cast<std::int64_t>(v)) {}
  Value(unsigned v) : Value(static_cast<std::uint64_t>(v)) {}
  Value(double v) : type_(Type::Double), double_(v) {}
  Value(std::string s) : type_(Type::String), string_(std::move(s)) {}
  Value(const char* s) : Value(std::string(s)) {}
  Value(Array a) : type_(Type::Array), array_(std::move(a)) {}
  Value(Object o) : type_(Type::Object), object_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const {
    return type_ == Type::Int || type_ == Type::Uint || type_ == Type::Double;
  }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  bool as_bool() const;
  std::int64_t as_i64() const;
  std::uint64_t as_u64() const;
  double as_double() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Object member lookup; nullptr when absent (or not an object).
  const Value* find(const std::string& key) const;
  /// Object member lookup; throws JsonError when absent.
  const Value& at(const std::string& key) const;
  /// Appends (or replaces) an object member, keeping insertion order.
  void set(const std::string& key, Value v);

  /// Parses one JSON document (throws JsonError on malformed input).
  static Value parse(const std::string& text);

  /// Compact, deterministic serialization (no whitespace).
  std::string dump() const;

 private:
  void dump_to(std::string& out) const;

  Type type_ = Type::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace eqc::json
