// JSON-line protocol over a local (Unix-domain) socket.
//
// One request per line, one response per line, newline-terminated compact
// JSON documents.  Requests carry a "verb" member; responses always carry
// "ok" (true/false) and, on failure, "error".  The framing is transport
// only — all semantics live in serve/server.cc's dispatch.
//
// Verbs:
//   ping                          -> {"ok":true,"kind":"eqc_serve",...}
//   submit   {"job": <JobSpec>}   -> {"ok":true,"id":N}
//   status   [{"id":N}]           -> {"ok":true,"jobs":[...]}
//   cancel   {"id":N}             -> {"ok":true,"cancelled":bool}
//   metrics                       -> {"ok":true,"metrics":<obs snapshot>}
//   shutdown [{"mode":"checkpoint"|"finish"}] -> {"ok":true}
//
// The one STREAMING verb breaks the one-request/one-response rule:
//   watch    {"id":N}             -> a {"ok":true,"event":"progress",
//                                     "job":{...}} line every ~1s until the
//                                     job is terminal (final line carries
//                                     the terminal status), the client
//                                     hangs up, or the server shuts down
//                                     (stream simply ends — clients fall
//                                     back to status polling).
#pragma once

#include <string>

#include "common/json.h"

namespace eqc::serve {

/// Reads one newline-terminated line from a connected socket (the newline
/// is stripped).  False on EOF / error / timeout before a full line.
bool read_line(int fd, std::string& line);

/// Writes `line` plus a trailing newline; false on error.  Uses
/// MSG_NOSIGNAL so a vanished peer yields an error, not SIGPIPE.
bool write_line(int fd, const std::string& line);

/// Blocking JSON-line client for eqc_ctl and tests.
class Client {
 public:
  /// Connects to the server's Unix socket; throws ContractViolation when
  /// the connection cannot be established.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request and waits for the one-line response.  Throws
  /// ContractViolation on a transport failure and JsonError on a
  /// malformed response.
  json::Value request(const json::Value& req);

  /// Streaming half of the protocol (the `watch` verb): send one request,
  /// then read response lines as they arrive.  read_response returns false
  /// on EOF / error / read timeout (stream ended — fall back to polling).
  void send(const json::Value& req);
  bool read_response(json::Value& out);

  /// Bounds every subsequent read (SO_RCVTIMEO); 0 restores blocking mode.
  void set_read_timeout(double seconds);

 private:
  int fd_ = -1;
};

/// True when a server answers ping on `socket_path` (used by clients to
/// poll for startup and by the soak harness to detect death).
bool server_alive(const std::string& socket_path);

}  // namespace eqc::serve
