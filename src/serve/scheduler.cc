#include "serve/scheduler.h"

#include <chrono>
#include <utility>

#include "common/assert.h"
#include "common/checkpoint.h"
#include "obs/metrics.h"

namespace eqc::serve {

using Clock = std::chrono::steady_clock;

namespace {

obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g =
      obs::gauge("serve.scheduler.queue_depth", obs::Det::Runtime);
  return g;
}
obs::Gauge& running_gauge() {
  static obs::Gauge& g =
      obs::gauge("serve.scheduler.jobs_running", obs::Det::Runtime);
  return g;
}

}  // namespace

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::Queued:
      return "queued";
    case JobStatus::Running:
      return "running";
    case JobStatus::Done:
      return "done";
    case JobStatus::Failed:
      return "failed";
    case JobStatus::Cancelled:
      return "cancelled";
  }
  return "?";
}

namespace {

struct ReplayedJob {
  JobSpec spec;
  JobStatus status = JobStatus::Queued;
  bool cancel_requested = false;
  std::string error;
};

/// Reconstructs job states from journal records.  Throws CheckpointCorrupt
/// on semantic damage (events for unknown jobs, duplicate submits,
/// unparseable specs) — everything the append protocol cannot produce.
std::map<std::uint64_t, ReplayedJob> replay_records(
    const std::vector<json::Value>& records) {
  std::map<std::uint64_t, ReplayedJob> jobs;
  for (const auto& rec : records) {
    std::string event;
    std::uint64_t id = 0;
    try {
      event = rec.at("event").as_string();
      id = rec.at("id").as_u64();
    } catch (const json::JsonError& e) {
      throw CheckpointCorrupt(std::string("journal replay: ") + e.what());
    }
    if (event == "submit") {
      if (jobs.count(id) != 0)
        throw CheckpointCorrupt("journal replay: duplicate submit");
      ReplayedJob job;
      try {
        job.spec = JobSpec::from_json(rec.at("spec"));
      } catch (const std::exception& e) {
        throw CheckpointCorrupt(std::string("journal replay: bad spec: ") +
                                e.what());
      }
      jobs.emplace(id, std::move(job));
      continue;
    }
    const auto it = jobs.find(id);
    if (it == jobs.end())
      throw CheckpointCorrupt("journal replay: event for unknown job");
    if (event == "start") {
      // A run attempt began; without a terminal event the job is still
      // pending and will resume from its checkpoint.
    } else if (event == "cancel") {
      it->second.cancel_requested = true;
    } else if (event == "done") {
      it->second.status = JobStatus::Done;
    } else if (event == "failed") {
      it->second.status = JobStatus::Failed;
      if (const json::Value* err = rec.find("error"); err && err->is_string())
        it->second.error = err->as_string();
    } else if (event == "cancelled") {
      it->second.status = JobStatus::Cancelled;
    } else {
      throw CheckpointCorrupt("journal replay: unknown event");
    }
  }
  return jobs;
}

bool is_terminal(JobStatus status) {
  return status == JobStatus::Done || status == JobStatus::Failed ||
         status == JobStatus::Cancelled;
}

json::Value event_record(const char* event, std::uint64_t id) {
  json::Object obj;
  obj.emplace_back("event", event);
  obj.emplace_back("id", id);
  return json::Value(std::move(obj));
}

}  // namespace

std::string Scheduler::checkpoint_path(std::uint64_t id) const {
  return cfg_.state_dir + "/job-" + std::to_string(id) + ".checkpoint.json";
}

std::string Scheduler::report_path(std::uint64_t id) const {
  return cfg_.state_dir + "/job-" + std::to_string(id) + ".report.json";
}

Scheduler::Scheduler(SchedulerConfig cfg) : cfg_(std::move(cfg)) {
  EQC_EXPECTS(!cfg_.state_dir.empty());
  if (cfg_.max_concurrent_jobs == 0) cfg_.max_concurrent_jobs = 1;
  const std::string journal_path = cfg_.state_dir + "/journal.jsonl";

  auto log = [this](const std::string& line) {
    if (cfg_.log) cfg_.log(line);
  };
  std::vector<json::Value> records;
  std::map<std::uint64_t, ReplayedJob> replayed;
  JournalLoadStats load_stats;
  try {
    records = Journal::load(journal_path, &load_stats);
    replayed = replay_records(records);
  } catch (const CheckpointCorrupt& e) {
    // Damage the append protocol cannot produce: keep the evidence aside
    // and start a fresh history.  Reports already written stay on disk.
    const std::string quarantined = quarantine_corrupt_file(journal_path);
    log("journal: corrupt (" + std::string(e.what()) + "); quarantined to " +
        (quarantined.empty() ? std::string("<unlinked>") : quarantined) +
        ", starting fresh");
    obs::counter("serve.journal.quarantined", obs::Det::Runtime).add(1);
    records.clear();
    replayed.clear();
    load_stats = JournalLoadStats{};
  }
  if (load_stats.records > 0 || load_stats.torn_bytes > 0) {
    std::string line =
        "journal: replayed " + std::to_string(load_stats.records) +
        " record(s)";
    if (load_stats.torn_bytes > 0)
      line += ", dropped " + std::to_string(load_stats.torn_bytes) +
              " torn tail byte(s)";
    log(line);
  }
  obs::counter("serve.journal.recovered_records", obs::Det::Runtime)
      .add(load_stats.records);
  obs::counter("serve.journal.torn_bytes_dropped", obs::Det::Runtime)
      .add(load_stats.torn_bytes);
  journal_ = std::make_unique<Journal>(journal_path, records.size());

  std::unique_lock<std::mutex> lock(mu_);
  for (auto& [id, job] : replayed) {
    Record rec;
    rec.spec = std::move(job.spec);
    rec.status = job.status;
    rec.cancel_requested = job.cancel_requested;
    rec.error = std::move(job.error);
    next_id_ = std::max(next_id_, id + 1);
    if (!is_terminal(rec.status) && rec.cancel_requested) {
      // A cancel was requested before the crash/drain; honour it now
      // instead of re-running work the user asked to stop.
      journal_->append(event_record("cancelled", id));
      rec.status = JobStatus::Cancelled;
    }
    const bool enqueue = !is_terminal(rec.status);
    jobs_.emplace(id, std::move(rec));
    if (enqueue) pending_.push_back(id);
  }
  queue_depth_gauge().set(static_cast<std::int64_t>(pending_.size()));

  for (unsigned i = 0; i < cfg_.max_concurrent_jobs; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

Scheduler::~Scheduler() { drain(); }

std::uint64_t Scheduler::submit(const JobSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  EQC_EXPECTS(!draining_);
  const std::uint64_t id = next_id_++;
  json::Value rec = event_record("submit", id);
  rec.set("spec", spec.to_json_value());
  journal_->append(std::move(rec));  // journal-first: no event, no job
  Record job;
  job.spec = spec;
  jobs_.emplace(id, std::move(job));
  pending_.push_back(id);
  queue_depth_gauge().set(static_cast<std::int64_t>(pending_.size()));
  cv_.notify_all();
  return id;
}

bool Scheduler::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end() || is_terminal(it->second.status)) return false;
  Record& rec = it->second;
  journal_->append(event_record("cancel", id));
  rec.cancel_requested = true;
  if (rec.status == JobStatus::Queued) {
    // Never started (or between attempts): terminal immediately.
    journal_->append(event_record("cancelled", id));
    rec.status = JobStatus::Cancelled;
  } else if (rec.stop) {
    rec.stop->store(true);  // running: the worker writes the terminal event
  }
  cv_.notify_all();
  return true;
}

void Scheduler::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [this] { return draining_ || !pending_.empty(); });
    if (draining_) return;
    const std::uint64_t id = pending_.front();
    pending_.pop_front();
    queue_depth_gauge().set(static_cast<std::int64_t>(pending_.size()));
    const auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second.status != JobStatus::Queued) continue;
    run_one_locked(lock, id);
    cv_.notify_all();
  }
}

void Scheduler::run_one_locked(std::unique_lock<std::mutex>& lock,
                               std::uint64_t id) {
  Record& rec = jobs_.at(id);  // map nodes are stable; never erased
  journal_->append(event_record("start", id));
  rec.status = JobStatus::Running;
  auto stop = std::make_shared<std::atomic<bool>>(false);
  rec.stop = stop;
  ++running_;
  running_gauge().set(running_);
  const JobSpec spec = rec.spec;
  const JobPaths paths{checkpoint_path(id), report_path(id)};
  const auto t0 = Clock::now();
  rec.attempt_start = t0;

  lock.unlock();
  JobOutcome outcome;
  bool threw = false;
  std::string error;
  try {
    outcome = run_job(spec, paths, stop.get(),
                      [this, id](const JobProgress& p) {
                        std::lock_guard<std::mutex> g(mu_);
                        const auto jt = jobs_.find(id);
                        if (jt != jobs_.end()) jt->second.progress = p;
                      });
  } catch (const std::exception& e) {
    threw = true;
    error = e.what();
  }
  lock.lock();

  rec.wall_sec += std::chrono::duration<double>(Clock::now() - t0).count();
  rec.stop.reset();
  --running_;
  running_gauge().set(running_);
  if (threw) {
    json::Value ev = event_record("failed", id);
    ev.set("error", error);
    journal_->append(std::move(ev));
    rec.status = JobStatus::Failed;
    rec.error = error;
  } else if (outcome.complete) {
    journal_->append(event_record("done", id));
    rec.status = JobStatus::Done;
  } else if (rec.cancel_requested) {
    journal_->append(event_record("cancelled", id));
    rec.status = JobStatus::Cancelled;
  } else {
    // Stopped by a drain: NO terminal event, so the next Scheduler over
    // this state directory re-enqueues and resumes from the checkpoint.
    rec.status = JobStatus::Queued;
    if (!draining_) {
      pending_.push_back(id);
      queue_depth_gauge().set(static_cast<std::int64_t>(pending_.size()));
    }
  }
}

// GCC 12's -Warray-bounds fires a false positive inside vector::emplace_back's
// reallocation path for pair<string, json::Value> once this function grew past
// the inliner's threshold (GCC PR 107852); the code is plain appends.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"
#pragma GCC diagnostic ignored "-Wrestrict"
json::Value Scheduler::status_locked(std::uint64_t id,
                                     const Record& rec) const {
  json::Object obj;
  obj.reserve(14);
  obj.emplace_back("id", id);
  obj.emplace_back("type", json::Value(to_string(rec.spec.type)));
  obj.emplace_back("status", json::Value(to_string(rec.status)));
  obj.emplace_back("cancel_requested", rec.cancel_requested);
  obj.emplace_back("items_done", rec.progress.items_done);
  obj.emplace_back("total_items", rec.progress.total_items);
  obj.emplace_back("counter", rec.progress.counter.to_json_value());
  obj.emplace_back("wall_sec", rec.wall_sec);
  // Live view: elapsed includes the in-flight attempt; rate/ETA derive
  // from the progress counters (ETA only when the denominator is honest).
  double elapsed = rec.wall_sec;
  if (rec.status == JobStatus::Running)
    elapsed +=
        std::chrono::duration<double>(Clock::now() - rec.attempt_start).count();
  obj.emplace_back("elapsed_sec", elapsed);
  const double rate =
      elapsed > 0.0 ? static_cast<double>(rec.progress.items_done) / elapsed
                    : 0.0;
  obj.emplace_back("rate_per_sec", rate);
  if (rate > 0.0 && rec.progress.total_items > rec.progress.items_done &&
      !is_terminal(rec.status))
    obj.emplace_back(
        "eta_sec",
        static_cast<double>(rec.progress.total_items -
                            rec.progress.items_done) /
            rate);
  if (!rec.error.empty()) obj.emplace_back("error", rec.error);
  if (rec.status == JobStatus::Done)
    obj.emplace_back("report", report_path(id));
  return json::Value(std::move(obj));
}
#pragma GCC diagnostic pop

json::Value Scheduler::status(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return json::Value();
  return status_locked(id, it->second);
}

json::Value Scheduler::status_all() const {
  std::lock_guard<std::mutex> lock(mu_);
  json::Array arr;
  for (const auto& [id, rec] : jobs_) arr.push_back(status_locked(id, rec));
  return json::Value(std::move(arr));
}

std::size_t Scheduler::unfinished() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [id, rec] : jobs_)
    if (!is_terminal(rec.status)) ++n;
  return n;
}

bool Scheduler::wait_idle(double timeout_sec) const {
  std::unique_lock<std::mutex> lock(mu_);
  const auto idle = [this] { return pending_.empty() && running_ == 0; };
  if (timeout_sec <= 0.0) {
    cv_.wait(lock, idle);
    return true;
  }
  return cv_.wait_for(lock, std::chrono::duration<double>(timeout_sec), idle);
}

void Scheduler::drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) return;
    draining_ = true;
    for (auto& [id, rec] : jobs_)
      if (rec.stop) rec.stop->store(true);
    cv_.notify_all();
  }
  for (auto& w : workers_) w.join();
  workers_.clear();
}

}  // namespace eqc::serve
