// Write-ahead job journal for the eqc_serve scheduler.
//
// The journal is an append-only JSONL file: one JSON object per line, each
// carrying a strictly sequential "seq" member.  Every state transition of
// the scheduler (submit, start, cancel, done, ...) is appended and flushed
// BEFORE the transition takes effect, so after a kill -9 the journal is a
// complete prefix of the scheduler's history and replaying it reconstructs
// every job's status exactly.
//
// Crash model: a record is written with a single fwrite of "<json>\n"
// followed by fflush.  A crash can therefore leave at most one torn
// trailing line (a prefix of the last record, never containing '\n').
// load() tolerates exactly that — a final unterminated fragment is
// discarded as a crash artifact.  Any OTHER damage (an unparseable
// terminated line, a missing/out-of-order "seq", a non-object record) is
// not producible by the crash model and raises CheckpointCorrupt, which
// callers may answer by quarantining the file and starting fresh.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/json.h"

namespace eqc::serve {

/// What a journal load actually recovered — surfaced so the scheduler can
/// log a one-line recovery summary instead of silently dropping evidence.
struct JournalLoadStats {
  std::uint64_t records = 0;     ///< committed records replayed
  std::uint64_t torn_bytes = 0;  ///< bytes of the torn unterminated tail
};

/// Parses journal text into records (exposed for fuzz tests).  Tolerates a
/// torn unterminated tail (reported via `stats` when non-null); throws
/// CheckpointCorrupt on any interior damage.
std::vector<json::Value> parse_journal_text(const std::string& text,
                                            JournalLoadStats* stats = nullptr);

class Journal {
 public:
  /// Loads the records of an existing journal file (absent file = empty).
  static std::vector<json::Value> load(const std::string& path,
                                       JournalLoadStats* stats = nullptr);

  /// Opens `path` for appending (creating it when absent).  `next_seq`
  /// must continue the loaded history (pass records.size()).  Throws
  /// ContractViolation when the file cannot be opened.
  Journal(std::string path, std::uint64_t next_seq);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Stamps `record` with the next "seq" (prepended, so journal lines all
  /// lead with their sequence number), appends one line and flushes.
  void append(json::Value record);

  std::uint64_t next_seq() const { return next_seq_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t next_seq_ = 0;
};

}  // namespace eqc::serve
