// Job specifications and the job runner for eqc_serve.
//
// A job is one of the library's three long-running analyses — a fault
// campaign, a Monte-Carlo failure-rate run, or a differential fuzz run —
// described by a small JSON document (the same parameters the CLI tools
// accept).  The runner executes a job with a per-job worker budget, a
// cooperative stop token and a per-job checkpoint file, and writes the
// final report ATOMICALLY only when the job completes.  Because every
// engine is deterministic and resumable, a job killed at any point and
// re-run from its checkpoint produces a final report BYTE-IDENTICAL to an
// uninterrupted run.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/experiments.h"
#include "analysis/matrix.h"
#include "common/json.h"
#include "common/stats.h"
#include "testing/circuit_gen.h"
#include "testing/oracles.h"

namespace eqc::serve {

enum class JobType { Campaign, MonteCarlo, Fuzz, Matrix };

const char* to_string(JobType type);

/// Campaign-job parameters beyond the gadget (mirrors eqc_faultscan's
/// campaign options).
struct CampaignParams {
  bool chaos = false;         ///< chaos mode instead of k-fault counting
  std::size_t k = 2;          ///< fault-set size (k-fault mode)
  std::uint64_t budget = 4000;///< sets tested (k-fault) / trials (chaos)
  double chaos_p = 0.0;       ///< paper-model error probability (chaos)
  bool shrink = true;
  bool tripwire = false;      ///< codespace tripwire during replay
};

/// Monte-Carlo-job parameters (paper noise model at probability `p`).
struct McParams {
  double p = 1e-3;
  std::uint64_t trials = 1000;
  std::uint64_t block = 256;  ///< trials per block (= checkpoint cadence)
  /// "trials" (per-trial executor) | "frames" (64-lane frame batches).
  /// Counters and checkpoints are byte-identical across engines; the spec
  /// JSON serializes the field only when not "trials", so existing specs
  /// and their fingerprints are unchanged.
  std::string engine = "trials";
};

/// Fuzz-job parameters (mirrors eqc_fuzz's options).
struct FuzzParams {
  testing::GateSet gate_set = testing::GateSet::Clifford;
  std::size_t qubits = 5;
  std::size_t depth = 40;
  std::uint64_t trials = 200;
  double measure_prob = 0.15;
  double tol = 1e-7;
  bool shrink = true;
  testing::PlantedBug bug = testing::PlantedBug::None;
};

/// Scenario-matrix-job parameters (mirrors eqc_matrix's options).  The
/// gadget x (code, k, noise) grid sweeps through the campaign or MC engine
/// per cell; the per-job checkpoint path becomes the per-cell prefix.
struct MatrixParams {
  bool mc = false;  ///< MC trials per cell instead of k-fault counting
  std::vector<std::string> gadgets = {"ngate", "recovery"};
  std::vector<std::string> codes = {"steane", "rm15"};
  std::vector<int> ks = {1, 2};
  std::vector<std::string> noises = {"paper", "correlated"};
  std::size_t fault_k = 2;      ///< campaign fault-set size per cell
  std::uint64_t budget = 2000;  ///< fault sets tested per cell
  bool shrink = false;
  double p = 1e-3;              ///< MC physical error rate
  std::uint64_t trials = 2000;  ///< MC trials per cell
  std::string engine = "trials";  ///< MC cell engine ("trials" | "frames")
};

struct JobSpec {
  JobType type = JobType::MonteCarlo;
  /// Gadget under test (campaign and MC jobs; ignored by fuzz and matrix
  /// jobs — the matrix grid names its gadgets/scenarios per cell).
  analysis::GadgetSpec gadget;
  /// Per-job worker budget handed to the engine (0 = hardware threads).
  unsigned jobs = 1;
  std::uint64_t seed = 1;
  std::uint64_t checkpoint_every = 64;
  CampaignParams campaign;
  McParams mc;
  FuzzParams fuzz;
  MatrixParams matrix;

  /// Canonical JSON (insertion-ordered, deterministic) — journaled on
  /// submit and used as the Monte-Carlo checkpoint fingerprint.
  json::Value to_json_value() const;
  /// Parses a spec; throws ContractViolation on an unknown type/gadget and
  /// json::JsonError on malformed members.
  static JobSpec from_json(const json::Value& v);
};

/// Progress snapshot: a uniform (items_done / total / counter) view across
/// all three job types.  For MC jobs `counter` is the real FailureCounter;
/// campaign jobs map (sets_tested, malignant) and fuzz jobs (trials
/// merged, failures kept) onto it so one status schema serves everything.
struct JobProgress {
  std::uint64_t items_done = 0;
  std::uint64_t total_items = 0;
  FailureCounter counter;
};

struct JobPaths {
  std::string checkpoint;  ///< per-job checkpoint file
  std::string report;      ///< final report, written atomically on completion
};

struct JobOutcome {
  /// True when the job ran to completion and the report file was written;
  /// false when the stop token ended it early (checkpoint flushed).
  bool complete = false;
};

/// Runs (or resumes) one job.  Resumes from `paths.checkpoint` when it
/// exists; a damaged checkpoint is quarantined and the job restarts fresh
/// (determinism makes that safe).  Throws on misconfiguration.
JobOutcome run_job(const JobSpec& spec, const JobPaths& paths,
                   const std::atomic<bool>* stop,
                   const std::function<void(const JobProgress&)>& on_progress);

}  // namespace eqc::serve
