#include "serve/jobs.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "analysis/campaign.h"
#include "analysis/frame_oracle.h"
#include "analysis/matrix.h"
#include "codes/css_code.h"
#include "frame/driver.h"
#include "common/assert.h"
#include "common/checkpoint.h"
#include "noise/model.h"
#include "noise/monte_carlo.h"
#include "testing/fuzz.h"

namespace eqc::serve {

namespace {

constexpr char kMcCheckpointKind[] = "eqc-mc-checkpoint";
constexpr std::uint64_t kMcCheckpointSchemaVersion = 1;

std::uint64_t get_u64(const json::Value& v, const char* key,
                      std::uint64_t def) {
  const json::Value* m = v.find(key);
  return m == nullptr ? def : m->as_u64();
}

double get_double(const json::Value& v, const char* key, double def) {
  const json::Value* m = v.find(key);
  return m == nullptr ? def : m->as_double();
}

bool get_bool(const json::Value& v, const char* key, bool def) {
  const json::Value* m = v.find(key);
  return m == nullptr ? def : m->as_bool();
}

std::string get_string(const json::Value& v, const char* key,
                       const std::string& def) {
  const json::Value* m = v.find(key);
  return m == nullptr ? def : m->as_string();
}

std::vector<std::string> get_string_array(const json::Value& v,
                                          const char* key,
                                          std::vector<std::string> def) {
  const json::Value* m = v.find(key);
  if (m == nullptr) return def;
  std::vector<std::string> out;
  for (const auto& e : m->as_array()) out.push_back(e.as_string());
  return out;
}

std::vector<int> get_int_array(const json::Value& v, const char* key,
                               std::vector<int> def) {
  const json::Value* m = v.find(key);
  if (m == nullptr) return def;
  std::vector<int> out;
  for (const auto& e : m->as_array())
    out.push_back(static_cast<int>(e.as_i64()));
  return out;
}

json::Array to_json_array(const std::vector<std::string>& v) {
  json::Array arr;
  for (const auto& s : v) arr.emplace_back(s);
  return arr;
}

json::Array to_json_array(const std::vector<int>& v) {
  json::Array arr;
  for (int s : v) arr.emplace_back(s);
  return arr;
}

}  // namespace

const char* to_string(JobType type) {
  switch (type) {
    case JobType::Campaign:
      return "campaign";
    case JobType::MonteCarlo:
      return "mc";
    case JobType::Fuzz:
      return "fuzz";
    case JobType::Matrix:
      return "matrix";
  }
  return "?";
}

json::Value JobSpec::to_json_value() const {
  json::Object obj;
  obj.emplace_back("type", to_string(type));
  obj.emplace_back("jobs", jobs);
  obj.emplace_back("seed", seed);
  obj.emplace_back("checkpoint_every", checkpoint_every);
  if (type == JobType::Campaign || type == JobType::MonteCarlo) {
    obj.emplace_back("gadget", gadget.gadget);
    obj.emplace_back("reps", gadget.scenario.reps());
    obj.emplace_back("syndrome", gadget.syndrome);
    obj.emplace_back("correlated", gadget.scenario.noise == "correlated");
    obj.emplace_back("code", gadget.scenario.code);
    obj.emplace_back("noise", gadget.scenario.noise);
  }
  if (type == JobType::Campaign) {
    obj.emplace_back("mode", campaign.chaos ? "chaos" : "kfault");
    obj.emplace_back("k", static_cast<std::uint64_t>(campaign.k));
    obj.emplace_back("budget", campaign.budget);
    obj.emplace_back("chaos_p", campaign.chaos_p);
    obj.emplace_back("shrink", campaign.shrink);
    obj.emplace_back("tripwire", campaign.tripwire);
  } else if (type == JobType::MonteCarlo) {
    obj.emplace_back("p", mc.p);
    obj.emplace_back("trials", mc.trials);
    obj.emplace_back("block", mc.block);
    // Default engine is omitted: pre-engine specs round-trip (and
    // fingerprint) byte-identically.
    if (mc.engine != "trials") obj.emplace_back("engine", mc.engine);
  } else if (type == JobType::Matrix) {
    obj.emplace_back("mode", matrix.mc ? "mc" : "campaign");
    obj.emplace_back("gadgets", to_json_array(matrix.gadgets));
    obj.emplace_back("codes", to_json_array(matrix.codes));
    obj.emplace_back("ks", to_json_array(matrix.ks));
    obj.emplace_back("noises", to_json_array(matrix.noises));
    obj.emplace_back("fault_k", static_cast<std::uint64_t>(matrix.fault_k));
    obj.emplace_back("budget", matrix.budget);
    obj.emplace_back("shrink", matrix.shrink);
    obj.emplace_back("p", matrix.p);
    obj.emplace_back("trials", matrix.trials);
    if (matrix.engine != "trials") obj.emplace_back("engine", matrix.engine);
  } else {
    obj.emplace_back("gateset", testing::to_string(fuzz.gate_set));
    obj.emplace_back("qubits", static_cast<std::uint64_t>(fuzz.qubits));
    obj.emplace_back("depth", static_cast<std::uint64_t>(fuzz.depth));
    obj.emplace_back("trials", fuzz.trials);
    obj.emplace_back("measure_prob", fuzz.measure_prob);
    obj.emplace_back("tol", fuzz.tol);
    obj.emplace_back("shrink", fuzz.shrink);
    obj.emplace_back("plant_bug", std::string(testing::to_string(fuzz.bug)));
  }
  return json::Value(std::move(obj));
}

JobSpec JobSpec::from_json(const json::Value& v) {
  EQC_EXPECTS(v.is_object());
  JobSpec spec;
  const std::string type = get_string(v, "type", "");
  if (type == "campaign")
    spec.type = JobType::Campaign;
  else if (type == "mc")
    spec.type = JobType::MonteCarlo;
  else if (type == "fuzz")
    spec.type = JobType::Fuzz;
  else if (type == "matrix")
    spec.type = JobType::Matrix;
  else
    EQC_CHECK(false && "unknown job type");
  spec.jobs = static_cast<unsigned>(get_u64(v, "jobs", 1));
  spec.seed = get_u64(v, "seed", 1);
  spec.checkpoint_every = get_u64(v, "checkpoint_every", 64);
  if (spec.type == JobType::Campaign || spec.type == JobType::MonteCarlo) {
    spec.gadget.gadget = get_string(v, "gadget", "ngate");
    EQC_CHECK(analysis::is_known_gadget(spec.gadget.gadget));
    spec.gadget.scenario.code = get_string(v, "code", "steane");
    EQC_CHECK(codes::find_code(spec.gadget.scenario.code) != nullptr);
    // "noise" is authoritative; the legacy "correlated" flag maps onto it
    // (old specs keep parsing, and specs round-trip byte-identically).
    spec.gadget.scenario.noise = get_string(
        v, "noise", get_bool(v, "correlated", false) ? "correlated" : "paper");
    EQC_CHECK(analysis::is_known_noise(spec.gadget.scenario.noise));
    const int reps = static_cast<int>(get_u64(v, "reps", 3));
    EQC_CHECK(reps >= 1 && reps % 2 == 1);
    spec.gadget.scenario.repetition_k = (reps - 1) / 2;
    spec.gadget.syndrome = get_bool(v, "syndrome", true);
    spec.gadget.seed = spec.seed;
  }
  if (spec.type == JobType::Campaign) {
    const std::string mode = get_string(v, "mode", "kfault");
    EQC_CHECK(mode == "kfault" || mode == "chaos");
    spec.campaign.chaos = mode == "chaos";
    spec.campaign.k = static_cast<std::size_t>(get_u64(v, "k", 2));
    spec.campaign.budget = get_u64(v, "budget", 4000);
    spec.campaign.chaos_p = get_double(v, "chaos_p", 0.0);
    spec.campaign.shrink = get_bool(v, "shrink", true);
    spec.campaign.tripwire = get_bool(v, "tripwire", false);
  } else if (spec.type == JobType::MonteCarlo) {
    spec.mc.p = get_double(v, "p", 1e-3);
    spec.mc.trials = get_u64(v, "trials", 1000);
    spec.mc.block = get_u64(v, "block", 256);
    spec.mc.engine = get_string(v, "engine", "trials");
    EQC_CHECK(spec.mc.engine == "trials" || spec.mc.engine == "frames");
  } else if (spec.type == JobType::Matrix) {
    const std::string mode = get_string(v, "mode", "campaign");
    EQC_CHECK(mode == "campaign" || mode == "mc");
    spec.matrix.mc = mode == "mc";
    spec.matrix.gadgets = get_string_array(v, "gadgets", spec.matrix.gadgets);
    spec.matrix.codes = get_string_array(v, "codes", spec.matrix.codes);
    spec.matrix.ks = get_int_array(v, "ks", spec.matrix.ks);
    spec.matrix.noises = get_string_array(v, "noises", spec.matrix.noises);
    spec.matrix.fault_k = static_cast<std::size_t>(get_u64(v, "fault_k", 2));
    spec.matrix.budget = get_u64(v, "budget", 2000);
    spec.matrix.shrink = get_bool(v, "shrink", false);
    spec.matrix.p = get_double(v, "p", 1e-3);
    spec.matrix.trials = get_u64(v, "trials", 2000);
    spec.matrix.engine = get_string(v, "engine", "trials");
    EQC_CHECK(spec.matrix.engine == "trials" ||
              spec.matrix.engine == "frames");
  } else {
    spec.fuzz.gate_set =
        testing::gate_set_from_string(get_string(v, "gateset", "clifford"));
    spec.fuzz.qubits = static_cast<std::size_t>(get_u64(v, "qubits", 5));
    spec.fuzz.depth = static_cast<std::size_t>(get_u64(v, "depth", 40));
    spec.fuzz.trials = get_u64(v, "trials", 200);
    spec.fuzz.measure_prob = get_double(v, "measure_prob", 0.15);
    spec.fuzz.tol = get_double(v, "tol", 1e-7);
    spec.fuzz.shrink = get_bool(v, "shrink", true);
    spec.fuzz.bug =
        testing::bug_from_string(get_string(v, "plant_bug", "none"));
  }
  return spec;
}

namespace {

// --- campaign jobs ----------------------------------------------------------

JobOutcome run_campaign_job(
    const JobSpec& spec, const JobPaths& paths,
    const std::atomic<bool>* stop,
    const std::function<void(const JobProgress&)>& on_progress) {
  analysis::BuiltGadget built = analysis::build_gadget_experiment(spec.gadget);

  analysis::CampaignConfig cfg;
  if (spec.campaign.chaos) {
    cfg.mode = analysis::CampaignMode::Chaos;
    cfg.budget = spec.campaign.budget;
    cfg.chaos_model = noise::NoiseModel::paper_model(spec.campaign.chaos_p);
  } else {
    cfg.mode = analysis::CampaignMode::KFault;
    cfg.k = spec.campaign.k;
    cfg.budget = spec.campaign.budget;
  }
  cfg.jobs = spec.jobs;
  cfg.shrink = spec.campaign.shrink;
  cfg.checkpoint_path = paths.checkpoint;
  cfg.checkpoint_every = spec.checkpoint_every;
  cfg.checkpoint_min_interval_sec = 2.0;
  cfg.resume = true;
  cfg.fresh_on_corrupt = true;
  cfg.stop = stop;
  if (on_progress) {
    cfg.on_progress = [&on_progress](const analysis::CampaignProgress& p) {
      JobProgress jp;
      jp.items_done = p.items_done;
      jp.total_items = p.total_items;
      jp.counter.trials = p.sets_tested;
      jp.counter.failures = p.malignant;
      on_progress(jp);
    };
  }
  if (spec.campaign.tripwire) {
    const codes::CodeBlock block = built.main_block;
    const codes::CssCode* code = built.code;
    cfg.tripwire.violated = [block, code](circuit::TabBackend& b) {
      return !code->block_in_codespace(b.tableau(), block);
    };
    const auto valid =
        analysis::calibrate_probe_sites(built.ex, cfg.tripwire.violated);
    if (built.probe_after.empty()) {
      cfg.tripwire.probe_after = valid;
    } else {
      std::set_intersection(built.probe_after.begin(),
                            built.probe_after.end(), valid.begin(),
                            valid.end(),
                            std::back_inserter(cfg.tripwire.probe_after));
    }
  }

  const auto report = analysis::run_campaign(built.ex, cfg);
  JobOutcome outcome;
  outcome.complete = report.complete;
  if (report.complete)
    write_file_atomically(paths.report, report.to_json());
  return outcome;
}

// --- Monte-Carlo jobs -------------------------------------------------------

std::string mc_fingerprint(const JobSpec& spec) {
  return spec.to_json_value().dump();
}

json::Value mc_checkpoint_to_json(const std::string& fingerprint,
                                  const noise::McProgress& p) {
  json::Object obj;
  obj.emplace_back("kind", kMcCheckpointKind);
  obj.emplace_back("schema_version", kMcCheckpointSchemaVersion);
  obj.emplace_back("fingerprint", fingerprint);
  obj.emplace_back("next_index", p.next_index);
  obj.emplace_back("trials", p.counter.trials);
  obj.emplace_back("failures", p.counter.failures);
  obj.emplace_back("stopped_early", p.counter.stopped_early);
  return json::Value(std::move(obj));
}

/// Loads an MC checkpoint; false when there is nothing (valid) to resume
/// from.  A damaged file is quarantined (fresh start — determinism makes
/// that safe); a fingerprint mismatch is an operator error and throws.
bool load_mc_checkpoint(const std::string& path,
                        const std::string& fingerprint,
                        noise::McProgress& out) {
  std::string text;
  if (!read_file(path, text)) return false;
  try {
    const json::Value doc = parse_checkpoint_document(
        text, kMcCheckpointKind, kMcCheckpointSchemaVersion);
    EQC_CHECK(doc.at("fingerprint").as_string() == fingerprint);
    try {
      out.next_index = doc.at("next_index").as_u64();
      out.counter.trials = doc.at("trials").as_u64();
      out.counter.failures = doc.at("failures").as_u64();
      out.counter.stopped_early = doc.at("stopped_early").as_bool();
    } catch (const json::JsonError& e) {
      throw CheckpointCorrupt(std::string("mc checkpoint: ") + e.what());
    }
    if (out.counter.trials != out.next_index ||
        out.counter.failures > out.counter.trials)
      throw CheckpointCorrupt("mc checkpoint: inconsistent counters");
    return true;
  } catch (const CheckpointCorrupt&) {
    quarantine_corrupt_file(path);
    return false;
  }
}

JobOutcome run_mc_job(
    const JobSpec& spec, const JobPaths& paths,
    const std::atomic<bool>* stop,
    const std::function<void(const JobProgress&)>& on_progress) {
  analysis::BuiltGadget built = analysis::build_gadget_experiment(spec.gadget);
  analysis::FaultExperiment& ex = built.ex;
  const std::string fingerprint = mc_fingerprint(spec);

  noise::McResumableOptions opt;
  opt.jobs = spec.jobs;
  opt.block = spec.mc.block;
  opt.stop = stop;
  noise::McProgress resume;
  if (!paths.checkpoint.empty() &&
      load_mc_checkpoint(paths.checkpoint, fingerprint, resume)) {
    opt.start_index = resume.next_index;
    opt.initial = resume.counter;
  }
  auto emit = [&](const noise::McProgress& p) {
    if (!paths.checkpoint.empty())
      write_file_atomically(paths.checkpoint,
                            mc_checkpoint_to_json(fingerprint, p).dump());
    if (on_progress) {
      JobProgress jp;
      jp.items_done = p.next_index;
      jp.total_items = spec.mc.trials;
      jp.counter = p.counter;
      on_progress(jp);
    }
  };
  opt.on_block = emit;

  const noise::NoiseModel model =
      analysis::scenario_noise_model(spec.gadget.scenario, spec.mc.p);
  noise::McRunResult result;
  if (spec.mc.engine == "frames") {
    const frame::FrameProgram prog = analysis::make_frame_program(ex);
    const frame::BatchOracle oracle =
        analysis::make_frame_oracle(spec.gadget.gadget, built, prog);
    result = frame::run_trials_resumable(prog, model, spec.mc.trials,
                                         spec.seed, oracle, opt);
  } else {
    result = noise::run_trials_resumable(
        spec.mc.trials, spec.seed,
        [&ex, model](std::uint64_t, Rng& rng) {
          circuit::TabBackend backend(ex.num_qubits, rng.split());
          circuit::execute(ex.prep, backend);
          noise::StochasticInjector injector(model, rng.split());
          const auto r = circuit::execute(ex.gadget, backend, &injector);
          return ex.failed(backend, r);
        },
        opt);
  }

  // Final flush: a cancelled run persists its exact stopping point even
  // when the stop landed mid-block.
  noise::McProgress final_p;
  final_p.next_index = result.next_index;
  final_p.counter = result.counter;
  emit(final_p);

  JobOutcome outcome;
  outcome.complete = result.complete;
  if (result.complete) {
    json::Object obj;
    obj.emplace_back("kind", "eqc_mc_report");
    obj.emplace_back("gadget", spec.gadget.gadget);
    obj.emplace_back("reps", spec.gadget.scenario.reps());
    obj.emplace_back("syndrome", spec.gadget.syndrome);
    obj.emplace_back("correlated", spec.gadget.scenario.noise == "correlated");
    obj.emplace_back("code", spec.gadget.scenario.code);
    obj.emplace_back("noise", spec.gadget.scenario.noise);
    obj.emplace_back("p", spec.mc.p);
    obj.emplace_back("trials", spec.mc.trials);
    obj.emplace_back("seed", spec.seed);
    if (spec.mc.engine != "trials")
      obj.emplace_back("engine", spec.mc.engine);
    obj.emplace_back("counter", result.counter.to_json_value());
    write_file_atomically(paths.report, json::Value(std::move(obj)).dump());
  }
  return outcome;
}

// --- matrix jobs ------------------------------------------------------------

JobOutcome run_matrix_job(
    const JobSpec& spec, const JobPaths& paths,
    const std::atomic<bool>* stop,
    const std::function<void(const JobProgress&)>& on_progress) {
  analysis::MatrixConfig cfg;
  cfg.mode = spec.matrix.mc ? analysis::MatrixMode::MonteCarlo
                            : analysis::MatrixMode::Campaign;
  cfg.gadgets = spec.matrix.gadgets;
  cfg.codes = spec.matrix.codes;
  cfg.ks = spec.matrix.ks;
  cfg.noises = spec.matrix.noises;
  cfg.fault_k = spec.matrix.fault_k;
  cfg.budget = spec.matrix.budget;
  cfg.shrink = spec.matrix.shrink;
  cfg.mc_p = spec.matrix.p;
  cfg.mc_trials = spec.matrix.trials;
  cfg.engine = spec.matrix.engine;
  cfg.jobs = spec.jobs;
  cfg.seed = spec.seed;
  // Per-cell checkpoints land as flat siblings of the job checkpoint path
  // (the scheduler's state dir already exists; no directory creation).
  if (!paths.checkpoint.empty()) cfg.checkpoint_prefix = paths.checkpoint + ".";
  cfg.checkpoint_every = spec.checkpoint_every;
  cfg.stop = stop;
  if (on_progress) {
    cfg.on_progress = [&on_progress](const analysis::MatrixProgress& p) {
      JobProgress jp;
      jp.items_done = p.cells_done;
      jp.total_items = p.total_cells;
      on_progress(jp);
    };
  }

  const auto report = analysis::run_matrix(cfg);
  JobOutcome outcome;
  outcome.complete = report.complete;
  if (report.complete)
    write_file_atomically(paths.report, report.to_json());
  return outcome;
}

// --- fuzz jobs --------------------------------------------------------------

JobOutcome run_fuzz_job(
    const JobSpec& spec, const JobPaths& paths,
    const std::atomic<bool>* stop,
    const std::function<void(const JobProgress&)>& on_progress) {
  testing::FuzzConfig cfg;
  cfg.gate_set = spec.fuzz.gate_set;
  cfg.qubits = spec.fuzz.qubits;
  cfg.depth = spec.fuzz.depth;
  cfg.seed = spec.seed;
  cfg.trials = spec.fuzz.trials;
  cfg.jobs = spec.jobs;
  cfg.measure_prob = spec.fuzz.measure_prob;
  cfg.tol = spec.fuzz.tol;
  cfg.shrink = spec.fuzz.shrink;
  cfg.bug = spec.fuzz.bug;
  cfg.stop = stop;
  cfg.checkpoint_path = paths.checkpoint;
  cfg.checkpoint_every = spec.checkpoint_every;
  cfg.resume = true;
  cfg.fresh_on_corrupt = true;
  if (on_progress) {
    const std::uint64_t total = spec.fuzz.trials;
    cfg.on_progress = [&on_progress, total](std::uint64_t merged,
                                            std::size_t failures) {
      JobProgress jp;
      jp.items_done = merged;
      jp.total_items = total;
      jp.counter.trials = merged;
      jp.counter.failures = failures;
      on_progress(jp);
    };
  }

  const auto report = testing::run_fuzz(cfg);
  JobOutcome outcome;
  outcome.complete = !report.interrupted && !report.time_limited;
  if (outcome.complete)
    write_file_atomically(paths.report, report.to_json());
  return outcome;
}

}  // namespace

JobOutcome run_job(const JobSpec& spec, const JobPaths& paths,
                   const std::atomic<bool>* stop,
                   const std::function<void(const JobProgress&)>& on_progress) {
  EQC_EXPECTS(!paths.report.empty());
  switch (spec.type) {
    case JobType::Campaign:
      return run_campaign_job(spec, paths, stop, on_progress);
    case JobType::MonteCarlo:
      return run_mc_job(spec, paths, stop, on_progress);
    case JobType::Fuzz:
      return run_fuzz_job(spec, paths, stop, on_progress);
    case JobType::Matrix:
      return run_matrix_job(spec, paths, stop, on_progress);
  }
  EQC_CHECK(false);
  return {};
}

}  // namespace eqc::serve
