// Crash-safe job scheduler: the heart of eqc_serve.
//
// Jobs are journaled to a write-ahead log BEFORE they are acted on
// (journal-first), run on a small pool of job workers (each job gets its
// own engine-level worker budget), and checkpoint their progress through
// the engines' resumable run loops.  The scheduler's entire state is
// reconstructible from (journal, per-job checkpoint files): after a
// kill -9 a new Scheduler over the same state directory re-enqueues every
// unfinished job and resumes it from its checkpoint, reaching a final
// report BYTE-IDENTICAL to an uninterrupted run.
//
// State directory layout:
//   <dir>/journal.jsonl            write-ahead event log
//   <dir>/job-<id>.checkpoint.json per-job engine checkpoint
//   <dir>/job-<id>.report.json     final report (atomic, complete jobs only)
//
// Lifecycle events (journal "event" member):
//   submit    spec accepted, id assigned        (non-terminal)
//   start     a run attempt began               (non-terminal)
//   cancel    cancellation requested            (non-terminal)
//   done      report written                    (terminal)
//   failed    run threw; error recorded         (terminal)
//   cancelled cancel honoured, job will not run (terminal)
//
// A drain (SIGTERM / shutdown) deliberately writes NO terminal event for
// interrupted jobs: on the next start they are re-enqueued and resumed.
// A journal record of "cancel" with no terminal event is honoured at
// recovery (the job becomes cancelled without running again).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "serve/jobs.h"
#include "serve/journal.h"

namespace eqc::serve {

enum class JobStatus { Queued, Running, Done, Failed, Cancelled };

const char* to_string(JobStatus status);

struct SchedulerConfig {
  /// Directory holding the journal, checkpoints and reports (must exist).
  std::string state_dir;
  /// Jobs run concurrently (each with its own engine worker budget).
  unsigned max_concurrent_jobs = 2;
  /// Optional line logger (recovery summaries, quarantines); may be null.
  std::function<void(const std::string&)> log;
};

class Scheduler {
 public:
  /// Opens (or creates) the state directory's journal, replays it, and
  /// re-enqueues every unfinished job.  A damaged journal is quarantined
  /// to journal.jsonl.corrupt and the scheduler starts fresh.
  explicit Scheduler(SchedulerConfig cfg);
  /// Drains and joins (running jobs stop cooperatively at the next
  /// checkpoint boundary; no terminal events are written for them).
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Journals and enqueues a job; returns its id.
  std::uint64_t submit(const JobSpec& spec);

  /// Requests cancellation; true when the job exists and was not already
  /// terminal.  A queued job is cancelled without running; a running job
  /// stops at its next poll and flushes a final checkpoint.
  bool cancel(std::uint64_t id);

  /// Status of one job as a JSON object; null Value when unknown.
  json::Value status(std::uint64_t id) const;
  /// Status of every known job, ordered by id.
  json::Value status_all() const;

  /// Jobs not yet terminal (queued + running) — the "resumable work left"
  /// count a draining server reports through its exit code.
  std::size_t unfinished() const;

  /// Blocks until no job is queued or running, or `timeout_sec` elapses
  /// (<= 0 waits forever).  True when idle was reached.
  bool wait_idle(double timeout_sec) const;

  /// Cooperative shutdown: stops accepting queue progress, signals every
  /// running job's stop token, and joins the workers.  Interrupted jobs
  /// keep their checkpoints and journal entries and resume on the next
  /// Scheduler over this state directory.  Idempotent.
  void drain();

  const std::string& state_dir() const { return cfg_.state_dir; }

 private:
  struct Record {
    JobSpec spec;
    JobStatus status = JobStatus::Queued;
    bool cancel_requested = false;
    std::string error;
    JobProgress progress;
    double wall_sec = 0.0;  ///< accumulated across COMPLETED run attempts
    /// Start of the in-flight attempt (valid while status == Running);
    /// lets status() report live elapsed/rate/ETA mid-attempt.
    std::chrono::steady_clock::time_point attempt_start{};
    std::shared_ptr<std::atomic<bool>> stop;  ///< set while running
  };

  std::string checkpoint_path(std::uint64_t id) const;
  std::string report_path(std::uint64_t id) const;
  void recover_locked(const std::vector<json::Value>& records);
  void worker_loop();
  /// Runs one job attempt; called with the lock HELD, drops it while the
  /// engine runs.
  void run_one_locked(std::unique_lock<std::mutex>& lock, std::uint64_t id);
  json::Value status_locked(std::uint64_t id, const Record& rec) const;

  SchedulerConfig cfg_;
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::unique_ptr<Journal> journal_;
  std::map<std::uint64_t, Record> jobs_;
  std::deque<std::uint64_t> pending_;
  std::uint64_t next_id_ = 0;
  unsigned running_ = 0;
  bool draining_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace eqc::serve
