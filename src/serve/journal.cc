#include "serve/journal.h"

#include <utility>

#include "common/assert.h"
#include "common/checkpoint.h"
#include "obs/metrics.h"

namespace eqc::serve {

std::vector<json::Value> parse_journal_text(const std::string& text,
                                            JournalLoadStats* stats) {
  std::vector<json::Value> records;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      // Unterminated tail: the one artifact the crash model can produce.
      // Whatever the fragment contains, the record it belonged to never
      // committed — drop it.
      if (stats != nullptr) stats->torn_bytes = text.size() - pos;
      break;
    }
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty())
      throw CheckpointCorrupt("journal: empty record line");
    json::Value rec;
    try {
      rec = json::Value::parse(line);
    } catch (const json::JsonError& e) {
      throw CheckpointCorrupt(std::string("journal: unparseable record: ") +
                              e.what());
    }
    if (!rec.is_object())
      throw CheckpointCorrupt("journal: record is not an object");
    const json::Value* seq = rec.find("seq");
    const json::Value* event = rec.find("event");
    if (seq == nullptr || !seq->is_number() || event == nullptr ||
        !event->is_string())
      throw CheckpointCorrupt("journal: record missing seq/event");
    if (seq->as_u64() != records.size())
      throw CheckpointCorrupt("journal: sequence number out of order");
    records.push_back(std::move(rec));
  }
  if (stats != nullptr) stats->records = records.size();
  return records;
}

std::vector<json::Value> Journal::load(const std::string& path,
                                       JournalLoadStats* stats) {
  std::string text;
  if (!read_file(path, text)) return {};
  return parse_journal_text(text, stats);
}

Journal::Journal(std::string path, std::uint64_t next_seq)
    : path_(std::move(path)), next_seq_(next_seq) {
  file_ = std::fopen(path_.c_str(), "ab");
  EQC_CHECK(file_ != nullptr);
}

Journal::~Journal() {
  if (file_ != nullptr) std::fclose(file_);
}

void Journal::append(json::Value record) {
  EQC_EXPECTS(record.is_object());
  static obs::Counter& c_appends =
      obs::counter("serve.journal.appends", obs::Det::Runtime);
  static obs::Histogram& h_append_ms = obs::histogram(
      "serve.journal.append_ms",
      {0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50},
      obs::Det::Runtime);
  c_appends.add(1);
  obs::LatencyTimer timer(h_append_ms);

  json::Object stamped;
  stamped.emplace_back("seq", next_seq_);
  for (auto& member : record.as_object()) {
    if (member.first != "seq") stamped.push_back(std::move(member));
  }
  const std::string line = json::Value(std::move(stamped)).dump() + "\n";
  // One fwrite per record keeps the crash model honest: a torn write is a
  // prefix of this line and never spans records.
  EQC_CHECK(std::fwrite(line.data(), 1, line.size(), file_) == line.size());
  EQC_CHECK(std::fflush(file_) == 0);
  ++next_seq_;
}

}  // namespace eqc::serve
