#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"

namespace eqc::serve {

namespace {

json::Value ok_response() {
  json::Object obj;
  obj.emplace_back("ok", true);
  return json::Value(std::move(obj));
}

json::Value error_response(const std::string& message) {
  json::Object obj;
  obj.emplace_back("ok", false);
  obj.emplace_back("error", message);
  return json::Value(std::move(obj));
}

int listen_unix(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  EQC_CHECK(socket_path.size() < sizeof(addr.sun_path));
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  // A previous kill -9 leaves a stale socket file behind; the journal, not
  // the socket, is the source of truth, so replace it.
  ::unlink(socket_path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EQC_CHECK(fd >= 0);
  EQC_CHECK(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) == 0);
  EQC_CHECK(::listen(fd, 16) == 0);
  return fd;
}

enum class ShutdownMode { None, Checkpoint, Finish };

/// Owns the long-lived `watch` connections.  serve_connection runs
/// synchronously in the accept loop, so a watch stream must move to its
/// own thread or it would wedge every other client.
class Watchers {
 public:
  ~Watchers() { shutdown(); }

  /// Takes ownership of `fd` and streams job `id`'s status on it about
  /// once per second until the job is terminal, the peer hangs up, or
  /// shutdown().  False (fd NOT taken) when at capacity.
  bool launch(int fd, Scheduler& sched, std::uint64_t id) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closing_.load() || threads_.size() >= kMaxWatchers) return false;
    threads_.emplace_back([this, fd, &sched, id] { stream(fd, sched, id); });
    return true;
  }

  void shutdown() {
    std::vector<std::thread> threads;
    {
      std::lock_guard<std::mutex> lock(mu_);
      closing_.store(true);
      threads.swap(threads_);
    }
    for (auto& t : threads) t.join();
  }

 private:
  static constexpr std::size_t kMaxWatchers = 64;

  void stream(int fd, Scheduler& sched, std::uint64_t id) {
    while (!closing_.load()) {
      const json::Value st = sched.status(id);
      if (st.is_null()) break;  // cannot happen once submitted; be safe
      json::Object push;
      push.emplace_back("ok", true);
      push.emplace_back("event", "progress");
      push.emplace_back("job", st);
      if (!write_line(fd, json::Value(std::move(push)).dump())) break;
      const std::string& status = st.at("status").as_string();
      if (status == "done" || status == "failed" || status == "cancelled")
        break;
      // ~1s cadence, woken early by shutdown.
      for (int i = 0; i < 10 && !closing_.load(); ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    ::close(fd);
  }

  std::mutex mu_;
  std::vector<std::thread> threads_;
  std::atomic<bool> closing_{false};
};

json::Value dispatch(Scheduler& sched, const std::string& line,
                     ShutdownMode& shutdown, std::uint64_t* watch_id) {
  json::Value req;
  try {
    req = json::Value::parse(line);
  } catch (const json::JsonError& e) {
    return error_response(std::string("bad request: ") + e.what());
  }
  const json::Value* verb = req.find("verb");
  if (verb == nullptr || !verb->is_string())
    return error_response("missing verb");

  try {
    if (verb->as_string() == "ping") {
      json::Value resp = ok_response();
      resp.set("kind", "eqc_serve");
      resp.set("unfinished", static_cast<std::uint64_t>(sched.unfinished()));
      return resp;
    }
    if (verb->as_string() == "submit") {
      const json::Value* job = req.find("job");
      if (job == nullptr) return error_response("submit: missing job");
      const JobSpec spec = JobSpec::from_json(*job);
      const std::uint64_t id = sched.submit(spec);
      json::Value resp = ok_response();
      resp.set("id", id);
      return resp;
    }
    if (verb->as_string() == "status") {
      json::Value resp = ok_response();
      if (const json::Value* id = req.find("id")) {
        const json::Value one = sched.status(id->as_u64());
        if (one.is_null()) return error_response("status: unknown job");
        json::Array arr;
        arr.push_back(one);
        resp.set("jobs", json::Value(std::move(arr)));
      } else {
        resp.set("jobs", sched.status_all());
      }
      return resp;
    }
    if (verb->as_string() == "cancel") {
      const json::Value* id = req.find("id");
      if (id == nullptr) return error_response("cancel: missing id");
      json::Value resp = ok_response();
      resp.set("cancelled", sched.cancel(id->as_u64()));
      return resp;
    }
    if (verb->as_string() == "metrics") {
      json::Value resp = ok_response();
      resp.set("metrics", obs::Registry::global().snapshot());
      return resp;
    }
    if (verb->as_string() == "watch") {
      const json::Value* id = req.find("id");
      if (id == nullptr) return error_response("watch: missing id");
      if (sched.status(id->as_u64()).is_null())
        return error_response("watch: unknown job");
      *watch_id = id->as_u64();  // serve_connection hands the fd off
      json::Value resp = ok_response();
      resp.set("watching", id->as_u64());
      return resp;
    }
    if (verb->as_string() == "shutdown") {
      std::string mode = "checkpoint";
      if (const json::Value* m = req.find("mode")) mode = m->as_string();
      if (mode == "finish")
        shutdown = ShutdownMode::Finish;
      else if (mode == "checkpoint")
        shutdown = ShutdownMode::Checkpoint;
      else
        return error_response("shutdown: unknown mode");
      return ok_response();
    }
    return error_response("unknown verb: " + verb->as_string());
  } catch (const std::exception& e) {
    return error_response(e.what());
  }
}

void serve_connection(int fd, Scheduler& sched, ShutdownMode& shutdown,
                      Watchers& watchers) {
  // Bound reads so one stuck client cannot wedge the control plane.
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::string line;
  while (shutdown == ShutdownMode::None && read_line(fd, line)) {
    std::uint64_t watch_id = UINT64_MAX;
    const json::Value resp = dispatch(sched, line, shutdown, &watch_id);
    if (!write_line(fd, resp.dump())) break;
    if (watch_id != UINT64_MAX) {
      // Hand the connection to a watcher thread; the accept loop must not
      // block behind a stream that lives as long as the job.
      if (watchers.launch(fd, sched, watch_id)) return;  // fd handed off
      write_line(fd, error_response("watch: too many watchers").dump());
      break;
    }
  }
  ::close(fd);
}

}  // namespace

std::size_t run_server(const ServerConfig& cfg) {
  EQC_EXPECTS(!cfg.state_dir.empty());
  const std::string socket_path =
      cfg.socket_path.empty() ? cfg.state_dir + "/serve.sock"
                              : cfg.socket_path;
  const auto log = [&cfg](const std::string& msg) {
    if (cfg.log) {
      cfg.log(msg);
    } else {
      std::printf("eqc_serve: %s\n", msg.c_str());
      std::fflush(stdout);
    }
  };

  SchedulerConfig scfg;
  scfg.state_dir = cfg.state_dir;
  scfg.max_concurrent_jobs = cfg.max_concurrent_jobs;
  scfg.log = log;  // recovery/quarantine summaries reach the server log
  Scheduler sched(scfg);  // recovery: unfinished jobs resume immediately
  if (sched.unfinished() > 0)
    log("recovered " + std::to_string(sched.unfinished()) +
        " unfinished job(s), resuming");

  // Declared after sched: destroyed first, so no watcher outlives it.
  Watchers watchers;
  const int listen_fd = listen_unix(socket_path);
  log("listening on " + socket_path);

  ShutdownMode shutdown = ShutdownMode::None;
  while (shutdown == ShutdownMode::None) {
    if (cfg.stop != nullptr && cfg.stop->load(std::memory_order_relaxed)) {
      shutdown = ShutdownMode::Checkpoint;
      break;
    }
    pollfd pfd{};
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    const int r = ::poll(&pfd, 1, 200);
    if (r <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) continue;
    serve_connection(conn, sched, shutdown, watchers);
  }
  watchers.shutdown();  // end live streams before the queue drains

  if (shutdown == ShutdownMode::Finish) {
    log("shutdown(finish): running the queue dry");
    // The stop flag still interrupts a finish-mode drain-down.
    while (!sched.wait_idle(0.2)) {
      if (cfg.stop != nullptr && cfg.stop->load(std::memory_order_relaxed))
        break;
    }
  } else {
    log("shutdown(checkpoint): draining");
  }
  sched.drain();
  ::close(listen_fd);
  ::unlink(socket_path.c_str());

  const std::size_t unfinished = sched.unfinished();
  log("exit: " + std::to_string(unfinished) + " resumable job(s) left");
  return unfinished;
}

}  // namespace eqc::serve
