// The eqc_serve daemon loop: a Unix-socket JSON-line control plane in
// front of the crash-safe Scheduler.
//
// run_server() binds the socket, recovers + resumes the state directory's
// unfinished jobs (Scheduler construction), then answers one request per
// connection line until a shutdown verb arrives or the external stop flag
// (SIGTERM/SIGINT in eqc_serve) is raised.  Shutdown modes:
//
//   "checkpoint" (and the stop flag): DRAIN — running jobs stop
//       cooperatively at their next checkpoint boundary, no terminal
//       events are journaled, and the returned unfinished count is
//       nonzero when resumable work remains (eqc_serve maps that to exit
//       code 3).
//   "finish": run the queue dry first, then exit with zero unfinished.
//
// Everything observable by clients is reconstructible after kill -9: the
// journal replays the job table and the engines resume from their
// checkpoints to byte-identical final reports.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>

namespace eqc::serve {

struct ServerConfig {
  /// State directory (journal/checkpoints/reports); must exist.
  std::string state_dir;
  /// Listening socket path; default "<state_dir>/serve.sock".
  std::string socket_path;
  /// Jobs run concurrently.
  unsigned max_concurrent_jobs = 2;
  /// External stop flag (signal handlers); triggers a checkpoint drain.
  const std::atomic<bool>* stop = nullptr;
  /// Optional log sink (one line per message); default stdout.
  std::function<void(const std::string&)> log;
};

/// Runs the daemon until shutdown; returns the number of unfinished
/// (resumable) jobs at exit — 0 after a clean finish.  Throws on setup
/// errors (bad state dir, socket bind failure).
std::size_t run_server(const ServerConfig& cfg);

}  // namespace eqc::serve
