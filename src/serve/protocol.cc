#include "serve/protocol.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/assert.h"

namespace eqc::serve {

bool read_line(int fd, std::string& line) {
  line.clear();
  char c = 0;
  for (;;) {
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n <= 0) return false;  // EOF, error or timeout
    if (c == '\n') return true;
    line.push_back(c);
    if (line.size() > (1u << 20)) return false;  // runaway request
  }
}

bool write_line(int fd, const std::string& line) {
  std::string buf = line;
  buf.push_back('\n');
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n =
        ::send(fd, buf.data() + off, buf.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

namespace {

int connect_unix(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) return -1;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

Client::Client(const std::string& socket_path) {
  fd_ = connect_unix(socket_path);
  EQC_CHECK(fd_ >= 0);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

json::Value Client::request(const json::Value& req) {
  EQC_CHECK(write_line(fd_, req.dump()));
  std::string line;
  EQC_CHECK(read_line(fd_, line));
  return json::Value::parse(line);
}

void Client::send(const json::Value& req) {
  EQC_CHECK(write_line(fd_, req.dump()));
}

bool Client::read_response(json::Value& out) {
  std::string line;
  if (!read_line(fd_, line)) return false;
  try {
    out = json::Value::parse(line);
  } catch (const json::JsonError&) {
    return false;
  }
  return true;
}

void Client::set_read_timeout(double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

bool server_alive(const std::string& socket_path) {
  const int fd = connect_unix(socket_path);
  if (fd < 0) return false;
  json::Object ping;
  ping.emplace_back("verb", "ping");
  bool ok = write_line(fd, json::Value(std::move(ping)).dump());
  std::string line;
  if (ok) ok = read_line(fd, line);
  ::close(fd);
  if (!ok) return false;
  try {
    const json::Value v = json::Value::parse(line);
    const json::Value* okv = v.find("ok");
    return okv != nullptr && okv->is_bool() && okv->as_bool();
  } catch (const json::JsonError&) {
    return false;
  }
}

}  // namespace eqc::serve
