#include "stab/tableau.h"

#include <bit>

#include "common/assert.h"

namespace eqc::stab {

namespace {

// Word-parallel accumulation of the Aaronson-Gottesman phase function
// g(P1, P2) summed over 64 qubits at once: returns (#+1 qubits) - (#-1).
// Case analysis per qubit (P1 from (x1,z1), P2 from (x2,z2)):
//   P1 = Y: g = z2 - x2;  P1 = X: g = z2(2x2-1);  P1 = Z: g = x2(1-2z2).
inline int phase_g_word(std::uint64_t x1, std::uint64_t z1, std::uint64_t x2,
                        std::uint64_t z2) {
  const std::uint64_t c11 = x1 & z1;
  const std::uint64_t c10 = x1 & ~z1;
  const std::uint64_t c01 = ~x1 & z1;
  const std::uint64_t plus =
      (c11 & z2 & ~x2) | (c10 & z2 & x2) | (c01 & x2 & ~z2);
  const std::uint64_t minus =
      (c11 & x2 & ~z2) | (c10 & z2 & ~x2) | (c01 & x2 & z2);
  return std::popcount(plus) - std::popcount(minus);
}

}  // namespace

Tableau::Tableau(std::size_t num_qubits) : n_(num_qubits) {
  EQC_EXPECTS(num_qubits > 0);
  const std::size_t rows = 2 * n_ + 1;
  x_.assign(rows, std::vector<std::uint64_t>(words(), 0));
  z_.assign(rows, std::vector<std::uint64_t>(words(), 0));
  r_.assign(rows, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    set_xbit(i, i, true);        // destabilizer i = X_i
    set_zbit(n_ + i, i, true);   // stabilizer i = Z_i
  }
}

bool Tableau::xbit(std::size_t row, std::size_t q) const {
  return (x_[row][q >> 6] >> (q & 63)) & 1;
}
bool Tableau::zbit(std::size_t row, std::size_t q) const {
  return (z_[row][q >> 6] >> (q & 63)) & 1;
}
void Tableau::set_xbit(std::size_t row, std::size_t q, bool v) {
  if (v)
    x_[row][q >> 6] |= std::uint64_t{1} << (q & 63);
  else
    x_[row][q >> 6] &= ~(std::uint64_t{1} << (q & 63));
}
void Tableau::set_zbit(std::size_t row, std::size_t q, bool v) {
  if (v)
    z_[row][q >> 6] |= std::uint64_t{1} << (q & 63);
  else
    z_[row][q >> 6] &= ~(std::uint64_t{1} << (q & 63));
}

void Tableau::h(std::size_t q) {
  EQC_EXPECTS(q < n_);
  for (std::size_t row = 0; row < 2 * n_; ++row) {
    const bool x = xbit(row, q);
    const bool z = zbit(row, q);
    r_[row] ^= static_cast<std::uint8_t>(x && z);
    set_xbit(row, q, z);
    set_zbit(row, q, x);
  }
}

void Tableau::s(std::size_t q) {
  EQC_EXPECTS(q < n_);
  for (std::size_t row = 0; row < 2 * n_; ++row) {
    const bool x = xbit(row, q);
    const bool z = zbit(row, q);
    r_[row] ^= static_cast<std::uint8_t>(x && z);
    set_zbit(row, q, z != x);
  }
}

void Tableau::sdg(std::size_t q) {
  EQC_EXPECTS(q < n_);
  for (std::size_t row = 0; row < 2 * n_; ++row) {
    const bool x = xbit(row, q);
    const bool z = zbit(row, q);
    r_[row] ^= static_cast<std::uint8_t>(x && !z);
    set_zbit(row, q, z != x);
  }
}

void Tableau::x(std::size_t q) {
  EQC_EXPECTS(q < n_);
  for (std::size_t row = 0; row < 2 * n_; ++row)
    r_[row] ^= static_cast<std::uint8_t>(zbit(row, q));
}

void Tableau::z(std::size_t q) {
  EQC_EXPECTS(q < n_);
  for (std::size_t row = 0; row < 2 * n_; ++row)
    r_[row] ^= static_cast<std::uint8_t>(xbit(row, q));
}

void Tableau::y(std::size_t q) {
  EQC_EXPECTS(q < n_);
  for (std::size_t row = 0; row < 2 * n_; ++row)
    r_[row] ^= static_cast<std::uint8_t>(xbit(row, q) != zbit(row, q));
}

void Tableau::cnot(std::size_t control, std::size_t target) {
  EQC_EXPECTS(control < n_ && target < n_ && control != target);
  for (std::size_t row = 0; row < 2 * n_; ++row) {
    const bool xc = xbit(row, control);
    const bool zc = zbit(row, control);
    const bool xt = xbit(row, target);
    const bool zt = zbit(row, target);
    r_[row] ^= static_cast<std::uint8_t>(xc && zt && (xt == zc));
    set_xbit(row, target, xt != xc);
    set_zbit(row, control, zc != zt);
  }
}

void Tableau::cz(std::size_t a, std::size_t b) {
  h(b);
  cnot(a, b);
  h(b);
}

void Tableau::swap(std::size_t a, std::size_t b) {
  EQC_EXPECTS(a < n_ && b < n_ && a != b);
  for (std::size_t row = 0; row < 2 * n_; ++row) {
    const bool xa = xbit(row, a), za = zbit(row, a);
    const bool xb = xbit(row, b), zb = zbit(row, b);
    set_xbit(row, a, xb);
    set_zbit(row, a, zb);
    set_xbit(row, b, xa);
    set_zbit(row, b, za);
  }
}

void Tableau::apply_pauli(const pauli::PauliString& p) {
  EQC_EXPECTS(p.num_qubits() == n_);
  // Conjugating a stabilizer row R by Pauli P flips R's sign iff they
  // anticommute.
  for (std::size_t row = 0; row < 2 * n_; ++row) {
    int anti = 0;
    for (std::size_t q : p.support()) {
      const bool px = p.x_bit(q), pz = p.z_bit(q);
      const bool rx = xbit(row, q), rz = zbit(row, q);
      anti ^= static_cast<int>((px && rz) != (pz && rx));
    }
    r_[row] ^= static_cast<std::uint8_t>(anti);
  }
}

void Tableau::row_mult(std::size_t h, std::size_t i) {
  int total = 2 * r_[h] + 2 * r_[i];
  for (std::size_t w = 0; w < words(); ++w)
    total += phase_g_word(x_[i][w], z_[i][w], x_[h][w], z_[h][w]);
  total = ((total % 4) + 4) % 4;
  // Stabilizer rows and the scratch row always multiply to a Hermitian
  // (+-1) operator; destabilizer rows may pick up an i, but their phases
  // are meaningless and never observed (Aaronson-Gottesman).
  if (h >= n_) EQC_CHECK(total % 2 == 0);
  r_[h] = static_cast<std::uint8_t>(total / 2);
  for (std::size_t w = 0; w < words(); ++w) {
    x_[h][w] ^= x_[i][w];
    z_[h][w] ^= z_[i][w];
  }
}

void Tableau::row_copy(std::size_t dst, std::size_t src) {
  x_[dst] = x_[src];
  z_[dst] = z_[src];
  r_[dst] = r_[src];
}

void Tableau::row_clear(std::size_t row) {
  std::fill(x_[row].begin(), x_[row].end(), 0);
  std::fill(z_[row].begin(), z_[row].end(), 0);
  r_[row] = 0;
}

bool Tableau::measure(std::size_t q, Rng& rng) {
  EQC_EXPECTS(q < n_);
  // Look for a stabilizer generator that anticommutes with Z_q.
  std::size_t p = 0;
  bool random = false;
  for (std::size_t i = n_; i < 2 * n_; ++i) {
    if (xbit(i, q)) {
      p = i;
      random = true;
      break;
    }
  }

  if (random) {
    for (std::size_t i = 0; i < 2 * n_; ++i)
      if (i != p && xbit(i, q)) row_mult(i, p);
    row_copy(p - n_, p);
    row_clear(p);
    set_zbit(p, q, true);
    const bool outcome = rng.bernoulli(0.5);
    r_[p] = static_cast<std::uint8_t>(outcome);
    return outcome;
  }

  // Deterministic: accumulate the relevant stabilizers into the scratch row.
  const std::size_t scratch = 2 * n_;
  row_clear(scratch);
  for (std::size_t i = 0; i < n_; ++i)
    if (xbit(i, q)) row_mult(scratch, i + n_);
  return r_[scratch] != 0;
}

bool Tableau::is_deterministic_z(std::size_t q) const {
  EQC_EXPECTS(q < n_);
  for (std::size_t i = n_; i < 2 * n_; ++i)
    if (xbit(i, q)) return false;
  return true;
}

std::size_t Tableau::z_measure_pivot(std::size_t q) const {
  EQC_EXPECTS(q < n_);
  for (std::size_t i = n_; i < 2 * n_; ++i)
    if (xbit(i, q)) return i - n_;
  return n_;
}

bool Tableau::deterministic_z_value(std::size_t q) const {
  EQC_EXPECTS(is_deterministic_z(q));
  // Accumulate the product of the relevant stabilizer rows into local
  // buffers (no tableau copy — this is a hot path for classical-control
  // lowering during fault enumeration).
  const std::size_t w = words();
  std::vector<std::uint64_t> ax(w, 0), az(w, 0);
  int total = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    if (!xbit(i, q)) continue;
    const std::size_t row = i + n_;
    int t = 2 * r_[row];
    for (std::size_t k = 0; k < w; ++k)
      t += phase_g_word(x_[row][k], z_[row][k], ax[k], az[k]);
    for (std::size_t k = 0; k < w; ++k) {
      ax[k] ^= x_[row][k];
      az[k] ^= z_[row][k];
    }
    total = ((total + t) % 4 + 4) % 4;
  }
  EQC_CHECK(total % 2 == 0);
  return (total / 2) % 2 != 0;
}

double Tableau::expectation_z(std::size_t q) const {
  if (!is_deterministic_z(q)) return 0.0;
  return deterministic_z_value(q) ? -1.0 : 1.0;
}

void Tableau::reset(std::size_t q, Rng& rng) {
  if (measure(q, rng)) x(q);
}

bool Tableau::measure_pauli(const pauli::PauliString& p, Rng& rng) {
  EQC_EXPECTS(p.num_qubits() == n_);
  EQC_EXPECTS(p.is_hermitian());
  EQC_EXPECTS(!p.is_identity());

  // Random case: some stabilizer generator anticommutes with p.
  std::size_t pivot = 2 * n_ + 1;  // sentinel
  for (std::size_t i = n_; i < 2 * n_; ++i) {
    if (!row_to_pauli(i).commutes_with(p)) {
      pivot = i;
      break;
    }
  }
  if (pivot <= 2 * n_) {
    for (std::size_t i = 0; i < 2 * n_; ++i)
      if (i != pivot && !row_to_pauli(i).commutes_with(p)) row_mult(i, pivot);
    row_copy(pivot - n_, pivot);
    // Install (-1)^outcome * p as the new stabilizer generator.  The row
    // format stores Y at (x,z)=(1,1), so fold the i factors of p's literal
    // XZ representation into the sign.
    row_clear(pivot);
    int n_y = 0;
    for (std::size_t q = 0; q < n_; ++q) {
      set_xbit(pivot, q, p.x_bit(q));
      set_zbit(pivot, q, p.z_bit(q));
      if (p.x_bit(q) && p.z_bit(q)) ++n_y;
    }
    const int base = ((p.phase() + 3 * n_y) % 4 + 4) % 4;
    EQC_CHECK(base % 2 == 0);
    const bool outcome = rng.bernoulli(0.5);
    r_[pivot] = static_cast<std::uint8_t>((base / 2) ^ (outcome ? 1 : 0));
    return outcome;
  }

  // Deterministic: p (or -p) is in the stabilizer group.
  pauli::PauliString acc(n_);
  for (std::size_t i = 0; i < n_; ++i)
    if (!p.commutes_with(destabilizer(i))) acc.multiply_by(stabilizer(i));
  if (acc == p) return false;
  pauli::PauliString minus_p = p;
  minus_p.set_phase(p.phase() + 2);
  EQC_CHECK(acc == minus_p);
  return true;
}

double Tableau::expectation_pauli(const pauli::PauliString& p) const {
  EQC_EXPECTS(p.num_qubits() == n_);
  if (!p.is_hermitian()) return 0.0;
  for (std::size_t i = 0; i < n_; ++i)
    if (!p.commutes_with(stabilizer(i))) return 0.0;
  pauli::PauliString acc(n_);
  for (std::size_t i = 0; i < n_; ++i)
    if (!p.commutes_with(destabilizer(i))) acc.multiply_by(stabilizer(i));
  if (acc == p) return 1.0;
  pauli::PauliString minus_p = p;
  minus_p.set_phase(p.phase() + 2);
  if (acc == minus_p) return -1.0;
  return 0.0;
}

pauli::PauliString Tableau::row_to_pauli(std::size_t row) const {
  pauli::PauliString p(n_);
  for (std::size_t q = 0; q < n_; ++q) {
    const bool x = xbit(row, q);
    const bool z = zbit(row, q);
    if (x && z)
      p.set(q, pauli::Pauli::Y);
    else if (x)
      p.set(q, pauli::Pauli::X);
    else if (z)
      p.set(q, pauli::Pauli::Z);
  }
  if (r_[row]) p.set_phase(p.phase() + 2);
  return p;
}

pauli::PauliString Tableau::stabilizer(std::size_t i) const {
  EQC_EXPECTS(i < n_);
  return row_to_pauli(n_ + i);
}

pauli::PauliString Tableau::destabilizer(std::size_t i) const {
  EQC_EXPECTS(i < n_);
  return row_to_pauli(i);
}

bool Tableau::state_is_stabilized_by(const pauli::PauliString& p) const {
  EQC_EXPECTS(p.num_qubits() == n_);
  if (!p.is_hermitian()) return false;
  // p must commute with every stabilizer generator.
  for (std::size_t i = 0; i < n_; ++i)
    if (!p.commutes_with(stabilizer(i))) return false;
  // Express p in the stabilizer basis: the product over stabilizers s_i for
  // which p anticommutes with destabilizer d_i.
  pauli::PauliString acc(n_);
  for (std::size_t i = 0; i < n_; ++i)
    if (!p.commutes_with(destabilizer(i))) acc.multiply_by(stabilizer(i));
  return acc == p;
}

void Tableau::check_invariants() const {
  for (std::size_t i = 0; i < n_; ++i) {
    const auto si = stabilizer(i);
    const auto di = destabilizer(i);
    EQC_CHECK(!si.commutes_with(di));
    for (std::size_t j = 0; j < n_; ++j) {
      if (j == i) continue;
      EQC_CHECK(si.commutes_with(stabilizer(j)));
      EQC_CHECK(si.commutes_with(destabilizer(j)));
      EQC_CHECK(di.commutes_with(destabilizer(j)));
    }
  }
}

}  // namespace eqc::stab
