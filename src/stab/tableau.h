// Aaronson-Gottesman (CHP) stabilizer tableau simulator.
//
// Simulates Clifford circuits (H, S, S+, CNOT, CZ, SWAP, Paulis) plus
// Z-basis measurement in O(n^2) per measurement, scaling to thousands of
// qubits.  This is the engine behind the fault-injection Monte Carlo and the
// exhaustive fault-pair enumeration: every circuit in the paper's Figures 1
// and Section 5, and the Clifford skeleton of Figures 2-4, runs here.
//
// Internal representation follows the CHP paper: rows 0..n-1 are
// destabilizers, rows n..2n-1 stabilizers; a row's (x,z) = (1,1) denotes Y,
// and r holds the +/- sign bit.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "pauli/pauli_string.h"

namespace eqc::stab {

class Tableau {
 public:
  /// |0...0> on `num_qubits` qubits.
  explicit Tableau(std::size_t num_qubits);

  std::size_t num_qubits() const { return n_; }

  // --- Clifford gates ------------------------------------------------------
  void h(std::size_t q);
  void s(std::size_t q);
  void sdg(std::size_t q);
  void x(std::size_t q);
  void y(std::size_t q);
  void z(std::size_t q);
  void cnot(std::size_t control, std::size_t target);
  void cz(std::size_t a, std::size_t b);
  void swap(std::size_t a, std::size_t b);

  /// Applies a Pauli operator (error injection). Phases of `p` only affect
  /// the state's global phase, which a tableau does not track.
  void apply_pauli(const pauli::PauliString& p);

  // --- Measurement ----------------------------------------------------------
  /// Projective Z measurement with collapse.
  bool measure(std::size_t q, Rng& rng);
  /// True iff a Z measurement of q would have a deterministic outcome.
  bool is_deterministic_z(std::size_t q) const;
  /// Outcome of a deterministic Z measurement (precondition: deterministic).
  bool deterministic_z_value(std::size_t q) const;
  /// <Z_q>: +1/-1 when deterministic, else 0.
  double expectation_z(std::size_t q) const;
  /// Collapse q to |0> (measure, flip if needed); outcome discarded.
  void reset(std::size_t q, Rng& rng);

  /// Measures an arbitrary Hermitian Pauli observable `p` (phase must be
  /// i^0 or i^2).  Returns m such that the post-measurement state is
  /// stabilized by (-1)^m * p.  Used by verification oracles to read
  /// syndromes and logical operators directly.
  bool measure_pauli(const pauli::PauliString& p, Rng& rng);
  /// <P>: +1/-1 when P (or -P) stabilizes the state, else 0.
  double expectation_pauli(const pauli::PauliString& p) const;

  // --- Introspection (used by tests and the code library) ------------------
  /// Stabilizer generator i (0 <= i < n), sign folded into phase (0 or 2).
  pauli::PauliString stabilizer(std::size_t i) const;
  pauli::PauliString destabilizer(std::size_t i) const;
  /// True iff `p` (with its sign; i^1/i^3 phases are rejected) stabilizes
  /// the current state.
  bool state_is_stabilized_by(const pauli::PauliString& p) const;
  /// Validates the internal symplectic invariants; throws on corruption.
  void check_invariants() const;

  /// Index i (0 <= i < n) of the first stabilizer generator anticommuting
  /// with Z_q (an X or Y at q) — the pivot row measure() would collapse —
  /// or n when none exists (Z_q deterministic).  Lets a caller capture
  /// stabilizer(i) *before* a random measurement rewrites it.
  std::size_t z_measure_pivot(std::size_t q) const;

 private:
  std::size_t words() const { return (n_ + 63) / 64; }
  bool xbit(std::size_t row, std::size_t q) const;
  bool zbit(std::size_t row, std::size_t q) const;
  void set_xbit(std::size_t row, std::size_t q, bool v);
  void set_zbit(std::size_t row, std::size_t q, bool v);
  /// row_h *= row_i (CHP "rowmult" with exact sign tracking).
  void row_mult(std::size_t h, std::size_t i);
  void row_copy(std::size_t dst, std::size_t src);
  void row_clear(std::size_t row);
  pauli::PauliString row_to_pauli(std::size_t row) const;

  std::size_t n_;
  // 2n+1 rows: destabilizers, stabilizers, scratch.
  std::vector<std::vector<std::uint64_t>> x_;
  std::vector<std::vector<std::uint64_t>> z_;
  std::vector<std::uint8_t> r_;
};

}  // namespace eqc::stab
