// Grover search and its ensemble adaptations (paper Sec. 2, case (2)).
//
// With a single marked item, every computer in the ensemble converges to
// the same answer and the expectation readout works.  With s > 1 marked
// items the final state is a uniform superposition over the solutions, so
// the per-bit expectation signal washes out wherever solutions disagree —
// the readout is useless even though every computer "found" a solution.
//
// The fix (from Boykin et al., quant-ph/9907067): run the search r times
// into r registers on the SAME computer, reversibly SORT the registers,
// and read the first register: the minimum of r draws concentrates on the
// smallest solution, so the ensemble signal becomes clean.
#pragma once

#include <cstdint>
#include <vector>

#include "ensemble/machine.h"
#include "qsim/state_vector.h"

namespace eqc::algorithms {

struct GroverParams {
  std::size_t num_bits = 3;
  std::vector<std::uint64_t> marked;  ///< sorted set of solutions
  /// Grover iteration count; 0 = optimal round(pi/4 sqrt(N/s)).
  int iterations = 0;
};

/// Applies Grover's algorithm in-place on qubits [base, base+num_bits).
void apply_grover(qsim::StateVector& sv, const GroverParams& params,
                  std::size_t base_qubit);

/// Probability that the register holds a marked value.
double success_probability(const qsim::StateVector& sv,
                           const GroverParams& params, std::size_t base_qubit);

/// Repeat-and-sort: `repeats` Grover registers side by side, reversibly
/// sorted so register 0 holds the minimum.  Needs
/// repeats*num_bits + comparator-flag qubits; returns the number of flag
/// ancillas used (one per compare-exchange).
std::size_t apply_repeat_and_sort(qsim::StateVector& sv,
                                  const GroverParams& params,
                                  std::size_t repeats);

/// Qubits needed by apply_repeat_and_sort.
std::size_t repeat_and_sort_width(const GroverParams& params,
                                  std::size_t repeats);

/// Decodes an expectation-value readout of one register into a candidate
/// answer: bit i = 1 iff <Z_i> < 0.
std::uint64_t decode_readout(const std::vector<double>& z_values,
                             std::size_t base, std::size_t num_bits);

}  // namespace eqc::algorithms
