#include "algorithms/order_finding.h"

#include <cmath>
#include <numeric>

#include "common/assert.h"
#include "qsim/gates.h"

namespace eqc::algorithms {

std::uint64_t mod_pow(std::uint64_t base, std::uint64_t exp,
                      std::uint64_t mod) {
  EQC_EXPECTS(mod > 0);
  std::uint64_t result = 1 % mod;
  base %= mod;
  while (exp > 0) {
    if (exp & 1) result = (result * base) % mod;
    base = (base * base) % mod;
    exp >>= 1;
  }
  return result;
}

std::uint64_t multiplicative_order(std::uint64_t a, std::uint64_t n) {
  EQC_EXPECTS(n > 1 && std::gcd(a, n) == 1);
  std::uint64_t v = a % n;
  std::uint64_t order = 1;
  while (v != 1) {
    v = (v * (a % n)) % n;
    ++order;
    EQC_CHECK(order <= n);
  }
  return order;
}

std::uint64_t candidate_order(std::uint64_t y, std::size_t phase_bits,
                              std::uint64_t base, std::uint64_t modulus) {
  if (y == 0) return 0;
  // Continued-fraction expansion of y / 2^t; test each convergent's
  // denominator as an order candidate.
  const std::uint64_t q_max = std::uint64_t{1} << phase_bits;
  std::uint64_t num = y, den = q_max;
  // Convergent denominators k_n = a_n k_{n-1} + k_{n-2}, seeded with
  // k_{-2} = 1, k_{-1} = 0.
  std::uint64_t q_prev = 1, q_cur = 0;
  while (den != 0) {
    const std::uint64_t a = num / den;
    const std::uint64_t rem = num % den;
    const std::uint64_t q_next = a * q_cur + q_prev;
    if (q_next > modulus) break;
    q_prev = q_cur;
    q_cur = q_next;
    // Check the denominator (and, for even orders missed by an unlucky
    // convergent, its double).
    for (std::uint64_t r : {q_cur, 2 * q_cur}) {
      if (r >= 1 && r <= modulus && mod_pow(base, r, modulus) == 1) return r;
    }
    num = den;
    den = rem;
  }
  return 0;
}

OrderFindingLayout order_finding_layout(const OrderFindingParams& p) {
  OrderFindingLayout l;
  l.phase0 = 0;
  l.value0 = p.phase_bits;
  l.answer0 = l.value0 + p.value_bits;
  l.random0 = l.answer0 + p.order_bits;
  l.flag = l.random0 + p.order_bits;
  l.total = l.flag + 1;
  return l;
}

// Inverse QFT on qubits [base, base+n), bit k of the integer on qubit
// base+k.  Verified against the dense DFT in tests.
void apply_inverse_qft(qsim::StateVector& sv, std::size_t base,
                       std::size_t n) {
  // Undo the bit-reversal swaps of the forward QFT first.
  for (std::size_t k = 0; k < n / 2; ++k)
    sv.apply_swap(base + k, base + n - 1 - k);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t m = 0; m < j; ++m) {
      const double angle = -M_PI / static_cast<double>(1ULL << (j - m));
      sv.apply_controlled({base + m}, base + j, qsim::gate_phase(angle));
    }
    sv.apply1(base + j, qsim::gate_h());
  }
}

void apply_order_finding(qsim::StateVector& sv,
                         const OrderFindingParams& p) {
  const auto l = order_finding_layout(p);
  EQC_EXPECTS(l.total <= sv.num_qubits());
  EQC_EXPECTS(std::gcd(p.base, p.modulus) == 1);
  EQC_EXPECTS((std::uint64_t{1} << p.value_bits) >= p.modulus);

  const std::uint64_t vmask = (std::uint64_t{1} << p.value_bits) - 1;

  // Phase register in uniform superposition; value register = |1>.
  for (std::size_t k = 0; k < p.phase_bits; ++k)
    sv.apply1(l.phase0 + k, qsim::gate_h());
  sv.apply1(l.value0, qsim::gate_x());

  // Controlled modular multiplications by a^{2^k}.
  for (std::size_t k = 0; k < p.phase_bits; ++k) {
    const std::uint64_t mult = mod_pow(p.base, std::uint64_t{1} << k,
                                       p.modulus);
    const std::size_t control = l.phase0 + k;
    sv.apply_permutation([=, &p](std::uint64_t idx) {
      if (!((idx >> control) & 1)) return idx;
      const std::uint64_t v = (idx >> p.phase_bits) & vmask;
      if (v >= p.modulus) return idx;  // padding values are fixed points
      const std::uint64_t nv = (v * mult) % p.modulus;
      std::uint64_t out = idx & ~(vmask << p.phase_bits);
      return out | (nv << p.phase_bits);
    });
  }

  apply_inverse_qft(sv, l.phase0, p.phase_bits);
}

void apply_coherent_verification(qsim::StateVector& sv,
                                 const OrderFindingParams& p) {
  const auto l = order_finding_layout(p);
  const std::uint64_t ymask = (std::uint64_t{1} << p.phase_bits) - 1;
  const std::uint64_t omask = (std::uint64_t{1} << p.order_bits) - 1;

  // Precompute r(y) for every phase value (the classical subroutine that
  // Gershenfeld-Chuang fold into the quantum algorithm).
  std::vector<std::uint64_t> r_of_y(ymask + 1);
  for (std::uint64_t y = 0; y <= ymask; ++y) {
    const std::uint64_t r = candidate_order(y, p.phase_bits, p.base,
                                            p.modulus);
    r_of_y[y] = (r <= omask) ? r : 0;
  }

  sv.apply_permutation([=, &l](std::uint64_t idx) {
    const std::uint64_t y = (idx >> l.phase0) & ymask;
    const std::uint64_t r = r_of_y[y];
    std::uint64_t out = idx ^ (r << l.answer0);  // answer ^= r(y)
    if (r != 0) out ^= std::uint64_t{1} << l.flag;  // flag ^= valid
    return out;
  });
}

void apply_randomize_bad_results(qsim::StateVector& sv,
                                 const OrderFindingParams& p) {
  const auto l = order_finding_layout(p);
  const std::uint64_t omask = (std::uint64_t{1} << p.order_bits) - 1;

  // Fresh uniform randomness.
  for (std::size_t k = 0; k < p.order_bits; ++k)
    sv.apply1(l.random0 + k, qsim::gate_h());

  // Swap answer <-> random wherever the verification flag is 0: the bad
  // candidates become uniform noise whose expectation signal is zero.
  sv.apply_permutation([=, &l](std::uint64_t idx) {
    if ((idx >> l.flag) & 1) return idx;
    const std::uint64_t ans = (idx >> l.answer0) & omask;
    const std::uint64_t rnd = (idx >> l.random0) & omask;
    std::uint64_t out =
        idx & ~((omask << l.answer0) | (omask << l.random0));
    out |= rnd << l.answer0;
    out |= ans << l.random0;
    return out;
  });
}

}  // namespace eqc::algorithms
