#include "algorithms/grover.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "qsim/gates.h"

namespace eqc::algorithms {

namespace {

int optimal_iterations(std::size_t num_bits, std::size_t num_marked) {
  const double n = static_cast<double>(std::uint64_t{1} << num_bits);
  const double s = static_cast<double>(num_marked);
  const double theta = std::asin(std::sqrt(s / n));
  return std::max(1, static_cast<int>(std::round(M_PI / (4 * theta) - 0.5)));
}

bool is_marked(const GroverParams& params, std::uint64_t value) {
  return std::binary_search(params.marked.begin(), params.marked.end(), value);
}

}  // namespace

void apply_grover(qsim::StateVector& sv, const GroverParams& params,
                  std::size_t base_qubit) {
  EQC_EXPECTS(!params.marked.empty());
  EQC_EXPECTS(std::is_sorted(params.marked.begin(), params.marked.end()));
  EQC_EXPECTS(base_qubit + params.num_bits <= sv.num_qubits());
  const std::uint64_t mask = (std::uint64_t{1} << params.num_bits) - 1;
  for (std::uint64_t m : params.marked) EQC_EXPECTS(m <= mask);

  const int iters = params.iterations > 0
                        ? params.iterations
                        : optimal_iterations(params.num_bits,
                                             params.marked.size());

  auto reg_value = [&](std::uint64_t idx) {
    return (idx >> base_qubit) & mask;
  };

  // Uniform superposition.
  for (std::size_t b = 0; b < params.num_bits; ++b)
    sv.apply1(base_qubit + b, qsim::gate_h());

  for (int it = 0; it < iters; ++it) {
    // Oracle: phase-flip marked values.
    sv.apply_phase_oracle([&](std::uint64_t idx) {
      return is_marked(params, reg_value(idx));
    });
    // Diffusion: H^n, flip phase of |0...0>, H^n.
    for (std::size_t b = 0; b < params.num_bits; ++b)
      sv.apply1(base_qubit + b, qsim::gate_h());
    sv.apply_phase_oracle(
        [&](std::uint64_t idx) { return reg_value(idx) == 0; });
    for (std::size_t b = 0; b < params.num_bits; ++b)
      sv.apply1(base_qubit + b, qsim::gate_h());
  }
}

double success_probability(const qsim::StateVector& sv,
                           const GroverParams& params,
                           std::size_t base_qubit) {
  const std::uint64_t mask = (std::uint64_t{1} << params.num_bits) - 1;
  double p = 0.0;
  for (std::uint64_t idx = 0; idx < sv.dim(); ++idx) {
    if (is_marked(params, (idx >> base_qubit) & mask))
      p += std::norm(sv.amplitude(idx));
  }
  return p;
}

std::size_t repeat_and_sort_width(const GroverParams& params,
                                  std::size_t repeats) {
  // r registers plus one comparison-flag ancilla per compare-exchange of a
  // bubble-sort network: r(r-1)/2 comparators.
  return repeats * params.num_bits + repeats * (repeats - 1) / 2;
}

std::size_t apply_repeat_and_sort(qsim::StateVector& sv,
                                  const GroverParams& params,
                                  std::size_t repeats) {
  EQC_EXPECTS(repeats >= 2);
  const std::size_t nb = params.num_bits;
  EQC_EXPECTS(repeat_and_sort_width(params, repeats) <= sv.num_qubits());

  // Independent searches into r registers of the same computer.
  for (std::size_t r = 0; r < repeats; ++r)
    apply_grover(sv, params, r * nb);

  // Reversible bubble-sort: compare-exchange (i, i+1) records its swap
  // decision in a fresh flag ancilla, keeping the map injective.
  const std::uint64_t mask = (std::uint64_t{1} << nb) - 1;
  std::size_t flag = repeats * nb;
  std::size_t comparators = 0;
  for (std::size_t pass = 0; pass + 1 < repeats; ++pass) {
    for (std::size_t i = 0; i + 1 < repeats - pass; ++i) {
      const std::size_t lo = i * nb;
      const std::size_t hi = (i + 1) * nb;
      const std::size_t f = flag++;
      ++comparators;
      // Reversible compare-exchange: f ^= [a > b], then swap iff the NEW
      // flag value is 1.  This is a bijection on the whole basis (unlike
      // the naive "swap and set flag"), and sorts whenever f starts at 0.
      sv.apply_permutation([=](std::uint64_t idx) {
        const std::uint64_t a = (idx >> lo) & mask;
        const std::uint64_t b = (idx >> hi) & mask;
        const bool f_in = (idx >> f) & 1;
        const bool f_out = f_in != (a > b);
        std::uint64_t out = idx & ~((mask << lo) | (mask << hi) |
                                    (std::uint64_t{1} << f));
        out |= (f_out ? b : a) << lo;
        out |= (f_out ? a : b) << hi;
        if (f_out) out |= std::uint64_t{1} << f;
        return out;
      });
    }
  }
  return comparators;
}

std::uint64_t decode_readout(const std::vector<double>& z_values,
                             std::size_t base, std::size_t num_bits) {
  std::uint64_t out = 0;
  for (std::size_t b = 0; b < num_bits; ++b)
    if (z_values.at(base + b) < 0.0) out |= std::uint64_t{1} << b;
  return out;
}

}  // namespace eqc::algorithms
