#include "algorithms/teleport.h"

#include "common/assert.h"
#include "qsim/gates.h"
#include "qsim/state_vector.h"

namespace eqc::algorithms {

namespace {

using qsim::StateVector;

// Qubit 0: input; qubits 1, 2: Bell pair; output on qubit 2.
StateVector prepared_state(const Qubit& input) {
  std::vector<cplx> amp(8, cplx{0, 0});
  amp[0] = input.alpha;
  amp[1] = input.beta;
  auto sv = StateVector::from_amplitudes(std::move(amp));
  sv.apply1(1, qsim::gate_h());
  sv.apply_cnot(1, 2);
  // Bell-basis rotation on (0, 1).
  sv.apply_cnot(0, 1);
  sv.apply1(0, qsim::gate_h());
  return sv;
}

double output_fidelity(const StateVector& sv, const Qubit& input) {
  return sv.subsystem_fidelity({2}, {input.alpha, input.beta});
}

}  // namespace

double teleport_standard(const Qubit& input, Rng& rng) {
  StateVector sv = prepared_state(input);
  const bool m0 = sv.measure(0, rng);  // Z-correction bit
  const bool m1 = sv.measure(1, rng);  // X-correction bit
  if (m1) sv.apply1(2, qsim::gate_x());
  if (m0) sv.apply1(2, qsim::gate_z());
  return output_fidelity(sv, input);
}

double teleport_ensemble_attempt(const Qubit& input, Rng& rng) {
  StateVector sv = prepared_state(input);
  // The measurements happen (each molecule collapses), but the outcomes are
  // unobservable per computer, so nothing can be conditioned on them.
  (void)sv.measure(0, rng);
  (void)sv.measure(1, rng);
  return output_fidelity(sv, input);
}

double teleport_fully_quantum(const Qubit& input) {
  StateVector sv = prepared_state(input);
  // Corrections as quantum-controlled operations; the would-be measurement
  // qubits simply dephase, which is invisible to the output.
  sv.apply_cnot(1, 2);
  sv.apply_cz(0, 2);
  return output_fidelity(sv, input);
}

}  // namespace eqc::algorithms
