// Teleportation on single-computer vs ensemble machines (paper Sec. 2).
//
// Standard teleportation needs the Bell-measurement outcomes to pick the
// correction — on an ensemble machine the outcomes are uniformly random per
// computer and only their (useless) average is observable, so no correction
// can be applied and the output is maximally mixed (fidelity 1/2).  The
// "fully-quantum teleportation" of Brassard-Braunstein-Cleve replaces the
// classically-conditioned corrections with quantum-controlled X and Z, is
// measurement-free, and achieves fidelity 1 on an ensemble machine (and was
// demonstrated in NMR by Nielsen-Knill-Laflamme).
#pragma once

#include <complex>

#include "common/matrix.h"
#include "common/rng.h"

namespace eqc::algorithms {

/// Input qubit state alpha|0> + beta|1> (normalized by the caller).
struct Qubit {
  cplx alpha{1, 0};
  cplx beta{0, 0};
};

/// Standard teleportation with measurement + feed-forward corrections;
/// returns the fidelity of the received state (always 1).
double teleport_standard(const Qubit& input, Rng& rng);

/// What an ensemble machine can do with the standard protocol: the Bell
/// outcomes are unobservable per computer, so NO correction is applied.
/// Returns the fidelity averaged over the measurement record (-> 1/2).
double teleport_ensemble_attempt(const Qubit& input, Rng& rng);

/// Fully-quantum teleportation: corrections as coherent controlled gates;
/// measurement-free, ensemble-legal; returns fidelity (always 1).
double teleport_fully_quantum(const Qubit& input);

}  // namespace eqc::algorithms
