#include "algorithms/cooling.h"

#include <cmath>

#include "common/assert.h"
#include "qsim/gates.h"

namespace eqc::algorithms {

void prepare_biased_qubit(qsim::StateVector& sv, std::size_t q, double eps) {
  EQC_EXPECTS(eps >= -1.0 && eps <= 1.0);
  // P(0) = (1+eps)/2  ->  Ry(2 acos(sqrt(P0))).
  const double p0 = (1.0 + eps) / 2.0;
  sv.apply1(q, qsim::gate_ry(2.0 * std::acos(std::sqrt(p0))));
}

void apply_basic_compression(qsim::StateVector& sv, std::size_t a,
                             std::size_t b, std::size_t c) {
  EQC_EXPECTS(a != b && b != c && a != c);
  // Bijective map: bit a receives MAJ(a,b,c); bits (b,c) receive a 2-bit
  // tag distinguishing the four inputs with that majority.  Within each
  // majority class the four patterns are enumerated in a fixed order, so
  // the map is a permutation of the 8 basis states.
  sv.apply_permutation([=](std::uint64_t idx) {
    const int va = (idx >> a) & 1;
    const int vb = (idx >> b) & 1;
    const int vc = (idx >> c) & 1;
    const int maj = (va + vb + vc) >= 2 ? 1 : 0;
    // Tag: which of the 4 patterns with this majority value.
    // Patterns with maj m, ordered: the unanimous one first, then the
    // three with one dissenter, indexed by the dissenter's position.
    int tag;
    if (va == maj && vb == maj && vc == maj)
      tag = 0;
    else if (va != maj)
      tag = 1;
    else if (vb != maj)
      tag = 2;
    else
      tag = 3;
    std::uint64_t out = idx & ~((std::uint64_t{1} << a) |
                                (std::uint64_t{1} << b) |
                                (std::uint64_t{1} << c));
    if (maj) out |= std::uint64_t{1} << a;
    if (tag & 1) out |= std::uint64_t{1} << b;
    if (tag & 2) out |= std::uint64_t{1} << c;
    return out;
  });
}

double compression_bias(double eps) {
  return (3.0 * eps - eps * eps * eps) / 2.0;
}

std::size_t apply_recursive_cooling(qsim::StateVector& sv, std::size_t base,
                                    int depth) {
  EQC_EXPECTS(depth >= 1 && depth <= 3);
  std::size_t block = 1;
  for (int d = 0; d < depth; ++d) block *= 3;
  EQC_EXPECTS(base + block <= sv.num_qubits());

  // Bottom-up: compress triples of the (recursively cooled) leaders.
  // After level d the leaders sit at stride 3^d.
  std::size_t stride = 1;
  for (int d = 0; d < depth; ++d) {
    for (std::size_t start = base; start + 2 * stride < base + block;
         start += 3 * stride) {
      apply_basic_compression(sv, start, start + stride, start + 2 * stride);
    }
    stride *= 3;
  }
  return base;
}

double recursive_bias(double eps, int depth) {
  double b = eps;
  for (int d = 0; d < depth; ++d) b = compression_bias(b);
  return b;
}

}  // namespace eqc::algorithms
