// The random-number-generator impossibility (paper Sec. 2): a single
// quantum computer extracts one Bernoulli(p) bit per measurement of
// sqrt(p)|0> + sqrt(1-p)|1>; an ensemble machine sees only the expectation
// p*lambda_0 + (1-p)*lambda_1 — a deterministic number carrying no entropy.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace eqc::algorithms {

/// Per-computer measurements: `count` genuine Bernoulli(1-p0) samples.
std::vector<bool> single_computer_rng(double p_zero, std::size_t count,
                                      Rng& rng);

/// Ensemble readouts of the same state over `trials` fresh ensembles of
/// `num_computers` molecules each: all values cluster at 2*p_zero - 1.
std::vector<double> ensemble_rng_readouts(double p_zero,
                                          std::size_t num_computers,
                                          std::size_t trials,
                                          std::uint64_t seed);

/// Shannon entropy (bits) of a boolean sample.
double empirical_entropy(const std::vector<bool>& bits);

}  // namespace eqc::algorithms
