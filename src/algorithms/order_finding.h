// Order finding (the quantum core of Shor's algorithm) and its ensemble
// adaptation (paper Sec. 2, case (1)).
//
// The standard algorithm measures the phase-estimation register and
// classically post-processes (continued fractions + verification).  On an
// ensemble machine the measurement outcomes differ across computers, and
// even after folding the classical verification into the circuit (as
// Gershenfeld-Chuang proposed) the "bad" candidates still pollute the
// average.  The paper's randomize-bad-results strategy replaces each bad
// candidate with fresh random data, whose contribution to the expectation
// readout averages to zero, leaving the good answer's clean signal.
#pragma once

#include <cstdint>
#include <vector>

#include "qsim/state_vector.h"

namespace eqc::algorithms {

struct OrderFindingParams {
  std::uint64_t modulus = 15;  ///< N
  std::uint64_t base = 7;      ///< a, with gcd(a, N) = 1
  std::size_t phase_bits = 8;  ///< t, phase-estimation register width
  std::size_t value_bits = 4;  ///< target register width (>= ceil lg N)
  std::size_t order_bits = 3;  ///< answer register width (>= ceil lg r)
};

std::uint64_t mod_pow(std::uint64_t base, std::uint64_t exp,
                      std::uint64_t mod);
/// Multiplicative order of a mod N (classical reference).
std::uint64_t multiplicative_order(std::uint64_t a, std::uint64_t n);

/// Classical post-processing of a phase-register readout y: the candidate
/// order from the continued-fraction expansion of y / 2^t (0 if none).
std::uint64_t candidate_order(std::uint64_t y, std::size_t phase_bits,
                              std::uint64_t base, std::uint64_t modulus);

/// Register layout within one computer:
///   [phase t][value v][answer o][random o][flag 1]
struct OrderFindingLayout {
  std::size_t phase0, value0, answer0, random0, flag;
  std::size_t total;
};
OrderFindingLayout order_finding_layout(const OrderFindingParams& params);

/// Inverse quantum Fourier transform on qubits [base, base+n), with bit k
/// of the integer on qubit base+k (verified against the dense DFT).
void apply_inverse_qft(qsim::StateVector& sv, std::size_t base,
                       std::size_t n);

/// Runs phase estimation: H^t, controlled modular multiplications, inverse
/// QFT on the phase register.  The computer ends in a superposition of
/// phase readouts y.
void apply_order_finding(qsim::StateVector& sv,
                         const OrderFindingParams& params);

/// Folds the classical post-processing into the circuit: writes the
/// candidate order r(y) into the answer register and the validity flag.
void apply_coherent_verification(qsim::StateVector& sv,
                                 const OrderFindingParams& params);

/// The paper's strategy: prepares the random register uniformly and swaps
/// it into the answer register on every computer whose flag is 0.
void apply_randomize_bad_results(qsim::StateVector& sv,
                                 const OrderFindingParams& params);

}  // namespace eqc::algorithms
