// Algorithmic cooling (Boykin-Mor-Roychowdhury-Vatan-Vrijen, PNAS 2002) —
// the mechanism the paper cites for resetting bits on ensemble computers,
// where "a simple way to reset a bit is to measure it and flip it if the
// outcome is |1>" is impossible.
//
// Basic compression step (BCS): three qubits, each with bias epsilon
// (P(|0>) = (1+eps)/2), are reversibly permuted so that the first qubit's
// bias becomes (3 eps - eps^3)/2 — a ~3/2 boost for small eps — while the
// other two absorb the entropy.  Applied recursively on fresh triples this
// purifies ancillas without any measurement, making it ensemble-legal.
#pragma once

#include <cstddef>

#include "qsim/state_vector.h"

namespace eqc::algorithms {

/// Prepares qubit `q` in the thermal-like pure-state proxy
/// sqrt((1+eps)/2)|0> + sqrt((1-eps)/2)|1>  (bias eps in [-1, 1]).
void prepare_biased_qubit(qsim::StateVector& sv, std::size_t q, double eps);

/// Reversible basic compression step on qubits (a, b, c): afterwards
/// <Z_a> equals the majority-vote bias of the three inputs; b and c hold
/// the residual information bijectively.
void apply_basic_compression(qsim::StateVector& sv, std::size_t a,
                             std::size_t b, std::size_t c);

/// Predicted output bias of one BCS on three independent eps-biased qubits:
/// (3 eps - eps^3) / 2.
double compression_bias(double eps);

/// Recursive cooling on 3^depth qubits starting at `base`, all prepared
/// with bias eps: returns the index of the coldest qubit.  Uses
/// 3^depth <= 27 qubits (depth <= 3 enforced).
std::size_t apply_recursive_cooling(qsim::StateVector& sv, std::size_t base,
                                    int depth);

/// Predicted bias after `depth` recursion levels.
double recursive_bias(double eps, int depth);

}  // namespace eqc::algorithms
