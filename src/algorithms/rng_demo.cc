#include "algorithms/rng_demo.h"

#include <cmath>

#include "common/assert.h"
#include "ensemble/machine.h"
#include "qsim/gates.h"
#include "qsim/state_vector.h"

namespace eqc::algorithms {

namespace {
void prepare_biased(qsim::StateVector& sv, double p_zero) {
  // Ry rotation: |0> -> sqrt(p0)|0> + sqrt(1-p0)|1>.
  sv.apply1(0, qsim::gate_ry(2.0 * std::acos(std::sqrt(p_zero))));
}
}  // namespace

std::vector<bool> single_computer_rng(double p_zero, std::size_t count,
                                      Rng& rng) {
  EQC_EXPECTS(p_zero >= 0.0 && p_zero <= 1.0);
  std::vector<bool> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    qsim::StateVector sv(1);
    prepare_biased(sv, p_zero);
    out.push_back(sv.measure(0, rng));
  }
  return out;
}

std::vector<double> ensemble_rng_readouts(double p_zero,
                                          std::size_t num_computers,
                                          std::size_t trials,
                                          std::uint64_t seed) {
  std::vector<double> out;
  out.reserve(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    ensemble::EnsembleMachine machine(1, num_computers, seed + t);
    machine.apply([p_zero](qsim::StateVector& sv) {
      prepare_biased(sv, p_zero);
    });
    out.push_back(machine.readout_z(0, /*shot_sampled=*/true));
  }
  return out;
}

double empirical_entropy(const std::vector<bool>& bits) {
  if (bits.empty()) return 0.0;
  std::size_t ones = 0;
  for (bool b : bits) ones += b ? 1 : 0;
  const double p = static_cast<double>(ones) / static_cast<double>(bits.size());
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1 - p) * std::log2(1 - p);
}

}  // namespace eqc::algorithms
