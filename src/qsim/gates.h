// Standard single-qubit gate matrices.
//
// Naming follows the paper: sigma_z^{1/2} is S, sigma_z^{1/4} is T.
#pragma once

#include "common/matrix.h"

namespace eqc::qsim {

Mat2 gate_i();
Mat2 gate_x();
Mat2 gate_y();
Mat2 gate_z();
Mat2 gate_h();
Mat2 gate_s();      ///< sigma_z^{1/2} = diag(1, i)
Mat2 gate_sdg();    ///< sigma_z^{-1/2}
Mat2 gate_t();      ///< sigma_z^{1/4} = diag(1, e^{i pi/4})
Mat2 gate_tdg();    ///< sigma_z^{-1/4}
Mat2 gate_rz(double theta);     ///< diag(e^{-i theta/2}, e^{+i theta/2})
Mat2 gate_rx(double theta);
Mat2 gate_ry(double theta);
Mat2 gate_phase(double theta);  ///< diag(1, e^{i theta})
Mat2 gate_sqrt_x();             ///< sigma_x^{1/2}

}  // namespace eqc::qsim
