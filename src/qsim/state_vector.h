// Dense state-vector simulator.
//
// Qubit q corresponds to bit q of the basis-state index (qubit 0 is the
// least significant bit).  Practical up to ~24 qubits on a laptop-class
// machine; the fault-tolerance experiments in this repository use <= 20.
//
// The simulator supports "internal" measurement (eqc::qsim::StateVector::
// measure) which physically models collapse; whether a protocol is *allowed*
// to observe the outcome is a property of the layer above (the ensemble
// machine hides outcomes; the measurement-free protocols never call it).
#pragma once

#include <complex>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "pauli/pauli_string.h"

namespace eqc::qsim {

class StateVector {
 public:
  /// |0...0> on `num_qubits` qubits.
  explicit StateVector(std::size_t num_qubits);

  /// Takes ownership of raw amplitudes (size must be a power of two).
  static StateVector from_amplitudes(std::vector<cplx> amplitudes);

  std::size_t num_qubits() const { return n_; }
  std::uint64_t dim() const { return std::uint64_t{1} << n_; }
  cplx amplitude(std::uint64_t basis_state) const;
  const std::vector<cplx>& amplitudes() const { return amp_; }

  // --- Unitary evolution -------------------------------------------------
  /// Generic single-qubit gate.  Diagonal and anti-diagonal matrices are
  /// detected (exact-zero off/on-diagonal entries, which all library gate
  /// constructors and their products preserve) and dispatched to the
  /// specialized kernels below, skipping the generic complex multiply.
  void apply1(std::size_t q, const Mat2& u);
  /// diag(d0, d1) on qubit q; when d0 == 1 only the upper half-space is
  /// touched (covers Z, S, Sdg, T, Tdg and their products).
  void apply_diag1(std::size_t q, cplx d0, cplx d1);
  /// Anti-diagonal [[0, a01], [a10, 0]] on qubit q (covers X, Y and
  /// products of either with diagonal gates).
  void apply_antidiag1(std::size_t q, cplx a01, cplx a10);
  /// Hadamard on qubit q (dedicated kernel: one real scale, no complex
  /// matrix product).
  void apply_h(std::size_t q);
  /// Pauli X on qubit q (pure amplitude swap).
  void apply_x(std::size_t q);
  /// 2-qubit gate; `high` indexes the more significant qubit of the 4x4
  /// matrix's 2-bit row index (row = 2*bit(high) + bit(low)).
  void apply2(std::size_t high, std::size_t low, const Mat4& u);
  /// U on `target`, controlled on every qubit in `controls` being |1>.
  void apply_controlled(const std::vector<std::size_t>& controls,
                        std::size_t target, const Mat2& u);
  void apply_cnot(std::size_t control, std::size_t target);
  void apply_cz(std::size_t a, std::size_t b);
  void apply_swap(std::size_t a, std::size_t b);
  /// Exact Pauli application including the operator's i^k phase.
  void apply_pauli(const pauli::PauliString& p);

  /// Applies the permutation |x> -> |pi(x)> over all basis states.
  /// `pi` must be a bijection on [0, dim); verified in debug paths by the
  /// caller (tests cover the library-provided permutations).
  void apply_permutation(const std::function<std::uint64_t(std::uint64_t)>& pi);

  /// Phase oracle: |x> -> -|x> for every x with predicate(x) true.
  void apply_phase_oracle(const std::function<bool(std::uint64_t)>& predicate);

  // --- Measurement and readout -------------------------------------------
  /// Probability that qubit q reads 1.
  double prob_one(std::size_t q) const;
  /// <Z_q> = P(0) - P(1).
  double expectation_z(std::size_t q) const;
  /// Projective Z measurement with collapse; returns the outcome.
  bool measure(std::size_t q, Rng& rng);
  /// Forced-outcome collapse: projects qubit q onto `outcome` and
  /// renormalizes, returning the pre-projection probability of that outcome.
  /// Throws when the outcome has (numerically) zero probability.  This is
  /// the primitive that lets a differential oracle replay another backend's
  /// measurement record on a state vector without sharing an RNG stream.
  double project_z(std::size_t q, bool outcome);
  /// Discard-and-replace: measures q (outcome unobserved) and re-prepares
  /// |0>.  Physically equivalent to swapping in a fresh ancilla when the old
  /// qubit is never used again.
  void reset(std::size_t q, Rng& rng);

  // --- Analysis helpers ---------------------------------------------------
  double norm() const;
  void normalize();
  /// <this|other>.
  cplx inner_product(const StateVector& other) const;
  /// |<this|other>|^2.
  double fidelity(const StateVector& other) const;
  /// Reduced density matrix on `qubits` (row-major, dim 2^k x 2^k, k <= 12).
  /// qubits[0] is the least significant bit of the reduced index.
  std::vector<cplx> reduced_density_matrix(
      const std::vector<std::size_t>& qubits) const;
  /// <phi| rho_qubits |phi> where |phi> is a pure state on `qubits`.
  double subsystem_fidelity(const std::vector<std::size_t>& qubits,
                            const std::vector<cplx>& phi) const;

 private:
  std::size_t n_;
  std::vector<cplx> amp_;
  /// Reused full-dimension scratch for the out-of-place kernels
  /// (apply_pauli / apply_permutation): its capacity survives across calls
  /// so steady-state evolution allocates nothing.  StateVector is not
  /// internally synchronized; concurrent use of one instance — const or
  /// not — requires external locking (the parallel Monte-Carlo drivers use
  /// one StateVector per trial).
  mutable std::vector<cplx> scratch_;
  /// Reused index tables for reduced_density_matrix.
  mutable std::vector<std::uint64_t> kept_index_;
  mutable std::vector<std::uint64_t> env_index_;
};

}  // namespace eqc::qsim
