#include "qsim/state_vector.h"

#include <bit>
#include <cmath>

#include "common/assert.h"

namespace eqc::qsim {

StateVector::StateVector(std::size_t num_qubits)
    : n_(num_qubits), amp_(std::uint64_t{1} << num_qubits, cplx{0, 0}) {
  EQC_EXPECTS(num_qubits <= 30);
  amp_[0] = 1.0;
}

StateVector StateVector::from_amplitudes(std::vector<cplx> amplitudes) {
  EQC_EXPECTS(!amplitudes.empty() && std::has_single_bit(amplitudes.size()));
  StateVector sv(static_cast<std::size_t>(std::countr_zero(amplitudes.size())));
  sv.amp_ = std::move(amplitudes);
  return sv;
}

cplx StateVector::amplitude(std::uint64_t basis_state) const {
  EQC_EXPECTS(basis_state < dim());
  return amp_[basis_state];
}

void StateVector::apply1(std::size_t q, const Mat2& u) {
  EQC_EXPECTS(q < n_);
  // Shape dispatch: the library's gate constructors (and any product of
  // them) carry exact 0.0 entries, so equality checks are reliable.
  const bool diag = u(0, 1) == cplx{0, 0} && u(1, 0) == cplx{0, 0};
  if (diag) {
    apply_diag1(q, u(0, 0), u(1, 1));
    return;
  }
  const bool antidiag = u(0, 0) == cplx{0, 0} && u(1, 1) == cplx{0, 0};
  if (antidiag) {
    apply_antidiag1(q, u(0, 1), u(1, 0));
    return;
  }
  const std::uint64_t stride = std::uint64_t{1} << q;
  const std::uint64_t d = dim();
  for (std::uint64_t base = 0; base < d; base += 2 * stride) {
    for (std::uint64_t off = 0; off < stride; ++off) {
      const std::uint64_t i0 = base + off;
      const std::uint64_t i1 = i0 + stride;
      const cplx a0 = amp_[i0];
      const cplx a1 = amp_[i1];
      amp_[i0] = u(0, 0) * a0 + u(0, 1) * a1;
      amp_[i1] = u(1, 0) * a0 + u(1, 1) * a1;
    }
  }
}

void StateVector::apply_diag1(std::size_t q, cplx d0, cplx d1) {
  EQC_EXPECTS(q < n_);
  const std::uint64_t stride = std::uint64_t{1} << q;
  const std::uint64_t d = dim();
  if (d0 == cplx{1, 0}) {
    // Z / S / T family: only the |1>_q half-space moves.
    for (std::uint64_t base = 0; base < d; base += 2 * stride)
      for (std::uint64_t off = 0; off < stride; ++off)
        amp_[base + stride + off] *= d1;
    return;
  }
  for (std::uint64_t base = 0; base < d; base += 2 * stride) {
    for (std::uint64_t off = 0; off < stride; ++off) {
      amp_[base + off] *= d0;
      amp_[base + stride + off] *= d1;
    }
  }
}

void StateVector::apply_antidiag1(std::size_t q, cplx a01, cplx a10) {
  EQC_EXPECTS(q < n_);
  const std::uint64_t stride = std::uint64_t{1} << q;
  const std::uint64_t d = dim();
  if (a01 == cplx{1, 0} && a10 == cplx{1, 0}) {
    apply_x(q);
    return;
  }
  for (std::uint64_t base = 0; base < d; base += 2 * stride) {
    for (std::uint64_t off = 0; off < stride; ++off) {
      const std::uint64_t i0 = base + off;
      const std::uint64_t i1 = i0 + stride;
      const cplx a0 = amp_[i0];
      amp_[i0] = a01 * amp_[i1];
      amp_[i1] = a10 * a0;
    }
  }
}

void StateVector::apply_x(std::size_t q) {
  EQC_EXPECTS(q < n_);
  const std::uint64_t stride = std::uint64_t{1} << q;
  const std::uint64_t d = dim();
  for (std::uint64_t base = 0; base < d; base += 2 * stride)
    for (std::uint64_t off = 0; off < stride; ++off)
      std::swap(amp_[base + off], amp_[base + stride + off]);
}

void StateVector::apply_h(std::size_t q) {
  EQC_EXPECTS(q < n_);
  constexpr double kInvSqrt2 = 0.70710678118654752440;
  const std::uint64_t stride = std::uint64_t{1} << q;
  const std::uint64_t d = dim();
  for (std::uint64_t base = 0; base < d; base += 2 * stride) {
    for (std::uint64_t off = 0; off < stride; ++off) {
      const std::uint64_t i0 = base + off;
      const std::uint64_t i1 = i0 + stride;
      const cplx a0 = amp_[i0];
      const cplx a1 = amp_[i1];
      amp_[i0] = kInvSqrt2 * (a0 + a1);
      amp_[i1] = kInvSqrt2 * (a0 - a1);
    }
  }
}

void StateVector::apply2(std::size_t high, std::size_t low, const Mat4& u) {
  EQC_EXPECTS(high < n_ && low < n_ && high != low);
  const std::uint64_t bh = std::uint64_t{1} << high;
  const std::uint64_t bl = std::uint64_t{1} << low;
  const std::uint64_t d = dim();
  for (std::uint64_t i = 0; i < d; ++i) {
    if ((i & bh) || (i & bl)) continue;  // visit each group once via its 00 rep
    const std::uint64_t i00 = i;
    const std::uint64_t i01 = i | bl;
    const std::uint64_t i10 = i | bh;
    const std::uint64_t i11 = i | bh | bl;
    const cplx a00 = amp_[i00], a01 = amp_[i01], a10 = amp_[i10],
               a11 = amp_[i11];
    amp_[i00] = u(0, 0) * a00 + u(0, 1) * a01 + u(0, 2) * a10 + u(0, 3) * a11;
    amp_[i01] = u(1, 0) * a00 + u(1, 1) * a01 + u(1, 2) * a10 + u(1, 3) * a11;
    amp_[i10] = u(2, 0) * a00 + u(2, 1) * a01 + u(2, 2) * a10 + u(2, 3) * a11;
    amp_[i11] = u(3, 0) * a00 + u(3, 1) * a01 + u(3, 2) * a10 + u(3, 3) * a11;
  }
}

void StateVector::apply_controlled(const std::vector<std::size_t>& controls,
                                   std::size_t target, const Mat2& u) {
  EQC_EXPECTS(target < n_);
  std::uint64_t cmask = 0;
  for (std::size_t c : controls) {
    EQC_EXPECTS(c < n_ && c != target);
    cmask |= std::uint64_t{1} << c;
  }
  const std::uint64_t t = std::uint64_t{1} << target;
  const std::uint64_t d = dim();
  for (std::uint64_t i = 0; i < d; ++i) {
    if ((i & t) || (i & cmask) != cmask) continue;
    const std::uint64_t i0 = i;
    const std::uint64_t i1 = i | t;
    const cplx a0 = amp_[i0];
    const cplx a1 = amp_[i1];
    amp_[i0] = u(0, 0) * a0 + u(0, 1) * a1;
    amp_[i1] = u(1, 0) * a0 + u(1, 1) * a1;
  }
}

void StateVector::apply_cnot(std::size_t control, std::size_t target) {
  EQC_EXPECTS(control < n_ && target < n_ && control != target);
  const std::uint64_t c = std::uint64_t{1} << control;
  const std::uint64_t t = std::uint64_t{1} << target;
  const std::uint64_t d = dim();
  for (std::uint64_t i = 0; i < d; ++i)
    if ((i & c) && !(i & t)) std::swap(amp_[i], amp_[i | t]);
}

void StateVector::apply_cz(std::size_t a, std::size_t b) {
  EQC_EXPECTS(a < n_ && b < n_ && a != b);
  const std::uint64_t mask = (std::uint64_t{1} << a) | (std::uint64_t{1} << b);
  const std::uint64_t d = dim();
  for (std::uint64_t i = 0; i < d; ++i)
    if ((i & mask) == mask) amp_[i] = -amp_[i];
}

void StateVector::apply_swap(std::size_t a, std::size_t b) {
  EQC_EXPECTS(a < n_ && b < n_ && a != b);
  const std::uint64_t ba = std::uint64_t{1} << a;
  const std::uint64_t bb = std::uint64_t{1} << b;
  const std::uint64_t d = dim();
  for (std::uint64_t i = 0; i < d; ++i)
    if ((i & ba) && !(i & bb)) std::swap(amp_[i], amp_[(i ^ ba) | bb]);
}

void StateVector::apply_pauli(const pauli::PauliString& p) {
  EQC_EXPECTS(p.num_qubits() == n_);
  std::uint64_t xmask = 0, zmask = 0;
  for (std::size_t q = 0; q < n_; ++q) {
    if (p.x_bit(q)) xmask |= std::uint64_t{1} << q;
    if (p.z_bit(q)) zmask |= std::uint64_t{1} << q;
  }
  static constexpr cplx kIPow[4] = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};
  const cplx global = kIPow[p.phase()];
  const std::uint64_t d = dim();
  if (xmask == 0) {
    // Pure-Z string: a diagonal phase, applied in place.
    for (std::uint64_t i = 0; i < d; ++i) {
      const bool neg = std::popcount(i & zmask) % 2 == 1;
      amp_[i] *= neg ? -global : global;
    }
    return;
  }
  // P |i> = i^k (-1)^{parity(z & i)} |i ^ x>   (Z acts first, X flips after).
  scratch_.resize(d);
  for (std::uint64_t i = 0; i < d; ++i) {
    const bool neg = std::popcount(i & zmask) % 2 == 1;
    scratch_[i ^ xmask] = (neg ? -global : global) * amp_[i];
  }
  amp_.swap(scratch_);
}

void StateVector::apply_permutation(
    const std::function<std::uint64_t(std::uint64_t)>& pi) {
  const std::uint64_t d = dim();
  scratch_.assign(d, cplx{0, 0});
  for (std::uint64_t i = 0; i < d; ++i) {
    const std::uint64_t j = pi(i);
    EQC_EXPECTS(j < d);
    scratch_[j] += amp_[i];
  }
  amp_.swap(scratch_);
  // A non-bijective pi would change the norm; catch it.
  EQC_ENSURES(std::abs(norm() - 1.0) < 1e-6);
}

void StateVector::apply_phase_oracle(
    const std::function<bool(std::uint64_t)>& predicate) {
  const std::uint64_t d = dim();
  for (std::uint64_t i = 0; i < d; ++i)
    if (predicate(i)) amp_[i] = -amp_[i];
}

double StateVector::prob_one(std::size_t q) const {
  EQC_EXPECTS(q < n_);
  const std::uint64_t b = std::uint64_t{1} << q;
  double p = 0.0;
  const std::uint64_t d = dim();
  for (std::uint64_t i = 0; i < d; ++i)
    if (i & b) p += std::norm(amp_[i]);
  return p;
}

double StateVector::expectation_z(std::size_t q) const {
  return 1.0 - 2.0 * prob_one(q);
}

bool StateVector::measure(std::size_t q, Rng& rng) {
  EQC_EXPECTS(q < n_);
  const double p1 = prob_one(q);
  const bool outcome = rng.bernoulli(p1);
  const std::uint64_t b = std::uint64_t{1} << q;
  const double keep_prob = outcome ? p1 : 1.0 - p1;
  EQC_CHECK(keep_prob > 0.0);
  const double scale = 1.0 / std::sqrt(keep_prob);
  const std::uint64_t d = dim();
  for (std::uint64_t i = 0; i < d; ++i) {
    const bool bit_set = (i & b) != 0;
    amp_[i] = (bit_set == outcome) ? amp_[i] * scale : cplx{0, 0};
  }
  return outcome;
}

double StateVector::project_z(std::size_t q, bool outcome) {
  EQC_EXPECTS(q < n_);
  const double p1 = prob_one(q);
  const double prob = outcome ? p1 : 1.0 - p1;
  EQC_CHECK(prob > 0.0);
  const double scale = 1.0 / std::sqrt(prob);
  const std::uint64_t b = std::uint64_t{1} << q;
  const std::uint64_t d = dim();
  for (std::uint64_t i = 0; i < d; ++i) {
    const bool bit_set = (i & b) != 0;
    amp_[i] = (bit_set == outcome) ? amp_[i] * scale : cplx{0, 0};
  }
  return prob;
}

void StateVector::reset(std::size_t q, Rng& rng) {
  // Flip back to |0>: X on a collapsed qubit.
  if (measure(q, rng)) apply_x(q);
}

double StateVector::norm() const {
  double s = 0.0;
  for (const cplx& a : amp_) s += std::norm(a);
  return std::sqrt(s);
}

void StateVector::normalize() {
  const double nm = norm();
  EQC_EXPECTS(nm > 0.0);
  const double inv = 1.0 / nm;
  for (cplx& a : amp_) a *= inv;
}

cplx StateVector::inner_product(const StateVector& other) const {
  EQC_EXPECTS(n_ == other.n_);
  cplx s = 0;
  const std::uint64_t d = dim();
  for (std::uint64_t i = 0; i < d; ++i) s += std::conj(amp_[i]) * other.amp_[i];
  return s;
}

double StateVector::fidelity(const StateVector& other) const {
  return std::norm(inner_product(other));
}

std::vector<cplx> StateVector::reduced_density_matrix(
    const std::vector<std::size_t>& qubits) const {
  EQC_EXPECTS(qubits.size() <= 12);
  const std::size_t k = qubits.size();
  const std::uint64_t kd = std::uint64_t{1} << k;
  std::vector<cplx> rho(kd * kd, cplx{0, 0});

  // Enumerate kept-subsystem values r, environment values e; the environment
  // qubits are everything not in `qubits`.
  std::vector<std::size_t> env;
  std::vector<bool> kept(n_, false);
  for (std::size_t q : qubits) {
    EQC_EXPECTS(q < n_ && !kept[q]);
    kept[q] = true;
  }
  for (std::size_t q = 0; q < n_; ++q)
    if (!kept[q]) env.push_back(q);

  // Precomputed scatter tables replace the per-amplitude bit loop: the
  // full index of (r, e) is kept_index_[r] | env_index_[e].  The tables
  // are member scratch so repeated readouts (one per Monte-Carlo trial
  // step) reuse their capacity.
  const std::uint64_t ed = std::uint64_t{1} << env.size();
  kept_index_.resize(kd);
  for (std::uint64_t r = 0; r < kd; ++r) {
    std::uint64_t idx = 0;
    for (std::size_t b = 0; b < k; ++b)
      if (r & (std::uint64_t{1} << b)) idx |= std::uint64_t{1} << qubits[b];
    kept_index_[r] = idx;
  }
  env_index_.resize(ed);
  for (std::uint64_t e = 0; e < ed; ++e) {
    std::uint64_t idx = 0;
    for (std::size_t b = 0; b < env.size(); ++b)
      if (e & (std::uint64_t{1} << b)) idx |= std::uint64_t{1} << env[b];
    env_index_[e] = idx;
  }

  for (std::uint64_t e = 0; e < ed; ++e) {
    const std::uint64_t ebits = env_index_[e];
    for (std::uint64_t r = 0; r < kd; ++r) {
      const cplx ar = amp_[kept_index_[r] | ebits];
      if (ar == cplx{0, 0}) continue;
      for (std::uint64_t c = 0; c < kd; ++c) {
        const cplx ac = amp_[kept_index_[c] | ebits];
        rho[r * kd + c] += ar * std::conj(ac);
      }
    }
  }
  return rho;
}

double StateVector::subsystem_fidelity(const std::vector<std::size_t>& qubits,
                                       const std::vector<cplx>& phi) const {
  const std::uint64_t kd = std::uint64_t{1} << qubits.size();
  EQC_EXPECTS(phi.size() == kd);
  const std::vector<cplx> rho = reduced_density_matrix(qubits);
  cplx f = 0;
  for (std::uint64_t r = 0; r < kd; ++r)
    for (std::uint64_t c = 0; c < kd; ++c)
      f += std::conj(phi[r]) * rho[r * kd + c] * phi[c];
  return f.real();
}

}  // namespace eqc::qsim
