#include "qsim/gates.h"

#include <cmath>

namespace eqc::qsim {

namespace {
constexpr double kInvSqrt2 = 0.70710678118654752440;
Mat2 make(cplx a00, cplx a01, cplx a10, cplx a11) {
  Mat2 m;
  m(0, 0) = a00;
  m(0, 1) = a01;
  m(1, 0) = a10;
  m(1, 1) = a11;
  return m;
}
}  // namespace

Mat2 gate_i() { return make(1, 0, 0, 1); }
Mat2 gate_x() { return make(0, 1, 1, 0); }
Mat2 gate_y() { return make(0, cplx{0, -1}, cplx{0, 1}, 0); }
Mat2 gate_z() { return make(1, 0, 0, -1); }
Mat2 gate_h() {
  return make(kInvSqrt2, kInvSqrt2, kInvSqrt2, -kInvSqrt2);
}
Mat2 gate_s() { return make(1, 0, 0, cplx{0, 1}); }
Mat2 gate_sdg() { return make(1, 0, 0, cplx{0, -1}); }
Mat2 gate_t() { return gate_phase(M_PI / 4); }
Mat2 gate_tdg() { return gate_phase(-M_PI / 4); }

Mat2 gate_rz(double theta) {
  return make(std::polar(1.0, -theta / 2), 0, 0, std::polar(1.0, theta / 2));
}

Mat2 gate_rx(double theta) {
  const double c = std::cos(theta / 2);
  const double s = std::sin(theta / 2);
  return make(c, cplx{0, -s}, cplx{0, -s}, c);
}

Mat2 gate_ry(double theta) {
  const double c = std::cos(theta / 2);
  const double s = std::sin(theta / 2);
  return make(c, -s, s, c);
}

Mat2 gate_phase(double theta) {
  return make(1, 0, 0, std::polar(1.0, theta));
}

Mat2 gate_sqrt_x() {
  // sqrt(X) = H S H; entries (1 +- i)/2.
  const cplx p{0.5, 0.5}, m{0.5, -0.5};
  return make(p, m, m, p);
}

}  // namespace eqc::qsim
