// Fault-injection campaign engine.
//
// Generalizes the one-shot enumeration in fault_enum.h into long-running,
// resumable, parallel fault campaigns — the paper's "count the potential
// places for two errors" methodology scaled from fault *pairs* to fault
// sets of any size k, with the robustness machinery a verification fleet
// needs:
//
//  * k-FAULT CAMPAIGNS — exhaustive or budgeted sampling over fault sets
//    of size k >= 1 (k = 1 reproduces run_single_faults, k = 2 the pair
//    count), plus a CHAOS mode that samples whole fault configurations
//    from a noise::NoiseModel instead of uniformly from the k-subset
//    universe.
//
//  * DETERMINISTIC PARALLEL SHARDING — the item stream (combination ranks
//    or chaos trial indices) is partitioned over a fixed number of logical
//    shards by ordinal stride; a std::thread worker pool drains the shards.
//    Per-item RNG streams are counter-split off the campaign seed (not off
//    a per-worker stream), so every item's verdict is a pure function of
//    its position and the report is BIT-IDENTICAL for any --jobs value.
//
//  * CHECKPOINT / RESUME — shard cursors, counters, and malignant sets are
//    periodically serialized to a JSON checkpoint; a killed campaign
//    resumes without recounting, and reaches the same final report.
//
//  * COUNTEREXAMPLE SHRINKING — each malignant fault set is delta-debugged
//    to a 1-minimal still-failing subset before it is reported, so reports
//    name the actual failure mechanism, and every reported set can be
//    replayed exactly through run_with_faults from the report JSON.
//
//  * INVARIANT TRIPWIRES — an optional mid-circuit probe checks an
//    invariant (e.g. data-block codespace membership between recovery
//    rounds) while a malignant set is replayed, and attributes the FIRST
//    violation to a fault-site ordinal.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/fault_enum.h"
#include "common/json.h"
#include "common/stats.h"
#include "noise/model.h"

namespace eqc::analysis {

enum class CampaignMode {
  KFault,  ///< uniform counting over size-k fault sets (exhaustive/budgeted)
  Chaos,   ///< fault sets sampled from a NoiseModel, one trial per item
};

/// Mid-circuit invariant probe.  `violated` is evaluated on the backend
/// after fault injection at each probed site; the first true return trips
/// the wire and records that site's ordinal.  Probing reads the state only
/// (a tableau stabilizer check), so it never perturbs the run.
struct TripwireOptions {
  std::function<bool(circuit::TabBackend&)> violated;
  /// Sorted site ordinals after which to probe; empty = every site.
  std::vector<std::size_t> probe_after;

  bool enabled() const { return static_cast<bool>(violated); }
};

/// Progress snapshot handed to CampaignConfig::on_progress (and useful to
/// anything polling a checkpoint): stream positions consumed across all
/// shards, the item-stream length, and the merged tested/malignant counts.
struct CampaignProgress {
  std::uint64_t items_done = 0;
  std::uint64_t total_items = 0;
  std::uint64_t sets_tested = 0;
  std::uint64_t malignant = 0;
};

struct CampaignConfig {
  CampaignMode mode = CampaignMode::KFault;
  /// Fault-set size for KFault campaigns (>= 1).
  std::size_t k = 2;
  /// KFault: max fault sets to test; 0 = fully exhaustive.  When the
  /// k-subset universe exceeds the budget, `budget` DISTINCT valid sets
  /// are pre-sampled (deduplicated, no same-site collisions).
  /// Chaos: number of trials (required > 0).
  std::uint64_t budget = 0;
  /// Worker threads.  Never changes the report — only the wall clock.
  unsigned jobs = 1;
  /// Logical shards the item stream is partitioned into (by stride).
  /// Fixed at campaign creation and recorded in the checkpoint; kept
  /// independent of `jobs` so any parallelism yields identical shards.
  unsigned num_shards = 16;
  /// Seed for sampling (subset pre-sampling, chaos per-item streams).
  std::uint64_t sample_seed = 99;
  /// Noise model driving Chaos mode (each site fires independently).
  noise::NoiseModel chaos_model{};
  /// Delta-debug malignant sets to 1-minimal before reporting.
  bool shrink = true;
  /// Checkpoint file; empty disables checkpointing.
  std::string checkpoint_path;
  /// Items between periodic checkpoint writes (a final write always
  /// happens when the run stops, so a clean stop never loses progress).
  std::uint64_t checkpoint_every = 256;
  /// Load `checkpoint_path` (when it exists) and continue from it.  The
  /// checkpoint's fingerprint must match this campaign's configuration.
  bool resume = false;
  /// Stop after this many items this run (0 = run to completion).  Used
  /// to bound a session and by tests to simulate a mid-campaign kill.
  std::uint64_t max_items_this_run = 0;
  /// Wall-clock leg of the checkpoint cadence: when > 0, a checkpoint is
  /// flushed at least every this many seconds even if fewer than
  /// `checkpoint_every` items completed — a crash never loses more than
  /// this window of work under slow shards.
  double checkpoint_min_interval_sec = 0.0;
  /// Cooperative cancellation: polled at item granularity by every worker.
  /// When it becomes true the sweep stops claiming items, flushes a final
  /// checkpoint and returns a report with complete = false — resuming from
  /// the checkpoint later reaches the same final report as an
  /// uninterrupted run.
  const std::atomic<bool>* stop = nullptr;
  /// Invoked (serialized, under the engine's internal lock — keep it
  /// cheap) at checkpoint cadence and once at the end of the run.
  std::function<void(const CampaignProgress&)> on_progress;
  /// When resuming and the checkpoint file is damaged (CheckpointCorrupt),
  /// quarantine it to "<path>.corrupt" and start fresh instead of
  /// throwing.  Determinism makes the fallback safe: a fresh start reaches
  /// the same final report.
  bool fresh_on_corrupt = false;
  /// Optional invariant tripwire, evaluated while malignant sets are
  /// replayed for attribution.
  TripwireOptions tripwire;
  /// Verdict engine: "trials" replays each fault set through the per-trial
  /// executor; "frames" evaluates it as a planted Pauli frame against the
  /// precompiled reference pass (same verdicts — the engine falls back to
  /// the per-trial replay item-by-item when a set exercises a deviation
  /// the frame model cannot absorb).  Malignant-set confirmation, shrink
  /// and tripwire replay always use the per-trial executor, and the
  /// checkpoint fingerprint is engine-independent: checkpoints are
  /// interchangeable between engines.
  std::string engine = "trials";
};

/// One confirmed counterexample.
struct MalignantSet {
  /// Position in the deterministic campaign item stream.
  std::uint64_t index = 0;
  /// The failing faults (1-minimal when the campaign shrinks).
  std::vector<Fault> faults;
  /// True when `faults` passed the shrinker (removing any one fault no
  /// longer fails the oracle).
  bool minimal = false;
  bool tripped = false;            ///< tripwire fired during replay
  std::size_t trip_ordinal = 0;    ///< first tripping site (when tripped)
};

struct CampaignReport {
  CampaignMode mode = CampaignMode::KFault;
  std::size_t k = 0;
  std::size_t num_qubits = 0;
  std::size_t num_sites = 0;
  std::size_t single_faults = 0;   ///< size of the single-fault universe
  std::uint64_t total_items = 0;   ///< length of the campaign item stream
  std::uint64_t sets_tested = 0;
  std::uint64_t malignant = 0;
  bool exhaustive = false;  ///< every valid k-subset of the universe tested
  bool complete = false;    ///< the item stream was drained
  /// A failure-budget stopping rule terminated counting (see
  /// FailureCounter::stopped_early); always false for the campaign modes
  /// shipped today, carried so report JSON states the estimator's validity.
  bool stopped_early = false;
  std::uint64_t experiment_seed = 0;
  std::uint64_t sample_seed = 0;
  double chaos_p = 0.0;            ///< chaos_model.p (Chaos mode)
  std::vector<MalignantSet> malignant_sets;

  double malignant_fraction() const {
    return sets_tested == 0 ? 0.0
                            : static_cast<double>(malignant) /
                                  static_cast<double>(sets_tested);
  }
  /// Wilson 95% interval on the malignant fraction (the early-stopped /
  /// budgeted estimator is never quoted without an error bar).
  BinomialInterval malignant_interval() const {
    return wilson_interval(malignant, sets_tested);
  }
  /// Leading coefficient A of P_fail ~ A p^k under the independent model
  /// (KFault mode; 0.0 in Chaos mode, where malignant_fraction() is
  /// already the failure-rate estimate at chaos_p).
  double p_k_coefficient() const;
  /// p* solving A p^k = p, i.e. A^(-1/(k-1)); 1.0 when undefined (k < 2
  /// or A <= 0).
  double pseudo_threshold() const;

  /// Canonical JSON (report + replay artifact in one document).  Contains
  /// no timing, thread or host information: two campaigns over the same
  /// configuration serialize BYTE-IDENTICALLY regardless of `jobs` or of
  /// how many kill/resume cycles produced them.
  json::Value to_json_value() const;
  std::string to_json() const { return to_json_value().dump(); }
};

/// Runs (or resumes) a fault campaign.  Throws ContractViolation on a
/// misconfiguration or a checkpoint fingerprint mismatch.
CampaignReport run_campaign(const FaultExperiment& ex,
                            const CampaignConfig& cfg);

/// Delta-debugs `faults` to a 1-minimal subset that still fails the
/// oracle.  Precondition: the full set fails.
std::vector<Fault> shrink_fault_set(const FaultExperiment& ex,
                                    std::vector<Fault> faults);

struct ProbeResult {
  bool failed = false;
  bool tripped = false;
  std::size_t trip_ordinal = 0;
};

/// Executes the experiment with `faults` planted while probing the
/// tripwire invariant; returns the oracle verdict plus the first tripping
/// site ordinal.
ProbeResult run_with_faults_probed(const FaultExperiment& ex,
                                   const std::vector<Fault>& faults,
                                   const TripwireOptions& tripwire);

/// FaultInjector decorator: forwards every visit to `inner` (may be null),
/// then evaluates `violated` after the sites in `probe_after` (empty =
/// every site) until the first trip.
class ProbeInjector final : public circuit::FaultInjector {
 public:
  ProbeInjector(circuit::FaultInjector* inner,
                std::function<bool(circuit::Backend&)> violated,
                std::vector<std::size_t> probe_after);
  void visit(const circuit::FaultSite& site,
             circuit::Backend& backend) override;

  bool tripped() const { return tripped_; }
  std::size_t trip_ordinal() const { return trip_ordinal_; }

 private:
  circuit::FaultInjector* inner_;
  std::function<bool(circuit::Backend&)> violated_;
  std::vector<std::size_t> probe_after_;
  bool tripped_ = false;
  std::size_t trip_ordinal_ = 0;
};

/// Maps op-count boundaries (e.g. ftqc::RecoveryRoundMarks::op_boundaries)
/// to the fault-site ordinals of the last op before each boundary, sorted —
/// ready for TripwireOptions::probe_after.
std::vector<std::size_t> probe_ordinals_for_op_boundaries(
    const circuit::Circuit& gadget,
    const std::vector<std::size_t>& op_boundaries);

/// Runs the experiment FAULT-FREE, probing the invariant after every site,
/// and returns the sorted ordinals at which it held.  Mid-circuit a data
/// block is legitimately entangled with ancillas (so a codespace check
/// fails even without faults); calibrating restricts the tripwire to the
/// sites where a violation genuinely implicates the injected faults.
std::vector<std::size_t> calibrate_probe_sites(
    const FaultExperiment& ex,
    const std::function<bool(circuit::TabBackend&)>& violated);

/// Extracts the malignant fault sets of a serialized CampaignReport (or a
/// campaign checkpoint) for exact replay through run_with_faults.
std::vector<std::vector<Fault>> parse_fault_sets(const std::string& json_text,
                                                 std::size_t num_qubits);

// --- combinatorics (exposed for tests) -------------------------------------

/// C(n, k), saturating at UINT64_MAX on overflow.
std::uint64_t binomial_or_max(std::uint64_t n, std::uint64_t k);

/// The `rank`-th k-subset of {0..n-1} in colexicographic order, ascending.
/// Inverse of colex ranking; rank must be < C(n, k).
std::vector<std::uint32_t> combination_unrank(std::uint64_t rank,
                                              std::uint64_t n, std::size_t k);

}  // namespace eqc::analysis
