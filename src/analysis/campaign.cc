#include "analysis/campaign.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_set>

#include "analysis/frame_oracle.h"
#include "circuit/tab_backend.h"
#include "frame/frames.h"
#include "common/assert.h"
#include "common/checkpoint.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace eqc::analysis {

namespace {

using pauli::Pauli;
using pauli::PauliString;

const char* mode_name(CampaignMode mode) {
  return mode == CampaignMode::KFault ? "kfault" : "chaos";
}

// --- fault (de)serialization ------------------------------------------------

json::Value fault_to_json(const Fault& f) {
  json::Array err;
  for (const std::size_t q : f.error.support()) {
    json::Array entry;
    entry.emplace_back(q);
    entry.emplace_back(std::string(1, pauli::to_char(f.error.get(q))));
    err.emplace_back(std::move(entry));
  }
  json::Object obj;
  obj.emplace_back("ordinal", json::Value(f.ordinal));
  obj.emplace_back("error", json::Value(std::move(err)));
  return json::Value(std::move(obj));
}

Fault fault_from_json(const json::Value& v, std::size_t num_qubits) {
  Fault f;
  f.ordinal = static_cast<std::size_t>(v.at("ordinal").as_u64());
  f.error = PauliString(num_qubits);
  for (const auto& entry : v.at("error").as_array()) {
    const auto& pair = entry.as_array();
    EQC_EXPECTS(pair.size() == 2);
    const std::uint64_t q = pair[0].as_u64();
    EQC_EXPECTS(q < num_qubits);
    const std::string& label = pair[1].as_string();
    EQC_EXPECTS(label.size() == 1);
    switch (label[0]) {
      case 'X': f.error.set(q, Pauli::X); break;
      case 'Y': f.error.set(q, Pauli::Y); break;
      case 'Z': f.error.set(q, Pauli::Z); break;
      default: EQC_EXPECTS(false && "bad Pauli label in fault JSON");
    }
  }
  return f;
}

json::Value malignant_set_to_json(const MalignantSet& m) {
  json::Object obj;
  obj.emplace_back("index", json::Value(m.index));
  obj.emplace_back("minimal", json::Value(m.minimal));
  if (m.tripped) obj.emplace_back("trip_ordinal", json::Value(m.trip_ordinal));
  json::Array faults;
  for (const auto& f : m.faults) faults.push_back(fault_to_json(f));
  obj.emplace_back("faults", json::Value(std::move(faults)));
  return json::Value(std::move(obj));
}

MalignantSet malignant_set_from_json(const json::Value& v,
                                     std::size_t num_qubits) {
  MalignantSet m;
  m.index = v.at("index").as_u64();
  m.minimal = v.at("minimal").as_bool();
  if (const json::Value* trip = v.find("trip_ordinal")) {
    m.tripped = true;
    m.trip_ordinal = static_cast<std::size_t>(trip->as_u64());
  }
  for (const auto& f : v.at("faults").as_array())
    m.faults.push_back(fault_from_json(f, num_qubits));
  return m;
}

// --- campaign plumbing ------------------------------------------------------

struct ShardState {
  std::uint64_t cursor = 0;  ///< items of this shard's subsequence done
  FailureCounter counter;    ///< trials = sets tested, failures = malignant
  std::vector<MalignantSet> sets;
};

/// Everything immutable during the sweep.
/// Precompiled frame engine for verdicts (engine == "frames").
struct FramePlan {
  frame::FrameProgram prog;
  frame::BatchOracle oracle;
};

struct CampaignPlan {
  const FaultExperiment* ex = nullptr;
  const CampaignConfig* cfg = nullptr;
  std::vector<Fault> faults;               ///< single-fault universe
  std::vector<circuit::FaultSite> sites;   ///< for chaos sampling
  std::uint64_t total_items = 0;
  bool exhaustive = false;
  /// Pre-sampled combination ranks (budgeted KFault); empty otherwise.
  std::vector<std::uint64_t> sampled_ranks;
  unsigned num_shards = 1;
  /// Non-null when the frames engine is active.
  std::shared_ptr<const FramePlan> frames;
};

/// Frame-engine verdict for one fault set: a single planted lane through
/// the precompiled program, judged by the generic lane oracle.  Falls back
/// to the per-trial replay when the set drives a trial through a branch
/// deviation the frame model cannot absorb as a Pauli.
bool frame_verdict(const FramePlan& fp, const FaultExperiment& ex,
                   const std::vector<Fault>& faults) {
  try {
    std::vector<std::vector<frame::PlantedFault>> lanes(1);
    for (const auto& f : faults)
      lanes[0].push_back(frame::PlantedFault{f.ordinal, f.error});
    frame::FrameBatch batch(fp.prog);
    batch.run_planted(lanes);
    return (fp.oracle(batch) & 1) != 0;
  } catch (const frame::FrameUnsupported&) {
    return run_with_faults(ex, faults);
  }
}

bool distinct_ordinals(const std::vector<std::uint32_t>& combo,
                       const std::vector<Fault>& faults) {
  for (std::size_t a = 1; a < combo.size(); ++a)
    if (faults[combo[a]].ordinal == faults[combo[a - 1]].ordinal) return false;
  // Faults at one site are contiguous in enumeration order, so equal
  // ordinals in an ascending combination are always adjacent.
  return true;
}

/// Deterministically pre-samples `budget` distinct valid combination ranks
/// (pure function of the arguments; regenerated identically on resume).
std::vector<std::uint64_t> sample_distinct_ranks(
    std::uint64_t total_combos, std::uint64_t budget, std::uint64_t n,
    std::size_t k, std::uint64_t seed, const std::vector<Fault>& faults) {
  Rng rng(seed);
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(budget));
  std::unordered_set<std::uint64_t> dedup;
  dedup.reserve(static_cast<std::size_t>(budget) * 2);
  const std::uint64_t max_attempts = 64 * budget + 1024;
  for (std::uint64_t attempt = 0;
       attempt < max_attempts && out.size() < budget; ++attempt) {
    const std::uint64_t r = rng.below(total_combos);
    if (!dedup.insert(r).second) continue;
    if (!distinct_ordinals(combination_unrank(r, n, k), faults)) continue;
    out.push_back(r);
  }
  return out;
}

/// Item verdict; `tested` is false for skipped stream positions (same-site
/// collisions in the exhaustive rank space).
struct ItemOutcome {
  bool tested = false;
  bool malignant = false;
  std::vector<Fault> faults;
};

ItemOutcome evaluate_item(const CampaignPlan& plan, std::uint64_t pos) {
  const FaultExperiment& ex = *plan.ex;
  const CampaignConfig& cfg = *plan.cfg;
  ItemOutcome out;

  if (cfg.mode == CampaignMode::KFault) {
    const std::uint64_t rank =
        plan.sampled_ranks.empty() ? pos : plan.sampled_ranks[pos];
    const auto combo =
        combination_unrank(rank, plan.faults.size(), cfg.k);
    if (!distinct_ordinals(combo, plan.faults)) return out;  // skip
    for (const std::uint32_t idx : combo) out.faults.push_back(plan.faults[idx]);
  } else {
    // Chaos: every site fires independently under the noise model, from a
    // per-trial counter-split stream (common/rng.h).
    Rng item_rng(derive_stream_seed(cfg.sample_seed, pos));
    for (const auto& site : plan.sites) {
      const double p = cfg.chaos_model.probability_for(site.kind);
      if (p <= 0.0 || !item_rng.bernoulli(p)) continue;
      out.faults.push_back(
          Fault{site.ordinal,
                noise::sample_error(cfg.chaos_model.channel, site.qubits,
                                    ex.num_qubits, item_rng)});
    }
  }

  out.tested = true;
  // An empty chaos configuration is a noiseless run: tested, never
  // malignant (skips the simulation).
  out.malignant =
      !out.faults.empty() &&
      (plan.frames != nullptr ? frame_verdict(*plan.frames, ex, out.faults)
                              : run_with_faults(ex, out.faults));
  return out;
}

// --- checkpointing ----------------------------------------------------------

json::Value fingerprint_json(const CampaignPlan& plan) {
  const CampaignConfig& cfg = *plan.cfg;
  json::Object fp;
  fp.emplace_back("mode", json::Value(mode_name(cfg.mode)));
  fp.emplace_back("k", json::Value(cfg.k));
  fp.emplace_back("budget", json::Value(cfg.budget));
  fp.emplace_back("sample_seed", json::Value(cfg.sample_seed));
  fp.emplace_back("experiment_seed", json::Value(plan.ex->seed));
  fp.emplace_back("fault_model",
                  json::Value(plan.ex->model == FaultModel::SingleQubit
                                  ? "single"
                                  : "depolarizing"));
  fp.emplace_back("num_qubits", json::Value(plan.ex->num_qubits));
  fp.emplace_back("num_sites", json::Value(plan.sites.size()));
  fp.emplace_back("single_faults", json::Value(plan.faults.size()));
  fp.emplace_back("total_items", json::Value(plan.total_items));
  fp.emplace_back("num_shards", json::Value(plan.num_shards));
  fp.emplace_back("chaos_p", json::Value(cfg.chaos_model.p));
  return json::Value(std::move(fp));
}

constexpr char kCheckpointKind[] = "eqc-campaign-checkpoint";
constexpr std::uint64_t kCheckpointSchemaVersion = 2;

std::string checkpoint_to_json(const CampaignPlan& plan,
                               const std::vector<ShardState>& shards) {
  json::Object doc;
  doc.emplace_back("kind", json::Value(kCheckpointKind));
  doc.emplace_back("schema_version", json::Value(kCheckpointSchemaVersion));
  doc.emplace_back("fingerprint", fingerprint_json(plan));
  json::Array shard_arr;
  for (const auto& st : shards) {
    json::Object s;
    s.emplace_back("cursor", json::Value(st.cursor));
    s.emplace_back("tested", json::Value(st.counter.trials));
    s.emplace_back("malignant", json::Value(st.counter.failures));
    s.emplace_back("stopped_early", json::Value(st.counter.stopped_early));
    shard_arr.emplace_back(std::move(s));
  }
  doc.emplace_back("shards", json::Value(std::move(shard_arr)));
  json::Array sets;
  std::vector<const MalignantSet*> all;
  for (const auto& st : shards)
    for (const auto& m : st.sets) all.push_back(&m);
  std::sort(all.begin(), all.end(),
            [](const MalignantSet* a, const MalignantSet* b) {
              return a->index < b->index;
            });
  for (const MalignantSet* m : all) sets.push_back(malignant_set_to_json(*m));
  doc.emplace_back("malignant_sets", json::Value(std::move(sets)));
  return json::Value(std::move(doc)).dump();
}

/// Restores shard states from a checkpoint.  Throws CheckpointCorrupt when
/// the document is truncated, unparseable or structurally damaged, and
/// ContractViolation on a fingerprint mismatch (a well-formed checkpoint
/// that belongs to a DIFFERENT campaign — operator error, not corruption).
std::vector<ShardState> load_checkpoint(const CampaignPlan& plan,
                                        const std::string& text) {
  const json::Value doc =
      parse_checkpoint_document(text, kCheckpointKind, kCheckpointSchemaVersion);
  std::string got;
  try {
    got = doc.at("fingerprint").dump();
  } catch (const json::JsonError& e) {
    throw CheckpointCorrupt(std::string("campaign checkpoint: ") + e.what());
  }
  const std::string want = fingerprint_json(plan).dump();
  if (want != got)
    throw ContractViolation(
        "campaign checkpoint fingerprint mismatch:\n  checkpoint " + got +
        "\n  campaign   " + want);

  try {
    std::vector<ShardState> shards(plan.num_shards);
    const auto& shard_arr = doc.at("shards").as_array();
    if (shard_arr.size() != plan.num_shards)
      throw CheckpointCorrupt("campaign checkpoint: shard count " +
                              std::to_string(shard_arr.size()) +
                              " != " + std::to_string(plan.num_shards));
    for (std::size_t s = 0; s < shards.size(); ++s) {
      shards[s].cursor = shard_arr[s].at("cursor").as_u64();
      shards[s].counter.trials = shard_arr[s].at("tested").as_u64();
      shards[s].counter.failures = shard_arr[s].at("malignant").as_u64();
      if (const json::Value* se = shard_arr[s].find("stopped_early"))
        shards[s].counter.stopped_early = se->as_bool();
    }
    for (const auto& m : doc.at("malignant_sets").as_array()) {
      MalignantSet set = malignant_set_from_json(m, plan.ex->num_qubits);
      shards[set.index % plan.num_shards].sets.push_back(std::move(set));
    }
    return shards;
  } catch (const json::JsonError& e) {
    // The envelope and fingerprint matched but the payload does not fit the
    // schema: damaged, not foreign.
    throw CheckpointCorrupt(std::string("campaign checkpoint: ") + e.what());
  } catch (const ContractViolation& e) {
    throw CheckpointCorrupt(std::string("campaign checkpoint: ") + e.what());
  }
}

}  // namespace

// --- combinatorics ----------------------------------------------------------

std::uint64_t binomial_or_max(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    const std::uint64_t factor = n - k + i;
    if (result > UINT64_MAX / factor) return UINT64_MAX;
    result = result * factor / i;  // exact: running value is C(n-k+i, i)
  }
  return result;
}

std::vector<std::uint32_t> combination_unrank(std::uint64_t rank,
                                              std::uint64_t n,
                                              std::size_t k) {
  EQC_EXPECTS(k >= 1 && k <= n);
  EQC_EXPECTS(rank < binomial_or_max(n, k));
  std::vector<std::uint32_t> out(k);
  std::uint64_t r = rank;
  std::uint64_t bound = n;  // exclusive upper bound for the next element
  for (std::size_t i = k; i >= 1; --i) {
    // Largest c < bound with C(c, i) <= r, by binary search on the
    // monotone c -> C(c, i) (exists: C(i-1, i) = 0 <= r).
    std::uint64_t lo = i - 1;
    std::uint64_t hi = bound - 1;
    while (lo < hi) {
      const std::uint64_t mid = lo + (hi - lo + 1) / 2;
      if (binomial_or_max(mid, i) <= r)
        lo = mid;
      else
        hi = mid - 1;
    }
    const std::uint64_t c = lo;
    out[i - 1] = static_cast<std::uint32_t>(c);
    r -= binomial_or_max(c, i);
    bound = c;
  }
  return out;
}

// --- report math ------------------------------------------------------------

double CampaignReport::p_k_coefficient() const {
  if (mode != CampaignMode::KFault) return 0.0;
  // P(exactly k sites err) ~ C(L, k) p^k; conditioned on k errors the
  // Pauli at each site is uniform, so the failure probability given k
  // errors is the malignant fraction over uniformly drawn k-sets.
  double combos = 1.0;
  const double l = static_cast<double>(num_sites);
  for (std::size_t i = 0; i < k; ++i)
    combos *= (l - static_cast<double>(i)) / static_cast<double>(i + 1);
  return combos * malignant_fraction();
}

double CampaignReport::pseudo_threshold() const {
  if (k < 2) return 1.0;
  const double a = p_k_coefficient();
  if (a <= 0.0) return 1.0;
  return std::pow(a, -1.0 / (static_cast<double>(k) - 1.0));
}

json::Value CampaignReport::to_json_value() const {
  json::Object doc;
  doc.emplace_back("version", json::Value(1));
  doc.emplace_back("engine", json::Value("eqc-campaign"));
  doc.emplace_back("mode", json::Value(mode_name(mode)));
  doc.emplace_back("k", json::Value(k));
  doc.emplace_back("num_qubits", json::Value(num_qubits));
  doc.emplace_back("num_sites", json::Value(num_sites));
  doc.emplace_back("single_faults", json::Value(single_faults));
  doc.emplace_back("experiment_seed", json::Value(experiment_seed));
  doc.emplace_back("sample_seed", json::Value(sample_seed));
  doc.emplace_back("total_items", json::Value(total_items));
  doc.emplace_back("sets_tested", json::Value(sets_tested));
  doc.emplace_back("malignant", json::Value(malignant));
  doc.emplace_back("exhaustive", json::Value(exhaustive));
  doc.emplace_back("complete", json::Value(complete));
  doc.emplace_back("stopped_early", json::Value(stopped_early));
  doc.emplace_back("malignant_fraction", json::Value(malignant_fraction()));
  const auto iv = malignant_interval();
  doc.emplace_back("wilson_low", json::Value(iv.low));
  doc.emplace_back("wilson_high", json::Value(iv.high));
  if (mode == CampaignMode::KFault) {
    doc.emplace_back("p_k_coefficient", json::Value(p_k_coefficient()));
    doc.emplace_back("pseudo_threshold", json::Value(pseudo_threshold()));
  } else {
    doc.emplace_back("chaos_p", json::Value(chaos_p));
  }
  json::Array sets;
  for (const auto& m : malignant_sets) sets.push_back(malignant_set_to_json(m));
  doc.emplace_back("malignant_sets", json::Value(std::move(sets)));
  return json::Value(std::move(doc));
}

// --- shrinking --------------------------------------------------------------

std::vector<Fault> shrink_fault_set(const FaultExperiment& ex,
                                    std::vector<Fault> faults) {
  // ddmin specialized to single-element deltas: repeatedly drop any one
  // fault whose removal keeps the set failing, until no removal does.
  // Every run is deterministic, so the fixed point is 1-minimal.
  bool changed = true;
  while (changed && !faults.empty()) {
    changed = false;
    for (std::size_t i = 0; i < faults.size(); ++i) {
      std::vector<Fault> candidate;
      candidate.reserve(faults.size() - 1);
      for (std::size_t j = 0; j < faults.size(); ++j)
        if (j != i) candidate.push_back(faults[j]);
      if (!candidate.empty() && run_with_faults(ex, candidate)) {
        faults = std::move(candidate);
        changed = true;
        break;
      }
    }
  }
  return faults;
}

// --- tripwires --------------------------------------------------------------

ProbeInjector::ProbeInjector(circuit::FaultInjector* inner,
                             std::function<bool(circuit::Backend&)> violated,
                             std::vector<std::size_t> probe_after)
    : inner_(inner),
      violated_(std::move(violated)),
      probe_after_(std::move(probe_after)) {
  EQC_EXPECTS(std::is_sorted(probe_after_.begin(), probe_after_.end()));
}

void ProbeInjector::visit(const circuit::FaultSite& site,
                          circuit::Backend& backend) {
  if (inner_ != nullptr) inner_->visit(site, backend);
  if (tripped_ || !violated_) return;
  if (!probe_after_.empty() &&
      !std::binary_search(probe_after_.begin(), probe_after_.end(),
                          site.ordinal))
    return;
  if (violated_(backend)) {
    tripped_ = true;
    trip_ordinal_ = site.ordinal;
  }
}

ProbeResult run_with_faults_probed(const FaultExperiment& ex,
                                   const std::vector<Fault>& faults,
                                   const TripwireOptions& tripwire) {
  EQC_EXPECTS(ex.failed != nullptr);
  EQC_EXPECTS(tripwire.enabled());
  circuit::TabBackend backend(ex.num_qubits, Rng(ex.seed));
  circuit::execute(ex.prep, backend);
  circuit::PlantedInjector planted;
  for (const auto& f : faults) planted.plant(f.ordinal, f.error);
  ProbeInjector probe(
      &planted,
      [&tripwire](circuit::Backend& b) {
        return tripwire.violated(static_cast<circuit::TabBackend&>(b));
      },
      tripwire.probe_after);
  const auto result = circuit::execute(ex.gadget, backend, &probe);
  EQC_ENSURES(planted.all_planted_visited());
  ProbeResult out;
  out.failed = ex.failed(backend, result);
  out.tripped = probe.tripped();
  out.trip_ordinal = probe.trip_ordinal();
  return out;
}

std::vector<std::size_t> probe_ordinals_for_op_boundaries(
    const circuit::Circuit& gadget,
    const std::vector<std::size_t>& op_boundaries) {
  const auto sites = circuit::enumerate_fault_sites(gadget);
  std::vector<std::size_t> out;
  for (const std::size_t boundary : op_boundaries) {
    if (boundary == 0) continue;
    const std::size_t target_op = boundary - 1;
    for (const auto& site : sites) {
      if (site.op_index == target_op) {
        out.push_back(site.ordinal);
        break;
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

namespace {

/// Injector that evaluates an invariant after every site and records the
/// ordinals where it held.  Injects no faults.
class CalibrationInjector final : public circuit::FaultInjector {
 public:
  explicit CalibrationInjector(
      const std::function<bool(circuit::TabBackend&)>& violated)
      : violated_(violated) {}

  void visit(const circuit::FaultSite& site,
             circuit::Backend& backend) override {
    if (!violated_(static_cast<circuit::TabBackend&>(backend)))
      held_.push_back(site.ordinal);
  }

  std::vector<std::size_t> take_held() { return std::move(held_); }

 private:
  const std::function<bool(circuit::TabBackend&)>& violated_;
  std::vector<std::size_t> held_;
};

}  // namespace

std::vector<std::size_t> calibrate_probe_sites(
    const FaultExperiment& ex,
    const std::function<bool(circuit::TabBackend&)>& violated) {
  EQC_EXPECTS(static_cast<bool>(violated));
  circuit::TabBackend backend(ex.num_qubits, Rng(ex.seed));
  circuit::execute(ex.prep, backend);
  CalibrationInjector calibrate(violated);
  circuit::execute(ex.gadget, backend, &calibrate);
  auto held = calibrate.take_held();
  std::sort(held.begin(), held.end());
  held.erase(std::unique(held.begin(), held.end()), held.end());
  return held;
}

// --- replay artifacts -------------------------------------------------------

std::vector<std::vector<Fault>> parse_fault_sets(const std::string& json_text,
                                                 std::size_t num_qubits) {
  const json::Value doc = json::Value::parse(json_text);
  std::vector<std::vector<Fault>> out;
  for (const auto& m : doc.at("malignant_sets").as_array())
    out.push_back(malignant_set_from_json(m, num_qubits).faults);
  return out;
}

// --- the campaign driver ----------------------------------------------------

CampaignReport run_campaign(const FaultExperiment& ex,
                            const CampaignConfig& cfg) {
  EQC_EXPECTS(ex.failed != nullptr);
  EQC_EXPECTS(cfg.num_shards >= 1);
  EQC_EXPECTS(cfg.mode != CampaignMode::Chaos || cfg.budget > 0);
  EQC_EXPECTS(cfg.engine == "trials" || cfg.engine == "frames");

  CampaignPlan plan;
  plan.ex = &ex;
  plan.cfg = &cfg;
  plan.faults = enumerate_single_faults(ex);
  plan.sites = circuit::enumerate_fault_sites(ex.gadget);
  plan.num_shards = cfg.num_shards;
  if (cfg.engine == "frames") {
    try {
      auto fp = std::make_shared<FramePlan>(
          FramePlan{frame::FrameProgram(ex.num_qubits, ex.prep, ex.gadget,
                                        ex.seed),
                    frame::BatchOracle{}});
      fp->oracle = make_generic_frame_oracle(ex, fp->prog);
      plan.frames = std::move(fp);
    } catch (const ContractViolation&) {
      // Non-Clifford or otherwise non-compilable gadget: degrade to the
      // per-trial engine (identical verdicts, just slower).
    } catch (const frame::FrameUnsupported&) {
    }
  }

  if (cfg.mode == CampaignMode::KFault) {
    EQC_EXPECTS(cfg.k >= 1 && cfg.k <= plan.faults.size());
    const std::uint64_t total_combos =
        binomial_or_max(plan.faults.size(), cfg.k);
    if (cfg.budget == 0 || total_combos <= cfg.budget) {
      // A fully exhaustive sweep must have an enumerable universe.
      EQC_EXPECTS(total_combos != UINT64_MAX);
      plan.exhaustive = true;
      plan.total_items = total_combos;
    } else {
      plan.sampled_ranks = sample_distinct_ranks(
          total_combos, cfg.budget, plan.faults.size(), cfg.k,
          cfg.sample_seed, plan.faults);
      plan.total_items = plan.sampled_ranks.size();
    }
  } else {
    plan.total_items = cfg.budget;
  }

  // --- restore or initialize shard states. ---------------------------------
  std::vector<ShardState> shards;
  if (cfg.resume && !cfg.checkpoint_path.empty()) {
    std::string text;
    if (read_file(cfg.checkpoint_path, text)) {
      try {
        shards = load_checkpoint(plan, text);
      } catch (const CheckpointCorrupt&) {
        // A damaged checkpoint is recoverable when the caller says so:
        // determinism guarantees a fresh start reaches the same final
        // report, so quarantine the evidence and recount.
        if (!cfg.fresh_on_corrupt) throw;
        quarantine_corrupt_file(cfg.checkpoint_path);
      }
    }
  }
  if (shards.empty()) shards.assign(plan.num_shards, ShardState{});

  // --- the sweep. -----------------------------------------------------------
  // Per-stratum counters ("campaign.k2.sets_tested", "campaign.chaos.trials",
  // ...) so a sweep that mixes strata shows where the budget goes.  Totals of
  // a completed run are jobs-invariant, hence Det::Stable.
  const std::string stratum =
      cfg.mode == CampaignMode::KFault ? "k" + std::to_string(cfg.k) : "chaos";
  obs::Counter& c_tested = obs::counter(
      "campaign." + stratum +
          (cfg.mode == CampaignMode::KFault ? ".sets_tested" : ".trials"),
      obs::Det::Stable);
  obs::Counter& c_malignant =
      obs::counter("campaign." + stratum + ".malignant", obs::Det::Stable);
  obs::Counter& c_shrunk =
      obs::counter("campaign.shrunk_sets", obs::Det::Stable);
  obs::Span run_span("campaign.run");
  run_span.arg("total_items", plan.total_items);

  std::mutex mu;                       // shard states + checkpoint cadence
  std::uint64_t items_done = 0;        // stream positions consumed (all shards)
  for (const auto& st : shards) items_done += st.cursor;
  CheckpointCadence cadence(cfg.checkpoint_every,
                            cfg.checkpoint_min_interval_sec);
  std::atomic<std::uint64_t> claimed{0};
  std::atomic<bool> halt{false};  // budget exhausted or stop requested

  auto checkpoint_locked = [&] {
    if (!cfg.checkpoint_path.empty())
      write_file_atomically(cfg.checkpoint_path,
                            checkpoint_to_json(plan, shards));
  };
  auto progress_locked = [&] {
    if (!cfg.on_progress) return;
    CampaignProgress p;
    p.items_done = items_done;
    p.total_items = plan.total_items;
    for (const auto& st : shards) {
      p.sets_tested += st.counter.trials;
      p.malignant += st.counter.failures;
    }
    cfg.on_progress(p);
  };

  // Shard s owns stream positions s, s + S, s + 2S, ... (S = shards); the
  // shared pool (common/parallel.h) hands each shard to exactly one worker,
  // which drains it in position order.
  auto process_shard = [&](unsigned s) {
    ShardState& st = shards[s];
    for (;;) {
      if (halt.load()) return;
      if (cfg.stop != nullptr && cfg.stop->load(std::memory_order_relaxed)) {
        halt.store(true);
        return;
      }
      const std::uint64_t pos =
          s + st.cursor * static_cast<std::uint64_t>(plan.num_shards);
      if (pos >= plan.total_items) return;
      if (cfg.max_items_this_run != 0 &&
          claimed.fetch_add(1) >= cfg.max_items_this_run) {
        halt.store(true);
        return;
      }

      ItemOutcome outcome = evaluate_item(plan, pos);
      MalignantSet found;
      if (outcome.malignant) {
        found.index = pos;
        found.faults = std::move(outcome.faults);
        if (cfg.shrink) {
          obs::Span shrink_span("campaign.shrink");
          shrink_span.arg("index", pos).arg("size", found.faults.size());
          found.faults = shrink_fault_set(ex, std::move(found.faults));
          shrink_span.arg("minimal_size", found.faults.size());
          found.minimal = true;
          c_shrunk.add(1);
        }
        if (cfg.tripwire.enabled()) {
          const auto probed =
              run_with_faults_probed(ex, found.faults, cfg.tripwire);
          found.tripped = probed.tripped;
          found.trip_ordinal = probed.trip_ordinal;
        }
      }

      if (outcome.tested) c_tested.add(1);
      if (outcome.malignant) c_malignant.add(1);

      std::lock_guard<std::mutex> lock(mu);
      ++st.cursor;
      ++items_done;
      if (outcome.tested) st.counter.add(outcome.malignant);
      if (outcome.malignant) st.sets.push_back(std::move(found));
      if (cadence.item_done()) {
        checkpoint_locked();
        cadence.wrote();
        progress_locked();
      }
    }
  };

  parallel::for_each_shard(plan.num_shards, std::max(1u, cfg.jobs),
                           process_shard);

  {
    std::lock_guard<std::mutex> lock(mu);
    checkpoint_locked();  // never lose a clean (or cancelled) stop's progress
    progress_locked();
  }

  // --- merge (deterministic: counters are sums, sets sort by position). ----
  CampaignReport report;
  report.mode = cfg.mode;
  report.k = cfg.mode == CampaignMode::KFault ? cfg.k : 0;
  report.num_qubits = ex.num_qubits;
  report.num_sites = plan.sites.size();
  report.single_faults = plan.faults.size();
  report.total_items = plan.total_items;
  report.experiment_seed = ex.seed;
  report.sample_seed = cfg.sample_seed;
  report.chaos_p = cfg.chaos_model.p;

  FailureCounter merged;
  bool complete = true;
  for (unsigned s = 0; s < plan.num_shards; ++s) {
    merged.merge(shards[s].counter);
    const std::uint64_t pos =
        s + shards[s].cursor * static_cast<std::uint64_t>(plan.num_shards);
    if (pos < plan.total_items) complete = false;
    for (auto& m : shards[s].sets)
      report.malignant_sets.push_back(std::move(m));
  }
  std::sort(report.malignant_sets.begin(), report.malignant_sets.end(),
            [](const MalignantSet& a, const MalignantSet& b) {
              return a.index < b.index;
            });
  report.sets_tested = merged.trials;
  report.malignant = merged.failures;
  report.stopped_early = merged.stopped_early;
  report.complete = complete;
  report.exhaustive = plan.exhaustive && complete;
  return report;
}

}  // namespace eqc::analysis
