// Conservative error-support propagation ("analysis of error propagation",
// paper Sec. 2 end / Sec. 4).
//
// For circuits too large to simulate (the full-code Fig. 4 Toffoli spans 6
// encoded blocks plus ancillas), we over-approximate: each qubit carries
// two corruption flags (possible X component, possible Z component) and
// every gate propagates them by the worst case of its conjugation action.
// Classical (repetition-basis) qubits ignore Z corruption entirely — the
// paper's central observation that phase errors on the classical section
// are harmless, and that phase errors cannot flow from a control to a
// target.
//
// Because propagation never cancels (the Hamming-syndrome correction inside
// N1 cannot be modelled at this level), single-fault and pair counts are
// UPPER bounds on the true malignant counts: a gadget that passes here is
// fault tolerant; thresholds derived here are conservative.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/execute.h"

namespace eqc::analysis {

/// A named group of qubits with an error-tolerance budget.
struct BlockSpec {
  std::string name;
  std::vector<std::uint32_t> qubits;
  bool classical = false;  ///< Z corruption ignored
  int tolerance = 1;       ///< max corrupted qubits the code can absorb
};

/// Per-qubit corruption state after propagation.
struct SupportState {
  std::vector<bool> x;  ///< possible bit-error component
  std::vector<bool> z;  ///< possible phase-error component
};

struct SupportFault {
  std::size_t ordinal;  ///< gadget fault-site ordinal
  bool with_x = true;   ///< corrupt the X component at the site
  bool with_z = true;   ///< corrupt the Z component
};

/// Propagates the given faults through the circuit; returns final state.
SupportState propagate_supports(const circuit::Circuit& circuit,
                                const std::vector<SupportFault>& faults,
                                const std::vector<bool>& classical_qubits);

struct BlockDamage {
  std::string name;
  int corrupted = 0;
  int tolerance = 1;
  bool exceeded() const { return corrupted > tolerance; }
};

/// Evaluates block damage from a final support state.
std::vector<BlockDamage> assess_blocks(const SupportState& state,
                                       const std::vector<BlockSpec>& blocks);

struct SupportPairReport {
  std::size_t num_sites = 0;
  std::size_t single_fault_violations = 0;  ///< 0 => 1-fault tolerant (bound)
  std::uint64_t pairs_tested = 0;
  std::uint64_t malignant_bound = 0;  ///< pairs that may exceed a tolerance
  bool exhaustive = false;

  double malignant_fraction() const {
    return pairs_tested == 0 ? 0.0
                             : double(malignant_bound) / double(pairs_tested);
  }
  double p_squared_coefficient() const {
    const double l = static_cast<double>(num_sites);
    return 0.5 * l * (l - 1.0) * malignant_fraction();
  }
  double pseudo_threshold() const {
    const double a = p_squared_coefficient();
    return a <= 0.0 ? 1.0 : 1.0 / a;
  }
};

/// Single-fault scan + pair counting at the support level.
/// `classical_qubits` marks the repetition-basis registers.
/// `site_filter` (optional) restricts the fault universe, e.g. to exclude
/// subcircuits already verified exactly at the circuit level.
SupportPairReport analyze_supports(
    const circuit::Circuit& circuit, const std::vector<BlockSpec>& blocks,
    const std::vector<bool>& classical_qubits, std::uint64_t pair_budget,
    std::uint64_t sample_seed = 7,
    const std::function<bool(const circuit::FaultSite&)>& site_filter =
        nullptr);

}  // namespace eqc::analysis
