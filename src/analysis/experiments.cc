#include "analysis/experiments.h"

#include "analysis/campaign.h"
#include "common/assert.h"
#include "ftqc/layout.h"
#include "ftqc/ngate.h"
#include "ftqc/recovery.h"

namespace eqc::analysis {

using codes::Block;
using codes::Steane;

namespace {

BuiltGadget build_ngate(const GadgetSpec& spec) {
  ftqc::Layout layout;
  const Block source = layout.block();
  auto anc = ftqc::allocate_ngate_ancillas(layout, spec.reps);
  const auto out = layout.reg(7);

  BuiltGadget built;
  FaultExperiment& ex = built.ex;
  ex.num_qubits = layout.total();
  ex.prep = circuit::Circuit(layout.total());
  Steane::append_encode_zero(ex.prep, source);
  Steane::append_logical_x(ex.prep, source);
  ex.gadget = circuit::Circuit(layout.total());
  ftqc::NGateOptions nopt;
  nopt.repetitions = spec.reps;
  nopt.syndrome_check = spec.syndrome;
  ftqc::append_ngate(ex.gadget, source, out, anc, nopt);
  ex.failed = [out, source](circuit::TabBackend& b,
                            const circuit::ExecResult&) {
    int ones = 0;
    for (auto q : out) ones += b.tableau().deterministic_z_value(q) ? 1 : 0;
    if (2 * ones <= static_cast<int>(out.size())) return true;
    Rng rng(3);
    Steane::perfect_correct(b.tableau(), source, rng);
    return Steane::logical_z_expectation(b.tableau(), source) != -1.0;
  };
  ex.seed = spec.seed;
  built.main_block = source;
  return built;
}

BuiltGadget build_recovery(const GadgetSpec& spec, bool measurement_free) {
  ftqc::Layout layout;
  const Block data = layout.block();
  auto anc = ftqc::allocate_recovery_ancillas(layout);
  BuiltGadget built;
  FaultExperiment& ex = built.ex;
  ex.num_qubits = layout.total();
  ex.prep = circuit::Circuit(layout.total());
  Steane::append_encode_zero(ex.prep, data);
  ex.gadget = circuit::Circuit(layout.total());
  ftqc::RecoveryOptions ropt;
  ropt.measurement_free = measurement_free;
  ftqc::RecoveryRoundMarks marks;
  ftqc::append_recovery(ex.gadget, data, anc, ropt, &marks);
  ex.failed = [data](circuit::TabBackend& b, const circuit::ExecResult&) {
    Rng rng(5);
    Steane::perfect_correct(b.tableau(), data, rng);
    return Steane::logical_z_expectation(b.tableau(), data) != 1.0;
  };
  ex.seed = spec.seed;
  built.main_block = data;
  // Probe between syndrome rounds / after correction layers only: the
  // recovery rounds are where codespace membership is the meaningful
  // invariant ("is the data block still a codeword between rounds?").
  built.probe_after =
      probe_ordinals_for_op_boundaries(ex.gadget, marks.op_boundaries);
  return built;
}

}  // namespace

bool is_known_gadget(const std::string& name) {
  return name == "ngate" || name == "recovery" || name == "recovery-measured";
}

BuiltGadget build_gadget_experiment(const GadgetSpec& spec) {
  EQC_EXPECTS(is_known_gadget(spec.gadget));
  BuiltGadget built;
  if (spec.gadget == "ngate")
    built = build_ngate(spec);
  else if (spec.gadget == "recovery")
    built = build_recovery(spec, true);
  else
    built = build_recovery(spec, false);
  if (spec.correlated) built.ex.model = FaultModel::FullDepolarizing;
  return built;
}

}  // namespace eqc::analysis
