#include "analysis/experiments.h"

#include "analysis/campaign.h"
#include "common/assert.h"
#include "ftqc/layout.h"
#include "ftqc/ngate.h"
#include "ftqc/recovery.h"

namespace eqc::analysis {

using codes::CodeBlock;
using codes::CssCode;

namespace {

BuiltGadget build_ngate(const GadgetSpec& spec) {
  const CssCode& code = scenario_code(spec.scenario);
  const int reps = spec.scenario.reps();
  ftqc::Layout layout;
  const CodeBlock source = layout.block(code);
  auto anc = ftqc::allocate_ngate_ancillas(layout, code, reps);
  const auto out = layout.reg(code.n());

  BuiltGadget built;
  FaultExperiment& ex = built.ex;
  ex.num_qubits = layout.total();
  ex.prep = circuit::Circuit(layout.total());
  code.append_encode_zero(ex.prep, source);
  code.append_logical_x(ex.prep, source);
  ex.gadget = circuit::Circuit(layout.total());
  ftqc::NGateOptions nopt;
  nopt.repetitions = reps;
  nopt.syndrome_check = spec.syndrome;
  ftqc::append_ngate(ex.gadget, code, source, out, anc, nopt);
  const CssCode* c = &code;
  ex.failed = [out, source, c](circuit::TabBackend& b,
                               const circuit::ExecResult&) {
    int ones = 0;
    for (auto q : out) ones += b.tableau().deterministic_z_value(q) ? 1 : 0;
    if (2 * ones <= static_cast<int>(out.size())) return true;
    Rng rng(3);
    c->perfect_correct(b.tableau(), source, rng);
    return c->logical_z_expectation(b.tableau(), source) != -1.0;
  };
  ex.seed = spec.seed;
  built.main_block = source;
  built.code = c;
  built.ngate_out = out;
  return built;
}

BuiltGadget build_recovery(const GadgetSpec& spec, bool measurement_free) {
  const CssCode& code = scenario_code(spec.scenario);
  ftqc::Layout layout;
  const CodeBlock data = layout.block(code);
  auto anc =
      ftqc::allocate_recovery_ancillas(layout, code, spec.scenario.reps());
  BuiltGadget built;
  FaultExperiment& ex = built.ex;
  ex.num_qubits = layout.total();
  ex.prep = circuit::Circuit(layout.total());
  code.append_encode_zero(ex.prep, data);
  ex.gadget = circuit::Circuit(layout.total());
  ftqc::RecoveryOptions ropt;
  ropt.rounds = spec.scenario.reps();
  ropt.measurement_free = measurement_free;
  ftqc::RecoveryRoundMarks marks;
  ftqc::append_recovery(ex.gadget, code, data, anc, ropt, &marks);
  const CssCode* c = &code;
  ex.failed = [data, c](circuit::TabBackend& b, const circuit::ExecResult&) {
    Rng rng(5);
    c->perfect_correct(b.tableau(), data, rng);
    return c->logical_z_expectation(b.tableau(), data) != 1.0;
  };
  ex.seed = spec.seed;
  built.main_block = data;
  built.code = c;
  // Probe between syndrome rounds / after correction layers only: the
  // recovery rounds are where codespace membership is the meaningful
  // invariant ("is the data block still a codeword between rounds?").
  built.probe_after =
      probe_ordinals_for_op_boundaries(ex.gadget, marks.op_boundaries);
  return built;
}

}  // namespace

bool is_known_noise(const std::string& name) {
  return name == "paper" || name == "correlated" || name == "biased-z";
}

const codes::CssCode& scenario_code(const Scenario& s) {
  const codes::CssCode* code = codes::find_code(s.code);
  EQC_CHECK(code != nullptr && "unknown code name");
  return *code;
}

FaultModel scenario_fault_model(const Scenario& s) {
  EQC_EXPECTS(is_known_noise(s.noise));
  if (s.noise == "correlated") return FaultModel::FullDepolarizing;
  if (s.noise == "biased-z") return FaultModel::SingleQubitZ;
  return FaultModel::SingleQubit;
}

noise::NoiseModel scenario_noise_model(const Scenario& s, double p) {
  EQC_EXPECTS(is_known_noise(s.noise));
  if (s.noise == "correlated") return noise::NoiseModel::depolarizing(p);
  if (s.noise == "biased-z") return noise::NoiseModel::biased_z(p);
  return noise::NoiseModel::paper_model(p);
}

bool is_known_gadget(const std::string& name) {
  return name == "ngate" || name == "recovery" || name == "recovery-measured";
}

BuiltGadget build_gadget_experiment(const GadgetSpec& spec) {
  EQC_EXPECTS(is_known_gadget(spec.gadget));
  EQC_EXPECTS(spec.scenario.repetition_k >= 0);
  BuiltGadget built;
  if (spec.gadget == "ngate")
    built = build_ngate(spec);
  else if (spec.gadget == "recovery")
    built = build_recovery(spec, true);
  else
    built = build_recovery(spec, false);
  built.ex.model = scenario_fault_model(spec.scenario);
  return built;
}

}  // namespace eqc::analysis
