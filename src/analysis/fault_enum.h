// Exhaustive / sampled fault enumeration — the paper's own evaluation
// methodology mechanized: "The threshold can easily be calculated by
// counting the potential places for two errors."
//
// A FaultExperiment is a gadget circuit with a noiseless preparation
// prefix, plus a failure oracle.  The engine:
//  * verifies that NO single fault (any Pauli at any site) fails the
//    oracle (the fault-tolerance property), and
//  * counts malignant fault *pairs*, giving the leading p^2 coefficient of
//    the logical failure rate and a pseudo-threshold estimate.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/execute.h"
#include "circuit/tab_backend.h"
#include "common/rng.h"

namespace eqc::analysis {

/// Which errors one fault location can produce.
enum class FaultModel {
  /// One Pauli on ONE qubit of the site — the paper's counting model
  /// ("probability p of an error per gate, per input bit, per delay line").
  SingleQubit,
  /// Any non-identity Pauli on the site's qubit set (correlated multi-qubit
  /// gate faults).  Strictly stronger; see EXPERIMENTS.md for where the two
  /// models diverge.
  FullDepolarizing,
  /// One Z on ONE qubit of the site — the enumeration counterpart of the
  /// dephasing-dominated noise::Channel::BiasedZ (the bias-1 limit).
  SingleQubitZ,
};

struct FaultExperiment {
  std::size_t num_qubits = 0;
  circuit::Circuit prep{1};    ///< run noiselessly before the gadget
  circuit::Circuit gadget{1};  ///< every site here is a fault location
  /// Judges a completed run; true = logical failure.
  std::function<bool(circuit::TabBackend&, const circuit::ExecResult&)>
      failed;
  std::uint64_t seed = 1;  ///< RNG seed used identically for every run
  FaultModel model = FaultModel::SingleQubit;
};

/// A concrete fault: a Pauli at one site of the gadget.
struct Fault {
  std::size_t ordinal;
  pauli::PauliString error;
};

struct SingleFaultReport {
  std::size_t num_sites = 0;
  std::size_t faults_tested = 0;
  std::size_t failures = 0;
  std::vector<Fault> failing;  ///< empty iff the gadget is 1-fault tolerant
};

struct PairReport {
  std::size_t num_sites = 0;
  std::size_t single_faults = 0;  ///< size of the single-fault universe
  std::uint64_t pairs_tested = 0;
  std::uint64_t malignant = 0;
  bool exhaustive = false;

  /// Fraction of tested pairs that are malignant.
  double malignant_fraction() const {
    return pairs_tested == 0 ? 0.0
                             : static_cast<double>(malignant) /
                                   static_cast<double>(pairs_tested);
  }
  /// Leading coefficient A of P_fail ~ A p^2 under the independent
  /// depolarizing model (each site errs with probability p, uniform Pauli).
  double p_squared_coefficient() const;
  /// Pseudo-threshold: the p where A p^2 = p, i.e. 1/A.
  double pseudo_threshold() const;
};

/// All single faults of the gadget: every non-identity Pauli on every
/// qubit-subset pattern of every site (weight-1 patterns for multi-qubit
/// sites are included via the full Pauli set on the site's qubits).
std::vector<Fault> enumerate_single_faults(const FaultExperiment& ex);

/// Runs every single fault; the gadget is fault tolerant iff
/// report.failures == 0.
SingleFaultReport run_single_faults(const FaultExperiment& ex);

/// Runs `budget` single faults sampled uniformly from the universe (or all
/// of them when the universe is smaller).  For quick scans of very large
/// gadgets; a clean exhaustive run is still the gold standard.
SingleFaultReport run_single_faults_sampled(const FaultExperiment& ex,
                                            std::uint64_t budget,
                                            std::uint64_t sample_seed = 17);

/// Tests fault pairs.  If the total number of unordered pairs is at most
/// `budget`, tests all of them (exhaustive); otherwise samples `budget`
/// DISTINCT uniform random pairs (duplicates are rejected, and the draw is
/// capped at the number of distinct different-site pairs, so a budget near
/// the universe size does not bias malignant_fraction()).
PairReport run_fault_pairs(const FaultExperiment& ex, std::uint64_t budget,
                           std::uint64_t sample_seed = 99);

/// Executes prep (noiselessly) then gadget with `faults` planted; returns
/// the oracle's verdict.
bool run_with_faults(const FaultExperiment& ex,
                     const std::vector<Fault>& faults);

}  // namespace eqc::analysis
