#include "analysis/support_prop.h"

#include <algorithm>

#include "circuit/schedule.h"
#include "common/assert.h"
#include "common/rng.h"

namespace eqc::analysis {

namespace {

using circuit::Op;
using circuit::OpKind;

struct Flags {
  std::vector<bool> x;
  std::vector<bool> z;

  void clear(std::uint32_t q) {
    x[q] = false;
    z[q] = false;
  }
};

// Worst-case conjugation of possible error components through one op.
void propagate_op(const Op& op, Flags& f) {
  const auto q0 = op.q[0];
  const auto q1 = op.q[1];
  const auto q2 = op.q[2];
  switch (op.kind) {
    case OpKind::PrepZ:
    case OpKind::PrepX:
      f.clear(q0);  // fresh qubit
      break;
    case OpKind::H: {
      const bool x = f.x[q0];
      f.x[q0] = f.z[q0];
      f.z[q0] = x;
      break;
    }
    case OpKind::S:
    case OpKind::Sdg:
    case OpKind::T:
    case OpKind::Tdg:
      if (f.x[q0]) f.z[q0] = true;  // X may rotate into Y
      break;
    case OpKind::X:
    case OpKind::Y:
    case OpKind::Z:
    case OpKind::Idle:
    case OpKind::MeasureZ:
    case OpKind::XIfC:
    case OpKind::ZIfC:
      break;  // Paulis / passive ops do not move supports
    case OpKind::SIfC:
    case OpKind::SdgIfC:
      if (f.x[q0]) f.z[q0] = true;
      break;
    case OpKind::CNOT:
    case OpKind::CNOTIfC:
      if (f.x[q0]) f.x[q1] = true;  // bit errors spread control -> target
      if (f.z[q1]) f.z[q0] = true;  // phase errors spread target -> control
      break;
    case OpKind::CZ:
    case OpKind::CZIfC:
      if (f.x[q0]) f.z[q1] = true;
      if (f.x[q1]) f.z[q0] = true;
      break;
    case OpKind::CS:
    case OpKind::CSdg:
      if (f.x[q0]) f.z[q1] = true;
      if (f.x[q1]) {
        f.z[q0] = true;
        f.z[q1] = true;  // X on the target may rotate into Y
      }
      break;
    case OpKind::Swap: {
      // vector<bool> proxies do not std::swap; exchange manually.
      const bool xt = f.x[q0];
      f.x[q0] = f.x[q1];
      f.x[q1] = xt;
      const bool zt = f.z[q0];
      f.z[q0] = f.z[q1];
      f.z[q1] = zt;
      break;
    }
    case OpKind::CCX:
      if (f.x[q0] || f.x[q1]) f.x[q2] = true;
      if (f.z[q2]) {
        f.z[q0] = true;
        f.z[q1] = true;
      }
      // Correlated remainder of conjugating X through a control: the
      // "CNOT-valued" error may add phase components on the other control.
      if (f.x[q0]) f.z[q1] = true;
      if (f.x[q1]) f.z[q0] = true;
      break;
    case OpKind::CCZ:
      if (f.x[q0]) { f.z[q1] = true; f.z[q2] = true; }
      if (f.x[q1]) { f.z[q0] = true; f.z[q2] = true; }
      if (f.x[q2]) { f.z[q0] = true; f.z[q1] = true; }
      break;
  }
}

}  // namespace

SupportState propagate_supports(const circuit::Circuit& circuit,
                                const std::vector<SupportFault>& faults,
                                const std::vector<bool>& classical_qubits) {
  const std::size_t n = circuit.num_qubits();
  EQC_EXPECTS(classical_qubits.size() == n);
  Flags f;
  f.x.assign(n, false);
  f.z.assign(n, false);

  auto scrub_classical = [&](std::uint32_t q) {
    if (classical_qubits[q]) f.z[q] = false;
  };

  const auto sched = circuit::schedule(circuit);
  const auto& ops = circuit.ops();
  std::size_t ordinal = 0;

  auto strike = [&](const std::vector<std::uint32_t>& qubits) {
    for (const auto& fault : faults) {
      if (fault.ordinal != ordinal) continue;
      for (auto q : qubits) {
        if (fault.with_x) f.x[q] = true;
        if (fault.with_z) f.z[q] = true;
        scrub_classical(q);
      }
    }
    ++ordinal;
  };

  for (std::size_t t = 0; t < sched.moments.size(); ++t) {
    for (std::size_t idx : sched.moments[t]) {
      const Op& op = ops[idx];
      std::vector<std::uint32_t> qubits;
      for (int k = 0; k < circuit::arity(op.kind); ++k)
        qubits.push_back(op.q[k]);
      if (op.kind == OpKind::MeasureZ) {
        strike(qubits);  // measurement-input fault comes first
        propagate_op(op, f);
      } else {
        propagate_op(op, f);
        for (auto q : qubits) scrub_classical(q);
        strike(qubits);
      }
    }
    for (std::uint32_t q : sched.idle[t]) strike({q});
  }

  SupportState out;
  out.x = std::move(f.x);
  out.z = std::move(f.z);
  for (std::uint32_t q = 0; q < n; ++q)
    if (classical_qubits[q]) out.z[q] = false;
  return out;
}

std::vector<BlockDamage> assess_blocks(const SupportState& state,
                                       const std::vector<BlockSpec>& blocks) {
  std::vector<BlockDamage> out;
  out.reserve(blocks.size());
  for (const auto& block : blocks) {
    BlockDamage d;
    d.name = block.name;
    d.tolerance = block.tolerance;
    for (auto q : block.qubits) {
      const bool corrupted =
          block.classical ? state.x[q] : (state.x[q] || state.z[q]);
      if (corrupted) ++d.corrupted;
    }
    out.push_back(std::move(d));
  }
  return out;
}

SupportPairReport analyze_supports(
    const circuit::Circuit& circuit, const std::vector<BlockSpec>& blocks,
    const std::vector<bool>& classical_qubits, std::uint64_t pair_budget,
    std::uint64_t sample_seed,
    const std::function<bool(const circuit::FaultSite&)>& site_filter) {
  SupportPairReport report;
  auto sites = circuit::enumerate_fault_sites(circuit);
  if (site_filter != nullptr) {
    std::vector<circuit::FaultSite> kept;
    for (auto& site : sites)
      if (site_filter(site)) kept.push_back(std::move(site));
    sites = std::move(kept);
  }
  report.num_sites = sites.size();

  auto violates = [&](const std::vector<SupportFault>& faults) {
    const auto state = propagate_supports(circuit, faults, classical_qubits);
    for (const auto& damage : assess_blocks(state, blocks))
      if (damage.exceeded()) return true;
    return false;
  };

  // Single-fault scan (worst-case X+Z corruption subsumes all Paulis; the
  // propagation rules are monotone in the input corruption).
  for (const auto& site : sites)
    if (violates({SupportFault{site.ordinal, true, true}}))
      ++report.single_fault_violations;

  const std::uint64_t n = sites.size();
  const std::uint64_t total_pairs = n * (n - 1) / 2;
  if (total_pairs <= pair_budget) {
    report.exhaustive = true;
    for (std::uint64_t i = 0; i < n; ++i)
      for (std::uint64_t j = i + 1; j < n; ++j) {
        ++report.pairs_tested;
        if (violates({SupportFault{sites[i].ordinal, true, true},
                      SupportFault{sites[j].ordinal, true, true}}))
          ++report.malignant_bound;
      }
    return report;
  }

  Rng rng(sample_seed);
  while (report.pairs_tested < pair_budget) {
    const std::uint64_t i = rng.below(n);
    const std::uint64_t j = rng.below(n);
    if (i == j) continue;
    ++report.pairs_tested;
    if (violates({SupportFault{sites[i].ordinal, true, true},
                  SupportFault{sites[j].ordinal, true, true}}))
      ++report.malignant_bound;
  }
  return report;
}

}  // namespace eqc::analysis
