#include "analysis/fault_enum.h"

#include <algorithm>
#include <unordered_set>

#include "common/assert.h"

namespace eqc::analysis {

namespace {

using circuit::FaultSite;
using pauli::Pauli;
using pauli::PauliString;

void append_site_faults(const FaultSite& site, std::size_t num_qubits,
                        FaultModel model, std::vector<Fault>& out) {
  const std::size_t k = site.qubits.size();
  if (model == FaultModel::SingleQubit) {
    for (std::size_t i = 0; i < k; ++i)
      for (Pauli label : {Pauli::X, Pauli::Y, Pauli::Z})
        out.push_back(
            Fault{site.ordinal,
                  PauliString::single(num_qubits, site.qubits[i], label)});
    return;
  }
  if (model == FaultModel::SingleQubitZ) {
    for (std::size_t i = 0; i < k; ++i)
      out.push_back(
          Fault{site.ordinal,
                PauliString::single(num_qubits, site.qubits[i], Pauli::Z)});
    return;
  }
  // FullDepolarizing: all 4^k - 1 non-identity patterns.
  const std::uint64_t patterns = std::uint64_t{1} << (2 * k);
  for (std::uint64_t code = 1; code < patterns; ++code) {
    PauliString p(num_qubits);
    for (std::size_t i = 0; i < k; ++i) {
      const auto label = static_cast<Pauli>((code >> (2 * i)) & 3);
      if (label != Pauli::I) p.set(site.qubits[i], label);
    }
    out.push_back(Fault{site.ordinal, std::move(p)});
  }
}

}  // namespace

double PairReport::p_squared_coefficient() const {
  // P(exactly two sites err) ~ C(L,2) p^2; conditioned on two errors, the
  // Pauli at each site is uniform over its patterns, so the failure
  // probability is the malignant fraction over uniformly drawn pairs.
  const double l = static_cast<double>(num_sites);
  return 0.5 * l * (l - 1.0) * malignant_fraction();
}

double PairReport::pseudo_threshold() const {
  const double a = p_squared_coefficient();
  return a <= 0.0 ? 1.0 : 1.0 / a;
}

std::vector<Fault> enumerate_single_faults(const FaultExperiment& ex) {
  const auto sites = circuit::enumerate_fault_sites(ex.gadget);
  std::vector<Fault> out;
  for (const auto& site : sites)
    append_site_faults(site, ex.num_qubits, ex.model, out);
  return out;
}

bool run_with_faults(const FaultExperiment& ex,
                     const std::vector<Fault>& faults) {
  EQC_EXPECTS(ex.failed != nullptr);
  circuit::TabBackend backend(ex.num_qubits, Rng(ex.seed));
  circuit::execute(ex.prep, backend);
  circuit::PlantedInjector injector;
  for (const auto& f : faults) injector.plant(f.ordinal, f.error);
  const auto result = circuit::execute(ex.gadget, backend, &injector);
  // A plant whose ordinal was never visited (stale ordinal after a circuit
  // edit, ordinal beyond the site count) would silently test the WRONG
  // fault set; that must never pass as a verdict.
  EQC_ENSURES(injector.all_planted_visited());
  return ex.failed(backend, result);
}

SingleFaultReport run_single_faults(const FaultExperiment& ex) {
  SingleFaultReport report;
  report.num_sites = circuit::enumerate_fault_sites(ex.gadget).size();
  const auto faults = enumerate_single_faults(ex);
  for (const auto& fault : faults) {
    ++report.faults_tested;
    if (run_with_faults(ex, {fault})) {
      ++report.failures;
      report.failing.push_back(fault);
    }
  }
  return report;
}

SingleFaultReport run_single_faults_sampled(const FaultExperiment& ex,
                                            std::uint64_t budget,
                                            std::uint64_t sample_seed) {
  SingleFaultReport report;
  report.num_sites = circuit::enumerate_fault_sites(ex.gadget).size();
  const auto faults = enumerate_single_faults(ex);
  if (faults.size() <= budget) {
    for (const auto& fault : faults) {
      ++report.faults_tested;
      if (run_with_faults(ex, {fault})) {
        ++report.failures;
        report.failing.push_back(fault);
      }
    }
    return report;
  }
  Rng rng(sample_seed);
  for (std::uint64_t i = 0; i < budget; ++i) {
    const auto& fault = faults[rng.below(faults.size())];
    ++report.faults_tested;
    if (run_with_faults(ex, {fault})) {
      ++report.failures;
      report.failing.push_back(fault);
    }
  }
  return report;
}

PairReport run_fault_pairs(const FaultExperiment& ex, std::uint64_t budget,
                           std::uint64_t sample_seed) {
  PairReport report;
  const auto faults = enumerate_single_faults(ex);
  report.num_sites = circuit::enumerate_fault_sites(ex.gadget).size();
  report.single_faults = faults.size();

  const std::uint64_t n = faults.size();
  const std::uint64_t total_pairs = n * (n - 1) / 2;

  if (total_pairs <= budget) {
    report.exhaustive = true;
    for (std::uint64_t i = 0; i < n; ++i) {
      for (std::uint64_t j = i + 1; j < n; ++j) {
        if (faults[i].ordinal == faults[j].ordinal) continue;  // same site
        ++report.pairs_tested;
        if (run_with_faults(ex, {faults[i], faults[j]})) ++report.malignant;
      }
    }
    return report;
  }

  // Sampled branch: draw DISTINCT unordered pairs.  Sampling with
  // replacement would count repeated pairs more than once, biasing
  // malignant_fraction() whenever the budget is a sizable fraction of the
  // universe, so duplicates are rejected via a seen-set.  The number of
  // distinct valid pairs (different ordinals) caps the draw: faults at the
  // same site are contiguous in enumeration order, so the per-ordinal
  // multiplicities give the same-site pair count exactly.
  std::uint64_t same_site_pairs = 0;
  for (std::uint64_t i = 0; i < n;) {
    std::uint64_t j = i;
    while (j < n && faults[j].ordinal == faults[i].ordinal) ++j;
    const std::uint64_t m = j - i;
    same_site_pairs += m * (m - 1) / 2;
    i = j;
  }
  const std::uint64_t valid_pairs = total_pairs - same_site_pairs;
  const std::uint64_t target = std::min(budget, valid_pairs);

  Rng rng(sample_seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(target));
  // The rejection loop is coupon-collecting when target ~ valid_pairs;
  // the attempt cap keeps the worst case bounded (and the run is then
  // reported as the number of pairs actually tested).
  const std::uint64_t max_attempts = 64 * target + 1024;
  for (std::uint64_t attempt = 0;
       attempt < max_attempts && report.pairs_tested < target; ++attempt) {
    std::uint64_t i = rng.below(n);
    std::uint64_t j = rng.below(n);
    if (i == j || faults[i].ordinal == faults[j].ordinal) continue;
    if (i > j) std::swap(i, j);
    if (!seen.insert(i * n + j).second) continue;  // duplicate pair
    ++report.pairs_tested;
    if (run_with_faults(ex, {faults[i], faults[j]})) ++report.malignant;
  }
  report.exhaustive = report.pairs_tested == valid_pairs;
  return report;
}

}  // namespace eqc::analysis
