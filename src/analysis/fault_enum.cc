#include "analysis/fault_enum.h"

#include "common/assert.h"

namespace eqc::analysis {

namespace {

using circuit::FaultSite;
using pauli::Pauli;
using pauli::PauliString;

void append_site_faults(const FaultSite& site, std::size_t num_qubits,
                        FaultModel model, std::vector<Fault>& out) {
  const std::size_t k = site.qubits.size();
  if (model == FaultModel::SingleQubit) {
    for (std::size_t i = 0; i < k; ++i)
      for (Pauli label : {Pauli::X, Pauli::Y, Pauli::Z})
        out.push_back(
            Fault{site.ordinal,
                  PauliString::single(num_qubits, site.qubits[i], label)});
    return;
  }
  // FullDepolarizing: all 4^k - 1 non-identity patterns.
  const std::uint64_t patterns = std::uint64_t{1} << (2 * k);
  for (std::uint64_t code = 1; code < patterns; ++code) {
    PauliString p(num_qubits);
    for (std::size_t i = 0; i < k; ++i) {
      const auto label = static_cast<Pauli>((code >> (2 * i)) & 3);
      if (label != Pauli::I) p.set(site.qubits[i], label);
    }
    out.push_back(Fault{site.ordinal, std::move(p)});
  }
}

}  // namespace

double PairReport::p_squared_coefficient() const {
  // P(exactly two sites err) ~ C(L,2) p^2; conditioned on two errors, the
  // Pauli at each site is uniform over its patterns, so the failure
  // probability is the malignant fraction over uniformly drawn pairs.
  const double l = static_cast<double>(num_sites);
  return 0.5 * l * (l - 1.0) * malignant_fraction();
}

double PairReport::pseudo_threshold() const {
  const double a = p_squared_coefficient();
  return a <= 0.0 ? 1.0 : 1.0 / a;
}

std::vector<Fault> enumerate_single_faults(const FaultExperiment& ex) {
  const auto sites = circuit::enumerate_fault_sites(ex.gadget);
  std::vector<Fault> out;
  for (const auto& site : sites)
    append_site_faults(site, ex.num_qubits, ex.model, out);
  return out;
}

bool run_with_faults(const FaultExperiment& ex,
                     const std::vector<Fault>& faults) {
  EQC_EXPECTS(ex.failed != nullptr);
  circuit::TabBackend backend(ex.num_qubits, Rng(ex.seed));
  circuit::execute(ex.prep, backend);
  circuit::PlantedInjector injector;
  for (const auto& f : faults) injector.plant(f.ordinal, f.error);
  const auto result = circuit::execute(ex.gadget, backend, &injector);
  return ex.failed(backend, result);
}

SingleFaultReport run_single_faults(const FaultExperiment& ex) {
  SingleFaultReport report;
  report.num_sites = circuit::enumerate_fault_sites(ex.gadget).size();
  const auto faults = enumerate_single_faults(ex);
  for (const auto& fault : faults) {
    ++report.faults_tested;
    if (run_with_faults(ex, {fault})) {
      ++report.failures;
      report.failing.push_back(fault);
    }
  }
  return report;
}

SingleFaultReport run_single_faults_sampled(const FaultExperiment& ex,
                                            std::uint64_t budget,
                                            std::uint64_t sample_seed) {
  SingleFaultReport report;
  report.num_sites = circuit::enumerate_fault_sites(ex.gadget).size();
  const auto faults = enumerate_single_faults(ex);
  if (faults.size() <= budget) {
    for (const auto& fault : faults) {
      ++report.faults_tested;
      if (run_with_faults(ex, {fault})) {
        ++report.failures;
        report.failing.push_back(fault);
      }
    }
    return report;
  }
  Rng rng(sample_seed);
  for (std::uint64_t i = 0; i < budget; ++i) {
    const auto& fault = faults[rng.below(faults.size())];
    ++report.faults_tested;
    if (run_with_faults(ex, {fault})) {
      ++report.failures;
      report.failing.push_back(fault);
    }
  }
  return report;
}

PairReport run_fault_pairs(const FaultExperiment& ex, std::uint64_t budget,
                           std::uint64_t sample_seed) {
  PairReport report;
  const auto faults = enumerate_single_faults(ex);
  report.num_sites = circuit::enumerate_fault_sites(ex.gadget).size();
  report.single_faults = faults.size();

  const std::uint64_t n = faults.size();
  const std::uint64_t total_pairs = n * (n - 1) / 2;

  if (total_pairs <= budget) {
    report.exhaustive = true;
    for (std::uint64_t i = 0; i < n; ++i) {
      for (std::uint64_t j = i + 1; j < n; ++j) {
        if (faults[i].ordinal == faults[j].ordinal) continue;  // same site
        ++report.pairs_tested;
        if (run_with_faults(ex, {faults[i], faults[j]})) ++report.malignant;
      }
    }
    return report;
  }

  Rng rng(sample_seed);
  while (report.pairs_tested < budget) {
    const std::uint64_t i = rng.below(n);
    const std::uint64_t j = rng.below(n);
    if (i == j || faults[i].ordinal == faults[j].ordinal) continue;
    ++report.pairs_tested;
    if (run_with_faults(ex, {faults[i], faults[j]})) ++report.malignant;
  }
  return report;
}

}  // namespace eqc::analysis
