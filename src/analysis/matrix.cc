#include "analysis/matrix.h"

#include <utility>

#include "analysis/frame_oracle.h"
#include "circuit/execute.h"
#include "frame/driver.h"
#include "circuit/tab_backend.h"
#include "common/assert.h"
#include "noise/model.h"
#include "noise/monte_carlo.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace eqc::analysis {

namespace {

const char* to_string(MatrixMode mode) {
  return mode == MatrixMode::Campaign ? "campaign" : "mc";
}

MatrixCell run_campaign_cell(const MatrixConfig& cfg, const BuiltGadget& built,
                             MatrixCell cell, std::uint64_t cell_seed) {
  CampaignConfig ccfg;
  ccfg.mode = CampaignMode::KFault;
  ccfg.k = cfg.fault_k;
  ccfg.budget = cfg.budget;
  ccfg.jobs = cfg.jobs;
  ccfg.sample_seed = cell_seed;
  ccfg.shrink = cfg.shrink;
  if (!cfg.checkpoint_prefix.empty()) {
    ccfg.checkpoint_path = cfg.checkpoint_prefix + cell.name() + ".ckpt";
    ccfg.checkpoint_every = cfg.checkpoint_every;
    ccfg.resume = true;
    ccfg.fresh_on_corrupt = true;
  }
  ccfg.stop = cfg.stop;

  const CampaignReport report = run_campaign(built.ex, ccfg);
  cell.complete = report.complete;
  cell.trials = report.sets_tested;
  cell.failures = report.malignant;
  cell.interval = report.malignant_interval();
  cell.num_sites = report.num_sites;
  cell.single_faults = report.single_faults;
  cell.exhaustive = report.exhaustive;
  cell.p_k_coefficient = report.p_k_coefficient();
  cell.pseudo_threshold = report.pseudo_threshold();
  return cell;
}

MatrixCell run_mc_cell(const MatrixConfig& cfg, const BuiltGadget& built,
                       MatrixCell cell, std::uint64_t cell_seed) {
  const FaultExperiment& ex = built.ex;
  const noise::NoiseModel model =
      scenario_noise_model(cell.scenario, cfg.mc_p);
  noise::McResumableOptions opt;
  opt.jobs = cfg.jobs;
  opt.stop = cfg.stop;
  noise::McRunResult result;
  if (cfg.engine == "frames") {
    const frame::FrameProgram prog = make_frame_program(ex);
    const frame::BatchOracle oracle =
        make_frame_oracle(cell.gadget, built, prog);
    result = frame::run_trials_resumable(prog, model, cfg.mc_trials,
                                         cell_seed, oracle, opt);
  } else {
    result = noise::run_trials_resumable(
        cfg.mc_trials, cell_seed,
        [&ex, model](std::uint64_t, Rng& rng) {
          circuit::TabBackend backend(ex.num_qubits, rng.split());
          circuit::execute(ex.prep, backend);
          noise::StochasticInjector injector(model, rng.split());
          const auto r = circuit::execute(ex.gadget, backend, &injector);
          return ex.failed(backend, r);
        },
        opt);
  }
  cell.complete = result.complete;
  cell.trials = result.counter.trials;
  cell.failures = result.counter.failures;
  cell.interval = result.counter.interval();
  return cell;
}

}  // namespace

std::string MatrixCell::name() const {
  return gadget + "_" + scenario.code + "_k" +
         std::to_string(scenario.repetition_k) + "_" + scenario.noise;
}

json::Value MatrixReport::to_json_value() const {
  json::Object obj;
  obj.emplace_back("kind", "eqc_matrix_report");
  obj.emplace_back("mode", to_string(mode));
  if (mode == MatrixMode::Campaign) {
    obj.emplace_back("fault_k", static_cast<std::uint64_t>(fault_k));
    obj.emplace_back("budget", budget);
  } else {
    obj.emplace_back("p", mc_p);
    obj.emplace_back("trials_per_cell", budget);
    // Only a non-default engine is recorded: trials reports stay
    // byte-identical to those written before the engine knob existed.
    if (engine != "trials") obj.emplace_back("engine", engine);
  }
  obj.emplace_back("seed", seed);
  obj.emplace_back("complete", complete);
  json::Array arr;
  for (const auto& cell : cells) {
    json::Object c;
    c.emplace_back("cell", cell.name());
    c.emplace_back("gadget", cell.gadget);
    c.emplace_back("code", cell.scenario.code);
    c.emplace_back("k", static_cast<std::uint64_t>(cell.scenario.repetition_k));
    c.emplace_back("reps", static_cast<std::uint64_t>(cell.scenario.reps()));
    c.emplace_back("noise", cell.scenario.noise);
    c.emplace_back("complete", cell.complete);
    c.emplace_back("trials", cell.trials);
    c.emplace_back("failures", cell.failures);
    c.emplace_back("failure_rate", cell.trials == 0
                                       ? 0.0
                                       : static_cast<double>(cell.failures) /
                                             static_cast<double>(cell.trials));
    c.emplace_back("wilson_low", cell.interval.low);
    c.emplace_back("wilson_high", cell.interval.high);
    if (mode == MatrixMode::Campaign) {
      c.emplace_back("num_sites", static_cast<std::uint64_t>(cell.num_sites));
      c.emplace_back("single_faults",
                     static_cast<std::uint64_t>(cell.single_faults));
      c.emplace_back("exhaustive", cell.exhaustive);
      c.emplace_back("p_k_coefficient", cell.p_k_coefficient);
      c.emplace_back("pseudo_threshold", cell.pseudo_threshold);
    }
    arr.emplace_back(std::move(c));
  }
  obj.emplace_back("cells", std::move(arr));
  return json::Value(std::move(obj));
}

std::uint64_t matrix_cell_seed(std::uint64_t sweep_seed,
                               std::size_t cell_index) {
  // splitmix64 over (seed + golden-ratio stride * (index + 1)): distinct,
  // well-mixed streams per cell, stable under grid reordering only when the
  // axes are unchanged (the index is positional by design).
  std::uint64_t z =
      sweep_seed + 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(cell_index) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

MatrixReport run_matrix(const MatrixConfig& cfg) {
  EQC_EXPECTS(!cfg.gadgets.empty() && !cfg.codes.empty() && !cfg.ks.empty() &&
              !cfg.noises.empty());
  for (const auto& g : cfg.gadgets) EQC_EXPECTS(is_known_gadget(g));
  for (const auto& c : cfg.codes)
    EQC_EXPECTS(codes::find_code(c) != nullptr);
  for (const auto& n : cfg.noises) EQC_EXPECTS(is_known_noise(n));
  for (int k : cfg.ks) EQC_EXPECTS(k >= 0);
  EQC_EXPECTS(cfg.engine == "trials" || cfg.engine == "frames");

  MatrixReport report;
  report.mode = cfg.mode;
  report.fault_k = cfg.fault_k;
  report.budget = cfg.mode == MatrixMode::Campaign ? cfg.budget : cfg.mc_trials;
  report.mc_p = cfg.mc_p;
  report.engine = cfg.engine;
  report.seed = cfg.seed;
  report.complete = true;

  const std::size_t total = cfg.gadgets.size() * cfg.codes.size() *
                            cfg.ks.size() * cfg.noises.size();
  // Cell progress is driven from this serial loop, so the gauges are
  // deterministic (Det::Stable) despite being last-write-wins.
  static obs::Gauge& g_done = obs::gauge("matrix.cells_done");
  static obs::Gauge& g_total = obs::gauge("matrix.cells_total");
  static obs::Counter& c_cells = obs::counter("matrix.cells_completed");
  g_total.set(static_cast<std::int64_t>(total));
  g_done.set(0);
  std::size_t index = 0;
  for (const auto& gadget : cfg.gadgets) {
    for (const auto& code : cfg.codes) {
      for (int k : cfg.ks) {
        for (const auto& noise_name : cfg.noises) {
          MatrixCell cell;
          cell.gadget = gadget;
          cell.scenario.code = code;
          cell.scenario.repetition_k = k;
          cell.scenario.noise = noise_name;
          const std::uint64_t cell_seed = matrix_cell_seed(cfg.seed, index);
          ++index;

          if (cfg.on_progress) {
            MatrixProgress p;
            p.cells_done = report.cells.size();
            p.total_cells = total;
            p.current_cell = cell.name();
            cfg.on_progress(p);
          }

          GadgetSpec spec;
          spec.gadget = gadget;
          spec.scenario = cell.scenario;
          spec.seed = cell_seed;
          {
            obs::Span cell_span("matrix.cell", cell.name());
            const BuiltGadget built = build_gadget_experiment(spec);
            cell = cfg.mode == MatrixMode::Campaign
                       ? run_campaign_cell(cfg, built, std::move(cell),
                                           cell_seed)
                       : run_mc_cell(cfg, built, std::move(cell), cell_seed);
          }
          report.complete = report.complete && cell.complete;
          if (cell.complete) c_cells.add(1);
          report.cells.push_back(std::move(cell));
          g_done.set(static_cast<std::int64_t>(report.cells.size()));
          if (cfg.stop != nullptr &&
              cfg.stop->load(std::memory_order_relaxed)) {
            report.complete = false;
            if (cfg.on_progress) {
              MatrixProgress p;
              p.cells_done = report.cells.size();
              p.total_cells = total;
              cfg.on_progress(p);
            }
            return report;
          }
        }
      }
    }
  }
  if (cfg.on_progress) {
    MatrixProgress p;
    p.cells_done = report.cells.size();
    p.total_cells = total;
    cfg.on_progress(p);
  }
  return report;
}

}  // namespace eqc::analysis
