// Frame-engine adapters for the named gadget experiments.
//
// make_frame_program compiles a FaultExperiment's (prep, gadget) pair
// against its reference execution; make_frame_oracle builds the word-level
// failure predicate that reproduces the gadget's ex.failed verdict for all
// 64 lanes at once.  Both gadget families admit a closed form because a
// trial state is F |ref>: the majority vote reads FX bits of the output
// register, and perfect_correct's verdict reduces to the lane's Z-type
// syndrome (XOR-folded FX words) plus the parity of the min-weight
// correction, looked up from a table precomputed off the CssCode.  When a
// build-time soundness check fails (reference block not in the codespace,
// non-classical outputs), the factory falls back to a per-lane oracle that
// replays ex.failed on a frame-adjusted copy of the reference tableau —
// still bit-exact, just not word-parallel.
#pragma once

#include <string>

#include "analysis/experiments.h"
#include "frame/driver.h"
#include "frame/frames.h"

namespace eqc::analysis {

/// Compiles the experiment's circuits against the reference execution at
/// the experiment seed (so planted-fault replay also matches
/// run_with_faults).
frame::FrameProgram make_frame_program(const FaultExperiment& ex);

/// Word-level (or, on fallback, per-lane) batch failure oracle
/// reproducing `built.ex.failed` bit for bit.  `gadget` is the
/// GadgetSpec::gadget name the experiment was built from.  The returned
/// callable owns copies of everything it needs; `built` and `prog` need
/// not outlive it.
frame::BatchOracle make_frame_oracle(const std::string& gadget,
                                     const BuiltGadget& built,
                                     const frame::FrameProgram& prog);

/// The always-applicable fallback: per lane, copy the reference tableau,
/// apply the lane frame, and run `ex.failed` on a TabBackend seeded with
/// the lane's post-run RNG state.  Exact for any predicate; used directly
/// by tests to cross-check the word oracle.
frame::BatchOracle make_generic_frame_oracle(const FaultExperiment& ex,
                                             const frame::FrameProgram& prog);

}  // namespace eqc::analysis
