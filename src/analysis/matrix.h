// Scenario-sweep matrix driver: a gadget x (code, repetition k, noise) grid
// run through the existing campaign / Monte-Carlo engines, producing a
// threshold-surface report (per-cell failure counters, Wilson intervals,
// pseudo-threshold estimates).
//
// The matrix inherits every robustness property of the underlying engines:
// per-cell seeds are derived deterministically from the sweep seed and the
// cell's coordinates, each cell checkpoints independently (a killed sweep
// resumes cell-by-cell without recounting), the stop token is honored at
// cell granularity mid-cell via the engines' own tokens, and the report
// JSON is byte-identical for any --jobs value.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/campaign.h"
#include "analysis/experiments.h"
#include "common/json.h"
#include "common/stats.h"

namespace eqc::analysis {

enum class MatrixMode {
  Campaign,    ///< k-fault counting per cell (threshold-surface estimates)
  MonteCarlo,  ///< stochastic trials per cell at a fixed physical p
};

struct MatrixProgress {
  std::size_t cells_done = 0;
  std::size_t total_cells = 0;
  /// Name of the cell currently running ("" between cells).
  std::string current_cell;
};

struct MatrixConfig {
  MatrixMode mode = MatrixMode::Campaign;
  /// Grid axes.  The sweep is the full cross product, in the declared
  /// order (gadget-major, noise-minor), which fixes cell indices and
  /// therefore per-cell seeds.
  std::vector<std::string> gadgets = {"ngate", "recovery"};
  std::vector<std::string> codes = {"steane", "rm15"};
  std::vector<int> ks = {1, 2};
  std::vector<std::string> noises = {"paper", "correlated"};

  // Campaign-mode knobs.
  std::size_t fault_k = 2;       ///< fault-set size per cell
  std::uint64_t budget = 2000;   ///< fault sets tested per cell
  bool shrink = false;           ///< delta-debug malignant sets (slower)

  // Monte-Carlo-mode knobs.
  double mc_p = 1e-3;            ///< physical error rate
  std::uint64_t mc_trials = 2000;
  /// MC engine: "trials" (per-trial TabBackend runs) or "frames" (64-lane
  /// batch Pauli-frame simulator).  The counters are byte-identical either
  /// way; frames only changes the wall clock.
  std::string engine = "trials";

  unsigned jobs = 1;             ///< worker budget handed to each cell
  std::uint64_t seed = 1;        ///< sweep seed (per-cell seeds derive)
  /// Per-cell checkpoint path prefix: cell checkpoints land at
  /// "<prefix><cell-name>.ckpt" (pass "dir/" for a directory, or any file
  /// stem for flat sibling files).  Empty disables checkpointing (and
  /// therefore resume).
  std::string checkpoint_prefix;
  std::uint64_t checkpoint_every = 256;
  const std::atomic<bool>* stop = nullptr;
  std::function<void(const MatrixProgress&)> on_progress;
};

/// One grid cell's result.  Campaign mode fills the campaign fields; MC
/// mode fills `counter`.  Either way `failures`/`trials` and the Wilson
/// interval are populated so downstream consumers read one schema.
struct MatrixCell {
  std::string gadget;
  Scenario scenario;
  bool complete = false;     ///< the cell's engine drained its item stream

  std::uint64_t trials = 0;    ///< sets tested / MC trials
  std::uint64_t failures = 0;  ///< malignant sets / failed trials
  BinomialInterval interval;   ///< Wilson 95% on failures/trials

  // Campaign-mode extras (zero in MC mode).
  std::size_t num_sites = 0;
  std::size_t single_faults = 0;
  bool exhaustive = false;
  double p_k_coefficient = 0.0;
  double pseudo_threshold = 1.0;

  /// Stable cell name: "<gadget>_<code>_k<K>_<noise>" (checkpoint file
  /// stem and the JSON "cell" field).
  std::string name() const;
};

struct MatrixReport {
  MatrixMode mode = MatrixMode::Campaign;
  std::size_t fault_k = 0;
  std::uint64_t budget = 0;
  double mc_p = 0.0;
  /// MC engine the sweep ran with ("trials" | "frames"); emitted in the
  /// JSON only when not "trials", so trials reports stay byte-identical
  /// to pre-engine ones.
  std::string engine = "trials";
  std::uint64_t seed = 0;
  bool complete = false;  ///< every cell ran to completion
  std::vector<MatrixCell> cells;

  /// Canonical JSON: deterministic, no timing/host information.
  json::Value to_json_value() const;
  std::string to_json() const { return to_json_value().dump(); }
};

/// Deterministic per-cell seed: a splitmix64 mix of the sweep seed and the
/// cell's grid index (exposed so tests can pin the derivation).
std::uint64_t matrix_cell_seed(std::uint64_t sweep_seed,
                               std::size_t cell_index);

/// Runs (or resumes) the sweep.  Cells run sequentially in grid order;
/// each cell's engine parallelizes internally with `cfg.jobs`.  When the
/// stop token fires the current cell checkpoints and the report returns
/// with complete = false (finished cells keep their results).  Throws
/// ContractViolation on an unknown gadget/code/noise name or an empty axis.
MatrixReport run_matrix(const MatrixConfig& cfg);

}  // namespace eqc::analysis
