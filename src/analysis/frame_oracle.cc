#include "analysis/frame_oracle.h"

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "circuit/tab_backend.h"
#include "common/assert.h"

namespace eqc::analysis {

namespace {

int popcount32(unsigned v) {
  int c = 0;
  for (; v != 0; v &= v - 1) ++c;
  return c;
}

}  // namespace

frame::FrameProgram make_frame_program(const FaultExperiment& ex) {
  return frame::FrameProgram(ex.num_qubits, ex.prep, ex.gadget, ex.seed);
}

frame::BatchOracle make_generic_frame_oracle(
    const FaultExperiment& ex, const frame::FrameProgram& prog) {
  // Captured by value: the oracle must not dangle when built/prog go away.
  return [ref = prog.reference_tableau(), failed = ex.failed,
          n = ex.num_qubits](const frame::FrameBatch& b) -> std::uint64_t {
    std::uint64_t word = 0;
    for (unsigned l = 0; l < b.count(); ++l) {
      stab::Tableau tab = ref;
      tab.apply_pauli(b.lane_frame(l));
      circuit::TabBackend backend(n, b.lane_backend_rng(l));
      backend.tableau() = std::move(tab);
      circuit::ExecResult r;
      r.cbits = b.lane_cbits(l);
      if (failed(backend, r)) word |= std::uint64_t{1} << l;
    }
    return word;
  };
}

frame::BatchOracle make_frame_oracle(const std::string& gadget,
                                     const BuiltGadget& built,
                                     const frame::FrameProgram& prog) {
  const stab::Tableau& ref = prog.reference_tableau();
  const codes::CssCode& code = *built.code;
  const bool is_ngate = gadget == "ngate";

  // Soundness gates for the closed form.  A trial is F |ref> with F a
  // Pauli, so when the reference block is a codeword with a definite
  // logical Z value, every lane's perfect_correct verdict is a parity
  // function of the lane's FX bits; anything else falls back.
  if (!code.block_in_codespace(ref, built.main_block))
    return make_generic_frame_oracle(built.ex, prog);
  const double ref_e = code.logical_z_expectation(ref, built.main_block);
  if (ref_e == 0.0) return make_generic_frame_oracle(built.ex, prog);
  const bool ref_logical = ref_e == -1.0;

  // N-gate majority: per-output-qubit reference values must be classical.
  std::vector<std::pair<std::uint32_t, bool>> out_vals;
  if (is_ngate) {
    for (std::uint32_t q : built.ngate_out) {
      if (!ref.is_deterministic_z(q))
        return make_generic_frame_oracle(built.ex, prog);
      out_vals.emplace_back(q, ref.deterministic_z_value(q));
    }
  }

  // Z-syndrome rows as global-qubit lists, and the parity of the
  // min-weight X correction per syndrome — everything perfect_correct
  // contributes to the logical-Z verdict.  (The Z-error correction half
  // applies only Z operators, which cannot change a Z-basis logical
  // value, so it drops out of the closed form.)
  std::vector<std::vector<std::uint32_t>> zrows(code.num_z_checks());
  for (std::size_t r = 0; r < code.num_z_checks(); ++r) {
    const unsigned mask = code.z_check_mask(r);
    for (std::size_t i = 0; i < code.n(); ++i)
      if ((mask >> i) & 1) zrows[r].push_back(built.main_block.q[i]);
  }
  EQC_CHECK(code.num_z_checks() < 16);
  std::vector<std::uint8_t> fix_parity(std::size_t{1} << code.num_z_checks());
  for (unsigned s = 0; s < fix_parity.size(); ++s)
    fix_parity[s] =
        static_cast<std::uint8_t>(popcount32(code.x_fix_for_z_syndrome(s)) & 1);

  // ex.failed demands corrected logical |1>_L for the N gate (it applied a
  // logical X to |0>_L) and |0>_L for the recovery gadgets.
  const bool expect_bit = is_ngate;
  std::vector<std::uint32_t> blk(built.main_block.q.begin(),
                                 built.main_block.q.end());

  return [out_vals = std::move(out_vals), zrows = std::move(zrows),
          fix_parity = std::move(fix_parity), blk = std::move(blk),
          ref_logical, expect_bit,
          is_ngate](const frame::FrameBatch& b) -> std::uint64_t {
    std::uint64_t fail = 0;
    if (is_ngate) {
      // Majority vote over the classical output register: lane value =
      // reference value XOR frame X bit; too few ones = failure.
      std::array<std::uint8_t, frame::FrameBatch::kLanes> ones{};
      for (const auto& [q, rv] : out_vals) {
        const std::uint64_t v = b.fx(q) ^ (rv ? ~std::uint64_t{0} : 0);
        for (unsigned l = 0; l < b.count(); ++l)
          ones[l] += static_cast<std::uint8_t>((v >> l) & 1);
      }
      for (unsigned l = 0; l < b.count(); ++l)
        if (2 * static_cast<int>(ones[l]) <= static_cast<int>(out_vals.size()))
          fail |= std::uint64_t{1} << l;
    }
    // Lane Z-type syndrome: XOR-fold the FX planes over each check row.
    std::array<std::uint16_t, frame::FrameBatch::kLanes> sz{};
    for (std::size_t r = 0; r < zrows.size(); ++r) {
      std::uint64_t w = 0;
      for (std::uint32_t q : zrows[r]) w ^= b.fx(q);
      for (unsigned l = 0; l < b.count(); ++l)
        sz[l] |= static_cast<std::uint16_t>(((w >> l) & 1) << r);
    }
    // Logical-Z parity of the frame over the block (all-ones logical Z).
    std::uint64_t pblock = 0;
    for (std::uint32_t q : blk) pblock ^= b.fx(q);
    for (unsigned l = 0; l < b.count(); ++l) {
      const bool bit = ref_logical ^ (((pblock >> l) & 1) != 0) ^
                       (fix_parity[sz[l]] != 0);
      if (bit != expect_bit) fail |= std::uint64_t{1} << l;
    }
    return fail;
  };
}

}  // namespace eqc::analysis
