// Named gadget fault experiments — the library's standard analysis targets
// (the Fig. 1 N gate and the Sec. 5 recovery variants) built from a small
// declarative spec, so every consumer (eqc_faultscan, the eqc_serve job
// server, tests, benches) constructs byte-identical experiments from the
// same description.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/fault_enum.h"
#include "codes/css_code.h"
#include "noise/model.h"

namespace eqc::analysis {

/// The (code, repetition k, noise axis) point a gadget experiment is
/// instantiated at.  All fields are scalars so specs serialize naturally —
/// the same property that makes campaign / MC job specs journal-able.
struct Scenario {
  /// CSS code name: "steane" | "rm15" (codes::find_code names).
  std::string code = "steane";
  /// Repetition parameter k; gadgets use 2k+1 classical copies / recovery
  /// rounds (k = 1 is the paper's 3-round majority vote; k = 0 degrades to
  /// a single unvoted round).
  int repetition_k = 1;
  /// Noise axis: "paper" (single-qubit uniform Pauli), "correlated"
  /// (full-depolarizing multi-qubit site faults), "biased-z" (dephasing
  /// dominated, the Z-only enumeration limit).
  std::string noise = "paper";

  /// The odd repetition count 2k+1 the gadget builders consume.
  int reps() const { return 2 * repetition_k + 1; }
};

/// True iff `name` is a noise axis Scenario understands.
bool is_known_noise(const std::string& name);

/// Resolves the scenario's code; throws ContractViolation when unknown.
const codes::CssCode& scenario_code(const Scenario& s);

/// Deterministic-enumeration fault model for the scenario's noise axis.
FaultModel scenario_fault_model(const Scenario& s);

/// Stochastic (Monte-Carlo) noise model at physical error rate `p` for the
/// scenario's noise axis.
noise::NoiseModel scenario_noise_model(const Scenario& s, double p);

/// Declarative description of a gadget fault experiment.
struct GadgetSpec {
  /// "ngate" | "recovery" | "recovery-measured"
  std::string gadget = "ngate";
  Scenario scenario;        ///< code / repetition / noise point
  bool syndrome = true;     ///< N-gate parity check (ablation switch)
  std::uint64_t seed = 1;   ///< experiment RNG seed
};

struct BuiltGadget {
  FaultExperiment ex;
  /// Data/source block, for codespace tripwires.
  codes::CodeBlock main_block;
  /// The code the experiment was instantiated with (registry singleton;
  /// valid for the program's lifetime).
  const codes::CssCode* code = nullptr;
  /// Preferred tripwire probe ordinals (round boundaries); empty = every
  /// site.
  std::vector<std::size_t> probe_after;
  /// N gate only: the classical output register the majority predicate
  /// reads (empty for other gadgets).  Exposed so precomputed failure
  /// oracles (frame engine) can reproduce ex.failed without re-deriving
  /// the layout.
  std::vector<std::uint32_t> ngate_out;
};

/// True for the gadget names build_gadget_experiment accepts.
bool is_known_gadget(const std::string& name);

/// Builds the named experiment.  Throws ContractViolation on an unknown
/// gadget name, code name, or noise axis.
BuiltGadget build_gadget_experiment(const GadgetSpec& spec);

}  // namespace eqc::analysis
