// Named gadget fault experiments — the library's standard analysis targets
// (the Fig. 1 N gate and the Sec. 5 recovery variants) built from a small
// declarative spec, so every consumer (eqc_faultscan, the eqc_serve job
// server, tests, benches) constructs byte-identical experiments from the
// same description.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/fault_enum.h"
#include "codes/steane.h"

namespace eqc::analysis {

/// Declarative description of a gadget fault experiment.  Serializes
/// naturally (all fields are scalars), which is what makes campaign / MC
/// job specs journal-able and their resumed runs reproducible.
struct GadgetSpec {
  /// "ngate" | "recovery" | "recovery-measured"
  std::string gadget = "ngate";
  int reps = 3;             ///< N-gate repetitions (1, 3, 5)
  bool syndrome = true;     ///< N-gate Hamming check (ablation switch)
  bool correlated = false;  ///< FullDepolarizing instead of the paper model
  std::uint64_t seed = 1;   ///< experiment RNG seed
};

struct BuiltGadget {
  FaultExperiment ex;
  /// Data/source block, for codespace tripwires.
  codes::Block main_block;
  /// Preferred tripwire probe ordinals (round boundaries); empty = every
  /// site.
  std::vector<std::size_t> probe_after;
};

/// True for the gadget names build_gadget_experiment accepts.
bool is_known_gadget(const std::string& name);

/// Builds the named experiment.  Throws ContractViolation on an unknown
/// gadget name.
BuiltGadget build_gadget_experiment(const GadgetSpec& spec);

}  // namespace eqc::analysis
