// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms, accumulated in per-thread striped cells and merged
// deterministically at snapshot time.
//
// DETERMINISM CONTRACT.  Every metric declares a determinism class:
//
//  * Det::Stable — the merged total of a COMPLETED run is a pure function
//    of the workload: byte-identical across --jobs values and across
//    kill/resume cycles, the same contract the engines' reports honor.
//    A counter qualifies only when every increment corresponds to a
//    deterministic work item (trials folded, cells completed, sets
//    tested) — never to a scheduling accident (shards claimed, blocks
//    sized off the worker count, wall-clock checkpoint cadence).
//
//  * Det::Runtime — timings, scheduling and machine facts (worker busy
//    time, queue depths, latency histograms).  Kept in a separate
//    snapshot section, mirroring the *_wall_ms convention BENCH_*.json
//    already uses, so CI can compare the deterministic section
//    byte-for-byte between worker counts.
//
// snapshot() emits both sections with metric names SORTED, so two
// processes that performed the same work serialize their "metrics"
// section identically regardless of registration interleaving.
//
// HOT-PATH COST.  Counter::add is one relaxed fetch_add on a per-thread
// striped cell (cache-line padded, no false sharing).  Registry lookups
// take a mutex and are meant to happen ONCE per site — hold the returned
// reference (metrics are never unregistered) in a function-local static.
// Wall-clock capture (LatencyTimer) is gated behind a single relaxed
// atomic load and performs no clock read and no allocation when off.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"

namespace eqc::obs {

/// Determinism class of a metric (see the contract above).
enum class Det { Stable, Runtime };

/// Small stable per-thread ordinal (0 = first thread to ask, usually
/// main).  Used to pick counter stripes and as the trace "tid".
unsigned thread_slot();

/// True when wall-clock capture is on (trace sink installed or
/// enable_timing called).  One relaxed atomic load.
bool timing_enabled();

/// Turns wall-clock capture (LatencyTimer samples, parallel-pool busy/idle
/// accounting) on or off.  Installing a trace sink enables it implicitly.
void enable_timing(bool on = true);

namespace detail {
constexpr unsigned kStripes = 16;  // power of two; indexed by thread slot

struct alignas(64) Cell {
  std::atomic<std::uint64_t> v{0};
};
}  // namespace detail

/// Monotone counter.  add() is wait-free on a per-thread stripe; value()
/// sums the stripes (sums are order-free, so the total is exact).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    cells_[thread_slot() & (detail::kStripes - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  std::array<detail::Cell, detail::kStripes> cells_;
};

/// Last-value gauge with an additive mode.  A Det::Stable gauge must only
/// be set from a deterministic serial point (e.g. the matrix driver's
/// cell loop) — concurrent last-write-wins is Runtime by nature.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram over doubles.  With boundaries b0 < b1 < ... <
/// b{n-1} there are n+1 buckets:
///   bucket 0:      v <  b0
///   bucket i:      b{i-1} <= v < b{i}          (lower-inclusive edges)
///   bucket n:      v >= b{n-1}                 (overflow)
/// record() is wait-free (striped per-bucket cells + atomic double sum).
class Histogram {
 public:
  explicit Histogram(std::vector<double> boundaries);

  void record(double v);

  const std::vector<double>& boundaries() const { return bounds_; }
  /// Per-bucket counts, length boundaries().size() + 1 (last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const;
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::vector<detail::Cell> cells_;  // (buckets) x (stripes)
  std::atomic<double> sum_{0.0};
};

/// RAII latency sample: records the elapsed milliseconds into `hist` at
/// scope exit when timing is enabled; no clock read (and no allocation)
/// otherwise.
class LatencyTimer {
 public:
  explicit LatencyTimer(Histogram& hist)
      : hist_(timing_enabled() ? &hist : nullptr) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~LatencyTimer() {
    if (hist_ != nullptr)
      hist_->record(std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start_)
                        .count());
  }
  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// Named-metric registry.  Instantiable for tests; production code uses
/// the process-wide Registry::global().  Metrics are registered lazily on
/// first lookup and never unregistered, so returned references stay valid
/// for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& global();

  /// Looks up (or registers) a metric.  Re-registration must agree on the
  /// determinism class (and, for histograms, the boundaries); disagreement
  /// is a programming error and throws.
  Counter& counter(const std::string& name, Det det = Det::Stable);
  Gauge& gauge(const std::string& name, Det det = Det::Stable);
  Histogram& histogram(const std::string& name, std::vector<double> boundaries,
                       Det det = Det::Runtime);

  /// Full snapshot:
  ///   { "kind": "eqc_metrics", "schema_version": 1,
  ///     "metrics": {"counters":{..},"gauges":{..},"histograms":{..}},
  ///     "runtime": {"counters":{..},"gauges":{..},"histograms":{..}} }
  /// Names sorted; "metrics" holds the Det::Stable section (byte-identical
  /// across --jobs for a completed run), "runtime" the rest.
  json::Value snapshot() const;

 private:
  template <typename T>
  struct Entry {
    std::unique_ptr<T> metric;
    Det det = Det::Stable;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry<Counter>> counters_;
  std::map<std::string, Entry<Gauge>> gauges_;
  std::map<std::string, Entry<Histogram>> histograms_;
};

/// Shorthands over Registry::global().
inline Counter& counter(const std::string& name, Det det = Det::Stable) {
  return Registry::global().counter(name, det);
}
inline Gauge& gauge(const std::string& name, Det det = Det::Stable) {
  return Registry::global().gauge(name, det);
}
inline Histogram& histogram(const std::string& name,
                            std::vector<double> boundaries,
                            Det det = Det::Runtime) {
  return Registry::global().histogram(name, std::move(boundaries), det);
}

/// Dumps Registry::global().snapshot() to `path` (trailing newline);
/// false on an I/O error.
bool write_metrics_file(const std::string& path);

}  // namespace eqc::obs
