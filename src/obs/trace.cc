#include "obs/trace.h"

#include <atomic>
#include <fstream>
#include <map>
#include <mutex>
#include <vector>

#include "common/json.h"
#include "obs/metrics.h"

namespace eqc::obs {

namespace {

struct TraceEvent {
  const char* name;
  std::string detail;
  unsigned tid;
  double ts_us;
  double dur_us;
  const char* arg_keys[4];
  std::uint64_t arg_vals[4];
  int num_args;
};

struct Sink {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::map<unsigned, std::string> thread_labels;  // slot -> label
  std::chrono::steady_clock::time_point anchor;
};

std::atomic<bool> g_active{false};

Sink& sink() {
  static Sink* const s = new Sink;  // leaked: worker threads may outlive main
  return *s;
}

}  // namespace

bool trace_active() { return g_active.load(std::memory_order_relaxed); }

void install_trace_sink() {
  Sink& s = sink();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (g_active.load(std::memory_order_relaxed)) return;
    s.anchor = std::chrono::steady_clock::now();
  }
  enable_timing(true);
  g_active.store(true, std::memory_order_relaxed);
}

void shutdown_trace_sink() {
  g_active.store(false, std::memory_order_relaxed);
  enable_timing(false);
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  s.events.clear();
  s.thread_labels.clear();
}

void set_thread_label(const std::string& label) {
  if (!trace_active()) return;
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  s.thread_labels[thread_slot()] = label;
}

Span::Span(const char* name) {
  if (!trace_active()) return;  // single relaxed load; name_ stays nullptr
  name_ = name;
  start_ = std::chrono::steady_clock::now();
}

Span::Span(const char* name, const std::string& detail) : Span(name) {
  if (name_ != nullptr) detail_ = detail;
}

Span& Span::arg(const char* key, std::uint64_t value) {
  if (name_ != nullptr && num_args_ < 4) {
    arg_keys_[num_args_] = key;
    arg_vals_[num_args_] = value;
    ++num_args_;
  }
  return *this;
}

Span::~Span() {
  if (name_ == nullptr) return;
  const auto end = std::chrono::steady_clock::now();
  Sink& s = sink();
  TraceEvent ev;
  ev.name = name_;
  ev.detail = std::move(detail_);
  ev.tid = thread_slot();
  ev.dur_us = std::chrono::duration<double, std::micro>(end - start_).count();
  for (int i = 0; i < num_args_; ++i) {
    ev.arg_keys[i] = arg_keys_[i];
    ev.arg_vals[i] = arg_vals_[i];
  }
  ev.num_args = num_args_;
  std::lock_guard<std::mutex> lock(s.mu);
  ev.ts_us =
      std::chrono::duration<double, std::micro>(start_ - s.anchor).count();
  s.events.push_back(std::move(ev));
}

std::string trace_json() {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);

  json::Array events;
  for (const auto& [slot, label] : s.thread_labels) {
    json::Object meta;
    meta.emplace_back("name", json::Value("thread_name"));
    meta.emplace_back("ph", json::Value("M"));
    meta.emplace_back("pid", json::Value(1));
    meta.emplace_back("tid", json::Value(slot));
    json::Object args;
    args.emplace_back("name", json::Value(label));
    meta.emplace_back("args", json::Value(std::move(args)));
    events.emplace_back(std::move(meta));
  }
  for (const auto& ev : s.events) {
    json::Object e;
    e.emplace_back("name", json::Value(ev.name));
    e.emplace_back("cat", json::Value("eqc"));
    e.emplace_back("ph", json::Value("X"));
    e.emplace_back("pid", json::Value(1));
    e.emplace_back("tid", json::Value(ev.tid));
    e.emplace_back("ts", json::Value(ev.ts_us));
    e.emplace_back("dur", json::Value(ev.dur_us));
    json::Object args;
    if (!ev.detail.empty())
      args.emplace_back("detail", json::Value(ev.detail));
    for (int i = 0; i < ev.num_args; ++i)
      args.emplace_back(ev.arg_keys[i], json::Value(ev.arg_vals[i]));
    if (!args.empty()) e.emplace_back("args", json::Value(std::move(args)));
    events.emplace_back(std::move(e));
  }

  json::Object doc;
  doc.emplace_back("displayTimeUnit", json::Value("ms"));
  doc.emplace_back("traceEvents", json::Value(std::move(events)));
  return json::Value(std::move(doc)).dump();
}

bool write_trace_file(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return false;
  out << trace_json() << '\n';
  return out.good();
}

}  // namespace eqc::obs
