// Scoped spans serializing to Chrome trace-event JSON.
//
// A Span is an RAII timer: construction stamps a start time, destruction
// records one complete ("ph":"X") event into the process trace sink with
// the current thread's slot as "tid".  The resulting file loads directly
// in Perfetto / chrome://tracing:
//
//   { "displayTimeUnit": "ms",
//     "traceEvents": [
//       {"name":"thread_name","ph":"M","pid":1,"tid":0,
//        "args":{"name":"worker-0"}},
//       {"name":"mc.block","cat":"eqc","ph":"X","pid":1,"tid":0,
//        "ts":12.3,"dur":456.7,"args":{"start":0,"count":256}}, ... ] }
//
// ("ts"/"dur" are microseconds since sink installation, per the format.)
//
// DISABLED-PATH COST.  When no sink is installed (the default), the Span
// constructor is a single relaxed atomic load and a pointer store — no
// clock read, no allocation, no lock.  Numeric args attach through
// Span::arg(), which is a no-op when disabled, so hot loops never build
// strings for a trace that is not being taken.  Spans are coarse
// (per worker-drain, per MC block, per matrix cell, per shrink loop);
// the sink is a mutex-guarded buffer, flushed once by write_trace_file.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace eqc::obs {

/// True when a trace sink is installed (one relaxed atomic load).
bool trace_active();

/// Installs the process-wide trace sink: subsequent spans are collected
/// (timestamps relative to this call) and timing capture is enabled.
/// Idempotent.
void install_trace_sink();

/// Drops the sink and every collected event, and re-disables timing.
/// Used by tests to restore the disabled state.
void shutdown_trace_sink();

/// Labels the calling thread in the trace ("thread_name" metadata event),
/// e.g. "worker-3".  No-op when no sink is installed.
void set_thread_label(const std::string& label);

/// Serializes the collected events as a Chrome trace-event JSON document
/// (events are kept, so this can be called repeatedly).
std::string trace_json();

/// Writes trace_json() to `path`; false on an I/O error.
bool write_trace_file(const std::string& path);

class Span {
 public:
  /// `name` must outlive the span (string literals at every call site).
  explicit Span(const char* name);
  /// Coarse spans may attach a string detail (e.g. the matrix cell name);
  /// it is stored only when the sink is active.
  Span(const char* name, const std::string& detail);
  ~Span();

  /// Attaches a numeric argument (up to 4; extras are dropped).  `key`
  /// must outlive the span.  No-op when the sink is inactive.
  Span& arg(const char* key, std::uint64_t value);

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;  // nullptr => sink inactive at construction
  std::string detail_;
  const char* arg_keys_[4] = {nullptr, nullptr, nullptr, nullptr};
  std::uint64_t arg_vals_[4] = {0, 0, 0, 0};
  int num_args_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace eqc::obs
