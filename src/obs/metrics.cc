#include "obs/metrics.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace eqc::obs {

namespace {
std::atomic<bool> g_timing{false};
std::atomic<unsigned> g_next_slot{0};
}  // namespace

unsigned thread_slot() {
  thread_local const unsigned slot =
      g_next_slot.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

bool timing_enabled() { return g_timing.load(std::memory_order_relaxed); }

void enable_timing(bool on) { g_timing.store(on, std::memory_order_relaxed); }

Histogram::Histogram(std::vector<double> boundaries)
    : bounds_(std::move(boundaries)),
      cells_((bounds_.size() + 1) * detail::kStripes) {
  if (bounds_.empty())
    throw std::invalid_argument("obs::Histogram: no boundaries");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (!(bounds_[i - 1] < bounds_[i]))
      throw std::invalid_argument(
          "obs::Histogram: boundaries must be strictly increasing");
}

void Histogram::record(double v) {
  const std::size_t bucket = static_cast<std::size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  cells_[bucket * detail::kStripes +
         (thread_slot() & (detail::kStripes - 1))]
      .v.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (std::size_t b = 0; b < out.size(); ++b)
    for (unsigned s = 0; s < detail::kStripes; ++s)
      out[b] += cells_[b * detail::kStripes + s].v.load(
          std::memory_order_relaxed);
  return out;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

Registry& Registry::global() {
  static Registry* const reg = new Registry;  // leaked: outlives exit threads
  return *reg;
}

Counter& Registry::counter(const std::string& name, Det det) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_
             .emplace(name, Entry<Counter>{std::make_unique<Counter>(), det})
             .first;
  else if (it->second.det != det)
    throw std::logic_error("obs: counter '" + name +
                           "' re-registered with a different Det class");
  return *it->second.metric;
}

Gauge& Registry::gauge(const std::string& name, Det det) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(name, Entry<Gauge>{std::make_unique<Gauge>(), det})
             .first;
  else if (it->second.det != det)
    throw std::logic_error("obs: gauge '" + name +
                           "' re-registered with a different Det class");
  return *it->second.metric;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> boundaries, Det det) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(name, Entry<Histogram>{std::make_unique<Histogram>(
                                                 std::move(boundaries)),
                                             det})
             .first;
  else if (it->second.det != det ||
           it->second.metric->boundaries() != boundaries)
    throw std::logic_error("obs: histogram '" + name +
                           "' re-registered with different Det/boundaries");
  return *it->second.metric;
}

json::Value Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);

  // One (counters, gauges, histograms) object per determinism class.
  // std::map iteration gives sorted names, so the dump is independent of
  // registration order.
  json::Object sections[2];
  for (auto& section : sections) {
    section.emplace_back("counters", json::Value(json::Object{}));
    section.emplace_back("gauges", json::Value(json::Object{}));
    section.emplace_back("histograms", json::Value(json::Object{}));
  }
  auto part = [&sections](Det det, std::size_t member) -> json::Object& {
    return sections[det == Det::Stable ? 0 : 1][member].second.as_object();
  };

  for (const auto& [name, entry] : counters_)
    part(entry.det, 0).emplace_back(
        name, json::Value(entry.metric->value()));
  for (const auto& [name, entry] : gauges_)
    part(entry.det, 1).emplace_back(
        name, json::Value(entry.metric->value()));
  for (const auto& [name, entry] : histograms_) {
    json::Object h;
    json::Array bounds, counts;
    for (double b : entry.metric->boundaries()) bounds.emplace_back(b);
    for (std::uint64_t c : entry.metric->bucket_counts()) counts.emplace_back(c);
    h.emplace_back("boundaries", json::Value(std::move(bounds)));
    h.emplace_back("counts", json::Value(std::move(counts)));
    h.emplace_back("count", json::Value(entry.metric->count()));
    h.emplace_back("sum", json::Value(entry.metric->sum()));
    part(entry.det, 2).emplace_back(name, json::Value(std::move(h)));
  }

  json::Object doc;
  doc.emplace_back("kind", json::Value(std::string("eqc_metrics")));
  doc.emplace_back("schema_version", json::Value(std::uint64_t{1}));
  doc.emplace_back("metrics", json::Value(std::move(sections[0])));
  doc.emplace_back("runtime", json::Value(std::move(sections[1])));
  return json::Value(std::move(doc));
}

bool write_metrics_file(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return false;
  out << Registry::global().snapshot().dump() << '\n';
  return out.good();
}

}  // namespace eqc::obs
