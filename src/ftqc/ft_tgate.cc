#include "ftqc/ft_tgate.h"

#include "common/assert.h"

namespace eqc::ftqc {

void append_ft_t_gadget(circuit::Circuit& circ, const TGateRegisters& regs,
                        const NGateOptions& options) {
  EQC_EXPECTS(regs.control.size() == codes::Steane::kN);

  // 1. Transversal CNOT: data block controls, special block targets.
  codes::Steane::append_logical_cnot(circ, regs.data, regs.special);

  // 2. Measurement replacement: N copies the special block's logical value
  //    onto the classical control register.
  append_ngate(circ, regs.special, regs.control, regs.n_anc, options);

  // 3. Classically controlled logical S on the data: bit-wise CSdg
  //    (bit-wise Sdg = logical S on the Steane code).
  for (std::size_t i = 0; i < codes::Steane::kN; ++i)
    circ.csdg(regs.control[i], regs.data.q[i]);
}

void append_ft_t_gate(circuit::Circuit& circ, const TGateRegisters& regs,
                      const SpecialStateAncillas& ss_anc,
                      const NGateOptions& options) {
  append_t_state_prep(circ, regs.special, ss_anc, options.repetitions);
  append_ft_t_gadget(circ, regs, options);
}

}  // namespace eqc::ftqc
