#include "ftqc/ft_tgate.h"

#include "common/assert.h"
#include "ftqc/layout.h"

namespace eqc::ftqc {

void append_ft_t_gadget(circuit::Circuit& circ, const codes::CssCode& code,
                        const TGateRegisters& regs,
                        const NGateOptions& options) {
  EQC_EXPECTS(code.has_transversal_s());
  EQC_EXPECTS(regs.control.size() == code.n());

  // 1. Transversal CNOT: data block controls, special block targets.
  code.append_logical_cnot(circ, regs.data, regs.special);

  // 2. Measurement replacement: N copies the special block's logical value
  //    onto the classical control register.
  append_ngate(circ, code, regs.special, regs.control, regs.n_anc, options);

  // 3. Classically controlled logical S on the data: bit-wise CSdg
  //    (bit-wise Sdg = logical S on a transversal-S code).
  for (std::size_t i = 0; i < code.n(); ++i)
    circ.csdg(regs.control[i], regs.data.q[i]);
}

void append_ft_t_gate(circuit::Circuit& circ, const codes::CssCode& code,
                      const TGateRegisters& regs,
                      const SpecialStateAncillas& ss_anc,
                      const NGateOptions& options) {
  append_t_state_prep(circ, code, regs.special, ss_anc, options.repetitions);
  append_ft_t_gadget(circ, code, regs, options);
}

void append_transversal_t(circuit::Circuit& circ, const codes::CssCode& code,
                          const codes::CodeBlock& data) {
  code.append_logical_t(circ, data);
}

TGateRegisters allocate_tgate_registers(Layout& layout,
                                        const codes::CssCode& code,
                                        int repetitions) {
  TGateRegisters regs;
  regs.data = layout.block(code);
  regs.special = layout.block(code);
  regs.n_anc = allocate_ngate_ancillas(layout, code, repetitions);
  regs.control = layout.reg(code.n());
  return regs;
}

// --- Steane compatibility overloads ----------------------------------------

void append_ft_t_gadget(circuit::Circuit& circ, const TGateRegisters& regs,
                        const NGateOptions& options) {
  append_ft_t_gadget(circ, codes::steane_code(), regs, options);
}

void append_ft_t_gate(circuit::Circuit& circ, const TGateRegisters& regs,
                      const SpecialStateAncillas& ss_anc,
                      const NGateOptions& options) {
  append_ft_t_gate(circ, codes::steane_code(), regs, ss_anc, options);
}

}  // namespace eqc::ftqc
