// Measurement-free fault-tolerant Toffoli — the paper's Fig. 4, a
// measurement-free rendering of Shor's FOCS'96 construction (as drawn by
// Preskill).
//
// Resource: |AND> = (|000> + |010> + |100> + |111>)_L / 2 on blocks A,B,C.
// Gadget, for data blocks X,Y,Z (everything transversal / bit-wise):
//   1. CNOT_L(A -> X), CNOT_L(B -> Y), CNOT_L(Z -> C), H_L(Z);
//   2. N copies the (transformed) X, Y, Z blocks onto classical registers
//      M1, M2, M3 — the three deferred measurements;
//   3. corrections, all controlled by classical registers:
//        phase:  Lambda(Z_L)(M3 -> C),  Lambda(CZ_L)(M3 -> A,B);
//        value:  Lambda(X_L)(M1 -> A),  Lambda(X_L)(M2 -> B);
//        cross:  Lambda(CNOT_L)(M1 -> B,C), Lambda(CNOT_L)(M2 -> A,C),
//                M12 = M1 AND M2 (classical Toffolis), Lambda(X_L)(M12 -> C).
// Outputs appear on A, B, C; the consumed data blocks and the classical
// registers are junk in tensor product with the outputs.
//
// The classical AND (M12) is exactly where the catch-22 would bite: deferred
// naively it would need a quantum Toffoli, but on classical repetition
// registers it is ordinary reversible logic (paper Secs. 4.5, 5).
#pragma once

#include "circuit/circuit.h"
#include "codes/css_code.h"
#include "codes/steane.h"
#include "ftqc/ngate.h"
#include "ftqc/special_state.h"

namespace eqc::ftqc {

// --- Logical-level (one qubit per block) version for exact verification ---

struct BareToffoliRegs {
  std::uint32_t a, b, c;     ///< |AND> resource / output qubits
  std::uint32_t x, y, z;     ///< data inputs (consumed)
  std::uint32_t m1, m2, m3;  ///< deferred-measurement bits
  std::uint32_t m12;         ///< classical AND of m1, m2
};

/// |AND> on three bare qubits: H, H, CCX.
void append_bare_and_state(circuit::Circuit& circ, std::uint32_t a,
                           std::uint32_t b, std::uint32_t c);

/// The Fig. 4 gadget with one qubit per block (assumes |AND> on a,b,c).
void append_bare_toffoli_gadget(circuit::Circuit& circ,
                                const BareToffoliRegs& regs);

// --- Full-code version (built for the fault-propagation analysis) ---------

struct CodedToffoliRegs {
  codes::CodeBlock a, b, c;  ///< |AND> blocks -> outputs
  codes::CodeBlock x, y, z;  ///< data blocks (consumed)
  SpecialStateAncillas ss_anc;
  NGateAncillas n_anc;  ///< reused for all three N gates
  std::vector<std::uint32_t> m1, m2, m3, m12;  ///< width-n classical regs
};

/// Appends |AND> preparation (Fig. 2 scheme) plus the Fig. 4 gadget on
/// encoded blocks of a self-dual code (bit-wise CZ/CCZ must be logical).
/// Runs on the state-vector backend only in principle (42+ qubits); its
/// purpose here is exhaustive error-propagation analysis (see src/analysis).
void append_coded_toffoli(circuit::Circuit& circ, const codes::CssCode& code,
                          const CodedToffoliRegs& regs,
                          const NGateOptions& options = {});

/// The gadget only (assumes |AND> already on a,b,c).
void append_coded_toffoli_gadget(circuit::Circuit& circ,
                                 const codes::CssCode& code,
                                 const CodedToffoliRegs& regs,
                                 const NGateOptions& options = {});

/// Allocates the six blocks, special-state + N-gate ancillas and the four
/// classical registers in the canonical order.
CodedToffoliRegs allocate_coded_toffoli_registers(class Layout& layout,
                                                  const codes::CssCode& code,
                                                  int repetitions = 3);

// --- Steane compatibility overloads ----------------------------------------

void append_coded_toffoli(circuit::Circuit& circ, const CodedToffoliRegs& regs,
                          const NGateOptions& options = {});

void append_coded_toffoli_gadget(circuit::Circuit& circ,
                                 const CodedToffoliRegs& regs,
                                 const NGateOptions& options = {});

}  // namespace eqc::ftqc
