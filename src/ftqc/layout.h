// Register layout helper: hands out qubit indices for blocks, classical
// registers and single ancillas, so circuit builders can be composed without
// hard-coding qubit numbers.
#pragma once

#include <cstdint>
#include <vector>

#include "codes/steane.h"
#include "common/assert.h"

namespace eqc::ftqc {

class Layout {
 public:
  /// Allocates one qubit.
  std::uint32_t bit() { return next_++; }

  /// Allocates `n` consecutive qubits.
  std::vector<std::uint32_t> reg(std::size_t n) {
    std::vector<std::uint32_t> out(n);
    for (auto& q : out) q = next_++;
    return out;
  }

  /// Allocates a 7-qubit code block.
  codes::Block block() {
    const auto b = codes::Block::contiguous(next_);
    next_ += 7;
    return b;
  }

  /// Total number of qubits handed out so far.
  std::size_t total() const { return next_; }

 private:
  std::uint32_t next_ = 0;
};

}  // namespace eqc::ftqc
