// Register layout helper: hands out qubit indices for blocks, classical
// registers and single ancillas, so circuit builders can be composed without
// hard-coding qubit numbers.
#pragma once

#include <cstdint>
#include <vector>

#include "codes/css_code.h"
#include "codes/steane.h"
#include "common/assert.h"

namespace eqc::ftqc {

class Layout {
 public:
  /// Allocates one qubit.
  std::uint32_t bit() { return next_++; }

  /// Allocates `n` consecutive qubits.
  std::vector<std::uint32_t> reg(std::size_t n) {
    std::vector<std::uint32_t> out(n);
    for (auto& q : out) q = next_++;
    return out;
  }

  /// Allocates an n-qubit code block for `code`.
  codes::CodeBlock block(const codes::CssCode& code) {
    return code_block(code.n());
  }

  /// Allocates an `n`-qubit contiguous block.
  codes::CodeBlock code_block(std::size_t n) {
    const auto b = codes::CodeBlock::contiguous(next_, n);
    next_ += static_cast<std::uint32_t>(n);
    return b;
  }

  /// Allocates a fixed-size Steane block (for the Steane-specific builders
  /// that still take codes::Block).
  codes::Block steane_block() {
    const auto b = codes::Block::contiguous(next_);
    next_ += 7;
    return b;
  }

  /// Deprecated: the historical hard-coded 7-qubit allocation — the one
  /// implicit Steane assumption this helper used to bake in.  Use
  /// block(const codes::CssCode&) (code-generic) or steane_block()
  /// (explicitly Steane) instead.
  [[deprecated("use block(code) or steane_block()")]] codes::Block block() {
    return steane_block();
  }

  /// Total number of qubits handed out so far.
  std::size_t total() const { return next_; }

 private:
  std::uint32_t next_ = 0;
};

}  // namespace eqc::ftqc
