#include "ftqc/cat.h"

#include "common/assert.h"

namespace eqc::ftqc {

void append_cat_prep(circuit::Circuit& circ,
                     std::span<const std::uint32_t> cat) {
  EQC_EXPECTS(cat.size() >= 2);
  for (auto q : cat) circ.prep_z(q);
  circ.h(cat[0]);
  for (std::size_t k = 1; k < cat.size(); ++k) circ.cnot(cat[0], cat[k]);
}

void append_verified_cat(circuit::Circuit& circ,
                         std::span<const std::uint32_t> cat,
                         std::span<const std::uint32_t> verify) {
  EQC_EXPECTS(verify.size() + 1 == cat.size());
  append_cat_prep(circ, cat);
  // v_j = cat_0 XOR cat_j is 0 on a good cat (in both branches); any X
  // pattern e makes it e_0 XOR e_j.  Repairing cat_j by v_j maps e to
  // e_0 * X^{(x)n}, which stabilizes the cat.
  for (std::size_t j = 1; j < cat.size(); ++j) {
    const auto v = verify[j - 1];
    circ.prep_z(v);
    circ.cnot(cat[0], v);
    circ.cnot(cat[j], v);
    circ.cnot(v, cat[j]);
  }
}

}  // namespace eqc::ftqc
