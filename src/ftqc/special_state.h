// Measurement-free preparation of special states (the paper's Fig. 2).
//
// Given a bit-wise logical operator U (x)n with +-1 eigenvectors
// |phi_0>, |phi_1>, the scheme projects any  alpha|phi_0> + beta|phi_1>
// onto |phi_0> without measurement:
//
//   repeat 2k+1 times (fresh cat state + fresh parity bit each time):
//     * cat-controlled bit-wise Lambda(U),
//     * bit-wise H on the cat,
//     * parity of the cat into the parity bit;
//   majority-vote the parity bits into a classical control register;
//   control-register-controlled bit-wise U_flip  (|phi_1> -> |phi_0>).
//
// The concrete instantiations used in the paper:
//  * the T-magic state |psi_0> = (|0>_L + e^{i pi/4}|1>_L)/sqrt2 with
//    U = e^{i pi/4} X_L Sdg_L and U_flip = Z_L        (for Fig. 3), and
//  * the |AND> state with U = Lambda(sigma_z) (x) sigma_z and
//    U_flip = I (x) I (x) sigma_z                      (for Fig. 4).
//
// Both instantiations rely on code structure: the T-state needs logical
// Sdg to be bit-wise S (a transversal-S code such as Steane), the |AND>
// state needs bit-wise CZ to be logical CZ (a self-dual code).  The
// code-generic entry points check these capabilities.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "circuit/circuit.h"
#include "codes/css_code.h"
#include "codes/steane.h"

namespace eqc::ftqc {

/// Callbacks describing the bit-wise structure of U and U_flip.
struct SpecialStateOps {
  /// Code length n (7 for the Steane code); the cat and flip-control
  /// registers have this width.
  std::size_t width = 7;
  /// Appends the cat_bit-controlled u acting on code position i.
  std::function<void(circuit::Circuit&, std::uint32_t cat_bit, std::size_t i)>
      controlled_u;
  /// Appends the global-phase factor of U onto the cat register (empty if
  /// U has none).
  std::function<void(circuit::Circuit&, std::span<const std::uint32_t> cat)>
      phase_fix;
  /// Appends the control-bit-controlled U_flip on code position i.
  std::function<void(circuit::Circuit&, std::uint32_t control_bit,
                     std::size_t i)>
      controlled_flip;
};

struct SpecialStateAncillas {
  std::vector<std::uint32_t> cat;      ///< width; re-prepared per repetition
  std::vector<std::uint32_t> parity;   ///< one bit per repetition
  std::vector<std::uint32_t> control;  ///< width; majority-voted parity
  /// Optional (width-1) verification bits for measurement-free cat repair
  /// (see ftqc/cat.h).  Empty disables verification — the configuration
  /// Fig. 2 literally draws, in which one mid-fan-out fault can corrupt
  /// several special-block qubits at once (quantified in E2).
  std::vector<std::uint32_t> verify;
  /// Counter scratch for the 2k+1 >= 5 parity majority vote (see
  /// codes::majority_counter_scratch); empty for repetitions <= 3.
  std::vector<std::uint32_t> maj_scratch;
};

/// Appends the Fig. 2 projection circuit for any odd 2k+1 repetitions.
/// The input state must already be on the special register the callbacks
/// address.
void append_special_state_projection(circuit::Circuit& circ,
                                     const SpecialStateOps& ops,
                                     const SpecialStateAncillas& anc,
                                     int repetitions = 3);

/// Ops descriptor for the T-state on a transversal-S code.
SpecialStateOps t_state_ops(const codes::CssCode& code,
                            const codes::CodeBlock& special);

/// Complete preparation of the T-magic state |psi_0> on `special`:
/// encodes |0>_L and projects.  (|0>_L = (|psi_0> + |psi_1>)/sqrt2.)
void append_t_state_prep(circuit::Circuit& circ, const codes::CssCode& code,
                         const codes::CodeBlock& special,
                         const SpecialStateAncillas& anc, int repetitions = 3);

/// Ops descriptor for the |AND> state on three blocks of a self-dual code
/// (Fig. 4's resource).
SpecialStateOps and_state_ops(const codes::CssCode& code,
                              const codes::CodeBlock& a,
                              const codes::CodeBlock& b,
                              const codes::CodeBlock& c);

/// Complete preparation of |AND> on blocks a, b, c: encodes |+>_L^3 and
/// projects.  (|AND> + |AND-bar> = (H (x) H (x) H)|000>_L.)
void append_and_state_prep(circuit::Circuit& circ, const codes::CssCode& code,
                           const codes::CodeBlock& a, const codes::CodeBlock& b,
                           const codes::CodeBlock& c,
                           const SpecialStateAncillas& anc,
                           int repetitions = 3);

SpecialStateAncillas allocate_special_state_ancillas(class Layout& layout,
                                                     std::size_t width = 7,
                                                     int repetitions = 3);

// --- Steane-block compatibility overloads ----------------------------------

void append_t_state_prep(circuit::Circuit& circ, const codes::Block& special,
                         const SpecialStateAncillas& anc, int repetitions = 3);

SpecialStateOps t_state_ops(const codes::Block& special);

SpecialStateOps and_state_ops(const codes::Block& a, const codes::Block& b,
                              const codes::Block& c);

void append_and_state_prep(circuit::Circuit& circ, const codes::Block& a,
                           const codes::Block& b, const codes::Block& c,
                           const SpecialStateAncillas& anc,
                           int repetitions = 3);

}  // namespace eqc::ftqc
