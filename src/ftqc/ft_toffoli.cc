#include "ftqc/ft_toffoli.h"

#include "common/assert.h"
#include "ftqc/layout.h"

namespace eqc::ftqc {

void append_bare_and_state(circuit::Circuit& circ, std::uint32_t a,
                           std::uint32_t b, std::uint32_t c) {
  circ.h(a);
  circ.h(b);
  circ.ccx(a, b, c);  // (1/2) sum_{a,b} |a, b, ab>
}

void append_bare_toffoli_gadget(circuit::Circuit& circ,
                                const BareToffoliRegs& r) {
  // 1. Entangle data with the resource; rotate old z into the X basis.
  circ.cnot(r.a, r.x);
  circ.cnot(r.b, r.y);
  circ.cnot(r.z, r.c);
  circ.h(r.z);

  // 2. Deferred measurements: copy the transformed data onto m bits.
  circ.prep_z(r.m1);
  circ.prep_z(r.m2);
  circ.prep_z(r.m3);
  circ.cnot(r.x, r.m1);
  circ.cnot(r.y, r.m2);
  circ.cnot(r.z, r.m3);

  // 3a. Phase corrections (must precede the value corrections: they use the
  //     pre-correction A, B, C values).
  circ.cz(r.m3, r.c);
  circ.ccz(r.m3, r.a, r.b);

  // 3b. Value corrections.
  circ.cnot(r.m1, r.a);
  circ.cnot(r.m2, r.b);

  // 3c. Cross terms; the classical AND uses a classical Toffoli.
  circ.ccx(r.m1, r.b, r.c);
  circ.ccx(r.m2, r.a, r.c);
  circ.prep_z(r.m12);
  circ.ccx(r.m1, r.m2, r.m12);
  circ.cnot(r.m12, r.c);
}

void append_coded_toffoli_gadget(circuit::Circuit& circ,
                                 const codes::CssCode& code,
                                 const CodedToffoliRegs& r,
                                 const NGateOptions& options) {
  // Bit-wise CZ/CCZ must be logical, i.e. the code must be self-dual.
  EQC_EXPECTS(code.self_dual());
  const std::size_t n = code.n();
  EQC_EXPECTS(r.m1.size() == n && r.m2.size() == n && r.m3.size() == n &&
              r.m12.size() == n);

  // 1. Transversal entangling layer.
  code.append_logical_cnot(circ, r.a, r.x);
  code.append_logical_cnot(circ, r.b, r.y);
  code.append_logical_cnot(circ, r.z, r.c);
  code.append_logical_h(circ, r.z);

  // 2. Three N gates (measurement replacements).
  append_ngate(circ, code, r.x, r.m1, r.n_anc, options);
  append_ngate(circ, code, r.y, r.m2, r.n_anc, options);
  append_ngate(circ, code, r.z, r.m3, r.n_anc, options);

  // 3a. Phase corrections (bit-wise CZ = logical CZ on a self-dual code).
  for (std::size_t i = 0; i < n; ++i) circ.cz(r.m3[i], r.c.q[i]);
  for (std::size_t i = 0; i < n; ++i) circ.ccz(r.m3[i], r.a.q[i], r.b.q[i]);

  // 3b. Value corrections.
  for (std::size_t i = 0; i < n; ++i) circ.cnot(r.m1[i], r.a.q[i]);
  for (std::size_t i = 0; i < n; ++i) circ.cnot(r.m2[i], r.b.q[i]);

  // 3c. Cross terms; M12 is computed with *classical* Toffolis — the gate
  //     the catch-22 said we could not have, made harmless by the classical
  //     basis (paper Sec. 5).
  for (std::size_t i = 0; i < n; ++i) circ.ccx(r.m1[i], r.b.q[i], r.c.q[i]);
  for (std::size_t i = 0; i < n; ++i) circ.ccx(r.m2[i], r.a.q[i], r.c.q[i]);
  for (auto q : r.m12) circ.prep_z(q);
  for (std::size_t i = 0; i < n; ++i) circ.ccx(r.m1[i], r.m2[i], r.m12[i]);
  for (std::size_t i = 0; i < n; ++i) circ.cnot(r.m12[i], r.c.q[i]);
}

void append_coded_toffoli(circuit::Circuit& circ, const codes::CssCode& code,
                          const CodedToffoliRegs& r,
                          const NGateOptions& options) {
  append_and_state_prep(circ, code, r.a, r.b, r.c, r.ss_anc,
                        options.repetitions);
  append_coded_toffoli_gadget(circ, code, r, options);
}

CodedToffoliRegs allocate_coded_toffoli_registers(Layout& layout,
                                                  const codes::CssCode& code,
                                                  int repetitions) {
  CodedToffoliRegs regs;
  regs.a = layout.block(code);
  regs.b = layout.block(code);
  regs.c = layout.block(code);
  regs.x = layout.block(code);
  regs.y = layout.block(code);
  regs.z = layout.block(code);
  regs.ss_anc =
      allocate_special_state_ancillas(layout, code.n(), repetitions);
  regs.n_anc = allocate_ngate_ancillas(layout, code, repetitions);
  regs.m1 = layout.reg(code.n());
  regs.m2 = layout.reg(code.n());
  regs.m3 = layout.reg(code.n());
  regs.m12 = layout.reg(code.n());
  return regs;
}

// --- Steane compatibility overloads ----------------------------------------

void append_coded_toffoli(circuit::Circuit& circ, const CodedToffoliRegs& r,
                          const NGateOptions& options) {
  append_coded_toffoli(circ, codes::steane_code(), r, options);
}

void append_coded_toffoli_gadget(circuit::Circuit& circ,
                                 const CodedToffoliRegs& r,
                                 const NGateOptions& options) {
  append_coded_toffoli_gadget(circ, codes::steane_code(), r, options);
}

}  // namespace eqc::ftqc
