#include "ftqc/special_state.h"

#include "codes/classical_logic.h"
#include "ftqc/cat.h"
#include "common/assert.h"
#include "ftqc/layout.h"

namespace eqc::ftqc {

void append_special_state_projection(circuit::Circuit& circ,
                                     const SpecialStateOps& ops,
                                     const SpecialStateAncillas& anc,
                                     int repetitions) {
  EQC_EXPECTS(repetitions >= 1 && repetitions % 2 == 1);
  EQC_EXPECTS(anc.cat.size() == ops.width);
  EQC_EXPECTS(anc.control.size() == ops.width);
  EQC_EXPECTS(anc.parity.size() >= static_cast<std::size_t>(repetitions));
  EQC_EXPECTS(ops.controlled_u != nullptr && ops.controlled_flip != nullptr);

  EQC_EXPECTS(anc.verify.empty() || anc.verify.size() + 1 == anc.cat.size());
  for (int r = 0; r < repetitions; ++r) {
    // Fresh cat state.  The parity-bit majority below absorbs cat faults'
    // effect on the PARITY; the optional verification additionally stops
    // mid-fan-out bursts from depositing multi-qubit errors through the
    // cat-controlled couplings.
    if (anc.verify.empty())
      append_cat_prep(circ, anc.cat);
    else
      append_verified_cat(circ, anc.cat, anc.verify);

    // Cat-controlled bit-wise Lambda(U).
    for (std::size_t i = 0; i < ops.width; ++i)
      ops.controlled_u(circ, anc.cat[i], i);
    if (ops.phase_fix) ops.phase_fix(circ, anc.cat);

    // Bit-wise H, then the cat's parity carries the eigenvalue bit.
    for (auto q : anc.cat) circ.h(q);
    circ.prep_z(anc.parity[static_cast<std::size_t>(r)]);
    for (auto q : anc.cat)
      circ.cnot(q, anc.parity[static_cast<std::size_t>(r)]);
  }

  // Majority vote into the classical control register, then the controlled
  // bit-wise U_flip turns |phi_1> into |phi_0> everywhere.
  for (auto q : anc.control) circ.prep_z(q);
  if (repetitions == 1) {
    codes::append_fanout(circ, anc.parity[0], anc.control);
  } else if (repetitions == 3) {
    codes::append_majority3(circ, anc.parity[0], anc.parity[1], anc.parity[2],
                            anc.control);
  } else {
    // One independent population count per control bit (same independence
    // argument as the N gate's wide vote).
    for (auto q : anc.control)
      codes::append_majority_counter(circ, anc.parity, repetitions,
                                     anc.maj_scratch, q);
  }
  for (std::size_t i = 0; i < ops.width; ++i)
    ops.controlled_flip(circ, anc.control[i], i);
}

SpecialStateOps t_state_ops(const codes::CssCode& code,
                            const codes::CodeBlock& special) {
  EQC_EXPECTS(code.has_transversal_s() && special.size() == code.n());
  SpecialStateOps ops;
  ops.width = code.n();
  // U = e^{i pi/4} X_L Sdg_L; logical Sdg is bit-wise S on a transversal-S
  // code, so the controlled bit-wise factors are CS then CNOT, and the
  // global phase e^{i pi/4} is a T gate on one cat qubit.
  ops.controlled_u = [special](circuit::Circuit& c, std::uint32_t cat,
                               std::size_t i) {
    c.cs(cat, special.q[i]);
    c.cnot(cat, special.q[i]);
  };
  ops.phase_fix = [](circuit::Circuit& c,
                     std::span<const std::uint32_t> cat) { c.t(cat[0]); };
  // U_flip = Z_L = bit-wise Z.
  ops.controlled_flip = [special](circuit::Circuit& c, std::uint32_t ctl,
                                  std::size_t i) { c.cz(ctl, special.q[i]); };
  return ops;
}

void append_t_state_prep(circuit::Circuit& circ, const codes::CssCode& code,
                         const codes::CodeBlock& special,
                         const SpecialStateAncillas& anc, int repetitions) {
  code.append_encode_zero(circ, special);
  append_special_state_projection(circ, t_state_ops(code, special), anc,
                                  repetitions);
}

SpecialStateOps and_state_ops(const codes::CssCode& code,
                              const codes::CodeBlock& a,
                              const codes::CodeBlock& b,
                              const codes::CodeBlock& c) {
  EQC_EXPECTS(code.self_dual() && a.size() == code.n() &&
              b.size() == code.n() && c.size() == code.n());
  SpecialStateOps ops;
  ops.width = code.n();
  // U = Lambda(sigma_z) (x) sigma_z logically; bit-wise CZ is logical CZ and
  // bit-wise Z is logical Z, so the cat-controlled factors are
  // CCZ(cat, a_i, b_i) and CZ(cat, c_i).  U has no global phase.
  ops.controlled_u = [a, b, c](circuit::Circuit& circ, std::uint32_t cat,
                               std::size_t i) {
    circ.ccz(cat, a.q[i], b.q[i]);
    circ.cz(cat, c.q[i]);
  };
  ops.phase_fix = nullptr;
  // U_flip = I (x) I (x) Z_L.
  ops.controlled_flip = [c](circuit::Circuit& circ, std::uint32_t ctl,
                            std::size_t i) { circ.cz(ctl, c.q[i]); };
  return ops;
}

void append_and_state_prep(circuit::Circuit& circ, const codes::CssCode& code,
                           const codes::CodeBlock& a, const codes::CodeBlock& b,
                           const codes::CodeBlock& c,
                           const SpecialStateAncillas& anc, int repetitions) {
  code.append_encode_plus(circ, a);
  code.append_encode_plus(circ, b);
  code.append_encode_plus(circ, c);
  append_special_state_projection(circ, and_state_ops(code, a, b, c), anc,
                                  repetitions);
}

SpecialStateAncillas allocate_special_state_ancillas(Layout& layout,
                                                     std::size_t width,
                                                     int repetitions) {
  SpecialStateAncillas anc;
  anc.cat = layout.reg(width);
  anc.parity = layout.reg(static_cast<std::size_t>(repetitions));
  anc.control = layout.reg(width);
  if (repetitions >= 5)
    anc.maj_scratch = layout.reg(codes::majority_counter_scratch(repetitions));
  return anc;
}

// --- Steane-block compatibility overloads ----------------------------------

SpecialStateOps t_state_ops(const codes::Block& special) {
  return t_state_ops(codes::steane_code(), codes::CodeBlock::of(special));
}

void append_t_state_prep(circuit::Circuit& circ, const codes::Block& special,
                         const SpecialStateAncillas& anc, int repetitions) {
  append_t_state_prep(circ, codes::steane_code(), codes::CodeBlock::of(special),
                      anc, repetitions);
}

SpecialStateOps and_state_ops(const codes::Block& a, const codes::Block& b,
                              const codes::Block& c) {
  return and_state_ops(codes::steane_code(), codes::CodeBlock::of(a),
                       codes::CodeBlock::of(b), codes::CodeBlock::of(c));
}

void append_and_state_prep(circuit::Circuit& circ, const codes::Block& a,
                           const codes::Block& b, const codes::Block& c,
                           const SpecialStateAncillas& anc, int repetitions) {
  append_and_state_prep(circ, codes::steane_code(), codes::CodeBlock::of(a),
                        codes::CodeBlock::of(b), codes::CodeBlock::of(c), anc,
                        repetitions);
}

}  // namespace eqc::ftqc
