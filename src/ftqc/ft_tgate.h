// Measurement-free fault-tolerant sigma_z^{1/4} (T) gate — the paper's
// Fig. 3, after [Boykin-Mor-Pulver-Roychowdhury-Vatan FOCS'99].
//
// Gadget (all operations bit-wise / transversal on the Steane code):
//   1. transversal CNOT from the data block onto the special block holding
//      |psi_0> = (|0>_L + e^{i pi/4}|1>_L)/sqrt2;
//   2. the N gate copies the special block's logical value onto a classical
//      control register (this replaces the measurement of the original
//      protocol);
//   3. classical-register-controlled logical S on the data (bit-wise CSdg,
//      since bit-wise Sdg realizes logical S on the Steane code).
//
// The catch-22 the paper resolves: deferring the measurement naively would
// need Lambda(S_L) controlled by a *quantum* codeword, which is not in the
// directly fault-tolerant set; controlling bit-wise from a *classical*
// repetition register is safe because phase errors never flow from control
// to target.
#pragma once

#include "circuit/circuit.h"
#include "codes/steane.h"
#include "ftqc/ngate.h"
#include "ftqc/special_state.h"

namespace eqc::ftqc {

struct TGateRegisters {
  codes::Block data;
  codes::Block special;  ///< must hold |psi_0> when the gadget runs
  NGateAncillas n_anc;
  std::vector<std::uint32_t> control;  ///< classical register, width 7
};

/// Appends the Fig. 3 gadget (assumes |psi_0> is already on `special`).
void append_ft_t_gadget(circuit::Circuit& circ, const TGateRegisters& regs,
                        const NGateOptions& options = {});

/// Gadget + in-line special-state preparation (the full measurement-free
/// T gate from |0>_L ancillas).  `ss_anc.cat/control` may reuse qubits that
/// are re-prepared later; all registers must be disjoint.
void append_ft_t_gate(circuit::Circuit& circ, const TGateRegisters& regs,
                      const SpecialStateAncillas& ss_anc,
                      const NGateOptions& options = {});

}  // namespace eqc::ftqc
