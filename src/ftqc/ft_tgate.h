// Measurement-free fault-tolerant sigma_z^{1/4} (T) gate — the paper's
// Fig. 3, after [Boykin-Mor-Pulver-Roychowdhury-Vatan FOCS'99].
//
// Gadget (all operations bit-wise / transversal on the code):
//   1. transversal CNOT from the data block onto the special block holding
//      |psi_0> = (|0>_L + e^{i pi/4}|1>_L)/sqrt2;
//   2. the N gate copies the special block's logical value onto a classical
//      control register (this replaces the measurement of the original
//      protocol);
//   3. classical-register-controlled logical S on the data (bit-wise CSdg,
//      since bit-wise Sdg realizes logical S on a transversal-S code such
//      as Steane).
//
// The catch-22 the paper resolves: deferring the measurement naively would
// need Lambda(S_L) controlled by a *quantum* codeword, which is not in the
// directly fault-tolerant set; controlling bit-wise from a *classical*
// repetition register is safe because phase errors never flow from control
// to target.
//
// On a code with a TRANSVERSAL T (RM15) this whole gadget is unnecessary —
// append_transversal_t applies the logical T directly, which is what makes
// the Steane<->RM15 comparison in the scenario matrix interesting.
#pragma once

#include "circuit/circuit.h"
#include "codes/css_code.h"
#include "codes/steane.h"
#include "ftqc/ngate.h"
#include "ftqc/special_state.h"

namespace eqc::ftqc {

struct TGateRegisters {
  codes::CodeBlock data;
  codes::CodeBlock special;  ///< must hold |psi_0> when the gadget runs
  NGateAncillas n_anc;
  std::vector<std::uint32_t> control;  ///< classical register, width n
};

/// Appends the Fig. 3 gadget (assumes |psi_0> is already on `special`).
/// Requires a transversal-S code.
void append_ft_t_gadget(circuit::Circuit& circ, const codes::CssCode& code,
                        const TGateRegisters& regs,
                        const NGateOptions& options = {});

/// Gadget + in-line special-state preparation (the full measurement-free
/// T gate from |0>_L ancillas).  `ss_anc.cat/control` may reuse qubits that
/// are re-prepared later; all registers must be disjoint.
void append_ft_t_gate(circuit::Circuit& circ, const codes::CssCode& code,
                      const TGateRegisters& regs,
                      const SpecialStateAncillas& ss_anc,
                      const NGateOptions& options = {});

/// The trivial T gate on a transversal-T code (RM15): bit-wise Tdg is the
/// logical T — no ancillas, no special state, constant depth.
void append_transversal_t(circuit::Circuit& circ, const codes::CssCode& code,
                          const codes::CodeBlock& data);

/// Allocates data/special blocks, N-gate ancillas and the control register
/// in the canonical order.
TGateRegisters allocate_tgate_registers(class Layout& layout,
                                        const codes::CssCode& code,
                                        int repetitions = 3);

// --- Steane compatibility overloads ----------------------------------------

void append_ft_t_gadget(circuit::Circuit& circ, const TGateRegisters& regs,
                        const NGateOptions& options = {});

void append_ft_t_gate(circuit::Circuit& circ, const TGateRegisters& regs,
                      const SpecialStateAncillas& ss_anc,
                      const NGateOptions& options = {});

}  // namespace eqc::ftqc
