#include "ftqc/recovery.h"

#include <vector>

#include "codes/classical_logic.h"
#include "common/assert.h"
#include "ftqc/layout.h"
#include "ftqc/ngate.h"

namespace eqc::ftqc {

namespace {

using circuit::Circuit;
using codes::CodeBlock;
using codes::CssCode;

// Copies the block's classical parities (Z-type or X-type checks) onto
// classical bits (the parities are deterministic on any codeword-uniform
// state, so this never decoheres the block — the N-gate trick).
void read_parities(Circuit& circ, const CssCode& code, const CodeBlock& block,
                   std::span<const std::uint32_t> syn, bool x_type) {
  const std::size_t m = x_type ? code.num_x_checks() : code.num_z_checks();
  for (std::size_t row = 0; row < m; ++row) {
    circ.prep_z(syn[row]);
    const unsigned mask =
        x_type ? code.x_check_mask(row) : code.z_check_mask(row);
    for (std::size_t i = 0; i < code.n(); ++i)
      if (mask & (1u << i)) circ.cnot(block.q[i], syn[row]);
  }
}

// onehot ^= [reg == pattern] (reversible one-hot decode; preps work+onehot).
void decode_pattern(Circuit& circ, std::span<const std::uint32_t> reg,
                    std::span<const std::uint32_t> work, std::uint32_t onehot,
                    unsigned pattern) {
  codes::append_match_pattern(circ, reg, pattern, work, onehot,
                              /*prep_target=*/true);
}

// Burst repair shared by both ancilla preparations: read the classical
// Z-type syndrome twice, and if the two reads agree, apply a correction
// whose syndrome EQUALS the read — any single fault either leaves the
// block a codeword pattern or is caught by the disagreement gate.
//
// The correction map must cover the WHOLE syndrome space: an unverified
// encoder burst can carry any syndrome, and a burst the map cannot reach
// survives repair and (as the control of the later transversal CNOT) lands
// on the data as a multi-qubit X error.  For a perfect code (Steane) the
// single-qubit one-hot decode already covers it — every nonzero syndrome
// is some position's syndrome.  Otherwise (RM15: 16 of 1024 syndromes
// reachable by one-hot) an information-set solve applies X on pivot
// position p_j iff parity(tags_j & syndrome): H f(s) = s for every s, so
// burst + repair is always an X stabilizer or a logical X, and the
// caller's coset fix handles the latter.  The pivot set is chosen to
// minimize per-syndrome-bit fanout, capping what one corrupted classical
// bit can inject at the code's X-correction radius (3 for RM15).
void append_burst_repair(Circuit& circ, const CssCode& code,
                         const CodeBlock& block, const RecoveryAncillas& anc) {
  const std::size_t mz = code.num_z_checks();
  read_parities(circ, code, block, anc.prep_syn1, /*x_type=*/false);
  read_parities(circ, code, block, anc.prep_syn2, /*x_type=*/false);
  // syn2 := syn1 XOR syn2 (difference); eq = NOR(difference).
  for (std::size_t j = 0; j < mz; ++j)
    circ.cnot(anc.prep_syn1[j], anc.prep_syn2[j]);
  codes::append_nor_into(circ, std::span(anc.prep_syn2).subspan(0, mz),
                         anc.prep_work, anc.prep_eq);
  // repair = eq ? syn1 : 0.
  for (std::size_t j = 0; j < mz; ++j) {
    circ.prep_z(anc.prep_repair[j]);
    circ.ccx(anc.prep_eq, anc.prep_syn1[j], anc.prep_repair[j]);
  }
  const codes::ZRepairPlan plan = codes::z_repair_plan(code);
  if (plan.single_qubit_complete) {
    // Decode + classically controlled repair (one hot per position).
    for (std::size_t i = 0; i < code.n(); ++i) {
      decode_pattern(circ, anc.prep_repair, anc.prep_work, anc.onehot[i],
                     code.z_syndrome_of_x_error(i));
      circ.cnot(anc.onehot[i], block.q[i]);
    }
    return;
  }
  // Linear repair: each pivot accumulates its syndrome-bit parity directly.
  for (std::size_t j = 0; j < plan.positions.size(); ++j)
    for (std::size_t r = 0; r < mz; ++r)
      if (plan.tags[j] & (1u << r))
        circ.cnot(anc.prep_repair[r], block.q[plan.positions[j]]);
}

// Fault-tolerant repaired |0>_L ancilla: encode |0>_L, REPAIR any X burst
// the unverified encoder may have left (the repaired pattern is then an X
// stabilizer — or a logical X), then fix the logical coset: the N gate
// reads the (deterministic) logical bit fault-tolerantly onto an n-wide
// classical register, which then controls a bit-wise X_L repair — the
// paper's own classically-controlled-logical-operation technique.
void prepare_repaired_zero(Circuit& circ, const CssCode& code,
                           const RecoveryAncillas& anc) {
  const CodeBlock& a = anc.anc_block;
  for (auto q : a.q) circ.prep_z(q);
  code.append_encode_zero(circ, a);
  append_burst_repair(circ, code, a, anc);
  append_ngate(circ, code, a, anc.prep_nout, anc.prep_n, NGateOptions{});
  for (std::size_t i = 0; i < code.n(); ++i)
    circ.cnot(anc.prep_nout[i], a.q[i]);
}

// Fault-tolerant |+>_L ancilla.  Self-dual codes: repaired |0>_L then
// transversal H.  Otherwise: direct |+>_L encoder plus the X-burst repair
// (the Z-type parities are deterministic on |+>_L too); no coset fix is
// needed because X_L stabilizes |+>_L.  Residual single-fault damage is at
// most one Z on the block plus benign X noise; neither can put more than
// one error on the data.
void prepare_plus_ancilla(Circuit& circ, const CssCode& code,
                          const RecoveryAncillas& anc) {
  if (code.self_dual()) {
    prepare_repaired_zero(circ, code, anc);
    code.append_logical_h(circ, anc.anc_block);
    return;
  }
  const CodeBlock& a = anc.anc_block;
  for (auto q : a.q) circ.prep_z(q);
  code.append_encode_plus(circ, a);
  append_burst_repair(circ, code, a, anc);
}

// One Steane-style Z-type extraction: |+>_L ancilla block as
// transversal-CNOT target, then the ancilla's Z-type parities onto
// classical bits.
void extract_z_syndrome(Circuit& circ, const CssCode& code,
                        const CodeBlock& data, const RecoveryAncillas& anc,
                        std::span<const std::uint32_t> syn) {
  prepare_plus_ancilla(circ, code, anc);
  code.append_logical_cnot(circ, data, anc.anc_block);
  read_parities(circ, code, anc.anc_block, syn, /*x_type=*/false);
}

// X-type extraction for a non-self-dual code: repaired |0>_L ancilla as
// transversal-CNOT CONTROL (data phase errors copy onto the ancilla), raw
// qubit-wise H, then the X-type parities — deterministic because H^(x)n
// |0>_L is the uniform superposition over the dual code's codewords.
void extract_x_syndrome(Circuit& circ, const CssCode& code,
                        const CodeBlock& data, const RecoveryAncillas& anc,
                        std::span<const std::uint32_t> syn) {
  prepare_repaired_zero(circ, code, anc);
  code.append_logical_cnot(circ, anc.anc_block, data);
  for (auto q : anc.anc_block.q) circ.h(q);
  read_parities(circ, code, anc.anc_block, syn, /*x_type=*/true);
}

// Index of the pair (a, b), a < b, in lexicographic pair order.
std::size_t eq_index(int rounds, int a, int b) {
  std::size_t idx = 0;
  for (int i = 0; i < a; ++i) idx += static_cast<std::size_t>(rounds - 1 - i);
  return idx + static_cast<std::size_t>(b - a - 1);
}

// Word-level agreement vote over `rounds` syndrome words of width `w`:
// voted = the first round's word that enough other rounds agree with, else
// 0.  For three rounds "enough" is one other round — the paper's "use a
// syndrome that two rounds agree on"; for 2k+1 rounds it is k others, the
// count at which the agreed word is unique when at most k rounds are
// faulty.
void append_agreement_vote(Circuit& circ, const RecoveryAncillas& anc,
                           std::span<const std::uint32_t> syn, std::size_t w,
                           int rounds) {
  auto word = [&](int r) { return syn.subspan(static_cast<std::size_t>(r) * w, w); };

  // eq[pair] = [word(a) == word(b)] for every pair a < b.
  for (int a = 0; a < rounds; ++a) {
    for (int b = a + 1; b < rounds; ++b) {
      const auto sa = word(a), sb = word(b);
      // diff_j = a_j XOR b_j; eq = NOR(diff).
      for (std::size_t j = 0; j < w; ++j) {
        circ.prep_z(anc.diff[j]);
        circ.cnot(sa[j], anc.diff[j]);
        circ.cnot(sb[j], anc.diff[j]);
      }
      codes::append_nor_into(circ, std::span(anc.diff).subspan(0, w),
                             anc.and_work, anc.eq[eq_index(rounds, a, b)]);
    }
  }

  if (rounds == 3) {
    // u1 = eq12 OR eq13 = NOT(!eq12 AND !eq13).
    circ.prep_z(anc.use_bits[0]);
    circ.x(anc.eq[0]);
    circ.x(anc.eq[1]);
    circ.ccx(anc.eq[0], anc.eq[1], anc.use_bits[0]);
    circ.x(anc.use_bits[0]);
    circ.x(anc.eq[0]);  // restore
    circ.x(anc.eq[1]);
    // u2 = eq23 AND NOT u1.
    circ.prep_z(anc.use_bits[1]);
    circ.x(anc.use_bits[0]);
    circ.ccx(anc.eq[2], anc.use_bits[0], anc.use_bits[1]);
    circ.x(anc.use_bits[0]);
  } else {
    // General counting rule: t_r = [#{b != r : word(b) == word(r)} >= k],
    // u_r = t_r AND no earlier round used.
    const std::size_t k = static_cast<std::size_t>(rounds) / 2;
    const std::size_t cts =
        codes::count_threshold_scratch(static_cast<std::size_t>(rounds - 1));
    const std::uint32_t t_bit = anc.and_work[cts];
    const auto chain = std::span(anc.and_work).subspan(cts + 1);
    for (int r = 0; r + 1 < rounds; ++r) {
      std::vector<std::uint32_t> agree;
      for (int b = 0; b < rounds; ++b)
        if (b != r)
          agree.push_back(
              anc.eq[eq_index(rounds, std::min(r, b), std::max(r, b))]);
      circ.prep_z(t_bit);
      codes::append_count_threshold(
          circ, agree, k, std::span(anc.and_work).subspan(0, cts), t_bit);
      circ.prep_z(anc.use_bits[static_cast<std::size_t>(r)]);
      for (int i = 0; i < r; ++i)
        circ.x(anc.use_bits[static_cast<std::size_t>(i)]);
      if (r == 0) {
        circ.cnot(t_bit, anc.use_bits[0]);
      } else if (r == 1) {
        circ.ccx(t_bit, anc.use_bits[0], anc.use_bits[1]);
      } else {
        circ.prep_z(chain[0]);
        circ.ccx(t_bit, anc.use_bits[0], chain[0]);
        for (int i = 1; i + 1 < r; ++i) {
          circ.prep_z(chain[static_cast<std::size_t>(i)]);
          circ.ccx(chain[static_cast<std::size_t>(i - 1)],
                   anc.use_bits[static_cast<std::size_t>(i)],
                   chain[static_cast<std::size_t>(i)]);
        }
        circ.ccx(chain[static_cast<std::size_t>(r - 2)],
                 anc.use_bits[static_cast<std::size_t>(r - 1)],
                 anc.use_bits[static_cast<std::size_t>(r)]);
      }
      for (int i = 0; i < r; ++i)
        circ.x(anc.use_bits[static_cast<std::size_t>(i)]);
    }
  }

  for (std::size_t j = 0; j < w; ++j) {
    circ.prep_z(anc.voted[j]);
    for (int r = 0; r + 1 < rounds; ++r)
      circ.ccx(anc.use_bits[static_cast<std::size_t>(r)], word(r)[j],
               anc.voted[j]);
  }
}

}  // namespace

void append_recovery(Circuit& circ, const CssCode& code, const CodeBlock& data,
                     const RecoveryAncillas& anc,
                     const RecoveryOptions& options,
                     RecoveryRoundMarks* marks) {
  const int rounds = options.rounds;
  const std::size_t n = code.n();
  const std::size_t mz = code.num_z_checks();
  const std::size_t mx = code.num_x_checks();
  EQC_EXPECTS(rounds >= 1 && rounds % 2 == 1);
  EQC_EXPECTS(data.size() == n);
  EQC_EXPECTS(anc.syn_z.size() >= static_cast<std::size_t>(rounds) * mz);
  EQC_EXPECTS(anc.syn_x.size() >= static_cast<std::size_t>(rounds) * mx);
  EQC_EXPECTS(anc.onehot.size() == n);
  auto mark = [&] {
    if (marks != nullptr) marks->op_boundaries.push_back(circ.size());
  };
  auto z_round = [&](int r) {
    return std::span(anc.syn_z).subspan(static_cast<std::size_t>(r) * mz, mz);
  };
  auto x_round = [&](int r) {
    return std::span(anc.syn_x).subspan(static_cast<std::size_t>(r) * mx, mx);
  };

  // --- Syndrome extraction. ------------------------------------------------
  // Z-type checks (X-error detection): direct.
  for (int r = 0; r < rounds; ++r) {
    extract_z_syndrome(circ, code, data, anc, z_round(r));
    mark();
  }
  // X-type checks (Z-error detection).
  if (code.self_dual()) {
    // In a transversal-H frame the Z-type machinery measures X-type checks.
    code.append_logical_h(circ, data);
    for (int r = 0; r < rounds; ++r) {
      extract_z_syndrome(circ, code, data, anc, x_round(r));
      mark();
    }
    code.append_logical_h(circ, data);
  } else {
    for (int r = 0; r < rounds; ++r) {
      extract_x_syndrome(circ, code, data, anc, x_round(r));
      mark();
    }
  }

  if (options.measurement_free) {
    // Z-type syndrome -> X corrections.
    if (rounds == 1) {
      for (std::size_t j = 0; j < mz; ++j) {
        circ.prep_z(anc.voted[j]);
        circ.cnot(anc.syn_z[j], anc.voted[j]);
      }
    } else {
      append_agreement_vote(circ, anc, anc.syn_z, mz, rounds);
    }
    for (std::size_t i = 0; i < n; ++i) {
      decode_pattern(circ, std::span(anc.voted).subspan(0, mz),
                     anc.decode_work, anc.onehot[i],
                     code.z_syndrome_of_x_error(i));
      circ.cnot(anc.onehot[i], data.q[i]);  // X correction
    }
    mark();
    // X-type syndrome -> Z corrections.
    if (rounds == 1) {
      for (std::size_t j = 0; j < mx; ++j) {
        circ.prep_z(anc.voted[j]);
        circ.cnot(anc.syn_x[j], anc.voted[j]);
      }
    } else {
      append_agreement_vote(circ, anc, anc.syn_x, mx, rounds);
    }
    for (std::size_t i = 0; i < n; ++i) {
      decode_pattern(circ, std::span(anc.voted).subspan(0, mx),
                     anc.decode_work, anc.onehot[i],
                     code.x_syndrome_of_z_error(i));
      circ.cz(anc.onehot[i], data.q[i]);  // Z correction
    }
    mark();
    return;
  }

  // --- Measurement-based baseline: identical extraction and decode rule,
  //     but the syndrome bits are measured and the vote/decode run as
  //     classical feed-forward. ---------------------------------------------
  std::vector<std::uint32_t> meas_z, meas_x;
  for (int r = 0; r < rounds; ++r)
    for (std::size_t row = 0; row < mz; ++row)
      meas_z.push_back(
          circ.measure_z(anc.syn_z[static_cast<std::size_t>(r) * mz + row]));
  for (int r = 0; r < rounds; ++r)
    for (std::size_t row = 0; row < mx; ++row)
      meas_x.push_back(
          circ.measure_z(anc.syn_x[static_cast<std::size_t>(r) * mx + row]));

  auto voted_syndrome = [rounds](const std::vector<std::uint32_t>& slots,
                                 std::size_t w, const std::vector<bool>& bits) {
    auto word = [&](int r) {
      unsigned s = 0;
      for (std::size_t row = 0; row < w; ++row)
        if (bits[slots[static_cast<std::size_t>(r) * w + row]])
          s |= 1u << row;
      return s;
    };
    if (rounds == 1) return word(0);
    const int needed = rounds / 2;  // agreeing OTHER rounds
    for (int r = 0; r + 1 < rounds; ++r) {
      int agree = 0;
      for (int b = 0; b < rounds; ++b)
        if (b != r && word(b) == word(r)) ++agree;
      if (agree >= needed) return word(r);
    }
    return 0u;  // no agreement: do nothing
  };
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned pz = code.z_syndrome_of_x_error(i);
    const auto fz = circ.add_classical_func(
        [meas_z, mz, pz, voted_syndrome](const std::vector<bool>& bits) {
          return voted_syndrome(meas_z, mz, bits) == pz;
        });
    circ.x_if(fz, data.q[i]);
    const unsigned px = code.x_syndrome_of_z_error(i);
    const auto fx = circ.add_classical_func(
        [meas_x, mx, px, voted_syndrome](const std::vector<bool>& bits) {
          return voted_syndrome(meas_x, mx, bits) == px;
        });
    circ.z_if(fx, data.q[i]);
  }
}

RecoveryAncillas allocate_recovery_ancillas(Layout& layout,
                                            const codes::CssCode& code,
                                            int rounds) {
  EQC_EXPECTS(rounds >= 1 && rounds % 2 == 1);
  const std::size_t mz = code.num_z_checks();
  const std::size_t mx = code.num_x_checks();
  const std::size_t maxw = std::max(mz, mx);
  // The vote scratch is sized for >= 3 rounds even when rounds == 1, so
  // the rounds=1 ablation keeps the historical footprint.
  const int vr = std::max(rounds, 3);

  RecoveryAncillas anc;
  anc.anc_block = layout.block(code);
  anc.prep_syn1 = layout.reg(mz);
  anc.prep_syn2 = layout.reg(mz);
  anc.prep_work = layout.reg(mz > 2 ? mz - 2 : 1);
  anc.prep_eq = layout.bit();
  anc.prep_repair = layout.reg(mz);
  anc.prep_n = allocate_ngate_ancillas(layout, code, 3);
  anc.prep_nout = layout.reg(code.n());
  anc.syn_z = layout.reg(static_cast<std::size_t>(rounds) * mz);
  anc.syn_x = layout.reg(static_cast<std::size_t>(rounds) * mx);
  anc.diff = layout.reg(maxw);
  std::size_t and_work = maxw > 2 ? maxw - 2 : 1;
  if (vr >= 5)
    and_work = std::max(
        and_work,
        codes::count_threshold_scratch(static_cast<std::size_t>(vr - 1)) + 1 +
            static_cast<std::size_t>(vr - 3));
  anc.and_work = layout.reg(and_work);
  anc.eq = layout.reg(static_cast<std::size_t>(vr) *
                      static_cast<std::size_t>(vr - 1) / 2);
  anc.use_bits = layout.reg(static_cast<std::size_t>(vr - 1));
  anc.voted = layout.reg(maxw);
  anc.onehot = layout.reg(code.n());
  anc.decode_work = layout.reg(maxw > 2 ? maxw - 2 : 1);
  return anc;
}

// --- Steane-block compatibility overloads ----------------------------------

void append_recovery(Circuit& circ, const codes::Block& data,
                     const RecoveryAncillas& anc,
                     const RecoveryOptions& options,
                     RecoveryRoundMarks* marks) {
  append_recovery(circ, codes::steane_code(), codes::CodeBlock::of(data), anc,
                  options, marks);
}

RecoveryAncillas allocate_recovery_ancillas(Layout& layout, int rounds) {
  return allocate_recovery_ancillas(layout, codes::steane_code(), rounds);
}

}  // namespace eqc::ftqc
