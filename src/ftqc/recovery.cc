#include "ftqc/recovery.h"

#include "codes/classical_logic.h"
#include "codes/hamming.h"
#include "common/assert.h"
#include "ftqc/layout.h"
#include "ftqc/ngate.h"

namespace eqc::ftqc {

namespace {

using circuit::Circuit;
using codes::Block;
using codes::Hamming74;
using codes::Steane;

// Copies the block's three Hamming parities onto classical bits (the
// parities are deterministic on any codeword-uniform state, so this never
// decoheres the block — the N-gate trick).
void read_hamming_parities(Circuit& circ, const Block& block,
                           const std::array<std::uint32_t, 3>& syn) {
  for (int row = 0; row < 3; ++row) {
    circ.prep_z(syn[row]);
    const unsigned mask = Hamming74::kCheckMasks[row];
    for (int i = 0; i < 7; ++i)
      if (mask & (1u << i)) circ.cnot(block.q[i], syn[row]);
  }
}

// onehot ^= [reg == pattern], pattern in 1..7 (reversible one-hot decode).
void decode_pattern(Circuit& circ, const std::array<std::uint32_t, 3>& reg,
                    std::uint32_t work, std::uint32_t onehot,
                    unsigned pattern) {
  circ.prep_z(work);
  circ.prep_z(onehot);
  for (int j = 0; j < 3; ++j)
    if (!(pattern & (1u << j))) circ.x(reg[j]);
  circ.ccx(reg[0], reg[1], work);
  circ.ccx(work, reg[2], onehot);
  for (int j = 0; j < 3; ++j)
    if (!(pattern & (1u << j))) circ.x(reg[j]);
}

// Fault-tolerant |+>_L ancilla: encode |0>_L, REPAIR any X burst the
// unverified encoder may have left (read the classical Hamming syndrome
// twice, and if the two reads agree, apply the decoded single-qubit X —
// the repaired pattern is then an X stabilizer), finally H^(x)7.
// Residual single-fault damage is at most one Z on the block plus benign
// X noise; neither can put more than one error on the data.
void prepare_plus_ancilla(Circuit& circ, const RecoveryAncillas& anc) {
  const Block& a = anc.anc_block;
  for (auto q : a.q) circ.prep_z(q);
  Steane::append_encode_zero(circ, a);

  // Two syndrome reads + agreement.
  read_hamming_parities(circ, a, anc.prep_syn1);
  read_hamming_parities(circ, a, anc.prep_syn2);
  // syn2 := syn1 XOR syn2 (difference); eq = NOR3(difference).
  for (int j = 0; j < 3; ++j) circ.cnot(anc.prep_syn1[j], anc.prep_syn2[j]);
  circ.prep_z(anc.prep_work);
  circ.prep_z(anc.prep_eq);
  for (int j = 0; j < 3; ++j) circ.x(anc.prep_syn2[j]);
  circ.ccx(anc.prep_syn2[0], anc.prep_syn2[1], anc.prep_work);
  circ.ccx(anc.prep_work, anc.prep_syn2[2], anc.prep_eq);
  // repair = eq ? syn1 : 0.
  for (int j = 0; j < 3; ++j) {
    circ.prep_z(anc.prep_repair[j]);
    circ.ccx(anc.prep_eq, anc.prep_syn1[j], anc.prep_repair[j]);
  }
  // Decode + classically controlled repair.
  for (int i = 0; i < 7; ++i) {
    decode_pattern(circ, anc.prep_repair, anc.prep_work, anc.onehot[i],
                   static_cast<unsigned>(i + 1));
    circ.cnot(anc.onehot[i], a.q[i]);
  }

  // The Hamming repair turns any burst into a codeword pattern, but a
  // weight-2 burst lands in the |1>_L coset (a logical X).  The N gate
  // reads the (deterministic) logical bit fault-tolerantly onto a 7-wide
  // classical register, which then controls a bit-wise X_L repair — the
  // paper's own classically-controlled-logical-operation technique.
  append_ngate(circ, a, anc.prep_nout, anc.prep_n, NGateOptions{});
  for (int i = 0; i < 7; ++i) circ.cnot(anc.prep_nout[i], a.q[i]);

  Steane::append_logical_h(circ, a);
}

// One Steane-style extraction: |+>_L ancilla block as transversal-CNOT
// target, then the ancilla's three Hamming parities onto classical bits.
void extract_syndrome(Circuit& circ, const Block& data,
                      const RecoveryAncillas& anc,
                      const std::array<std::uint32_t, 3>& syn) {
  prepare_plus_ancilla(circ, anc);
  Steane::append_logical_cnot(circ, data, anc.anc_block);
  read_hamming_parities(circ, anc.anc_block, syn);
}

std::array<std::uint32_t, 3> round_bits(const std::vector<std::uint32_t>& syn,
                                        int round) {
  return {syn[3 * round], syn[3 * round + 1], syn[3 * round + 2]};
}

// Word-level agreement vote: voted = s_a if two rounds agree on it, else 0.
//   eq_ab = [s_a == s_b] for the three pairs;
//   u1 = eq12 OR eq13  (use round 1's word),
//   u2 = eq23 AND NOT u1 (use round 2's word),
//   voted_j = u1*s1_j XOR u2*s2_j.
void append_agreement_vote(Circuit& circ, const RecoveryAncillas& anc,
                           const std::vector<std::uint32_t>& syn) {
  const auto s1 = round_bits(syn, 0);
  const auto s2 = round_bits(syn, 1);
  const auto s3 = round_bits(syn, 2);

  const std::array<std::array<std::uint32_t, 3>, 3> pairs_a = {s1, s1, s2};
  const std::array<std::array<std::uint32_t, 3>, 3> pairs_b = {s2, s3, s3};
  for (int pair = 0; pair < 3; ++pair) {
    // diff_j = a_j XOR b_j; eq = NOR3(diff).
    for (int j = 0; j < 3; ++j) {
      circ.prep_z(anc.diff[j]);
      circ.cnot(pairs_a[pair][j], anc.diff[j]);
      circ.cnot(pairs_b[pair][j], anc.diff[j]);
    }
    circ.prep_z(anc.and_work);
    circ.prep_z(anc.eq[pair]);
    circ.x(anc.diff[0]);
    circ.x(anc.diff[1]);
    circ.x(anc.diff[2]);
    circ.ccx(anc.diff[0], anc.diff[1], anc.and_work);
    circ.ccx(anc.and_work, anc.diff[2], anc.eq[pair]);
  }

  // u1 = eq12 OR eq13 = NOT(!eq12 AND !eq13).
  circ.prep_z(anc.use_bits[0]);
  circ.x(anc.eq[0]);
  circ.x(anc.eq[1]);
  circ.ccx(anc.eq[0], anc.eq[1], anc.use_bits[0]);
  circ.x(anc.use_bits[0]);
  circ.x(anc.eq[0]);  // restore
  circ.x(anc.eq[1]);
  // u2 = eq23 AND NOT u1.
  circ.prep_z(anc.use_bits[1]);
  circ.x(anc.use_bits[0]);
  circ.ccx(anc.eq[2], anc.use_bits[0], anc.use_bits[1]);
  circ.x(anc.use_bits[0]);

  for (int j = 0; j < 3; ++j) {
    circ.prep_z(anc.voted[j]);
    circ.ccx(anc.use_bits[0], s1[j], anc.voted[j]);
    circ.ccx(anc.use_bits[1], s2[j], anc.voted[j]);
  }
}

}  // namespace

void append_recovery(Circuit& circ, const Block& data,
                     const RecoveryAncillas& anc,
                     const RecoveryOptions& options,
                     RecoveryRoundMarks* marks) {
  const int rounds = options.rounds;
  EQC_EXPECTS(rounds == 1 || rounds == 3);
  EQC_EXPECTS(anc.syn_z.size() >= static_cast<std::size_t>(3 * rounds));
  EQC_EXPECTS(anc.syn_x.size() >= static_cast<std::size_t>(3 * rounds));
  EQC_EXPECTS(anc.onehot.size() == 7);
  auto mark = [&] {
    if (marks != nullptr) marks->op_boundaries.push_back(circ.size());
  };

  // --- Syndrome extraction. ------------------------------------------------
  // Z-type checks (X-error detection): direct.
  for (int r = 0; r < rounds; ++r) {
    extract_syndrome(circ, data, anc, round_bits(anc.syn_z, r));
    mark();
  }
  // X-type checks (Z-error detection): in a transversal-H frame.
  Steane::append_logical_h(circ, data);
  for (int r = 0; r < rounds; ++r) {
    extract_syndrome(circ, data, anc, round_bits(anc.syn_x, r));
    mark();
  }
  Steane::append_logical_h(circ, data);

  if (options.measurement_free) {
    // Z corrections from the Z-type syndrome.
    if (rounds == 1) {
      for (int j = 0; j < 3; ++j) {
        circ.prep_z(anc.voted[j]);
        circ.cnot(anc.syn_z[j], anc.voted[j]);
      }
    } else {
      append_agreement_vote(circ, anc, anc.syn_z);
    }
    for (int i = 0; i < 7; ++i) {
      decode_pattern(circ, anc.voted, anc.decode_work, anc.onehot[i],
                     static_cast<unsigned>(i + 1));
      circ.cnot(anc.onehot[i], data.q[i]);  // X correction
    }
    mark();
    // X-type syndrome -> Z corrections.
    if (rounds == 1) {
      for (int j = 0; j < 3; ++j) {
        circ.prep_z(anc.voted[j]);
        circ.cnot(anc.syn_x[j], anc.voted[j]);
      }
    } else {
      append_agreement_vote(circ, anc, anc.syn_x);
    }
    for (int i = 0; i < 7; ++i) {
      decode_pattern(circ, anc.voted, anc.decode_work, anc.onehot[i],
                     static_cast<unsigned>(i + 1));
      circ.cz(anc.onehot[i], data.q[i]);  // Z correction
    }
    mark();
    return;
  }

  // --- Measurement-based baseline: identical extraction and decode rule,
  //     but the syndrome bits are measured and the vote/decode run as
  //     classical feed-forward. ---------------------------------------------
  std::vector<std::uint32_t> mz, mx;
  for (int r = 0; r < rounds; ++r)
    for (int row = 0; row < 3; ++row)
      mz.push_back(circ.measure_z(anc.syn_z[3 * r + row]));
  for (int r = 0; r < rounds; ++r)
    for (int row = 0; row < 3; ++row)
      mx.push_back(circ.measure_z(anc.syn_x[3 * r + row]));

  auto voted_syndrome = [rounds](const std::vector<std::uint32_t>& slots,
                                 const std::vector<bool>& bits) {
    auto word = [&](int r) {
      unsigned s = 0;
      for (int row = 0; row < 3; ++row)
        if (bits[slots[3 * r + row]]) s |= 1u << row;
      return s;
    };
    if (rounds == 1) return word(0);
    const unsigned s1 = word(0), s2 = word(1), s3 = word(2);
    if (s1 == s2 || s1 == s3) return s1;
    if (s2 == s3) return s2;
    return 0u;  // no agreement: do nothing
  };
  for (int i = 0; i < 7; ++i) {
    const unsigned pattern = static_cast<unsigned>(i + 1);
    const auto fz = circ.add_classical_func(
        [mz, pattern, voted_syndrome](const std::vector<bool>& bits) {
          return voted_syndrome(mz, bits) == pattern;
        });
    circ.x_if(fz, data.q[i]);
    const auto fx = circ.add_classical_func(
        [mx, pattern, voted_syndrome](const std::vector<bool>& bits) {
          return voted_syndrome(mx, bits) == pattern;
        });
    circ.z_if(fx, data.q[i]);
  }
}

RecoveryAncillas allocate_recovery_ancillas(Layout& layout, int rounds) {
  RecoveryAncillas anc;
  anc.anc_block = layout.block();
  anc.prep_syn1 = {layout.bit(), layout.bit(), layout.bit()};
  anc.prep_syn2 = {layout.bit(), layout.bit(), layout.bit()};
  anc.prep_work = layout.bit();
  anc.prep_eq = layout.bit();
  anc.prep_repair = {layout.bit(), layout.bit(), layout.bit()};
  anc.prep_n = allocate_ngate_ancillas(layout, 3);
  anc.prep_nout = layout.reg(7);
  anc.syn_z = layout.reg(static_cast<std::size_t>(3 * rounds));
  anc.syn_x = layout.reg(static_cast<std::size_t>(3 * rounds));
  anc.diff = {layout.bit(), layout.bit(), layout.bit()};
  anc.and_work = layout.bit();
  anc.eq = {layout.bit(), layout.bit(), layout.bit()};
  anc.use_bits = {layout.bit(), layout.bit()};
  anc.voted = {layout.bit(), layout.bit(), layout.bit()};
  anc.onehot = layout.reg(7);
  anc.decode_work = layout.bit();
  return anc;
}

}  // namespace eqc::ftqc
