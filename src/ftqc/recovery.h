// Measurement-free error recovery (the paper's Sec. 5).
//
// Standard quantum error correction measures a syndrome, classically
// decodes it, and applies a correction.  Here — exactly as the paper
// prescribes — the syndrome ancilla's state is copied onto classical-basis
// bits (the N-gate technique), the decoder is a reversible classical
// circuit, and the correction is a layer of classically controlled Paulis.
// No measurement anywhere.
//
// Syndrome extraction is Steane-style: a |+>_L ancilla block is the TARGET
// of a transversal CNOT from the data, then its classical Z-type parities
// are copied onto classical syndrome bits.  This direction is intrinsically
// fault tolerant without verified ancillas: ancilla bit errors (even the
// burst patterns an unverified encoder can produce) only garble one round's
// syndrome, and ancilla phase errors touch at most one data qubit.  For a
// self-dual code (Steane) the X-type checks reuse the same machinery inside
// a transversal-H frame on the data; for a non-self-dual code (RM15, whose
// transversal H is not logical H) they instead use a repaired |0>_L ancilla
// as the CONTROL of the transversal CNOT: data phase errors copy onto the
// ancilla, a raw qubit-wise H turns them into bit errors, and the X-type
// parities read them out (H^(x)n |0>_L is a uniform codeword superposition
// of the dual code, on which those parities are deterministic).
//
// The syndrome is extracted `rounds` (2k+1) times and combined by
// WORD-level agreement ("use a syndrome that two rounds agree on, else do
// nothing"), which—unlike bitwise majority—is immune to the classic race
// where a data error lands mid-round and the mixed syndrome decodes to a
// wrong position.  For rounds >= 5 the rule generalizes to counting: use
// the first round whose word k other rounds agree with (a word reaching
// that count is unique when at most k of 2k+1 rounds are faulty).
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "codes/css_code.h"
#include "codes/steane.h"
#include "ftqc/ngate.h"

namespace eqc::ftqc {

struct RecoveryAncillas {
  /// Syndrome ancilla block (n qubits), re-prepared for every extraction.
  codes::CodeBlock anc_block;
  /// Classical scratch for the ancilla's burst repair: two Z-type syndrome
  /// reads (mz each), the NOR chain + agreement bit, and the gated repair
  /// syndrome.
  std::vector<std::uint32_t> prep_syn1;    ///< mz
  std::vector<std::uint32_t> prep_syn2;    ///< mz
  std::vector<std::uint32_t> prep_work;    ///< max(1, mz-2)
  std::uint32_t prep_eq = 0;
  std::vector<std::uint32_t> prep_repair;  ///< mz
  /// N-gate machinery for the ancilla's logical-parity repair: the burst
  /// repair (one-hot for perfect codes, information-set solve otherwise —
  /// see codes::z_repair_plan) maps any encoder burst into the code, but
  /// possibly into the wrong (|1>_L) coset; the N gate reads the logical
  /// bit onto an n-wide classical register which then controls a bit-wise
  /// X_L repair.
  NGateAncillas prep_n;
  std::vector<std::uint32_t> prep_nout;  ///< n
  /// Classical syndrome bits: [round*width + row], per check type.
  std::vector<std::uint32_t> syn_z;  ///< rounds*mz, Z-type (detect X errors)
  std::vector<std::uint32_t> syn_x;  ///< rounds*mx, X-type (detect Z errors)
  // Classical scratch for the word-agreement vote (reused per type).
  std::vector<std::uint32_t> diff;      ///< max(mz, mx)
  std::vector<std::uint32_t> and_work;  ///< NOR chains + count-threshold
  std::vector<std::uint32_t> eq;        ///< C(max(rounds,3), 2) pair bits
  std::vector<std::uint32_t> use_bits;  ///< max(rounds,3) - 1
  std::vector<std::uint32_t> voted;     ///< max(mz, mx)
  /// One-hot correction controls (reused per type) + decode scratch.
  std::vector<std::uint32_t> onehot;       ///< n
  std::vector<std::uint32_t> decode_work;  ///< max(1, max(mz,mx)-2)
};

struct RecoveryOptions {
  int rounds = 3;
  /// false: measurement-based baseline — the syndrome bits are measured
  /// and the identical agreement-vote + decode runs as classical
  /// feed-forward.
  bool measurement_free = true;
};

/// Probe hooks: op-count boundaries recorded while the recovery circuit is
/// built, so analysis tooling (the campaign engine's invariant tripwires)
/// can check mid-circuit invariants — e.g. data-block codespace membership
/// — between syndrome-extraction rounds and attribute the first violation
/// to a fault-site ordinal.
struct RecoveryRoundMarks {
  /// circ.size() after each completed syndrome-extraction round (Z-type
  /// rounds first, then the X-type rounds), then after each correction
  /// layer.  An op index below marks[i] belongs to stage i.
  std::vector<std::size_t> op_boundaries;
};

/// Appends one complete error-recovery step for `data`.  When `marks` is
/// non-null, stage boundaries are recorded for mid-circuit probing.
void append_recovery(circuit::Circuit& circ, const codes::CssCode& code,
                     const codes::CodeBlock& data, const RecoveryAncillas& anc,
                     const RecoveryOptions& options = {},
                     RecoveryRoundMarks* marks = nullptr);

RecoveryAncillas allocate_recovery_ancillas(class Layout& layout,
                                            const codes::CssCode& code,
                                            int rounds = 3);

// --- Steane-block compatibility overloads ----------------------------------

void append_recovery(circuit::Circuit& circ, const codes::Block& data,
                     const RecoveryAncillas& anc,
                     const RecoveryOptions& options = {},
                     RecoveryRoundMarks* marks = nullptr);

RecoveryAncillas allocate_recovery_ancillas(class Layout& layout,
                                            int rounds = 3);

}  // namespace eqc::ftqc
