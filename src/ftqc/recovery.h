// Measurement-free error recovery (the paper's Sec. 5).
//
// Standard quantum error correction measures a syndrome, classically
// decodes it, and applies a correction.  Here — exactly as the paper
// prescribes — the syndrome ancilla's state is copied onto classical-basis
// bits (the N-gate technique), the decoder is a reversible classical
// circuit, and the correction is a layer of classically controlled Paulis.
// No measurement anywhere.
//
// Syndrome extraction is Steane-style: a |+>_L ancilla block is the TARGET
// of a transversal CNOT from the data, then its three Hamming parities are
// copied onto classical syndrome bits.  This direction is intrinsically
// fault tolerant without verified ancillas: ancilla bit errors (even the
// weight-3 patterns an unverified encoder can produce) only garble one
// round's syndrome, and ancilla phase errors touch at most one data qubit.
// X-type checks reuse the same machinery inside a transversal-H frame on
// the data.
//
// The syndrome is extracted `rounds` (2k+1) times and combined by
// WORD-level agreement ("use a syndrome that two rounds agree on, else do
// nothing"), which—unlike bitwise majority—is immune to the classic race
// where a data error lands mid-round and the mixed syndrome decodes to a
// wrong position.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "codes/steane.h"
#include "ftqc/ngate.h"

namespace eqc::ftqc {

struct RecoveryAncillas {
  /// Syndrome ancilla block (|+>_L), re-prepared for every extraction.
  codes::Block anc_block;
  /// Classical scratch for the ancilla's burst repair: two syndrome reads
  /// (3+3), an agreement bit + AND work bit, and the gated repair syndrome.
  std::array<std::uint32_t, 3> prep_syn1;
  std::array<std::uint32_t, 3> prep_syn2;
  std::uint32_t prep_work;
  std::uint32_t prep_eq;
  std::array<std::uint32_t, 3> prep_repair;
  /// N-gate machinery for the ancilla's logical-parity repair: the Hamming
  /// repair maps any encoder burst into the code, but possibly into the
  /// wrong (|1>_L) coset; the N gate reads the logical bit onto a 7-wide
  /// classical register which then controls a bit-wise X_L repair.
  NGateAncillas prep_n;
  std::vector<std::uint32_t> prep_nout;  ///< width 7
  /// Classical syndrome bits: [round*3 + row], per check type.
  std::vector<std::uint32_t> syn_z;  ///< Z-type checks (detect X errors)
  std::vector<std::uint32_t> syn_x;  ///< X-type checks (detect Z errors)
  // Classical scratch for the word-agreement vote (reused per type).
  std::array<std::uint32_t, 3> diff;
  std::uint32_t and_work;
  std::array<std::uint32_t, 3> eq;   ///< s1==s2, s1==s3, s2==s3
  std::array<std::uint32_t, 2> use_bits;
  std::array<std::uint32_t, 3> voted;
  /// One-hot correction controls (reused per type) + decode scratch.
  std::vector<std::uint32_t> onehot;  ///< 7
  std::uint32_t decode_work;
};

struct RecoveryOptions {
  int rounds = 3;
  /// false: measurement-based baseline — the syndrome bits are measured
  /// and the identical agreement-vote + decode runs as classical
  /// feed-forward.
  bool measurement_free = true;
};

/// Probe hooks: op-count boundaries recorded while the recovery circuit is
/// built, so analysis tooling (the campaign engine's invariant tripwires)
/// can check mid-circuit invariants — e.g. data-block codespace membership
/// — between syndrome-extraction rounds and attribute the first violation
/// to a fault-site ordinal.
struct RecoveryRoundMarks {
  /// circ.size() after each completed syndrome-extraction round (Z-type
  /// rounds first, then the X-type rounds), then after each correction
  /// layer.  An op index below marks[i] belongs to stage i.
  std::vector<std::size_t> op_boundaries;
};

/// Appends one complete error-recovery step for `data`.  When `marks` is
/// non-null, stage boundaries are recorded for mid-circuit probing.
void append_recovery(circuit::Circuit& circ, const codes::Block& data,
                     const RecoveryAncillas& anc,
                     const RecoveryOptions& options = {},
                     RecoveryRoundMarks* marks = nullptr);

RecoveryAncillas allocate_recovery_ancillas(class Layout& layout,
                                            int rounds = 3);

}  // namespace eqc::ftqc
