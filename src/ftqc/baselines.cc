#include "ftqc/baselines.h"

#include "codes/hamming.h"
#include "common/assert.h"

namespace eqc::ftqc {

std::uint32_t append_measured_logical_readout(circuit::Circuit& circ,
                                              const codes::Block& block) {
  std::array<std::uint32_t, 7> slots;
  for (int i = 0; i < 7; ++i) slots[i] = circ.measure_z(block.q[i]);
  return circ.add_classical_func([slots](const std::vector<bool>& bits) {
    unsigned word = 0;
    for (int i = 0; i < 7; ++i)
      if (bits[slots[i]]) word |= 1u << i;
    return codes::Steane::decode_logical_bit(word);
  });
}

void append_measured_t_gadget(circuit::Circuit& circ, const codes::Block& data,
                              const codes::Block& special) {
  codes::Steane::append_logical_cnot(circ, data, special);
  const auto logical = append_measured_logical_readout(circ, special);
  // Conditioned logical S = bit-wise Sdg.
  for (int i = 0; i < 7; ++i) circ.sdg_if(logical, data.q[i]);
}

void append_measured_verification_ec(circuit::Circuit& circ,
                                     const codes::Block& block,
                                     std::uint32_t ancilla) {
  std::array<std::uint32_t, 3> sz, sx;
  for (int row = 0; row < 3; ++row) {
    const unsigned mask = codes::Hamming74::kCheckMasks[row];
    // Z-type check (simple, non-FT extraction — verification is noiseless).
    circ.prep_z(ancilla);
    for (int i = 0; i < 7; ++i)
      if (mask & (1u << i)) circ.cnot(block.q[i], ancilla);
    sz[row] = circ.measure_z(ancilla);
    // X-type check.
    circ.prep_z(ancilla);
    circ.h(ancilla);
    for (int i = 0; i < 7; ++i)
      if (mask & (1u << i)) circ.cnot(ancilla, block.q[i]);
    circ.h(ancilla);
    sx[row] = circ.measure_z(ancilla);
  }
  for (int i = 0; i < 7; ++i) {
    const unsigned pattern = static_cast<unsigned>(i + 1);
    const auto fz =
        circ.add_classical_func([sz, pattern](const std::vector<bool>& bits) {
          unsigned s = 0;
          for (int row = 0; row < 3; ++row)
            if (bits[sz[row]]) s |= 1u << row;
          return s == pattern;
        });
    circ.x_if(fz, block.q[i]);
    const auto fx =
        circ.add_classical_func([sx, pattern](const std::vector<bool>& bits) {
          unsigned s = 0;
          for (int row = 0; row < 3; ++row)
            if (bits[sx[row]]) s |= 1u << row;
          return s == pattern;
        });
    circ.z_if(fx, block.q[i]);
  }
}

void append_measured_toffoli_gadget_bare(circuit::Circuit& circ,
                                         const BareToffoliRegs& r) {
  circ.cnot(r.a, r.x);
  circ.cnot(r.b, r.y);
  circ.cnot(r.z, r.c);
  circ.h(r.z);

  const auto m1 = circ.measure_z(r.x);
  const auto m2 = circ.measure_z(r.y);
  const auto m3 = circ.measure_z(r.z);
  const auto f1 = circ.cbit_func(m1);
  const auto f2 = circ.cbit_func(m2);
  const auto f3 = circ.cbit_func(m3);
  const auto f12 = circ.add_classical_func(
      [m1, m2](const std::vector<bool>& bits) { return bits[m1] && bits[m2]; });

  // Phase corrections first (pre-correction A, B, C values), then values,
  // then cross terms — mirroring the measurement-free gadget exactly.
  circ.z_if(f3, r.c);
  circ.cz_if(f3, r.a, r.b);
  circ.x_if(f1, r.a);
  circ.x_if(f2, r.b);
  circ.cnot_if(f1, r.b, r.c);
  circ.cnot_if(f2, r.a, r.c);
  circ.x_if(f12, r.c);
}

}  // namespace eqc::ftqc
