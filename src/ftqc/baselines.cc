#include "ftqc/baselines.h"

#include <vector>

#include "common/assert.h"

namespace eqc::ftqc {

std::uint32_t append_measured_logical_readout(circuit::Circuit& circ,
                                              const codes::CssCode& code,
                                              const codes::CodeBlock& block) {
  EQC_EXPECTS(block.size() == code.n());
  std::vector<std::uint32_t> slots;
  slots.reserve(code.n());
  for (auto q : block.q) slots.push_back(circ.measure_z(q));
  // The registry codes are function-local statics, so capturing the pointer
  // is safe for the lifetime of any circuit.
  const codes::CssCode* c = &code;
  return circ.add_classical_func([slots, c](const std::vector<bool>& bits) {
    unsigned word = 0;
    for (std::size_t i = 0; i < slots.size(); ++i)
      if (bits[slots[i]]) word |= 1u << i;
    return c->decode_logical_bit(word);
  });
}

void append_measured_t_gadget(circuit::Circuit& circ,
                              const codes::CssCode& code,
                              const codes::CodeBlock& data,
                              const codes::CodeBlock& special) {
  EQC_EXPECTS(code.has_transversal_s());
  code.append_logical_cnot(circ, data, special);
  const auto logical = append_measured_logical_readout(circ, code, special);
  // Conditioned logical S = bit-wise Sdg.
  for (std::size_t i = 0; i < code.n(); ++i) circ.sdg_if(logical, data.q[i]);
}

void append_measured_verification_ec(circuit::Circuit& circ,
                                     const codes::CssCode& code,
                                     const codes::CodeBlock& block,
                                     std::uint32_t ancilla) {
  const std::size_t mz = code.num_z_checks();
  const std::size_t mx = code.num_x_checks();
  std::vector<std::uint32_t> sz(mz), sx(mx);
  // Z- and X-type checks interleaved row by row (one shared scratch qubit).
  for (std::size_t row = 0; row < std::max(mz, mx); ++row) {
    if (row < mz) {
      // Z-type check (simple, non-FT extraction — verification is
      // noiseless).
      const unsigned mask = code.z_check_mask(row);
      circ.prep_z(ancilla);
      for (std::size_t i = 0; i < code.n(); ++i)
        if (mask & (1u << i)) circ.cnot(block.q[i], ancilla);
      sz[row] = circ.measure_z(ancilla);
    }
    if (row < mx) {
      // X-type check.
      const unsigned mask = code.x_check_mask(row);
      circ.prep_z(ancilla);
      circ.h(ancilla);
      for (std::size_t i = 0; i < code.n(); ++i)
        if (mask & (1u << i)) circ.cnot(ancilla, block.q[i]);
      circ.h(ancilla);
      sx[row] = circ.measure_z(ancilla);
    }
  }
  for (std::size_t i = 0; i < code.n(); ++i) {
    const unsigned pz = code.z_syndrome_of_x_error(i);
    const auto fz =
        circ.add_classical_func([sz, pz](const std::vector<bool>& bits) {
          unsigned s = 0;
          for (std::size_t row = 0; row < sz.size(); ++row)
            if (bits[sz[row]]) s |= 1u << row;
          return s == pz;
        });
    circ.x_if(fz, block.q[i]);
    const unsigned px = code.x_syndrome_of_z_error(i);
    const auto fx =
        circ.add_classical_func([sx, px](const std::vector<bool>& bits) {
          unsigned s = 0;
          for (std::size_t row = 0; row < sx.size(); ++row)
            if (bits[sx[row]]) s |= 1u << row;
          return s == px;
        });
    circ.z_if(fx, block.q[i]);
  }
}

void append_measured_toffoli_gadget_bare(circuit::Circuit& circ,
                                         const BareToffoliRegs& r) {
  circ.cnot(r.a, r.x);
  circ.cnot(r.b, r.y);
  circ.cnot(r.z, r.c);
  circ.h(r.z);

  const auto m1 = circ.measure_z(r.x);
  const auto m2 = circ.measure_z(r.y);
  const auto m3 = circ.measure_z(r.z);
  const auto f1 = circ.cbit_func(m1);
  const auto f2 = circ.cbit_func(m2);
  const auto f3 = circ.cbit_func(m3);
  const auto f12 = circ.add_classical_func(
      [m1, m2](const std::vector<bool>& bits) { return bits[m1] && bits[m2]; });

  // Phase corrections first (pre-correction A, B, C values), then values,
  // then cross terms — mirroring the measurement-free gadget exactly.
  circ.z_if(f3, r.c);
  circ.cz_if(f3, r.a, r.b);
  circ.x_if(f1, r.a);
  circ.x_if(f2, r.b);
  circ.cnot_if(f1, r.b, r.c);
  circ.cnot_if(f2, r.a, r.c);
  circ.x_if(f12, r.c);
}

// --- Steane-block compatibility overloads ----------------------------------

std::uint32_t append_measured_logical_readout(circuit::Circuit& circ,
                                              const codes::Block& block) {
  return append_measured_logical_readout(circ, codes::steane_code(),
                                         codes::CodeBlock::of(block));
}

void append_measured_t_gadget(circuit::Circuit& circ, const codes::Block& data,
                              const codes::Block& special) {
  append_measured_t_gadget(circ, codes::steane_code(),
                           codes::CodeBlock::of(data),
                           codes::CodeBlock::of(special));
}

void append_measured_verification_ec(circuit::Circuit& circ,
                                     const codes::Block& block,
                                     std::uint32_t ancilla) {
  append_measured_verification_ec(circ, codes::steane_code(),
                                  codes::CodeBlock::of(block), ancilla);
}

}  // namespace eqc::ftqc
