// Measurement-*based* baseline protocols — the constructions the paper
// modifies.  They are what Shor'96 / Boykin-et-al'99 would run on a machine
// where individual qubits CAN be measured, and serve as the comparison
// point for every experiment: the paper's claim is that removing the
// measurements costs nothing in fault-tolerance order.
#pragma once

#include "circuit/circuit.h"
#include "codes/css_code.h"
#include "codes/steane.h"
#include "ftqc/ft_toffoli.h"

namespace eqc::ftqc {

/// Measures all n qubits of `block` and returns a classical-function id
/// that evaluates to the (syndrome-corrected) logical bit.
std::uint32_t append_measured_logical_readout(circuit::Circuit& circ,
                                              const codes::CssCode& code,
                                              const codes::CodeBlock& block);

/// Measurement-based T gadget: transversal CNOT(data -> special holding
/// |psi_0>), measure the special block, classically conditioned logical S
/// (bit-wise Sdg; requires a transversal-S code).
void append_measured_t_gadget(circuit::Circuit& circ,
                              const codes::CssCode& code,
                              const codes::CodeBlock& data,
                              const codes::CodeBlock& special);

/// Verification-only: one round of noiseless error correction appended as
/// a circuit (simple measured syndrome extraction + conditioned Paulis),
/// usable on the state-vector backend where Tableau::measure_pauli is not
/// available.  `ancilla` is one scratch qubit, re-prepared per check.
void append_measured_verification_ec(circuit::Circuit& circ,
                                     const codes::CssCode& code,
                                     const codes::CodeBlock& block,
                                     std::uint32_t ancilla);

/// Measurement-based Toffoli gadget at the logical (bare) level: the
/// original Shor/Preskill protocol with real measurements + feed-forward.
/// Uses regs.{a,b,c,x,y,z}; the m bits are unused (kept for symmetry).
void append_measured_toffoli_gadget_bare(circuit::Circuit& circ,
                                         const BareToffoliRegs& regs);

// --- Steane-block compatibility overloads ----------------------------------

std::uint32_t append_measured_logical_readout(circuit::Circuit& circ,
                                              const codes::Block& block);

void append_measured_t_gadget(circuit::Circuit& circ, const codes::Block& data,
                              const codes::Block& special);

void append_measured_verification_ec(circuit::Circuit& circ,
                                     const codes::Block& block,
                                     std::uint32_t ancilla);

}  // namespace eqc::ftqc
