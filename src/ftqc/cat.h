// Measurement-free cat-state preparation with verification.
//
// An unverified cat fan-out is not fault tolerant: one X fault on the
// fan-out source mid-preparation flips a whole suffix of the cat, and when
// the cat later controls transversal couplings it deposits a multi-qubit
// error into the data.  Shor's original scheme measures verification bits
// and re-prepares on failure — a measurement.
//
// Here the verification is measurement-free, in the paper's own style:
// the pairwise agreement bits v_j = cat_0 XOR cat_j are *classical* (they
// are 0 on both cat branches and are deterministically flipped by X
// errors), so they can be computed onto classical ancilla bits and used
// directly as controls of the repair X(cat_j).  For ANY X-error pattern e
// this maps e -> e_0 * (1...1), which acts trivially on the cat.  No
// outcome is ever observed and no re-preparation loop is needed.
#pragma once

#include <cstdint>
#include <span>

#include "circuit/circuit.h"

namespace eqc::ftqc {

/// Plain (unverified) cat on `cat`: H + fan-out CNOTs.  Ablation baseline.
void append_cat_prep(circuit::Circuit& circ,
                     std::span<const std::uint32_t> cat);

/// Verified cat: prep + measurement-free verification-and-repair.
/// `verify` must hold cat.size()-1 classical ancilla bits (re-prepared
/// here, left dirty).
void append_verified_cat(circuit::Circuit& circ,
                         std::span<const std::uint32_t> cat,
                         std::span<const std::uint32_t> verify);

}  // namespace eqc::ftqc
