// The paper's N gate (Fig. 1): a fault-tolerant quantum-to-classical
// controlled-NOT that copies the logical basis value of an encoded quantum
// ancilla onto a classical repetition-code register, WITHOUT measurement.
//
//   |0>_L (x) |q>  ->  |0>_L (x) |q>
//   |0>_L (x) |q^1(bar)> ... (Eq. (1) of the paper)
//
// One repetition (N1) computes into a fresh target bit
//     b  ^=  parity(block)  XOR  OR(syndrome bits)
// where the syndrome bits are the code's classical Z-type parity checks of
// the block (the three Hamming checks for Steane, ten checks for RM15).
// The OR-correction makes the copy immune to any single bit error already
// present on the quantum ancilla; repeating N1 2k+1 times and majority
// voting protects against faults inside N1 itself.  Phase errors flow only
// backwards (classical ancilla -> quantum ancilla), never into quantum data
// that the classical register later controls — the paper's key observation.
//
// The builders are generic over codes::CssCode; the Block-based overloads
// keep the historical Steane signatures and emit byte-identical circuits
// (the golden-equivalence contract).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "circuit/circuit.h"
#include "codes/css_code.h"
#include "codes/steane.h"

namespace eqc::ftqc {

struct NGateAncillas {
  /// 2k+1 fresh target bits, one per repetition.
  std::vector<std::uint32_t> copies;
  /// Syndrome-check bits, one per Z-type check (re-prepared every
  /// repetition).
  std::vector<std::uint32_t> syndrome;
  /// Work bits for the OR gadget: one fewer than the syndrome width
  /// (re-prepared every repetition).
  std::vector<std::uint32_t> work;
  /// Counter scratch for the 2k+1 >= 5 majority vote (see
  /// codes::majority_counter_scratch); empty for repetitions <= 3.
  std::vector<std::uint32_t> maj_scratch;
};

struct NGateOptions {
  /// Number of N1 repetitions: any odd 2k+1 >= 1.  The paper's 3 suffices
  /// for k = 1 under its per-location single-qubit fault model; 5 (k' = 2,
  /// with an independent majority counter per output bit) also absorbs the
  /// correlated two-qubit gate faults documented in E1(b').
  int repetitions = 3;
  /// Ablation switch: disable the syndrome check inside N1.  Without it a
  /// single pre-existing bit error on the quantum ancilla corrupts *every*
  /// repetition and defeats the majority vote.
  bool syndrome_check = true;
};

/// One repetition of the Fig. 1 circuit; prepares target/syndrome/work to
/// |0> itself, so ancillas can be reused across repetitions.
void append_n1(circuit::Circuit& circ, const codes::CssCode& code,
               const codes::CodeBlock& source, std::uint32_t target,
               std::span<const std::uint32_t> syndrome,
               std::span<const std::uint32_t> work, bool syndrome_check);

/// Full N gate: repetitions of N1 followed by a majority vote copied into
/// every bit of `out` ("copy the result into seven bits").  `out` may alias
/// nothing in `anc`; out bits are prepared to |0> here.
void append_ngate(circuit::Circuit& circ, const codes::CssCode& code,
                  const codes::CodeBlock& source,
                  std::span<const std::uint32_t> out, const NGateAncillas& anc,
                  const NGateOptions& options = {});

/// Allocates the ancillas append_ngate needs for `code`.
NGateAncillas allocate_ngate_ancillas(class Layout& layout,
                                      const codes::CssCode& code,
                                      int repetitions = 3);

// --- Steane-block compatibility overloads ----------------------------------

void append_n1(circuit::Circuit& circ, const codes::Block& source,
               std::uint32_t target,
               const std::array<std::uint32_t, 3>& syndrome,
               const std::array<std::uint32_t, 2>& work, bool syndrome_check);

void append_ngate(circuit::Circuit& circ, const codes::Block& source,
                  std::span<const std::uint32_t> out, const NGateAncillas& anc,
                  const NGateOptions& options = {});

NGateAncillas allocate_ngate_ancillas(class Layout& layout,
                                      int repetitions = 3);

}  // namespace eqc::ftqc
