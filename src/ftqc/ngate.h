// The paper's N gate (Fig. 1): a fault-tolerant quantum-to-classical
// controlled-NOT that copies the logical basis value of an encoded quantum
// ancilla onto a classical repetition-code register, WITHOUT measurement.
//
//   |0>_L (x) |q>  ->  |0>_L (x) |q>
//   |0>_L (x) |q^1(bar)> ... (Eq. (1) of the paper)
//
// One repetition (N1) computes into a fresh target bit
//     b  ^=  parity(block)  XOR  OR(syndrome bits)
// where the three syndrome bits are the Hamming parity checks of the block.
// The OR-correction makes the copy immune to any single bit error already
// present on the quantum ancilla; repeating N1 2k+1 times and majority
// voting protects against faults inside N1 itself.  Phase errors flow only
// backwards (classical ancilla -> quantum ancilla), never into quantum data
// that the classical register later controls — the paper's key observation.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "circuit/circuit.h"
#include "codes/steane.h"

namespace eqc::ftqc {

struct NGateAncillas {
  /// 2k+1 fresh target bits, one per repetition.
  std::vector<std::uint32_t> copies;
  /// Syndrome-check bits (re-prepared every repetition).
  std::array<std::uint32_t, 3> syndrome;
  /// Work bits for the OR gadget (re-prepared every repetition).
  std::array<std::uint32_t, 2> work;
  /// Counter scratch for the majority-of-5 vote (repetitions == 5 only):
  /// 3 counter bits + 2 work bits, re-prepared per output bit.
  std::array<std::uint32_t, 5> maj5_scratch{};
};

struct NGateOptions {
  /// Number of N1 repetitions.  The paper's 2k+1 = 3 suffices for k = 1
  /// under its per-location single-qubit fault model; 5 repetitions
  /// (k' = 2, with an independent majority counter per output bit) also
  /// absorb the correlated two-qubit gate faults documented in E1(b').
  int repetitions = 3;
  /// Ablation switch: disable the Hamming syndrome check inside N1.
  /// Without it a single pre-existing bit error on the quantum ancilla
  /// corrupts *every* repetition and defeats the majority vote.
  bool syndrome_check = true;
};

/// One repetition of the Fig. 1 circuit; prepares target/syndrome/work to
/// |0> itself, so ancillas can be reused across repetitions.
void append_n1(circuit::Circuit& circ, const codes::Block& source,
               std::uint32_t target,
               const std::array<std::uint32_t, 3>& syndrome,
               const std::array<std::uint32_t, 2>& work, bool syndrome_check);

/// Full N gate: repetitions of N1 followed by a majority vote copied into
/// every bit of `out` ("copy the result into seven bits").  `out` may alias
/// nothing in `anc`; out bits are prepared to |0> here.
void append_ngate(circuit::Circuit& circ, const codes::Block& source,
                  std::span<const std::uint32_t> out, const NGateAncillas& anc,
                  const NGateOptions& options = {});

/// Convenience: number of distinct ancilla qubits append_ngate needs.
NGateAncillas allocate_ngate_ancillas(class Layout& layout,
                                      int repetitions = 3);

}  // namespace eqc::ftqc
