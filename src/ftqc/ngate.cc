#include "ftqc/ngate.h"

#include <vector>

#include "codes/classical_logic.h"
#include "common/assert.h"
#include "ftqc/layout.h"

namespace eqc::ftqc {

void append_n1(circuit::Circuit& circ, const codes::CssCode& code,
               const codes::CodeBlock& source, std::uint32_t target,
               std::span<const std::uint32_t> syndrome,
               std::span<const std::uint32_t> work, bool syndrome_check) {
  const std::size_t mz = code.num_z_checks();
  EQC_EXPECTS(source.size() == code.n());
  EQC_EXPECTS(!syndrome_check ||
              (syndrome.size() >= mz && work.size() + 1 >= mz));
  circ.prep_z(target);
  if (syndrome_check) {
    for (std::size_t row = 0; row < mz; ++row) circ.prep_z(syndrome[row]);
    for (std::size_t j = 0; j + 1 < mz; ++j) circ.prep_z(work[j]);
    // Classical Z-type parity checks of the quantum ancilla into the
    // syndrome bits.
    for (std::size_t row = 0; row < mz; ++row) {
      const unsigned mask = code.z_check_mask(row);
      for (std::size_t i = 0; i < code.n(); ++i)
        if (mask & (1u << i)) circ.cnot(source.q[i], syndrome[row]);
    }
  }
  // Parity of the whole block = logical Z value (corrected below).
  for (std::size_t i = 0; i < code.n(); ++i) circ.cnot(source.q[i], target);
  if (syndrome_check) {
    // b ^= parity(min_weight_error(s)): pre-existing bit errors flip the
    // block parity by their weight, and the parity of the error class the
    // syndrome decodes to cancels that flip.  OR(s) computes exactly that
    // for every ODD-weight correctable error — all single-qubit errors
    // and weight-3 bursts — and no LINEAR compensation can do better on a
    // non-perfect code (it would need the all-ones word in H_z's row
    // space, impossible when the logical coset of ker H_z has odd-weight
    // elements, as for RM15).  The only EVEN-weight errors a single fault
    // can leave on the source block are weight-2 pairs inside one burst-
    // repair register bit's fanout set (codes::z_repair_plan); on those
    // few syndromes — distinct from every odd-error syndrome because the
    // code corrects weight 2 — a match term cancels the OR, so b reads
    // parity(error) = 0 and no bogus X_L fires downstream.  Perfect codes
    // have an empty pair set (seed circuits unchanged).
    const std::vector<unsigned> pair_syndromes =
        codes::z_repair_even_pair_syndromes(code);
    for (const unsigned pair_syndrome : pair_syndromes)
      codes::append_match_pattern(circ, syndrome.subspan(0, mz), pair_syndrome,
                                  work.subspan(0, mz - 1), target,
                                  /*prep_target=*/false);
    // The match chains leave the work bits dirty; the OR needs them clean.
    if (!pair_syndromes.empty())
      for (std::size_t j = 0; j + 1 < mz; ++j) circ.prep_z(work[j]);
    codes::append_or_into(circ, syndrome.subspan(0, mz),
                          work.subspan(0, mz - 1), target);
  }
}

void append_ngate(circuit::Circuit& circ, const codes::CssCode& code,
                  const codes::CodeBlock& source,
                  std::span<const std::uint32_t> out, const NGateAncillas& anc,
                  const NGateOptions& options) {
  EQC_EXPECTS(options.repetitions >= 1 && options.repetitions % 2 == 1);
  EQC_EXPECTS(anc.copies.size() >=
              static_cast<std::size_t>(options.repetitions));
  EQC_EXPECTS(!out.empty());

  for (int r = 0; r < options.repetitions; ++r)
    append_n1(circ, code, source, anc.copies[static_cast<std::size_t>(r)],
              anc.syndrome, anc.work, options.syndrome_check);

  for (auto o : out) circ.prep_z(o);
  if (options.repetitions == 1) {
    codes::append_fanout(circ, anc.copies[0], out);
  } else if (options.repetitions == 3) {
    codes::append_majority3(circ, anc.copies[0], anc.copies[1], anc.copies[2],
                            out);
  } else {
    // One independent population count per output bit — no intermediate bit
    // is shared between output bits, so even a correlated multi-qubit gate
    // fault damages at most one output bit and one copy.
    for (auto o : out)
      codes::append_majority_counter(circ, anc.copies, options.repetitions,
                                     anc.maj_scratch, o);
  }
}

NGateAncillas allocate_ngate_ancillas(Layout& layout,
                                      const codes::CssCode& code,
                                      int repetitions) {
  EQC_EXPECTS(repetitions >= 1 && repetitions % 2 == 1);
  NGateAncillas anc;
  anc.copies = layout.reg(static_cast<std::size_t>(repetitions));
  anc.syndrome = layout.reg(code.num_z_checks());
  anc.work = layout.reg(code.num_z_checks() - 1);
  if (repetitions >= 5)
    anc.maj_scratch = layout.reg(codes::majority_counter_scratch(repetitions));
  return anc;
}

// --- Steane-block compatibility overloads ----------------------------------

void append_n1(circuit::Circuit& circ, const codes::Block& source,
               std::uint32_t target,
               const std::array<std::uint32_t, 3>& syndrome,
               const std::array<std::uint32_t, 2>& work, bool syndrome_check) {
  append_n1(circ, codes::steane_code(), codes::CodeBlock::of(source), target,
            syndrome, work, syndrome_check);
}

void append_ngate(circuit::Circuit& circ, const codes::Block& source,
                  std::span<const std::uint32_t> out, const NGateAncillas& anc,
                  const NGateOptions& options) {
  append_ngate(circ, codes::steane_code(), codes::CodeBlock::of(source), out,
               anc, options);
}

NGateAncillas allocate_ngate_ancillas(Layout& layout, int repetitions) {
  return allocate_ngate_ancillas(layout, codes::steane_code(), repetitions);
}

}  // namespace eqc::ftqc
