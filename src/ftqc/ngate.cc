#include "ftqc/ngate.h"

#include "codes/classical_logic.h"
#include "codes/hamming.h"
#include "common/assert.h"
#include "ftqc/layout.h"

namespace eqc::ftqc {

void append_n1(circuit::Circuit& circ, const codes::Block& source,
               std::uint32_t target,
               const std::array<std::uint32_t, 3>& syndrome,
               const std::array<std::uint32_t, 2>& work,
               bool syndrome_check) {
  circ.prep_z(target);
  if (syndrome_check) {
    for (auto s : syndrome) circ.prep_z(s);
    for (auto w : work) circ.prep_z(w);
    // Hamming parity checks of the quantum ancilla into the syndrome bits.
    for (int row = 0; row < 3; ++row) {
      const unsigned mask = codes::Hamming74::kCheckMasks[row];
      for (int i = 0; i < 7; ++i)
        if (mask & (1u << i)) circ.cnot(source.q[i], syndrome[row]);
    }
  }
  // Parity of the whole block = logical Z value (corrected below).
  for (int i = 0; i < 7; ++i) circ.cnot(source.q[i], target);
  if (syndrome_check) {
    // b ^= OR(s): a single pre-existing bit error flips the block parity
    // *and* raises a non-zero syndrome, so the two cancel.
    codes::append_or3_into(circ, syndrome[0], syndrome[1], syndrome[2],
                           work[0], work[1], target);
  }
}

namespace {

// target ^= MAJ(copies[0..4]) via an independent 3-bit population counter —
// no intermediate bit is shared between output bits, so even a correlated
// multi-qubit gate fault damages at most one output bit and one copy.
void append_majority5_into(circuit::Circuit& circ,
                           std::span<const std::uint32_t> copies,
                           const std::array<std::uint32_t, 5>& scratch,
                           std::uint32_t target) {
  const auto c0 = scratch[0], c1 = scratch[1], c2 = scratch[2];
  const auto w = scratch[3], w2 = scratch[4];
  for (auto q : scratch) circ.prep_z(q);
  for (int r = 0; r < 5; ++r) {
    const auto b = copies[r];
    // counter += b  (3-bit ripple increment, controlled on b).
    circ.ccx(c1, c0, w);
    circ.ccx(b, w, c2);
    circ.ccx(c1, c0, w);  // uncompute the carry conjunction
    circ.ccx(b, c0, c1);
    circ.cnot(b, c0);
  }
  // MAJ = count >= 3 = c2 OR (c1 AND c0).
  circ.ccx(c1, c0, w2);
  circ.x(c2);
  circ.x(w2);
  circ.ccx(c2, w2, target);  // target ^= NOR(c2, w2)
  circ.x(target);            // target ^= 1  => target ^= OR(c2, w2)
  circ.x(c2);
  circ.x(w2);
}

}  // namespace

void append_ngate(circuit::Circuit& circ, const codes::Block& source,
                  std::span<const std::uint32_t> out, const NGateAncillas& anc,
                  const NGateOptions& options) {
  EQC_EXPECTS(options.repetitions == 1 || options.repetitions == 3 ||
              options.repetitions == 5);
  EQC_EXPECTS(anc.copies.size() >= static_cast<std::size_t>(options.repetitions));
  EQC_EXPECTS(!out.empty());

  for (int r = 0; r < options.repetitions; ++r)
    append_n1(circ, source, anc.copies[r], anc.syndrome, anc.work,
              options.syndrome_check);

  for (auto o : out) circ.prep_z(o);
  if (options.repetitions == 1) {
    codes::append_fanout(circ, anc.copies[0], out);
  } else if (options.repetitions == 3) {
    codes::append_majority3(circ, anc.copies[0], anc.copies[1], anc.copies[2],
                            out);
  } else {
    for (auto o : out)
      append_majority5_into(circ, anc.copies, anc.maj5_scratch, o);
  }
}

NGateAncillas allocate_ngate_ancillas(Layout& layout, int repetitions) {
  NGateAncillas anc;
  anc.copies = layout.reg(static_cast<std::size_t>(repetitions));
  anc.syndrome = {layout.bit(), layout.bit(), layout.bit()};
  anc.work = {layout.bit(), layout.bit()};
  if (repetitions == 5)
    anc.maj5_scratch = {layout.bit(), layout.bit(), layout.bit(),
                        layout.bit(), layout.bit()};
  return anc;
}

}  // namespace eqc::ftqc
