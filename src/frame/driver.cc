#include "frame/driver.h"

#include <algorithm>
#include <vector>

#include "common/assert.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace eqc::frame {

namespace {

/// Trials folded into a result counter.  Stable: a completed run folds the
/// same total regardless of jobs, batch grouping or resume pattern.
obs::Counter& trials_counter() {
  static obs::Counter& c = obs::counter("frames.trials", obs::Det::Stable);
  return c;
}
/// Batches executed.  Runtime: batch geometry depends on block boundaries
/// and resume points (a resumed run re-tiles the remaining index range).
obs::Counter& batches_counter() {
  static obs::Counter& c = obs::counter("frames.batches", obs::Det::Runtime);
  return c;
}
/// Oracle words evaluated (== batches; kept separate so a future oracle
/// cache shows up as words < batches).  Runtime for the same reason.
obs::Counter& words_counter() {
  static obs::Counter& c = obs::counter("frames.words", obs::Det::Runtime);
  return c;
}

/// Runs the batch tiling [first, first + count) and returns the packed
/// failure words in tile order (tile t covers trial indices
/// first + 64 t .. — the fixed tiling that makes resume points and worker
/// counts irrelevant to the fold).
std::vector<std::uint64_t> run_block(const FrameProgram& prog,
                                     const noise::NoiseModel& model,
                                     std::uint64_t seed, std::uint64_t first,
                                     std::uint64_t count,
                                     const BatchOracle& failed,
                                     unsigned workers) {
  const std::uint64_t tiles = (count + FrameBatch::kLanes - 1) /
                              FrameBatch::kLanes;
  std::vector<std::uint64_t> words(static_cast<std::size_t>(tiles), 0);
  batches_counter().add(tiles);
  words_counter().add(tiles);
  // Shard by worker (not by tile) so each worker reuses one FrameBatch
  // across its tiles — reset_state() keeps vector capacity, so steady-state
  // tiles allocate nothing.  words[t] still depends only on t, so the fold
  // stays byte-identical for any worker count.
  const unsigned shards = static_cast<unsigned>(
      std::min<std::uint64_t>(tiles, std::uint64_t{workers}));
  parallel::for_each_shard(shards, workers, [&](unsigned w) {
    FrameBatch batch(prog);
    for (std::uint64_t t = w; t < tiles; t += shards) {
      const std::uint64_t start = first + t * FrameBatch::kLanes;
      const unsigned lanes = static_cast<unsigned>(
          std::min<std::uint64_t>(FrameBatch::kLanes, first + count - start));
      batch.run_stochastic(model, seed, start, lanes);
      words[static_cast<std::size_t>(t)] = failed(batch) & batch.active_mask();
    }
  });
  return words;
}

void fold_words(FailureCounter& counter, const std::vector<std::uint64_t>& ws,
                std::uint64_t count) {
  std::uint64_t i = 0;
  for (std::uint64_t w : ws)
    for (unsigned l = 0; l < FrameBatch::kLanes && i < count; ++l, ++i)
      counter.add(((w >> l) & 1) != 0);
}

}  // namespace

FailureCounter run_trials(const FrameProgram& prog,
                          const noise::NoiseModel& model, std::uint64_t trials,
                          std::uint64_t seed, const BatchOracle& failed,
                          unsigned jobs) {
  EQC_EXPECTS(failed != nullptr);
  const unsigned workers = parallel::resolve_jobs(jobs);
  obs::Span span("frames.run_trials");
  span.arg("trials", trials);
  trials_counter().add(trials);

  FailureCounter counter;
  if (trials == 0) return counter;
  const auto words = run_block(prog, model, seed, 0, trials, failed, workers);
  fold_words(counter, words, trials);
  return counter;
}

noise::McRunResult run_trials_resumable(const FrameProgram& prog,
                                        const noise::NoiseModel& model,
                                        std::uint64_t trials,
                                        std::uint64_t seed,
                                        const BatchOracle& failed,
                                        const noise::McResumableOptions& opt) {
  EQC_EXPECTS(failed != nullptr);
  EQC_EXPECTS(opt.start_index <= trials);
  const unsigned workers = parallel::resolve_jobs(opt.jobs);
  // A frame batch is 64x coarser than a per-trial evaluation, so the auto
  // block scales the per-trial driver's choice by the lane width.
  const std::uint64_t block =
      opt.block != 0 ? opt.block
                     : std::max<std::uint64_t>(
                           std::uint64_t{workers} * 8 * FrameBatch::kLanes,
                           64);

  noise::McRunResult res;
  res.counter = opt.initial;
  std::uint64_t next = opt.start_index;
  while (next < trials) {
    if (opt.stop != nullptr && opt.stop->load(std::memory_order_relaxed)) {
      res.next_index = next;
      res.complete = false;
      return res;
    }
    const std::uint64_t count = std::min(block, trials - next);
    obs::Span span("frames.block");
    span.arg("start", next).arg("count", count);
    trials_counter().add(count);
    const auto words =
        run_block(prog, model, seed, next, count, failed, workers);
    fold_words(res.counter, words, count);
    next += count;
    if (opt.on_block) opt.on_block(noise::McProgress{next, res.counter});
  }
  res.next_index = next;
  res.complete = true;
  return res;
}

}  // namespace eqc::frame
