#include "frame/frames.h"

#include <algorithm>
#include <utility>

#include "circuit/schedule.h"
#include "circuit/tab_backend.h"
#include "common/assert.h"

namespace eqc::frame {

namespace {

constexpr std::uint32_t kNoFunc = ~std::uint32_t{0};

std::vector<std::uint32_t> op_qubits(const circuit::Op& op) {
  std::vector<std::uint32_t> qs;
  for (int k = 0; k < circuit::arity(op.kind); ++k) qs.push_back(op.q[k]);
  return qs;
}

circuit::FaultSite::Kind site_kind(circuit::OpKind k) {
  switch (k) {
    case circuit::OpKind::PrepZ:
    case circuit::OpKind::PrepX:
      return circuit::FaultSite::Kind::PrepOutput;
    case circuit::OpKind::MeasureZ:
      return circuit::FaultSite::Kind::MeasureInput;
    case circuit::OpKind::Idle:
      return circuit::FaultSite::Kind::Idle;
    default:
      return circuit::FaultSite::Kind::GateOutput;
  }
}

std::uint64_t bcast(bool b) { return b ? ~std::uint64_t{0} : std::uint64_t{0}; }

}  // namespace

// --- compilation -------------------------------------------------------------

FrameProgram::FrameProgram(std::size_t num_qubits,
                           const circuit::Circuit& prep,
                           const circuit::Circuit& gadget,
                           std::uint64_t ref_seed)
    : n_(num_qubits),
      prep_cbits_(prep.num_cbits()),
      gadget_cbits_(gadget.num_cbits()),
      ref_seed_(ref_seed) {
  EQC_EXPECTS(n_ >= prep.num_qubits() && n_ >= gadget.num_qubits());
  circuit::TabBackend ref(n_, Rng(ref_seed));
  std::vector<bool> ref_cb(prep.num_cbits(), false);
  walk(prep, ref, ref_cb, /*emit_sites=*/false);
  instrs_.push_back(Instr{IKind::BeginGadget});
  ref_cb.assign(gadget.num_cbits(), false);
  walk(gadget, ref, ref_cb, /*emit_sites=*/true);
  ref_final_ = ref.tableau();
  ref_cbits_ = ref_cb;
  ref_rng_after_ = ref.rng();
}

std::uint32_t FrameProgram::intern_func(const circuit::Circuit& c,
                                        std::uint32_t id,
                                        std::vector<std::uint32_t>& cache) {
  EQC_EXPECTS(id < cache.size());
  if (cache[id] == kNoFunc) {
    cache[id] = static_cast<std::uint32_t>(funcs_.size());
    funcs_.push_back(c.classical_funcs().at(id));
  }
  return cache[id];
}

std::uint32_t FrameProgram::capture_branch(const stab::Tableau& tab,
                                           std::size_t pivot, std::size_t q) {
  // The stabilizer generator the random measurement will pivot on, captured
  // BEFORE the reference measurement rewrites it.  It anticommutes with
  // Z_q, so multiplying it into a trial's frame toggles that trial's
  // measured value — the per-lane outcome fixup.
  const pauli::PauliString g = tab.stabilizer(pivot);
  EQC_CHECK(g.x_bit(q));
  BranchOp rec;
  for (std::size_t j = 0; j < g.num_qubits(); ++j) {
    if (g.x_bit(j)) rec.xs.push_back(static_cast<std::uint32_t>(j));
    if (g.z_bit(j)) rec.zs.push_back(static_cast<std::uint32_t>(j));
  }
  branches_.push_back(std::move(rec));
  return static_cast<std::uint32_t>(branches_.size() - 1);
}

void FrameProgram::walk(const circuit::Circuit& c, circuit::TabBackend& ref,
                        std::vector<bool>& ref_cb, bool emit_sites) {
  const circuit::Schedule sched = circuit::schedule(c);
  const auto& ops = c.ops();
  std::vector<std::uint32_t> func_cache(c.classical_funcs().size(), kNoFunc);
  stab::Tableau& tab = ref.tableau();
  std::size_t ordinal = 0;

  auto push = [&](IKind kind, std::uint8_t flags, std::uint32_t a,
                  std::uint32_t b = 0, std::uint32_t c2 = 0) {
    Instr in;
    in.kind = kind;
    in.flags = flags;
    in.a = a;
    in.b = b;
    in.c = c2;
    instrs_.push_back(in);
  };

  auto visit_site = [&](const circuit::Op* op) {
    if (emit_sites) {
      SiteRec rec;
      rec.kind = op != nullptr ? site_kind(op->kind)
                               : circuit::FaultSite::Kind::Idle;
      rec.ordinal = ordinal;
      if (op != nullptr) rec.qubits = op_qubits(*op);
      sites_.push_back(std::move(rec));
      push(IKind::Site, 0, static_cast<std::uint32_t>(sites_.size() - 1));
    }
    ++ordinal;
  };
  auto visit_idle_site = [&](std::uint32_t q) {
    if (emit_sites) {
      SiteRec rec;
      rec.kind = circuit::FaultSite::Kind::Idle;
      rec.ordinal = ordinal;
      rec.qubits = {q};
      sites_.push_back(std::move(rec));
      push(IKind::Site, 0, static_cast<std::uint32_t>(sites_.size() - 1));
    }
    ++ordinal;
  };

  // reset-to-|0> of q, mirroring Tableau::reset(q, rng) with the branch
  // stabilizer captured before the collapse.
  auto compile_reset = [&](std::uint32_t q) {
    const std::size_t pivot = tab.z_measure_pivot(q);
    if (pivot == tab.num_qubits()) {
      const bool v = tab.measure(q, ref.rng());  // deterministic: no draw
      if (v) tab.x(q);
      push(IKind::ResetDet, 0, q);
    } else {
      const std::uint32_t gi = capture_branch(tab, pivot, q);
      const bool r0 = tab.measure(q, ref.rng());  // one bernoulli(0.5)
      if (r0) tab.x(q);
      push(IKind::ResetRnd, r0 ? kFlag0 : 0, q, 0, gi);
    }
  };

  auto compile_op = [&](const circuit::Op& op) {
    using OpKind = circuit::OpKind;
    switch (op.kind) {
      case OpKind::PrepZ:
        compile_reset(op.q[0]);
        break;
      case OpKind::PrepX:
        compile_reset(op.q[0]);
        tab.h(op.q[0]);
        push(IKind::H, 0, op.q[0]);
        break;
      case OpKind::H:
        tab.h(op.q[0]);
        push(IKind::H, 0, op.q[0]);
        break;
      case OpKind::X:
        tab.x(op.q[0]);
        break;  // Pauli: conjugation preserves frame bits
      case OpKind::Y:
        tab.y(op.q[0]);
        break;
      case OpKind::Z:
        tab.z(op.q[0]);
        break;
      case OpKind::S:
        tab.s(op.q[0]);
        push(IKind::S, 0, op.q[0]);
        break;
      case OpKind::Sdg:
        tab.sdg(op.q[0]);
        push(IKind::S, 0, op.q[0]);
        break;
      case OpKind::T:
        ref.t(op.q[0]);  // throws (non-Clifford), like the per-trial driver
        break;
      case OpKind::Tdg:
        ref.tdg(op.q[0]);
        break;
      case OpKind::CNOT:
        tab.cnot(op.q[0], op.q[1]);
        push(IKind::Cnot, 0, op.q[0], op.q[1]);
        break;
      case OpKind::CZ:
        tab.cz(op.q[0], op.q[1]);
        push(IKind::Cz, 0, op.q[0], op.q[1]);
        break;
      case OpKind::Swap:
        tab.swap(op.q[0], op.q[1]);
        push(IKind::Swap, 0, op.q[0], op.q[1]);
        break;
      case OpKind::CS:
      case OpKind::CSdg: {
        const std::uint32_t qc = op.q[0];
        const std::uint32_t qt = op.q[1];
        // Delegate to TabBackend so a non-lowerable gate throws the exact
        // error the per-trial driver raises.
        const bool lowerable = tab.is_deterministic_z(qc);
        const bool vr = lowerable && tab.deterministic_z_value(qc);
        if (op.kind == OpKind::CS)
          ref.cs(qc, qt);
        else
          ref.csdg(qc, qt);
        EQC_CHECK(lowerable);
        std::uint8_t flags = vr ? kFlag0 : 0;
        // A trial whose control deviates applies an extra S^(+-1); that is
        // a pure phase only when the target is reference-classical here.
        if (tab.is_deterministic_z(qt)) flags |= kFlag1;
        push(IKind::LowS, flags, qc, qt);
        break;
      }
      case OpKind::CCX: {
        const std::uint32_t q0 = op.q[0];
        const std::uint32_t q1 = op.q[1];
        const std::uint32_t qt = op.q[2];
        // Pivot selection order mirrors TabBackend::ccx exactly.
        std::uint32_t pivot = q0;
        std::uint32_t other = q1;
        if (!tab.is_deterministic_z(q0)) {
          pivot = q1;
          other = q0;
        }
        const bool lowerable = tab.is_deterministic_z(pivot);
        const bool vr = lowerable && tab.deterministic_z_value(pivot);
        ref.ccx(q0, q1, qt);
        EQC_CHECK(lowerable);
        std::uint8_t flags = vr ? kFlag0 : 0;
        // Deviation residual CNOT(other, t) absorbs as X(t)^w when the
        // other control is reference-classical with value w.
        if (tab.is_deterministic_z(other)) {
          flags |= kFlag1;
          if (tab.deterministic_z_value(other)) flags |= kFlag2;
        }
        push(IKind::LowCnot, flags, pivot, other, qt);
        break;
      }
      case OpKind::CCZ: {
        const std::uint32_t qs[3] = {op.q[0], op.q[1], op.q[2]};
        int i = 0;
        while (i < 3 && !tab.is_deterministic_z(qs[i])) ++i;
        const bool lowerable = i < 3;
        const std::uint32_t pivot = qs[lowerable ? i : 0];
        const std::uint32_t qj = qs[lowerable ? (i + 1) % 3 : 1];
        const std::uint32_t qk = qs[lowerable ? (i + 2) % 3 : 2];
        const bool vr = lowerable && tab.deterministic_z_value(pivot);
        ref.ccz(op.q[0], op.q[1], op.q[2]);
        EQC_CHECK(lowerable);
        std::uint8_t flags = vr ? kFlag0 : 0;
        if (tab.is_deterministic_z(qj)) {
          flags |= kFlag1;
          if (tab.deterministic_z_value(qj)) flags |= kFlag2;
        }
        if (tab.is_deterministic_z(qk)) {
          flags |= kFlag3;
          if (tab.deterministic_z_value(qk)) flags |= kFlag4;
        }
        push(IKind::LowCz, flags, pivot, qj, qk);
        break;
      }
      case OpKind::MeasureZ: {
        const std::uint32_t q = op.q[0];
        const std::size_t pivot = tab.z_measure_pivot(q);
        if (pivot == tab.num_qubits()) {
          const bool r0 = tab.measure(q, ref.rng());  // no draw
          ref_cb.at(op.carg) = r0;
          push(IKind::MeasDet, r0 ? kFlag0 : 0, q, op.carg);
        } else {
          const std::uint32_t gi = capture_branch(tab, pivot, q);
          const bool r0 = tab.measure(q, ref.rng());  // one bernoulli(0.5)
          ref_cb.at(op.carg) = r0;
          push(IKind::MeasRnd, r0 ? kFlag0 : 0, q, op.carg, gi);
        }
        break;
      }
      case OpKind::XIfC:
      case OpKind::ZIfC: {
        const bool r = c.classical_funcs().at(op.carg)(ref_cb);
        if (r) {
          if (op.kind == OpKind::XIfC)
            tab.x(op.q[0]);
          else
            tab.z(op.q[0]);
        }
        push(op.kind == OpKind::XIfC ? IKind::CondX : IKind::CondZ,
             r ? kFlag0 : 0, op.q[0], intern_func(c, op.carg, func_cache));
        break;
      }
      case OpKind::SIfC:
      case OpKind::SdgIfC: {
        const bool r = c.classical_funcs().at(op.carg)(ref_cb);
        if (r) {
          if (op.kind == OpKind::SIfC)
            tab.s(op.q[0]);
          else
            tab.sdg(op.q[0]);
        }
        std::uint8_t flags = r ? kFlag0 : 0;
        if (tab.is_deterministic_z(op.q[0])) flags |= kFlag1;
        push(IKind::CondS, flags, op.q[0],
             intern_func(c, op.carg, func_cache));
        break;
      }
      case OpKind::CNOTIfC: {
        const bool r = c.classical_funcs().at(op.carg)(ref_cb);
        if (r) tab.cnot(op.q[0], op.q[1]);
        std::uint8_t flags = r ? kFlag0 : 0;
        if (tab.is_deterministic_z(op.q[0])) {
          flags |= kFlag1;
          if (tab.deterministic_z_value(op.q[0])) flags |= kFlag2;
        }
        push(IKind::CondCnot, flags, op.q[0], op.q[1],
             intern_func(c, op.carg, func_cache));
        break;
      }
      case OpKind::CZIfC: {
        const bool r = c.classical_funcs().at(op.carg)(ref_cb);
        if (r) tab.cz(op.q[0], op.q[1]);
        std::uint8_t flags = r ? kFlag0 : 0;
        if (tab.is_deterministic_z(op.q[0])) {
          flags |= kFlag1;
          if (tab.deterministic_z_value(op.q[0])) flags |= kFlag2;
        }
        if (tab.is_deterministic_z(op.q[1])) {
          flags |= kFlag3;
          if (tab.deterministic_z_value(op.q[1])) flags |= kFlag4;
        }
        push(IKind::CondCz, flags, op.q[0], op.q[1],
             intern_func(c, op.carg, func_cache));
        break;
      }
      case OpKind::Idle:
        break;  // noise-only op; its site follows
    }
  };

  for (std::size_t t = 0; t < sched.moments.size(); ++t) {
    for (std::size_t idx : sched.moments[t]) {
      const circuit::Op& op = ops[idx];
      if (op.kind == circuit::OpKind::MeasureZ) {
        // Fault strikes before the readout, exactly as in execute().
        visit_site(&op);
        compile_op(op);
      } else {
        compile_op(op);
        visit_site(&op);
      }
    }
    for (std::uint32_t q : sched.idle[t]) visit_idle_site(q);
  }
}

// --- batch execution ---------------------------------------------------------

FrameBatch::FrameBatch(const FrameProgram& prog)
    : prog_(prog), n_(prog.num_qubits()) {}

void FrameBatch::reset_state(unsigned count) {
  EQC_EXPECTS(count >= 1 && count <= kLanes);
  count_ = count;
  active_ = count == kLanes ? ~std::uint64_t{0}
                            : (std::uint64_t{1} << count) - 1;
  fx_.assign(n_, 0);
  fz_.assign(n_, 0);
  // Resize + per-lane assign (rather than cbits_.assign with a prototype)
  // keeps each inner vector's allocation across batches, so a reused
  // FrameBatch runs its steady-state tiles without touching the heap.
  cbits_.resize(count_);
  for (auto& cb : cbits_) cb.assign(prog_.prep_cbits_, false);
}

void FrameBatch::run_stochastic(const noise::NoiseModel& model,
                                std::uint64_t seed, std::uint64_t first_index,
                                unsigned count) {
  reset_state(count);
  planted_mode_ = false;
  backend_rng_.clear();
  inj_rng_.clear();
  backend_rng_.reserve(count_);
  inj_rng_.reserve(count_);
  for (unsigned l = 0; l < count_; ++l) {
    // The canonical per-trial lambda's stream layout, split for split.
    Rng trial_rng(derive_stream_seed(seed, first_index + l));
    backend_rng_.push_back(trial_rng.split());
    inj_rng_.push_back(trial_rng.split());
  }
  exec(&model);
}

void FrameBatch::run_planted(
    const std::vector<std::vector<PlantedFault>>& lanes) {
  EQC_EXPECTS(!lanes.empty());
  reset_state(static_cast<unsigned>(lanes.size()));
  planted_mode_ = true;
  plants_.assign(prog_.sites_.size(), {});
  for (unsigned l = 0; l < count_; ++l) {
    for (const PlantedFault& f : lanes[l]) {
      EQC_EXPECTS(f.ordinal < prog_.sites_.size());
      const auto& site = prog_.sites_[f.ordinal];
      for (std::size_t q : f.error.support())
        EQC_EXPECTS(std::find(site.qubits.begin(), site.qubits.end(),
                              static_cast<std::uint32_t>(q)) !=
                    site.qubits.end());
      plants_[f.ordinal].emplace_back(l, &f);
    }
  }
  exec(nullptr);
  // Planted trials share the reference backend stream; after the run every
  // lane's rng sits at the reference's post-run state.
  backend_rng_.assign(count_, prog_.ref_rng_after_);
  inj_rng_.clear();
}

std::uint64_t FrameBatch::draw_word(bool r0) {
  if (planted_mode_) return bcast(r0) & active_;
  std::uint64_t w = 0;
  for (unsigned l = 0; l < count_; ++l)
    if (backend_rng_[l].bernoulli(0.5)) w |= std::uint64_t{1} << l;
  return w;
}

std::uint64_t FrameBatch::cond_word(std::uint32_t func) const {
  const circuit::ClassicalFunc& f = prog_.funcs_[func];
  std::uint64_t w = 0;
  for (unsigned l = 0; l < count_; ++l)
    if (f(cbits_[l])) w |= std::uint64_t{1} << l;
  return w;
}

void FrameBatch::fold_branch(const FrameProgram::BranchOp& g,
                             std::uint64_t e) {
  if (e == 0) return;
  for (std::uint32_t q : g.xs) fx_[q] ^= e;
  for (std::uint32_t q : g.zs) fz_[q] ^= e;
}

void FrameBatch::fold_lane(const pauli::PauliString& p, unsigned lane) {
  const std::uint64_t bit = std::uint64_t{1} << lane;
  for (std::size_t q : p.support()) {
    if (p.x_bit(q)) fx_[q] ^= bit;
    if (p.z_bit(q)) fz_[q] ^= bit;
  }
}

void FrameBatch::set_cbits(std::uint32_t slot, std::uint64_t word) {
  for (unsigned l = 0; l < count_; ++l)
    cbits_[l][slot] = ((word >> l) & 1) != 0;
}

void FrameBatch::exec(const noise::NoiseModel* model) {
  using IKind = FrameProgram::IKind;
  constexpr std::uint8_t kFlag0 = FrameProgram::kFlag0;
  constexpr std::uint8_t kFlag1 = FrameProgram::kFlag1;
  constexpr std::uint8_t kFlag2 = FrameProgram::kFlag2;
  constexpr std::uint8_t kFlag3 = FrameProgram::kFlag3;
  constexpr std::uint8_t kFlag4 = FrameProgram::kFlag4;

  double p_kind[5] = {0, 0, 0, 0, 0};
  if (model != nullptr)
    for (int k = 0; k < 5; ++k)
      p_kind[k] =
          model->probability_for(static_cast<circuit::FaultSite::Kind>(k));

  for (const FrameProgram::Instr& ins : prog_.instrs_) {
    switch (ins.kind) {
      case IKind::Site: {
        const auto& site = prog_.sites_[ins.a];
        if (planted_mode_) {
          for (const auto& [lane, pf] : plants_[site.ordinal])
            fold_lane(pf->error, lane);
        } else {
          const double p = p_kind[static_cast<int>(site.kind)];
          if (p <= 0.0) break;
          for (unsigned l = 0; l < count_; ++l) {
            if (!inj_rng_[l].bernoulli(p)) continue;
            fold_lane(noise::sample_error(model->channel, site.qubits, n_,
                                          inj_rng_[l], model->z_bias),
                      l);
          }
        }
        break;
      }
      case IKind::H:
        std::swap(fx_[ins.a], fz_[ins.a]);
        break;
      case IKind::S:
        fz_[ins.a] ^= fx_[ins.a];
        break;
      case IKind::Cnot:
        if (prog_.bug_ == FrameBug::CnotSwapped) {
          fx_[ins.a] ^= fx_[ins.b];
          fz_[ins.b] ^= fz_[ins.a];
        } else {
          fx_[ins.b] ^= fx_[ins.a];
          fz_[ins.a] ^= fz_[ins.b];
        }
        break;
      case IKind::Cz: {
        const std::uint64_t xa = fx_[ins.a];
        const std::uint64_t xb = fx_[ins.b];
        fz_[ins.a] ^= xb;
        fz_[ins.b] ^= xa;
        break;
      }
      case IKind::Swap:
        std::swap(fx_[ins.a], fx_[ins.b]);
        std::swap(fz_[ins.a], fz_[ins.b]);
        break;
      case IKind::MeasDet:
        // Trial value = reference value XOR the frame's X bit; no draw, no
        // frame change (the state was already an eigenstate).
        set_cbits(ins.b, fx_[ins.a] ^ bcast((ins.flags & kFlag0) != 0));
        break;
      case IKind::MeasRnd: {
        const bool r0 = (ins.flags & kFlag0) != 0;
        const std::uint64_t rt = draw_word(r0);
        // Lanes whose sampled outcome differs from what the frame would
        // make of the reference outcome fold the pivot stabilizer in —
        // the post-measurement states differ by exactly that operator.
        const std::uint64_t e = (rt ^ fx_[ins.a] ^ bcast(r0)) & active_;
        fold_branch(prog_.branches_[ins.c], e);
        set_cbits(ins.b, rt);
        break;
      }
      case IKind::ResetDet:
        // Both reference and trial land in |0>: clear the X bit (the Z bit
        // is gauge — Z_q stabilizes |0>).
        fx_[ins.a] &= ~active_;
        break;
      case IKind::ResetRnd: {
        const bool r0 = (ins.flags & kFlag0) != 0;
        const std::uint64_t rt = draw_word(r0);
        const std::uint64_t e = (rt ^ fx_[ins.a] ^ bcast(r0)) & active_;
        fold_branch(prog_.branches_[ins.c], e);
        // The conditional X flips (trial X^rt vs reference X^r0) cancel
        // the measurement fixup at q: the X bit ends 0 on active lanes.
        fx_[ins.a] ^= (rt ^ bcast(r0)) & active_;
        break;
      }
      case IKind::LowS: {
        // Lowered controlled-S: trial applies S(t) iff its (classical)
        // control reads 1 = reference value XOR frame X bit.
        const std::uint64_t m = fx_[ins.a] ^ bcast((ins.flags & kFlag0) != 0);
        fz_[ins.b] ^= fx_[ins.b] & m;
        if ((fx_[ins.a] & active_) != 0 && (ins.flags & kFlag1) == 0)
          throw FrameUnsupported(
              "frame: controlled-S control deviation with non-classical "
              "target");
        break;
      }
      case IKind::LowCnot: {
        const std::uint64_t m = fx_[ins.a] ^ bcast((ins.flags & kFlag0) != 0);
        fx_[ins.c] ^= fx_[ins.b] & m;
        fz_[ins.b] ^= fz_[ins.c] & m;
        const std::uint64_t d = fx_[ins.a] & active_;
        if (d != 0) {
          if ((ins.flags & kFlag1) == 0)
            throw FrameUnsupported(
                "frame: CCX pivot deviation with non-classical second "
                "control");
          fx_[ins.c] ^= d & bcast((ins.flags & kFlag2) != 0);
        }
        break;
      }
      case IKind::LowCz: {
        const std::uint64_t m = fx_[ins.a] ^ bcast((ins.flags & kFlag0) != 0);
        const std::uint64_t xj = fx_[ins.b];
        const std::uint64_t xk = fx_[ins.c];
        fz_[ins.b] ^= xk & m;
        fz_[ins.c] ^= xj & m;
        const std::uint64_t d = fx_[ins.a] & active_;
        if (d != 0) {
          if ((ins.flags & kFlag1) != 0)
            fz_[ins.c] ^= d & bcast((ins.flags & kFlag2) != 0);
          else if ((ins.flags & kFlag3) != 0)
            fz_[ins.b] ^= d & bcast((ins.flags & kFlag4) != 0);
          else
            throw FrameUnsupported(
                "frame: CCZ pivot deviation with no classical inner qubit");
        }
        break;
      }
      case IKind::CondX:
        fx_[ins.a] ^=
            (cond_word(ins.b) ^ bcast((ins.flags & kFlag0) != 0)) & active_;
        break;
      case IKind::CondZ:
        fz_[ins.a] ^=
            (cond_word(ins.b) ^ bcast((ins.flags & kFlag0) != 0)) & active_;
        break;
      case IKind::CondS: {
        const std::uint64_t cw = cond_word(ins.b);
        fz_[ins.a] ^= fx_[ins.a] & cw;
        const std::uint64_t d =
            (cw ^ bcast((ins.flags & kFlag0) != 0)) & active_;
        if (d != 0 && (ins.flags & kFlag1) == 0)
          throw FrameUnsupported(
              "frame: conditional S deviation on a non-classical qubit");
        break;
      }
      case IKind::CondCnot: {
        const std::uint64_t cw = cond_word(ins.c);
        fx_[ins.b] ^= fx_[ins.a] & cw;
        fz_[ins.a] ^= fz_[ins.b] & cw;
        const std::uint64_t d =
            (cw ^ bcast((ins.flags & kFlag0) != 0)) & active_;
        if (d != 0) {
          if ((ins.flags & kFlag1) == 0)
            throw FrameUnsupported(
                "frame: conditional CNOT deviation with non-classical "
                "control");
          fx_[ins.b] ^= d & bcast((ins.flags & kFlag2) != 0);
        }
        break;
      }
      case IKind::CondCz: {
        const std::uint64_t cw = cond_word(ins.c);
        const std::uint64_t xa = fx_[ins.a];
        const std::uint64_t xb = fx_[ins.b];
        fz_[ins.a] ^= xb & cw;
        fz_[ins.b] ^= xa & cw;
        const std::uint64_t d =
            (cw ^ bcast((ins.flags & kFlag0) != 0)) & active_;
        if (d != 0) {
          if ((ins.flags & kFlag1) != 0)
            fz_[ins.b] ^= d & bcast((ins.flags & kFlag2) != 0);
          else if ((ins.flags & kFlag3) != 0)
            fz_[ins.a] ^= d & bcast((ins.flags & kFlag4) != 0);
          else
            throw FrameUnsupported(
                "frame: conditional CZ deviation with no classical qubit");
        }
        break;
      }
      case IKind::BeginGadget:
        for (auto& cb : cbits_)
          cb.assign(prog_.gadget_cbits_, false);
        break;
    }
  }
}

pauli::PauliString FrameBatch::lane_frame(unsigned l) const {
  EQC_EXPECTS(l < count_);
  pauli::PauliString p(n_);
  for (std::size_t q = 0; q < n_; ++q)
    p.set_bits(q, ((fx_[q] >> l) & 1) != 0, ((fz_[q] >> l) & 1) != 0);
  return p;
}

const std::vector<bool>& FrameBatch::lane_cbits(unsigned l) const {
  EQC_EXPECTS(l < count_);
  return cbits_[l];
}

std::uint64_t FrameBatch::cbits_word(std::uint32_t slot) const {
  std::uint64_t w = 0;
  for (unsigned l = 0; l < count_; ++l)
    if (cbits_[l].at(slot)) w |= std::uint64_t{1} << l;
  return w;
}

const Rng& FrameBatch::lane_backend_rng(unsigned l) const {
  EQC_EXPECTS(l < count_ && l < backend_rng_.size());
  return backend_rng_[l];
}

}  // namespace eqc::frame
