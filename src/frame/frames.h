// Batch Pauli-frame simulator: 64 Monte-Carlo trials per machine word.
//
// The paper's ensemble semantics — one reference circuit executed
// simultaneously by many molecules, each molecule differing only by which
// errors struck it — is literally a Pauli-frame execution model.  A trial's
// state is F |ref>, where |ref> is the state of the fault-free reference
// run and F is a Pauli operator (the "frame") accumulating every injected
// error, conjugated forward through the circuit.  Phases of F are
// irrelevant (no observable of the trial depends on them), so a frame is
// just one X bit and one Z bit per qubit — and 64 trials pack into one
// uint64_t word per qubit per plane, advancing 64 trials with each pass
// over a precompiled instruction tape.
//
// Soundness.  Whether a Z measurement is random or deterministic, which
// branch TabBackend's classical-control lowering takes, and whether a
// lowered gate is legal are all properties of the STABILIZER GROUP, and
// the trial group F (ref group) F differs from the reference group only in
// generator signs.  Hence every trial takes the same branches as the
// reference run and consumes backend randomness in exactly the same
// pattern (one bernoulli(0.5) per random measurement or reset, none for
// deterministic ones), even though the applied gate sequences differ per
// trial.  That is what makes the frame pass BIT-EXACT against the
// per-trial TabBackend driver: same RNG stream layout, same outcomes,
// same failure verdicts.  See DESIGN.md section 13 for the derivations.
//
// What is NOT frame-simulable: T gates (non-Clifford; TabBackend rejects
// them too) and classically controlled S / controlled-S / controlled-
// controlled gates whose per-trial deviation from the reference branch
// cannot be absorbed as a Pauli (it can when the relevant qubit is
// ref-classical at that point).  Those cases throw FrameUnsupported at
// run time, and only when some trial in the batch actually deviates.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/execute.h"
#include "common/rng.h"
#include "noise/model.h"
#include "pauli/pauli_string.h"
#include "stab/tableau.h"

namespace eqc::circuit {
class TabBackend;
}  // namespace eqc::circuit

namespace eqc::frame {

/// Thrown when a circuit (or a specific batch of trials) exercises a
/// feature the frame model cannot absorb as a Pauli deviation.
class FrameUnsupported : public std::runtime_error {
 public:
  explicit FrameUnsupported(const std::string& what)
      : std::runtime_error(what) {}
};

/// Deliberately wrong propagation rules (differential-oracle self-test).
enum class FrameBug {
  None,
  /// CNOT frame propagation with control and target swapped.
  CnotSwapped,
};

/// A Pauli error planted at one gadget fault site (ordinal = position in
/// the deterministic site visitation order of the gadget circuit, exactly
/// circuit::enumerate_fault_sites(gadget)).
struct PlantedFault {
  std::size_t ordinal = 0;
  pauli::PauliString error;
};

/// A (prep, gadget) circuit pair compiled against one reference execution
/// into a frame instruction tape.
///
/// Compilation runs the reference pass once — a TabBackend seeded with
/// `ref_seed`, walking prep (no fault sites) then gadget (fault sites in
/// executor order) — and records, per op, the frame-propagation rule plus
/// everything the batch interpreter needs from the reference state at that
/// point: measurement pivot stabilizers, reference outcomes, classical
/// values used to absorb per-trial deviations of lowered gates.
///
/// For planted-fault replay (run_planted) the program must be compiled
/// with ref_seed equal to the seed the per-trial driver would hand its
/// backend (FaultExperiment::seed): planted trials then share the
/// reference's measurement record bit for bit.
class FrameProgram {
 public:
  FrameProgram(std::size_t num_qubits, const circuit::Circuit& prep,
               const circuit::Circuit& gadget, std::uint64_t ref_seed);

  std::size_t num_qubits() const { return n_; }
  std::size_t num_gadget_cbits() const { return gadget_cbits_; }
  std::uint64_t ref_seed() const { return ref_seed_; }
  /// Number of gadget fault sites (== enumerate_fault_sites(gadget).size()).
  std::size_t num_sites() const { return sites_.size(); }

  /// Reference state after prep + gadget (fault-free run at ref_seed).
  const stab::Tableau& reference_tableau() const { return ref_final_; }
  /// Reference gadget measurement record.
  const std::vector<bool>& reference_cbits() const { return ref_cbits_; }
  /// Reference backend RNG state after the full run (= the shared backend
  /// stream state of every planted-fault trial after its run).
  const Rng& reference_rng_after() const { return ref_rng_after_; }

  /// Test hook: corrupt one propagation rule (harness self-test).
  void set_planted_bug(FrameBug bug) { bug_ = bug; }
  FrameBug planted_bug() const { return bug_; }

 private:
  friend class FrameBatch;

  enum class IKind : std::uint8_t {
    Site,         // gadget fault site (a = site index)
    H,            // a = q
    S,            // a = q (S and Sdg propagate frames identically)
    Cnot,         // a = control, b = target
    Cz,           // a, b
    Swap,         // a, b
    MeasDet,      // a = q, b = slot; flags: r0
    MeasRnd,      // a = q, b = slot, c = g index; flags: r0
    ResetDet,     // a = q
    ResetRnd,     // a = q, c = g index; flags: r0
    LowS,         // CS/CSdg: a = control, b = target; flags: vr, b-classical
    LowCnot,      // CCX: a = pivot, b = other, c = target;
                  // flags: vr, b-classical, b-value
    LowCz,        // CCZ: a = pivot, b/c = inner pair; flags: vr,
                  // b-classical, b-value, c-classical, c-value
    CondX,        // a = q, b = func; flags: ref outcome R
    CondZ,        // a = q, b = func; flags: R
    CondS,        // a = q, b = func; flags: R, a-classical
    CondCnot,     // a = control, b = target, c = func; flags: R,
                  // a-classical, a-value
    CondCz,       // a, b, c = func; flags: R, a-classical, a-value,
                  // b-classical, b-value
    BeginGadget,  // prep/gadget boundary: fresh classical record
  };

  // Flag bits (meaning depends on the kind; see IKind comments).
  static constexpr std::uint8_t kFlag0 = 1;  // r0 / vr / R
  static constexpr std::uint8_t kFlag1 = 2;  // first classical flag
  static constexpr std::uint8_t kFlag2 = 4;  // first classical value
  static constexpr std::uint8_t kFlag3 = 8;  // second classical flag
  static constexpr std::uint8_t kFlag4 = 16; // second classical value

  struct Instr {
    IKind kind;
    std::uint8_t flags = 0;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::uint32_t c = 0;
  };

  /// Gadget fault site (executor visitation order).
  struct SiteRec {
    circuit::FaultSite::Kind kind;
    std::size_t ordinal;
    std::vector<std::uint32_t> qubits;
  };

  /// Pivot stabilizer of a random measurement/reset, pre-split into its
  /// X- and Z-support lists for the word-level fold.
  struct BranchOp {
    std::vector<std::uint32_t> xs;
    std::vector<std::uint32_t> zs;
  };

  void walk(const circuit::Circuit& c, circuit::TabBackend& ref,
            std::vector<bool>& ref_cb, bool emit_sites);
  std::uint32_t intern_func(const circuit::Circuit& c, std::uint32_t id,
                            std::vector<std::uint32_t>& cache);
  std::uint32_t capture_branch(const stab::Tableau& tab, std::size_t pivot,
                               std::size_t q);

  std::size_t n_;
  std::size_t prep_cbits_ = 0;
  std::size_t gadget_cbits_ = 0;
  std::uint64_t ref_seed_;
  FrameBug bug_ = FrameBug::None;

  std::vector<Instr> instrs_;
  std::vector<SiteRec> sites_;
  std::vector<BranchOp> branches_;
  std::vector<circuit::ClassicalFunc> funcs_;

  stab::Tableau ref_final_{1};
  std::vector<bool> ref_cbits_;
  Rng ref_rng_after_{0};
};

/// One 64-lane batch execution of a FrameProgram.  Lane l of a stochastic
/// batch reproduces trial index first_index + l of the canonical per-trial
/// Monte-Carlo lambda bit for bit:
///
///   Rng trial_rng(derive_stream_seed(seed, i));
///   TabBackend backend(n, trial_rng.split());          // lane backend rng
///   execute(prep, backend);
///   StochasticInjector injector(model, trial_rng.split());  // lane inj rng
///   auto r = execute(gadget, backend, &injector);
///
/// Unused lanes (count < 64) keep all-zero frames: every per-lane update
/// word is masked with active_mask(), and Pauli conjugation preserves the
/// zero frame.
class FrameBatch {
 public:
  static constexpr unsigned kLanes = 64;

  explicit FrameBatch(const FrameProgram& prog);

  /// Runs lanes 0..count-1 as trials first_index..first_index+count-1 of
  /// the stochastic model (count <= 64).
  void run_stochastic(const noise::NoiseModel& model, std::uint64_t seed,
                      std::uint64_t first_index, unsigned count);

  /// Runs lanes 0..lanes.size()-1 with per-lane planted fault lists
  /// (lanes.size() <= 64), sharing the reference backend stream — the
  /// analysis::run_with_faults regime.  Requires the program's ref_seed to
  /// be the experiment seed (see FrameProgram).
  void run_planted(const std::vector<std::vector<PlantedFault>>& lanes);

  unsigned count() const { return count_; }
  std::uint64_t active_mask() const { return active_; }
  std::size_t num_qubits() const { return n_; }

  /// Packed frame planes after the run: bit l of fx(q) = lane l's frame
  /// has an X component on qubit q.
  std::uint64_t fx(std::size_t q) const { return fx_[q]; }
  std::uint64_t fz(std::size_t q) const { return fz_[q]; }

  /// Lane l's frame as a PauliString (phase 0).
  pauli::PauliString lane_frame(unsigned l) const;
  /// Lane l's gadget measurement record (== per-trial ExecResult::cbits).
  const std::vector<bool>& lane_cbits(unsigned l) const;
  /// Packed word of classical slot `slot`: bit l = lane l's value.
  std::uint64_t cbits_word(std::uint32_t slot) const;
  /// Lane l's backend RNG state after the run — what the per-trial
  /// driver's TabBackend rng would hold, for failure predicates that keep
  /// drawing from it.
  const Rng& lane_backend_rng(unsigned l) const;

 private:
  void reset_state(unsigned count);
  void exec(const noise::NoiseModel* model);
  std::uint64_t cond_word(std::uint32_t func) const;
  std::uint64_t draw_word(bool r0);
  void fold_branch(const FrameProgram::BranchOp& g, std::uint64_t e);
  void fold_lane(const pauli::PauliString& p, unsigned lane);
  void set_cbits(std::uint32_t slot, std::uint64_t word);

  const FrameProgram& prog_;
  std::size_t n_;
  unsigned count_ = 0;
  std::uint64_t active_ = 0;
  bool planted_mode_ = false;

  std::vector<std::uint64_t> fx_;
  std::vector<std::uint64_t> fz_;
  std::vector<std::vector<bool>> cbits_;  // per lane
  std::vector<Rng> backend_rng_;          // per lane (stochastic)
  std::vector<Rng> inj_rng_;              // per lane (stochastic)
  // Planted mode: per-site (lane, fault) lists, indexed by site ordinal.
  std::vector<std::vector<std::pair<unsigned, const PlantedFault*>>> plants_;
};

}  // namespace eqc::frame
