// Monte-Carlo driver over 64-lane frame batches.
//
// Same determinism discipline as noise/monte_carlo.h: trial i's stream is
// counter-split off (seed, i), so lane assignments, batch grouping, worker
// counts and resume points never change the folded counter — it is
// BYTE-IDENTICAL to the per-trial driver's (and to itself across any jobs
// value or checkpoint/resume pattern).
#pragma once

#include <cstdint>
#include <functional>

#include "frame/frames.h"
#include "noise/monte_carlo.h"

namespace eqc::frame {

/// Failure predicate over one executed batch: bit l of the returned word =
/// lane l failed.  Bits at or above batch.count() are ignored.  Called
/// concurrently on distinct batches when jobs != 1.
using BatchOracle = std::function<std::uint64_t(const FrameBatch&)>;

/// Frame counterpart of noise::run_trials: runs `trials` stochastic trials
/// of `model` in 64-lane batches and folds lane failure bits in trial-index
/// order.
FailureCounter run_trials(const FrameProgram& prog,
                          const noise::NoiseModel& model, std::uint64_t trials,
                          std::uint64_t seed, const BatchOracle& failed,
                          unsigned jobs = 1);

/// Frame counterpart of noise::run_trials_resumable: blocks, checkpoint
/// callback, cooperative stop — byte-identical to any other (jobs, resume,
/// engine) combination with the same (trials, seed, oracle).
noise::McRunResult run_trials_resumable(const FrameProgram& prog,
                                        const noise::NoiseModel& model,
                                        std::uint64_t trials,
                                        std::uint64_t seed,
                                        const BatchOracle& failed,
                                        const noise::McResumableOptions& opt =
                                            {});

}  // namespace eqc::frame
