#include "codes/css_code.h"

#include <algorithm>
#include <bit>

#include "common/assert.h"

namespace eqc::codes {

Block CodeBlock::steane() const {
  EQC_EXPECTS(q.size() == Steane::kN);
  Block b;
  for (std::size_t i = 0; i < Steane::kN; ++i) b.q[i] = q[i];
  return b;
}

RmBlock CodeBlock::rm15() const {
  EQC_EXPECTS(q.size() == ReedMuller15::kN);
  RmBlock b;
  for (std::size_t i = 0; i < ReedMuller15::kN; ++i) b.q[i] = q[i];
  return b;
}

// --- classical decoding ------------------------------------------------------

unsigned CssCode::z_syndrome_of_word(unsigned word) const {
  unsigned s = 0;
  for (std::size_t row = 0; row < num_z_checks(); ++row)
    if (std::popcount(word & z_check_mask(row)) & 1) s |= 1u << row;
  return s;
}

unsigned CssCode::z_syndrome_of_x_error(std::size_t pos) const {
  EQC_EXPECTS(pos < n());
  return z_syndrome_of_word(1u << pos);
}

unsigned CssCode::x_syndrome_of_z_error(std::size_t pos) const {
  EQC_EXPECTS(pos < n());
  unsigned s = 0;
  for (std::size_t row = 0; row < num_x_checks(); ++row)
    if (x_check_mask(row) & (1u << pos)) s |= 1u << row;
  return s;
}

int CssCode::x_error_position(unsigned z_syndrome) const {
  if (z_syndrome == 0) return -1;
  for (std::size_t pos = 0; pos < n(); ++pos)
    if (z_syndrome_of_x_error(pos) == z_syndrome) return static_cast<int>(pos);
  return -1;
}

int CssCode::z_error_position(unsigned x_syndrome) const {
  if (x_syndrome == 0) return -1;
  for (std::size_t pos = 0; pos < n(); ++pos)
    if (x_syndrome_of_z_error(pos) == x_syndrome) return static_cast<int>(pos);
  return -1;
}

bool CssCode::decode_logical_bit(unsigned word) const {
  const int pos = x_error_position(z_syndrome_of_word(word));
  if (pos >= 0) word ^= 1u << pos;
  return std::popcount(word) & 1;
}

// --- transversal builders ----------------------------------------------------

void CssCode::append_logical_x(circuit::Circuit& c, const CodeBlock& b) const {
  EQC_EXPECTS(b.size() == n());
  for (auto q : b.q) c.x(q);
}

void CssCode::append_logical_z(circuit::Circuit& c, const CodeBlock& b) const {
  EQC_EXPECTS(b.size() == n());
  for (auto q : b.q) c.z(q);
}

void CssCode::append_logical_h(circuit::Circuit& c, const CodeBlock& b) const {
  EQC_EXPECTS(self_dual() && b.size() == n());
  for (auto q : b.q) c.h(q);
}

void CssCode::append_logical_s(circuit::Circuit& c, const CodeBlock& b) const {
  EQC_EXPECTS(has_transversal_s() && b.size() == n());
  for (auto q : b.q) c.sdg(q);
}

void CssCode::append_logical_sdg(circuit::Circuit& c,
                                 const CodeBlock& b) const {
  EQC_EXPECTS(has_transversal_s() && b.size() == n());
  for (auto q : b.q) c.s(q);
}

void CssCode::append_logical_t(circuit::Circuit& c, const CodeBlock& b) const {
  EQC_EXPECTS(has_transversal_t() && b.size() == n());
  for (auto q : b.q) c.tdg(q);
}

void CssCode::append_logical_tdg(circuit::Circuit& c,
                                 const CodeBlock& b) const {
  EQC_EXPECTS(has_transversal_t() && b.size() == n());
  for (auto q : b.q) c.t(q);
}

void CssCode::append_logical_cnot(circuit::Circuit& c,
                                  const CodeBlock& control,
                                  const CodeBlock& target) const {
  EQC_EXPECTS(control.size() == n() && target.size() == n());
  for (std::size_t i = 0; i < n(); ++i) c.cnot(control.q[i], target.q[i]);
}

void CssCode::append_logical_cz(circuit::Circuit& c, const CodeBlock& a,
                                const CodeBlock& b) const {
  EQC_EXPECTS(self_dual() && a.size() == n() && b.size() == n());
  for (std::size_t i = 0; i < n(); ++i) c.cz(a.q[i], b.q[i]);
}

// --- Pauli operators ---------------------------------------------------------

namespace {

pauli::PauliString masked(std::size_t total, const CodeBlock& b, unsigned mask,
                          pauli::Pauli label) {
  pauli::PauliString p(total);
  for (std::size_t i = 0; i < b.size(); ++i)
    if (mask & (1u << i)) p.set(b.q[i], label);
  return p;
}

}  // namespace

pauli::PauliString CssCode::z_stabilizer(std::size_t total, const CodeBlock& b,
                                         std::size_t row) const {
  EQC_EXPECTS(row < num_z_checks() && b.size() == n());
  return masked(total, b, z_check_mask(row), pauli::Pauli::Z);
}

pauli::PauliString CssCode::x_stabilizer(std::size_t total, const CodeBlock& b,
                                         std::size_t row) const {
  EQC_EXPECTS(row < num_x_checks() && b.size() == n());
  return masked(total, b, x_check_mask(row), pauli::Pauli::X);
}

pauli::PauliString CssCode::logical_x_op(std::size_t total,
                                         const CodeBlock& b) const {
  EQC_EXPECTS(b.size() == n());
  return masked(total, b, (1u << n()) - 1, pauli::Pauli::X);
}

pauli::PauliString CssCode::logical_z_op(std::size_t total,
                                         const CodeBlock& b) const {
  EQC_EXPECTS(b.size() == n());
  return masked(total, b, (1u << n()) - 1, pauli::Pauli::Z);
}

// --- tableau oracles ---------------------------------------------------------

namespace {

// Min-weight error pattern with the given syndrome (ideal bounded-distance
// decode; verification only).  Codes with asymmetric distances (RM15:
// Z-distance 3, X-distance 7) correct more than one error of the stronger
// type, so the ideal decoder must not stop at the single-qubit lookup.
// For a perfect code every nonzero syndrome's leader has weight 1, so this
// reproduces the lookup exactly.
template <typename MaskFn>
unsigned min_weight_match(unsigned syndrome, std::size_t rows, std::size_t n,
                          MaskFn mask_of_row) {
  if (syndrome == 0) return 0;
  EQC_EXPECTS(n < 32);
  for (std::size_t w = 1; w <= n; ++w) {
    // Gosper enumeration of weight-w masks over n bits.
    std::uint32_t mask = (1u << w) - 1;
    while (mask < (1u << n)) {
      unsigned s = 0;
      for (std::size_t r = 0; r < rows; ++r)
        if (std::popcount(mask & mask_of_row(r)) & 1) s |= 1u << r;
      if (s == syndrome) return mask;
      const std::uint32_t c = mask & (~mask + 1);
      const std::uint32_t up = mask + c;
      mask = (((mask ^ up) >> 2) / c) | up;
    }
  }
  EQC_CHECK(false && "syndrome unreachable: check matrix rank deficient");
  return 0;
}

}  // namespace

unsigned CssCode::x_fix_for_z_syndrome(unsigned sz) const {
  return min_weight_match(sz, num_z_checks(), n(),
                          [this](std::size_t r) { return z_check_mask(r); });
}

unsigned CssCode::z_fix_for_x_syndrome(unsigned sx) const {
  return min_weight_match(sx, num_x_checks(), n(),
                          [this](std::size_t r) { return x_check_mask(r); });
}

void CssCode::perfect_correct(stab::Tableau& tab, const CodeBlock& b,
                              Rng& rng) const {
  const std::size_t total = tab.num_qubits();
  unsigned sz = 0;
  for (std::size_t row = 0; row < num_z_checks(); ++row)
    if (tab.measure_pauli(z_stabilizer(total, b, row), rng)) sz |= 1u << row;
  const unsigned fix_x = x_fix_for_z_syndrome(sz);
  if (fix_x != 0) {
    pauli::PauliString fix(total);
    for (std::size_t i = 0; i < n(); ++i)
      if (fix_x & (1u << i)) fix.set(b.q[i], pauli::Pauli::X);
    tab.apply_pauli(fix);
  }
  unsigned sx = 0;
  for (std::size_t row = 0; row < num_x_checks(); ++row)
    if (tab.measure_pauli(x_stabilizer(total, b, row), rng)) sx |= 1u << row;
  const unsigned fix_z = z_fix_for_x_syndrome(sx);
  if (fix_z != 0) {
    pauli::PauliString fix(total);
    for (std::size_t i = 0; i < n(); ++i)
      if (fix_z & (1u << i)) fix.set(b.q[i], pauli::Pauli::Z);
    tab.apply_pauli(fix);
  }
}

bool CssCode::block_in_codespace(const stab::Tableau& tab,
                                 const CodeBlock& b) const {
  const std::size_t total = tab.num_qubits();
  for (std::size_t row = 0; row < num_z_checks(); ++row)
    if (tab.expectation_pauli(z_stabilizer(total, b, row)) != 1.0)
      return false;
  for (std::size_t row = 0; row < num_x_checks(); ++row)
    if (tab.expectation_pauli(x_stabilizer(total, b, row)) != 1.0)
      return false;
  return true;
}

double CssCode::logical_z_expectation(const stab::Tableau& tab,
                                      const CodeBlock& b) const {
  return tab.expectation_pauli(logical_z_op(tab.num_qubits(), b));
}

// --- generic superposition encoder -------------------------------------------

void append_superposition_encoder(circuit::Circuit& c, const CodeBlock& b,
                                  std::vector<unsigned> masks) {
  // Row-reduce over GF(2): after elimination each surviving mask owns a
  // pivot column (its lowest set bit) that no other mask touches.
  std::vector<unsigned> rows;
  for (unsigned m : masks) {
    for (unsigned r : rows) {
      const unsigned pivot = r & ~(r - 1);  // lowest set bit of r
      if (m & pivot) m ^= r;
    }
    if (m == 0) continue;  // linearly dependent
    const unsigned pivot = m & ~(m - 1);
    for (unsigned& r : rows)
      if (r & pivot) r ^= m;
    rows.push_back(m);
  }
  for (unsigned r : rows) {
    const auto pivot =
        static_cast<std::size_t>(std::countr_zero(r));
    EQC_EXPECTS(pivot < b.size());
    c.h(b.q[pivot]);
  }
  for (unsigned r : rows) {
    const auto pivot = static_cast<std::size_t>(std::countr_zero(r));
    for (std::size_t i = 0; i < b.size(); ++i)
      if (i != pivot && (r & (1u << i))) c.cnot(b.q[pivot], b.q[i]);
  }
}

namespace {

// Inverts an m x m GF(2) matrix given as row bitmasks; empty on singular.
std::vector<unsigned> gf2_invert(std::vector<unsigned> rows) {
  const std::size_t m = rows.size();
  std::vector<unsigned> inv(m);
  for (std::size_t r = 0; r < m; ++r) inv[r] = 1u << r;
  for (std::size_t c = 0; c < m; ++c) {
    std::size_t piv = c;
    while (piv < m && !(rows[piv] & (1u << c))) ++piv;
    if (piv == m) return {};
    std::swap(rows[c], rows[piv]);
    std::swap(inv[c], inv[piv]);
    for (std::size_t r = 0; r < m; ++r)
      if (r != c && (rows[r] & (1u << c))) {
        rows[r] ^= rows[c];
        inv[r] ^= inv[c];
      }
  }
  return inv;
}

// Evaluates one pivot-set candidate: the m x m submatrix of H on `cols`
// must be invertible; returns its max-column-weight score (how many output
// positions one syndrome bit feeds), SIZE_MAX when singular.
std::size_t pivot_score(const CssCode& code,
                        const std::vector<std::size_t>& cols,
                        std::vector<unsigned>* inv_out) {
  const std::size_t m = code.num_z_checks();
  std::vector<unsigned> sub(m, 0);
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t j = 0; j < m; ++j)
      if (code.z_check_mask(r) & (1u << cols[j])) sub[r] |= 1u << j;
  auto inv = gf2_invert(std::move(sub));
  if (inv.empty()) return static_cast<std::size_t>(-1);
  // inv[j] bit r: position cols[j] is fed by syndrome bit r.  The column
  // weight over j of bit r is the fanout of syndrome bit r.
  std::size_t worst = 0;
  for (std::size_t r = 0; r < m; ++r) {
    std::size_t w = 0;
    for (std::size_t j = 0; j < m; ++j)
      if (inv[j] & (1u << r)) ++w;
    worst = std::max(worst, w);
  }
  if (inv_out != nullptr) *inv_out = std::move(inv);
  return worst;
}

}  // namespace

ZRepairPlan z_repair_plan(const CssCode& code) {
  const std::size_t n = code.n();
  const std::size_t m = code.num_z_checks();
  EQC_EXPECTS(m <= 20 && n <= 32);

  ZRepairPlan plan;
  // One-hot completeness: do single-qubit syndromes cover every nonzero
  // syndrome?  (Perfect codes: 2^m - 1 positions with distinct syndromes.)
  std::vector<bool> seen(std::size_t{1} << m, false);
  std::size_t distinct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned s = code.z_syndrome_of_x_error(i);
    if (s != 0 && !seen[s]) {
      seen[s] = true;
      ++distinct;
    }
  }
  if (distinct == (std::size_t{1} << m) - 1) {
    plan.single_qubit_complete = true;
    plan.max_bit_fanout = 2;  // a flipped bit moves the match by one hot
    return plan;
  }

  // Information-set solve f(s) = P^{-1} s over a pivot set P of m block
  // positions.  Exhaustive search over C(n, m) pivot sets (bounded) for
  // the one minimizing the per-syndrome-bit fanout; first-found greedy
  // pivots above the bound.
  std::vector<std::size_t> cols(m);
  for (std::size_t j = 0; j < m; ++j) cols[j] = j;
  std::vector<std::size_t> best_cols;
  std::vector<unsigned> best_inv;
  std::size_t best_score = static_cast<std::size_t>(-1);
  std::size_t budget = 200000;
  while (true) {
    std::vector<unsigned> inv;
    const std::size_t score = pivot_score(code, cols, &inv);
    if (score < best_score) {
      best_score = score;
      best_cols = cols;
      best_inv = std::move(inv);
    }
    if (--budget == 0) break;
    // Next combination in lexicographic order.
    std::size_t j = m;
    while (j > 0 && cols[j - 1] == n - m + (j - 1)) --j;
    if (j == 0) break;
    ++cols[j - 1];
    for (std::size_t i = j; i < m; ++i) cols[i] = cols[i - 1] + 1;
  }
  EQC_CHECK(best_score != static_cast<std::size_t>(-1) &&
            "z_repair_plan: Z-check matrix is rank deficient");
  plan.positions = std::move(best_cols);
  plan.tags.assign(best_inv.begin(), best_inv.end());
  plan.max_bit_fanout = best_score;
  return plan;
}

std::vector<unsigned> z_repair_even_pair_syndromes(const CssCode& code) {
  const ZRepairPlan plan = z_repair_plan(code);
  std::vector<unsigned> out;
  const std::size_t mz = code.num_z_checks();
  for (std::size_t r = 0; r < mz; ++r) {
    std::vector<std::size_t> fanout;
    for (std::size_t j = 0; j < plan.tags.size(); ++j)
      if (plan.tags[j] & (1u << r)) fanout.push_back(plan.positions[j]);
    for (std::size_t a = 0; a < fanout.size(); ++a)
      for (std::size_t b = a + 1; b < fanout.size(); ++b)
        out.push_back(code.z_syndrome_of_word((1u << fanout[a]) |
                                              (1u << fanout[b])));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// --- implementations ---------------------------------------------------------

namespace {

class SteaneCode final : public CssCode {
 public:
  std::string_view name() const override { return "steane"; }
  std::size_t n() const override { return Steane::kN; }
  int distance() const override { return Steane::kDistance; }

  std::size_t num_z_checks() const override { return 3; }
  unsigned z_check_mask(std::size_t row) const override {
    EQC_EXPECTS(row < 3);
    return Hamming74::kCheckMasks[row];
  }
  std::size_t num_x_checks() const override { return 3; }
  unsigned x_check_mask(std::size_t row) const override {
    EQC_EXPECTS(row < 3);
    return Hamming74::kCheckMasks[row];
  }

  bool self_dual() const override { return true; }
  bool has_transversal_s() const override { return true; }
  bool has_transversal_t() const override { return false; }

  void append_encode_zero(circuit::Circuit& c,
                          const CodeBlock& b) const override {
    Steane::append_encode_zero(c, b.steane());
  }
  void append_encode_plus(circuit::Circuit& c,
                          const CodeBlock& b) const override {
    Steane::append_encode_plus(c, b.steane());
  }
};

class Rm15Code final : public CssCode {
 public:
  std::string_view name() const override { return "rm15"; }
  std::size_t n() const override { return ReedMuller15::kN; }
  int distance() const override { return ReedMuller15::kDistance; }

  std::size_t num_z_checks() const override {
    return ReedMuller15::z_masks().size();
  }
  unsigned z_check_mask(std::size_t row) const override {
    return ReedMuller15::z_masks().at(row);
  }
  std::size_t num_x_checks() const override { return 4; }
  unsigned x_check_mask(std::size_t row) const override {
    return ReedMuller15::x_mask(static_cast<int>(row));
  }

  bool self_dual() const override { return false; }
  bool has_transversal_s() const override { return false; }
  bool has_transversal_t() const override { return true; }

  void append_encode_zero(circuit::Circuit& c,
                          const CodeBlock& b) const override {
    ReedMuller15::append_encode_zero(c, b.rm15());
  }
  void append_encode_plus(circuit::Circuit& c,
                          const CodeBlock& b) const override {
    // |+>_L = uniform superposition over span(x masks) union its coset by
    // the all-ones logical X support — one extra generator.
    std::vector<unsigned> masks;
    for (int j = 0; j < 4; ++j) masks.push_back(ReedMuller15::x_mask(j));
    masks.push_back((1u << 15) - 1);
    append_superposition_encoder(c, b, std::move(masks));
  }
};

}  // namespace

const CssCode& steane_code() {
  static const SteaneCode code;
  return code;
}

const CssCode& rm15_code() {
  static const Rm15Code code;
  return code;
}

const CssCode* find_code(std::string_view name) {
  if (name == steane_code().name()) return &steane_code();
  if (name == rm15_code().name()) return &rm15_code();
  return nullptr;
}

std::vector<std::string_view> known_code_names() {
  return {steane_code().name(), rm15_code().name()};
}

}  // namespace eqc::codes
