// The Steane [[7,1,3]] CSS code.
//
// This is the quantum code the paper builds its constructions on ("if the
// 7-bit CSS code is used to encode data ... a measurement will yield a
// (possibly corrupted) codeword of a classical 7-bit Hamming code").
//
// Conventions:
//  * |0>_L = (1/sqrt 8) sum_{c in C2} |c>, with C2 the dual [7,3] code;
//  * |1>_L = X^x7 |0>_L (components c ^ 1111111);
//  * logical X = X^x7, logical Z = Z^x7, logical H = H^x7 (self-dual CSS);
//  * bit-wise S implements logical S^dagger, so logical S = (S^dagger)^x7
//    — exactly the paper's remark that "the bit-wise sigma_z^{1/2} yields a
//    sigma_z^{-1/2} logical gate".
//  * T (= sigma_z^{1/4}) is NOT transversal; providing it without
//    measurement is the subject of the paper's Fig. 3.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "codes/hamming.h"
#include "pauli/pauli_string.h"
#include "qsim/state_vector.h"
#include "stab/tableau.h"

namespace eqc::codes {

/// The 7 physical qubits of one encoded block, as indices into a register.
struct Block {
  std::array<std::uint32_t, 7> q;

  static Block contiguous(std::uint32_t base) {
    Block b;
    for (std::uint32_t i = 0; i < 7; ++i) b.q[i] = base + i;
    return b;
  }
};

class Steane {
 public:
  static constexpr std::size_t kN = 7;
  static constexpr int kDistance = 3;
  static constexpr int kCorrectable = 1;

  // --- classical decoding of Z-basis readouts ---------------------------
  /// Logical bit carried by a (possibly singly-corrupted) 7-bit readout:
  /// Hamming-correct, then take the parity.
  static bool decode_logical_bit(unsigned word7);

  // --- circuit builders ---------------------------------------------------
  static void append_encode_zero(circuit::Circuit& c, const Block& b);
  static void append_encode_plus(circuit::Circuit& c, const Block& b);
  /// |+>_L prepared directly (uniform superposition over all 16 Hamming
  /// codewords) WITHOUT a trailing transversal-H layer.  Unlike
  /// encode_plus, encoder X-fault bursts stay X-type (they would become
  /// multi-Z through the final H layer); note that Z faults on the
  /// multi-target parity qubits can still back-propagate to several
  /// pivots, so this encoder alone is NOT a fault-tolerant ancilla
  /// factory — see ftqc/recovery.cc's prepare_plus_ancilla for the full
  /// burst-repaired construction.
  static void append_encode_plus_direct(circuit::Circuit& c, const Block& b);
  static void append_logical_x(circuit::Circuit& c, const Block& b);
  static void append_logical_z(circuit::Circuit& c, const Block& b);
  static void append_logical_h(circuit::Circuit& c, const Block& b);
  static void append_logical_s(circuit::Circuit& c, const Block& b);
  static void append_logical_sdg(circuit::Circuit& c, const Block& b);
  static void append_logical_cnot(circuit::Circuit& c, const Block& control,
                                  const Block& target);
  static void append_logical_cz(circuit::Circuit& c, const Block& a,
                                const Block& b);

  // --- stabilizers and logical operators as Pauli strings -----------------
  /// X-type generator `row` (0..2) on a `total`-qubit register.
  static pauli::PauliString x_stabilizer(std::size_t total, const Block& b,
                                         int row);
  static pauli::PauliString z_stabilizer(std::size_t total, const Block& b,
                                         int row);
  static pauli::PauliString logical_x_op(std::size_t total, const Block& b);
  static pauli::PauliString logical_z_op(std::size_t total, const Block& b);

  // --- dense reference states (7-qubit register, block-local) -------------
  static qsim::StateVector logical_zero();
  static qsim::StateVector logical_one();
  /// alpha |0>_L + beta |1>_L (amplitudes normalized by the caller's input).
  static std::vector<cplx> encoded_amplitudes(cplx alpha, cplx beta);

  // --- verification-only decoding (not part of any protocol) -------------
  /// One round of ideal (noiseless) error correction applied directly to a
  /// tableau: measures all 6 stabilizer generators and applies the lookup
  /// correction.
  static void perfect_correct(stab::Tableau& tab, const Block& b, Rng& rng);
  /// True iff all 6 generators stabilize the tableau state.
  static bool block_in_codespace(const stab::Tableau& tab, const Block& b);
  /// Logical Z eigenvalue after perfect correction: +1 (|0>_L), -1 (|1>_L),
  /// 0 (superposition).
  static double logical_z_expectation(const stab::Tableau& tab,
                                      const Block& b);
};

}  // namespace eqc::codes
