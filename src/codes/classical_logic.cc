#include "codes/classical_logic.h"

namespace eqc::codes {

void append_majority3(circuit::Circuit& circ, std::uint32_t a, std::uint32_t b,
                      std::uint32_t c,
                      std::span<const std::uint32_t> targets) {
  for (std::uint32_t t : targets) {
    circ.ccx(a, b, t);
    circ.ccx(a, c, t);
    circ.ccx(b, c, t);
  }
}

void append_or3_into(circuit::Circuit& circ, std::uint32_t s0,
                     std::uint32_t s1, std::uint32_t s2, std::uint32_t w0,
                     std::uint32_t w1, std::uint32_t t) {
  circ.x(s0);
  circ.x(s1);
  circ.x(s2);
  circ.ccx(s0, s1, w0);   // w0 = !s0 & !s1
  circ.ccx(w0, s2, w1);   // w1 = !s0 & !s1 & !s2 = NOR(s0,s1,s2)
  circ.x(t);
  circ.cnot(w1, t);       // t ^= 1 ^ NOR = OR
}

void append_fanout(circuit::Circuit& circ, std::uint32_t source,
                   std::span<const std::uint32_t> targets) {
  for (std::uint32_t t : targets) circ.cnot(source, t);
}

void append_and2_into(circuit::Circuit& circ, std::uint32_t a, std::uint32_t b,
                      std::uint32_t t) {
  circ.ccx(a, b, t);
}

}  // namespace eqc::codes
