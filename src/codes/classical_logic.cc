#include "codes/classical_logic.h"

#include "common/assert.h"

namespace eqc::codes {

void append_majority3(circuit::Circuit& circ, std::uint32_t a, std::uint32_t b,
                      std::uint32_t c,
                      std::span<const std::uint32_t> targets) {
  for (std::uint32_t t : targets) {
    circ.ccx(a, b, t);
    circ.ccx(a, c, t);
    circ.ccx(b, c, t);
  }
}

void append_or3_into(circuit::Circuit& circ, std::uint32_t s0,
                     std::uint32_t s1, std::uint32_t s2, std::uint32_t w0,
                     std::uint32_t w1, std::uint32_t t) {
  circ.x(s0);
  circ.x(s1);
  circ.x(s2);
  circ.ccx(s0, s1, w0);   // w0 = !s0 & !s1
  circ.ccx(w0, s2, w1);   // w1 = !s0 & !s1 & !s2 = NOR(s0,s1,s2)
  circ.x(t);
  circ.cnot(w1, t);       // t ^= 1 ^ NOR = OR
}

void append_fanout(circuit::Circuit& circ, std::uint32_t source,
                   std::span<const std::uint32_t> targets) {
  for (std::uint32_t t : targets) circ.cnot(source, t);
}

void append_and2_into(circuit::Circuit& circ, std::uint32_t a, std::uint32_t b,
                      std::uint32_t t) {
  circ.ccx(a, b, t);
}

void append_or_into(circuit::Circuit& circ,
                    std::span<const std::uint32_t> bits,
                    std::span<const std::uint32_t> work, std::uint32_t t) {
  const std::size_t m = bits.size();
  EQC_EXPECTS(m >= 2 && work.size() >= m - 1);
  for (auto b : bits) circ.x(b);
  // work[j] accumulates the AND of the first j+2 negated bits; the last one
  // is NOR(bits).
  circ.ccx(bits[0], bits[1], work[0]);
  for (std::size_t j = 2; j < m; ++j) circ.ccx(work[j - 2], bits[j], work[j - 1]);
  circ.x(t);
  circ.cnot(work[m - 2], t);  // t ^= 1 ^ NOR = OR
}

void append_match_pattern(circuit::Circuit& circ,
                          std::span<const std::uint32_t> reg, unsigned pattern,
                          std::span<const std::uint32_t> work,
                          std::uint32_t target, bool prep_target) {
  const std::size_t m = reg.size();
  EQC_EXPECTS(m >= 2 && work.size() + 2 >= m);
  for (std::size_t j = 0; j + 2 < m; ++j) circ.prep_z(work[j]);
  if (prep_target) circ.prep_z(target);
  for (std::size_t j = 0; j < m; ++j)
    if (!(pattern & (1u << j))) circ.x(reg[j]);
  if (m == 2) {
    circ.ccx(reg[0], reg[1], target);
  } else {
    circ.ccx(reg[0], reg[1], work[0]);
    for (std::size_t j = 2; j + 1 < m; ++j)
      circ.ccx(work[j - 2], reg[j], work[j - 1]);
    circ.ccx(work[m - 3], reg[m - 1], target);
  }
  for (std::size_t j = 0; j < m; ++j)
    if (!(pattern & (1u << j))) circ.x(reg[j]);
}

void append_nor_into(circuit::Circuit& circ,
                     std::span<const std::uint32_t> bits,
                     std::span<const std::uint32_t> work, std::uint32_t out) {
  const std::size_t m = bits.size();
  EQC_EXPECTS(m >= 2 && work.size() + 2 >= m);
  for (std::size_t j = 0; j + 2 < m; ++j) circ.prep_z(work[j]);
  circ.prep_z(out);
  for (auto b : bits) circ.x(b);
  if (m == 2) {
    circ.ccx(bits[0], bits[1], out);
  } else {
    circ.ccx(bits[0], bits[1], work[0]);
    for (std::size_t j = 2; j + 1 < m; ++j)
      circ.ccx(work[j - 2], bits[j], work[j - 1]);
    circ.ccx(work[m - 3], bits[m - 1], out);
  }
}

namespace {

std::size_t counter_width(std::size_t n) {
  std::size_t w = 0;
  for (std::size_t v = n; v != 0; v >>= 1) ++w;
  return w;
}

}  // namespace

std::size_t count_threshold_scratch(std::size_t nbits) {
  const std::size_t w = counter_width(nbits);
  return w + (w > 2 ? w - 2 : 0);
}

void append_count_threshold(circuit::Circuit& circ,
                            std::span<const std::uint32_t> bits,
                            std::size_t min_count,
                            std::span<const std::uint32_t> scratch,
                            std::uint32_t t) {
  const std::size_t m = bits.size();
  EQC_EXPECTS(m >= 2 && min_count >= 1 && min_count <= m);
  const std::size_t w = counter_width(m);
  EQC_EXPECTS(scratch.size() >= count_threshold_scratch(m));
  const auto counter = scratch.subspan(0, w);
  const auto work = scratch.subspan(w);
  for (auto q : scratch.subspan(0, count_threshold_scratch(m)))
    circ.prep_z(q);
  for (auto b : bits) {
    // counter += b: ripple increment, high bits first.  The carry into bit
    // j needs AND(counter[0..j)); it is computed into the work chain,
    // applied controlled on b, and uncomputed.
    for (std::size_t j = w; j-- > 2;) {
      circ.ccx(counter[1], counter[0], work[0]);
      for (std::size_t i = 2; i < j; ++i)
        circ.ccx(work[i - 2], counter[i], work[i - 1]);
      circ.ccx(b, work[j - 2], counter[j]);
      for (std::size_t i = j; i-- > 2;)
        circ.ccx(work[i - 2], counter[i], work[i - 1]);
      circ.ccx(counter[1], counter[0], work[0]);
    }
    if (w >= 2) circ.ccx(b, counter[0], counter[1]);
    circ.cnot(b, counter[0]);
  }
  // Threshold: t ^= [count >= min_count], decoded as the XOR of the
  // equality matches for every achievable qualifying count.
  for (std::size_t v = min_count; v <= m; ++v)
    append_match_pattern(circ, counter, static_cast<unsigned>(v), work, t,
                         /*prep_target=*/false);
}

std::size_t majority_counter_scratch(int reps) {
  return count_threshold_scratch(static_cast<std::size_t>(reps));
}

void append_majority_counter(circuit::Circuit& circ,
                             std::span<const std::uint32_t> copies, int reps,
                             std::span<const std::uint32_t> scratch,
                             std::uint32_t t) {
  EQC_EXPECTS(reps >= 3 && reps % 2 == 1);
  EQC_EXPECTS(copies.size() >= static_cast<std::size_t>(reps));
  append_count_threshold(circ,
                         copies.subspan(0, static_cast<std::size_t>(reps)),
                         static_cast<std::size_t>(reps) / 2 + 1, scratch, t);
}

}  // namespace eqc::codes
