#include "codes/reed_muller.h"

#include <bit>
#include <cmath>

#include "common/assert.h"

namespace eqc::codes {

unsigned ReedMuller15::x_mask(int j) {
  EQC_EXPECTS(j >= 0 && j < 4);
  unsigned mask = 0;
  for (unsigned i = 0; i < 15; ++i)
    if (((i + 1) >> j) & 1) mask |= 1u << i;
  return mask;
}

const std::vector<unsigned>& ReedMuller15::z_masks() {
  static const std::vector<unsigned> masks = [] {
    std::vector<unsigned> out;
    for (int j = 0; j < 4; ++j) out.push_back(x_mask(j));
    for (int j = 0; j < 4; ++j)
      for (int k = j + 1; k < 4; ++k)
        out.push_back(x_mask(j) & x_mask(k));
    return out;
  }();
  return masks;
}

std::vector<unsigned> ReedMuller15::codewords_zero() {
  std::vector<unsigned> out;
  for (unsigned a = 0; a < 16; ++a) {
    unsigned w = 0;
    for (int j = 0; j < 4; ++j)
      if (a & (1u << j)) w ^= x_mask(j);
    out.push_back(w);
  }
  return out;
}

void ReedMuller15::append_encode_zero(circuit::Circuit& c, const RmBlock& b) {
  // Pivot for mask j: the qubit whose address is exactly 2^j.
  for (int j = 0; j < 4; ++j) {
    const unsigned pivot = (1u << j) - 1;  // index of address 2^j
    c.h(b.q[pivot]);
  }
  for (int j = 0; j < 4; ++j) {
    const unsigned pivot = (1u << j) - 1;
    const unsigned mask = x_mask(j);
    for (unsigned i = 0; i < 15; ++i)
      if ((mask & (1u << i)) && i != pivot) c.cnot(b.q[pivot], b.q[i]);
  }
}

void ReedMuller15::append_logical_x(circuit::Circuit& c, const RmBlock& b) {
  for (auto q : b.q) c.x(q);
}

void ReedMuller15::append_logical_z(circuit::Circuit& c, const RmBlock& b) {
  for (auto q : b.q) c.z(q);
}

void ReedMuller15::append_logical_t(circuit::Circuit& c, const RmBlock& b) {
  // Bit-wise T^(x)15 realizes logical T^dagger, so logical T is bit-wise
  // Tdg — the mirror of the Steane code's S/Sdg relationship.
  for (auto q : b.q) c.tdg(q);
}

void ReedMuller15::append_logical_tdg(circuit::Circuit& c, const RmBlock& b) {
  for (auto q : b.q) c.t(q);
}

void ReedMuller15::append_logical_cnot(circuit::Circuit& c,
                                       const RmBlock& control,
                                       const RmBlock& target) {
  for (std::size_t i = 0; i < kN; ++i) c.cnot(control.q[i], target.q[i]);
}

pauli::PauliString ReedMuller15::x_stabilizer(std::size_t total,
                                              const RmBlock& b, int j) {
  const unsigned mask = x_mask(j);
  pauli::PauliString p(total);
  for (unsigned i = 0; i < 15; ++i)
    if (mask & (1u << i)) p.set(b.q[i], pauli::Pauli::X);
  return p;
}

pauli::PauliString ReedMuller15::z_stabilizer(std::size_t total,
                                              const RmBlock& b, int k) {
  EQC_EXPECTS(k >= 0 && k < 10);
  const unsigned mask = z_masks()[static_cast<std::size_t>(k)];
  pauli::PauliString p(total);
  for (unsigned i = 0; i < 15; ++i)
    if (mask & (1u << i)) p.set(b.q[i], pauli::Pauli::Z);
  return p;
}

pauli::PauliString ReedMuller15::logical_x_op(std::size_t total,
                                              const RmBlock& b) {
  pauli::PauliString p(total);
  for (auto q : b.q) p.set(q, pauli::Pauli::X);
  return p;
}

pauli::PauliString ReedMuller15::logical_z_op(std::size_t total,
                                              const RmBlock& b) {
  pauli::PauliString p(total);
  for (auto q : b.q) p.set(q, pauli::Pauli::Z);
  return p;
}

std::vector<cplx> ReedMuller15::encoded_amplitudes(cplx alpha, cplx beta) {
  std::vector<cplx> amp(std::size_t{1} << 15, cplx{0, 0});
  const double w = 1.0 / 4.0;  // 16 codewords
  for (unsigned cw : codewords_zero()) {
    amp[cw] += alpha * w;
    amp[cw ^ 0x7FFF] += beta * w;
  }
  return amp;
}

}  // namespace eqc::codes
