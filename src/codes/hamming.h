// The classical [7,4,3] Hamming code and the repetition-code majority vote.
//
// The Hamming code underpins everything in this library: its parity checks
// are the Steane code's stabilizers, the syndrome bits of the paper's Fig. 1
// N-gate circuit, and the classical decoder used on measured codewords.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace eqc::codes {

class Hamming74 {
 public:
  static constexpr int kN = 7;

  /// Parity-check row j as a 7-bit mask (bit i set iff position i is
  /// checked); the column at position i is the binary expansion of i+1.
  static constexpr std::array<unsigned, 3> kCheckMasks = {0x55, 0x66, 0x78};

  /// Generator masks of the dual [7,3] code C2 = rowspace of the checks
  /// (identical to kCheckMasks; listed separately for readability where the
  /// dual-code role is meant).
  static constexpr std::array<unsigned, 3> kDualBasis = kCheckMasks;

  /// 3-bit syndrome of a 7-bit word; 0 means "no detectable error".
  static unsigned syndrome(unsigned word);
  /// Position (0-based) of the single-bit error for a syndrome, -1 if none.
  static int error_position(unsigned syndrome);
  /// Single-error correction: flips the position the syndrome points at.
  static unsigned correct(unsigned word);
  static bool is_codeword(unsigned word);
  /// All 16 codewords.
  static std::vector<unsigned> codewords();
  /// All 8 words of the dual code C2 (the even-weight subcode).
  static std::vector<unsigned> dual_codewords();
};

/// Majority vote over an odd number of bits.
bool majority(const std::vector<bool>& bits);

/// Parity (XOR) of a word's bits.
bool word_parity(unsigned word);

}  // namespace eqc::codes
