// The [[15,1,3]] quantum Reed-Muller code — the Steane code's mirror image.
//
// On the Steane code H, S and CNOT are transversal but T is not: that gap
// is exactly what the paper's Fig. 3 machinery fills.  On this code the
// situation is reversed: bit-wise T^(x)15 implements logical T^dagger
// (so T is "free"), but bit-wise H does NOT preserve the code space — a
// measurement-free Hadamard would need the paper's special-state + N-gate
// machinery instead.  Having both codes in the library demonstrates that
// the paper's contribution is about *completing universal sets* in
// general, not about one particular missing gate.
//
// Construction (CSS): qubits are indexed by the 4-bit addresses 1..15.
//  * X-type stabilizers: for each address bit j, X on the 8 qubits whose
//    address has bit j set.
//  * Z-type stabilizers: the same 4 masks as Z, plus Z on the 4-qubit
//    intersection masks for each of the 6 address-bit pairs (10 total).
//  * |0>_L is the uniform superposition over the span of the X masks;
//    logical X = X^(x)15, logical Z = Z^(x)15.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "pauli/pauli_string.h"
#include "qsim/state_vector.h"

namespace eqc::codes {

/// The 15 physical qubits of one encoded block.
struct RmBlock {
  std::array<std::uint32_t, 15> q;

  static RmBlock contiguous(std::uint32_t base) {
    RmBlock b;
    for (std::uint32_t i = 0; i < 15; ++i) b.q[i] = base + i;
    return b;
  }
};

class ReedMuller15 {
 public:
  static constexpr std::size_t kN = 15;
  static constexpr int kDistance = 3;

  /// Address-bit mask j (j in 0..3): bit i set iff address i+1 has bit j.
  static unsigned x_mask(int j);
  /// The 10 Z-generator masks: 4 address masks + 6 pair intersections.
  static const std::vector<unsigned>& z_masks();
  /// All 16 words of the X-stabilizer span (components of |0>_L).
  static std::vector<unsigned> codewords_zero();

  // --- circuit builders ----------------------------------------------------
  static void append_encode_zero(circuit::Circuit& c, const RmBlock& b);
  static void append_logical_x(circuit::Circuit& c, const RmBlock& b);
  static void append_logical_z(circuit::Circuit& c, const RmBlock& b);
  /// Logical T via the TRANSVERSAL property: bit-wise Tdg = logical T.
  static void append_logical_t(circuit::Circuit& c, const RmBlock& b);
  static void append_logical_tdg(circuit::Circuit& c, const RmBlock& b);
  static void append_logical_cnot(circuit::Circuit& c, const RmBlock& control,
                                  const RmBlock& target);

  // --- operators ------------------------------------------------------------
  static pauli::PauliString x_stabilizer(std::size_t total, const RmBlock& b,
                                         int j);
  static pauli::PauliString z_stabilizer(std::size_t total, const RmBlock& b,
                                         int k);  ///< k in 0..9
  static pauli::PauliString logical_x_op(std::size_t total, const RmBlock& b);
  static pauli::PauliString logical_z_op(std::size_t total, const RmBlock& b);

  // --- dense reference states (15-qubit register) --------------------------
  static std::vector<cplx> encoded_amplitudes(cplx alpha, cplx beta);
};

}  // namespace eqc::codes
