// Runtime-polymorphic CSS-code interface.
//
// The paper states its constructions for "the 7-bit CSS code", but the
// machinery — classical parity checks read onto repetition ancillas, the
// N gate, measurement-free recovery — only needs a CSS code whose Z-basis
// readouts are classical codewords.  CssCode captures exactly the facts the
// gadget builders consume: block length, parity-check masks, logical
// operator supports, the transversal-gate table, and encoder circuit
// fragments.  Two implementations ship: Steane [[7,1,3]] (self-dual;
// transversal H/S/CNOT/CZ) and Reed-Muller [[15,1,3]] (transversal T/CNOT,
// H NOT transversal) — the mirror pair that shows the paper's technique is
// about completing universal sets in general.
//
// Conventions shared by both (and assumed by the generic gadgets):
//  * n <= 32; check masks are bitmasks over block positions (bit i =
//    position i);
//  * one logical qubit, logical X = X^(x)n and logical Z = Z^(x)n
//    (all-ones supports), so the logical bit of a Z-basis readout is the
//    parity of the corrected word;
//  * Z-type check masks are parity checks of a classical code containing
//    every Z-basis component of every codeword state, so they can be read
//    onto classical bits without decohering the block (the N-gate trick).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "circuit/circuit.h"
#include "codes/reed_muller.h"
#include "codes/steane.h"
#include "common/rng.h"
#include "pauli/pauli_string.h"
#include "stab/tableau.h"

namespace eqc::codes {

/// A code block of runtime-determined length (the code-generic counterpart
/// of the fixed-size Block / RmBlock).
struct CodeBlock {
  std::vector<std::uint32_t> q;

  std::size_t size() const { return q.size(); }

  static CodeBlock contiguous(std::uint32_t base, std::size_t n) {
    CodeBlock b;
    b.q.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      b.q[i] = base + static_cast<std::uint32_t>(i);
    return b;
  }
  static CodeBlock of(const Block& b) {
    CodeBlock out;
    out.q.assign(b.q.begin(), b.q.end());
    return out;
  }
  static CodeBlock of(const RmBlock& b) {
    CodeBlock out;
    out.q.assign(b.q.begin(), b.q.end());
    return out;
  }
  /// Conversions back to the fixed-size blocks (size must match).
  Block steane() const;
  RmBlock rm15() const;
};

class CssCode {
 public:
  virtual ~CssCode() = default;

  // --- parameters ----------------------------------------------------------
  virtual std::string_view name() const = 0;
  virtual std::size_t n() const = 0;
  virtual int distance() const = 0;

  // --- parity checks (bitmasks over block positions) -----------------------
  /// Z-type stabilizer generators (detect X errors; classical parity checks
  /// of Z-basis readouts).
  virtual std::size_t num_z_checks() const = 0;
  virtual unsigned z_check_mask(std::size_t row) const = 0;
  /// X-type stabilizer generators (detect Z errors).
  virtual std::size_t num_x_checks() const = 0;
  virtual unsigned x_check_mask(std::size_t row) const = 0;

  // --- transversal-gate table ----------------------------------------------
  /// Self-dual CSS: bit-wise H is logical H (and bit-wise CZ logical CZ).
  virtual bool self_dual() const = 0;
  /// Bit-wise Sdg realizes logical S (Steane).
  virtual bool has_transversal_s() const = 0;
  /// Bit-wise Tdg realizes logical T (RM15).
  virtual bool has_transversal_t() const = 0;

  // --- classical decoding --------------------------------------------------
  /// Bitwise syndrome of a Z-basis readout word under the Z-type checks
  /// (bit r = parity of word & z_check_mask(r)).
  unsigned z_syndrome_of_word(unsigned word) const;
  /// Syndrome patterns of single errors (nonzero and distinct for d >= 3).
  unsigned z_syndrome_of_x_error(std::size_t pos) const;
  unsigned x_syndrome_of_z_error(std::size_t pos) const;
  /// Position whose single error has this syndrome; -1 for zero/unmatched.
  int x_error_position(unsigned z_syndrome) const;
  int z_error_position(unsigned x_syndrome) const;
  /// Logical bit of a (possibly singly-corrupted) Z-basis readout:
  /// syndrome-correct, then take the parity (all-ones logical Z support).
  bool decode_logical_bit(unsigned word) const;

  // --- circuit builders ----------------------------------------------------
  virtual void append_encode_zero(circuit::Circuit& c,
                                  const CodeBlock& b) const = 0;
  virtual void append_encode_plus(circuit::Circuit& c,
                                  const CodeBlock& b) const = 0;
  void append_logical_x(circuit::Circuit& c, const CodeBlock& b) const;
  void append_logical_z(circuit::Circuit& c, const CodeBlock& b) const;
  /// Requires self_dual().
  void append_logical_h(circuit::Circuit& c, const CodeBlock& b) const;
  /// Require has_transversal_s().
  void append_logical_s(circuit::Circuit& c, const CodeBlock& b) const;
  void append_logical_sdg(circuit::Circuit& c, const CodeBlock& b) const;
  /// Require has_transversal_t().
  void append_logical_t(circuit::Circuit& c, const CodeBlock& b) const;
  void append_logical_tdg(circuit::Circuit& c, const CodeBlock& b) const;
  /// Transversal CNOT (logical CNOT on any CSS code).
  void append_logical_cnot(circuit::Circuit& c, const CodeBlock& control,
                           const CodeBlock& target) const;
  /// Requires self_dual() (bit-wise CZ = logical CZ).
  void append_logical_cz(circuit::Circuit& c, const CodeBlock& a,
                         const CodeBlock& b) const;

  // --- stabilizers and logical operators as Pauli strings ------------------
  pauli::PauliString z_stabilizer(std::size_t total, const CodeBlock& b,
                                  std::size_t row) const;
  pauli::PauliString x_stabilizer(std::size_t total, const CodeBlock& b,
                                  std::size_t row) const;
  pauli::PauliString logical_x_op(std::size_t total, const CodeBlock& b) const;
  pauli::PauliString logical_z_op(std::size_t total, const CodeBlock& b) const;

  // --- verification-only decoding (tableau oracles) ------------------------
  /// Min-weight X pattern (bitmask over block positions) with the given
  /// Z-type syndrome — the ideal bounded-distance decode perfect_correct
  /// applies.  Exposed so precomputed failure oracles (frame simulator)
  /// reproduce perfect_correct's exact correction choice.
  unsigned x_fix_for_z_syndrome(unsigned sz) const;
  /// Min-weight Z pattern with the given X-type syndrome.
  unsigned z_fix_for_x_syndrome(unsigned sx) const;
  /// One round of ideal error correction: measure every generator, apply
  /// the single-qubit lookup correction.
  void perfect_correct(stab::Tableau& tab, const CodeBlock& b, Rng& rng) const;
  /// True iff every generator stabilizes the state.
  bool block_in_codespace(const stab::Tableau& tab, const CodeBlock& b) const;
  /// +1 (|0>_L), -1 (|1>_L), 0 (superposition) after no correction.
  double logical_z_expectation(const stab::Tableau& tab,
                               const CodeBlock& b) const;
};

/// Steane [[7,1,3]] (delegates every circuit fragment to codes::Steane, so
/// generic gadgets built on it are byte-identical to the hard-wired ones).
const CssCode& steane_code();
/// Reed-Muller [[15,1,3]].
const CssCode& rm15_code();
/// Lookup by name ("steane" | "rm15"); nullptr when unknown.
const CssCode* find_code(std::string_view name);
/// Names accepted by find_code, in registry order.
std::vector<std::string_view> known_code_names();

/// Appends the pivot-form GF(2) encoder of the uniform superposition over
/// span(masks): row-reduce the masks, H each pivot, fan each pivot out
/// along its reduced generator.  (Exposed for tests; rm15's |+>_L encoder.)
void append_superposition_encoder(circuit::Circuit& c, const CodeBlock& b,
                                  std::vector<unsigned> masks);

/// Plan for mapping ANY Z-type syndrome s to an X pattern f(s) with
/// H_z f(s) = s — the contract ancilla burst repair needs: applying f(s)
/// returns a block with syndrome s to the codespace (up to a logical X,
/// which the caller's coset fix handles) no matter how many qubits the
/// burst hit.
struct ZRepairPlan {
  /// True when every nonzero syndrome already equals some single-qubit
  /// syndrome (perfect codes: Steane 2^3 - 1 = 7 positions), so the
  /// historical one-hot position decode covers the whole syndrome space.
  bool single_qubit_complete = false;
  /// Otherwise, an information-set solve: apply X on block position
  /// positions[j] iff parity(s & tags[j]).  tags[j] bit r refers to
  /// syndrome bit r.
  std::vector<std::size_t> positions;
  std::vector<unsigned> tags;
  /// Max number of positions any one syndrome bit feeds = the worst-case
  /// X weight one corrupted classical syndrome bit can inject through the
  /// repair.  The pivot set is chosen (exhaustively for small codes) to
  /// minimize this; for RM15 the optimum is 3 = its X-error correction
  /// radius, so a single classical fault stays correctable.
  std::size_t max_bit_fanout = 0;
};
ZRepairPlan z_repair_plan(const CssCode& code);

/// Z-type syndromes of every weight-2 X error {p, q} with p and q inside
/// one repair-register bit's fanout set (sorted, deduplicated; empty for
/// single_qubit_complete codes).  These are exactly the even-weight bursts
/// a single classical fault in the burst repair can leave on a block, and
/// therefore the only syndromes on which the N gate's OR-based parity
/// compensation (correct for every odd-weight correctable error) must be
/// cancelled.  Each is distinct from every single-qubit and weight-3
/// syndrome whenever the code corrects weight-2 errors.
std::vector<unsigned> z_repair_even_pair_syndromes(const CssCode& code);

}  // namespace eqc::codes
