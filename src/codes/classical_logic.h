// Reversible classical logic gadgets on "classical ancilla" qubits.
//
// The paper's key resource (Secs. 4-5): once data lives in the classical
// repetition basis {|0...0>, |1...1>}, phase errors on it are harmless and
// NOT/CNOT/Toffoli act as ordinary reversible logic protected by the
// repetition code.  These builders emit exactly that logic.
#pragma once

#include <cstdint>
#include <span>

#include "circuit/circuit.h"

namespace eqc::codes {

/// For every t in `targets`: t ^= MAJ(a, b, c).  Three Toffolis per target
/// (MAJ = ab + ac + bc over GF(2)).  This is the paper's "correct the
/// outcome using a majority vote, and then copy the result into seven bits".
void append_majority3(circuit::Circuit& circ, std::uint32_t a, std::uint32_t b,
                      std::uint32_t c, std::span<const std::uint32_t> targets);

/// t ^= OR(s0, s1, s2).  Flips the s bits (left negated) and dirties the two
/// work bits w0, w1 (callers discard or reset them); OR = NOT(AND of the
/// negations).
void append_or3_into(circuit::Circuit& circ, std::uint32_t s0,
                     std::uint32_t s1, std::uint32_t s2, std::uint32_t w0,
                     std::uint32_t w1, std::uint32_t t);

/// For every t in `targets`: t ^= source (classical fan-out via CNOT).
void append_fanout(circuit::Circuit& circ, std::uint32_t source,
                   std::span<const std::uint32_t> targets);

/// t ^= AND(a, b) using one Toffoli (convenience wrapper with intent-name).
void append_and2_into(circuit::Circuit& circ, std::uint32_t a, std::uint32_t b,
                      std::uint32_t t);

}  // namespace eqc::codes
