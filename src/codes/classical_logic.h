// Reversible classical logic gadgets on "classical ancilla" qubits.
//
// The paper's key resource (Secs. 4-5): once data lives in the classical
// repetition basis {|0...0>, |1...1>}, phase errors on it are harmless and
// NOT/CNOT/Toffoli act as ordinary reversible logic protected by the
// repetition code.  These builders emit exactly that logic.
#pragma once

#include <cstdint>
#include <span>

#include "circuit/circuit.h"

namespace eqc::codes {

/// For every t in `targets`: t ^= MAJ(a, b, c).  Three Toffolis per target
/// (MAJ = ab + ac + bc over GF(2)).  This is the paper's "correct the
/// outcome using a majority vote, and then copy the result into seven bits".
void append_majority3(circuit::Circuit& circ, std::uint32_t a, std::uint32_t b,
                      std::uint32_t c, std::span<const std::uint32_t> targets);

/// t ^= OR(s0, s1, s2).  Flips the s bits (left negated) and dirties the two
/// work bits w0, w1 (callers discard or reset them); OR = NOT(AND of the
/// negations).
void append_or3_into(circuit::Circuit& circ, std::uint32_t s0,
                     std::uint32_t s1, std::uint32_t s2, std::uint32_t w0,
                     std::uint32_t w1, std::uint32_t t);

/// For every t in `targets`: t ^= source (classical fan-out via CNOT).
void append_fanout(circuit::Circuit& circ, std::uint32_t source,
                   std::span<const std::uint32_t> targets);

/// t ^= AND(a, b) using one Toffoli (convenience wrapper with intent-name).
void append_and2_into(circuit::Circuit& circ, std::uint32_t a, std::uint32_t b,
                      std::uint32_t t);

// --- code-generic widenings (m-ary OR, pattern match, 2k+1 majority) --------
//
// The three gadgets below generalize the fixed-width builders above to any
// register width; each reduces to the exact op stream of its hard-wired
// predecessor at the historical width (enforced by the golden-equivalence
// tests), so the Steane-instantiated gadgets stay byte-identical.

/// t ^= OR(bits).  Generalizes append_or3_into to any |bits| >= 2: flips
/// every bit in `bits` (left negated) and dirties the |bits|-1 work bits.
void append_or_into(circuit::Circuit& circ,
                    std::span<const std::uint32_t> bits,
                    std::span<const std::uint32_t> work, std::uint32_t t);

/// target ^= [reg == pattern] (reversible pattern match, |reg| >= 2).
/// Preps the |reg|-2 chain work bits itself — and the target too unless
/// `prep_target` is false (accumulating XOR-of-matches use).  X negations
/// on `reg` are restored.
void append_match_pattern(circuit::Circuit& circ,
                          std::span<const std::uint32_t> reg, unsigned pattern,
                          std::span<const std::uint32_t> work,
                          std::uint32_t target, bool prep_target = true);

/// out ^= NOR(bits) (|bits| >= 2).  Preps the |bits|-2 chain work bits and
/// `out` itself; flips every bit in `bits` (left negated — callers that
/// need the original values restore or re-prepare them).
void append_nor_into(circuit::Circuit& circ,
                     std::span<const std::uint32_t> bits,
                     std::span<const std::uint32_t> work, std::uint32_t out);

/// Scratch qubits append_count_threshold needs to count `nbits` bits: a
/// bit_width(nbits)-wide population counter plus its chain work.
std::size_t count_threshold_scratch(std::size_t nbits);

/// t ^= [popcount(bits) >= min_count] via a ripple population counter
/// followed by a threshold decode (XOR of equality matches for every
/// achievable count >= min_count).  Preps `scratch` itself (not `t`).
void append_count_threshold(circuit::Circuit& circ,
                            std::span<const std::uint32_t> bits,
                            std::size_t min_count,
                            std::span<const std::uint32_t> scratch,
                            std::uint32_t t);

/// Scratch qubits append_majority_counter needs for `reps` (odd >= 3)
/// copies: a bit_width(reps)-wide population counter plus its chain work.
std::size_t majority_counter_scratch(int reps);

/// t ^= MAJ(copies[0..reps)) via a ripple population counter followed by a
/// threshold decode (XOR of equality matches for every count > reps/2).
/// Preps `scratch` itself, so one scratch register serves many targets; no
/// scratch bit is shared between targets' decodes, preserving the
/// independence argument of the old majority-of-5 counter.
void append_majority_counter(circuit::Circuit& circ,
                             std::span<const std::uint32_t> copies, int reps,
                             std::span<const std::uint32_t> scratch,
                             std::uint32_t t);

}  // namespace eqc::codes
