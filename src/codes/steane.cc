#include "codes/steane.h"

#include <bit>
#include <cmath>

#include "common/assert.h"

namespace eqc::codes {

namespace {

// Encoder structure: H on the three pivot qubits (0, 1, 3), then fan each
// pivot out along its dual-basis generator.  Pivot p_j is the unique
// position where generator j is the only one with support.
struct EncoderRow {
  std::uint32_t pivot;
  std::array<std::uint32_t, 3> fanout;
};
constexpr std::array<EncoderRow, 3> kEncoder = {{
    {0, {2, 4, 6}},  // 0x55 = {0,2,4,6}
    {1, {2, 5, 6}},  // 0x66 = {1,2,5,6}
    {3, {4, 5, 6}},  // 0x78 = {3,4,5,6}
}};

}  // namespace

bool Steane::decode_logical_bit(unsigned word7) {
  return word_parity(Hamming74::correct(word7));
}

void Steane::append_encode_zero(circuit::Circuit& c, const Block& b) {
  for (const auto& row : kEncoder) c.h(b.q[row.pivot]);
  for (const auto& row : kEncoder)
    for (std::uint32_t t : row.fanout) c.cnot(b.q[row.pivot], b.q[t]);
}

void Steane::append_encode_plus(circuit::Circuit& c, const Block& b) {
  append_encode_zero(c, b);
  append_logical_h(c, b);
}

void Steane::append_encode_plus_direct(circuit::Circuit& c, const Block& b) {
  // Systematic Hamming [7,4] encoder: data pivots at positions 2,4,5,6,
  // parity positions 0,1,3.  H on each pivot, then fan out its parities.
  struct Row {
    int pivot;
    std::array<int, 3> parity;  // -1 terminated
  };
  static constexpr std::array<Row, 4> kRows = {{
      {2, {0, 1, -1}},
      {4, {0, 3, -1}},
      {5, {1, 3, -1}},
      {6, {0, 1, 3}},
  }};
  for (const auto& row : kRows) c.h(b.q[row.pivot]);
  for (const auto& row : kRows)
    for (int p : row.parity)
      if (p >= 0) c.cnot(b.q[row.pivot], b.q[p]);
}

void Steane::append_logical_x(circuit::Circuit& c, const Block& b) {
  for (std::uint32_t q : b.q) c.x(q);
}

void Steane::append_logical_z(circuit::Circuit& c, const Block& b) {
  for (std::uint32_t q : b.q) c.z(q);
}

void Steane::append_logical_h(circuit::Circuit& c, const Block& b) {
  for (std::uint32_t q : b.q) c.h(q);
}

void Steane::append_logical_s(circuit::Circuit& c, const Block& b) {
  // Bit-wise S is logical S^dagger; bit-wise S^dagger is logical S.
  for (std::uint32_t q : b.q) c.sdg(q);
}

void Steane::append_logical_sdg(circuit::Circuit& c, const Block& b) {
  for (std::uint32_t q : b.q) c.s(q);
}

void Steane::append_logical_cnot(circuit::Circuit& c, const Block& control,
                                 const Block& target) {
  for (std::size_t i = 0; i < kN; ++i) c.cnot(control.q[i], target.q[i]);
}

void Steane::append_logical_cz(circuit::Circuit& c, const Block& a,
                               const Block& b) {
  for (std::size_t i = 0; i < kN; ++i) c.cz(a.q[i], b.q[i]);
}

pauli::PauliString Steane::x_stabilizer(std::size_t total, const Block& b,
                                        int row) {
  EQC_EXPECTS(row >= 0 && row < 3);
  pauli::PauliString p(total);
  const unsigned mask = Hamming74::kCheckMasks[row];
  for (std::size_t i = 0; i < kN; ++i)
    if (mask & (1u << i)) p.set(b.q[i], pauli::Pauli::X);
  return p;
}

pauli::PauliString Steane::z_stabilizer(std::size_t total, const Block& b,
                                        int row) {
  EQC_EXPECTS(row >= 0 && row < 3);
  pauli::PauliString p(total);
  const unsigned mask = Hamming74::kCheckMasks[row];
  for (std::size_t i = 0; i < kN; ++i)
    if (mask & (1u << i)) p.set(b.q[i], pauli::Pauli::Z);
  return p;
}

pauli::PauliString Steane::logical_x_op(std::size_t total, const Block& b) {
  pauli::PauliString p(total);
  for (std::uint32_t q : b.q) p.set(q, pauli::Pauli::X);
  return p;
}

pauli::PauliString Steane::logical_z_op(std::size_t total, const Block& b) {
  pauli::PauliString p(total);
  for (std::uint32_t q : b.q) p.set(q, pauli::Pauli::Z);
  return p;
}

std::vector<cplx> Steane::encoded_amplitudes(cplx alpha, cplx beta) {
  std::vector<cplx> amp(128, cplx{0, 0});
  const double w = 1.0 / std::sqrt(8.0);
  for (unsigned c : Hamming74::dual_codewords()) {
    amp[c] += alpha * w;
    amp[c ^ 0x7F] += beta * w;
  }
  return amp;
}

qsim::StateVector Steane::logical_zero() {
  return qsim::StateVector::from_amplitudes(encoded_amplitudes(1.0, 0.0));
}

qsim::StateVector Steane::logical_one() {
  return qsim::StateVector::from_amplitudes(encoded_amplitudes(0.0, 1.0));
}

void Steane::perfect_correct(stab::Tableau& tab, const Block& b, Rng& rng) {
  const std::size_t total = tab.num_qubits();
  // Z-type checks detect X errors.
  unsigned sz = 0;
  for (int row = 0; row < 3; ++row)
    if (tab.measure_pauli(z_stabilizer(total, b, row), rng)) sz |= 1u << row;
  int pos = Hamming74::error_position(sz);
  if (pos >= 0) {
    pauli::PauliString fix(total);
    fix.set(b.q[pos], pauli::Pauli::X);
    tab.apply_pauli(fix);
  }
  // X-type checks detect Z errors.
  unsigned sx = 0;
  for (int row = 0; row < 3; ++row)
    if (tab.measure_pauli(x_stabilizer(total, b, row), rng)) sx |= 1u << row;
  pos = Hamming74::error_position(sx);
  if (pos >= 0) {
    pauli::PauliString fix(total);
    fix.set(b.q[pos], pauli::Pauli::Z);
    tab.apply_pauli(fix);
  }
}

bool Steane::block_in_codespace(const stab::Tableau& tab, const Block& b) {
  const std::size_t total = tab.num_qubits();
  for (int row = 0; row < 3; ++row) {
    if (tab.expectation_pauli(z_stabilizer(total, b, row)) != 1.0) return false;
    if (tab.expectation_pauli(x_stabilizer(total, b, row)) != 1.0) return false;
  }
  return true;
}

double Steane::logical_z_expectation(const stab::Tableau& tab,
                                     const Block& b) {
  return tab.expectation_pauli(logical_z_op(tab.num_qubits(), b));
}

}  // namespace eqc::codes
