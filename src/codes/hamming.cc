#include "codes/hamming.h"

#include <bit>

#include "common/assert.h"

namespace eqc::codes {

unsigned Hamming74::syndrome(unsigned word) {
  EQC_EXPECTS(word < 128);
  unsigned s = 0;
  for (int j = 0; j < 3; ++j)
    s |= static_cast<unsigned>(std::popcount(word & kCheckMasks[j]) % 2) << j;
  return s;
}

int Hamming74::error_position(unsigned syndrome) {
  EQC_EXPECTS(syndrome < 8);
  return syndrome == 0 ? -1 : static_cast<int>(syndrome) - 1;
}

unsigned Hamming74::correct(unsigned word) {
  const int pos = error_position(syndrome(word));
  return pos < 0 ? word : word ^ (1u << pos);
}

bool Hamming74::is_codeword(unsigned word) { return syndrome(word) == 0; }

std::vector<unsigned> Hamming74::codewords() {
  std::vector<unsigned> out;
  for (unsigned w = 0; w < 128; ++w)
    if (is_codeword(w)) out.push_back(w);
  return out;
}

std::vector<unsigned> Hamming74::dual_codewords() {
  std::vector<unsigned> out;
  for (unsigned a = 0; a < 8; ++a) {
    unsigned w = 0;
    for (int j = 0; j < 3; ++j)
      if (a & (1u << j)) w ^= kDualBasis[j];
    out.push_back(w);
  }
  return out;
}

bool majority(const std::vector<bool>& bits) {
  EQC_EXPECTS(bits.size() % 2 == 1);
  std::size_t ones = 0;
  for (bool b : bits) ones += b ? 1 : 0;
  return ones * 2 > bits.size();
}

bool word_parity(unsigned word) { return std::popcount(word) % 2 == 1; }

}  // namespace eqc::codes
