#include "ensemble/machine.h"

#include "circuit/sv_backend.h"
#include "circuit/tab_backend.h"
#include "common/assert.h"

namespace eqc::ensemble {

EnsembleMachine::EnsembleMachine(std::size_t num_qubits,
                                 std::size_t num_computers,
                                 std::uint64_t seed)
    : num_qubits_(num_qubits), sampled_(num_computers > 0), rng_(seed) {
  EQC_EXPECTS(num_qubits > 0);
  const std::size_t n = sampled_ ? num_computers : 1;
  trajectories_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    trajectories_.emplace_back(num_qubits);
}

void EnsembleMachine::run(const circuit::Circuit& circuit,
                          const noise::NoiseModel* noise) {
  EQC_EXPECTS(circuit.num_qubits() <= num_qubits_);
  for (const auto& op : circuit.ops()) {
    EQC_EXPECTS(op.kind != circuit::OpKind::MeasureZ);
    EQC_EXPECTS(!circuit::is_classically_controlled(op.kind));
  }
  EQC_EXPECTS(noise == nullptr || sampled_);

  for (auto& trajectory : trajectories_) {
    circuit::SvBackend backend(std::move(trajectory), rng_.split());
    if (noise != nullptr) {
      noise::StochasticInjector injector(*noise, rng_.split());
      circuit::execute(circuit, backend, &injector);
    } else {
      circuit::execute(circuit, backend);
    }
    trajectory = std::move(backend.state());
  }
}

void EnsembleMachine::apply(
    const std::function<void(qsim::StateVector&)>& program) {
  EQC_EXPECTS(program != nullptr);
  for (auto& trajectory : trajectories_) program(trajectory);
}

void EnsembleMachine::set_polarization(double epsilon) {
  EQC_EXPECTS(epsilon > 0.0 && epsilon <= 1.0);
  polarization_ = epsilon;
}

double EnsembleMachine::readout_z(std::size_t qubit, bool shot_sampled) {
  EQC_EXPECTS(qubit < num_qubits_);
  double sum = 0.0;
  for (auto& trajectory : trajectories_) {
    if (shot_sampled) {
      // Each molecule contributes a definite +-1 signal.
      const bool one = rng_.bernoulli(trajectory.prob_one(qubit));
      sum += one ? -1.0 : 1.0;
    } else {
      sum += trajectory.expectation_z(qubit);
    }
  }
  return polarization_ * sum / static_cast<double>(trajectories_.size());
}

std::vector<double> EnsembleMachine::readout_all(bool shot_sampled) {
  std::vector<double> out(num_qubits_);
  for (std::size_t q = 0; q < num_qubits_; ++q)
    out[q] = readout_z(q, shot_sampled);
  return out;
}

CliffordEnsembleMachine::CliffordEnsembleMachine(std::size_t num_qubits,
                                                 std::size_t num_computers,
                                                 std::uint64_t seed)
    : num_qubits_(num_qubits), rng_(seed) {
  EQC_EXPECTS(num_qubits > 0 && num_computers > 0);
  trajectories_.reserve(num_computers);
  for (std::size_t i = 0; i < num_computers; ++i)
    trajectories_.emplace_back(num_qubits);
}

void CliffordEnsembleMachine::run(const circuit::Circuit& circuit,
                                  const noise::NoiseModel* noise) {
  EQC_EXPECTS(circuit.num_qubits() <= num_qubits_);
  for (const auto& op : circuit.ops()) {
    EQC_EXPECTS(op.kind != circuit::OpKind::MeasureZ);
    EQC_EXPECTS(!circuit::is_classically_controlled(op.kind));
  }
  for (auto& trajectory : trajectories_) {
    circuit::TabBackend backend(num_qubits_, rng_.split());
    backend.tableau() = trajectory;
    if (noise != nullptr) {
      noise::StochasticInjector injector(*noise, rng_.split());
      circuit::execute(circuit, backend, &injector);
    } else {
      circuit::execute(circuit, backend);
    }
    trajectory = backend.tableau();
  }
}

double CliffordEnsembleMachine::readout_z(std::size_t qubit,
                                          bool shot_sampled) {
  EQC_EXPECTS(qubit < num_qubits_);
  double sum = 0.0;
  for (auto& trajectory : trajectories_) {
    const double e = trajectory.expectation_z(qubit);
    if (shot_sampled) {
      const double p1 = (1.0 - e) / 2.0;
      sum += rng_.bernoulli(p1) ? -1.0 : 1.0;
    } else {
      sum += e;
    }
  }
  return sum / static_cast<double>(trajectories_.size());
}

std::vector<double> CliffordEnsembleMachine::readout_all(bool shot_sampled) {
  std::vector<double> out(num_qubits_);
  for (std::size_t q = 0; q < num_qubits_; ++q)
    out[q] = readout_z(q, shot_sampled);
  return out;
}

}  // namespace eqc::ensemble
