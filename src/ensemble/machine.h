// The ensemble (bulk / NMR) quantum computer model.
//
// "Many identical molecules are used in parallel ... Qubits in a single
// computer cannot be measured, and only expectation values of each
// particular bit over all the computers can be read out."
//
// EnsembleMachine enforces exactly that interface:
//  * programs are applied to every computer in the ensemble;
//  * programs may not contain measurements or classically-conditioned
//    operations (there is no per-computer classical information to condition
//    on) — run() rejects such circuits;
//  * the ONLY readout is readout_z(q): the ensemble average of <Z_q>,
//    optionally with the shot noise of a finite ensemble.
//
// Two operating modes:
//  * Exact (num_computers == 0): a single trajectory; readout returns the
//    exact expectation value — the macroscopic-ensemble limit; noiseless.
//  * Sampled: M independent trajectories, each with its own noise stream —
//    decoherence makes the molecules' states differ, exactly as in NMR.
//
// Verification-only access to individual computers lives in the `debug`
// namespace and is *not* part of the model; protocols must not use it.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "circuit/circuit.h"
#include "common/rng.h"
#include "noise/model.h"
#include "qsim/state_vector.h"
#include "stab/tableau.h"

namespace eqc::ensemble {

class EnsembleMachine {
 public:
  /// num_computers == 0 selects the exact (infinite-ensemble) mode.
  EnsembleMachine(std::size_t num_qubits, std::size_t num_computers,
                  std::uint64_t seed);

  std::size_t num_qubits() const { return num_qubits_; }
  std::size_t num_computers() const { return trajectories_.size(); }
  bool exact_mode() const { return trajectories_.size() == 1 && !sampled_; }

  /// Applies `circuit` to every computer.  Throws if the circuit contains
  /// MeasureZ or classically-conditioned ops (not expressible in the model).
  /// `noise` (optional) is sampled independently per computer.
  void run(const circuit::Circuit& circuit,
           const noise::NoiseModel* noise = nullptr);

  /// Applies an arbitrary unitary program (oracle-style) to every computer.
  /// The callable must be deterministic and measurement-free.
  void apply(const std::function<void(qsim::StateVector&)>& program);

  /// Pseudo-pure-state polarization factor: room-temperature NMR prepares
  /// only an epsilon-weight pure deviation on top of the identity, so every
  /// signal is scaled by epsilon (Gershenfeld-Chuang; for n spins epsilon
  /// shrinks like n 2^{-n}, the famous bulk-NMR scalability limit).
  /// Default 1.0 = ideal ensemble.
  void set_polarization(double epsilon);
  double polarization() const { return polarization_; }

  /// THE readout: ensemble average of <Z_q>, scaled by the polarization.
  /// With `shot_sampled` true each computer contributes a sampled +-1
  /// (finite-ensemble shot noise); otherwise each contributes its exact
  /// per-trajectory expectation.
  double readout_z(std::size_t qubit, bool shot_sampled = false);

  /// Convenience: readout of all qubits.
  std::vector<double> readout_all(bool shot_sampled = false);

 private:
  friend struct debug;
  std::size_t num_qubits_;
  bool sampled_;
  std::vector<qsim::StateVector> trajectories_;
  Rng rng_;
  double polarization_ = 1.0;
};

/// Verification-only hooks (the "God view" no NMR spectrometer has).
struct debug {
  static const qsim::StateVector& trajectory(const EnsembleMachine& m,
                                             std::size_t i) {
    return m.trajectories_.at(i);
  }
};

/// Clifford-only ensemble machine: each computer is a stabilizer tableau,
/// so ensembles of *encoded* computers (50+ qubits) are cheap.  Same model
/// restrictions as EnsembleMachine: measurement-free programs only,
/// expectation-value readout only.  Non-Clifford ops are accepted exactly
/// when their controls are classical (the paper's classical-ancilla
/// regime); a genuine non-Clifford program throws.
class CliffordEnsembleMachine {
 public:
  CliffordEnsembleMachine(std::size_t num_qubits, std::size_t num_computers,
                          std::uint64_t seed);

  std::size_t num_qubits() const { return num_qubits_; }
  std::size_t num_computers() const { return trajectories_.size(); }

  /// Applies `circuit` to every computer (noise sampled independently).
  void run(const circuit::Circuit& circuit,
           const noise::NoiseModel* noise = nullptr);

  /// Ensemble average of <Z_q>: each computer contributes its exact -1/0/+1
  /// expectation (or a sampled +-1 with `shot_sampled`).
  double readout_z(std::size_t qubit, bool shot_sampled = false);
  std::vector<double> readout_all(bool shot_sampled = false);

  /// Verification-only access to one computer's tableau.
  const stab::Tableau& debug_trajectory(std::size_t i) const {
    return trajectories_.at(i);
  }

 private:
  std::size_t num_qubits_;
  std::vector<stab::Tableau> trajectories_;
  Rng rng_;
};

}  // namespace eqc::ensemble
