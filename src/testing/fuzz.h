// Cross-backend differential fuzzing driver.
//
// Each trial derives its own RNG stream from (seed, trial index) via
// common/rng's counter-split scheme — the same parallelism discipline as
// the campaign engine and the Monte-Carlo driver — generates a unitary and
// a measured circuit, and runs every oracle applicable to the configured
// gate set.  Trials are sharded over common/parallel's worker pool and the
// merged report is a pure function of the configuration: BYTE-IDENTICAL
// for any --jobs value (when no time budget cuts the run short).
//
// A failing (circuit, oracle, seed) triple is shrunk to a 1-minimal op
// sequence and packaged as a FailureArtifact: a replayable JSON document
// plus a generated GoogleTest regression snippet.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "common/json.h"
#include "testing/circuit_gen.h"
#include "testing/oracles.h"

namespace eqc::testing {

struct FuzzConfig {
  GateSet gate_set = GateSet::Clifford;
  std::size_t qubits = 5;
  std::size_t depth = 40;
  std::uint64_t seed = 1;
  std::uint64_t trials = 200;
  /// Worker threads (0 = one per hardware thread).  Never changes the
  /// report, only the wall clock.
  unsigned jobs = 1;
  /// Wall-clock cap in seconds; 0 = none.  Checked between trials, so a
  /// time-boxed run may complete fewer trials — the only mode in which the
  /// report is not reproducible byte-for-byte across machines.
  double time_budget_sec = 0.0;
  /// Probability of a measurement / |0>-reprep slot in the measured circuit.
  double measure_prob = 0.15;
  double prep_prob = 0.05;
  double tol = 1e-7;
  /// Deliberate tableau defect (harness self-test).
  PlantedBug bug = PlantedBug::None;
  /// Delta-debug failing circuits to 1-minimal before reporting.
  bool shrink = true;
  /// Cap on reported failures (applied deterministically after the merge).
  std::size_t max_failures = 25;
  /// Cooperative cancellation, polled at trial granularity.  An
  /// interrupted run flushes a final checkpoint (when checkpointing) and
  /// returns a report with `interrupted` set; resuming later reaches the
  /// same final report as an uninterrupted run.
  const std::atomic<bool>* stop = nullptr;
  /// Periodic JSON checkpoint of the merged trial prefix; empty disables.
  std::string checkpoint_path;
  /// Trials between checkpoint writes (also the parallel block size when
  /// checkpointing; never changes the report).
  std::uint64_t checkpoint_every = 64;
  /// Load `checkpoint_path` (when it exists) and continue from it.  The
  /// checkpoint's fingerprint must match this configuration.
  bool resume = false;
  /// When resuming and the checkpoint is damaged (CheckpointCorrupt),
  /// quarantine it and start fresh instead of throwing.
  bool fresh_on_corrupt = false;
  /// Stop after this many trials this run (0 = all) — bounds a session and
  /// lets tests simulate a mid-campaign kill.
  std::uint64_t max_trials_this_run = 0;
  /// Invoked after each merged block with (trials merged, failures kept).
  std::function<void(std::uint64_t, std::size_t)> on_progress;
};

/// One replayable counterexample.
struct FailureArtifact {
  std::string oracle;
  std::string gate_set;
  std::uint64_t trial = 0;
  std::uint64_t oracle_seed = 0;
  double tol = 1e-7;
  std::string bug = "none";
  std::string detail;            ///< oracle failure message (post-shrink)
  std::size_t original_ops = 0;  ///< op count before shrinking
  circuit::Circuit circuit;      ///< shrunk failing circuit

  FailureArtifact() : circuit(1) {}

  json::Value to_json_value() const;
  static FailureArtifact from_json(const json::Value& v);
  /// A paste-ready GoogleTest regression test reproducing the failure.
  std::string regression_snippet() const;
};

/// Re-runs the artifact's oracle on its circuit; true iff it still fails.
bool replay_failure(const FailureArtifact& artifact);

struct FuzzReport {
  FuzzConfig config;
  std::uint64_t trials_run = 0;
  /// True when the time budget cut trials; byte-identity across --jobs is
  /// only guaranteed when false.
  bool time_limited = false;
  /// True when a cooperative stop or `max_trials_this_run` ended the run
  /// before the trial budget; the written checkpoint makes it resumable.
  bool interrupted = false;
  std::uint64_t oracle_runs = 0;  ///< total oracle evaluations
  std::vector<FailureArtifact> failures;  ///< ordered by (trial, oracle)

  /// Canonical JSON: configuration echo + failures, no timing or host
  /// information (the byte-identity surface for the --jobs gate).
  json::Value to_json_value() const;
  std::string to_json() const { return to_json_value().dump(); }
};

/// Oracle names run for a gate set, split by circuit flavor.
std::vector<std::string> unitary_oracles(GateSet gs);
std::vector<std::string> measured_oracles(GateSet gs);

/// Runs the fuzz campaign described by `cfg`.
FuzzReport run_fuzz(const FuzzConfig& cfg);

}  // namespace eqc::testing
