// Differential and metamorphic correctness oracles.
//
// DIFFERENTIAL — runs one circuit through the dense state vector (ground
// truth) and the CHP tableau (the scalable backend) in lock-step and
// compares, after every op:
//   * per-qubit <Z> within tolerance;
//   * measurement semantics: a tableau-deterministic measurement must have
//     sv probability ~ 1 for the same outcome, a tableau-random one must
//     have sv probability ~ 1/2 (stabilizer states admit nothing else) —
//     this is the ensemble-expectation agreement the paper's overlap regime
//     demands;
//   * post-measurement consistency: the sv state is collapsed onto the
//     tableau's recorded outcome (StateVector::project_z), so both
//     trajectories stay comparable after random collapse;
//   * at the end, every stabilizer generator claimed by the tableau must
//     stabilize the dense state (catches phase bugs that per-qubit <Z>
//     cannot see, e.g. S vs Sdg).
//
// METAMORPHIC — need no second backend:
//   * append-inverse:    C . C^{-1} acts as identity on |0...0>;
//   * pauli-frame:       P then C  ==  C then (C P C^dagger)  (Clifford);
//   * schedule-reorder:  executing the ASAP-scheduled op order equals the
//                        program order (observational equivalence);
//   * relabel:           conjugation by a qubit permutation commutes with
//                        execution.
//
// All oracles return OracleResult rather than asserting, so the fuzz driver
// can shrink failing circuits and emit replay artifacts.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "circuit/circuit.h"
#include "circuit/sv_backend.h"
#include "circuit/tab_backend.h"
#include "pauli/pauli_string.h"
#include "qsim/state_vector.h"

namespace eqc::testing {

struct OracleResult {
  bool ok = true;
  /// Deterministic human-readable failure description (empty when ok).
  std::string detail;
};

/// Constructs a fresh backend for `num_qubits` seeded with `seed`.
using BackendFactory = std::function<std::unique_ptr<circuit::Backend>(
    std::size_t num_qubits, std::uint64_t seed)>;

// --- planted bugs -----------------------------------------------------------

/// Deliberate tableau-backend defects used to validate that the harness
/// actually finds and shrinks real bugs (fuzzing the fuzzer).
enum class PlantedBug {
  None,
  SInverted,     ///< s() applies S^dagger (inverted phase)
  CnotReversed,  ///< cnot(c,t) applies cnot(t,c)
  CzDropped,     ///< cz() is silently skipped
  CczWrongPair,  ///< ccz lowering applies CZ to a pair including the control
  /// Frame-engine defect: CNOT frame propagation with control and target
  /// swapped (exercised by the frame-vs-trial oracle only).
  FrameCnotSwapped,
};

const char* to_string(PlantedBug bug);
PlantedBug bug_from_string(const std::string& name);

/// TabBackend with a planted defect (PlantedBug::None = faithful).
class BuggyTabBackend : public circuit::TabBackend {
 public:
  BuggyTabBackend(std::size_t num_qubits, Rng rng, PlantedBug bug)
      : TabBackend(num_qubits, rng), bug_(bug) {}

  void s(std::size_t q) override;
  void cnot(std::size_t c, std::size_t t) override;
  void cz(std::size_t a, std::size_t b) override;
  void ccx(std::size_t c0, std::size_t c1, std::size_t t) override;
  void ccz(std::size_t a, std::size_t b, std::size_t c) override;

 private:
  PlantedBug bug_;
};

BackendFactory sv_factory();
BackendFactory tab_factory(PlantedBug bug = PlantedBug::None);

// --- helpers ----------------------------------------------------------------

/// <psi| P |psi> on a dense state.
cplx dense_expectation(const qsim::StateVector& sv,
                       const pauli::PauliString& p);

/// Heisenberg propagation of `p` through the Clifford circuit: returns
/// U p U^dagger for U the whole circuit (phase-exact).  Throws on any op
/// outside {H,S,Sdg,X,Y,Z,CNOT,CZ,SWAP}.
pauli::PauliString conjugate_through(const circuit::Circuit& c,
                                     pauli::PauliString p);

// --- oracles ----------------------------------------------------------------

/// Differential check of `subject` (a tableau-side factory) against a dense
/// state vector, per the header comment.  The circuit may contain
/// measurements and preparations; classically controlled ops are rejected.
OracleResult check_differential(const circuit::Circuit& c, std::uint64_t seed,
                                const BackendFactory& subject,
                                double tol = 1e-7);

/// C . inverse(C) == identity on |0...0>: every <Z_q> must be +1.
/// Unitary circuits only.
OracleResult check_append_inverse(const circuit::Circuit& c,
                                  std::uint64_t seed,
                                  const BackendFactory& factory,
                                  double tol = 1e-7);

/// Pauli-frame commutation: apply_pauli(P); run(C) must equal run(C);
/// apply_pauli(C P C^dagger).  Clifford unitary circuits only.
OracleResult check_pauli_frame(const circuit::Circuit& c, std::uint64_t seed,
                               const BackendFactory& factory,
                               double tol = 1e-7);

/// Executing ops in ASAP-schedule order equals program order.  Unitary
/// circuits only (measurement outcomes are order-sensitive through the RNG).
OracleResult check_schedule_reorder(const circuit::Circuit& c,
                                    std::uint64_t seed,
                                    const BackendFactory& factory,
                                    double tol = 1e-7);

/// Qubit-relabeling invariance; valid with measurements (same seed, same
/// draw sequence).  Compares cbits exactly and <Z> through the permutation.
OracleResult check_relabel(const circuit::Circuit& c, std::uint64_t seed,
                           const BackendFactory& factory, double tol = 1e-7);

/// Frame-vs-trial differential: runs 32 stochastic-noise Monte-Carlo trials
/// of `c` (empty prep, paper noise channel) once through the 64-lane batch
/// Pauli-frame engine and once through the canonical per-trial TabBackend
/// loop on identical counter-split RNG streams, then compares per lane:
/// the measurement record exactly, the post-run backend RNG stream exactly,
/// and stabilizer expectations of Z_q plus seeded random Paulis (the lane
/// state is frame * reference, so the expected value is the reference
/// expectation signed by frame (anti)commutation).  A FrameUnsupported
/// batch — a deviation the frame model cannot absorb — is a vacuous pass.
/// `bug` decorates the per-trial side for TabBackend defects and the frame
/// program for PlantedBug::FrameCnotSwapped.
OracleResult check_frame_vs_trial(const circuit::Circuit& c,
                                  std::uint64_t seed, PlantedBug bug,
                                  double tol = 1e-7);

/// Runs the oracle registered under `name` ("differential",
/// "append-inverse-sv", "append-inverse-tab", "pauli-frame-sv",
/// "pauli-frame-tab", "schedule-reorder-sv", "schedule-reorder-tab",
/// "relabel-sv", "relabel-tab", "frame-vs-trial").  `bug` decorates the
/// tableau side (and, for frame-vs-trial, the frame program).  Throws on
/// an unknown name.
OracleResult run_named_oracle(const std::string& name,
                              const circuit::Circuit& c, std::uint64_t seed,
                              double tol, PlantedBug bug = PlantedBug::None);

}  // namespace eqc::testing
