#include "testing/circuit_gen.h"

#include <algorithm>

#include "common/assert.h"

namespace eqc::testing {

const char* to_string(GateSet gs) {
  switch (gs) {
    case GateSet::Clifford: return "clifford";
    case GateSet::CliffordCC: return "clifford-cc";
    case GateSet::CliffordT: return "clifford-t";
    case GateSet::Frames: return "frames";
  }
  return "?";
}

GateSet gate_set_from_string(const std::string& name) {
  if (name == "clifford") return GateSet::Clifford;
  if (name == "clifford-cc") return GateSet::CliffordCC;
  if (name == "clifford-t") return GateSet::CliffordT;
  if (name == "frames") return GateSet::Frames;
  throw ContractViolation("unknown gate set: " + name);
}

CircuitGen::CircuitGen(CircuitGenOptions opt) : opt_(opt) {
  EQC_EXPECTS(opt_.qubits >= 2);
  EQC_EXPECTS(opt_.depth > 0);
  if (opt_.gate_set == GateSet::CliffordCC) {
    // Keep at least two quantum qubits (2-qubit gates need a pair) and at
    // least one classical ancilla (otherwise no CC gate can be emitted).
    opt_.classical_ancillas =
        std::clamp<std::size_t>(opt_.classical_ancillas, 1,
                                opt_.qubits > 2 ? opt_.qubits - 2 : 1);
    EQC_EXPECTS(opt_.qubits >= opt_.classical_ancillas + 2);
    quantum_qubits_ = opt_.qubits - opt_.classical_ancillas;
  } else {
    quantum_qubits_ = opt_.qubits;
  }
}

namespace {

/// Uniform draw from [lo, hi) distinct from `taken` (requires >= 2 choices).
std::uint32_t distinct_below(Rng& rng, std::size_t lo, std::size_t hi,
                             std::uint32_t taken) {
  auto q = static_cast<std::uint32_t>(lo + rng.below(hi - lo));
  while (q == taken) q = static_cast<std::uint32_t>(lo + rng.below(hi - lo));
  return q;
}

void emit_clifford(circuit::Circuit& c, Rng& rng, std::size_t lo,
                   std::size_t hi) {
  const auto q = static_cast<std::uint32_t>(lo + rng.below(hi - lo));
  switch (rng.below(9)) {
    case 0: c.h(q); break;
    case 1: c.s(q); break;
    case 2: c.sdg(q); break;
    case 3: c.x(q); break;
    case 4: c.y(q); break;
    case 5: c.z(q); break;
    case 6: c.cnot(q, distinct_below(rng, lo, hi, q)); break;
    case 7: c.cz(q, distinct_below(rng, lo, hi, q)); break;
    case 8: c.swap(q, distinct_below(rng, lo, hi, q)); break;
  }
}

}  // namespace

circuit::Circuit CircuitGen::generate(Rng& rng) const {
  circuit::Circuit c(opt_.qubits);
  const std::size_t nq = quantum_qubits_;  // quantum region = [0, nq)
  const std::size_t n = opt_.qubits;

  for (std::size_t g = 0; g < opt_.depth; ++g) {
    // Non-unitary slots first so the same draw sequence drives every gate
    // set identically up to the menu switch.
    if (opt_.measure_prob > 0 && rng.bernoulli(opt_.measure_prob)) {
      c.measure_z(static_cast<std::uint32_t>(rng.below(n)));
      continue;
    }
    if (opt_.prep_prob > 0 && rng.bernoulli(opt_.prep_prob)) {
      c.prep_z(static_cast<std::uint32_t>(rng.below(n)));
      continue;
    }
    switch (opt_.gate_set) {
      case GateSet::Clifford:
      case GateSet::Frames:  // same menu; the oracle plan differs
        emit_clifford(c, rng, 0, n);
        break;
      case GateSet::CliffordT:
        switch (rng.below(3)) {
          case 0:
            emit_clifford(c, rng, 0, n);
            break;
          case 1: {
            const auto q = static_cast<std::uint32_t>(rng.below(n));
            if (rng.below(2) == 0)
              c.t(q);
            else
              c.tdg(q);
            break;
          }
          case 2: {
            const auto q = static_cast<std::uint32_t>(rng.below(n));
            const auto q2 = distinct_below(rng, 0, n, q);
            switch (rng.below(4)) {
              case 0: c.cs(q, q2); break;
              case 1: c.csdg(q, q2); break;
              case 2: {
                if (n >= 3) {
                  auto q3 = distinct_below(rng, 0, n, q);
                  while (q3 == q2) q3 = distinct_below(rng, 0, n, q);
                  c.ccx(q, q2, q3);
                } else {
                  c.cs(q, q2);
                }
                break;
              }
              case 3: {
                if (n >= 3) {
                  auto q3 = distinct_below(rng, 0, n, q);
                  while (q3 == q2) q3 = distinct_below(rng, 0, n, q);
                  c.ccz(q, q2, q3);
                } else {
                  c.csdg(q, q2);
                }
                break;
              }
            }
            break;
          }
        }
        break;
      case GateSet::CliffordCC: {
        // Half the slots act on the quantum region; the other half exercise
        // the classical-ancilla machinery (classical reversible logic plus
        // classically-controlled non-Clifford gates — the lowering paths).
        if (rng.below(2) == 0) {
          emit_clifford(c, rng, 0, nq);
          break;
        }
        const auto cls = [&] {  // a classical ancilla
          return static_cast<std::uint32_t>(nq + rng.below(n - nq));
        };
        const auto qnt = [&] {  // a quantum qubit
          return static_cast<std::uint32_t>(rng.below(nq));
        };
        switch (rng.below(6)) {
          case 0:
            c.x(cls());
            break;
          case 1: {  // classical-classical CNOT (keeps both deterministic)
            if (n - nq >= 2) {
              const auto a = cls();
              c.cnot(a, distinct_below(rng, nq, n, a));
            } else {
              c.x(cls());
            }
            break;
          }
          case 2: {  // CCX, both controls classical, quantum target
            if (n - nq >= 2) {
              const auto a = cls();
              c.ccx(a, distinct_below(rng, nq, n, a), qnt());
            } else {
              c.cnot(cls(), qnt());
            }
            break;
          }
          case 3: {  // CCZ with one classical participant, quantum pair
            const auto a = qnt();
            c.ccz(a, distinct_below(rng, 0, nq, a), cls());
            break;
          }
          case 4:
            c.cs(cls(), qnt());
            break;
          case 5:
            c.csdg(cls(), qnt());
            break;
        }
        break;
      }
    }
  }
  return c;
}

circuit::Circuit random_clifford_circuit(std::size_t qubits, int gates,
                                         Rng& rng) {
  CircuitGenOptions opt;
  opt.gate_set = GateSet::Clifford;
  opt.qubits = qubits;
  opt.depth = static_cast<std::size_t>(gates);
  return CircuitGen(opt).generate(rng);
}

}  // namespace eqc::testing
