#include "testing/circuit_edit.h"

#include <algorithm>

#include "common/assert.h"

namespace eqc::testing {

using circuit::Circuit;
using circuit::Op;
using circuit::OpKind;

void append_op(Circuit& c, const Op& op) {
  switch (op.kind) {
    case OpKind::PrepZ: c.prep_z(op.q[0]); break;
    case OpKind::PrepX: c.prep_x(op.q[0]); break;
    case OpKind::H: c.h(op.q[0]); break;
    case OpKind::X: c.x(op.q[0]); break;
    case OpKind::Y: c.y(op.q[0]); break;
    case OpKind::Z: c.z(op.q[0]); break;
    case OpKind::S: c.s(op.q[0]); break;
    case OpKind::Sdg: c.sdg(op.q[0]); break;
    case OpKind::T: c.t(op.q[0]); break;
    case OpKind::Tdg: c.tdg(op.q[0]); break;
    case OpKind::CNOT: c.cnot(op.q[0], op.q[1]); break;
    case OpKind::CZ: c.cz(op.q[0], op.q[1]); break;
    case OpKind::CS: c.cs(op.q[0], op.q[1]); break;
    case OpKind::CSdg: c.csdg(op.q[0], op.q[1]); break;
    case OpKind::Swap: c.swap(op.q[0], op.q[1]); break;
    case OpKind::CCX: c.ccx(op.q[0], op.q[1], op.q[2]); break;
    case OpKind::CCZ: c.ccz(op.q[0], op.q[1], op.q[2]); break;
    case OpKind::MeasureZ: c.measure_z(op.q[0]); break;
    case OpKind::Idle: c.idle(op.q[0]); break;
    default:
      throw ContractViolation(
          "testing::append_op: classically controlled ops are not supported");
  }
}

Circuit keep_ops(const Circuit& c, const std::vector<bool>& keep) {
  EQC_EXPECTS(keep.size() == c.size());
  Circuit out(c.num_qubits());
  for (std::size_t i = 0; i < keep.size(); ++i)
    if (keep[i]) append_op(out, c.ops()[i]);
  return out;
}

Circuit with_op_order(const Circuit& c, const std::vector<std::size_t>& order) {
  EQC_EXPECTS(order.size() == c.size());
  Circuit out(c.num_qubits());
  std::vector<bool> seen(c.size(), false);
  for (std::size_t idx : order) {
    EQC_EXPECTS(idx < c.size() && !seen[idx]);
    seen[idx] = true;
    append_op(out, c.ops()[idx]);
  }
  return out;
}

Circuit relabel_qubits(const Circuit& c,
                       const std::vector<std::uint32_t>& perm) {
  EQC_EXPECTS(perm.size() == c.num_qubits());
  Circuit out(c.num_qubits());
  for (Op op : c.ops()) {
    for (int k = 0; k < circuit::arity(op.kind); ++k) op.q[k] = perm.at(op.q[k]);
    append_op(out, op);
  }
  return out;
}

Circuit compact_qubits(const Circuit& c) {
  std::vector<bool> used(c.num_qubits(), false);
  for (const Op& op : c.ops())
    for (int k = 0; k < circuit::arity(op.kind); ++k) used[op.q[k]] = true;
  std::vector<std::uint32_t> map(c.num_qubits(), 0);
  std::uint32_t next = 0;
  for (std::size_t q = 0; q < used.size(); ++q)
    if (used[q]) map[q] = next++;
  Circuit out(std::max<std::uint32_t>(next, 1));
  for (Op op : c.ops()) {
    for (int k = 0; k < circuit::arity(op.kind); ++k) op.q[k] = map[op.q[k]];
    append_op(out, op);
  }
  return out;
}

}  // namespace eqc::testing
