#include "testing/shrink.h"

#include <algorithm>

#include "common/assert.h"
#include "testing/circuit_edit.h"

namespace eqc::testing {

using circuit::Circuit;

Circuit shrink_circuit(Circuit c, const FailPredicate& fails) {
  EQC_EXPECTS(fails(c));

  // Phase 1: chunked removal, halving the chunk until single ops.  Each
  // accepted removal restarts at the same granularity (classic ddmin).
  for (std::size_t chunk = std::max<std::size_t>(c.size() / 2, 1); chunk >= 1;
       chunk /= 2) {
    bool removed = true;
    while (removed && c.size() > 1) {
      removed = false;
      for (std::size_t start = 0; start < c.size(); start += chunk) {
        const std::size_t end = std::min(start + chunk, c.size());
        if (end - start == c.size()) continue;  // never empty the circuit
        std::vector<bool> keep(c.size(), true);
        for (std::size_t i = start; i < end; ++i) keep[i] = false;
        Circuit candidate = keep_ops(c, keep);
        if (fails(candidate)) {
          c = std::move(candidate);
          removed = true;
          break;
        }
      }
    }
    if (chunk == 1) break;
  }

  // Phase 2: 1-minimality — no single remaining op is removable.  (Phase 1
  // with chunk == 1 already guarantees this; kept as a cheap postcondition
  // against future edits of the loop above.)
  for (std::size_t i = 0; i < c.size() && c.size() > 1; ++i) {
    std::vector<bool> keep(c.size(), true);
    keep[i] = false;
    Circuit candidate = keep_ops(c, keep);
    if (fails(candidate)) {
      c = std::move(candidate);
      i = static_cast<std::size_t>(-1);  // restart
    }
  }

  // Phase 3: drop unused qubits when the failure survives compaction.
  Circuit compacted = compact_qubits(c);
  if (compacted.num_qubits() < c.num_qubits() && fails(compacted))
    c = std::move(compacted);

  EQC_ENSURES(fails(c));
  return c;
}

}  // namespace eqc::testing
