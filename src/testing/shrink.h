// Counterexample shrinking for failing fuzz circuits.
//
// Same contract as analysis::shrink_fault_set (the campaign engine's
// delta-debugger), lifted from fault sets to op sequences: given a circuit
// that fails a deterministic predicate, repeatedly remove op chunks
// (halving, ddmin-style), then single ops, until the result is 1-MINIMAL —
// removing any single remaining op makes the failure disappear.  Finally
// unused qubits are compacted away when the predicate still fails on the
// smaller register.
#pragma once

#include <functional>

#include "circuit/circuit.h"

namespace eqc::testing {

/// Deterministic failure predicate: true iff the candidate still fails.
using FailPredicate = std::function<bool(const circuit::Circuit&)>;

/// Shrinks `c` to a 1-minimal failing subsequence (precondition: fails(c)).
/// Every candidate is validated through `fails`, so the result is failing
/// by construction.
circuit::Circuit shrink_circuit(circuit::Circuit c, const FailPredicate& fails);

}  // namespace eqc::testing
