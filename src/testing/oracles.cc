#include "testing/oracles.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "circuit/execute.h"
#include "circuit/schedule.h"
#include "common/assert.h"
#include "frame/frames.h"
#include "noise/model.h"
#include "testing/circuit_edit.h"

namespace eqc::testing {

using circuit::Circuit;
using circuit::Op;
using circuit::OpKind;
using pauli::PauliString;

// --- planted bugs -----------------------------------------------------------

const char* to_string(PlantedBug bug) {
  switch (bug) {
    case PlantedBug::None: return "none";
    case PlantedBug::SInverted: return "s-inverted";
    case PlantedBug::CnotReversed: return "cnot-reversed";
    case PlantedBug::CzDropped: return "cz-dropped";
    case PlantedBug::CczWrongPair: return "ccz-wrong-pair";
    case PlantedBug::FrameCnotSwapped: return "frame-cnot-swapped";
  }
  return "?";
}

PlantedBug bug_from_string(const std::string& name) {
  if (name == "none") return PlantedBug::None;
  if (name == "s-inverted") return PlantedBug::SInverted;
  if (name == "cnot-reversed") return PlantedBug::CnotReversed;
  if (name == "cz-dropped") return PlantedBug::CzDropped;
  if (name == "ccz-wrong-pair") return PlantedBug::CczWrongPair;
  if (name == "frame-cnot-swapped") return PlantedBug::FrameCnotSwapped;
  throw ContractViolation("unknown planted bug: " + name);
}

void BuggyTabBackend::s(std::size_t q) {
  if (bug_ == PlantedBug::SInverted)
    TabBackend::sdg(q);
  else
    TabBackend::s(q);
}

void BuggyTabBackend::cnot(std::size_t c, std::size_t t) {
  if (bug_ == PlantedBug::CnotReversed)
    TabBackend::cnot(t, c);
  else
    TabBackend::cnot(c, t);
}

void BuggyTabBackend::cz(std::size_t a, std::size_t b) {
  if (bug_ == PlantedBug::CzDropped) return;
  TabBackend::cz(a, b);
}

void BuggyTabBackend::ccx(std::size_t c0, std::size_t c1, std::size_t t) {
  TabBackend::ccx(c0, c1, t);
}

void BuggyTabBackend::ccz(std::size_t a, std::size_t b, std::size_t c) {
  if (bug_ == PlantedBug::CczWrongPair) {
    const std::size_t qs[3] = {a, b, c};
    for (int i = 0; i < 3; ++i) {
      if (tableau().is_deterministic_z(qs[i])) {
        // Wrong lowering: the applied CZ pair includes the classical
        // participant itself instead of the two remaining qubits.
        if (tableau().deterministic_z_value(qs[i]))
          TabBackend::cz(qs[i], qs[(i + 1) % 3]);
        return;
      }
    }
  }
  TabBackend::ccz(a, b, c);
}

BackendFactory sv_factory() {
  return [](std::size_t n, std::uint64_t seed) {
    return std::make_unique<circuit::SvBackend>(n, Rng(seed));
  };
}

BackendFactory tab_factory(PlantedBug bug) {
  return [bug](std::size_t n, std::uint64_t seed) {
    return std::make_unique<BuggyTabBackend>(n, Rng(seed), bug);
  };
}

// --- helpers ----------------------------------------------------------------

cplx dense_expectation(const qsim::StateVector& sv, const PauliString& p) {
  qsim::StateVector applied = sv;
  applied.apply_pauli(p);
  return sv.inner_product(applied);
}

PauliString conjugate_through(const Circuit& c, PauliString p) {
  EQC_EXPECTS(p.num_qubits() == c.num_qubits());
  for (const Op& op : c.ops()) {
    switch (op.kind) {
      case OpKind::H: p.conjugate_h(op.q[0]); break;
      case OpKind::S: p.conjugate_s(op.q[0]); break;
      case OpKind::Sdg: p.conjugate_sdg(op.q[0]); break;
      case OpKind::X: p.conjugate_x(op.q[0]); break;
      case OpKind::Y: p.conjugate_y(op.q[0]); break;
      case OpKind::Z: p.conjugate_z(op.q[0]); break;
      case OpKind::CNOT: p.conjugate_cnot(op.q[0], op.q[1]); break;
      case OpKind::CZ: p.conjugate_cz(op.q[0], op.q[1]); break;
      case OpKind::Swap: p.conjugate_swap(op.q[0], op.q[1]); break;
      default:
        throw ContractViolation(
            "conjugate_through: op is not a supported Clifford unitary: " +
            std::string(circuit::name(op.kind)));
    }
  }
  return p;
}

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Applies a unitary op to a backend (throws on anything non-unitary).
void apply_unitary(const Op& op, circuit::Backend& b) {
  switch (op.kind) {
    case OpKind::H: b.h(op.q[0]); break;
    case OpKind::X: b.x(op.q[0]); break;
    case OpKind::Y: b.y(op.q[0]); break;
    case OpKind::Z: b.z(op.q[0]); break;
    case OpKind::S: b.s(op.q[0]); break;
    case OpKind::Sdg: b.sdg(op.q[0]); break;
    case OpKind::T: b.t(op.q[0]); break;
    case OpKind::Tdg: b.tdg(op.q[0]); break;
    case OpKind::CNOT: b.cnot(op.q[0], op.q[1]); break;
    case OpKind::CZ: b.cz(op.q[0], op.q[1]); break;
    case OpKind::CS: b.cs(op.q[0], op.q[1]); break;
    case OpKind::CSdg: b.csdg(op.q[0], op.q[1]); break;
    case OpKind::Swap: b.swap(op.q[0], op.q[1]); break;
    case OpKind::CCX: b.ccx(op.q[0], op.q[1], op.q[2]); break;
    case OpKind::CCZ: b.ccz(op.q[0], op.q[1], op.q[2]); break;
    case OpKind::Idle: break;
    default:
      throw ContractViolation("apply_unitary: non-unitary op: " +
                              std::string(circuit::name(op.kind)));
  }
}

std::string op_label(const Circuit& c, std::size_t idx) {
  const Op& op = c.ops()[idx];
  std::string s = "op " + std::to_string(idx) + " (" +
                  std::string(circuit::name(op.kind));
  for (int k = 0; k < circuit::arity(op.kind); ++k)
    s += " " + std::to_string(op.q[k]);
  return s + ")";
}

/// Compares two backends observationally: per-qubit <Z> always; state
/// fidelity when both are dense; stabilizer expectations of seeded random
/// Paulis when both are tableaux.
OracleResult compare_backends(circuit::Backend& a, circuit::Backend& b,
                              std::uint64_t seed, double tol,
                              const std::string& what) {
  const std::size_t n = a.num_qubits();
  for (std::size_t q = 0; q < n; ++q) {
    const double ea = a.expectation_z(q);
    const double eb = b.expectation_z(q);
    if (std::abs(ea - eb) > tol)
      return {false, what + ": <Z_" + std::to_string(q) + "> " + fmt(ea) +
                         " vs " + fmt(eb)};
  }
  auto* sa = dynamic_cast<circuit::SvBackend*>(&a);
  auto* sb = dynamic_cast<circuit::SvBackend*>(&b);
  if (sa != nullptr && sb != nullptr) {
    const double f = sa->state().fidelity(sb->state());
    if (std::abs(f - 1.0) > tol)
      return {false, what + ": state fidelity " + fmt(f)};
  }
  auto* ta = dynamic_cast<circuit::TabBackend*>(&a);
  auto* tb = dynamic_cast<circuit::TabBackend*>(&b);
  if (ta != nullptr && tb != nullptr) {
    Rng prng(seed ^ 0xABCDEF12345ULL);
    for (std::size_t i = 0; i < 2 * n + 4; ++i) {
      const auto p = PauliString::random(n, prng);
      if (p.is_identity()) continue;
      const double ea = ta->tableau().expectation_pauli(p);
      const double eb = tb->tableau().expectation_pauli(p);
      if (std::abs(ea - eb) > tol)
        return {false, what + ": <" + p.to_string() + "> " + fmt(ea) +
                           " vs " + fmt(eb)};
    }
  }
  return {};
}

OracleResult guard(const std::function<OracleResult()>& body) {
  try {
    return body();
  } catch (const std::exception& e) {
    return {false, std::string("exception: ") + e.what()};
  }
}

}  // namespace

// --- differential -----------------------------------------------------------

OracleResult check_differential(const Circuit& c, std::uint64_t seed,
                                const BackendFactory& subject_factory,
                                double tol) {
  return guard([&]() -> OracleResult {
    const std::size_t n = c.num_qubits();
    // The reference rng is never drawn from: every collapse is forced onto
    // the subject's outcome via project_z.
    circuit::SvBackend ref(n, Rng(derive_stream_seed(seed, 0)));
    auto subject = subject_factory(n, derive_stream_seed(seed, 1));

    // A forced reset shared by PrepZ/PrepX: measure on the subject, replay
    // the outcome on the reference, flip both back to |0>.
    auto synced_collapse = [&](std::size_t q,
                               const std::string& what) -> OracleResult {
      const double e_sub = subject->expectation_z(q);
      const bool outcome = subject->measure_z(q);
      const bool deterministic = std::abs(std::abs(e_sub) - 1.0) <= tol;
      if (deterministic && outcome != (e_sub < 0))
        return {false, what + ": deterministic <Z> " + fmt(e_sub) +
                           " but outcome " + std::to_string(outcome)};
      const double expected = deterministic ? 1.0 : 0.5;
      const double prior = ref.state().prob_one(q);
      const double p_outcome = outcome ? prior : 1.0 - prior;
      if (std::abs(p_outcome - expected) > tol)
        return {false, what + ": sv P(outcome=" + std::to_string(outcome) +
                           ") = " + fmt(p_outcome) + ", subject implies " +
                           fmt(expected)};
      ref.state().project_z(q, outcome);
      if (outcome) return {true, outcome ? "1" : "0"};  // flag for callers
      return {true, "0"};
    };

    for (std::size_t i = 0; i < c.size(); ++i) {
      const Op& op = c.ops()[i];
      switch (op.kind) {
        case OpKind::MeasureZ: {
          auto r = synced_collapse(op.q[0], op_label(c, i));
          if (!r.ok) return r;
          break;
        }
        case OpKind::PrepZ:
        case OpKind::PrepX: {
          auto r = synced_collapse(op.q[0], op_label(c, i));
          if (!r.ok) return r;
          if (r.detail == "1") {
            subject->x(op.q[0]);
            ref.x(op.q[0]);
          }
          if (op.kind == OpKind::PrepX) {
            subject->h(op.q[0]);
            ref.h(op.q[0]);
          }
          break;
        }
        default:
          apply_unitary(op, *subject);
          apply_unitary(op, ref);
          break;
      }
      for (std::size_t q = 0; q < n; ++q) {
        const double es = ref.expectation_z(q);
        const double et = subject->expectation_z(q);
        if (std::abs(es - et) > tol)
          return {false, "after " + op_label(c, i) + ": <Z_" +
                             std::to_string(q) + "> sv " + fmt(es) +
                             " vs subject " + fmt(et)};
      }
    }

    // Post-state consistency: every stabilizer generator the tableau claims
    // must stabilize the dense state with eigenvalue +1.
    if (auto* tab = dynamic_cast<circuit::TabBackend*>(subject.get())) {
      for (std::size_t i = 0; i < n; ++i) {
        const auto g = tab->tableau().stabilizer(i);
        const cplx e = dense_expectation(ref.state(), g);
        if (std::abs(e - cplx{1.0, 0.0}) > tol)
          return {false, "final state: claimed stabilizer " + g.to_string() +
                             " (i^" + std::to_string(g.phase()) +
                             ") has sv expectation " + fmt(e.real())};
      }
    }
    return {};
  });
}

// --- metamorphic ------------------------------------------------------------

OracleResult check_append_inverse(const Circuit& c, std::uint64_t seed,
                                  const BackendFactory& factory, double tol) {
  return guard([&]() -> OracleResult {
    Circuit round_trip = c;
    round_trip.append(circuit::inverse(c));
    auto b = factory(c.num_qubits(), seed);
    circuit::execute(round_trip, *b);
    for (std::size_t q = 0; q < c.num_qubits(); ++q) {
      const double e = b->expectation_z(q);
      if (std::abs(e - 1.0) > tol)
        return {false, "C.C^-1 |0..0>: <Z_" + std::to_string(q) + "> = " +
                           fmt(e) + " (want +1)"};
    }
    return {};
  });
}

OracleResult check_pauli_frame(const Circuit& c, std::uint64_t seed,
                               const BackendFactory& factory, double tol) {
  return guard([&]() -> OracleResult {
    Rng rng(seed);
    PauliString p = PauliString::random(c.num_qubits(), rng);
    const PauliString conj = conjugate_through(c, p);

    auto before = factory(c.num_qubits(), seed);
    before->apply_pauli(p);
    circuit::execute(c, *before);

    auto after = factory(c.num_qubits(), seed);
    circuit::execute(c, *after);
    after->apply_pauli(conj);

    return compare_backends(*before, *after, seed,
                            tol, "P;C vs C;(CPC^t) with P=" + p.to_string());
  });
}

OracleResult check_schedule_reorder(const Circuit& c, std::uint64_t seed,
                                    const BackendFactory& factory,
                                    double tol) {
  return guard([&]() -> OracleResult {
    const auto sched = circuit::schedule(c);
    std::vector<std::size_t> order;
    order.reserve(c.size());
    for (const auto& moment : sched.moments)
      order.insert(order.end(), moment.begin(), moment.end());
    const Circuit reordered = with_op_order(c, order);

    auto a = factory(c.num_qubits(), seed);
    circuit::execute(c, *a);
    auto b = factory(c.num_qubits(), seed);
    circuit::execute(reordered, *b);
    return compare_backends(*a, *b, seed, tol, "program vs schedule order");
  });
}

OracleResult check_relabel(const Circuit& c, std::uint64_t seed,
                           const BackendFactory& factory, double tol) {
  return guard([&]() -> OracleResult {
    const std::size_t n = c.num_qubits();
    Rng rng(seed);
    std::vector<std::uint32_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0u);
    for (std::size_t i = n - 1; i > 0; --i)
      std::swap(perm[i], perm[rng.below(i + 1)]);
    const Circuit relabeled = relabel_qubits(c, perm);

    auto a = factory(n, seed);
    const auto ra = circuit::execute(c, *a);
    auto b = factory(n, seed);
    const auto rb = circuit::execute(relabeled, *b);

    if (ra.cbits != rb.cbits) return {false, "relabel: cbit records differ"};
    for (std::size_t q = 0; q < n; ++q) {
      const double ea = a->expectation_z(q);
      const double eb = b->expectation_z(perm[q]);
      if (std::abs(ea - eb) > tol)
        return {false, "relabel: <Z_" + std::to_string(q) + "> " + fmt(ea) +
                           " vs <Z_" + std::to_string(perm[q]) + "> " +
                           fmt(eb)};
    }
    return {};
  });
}

// --- frame-vs-trial ---------------------------------------------------------

OracleResult check_frame_vs_trial(const Circuit& c, std::uint64_t seed,
                                  PlantedBug bug, double tol) {
  return guard([&]() -> OracleResult {
    const std::size_t n = c.num_qubits();
    constexpr unsigned kLanes = 32;
    // Strong enough noise that most lanes carry a non-trivial frame.
    const auto model = noise::NoiseModel::paper_model(0.05);

    // Empty prep: the reference pass starts from |0...0> and every fault
    // site lives in the gadget (= the fuzzed circuit).
    frame::FrameProgram prog(n, Circuit(n), c, derive_stream_seed(seed, 0));
    if (bug == PlantedBug::FrameCnotSwapped)
      prog.set_planted_bug(frame::FrameBug::CnotSwapped);
    frame::FrameBatch batch(prog);
    try {
      batch.run_stochastic(model, seed, 0, kLanes);
    } catch (const frame::FrameUnsupported&) {
      return {};  // not frame-simulable for these trials: vacuously consistent
    }

    const PlantedBug tab_bug =
        bug == PlantedBug::FrameCnotSwapped ? PlantedBug::None : bug;
    const auto& ref_tab = prog.reference_tableau();
    for (unsigned l = 0; l < kLanes; ++l) {
      const std::string lane = "lane " + std::to_string(l);
      // The canonical per-trial Monte-Carlo execution for trial index l.
      Rng trial_rng(derive_stream_seed(seed, l));
      BuggyTabBackend backend(n, trial_rng.split(), tab_bug);
      noise::StochasticInjector injector(model, trial_rng.split());
      const auto r = circuit::execute(c, backend, &injector);

      if (r.cbits != batch.lane_cbits(l))
        return {false, lane + ": measurement records differ"};

      // The frame engine must leave the lane's backend stream exactly where
      // the per-trial driver would (failure predicates keep drawing from it).
      Rng lane_rng = batch.lane_backend_rng(l);
      Rng tab_rng = backend.rng();
      for (int k = 0; k < 4; ++k)
        if (lane_rng() != tab_rng())
          return {false, lane + ": backend rng streams diverge"};

      // Lane state = frame * reference, so <P> = +-<P>_ref with the sign
      // given by (anti)commutation of the lane frame with P.
      const auto f = batch.lane_frame(l);
      Rng prng(derive_stream_seed(seed, 4096 + l));
      for (std::size_t i = 0; i < n + 4; ++i) {
        const auto p = i < n ? PauliString::single(n, i, pauli::Pauli::Z)
                             : PauliString::random(n, prng);
        if (p.is_identity()) continue;
        const double want =
            (f.commutes_with(p) ? 1.0 : -1.0) * ref_tab.expectation_pauli(p);
        const double got = backend.tableau().expectation_pauli(p);
        if (std::abs(want - got) > tol)
          return {false, lane + ": <" + p.to_string() + "> frame " +
                             fmt(want) + " vs trial " + fmt(got)};
      }
    }
    return {};
  });
}

OracleResult run_named_oracle(const std::string& name, const Circuit& c,
                              std::uint64_t seed, double tol, PlantedBug bug) {
  if (name == "differential")
    return check_differential(c, seed, tab_factory(bug), tol);
  if (name == "append-inverse-sv")
    return check_append_inverse(c, seed, sv_factory(), tol);
  if (name == "append-inverse-tab")
    return check_append_inverse(c, seed, tab_factory(bug), tol);
  if (name == "pauli-frame-sv")
    return check_pauli_frame(c, seed, sv_factory(), tol);
  if (name == "pauli-frame-tab")
    return check_pauli_frame(c, seed, tab_factory(bug), tol);
  if (name == "schedule-reorder-sv")
    return check_schedule_reorder(c, seed, sv_factory(), tol);
  if (name == "schedule-reorder-tab")
    return check_schedule_reorder(c, seed, tab_factory(bug), tol);
  if (name == "relabel-sv")
    return check_relabel(c, seed, sv_factory(), tol);
  if (name == "relabel-tab")
    return check_relabel(c, seed, tab_factory(bug), tol);
  if (name == "frame-vs-trial") return check_frame_vs_trial(c, seed, bug, tol);
  throw ContractViolation("unknown oracle: " + name);
}

}  // namespace eqc::testing
