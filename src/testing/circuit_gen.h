// Seeded random circuit generation for the differential / metamorphic
// fuzzing harness.
//
// Three gate sets, matched to what each backend can execute:
//  * Clifford      — H/S/Sdg/X/Y/Z/CNOT/CZ/SWAP; runs on both backends.
//  * CliffordCC    — Clifford plus CCX/CCZ/CS/CSdg whose controls are drawn
//    from a reserved register of CLASSICAL ancillas (qubits kept in a
//    deterministic Z-basis state by construction: they only ever receive
//    X, classical-classical CNOT, and classical-controlled gates).  This is
//    exactly the paper's Sec. 5 classical-ancilla regime, so TabBackend's
//    lowering is guaranteed to apply and the circuit still runs on both
//    backends.
//  * CliffordT     — Clifford plus T/Tdg/CS/CSdg/CCX/CCZ on arbitrary
//    qubits; state-vector only (used for sv-side metamorphic self-checks).
//  * Frames        — the Clifford menu restricted to ops the batch
//    Pauli-frame simulator absorbs exactly (no classically controlled
//    gates: circuit JSON cannot serialize their predicates, so failures
//    would not be replayable).  Selects the frame-vs-trial differential
//    oracle, which proves the 64-lane frame engine bit-exact against the
//    per-trial TabBackend under stochastic noise.
//
// Generation is a pure function of the supplied Rng stream, so every fuzz
// trial is replayable from (master seed, trial index).
#pragma once

#include <cstddef>
#include <string>

#include "circuit/circuit.h"
#include "common/rng.h"

namespace eqc::testing {

enum class GateSet { Clifford, CliffordCC, CliffordT, Frames };

const char* to_string(GateSet gs);
/// Parses "clifford" / "clifford-cc" / "clifford-t" / "frames"; throws on
/// anything else.
GateSet gate_set_from_string(const std::string& name);

struct CircuitGenOptions {
  GateSet gate_set = GateSet::Clifford;
  /// Total register width, classical ancillas included.
  std::size_t qubits = 5;
  /// Number of ops to emit (measurements included).
  std::size_t depth = 40;
  /// CliffordCC only: trailing qubits reserved as classical ancillas
  /// (clamped so at least two quantum qubits remain).
  std::size_t classical_ancillas = 2;
  /// Probability that an op slot becomes a Z measurement (0 = unitary-only).
  double measure_prob = 0.0;
  /// Probability that an op slot becomes a |0> re-preparation.  Only
  /// meaningful when measure_prob > 0 (both are non-unitary).
  double prep_prob = 0.0;
};

class CircuitGen {
 public:
  explicit CircuitGen(CircuitGenOptions opt);

  const CircuitGenOptions& options() const { return opt_; }

  /// Emits one random circuit; consumes `rng` deterministically.
  circuit::Circuit generate(Rng& rng) const;

 private:
  CircuitGenOptions opt_;
  std::size_t quantum_qubits_;  ///< qubits [0, quantum_qubits_) are quantum
};

/// The shared random-Clifford helper previously duplicated across test
/// files: `gates` uniform draws from {H,S,Sdg,X,Y,Z,CNOT,CZ,SWAP} on
/// `qubits` qubits.  Equivalent to CircuitGen with GateSet::Clifford and
/// measure_prob = 0.
circuit::Circuit random_clifford_circuit(std::size_t qubits, int gates,
                                         Rng& rng);

}  // namespace eqc::testing
