// Circuit surgery for fuzzing: rebuild a circuit from an op subset, a new
// op order, or a qubit relabeling.  All functions re-emit ops through the
// Circuit builder, so measurement slots are renumbered in (new) program
// order — consistent as long as the consumer re-runs an oracle on the
// edited circuit rather than reusing slot indices from the original.
//
// Classically controlled ops (the *IfC family) are rejected: their condition
// closures cannot be cloned faithfully, and the generator never emits them.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"

namespace eqc::testing {

/// Appends `op` to `c` through the builder API (throws on *IfC ops).
void append_op(circuit::Circuit& c, const circuit::Op& op);

/// The subcircuit keeping exactly the ops with keep[i] == true.
circuit::Circuit keep_ops(const circuit::Circuit& c,
                          const std::vector<bool>& keep);

/// The circuit with ops emitted in `order` (a permutation of [0, size)).
circuit::Circuit with_op_order(const circuit::Circuit& c,
                               const std::vector<std::size_t>& order);

/// The circuit with qubit q renamed to perm[q] (perm is a permutation of
/// [0, num_qubits)).
circuit::Circuit relabel_qubits(const circuit::Circuit& c,
                                const std::vector<std::uint32_t>& perm);

/// Drops unused qubits and renumbers the used ones densely (preserving
/// order); the result has max(1, #used) qubits.  Used to present shrunken
/// counterexamples on the smallest possible register.
circuit::Circuit compact_qubits(const circuit::Circuit& c);

}  // namespace eqc::testing
