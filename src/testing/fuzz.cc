#include "testing/fuzz.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "common/assert.h"
#include "common/checkpoint.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "testing/circuit_json.h"
#include "testing/shrink.h"

namespace eqc::testing {

using circuit::Circuit;

// --- artifacts --------------------------------------------------------------

json::Value FailureArtifact::to_json_value() const {
  json::Object obj;
  obj.emplace_back("kind", "eqc_fuzz_failure");
  obj.emplace_back("oracle", oracle);
  obj.emplace_back("gate_set", gate_set);
  obj.emplace_back("trial", trial);
  obj.emplace_back("oracle_seed", oracle_seed);
  obj.emplace_back("tol", tol);
  obj.emplace_back("bug", bug);
  obj.emplace_back("detail", detail);
  obj.emplace_back("original_ops", static_cast<std::uint64_t>(original_ops));
  obj.emplace_back("circuit", circuit_to_json(circuit));
  return json::Value(std::move(obj));
}

FailureArtifact FailureArtifact::from_json(const json::Value& v) {
  if (const auto* kind = v.find("kind");
      kind == nullptr || kind->as_string() != "eqc_fuzz_failure")
    throw ContractViolation(
        "FailureArtifact: document is not an eqc_fuzz_failure");
  FailureArtifact a;
  a.oracle = v.at("oracle").as_string();
  a.gate_set = v.at("gate_set").as_string();
  a.trial = v.at("trial").as_u64();
  a.oracle_seed = v.at("oracle_seed").as_u64();
  a.tol = v.at("tol").as_double();
  a.bug = v.at("bug").as_string();
  a.detail = v.at("detail").as_string();
  a.original_ops = v.at("original_ops").as_u64();
  a.circuit = circuit_from_json(v.at("circuit"));
  return a;
}

std::string FailureArtifact::regression_snippet() const {
  std::ostringstream os;
  os << "TEST(FuzzRegression, Trial" << trial << ") {\n";
  os << "  // " << oracle << " failure found by eqc_fuzz (gate set "
     << gate_set << ", bug " << bug << "):\n";
  os << "  //   " << detail << "\n";
  os << "  eqc::circuit::Circuit c(" << circuit.num_qubits() << ");\n";
  for (const auto& op : circuit.ops()) {
    os << "  c.";
    switch (op.kind) {
      case circuit::OpKind::PrepZ: os << "prep_z(" << op.q[0] << ")"; break;
      case circuit::OpKind::PrepX: os << "prep_x(" << op.q[0] << ")"; break;
      case circuit::OpKind::H: os << "h(" << op.q[0] << ")"; break;
      case circuit::OpKind::X: os << "x(" << op.q[0] << ")"; break;
      case circuit::OpKind::Y: os << "y(" << op.q[0] << ")"; break;
      case circuit::OpKind::Z: os << "z(" << op.q[0] << ")"; break;
      case circuit::OpKind::S: os << "s(" << op.q[0] << ")"; break;
      case circuit::OpKind::Sdg: os << "sdg(" << op.q[0] << ")"; break;
      case circuit::OpKind::T: os << "t(" << op.q[0] << ")"; break;
      case circuit::OpKind::Tdg: os << "tdg(" << op.q[0] << ")"; break;
      case circuit::OpKind::CNOT:
        os << "cnot(" << op.q[0] << ", " << op.q[1] << ")";
        break;
      case circuit::OpKind::CZ:
        os << "cz(" << op.q[0] << ", " << op.q[1] << ")";
        break;
      case circuit::OpKind::CS:
        os << "cs(" << op.q[0] << ", " << op.q[1] << ")";
        break;
      case circuit::OpKind::CSdg:
        os << "csdg(" << op.q[0] << ", " << op.q[1] << ")";
        break;
      case circuit::OpKind::Swap:
        os << "swap(" << op.q[0] << ", " << op.q[1] << ")";
        break;
      case circuit::OpKind::CCX:
        os << "ccx(" << op.q[0] << ", " << op.q[1] << ", " << op.q[2] << ")";
        break;
      case circuit::OpKind::CCZ:
        os << "ccz(" << op.q[0] << ", " << op.q[1] << ", " << op.q[2] << ")";
        break;
      case circuit::OpKind::MeasureZ: os << "measure_z(" << op.q[0] << ")"; break;
      case circuit::OpKind::Idle: os << "idle(" << op.q[0] << ")"; break;
      default: os << "/* unsupported op */"; break;
    }
    os << ";\n";
  }
  os << "  const auto r = eqc::testing::run_named_oracle(\"" << oracle
     << "\", c, " << oracle_seed << "ull, " << tol;
  if (bug != "none")
    os << ",\n      eqc::testing::bug_from_string(\"" << bug << "\")";
  os << ");\n";
  os << "  EXPECT_TRUE(r.ok) << r.detail;\n";
  os << "}\n";
  return os.str();
}

bool replay_failure(const FailureArtifact& artifact) {
  const auto r = run_named_oracle(artifact.oracle, artifact.circuit,
                                  artifact.oracle_seed, artifact.tol,
                                  bug_from_string(artifact.bug));
  return !r.ok;
}

// --- report -----------------------------------------------------------------

json::Value FuzzReport::to_json_value() const {
  json::Object obj;
  obj.emplace_back("kind", "eqc_fuzz_report");
  obj.emplace_back("gate_set", to_string(config.gate_set));
  obj.emplace_back("qubits", static_cast<std::uint64_t>(config.qubits));
  obj.emplace_back("depth", static_cast<std::uint64_t>(config.depth));
  obj.emplace_back("seed", config.seed);
  obj.emplace_back("trials", config.trials);
  obj.emplace_back("trials_run", trials_run);
  obj.emplace_back("time_limited", time_limited);
  obj.emplace_back("interrupted", interrupted);
  obj.emplace_back("measure_prob", config.measure_prob);
  obj.emplace_back("prep_prob", config.prep_prob);
  obj.emplace_back("tol", config.tol);
  obj.emplace_back("bug", std::string(to_string(config.bug)));
  obj.emplace_back("oracle_runs", oracle_runs);
  obj.emplace_back("failure_count", static_cast<std::uint64_t>(failures.size()));
  json::Array arr;
  for (const auto& f : failures) arr.push_back(f.to_json_value());
  obj.emplace_back("failures", std::move(arr));
  return json::Value(std::move(obj));
}

// --- oracle plans -----------------------------------------------------------

std::vector<std::string> unitary_oracles(GateSet gs) {
  switch (gs) {
    case GateSet::Clifford:
      return {"differential",        "append-inverse-sv",
              "append-inverse-tab",  "pauli-frame-sv",
              "pauli-frame-tab",     "schedule-reorder-sv",
              "schedule-reorder-tab", "relabel-sv",
              "relabel-tab"};
    case GateSet::CliffordCC:
      // pauli-frame needs Heisenberg conjugation, which is Clifford-only.
      return {"differential",         "append-inverse-sv",
              "append-inverse-tab",   "schedule-reorder-sv",
              "schedule-reorder-tab", "relabel-sv",
              "relabel-tab"};
    case GateSet::CliffordT:
      // sv-only self-checks: the tableau cannot execute T.
      return {"append-inverse-sv", "schedule-reorder-sv", "relabel-sv"};
    case GateSet::Frames:
      // The frame engine is the subject; differential anchors the per-trial
      // TabBackend it is compared against.
      return {"differential", "frame-vs-trial"};
  }
  return {};
}

std::vector<std::string> measured_oracles(GateSet gs) {
  switch (gs) {
    case GateSet::Clifford:
    case GateSet::CliffordCC:
      return {"differential", "relabel-sv", "relabel-tab"};
    case GateSet::CliffordT:
      return {"relabel-sv"};
    case GateSet::Frames:
      return {"differential", "frame-vs-trial"};
  }
  return {};
}

// --- driver -----------------------------------------------------------------

namespace {

struct TrialOutcome {
  bool completed = false;
  std::uint64_t oracle_runs = 0;
  std::vector<FailureArtifact> failures;
};

CircuitGenOptions gen_options(const FuzzConfig& cfg, bool measured) {
  CircuitGenOptions opt;
  opt.gate_set = cfg.gate_set;
  opt.qubits = cfg.qubits;
  opt.depth = cfg.depth;
  if (measured) {
    opt.measure_prob = cfg.measure_prob;
    opt.prep_prob = cfg.prep_prob;
  }
  return opt;
}

void run_oracles(const FuzzConfig& cfg, std::uint64_t trial,
                 std::uint64_t trial_seed, const Circuit& c,
                 const std::vector<std::string>& oracles,
                 std::uint64_t seed_salt, TrialOutcome& out) {
  for (std::size_t k = 0; k < oracles.size(); ++k) {
    const std::string& name = oracles[k];
    const std::uint64_t oseed =
        derive_stream_seed(trial_seed, seed_salt + k);
    ++out.oracle_runs;
    const auto r = run_named_oracle(name, c, oseed, cfg.tol, cfg.bug);
    if (r.ok) continue;

    FailureArtifact a;
    a.oracle = name;
    a.gate_set = to_string(cfg.gate_set);
    a.trial = trial;
    a.oracle_seed = oseed;
    a.tol = cfg.tol;
    a.bug = to_string(cfg.bug);
    a.original_ops = c.size();
    a.circuit = c;
    a.detail = r.detail;
    if (cfg.shrink) {
      a.circuit = shrink_circuit(c, [&](const Circuit& cand) {
        return !run_named_oracle(name, cand, oseed, cfg.tol, cfg.bug).ok;
      });
      a.detail =
          run_named_oracle(name, a.circuit, oseed, cfg.tol, cfg.bug).detail;
    }
    out.failures.push_back(std::move(a));
  }
}

TrialOutcome run_trial(const FuzzConfig& cfg, std::uint64_t trial) {
  TrialOutcome out;
  const std::uint64_t trial_seed = derive_stream_seed(cfg.seed, trial);
  Rng rng(trial_seed);

  const Circuit c_unit = CircuitGen(gen_options(cfg, false)).generate(rng);
  run_oracles(cfg, trial, trial_seed, c_unit, unitary_oracles(cfg.gate_set),
              1000, out);

  if (cfg.measure_prob > 0.0) {
    const Circuit c_meas = CircuitGen(gen_options(cfg, true)).generate(rng);
    run_oracles(cfg, trial, trial_seed, c_meas,
                measured_oracles(cfg.gate_set), 2000, out);
  }
  out.completed = true;
  return out;
}

constexpr char kFuzzCheckpointKind[] = "eqc-fuzz-checkpoint";
constexpr std::uint64_t kFuzzCheckpointSchemaVersion = 1;

/// Everything that identifies the trial stream: a checkpoint only resumes
/// a run whose per-trial outcomes are guaranteed identical.
json::Value fuzz_fingerprint(const FuzzConfig& cfg) {
  json::Object fp;
  fp.emplace_back("gate_set", to_string(cfg.gate_set));
  fp.emplace_back("qubits", static_cast<std::uint64_t>(cfg.qubits));
  fp.emplace_back("depth", static_cast<std::uint64_t>(cfg.depth));
  fp.emplace_back("seed", cfg.seed);
  fp.emplace_back("trials", cfg.trials);
  fp.emplace_back("measure_prob", cfg.measure_prob);
  fp.emplace_back("prep_prob", cfg.prep_prob);
  fp.emplace_back("tol", cfg.tol);
  fp.emplace_back("bug", std::string(to_string(cfg.bug)));
  fp.emplace_back("shrink", cfg.shrink);
  fp.emplace_back("max_failures", static_cast<std::uint64_t>(cfg.max_failures));
  return json::Value(std::move(fp));
}

std::string fuzz_checkpoint_to_json(const FuzzConfig& cfg,
                                    std::uint64_t next_trial,
                                    const FuzzReport& report) {
  json::Object doc;
  doc.emplace_back("kind", json::Value(kFuzzCheckpointKind));
  doc.emplace_back("schema_version", json::Value(kFuzzCheckpointSchemaVersion));
  doc.emplace_back("fingerprint", fuzz_fingerprint(cfg));
  doc.emplace_back("next_trial", json::Value(next_trial));
  doc.emplace_back("trials_run", json::Value(report.trials_run));
  doc.emplace_back("oracle_runs", json::Value(report.oracle_runs));
  json::Array arr;
  for (const auto& f : report.failures) arr.push_back(f.to_json_value());
  doc.emplace_back("failures", json::Value(std::move(arr)));
  return json::Value(std::move(doc)).dump();
}

/// Restores the merged trial prefix; returns the resume index.  Throws
/// CheckpointCorrupt on damage, ContractViolation on a foreign fingerprint.
std::uint64_t load_fuzz_checkpoint(const FuzzConfig& cfg,
                                   const std::string& text,
                                   FuzzReport& report) {
  const json::Value doc = parse_checkpoint_document(
      text, kFuzzCheckpointKind, kFuzzCheckpointSchemaVersion);
  std::string got;
  try {
    got = doc.at("fingerprint").dump();
  } catch (const json::JsonError& e) {
    throw CheckpointCorrupt(std::string("fuzz checkpoint: ") + e.what());
  }
  const std::string want = fuzz_fingerprint(cfg).dump();
  if (want != got)
    throw ContractViolation("fuzz checkpoint fingerprint mismatch:\n"
                            "  checkpoint " + got + "\n  config     " + want);
  try {
    const std::uint64_t next = doc.at("next_trial").as_u64();
    if (next > cfg.trials)
      throw CheckpointCorrupt("fuzz checkpoint: next_trial out of range");
    report.trials_run = doc.at("trials_run").as_u64();
    report.oracle_runs = doc.at("oracle_runs").as_u64();
    for (const auto& f : doc.at("failures").as_array())
      report.failures.push_back(FailureArtifact::from_json(f));
    return next;
  } catch (const json::JsonError& e) {
    throw CheckpointCorrupt(std::string("fuzz checkpoint: ") + e.what());
  } catch (const ContractViolation& e) {
    throw CheckpointCorrupt(std::string("fuzz checkpoint: ") + e.what());
  }
}

}  // namespace

FuzzReport run_fuzz(const FuzzConfig& cfg) {
  EQC_EXPECTS(cfg.trials > 0);
  EQC_EXPECTS(cfg.qubits >= 2);
  EQC_EXPECTS(cfg.depth > 0);

  FuzzReport report;
  report.config = cfg;

  // --- resume a checkpointed run. -------------------------------------------
  std::uint64_t next_trial = 0;
  if (cfg.resume && !cfg.checkpoint_path.empty()) {
    std::string text;
    if (read_file(cfg.checkpoint_path, text)) {
      try {
        next_trial = load_fuzz_checkpoint(cfg, text, report);
      } catch (const CheckpointCorrupt&) {
        if (!cfg.fresh_on_corrupt) throw;
        quarantine_corrupt_file(cfg.checkpoint_path);
        report = FuzzReport{};
        report.config = cfg;
        next_trial = 0;
      }
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::atomic<bool> out_of_time{false};
  auto expired = [&] {
    if (cfg.time_budget_sec <= 0) return false;
    if (out_of_time.load(std::memory_order_relaxed)) return true;
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    if (dt.count() < cfg.time_budget_sec) return false;
    out_of_time.store(true, std::memory_order_relaxed);
    return true;
  };
  auto stop_requested = [&] {
    return cfg.stop != nullptr && cfg.stop->load(std::memory_order_relaxed);
  };

  // Trials are evaluated in index-ordered blocks and merged as a contiguous
  // prefix.  Within a block, one logical shard per trial: common/parallel
  // claims shards in index order, each trial's outcome is a pure function
  // of (seed, index), and the merge walks trials in order — so neither the
  // worker count nor the block boundaries can change the report.  The
  // block size is only the checkpoint/cancellation granularity; without
  // checkpointing one block spans the whole run, matching the one-pass
  // driver exactly.
  const std::uint64_t end_trial =
      cfg.max_trials_this_run == 0
          ? cfg.trials
          : std::min<std::uint64_t>(cfg.trials,
                                    next_trial + cfg.max_trials_this_run);
  const std::uint64_t block =
      cfg.checkpoint_path.empty()
          ? cfg.trials
          : std::max<std::uint64_t>(cfg.checkpoint_every, 1);
  std::vector<TrialOutcome> outcomes;
  auto write_checkpoint = [&] {
    if (!cfg.checkpoint_path.empty())
      write_file_atomically(cfg.checkpoint_path,
                            fuzz_checkpoint_to_json(cfg, next_trial, report));
  };

  while (next_trial < end_trial) {
    if (stop_requested()) {
      report.interrupted = true;
      break;
    }
    const std::uint64_t base = next_trial;
    const std::uint64_t count = std::min(block, end_trial - base);
    outcomes.assign(static_cast<std::size_t>(count), TrialOutcome{});
    parallel::for_each_shard(
        static_cast<unsigned>(count), cfg.jobs, [&](unsigned shard) {
          if (expired() || stop_requested()) return;
          outcomes[shard] = run_trial(cfg, base + shard);
        });

    // Merge the contiguous completed prefix of the block; a gap means the
    // time budget or the stop token cut the run mid-block, and everything
    // past the gap is discarded (it will be re-evaluated, identically, on
    // resume).
    std::uint64_t done = 0;
    for (; done < count; ++done) {
      auto& o = outcomes[done];
      if (!o.completed) break;
      ++report.trials_run;
      report.oracle_runs += o.oracle_runs;
      for (auto& f : o.failures)
        if (report.failures.size() < cfg.max_failures)
          report.failures.push_back(std::move(f));
    }
    next_trial += done;
    if (done < count) {
      if (stop_requested())
        report.interrupted = true;
      else
        report.time_limited = true;
      break;
    }
    write_checkpoint();
    if (cfg.on_progress) cfg.on_progress(next_trial, report.failures.size());
  }
  if (next_trial < cfg.trials && !report.time_limited)
    report.interrupted = true;  // stop token or max_trials_this_run

  // A final flush so an interrupted run never loses merged progress.
  write_checkpoint();
  if (cfg.on_progress) cfg.on_progress(next_trial, report.failures.size());
  return report;
}

}  // namespace eqc::testing
