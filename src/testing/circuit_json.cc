#include "testing/circuit_json.h"

#include <map>
#include <string>

#include "common/assert.h"
#include "testing/circuit_edit.h"

namespace eqc::testing {

using circuit::Circuit;
using circuit::Op;
using circuit::OpKind;

namespace {

const std::map<std::string, OpKind>& kind_by_name() {
  static const auto* m = [] {
    auto* out = new std::map<std::string, OpKind>;
    for (int k = 0; k <= static_cast<int>(OpKind::Idle); ++k) {
      const auto kind = static_cast<OpKind>(k);
      if (circuit::is_classically_controlled(kind)) continue;
      (*out)[std::string(circuit::name(kind))] = kind;
    }
    return out;
  }();
  return *m;
}

}  // namespace

json::Value circuit_to_json(const Circuit& c) {
  json::Array ops;
  for (const Op& op : c.ops()) {
    if (circuit::is_classically_controlled(op.kind))
      throw ContractViolation(
          "circuit_to_json: classically controlled ops are not serializable");
    json::Array entry;
    entry.emplace_back(std::string(circuit::name(op.kind)));
    for (int k = 0; k < circuit::arity(op.kind); ++k)
      entry.emplace_back(static_cast<std::uint64_t>(op.q[k]));
    ops.emplace_back(std::move(entry));
  }
  json::Object obj;
  obj.emplace_back("qubits", static_cast<std::uint64_t>(c.num_qubits()));
  obj.emplace_back("ops", std::move(ops));
  return json::Value(std::move(obj));
}

Circuit circuit_from_json(const json::Value& v) {
  const std::size_t qubits = v.at("qubits").as_u64();
  Circuit c(qubits);
  for (const auto& entry : v.at("ops").as_array()) {
    const auto& arr = entry.as_array();
    EQC_EXPECTS(!arr.empty());
    const auto it = kind_by_name().find(arr[0].as_string());
    if (it == kind_by_name().end())
      throw ContractViolation("circuit_from_json: unknown op name: " +
                              arr[0].as_string());
    Op op;
    op.kind = it->second;
    const int a = circuit::arity(op.kind);
    EQC_EXPECTS(static_cast<int>(arr.size()) == a + 1);
    for (int k = 0; k < a; ++k)
      op.q[k] = static_cast<std::uint32_t>(arr[k + 1].as_u64());
    append_op(c, op);
  }
  return c;
}

}  // namespace eqc::testing
