// JSON (de)serialization of circuits for replayable fuzz artifacts.
//
// Format (deterministic, insertion-ordered):
//   {"qubits": 3, "ops": [["H",0], ["CNOT",0,1], ["MZ",2]]}
//
// Measurement slots are implied by op order (the builder allocates them
// sequentially), so a round-trip reproduces the circuit exactly.  The
// classically controlled *IfC ops are not representable (their condition is
// an arbitrary closure) and are rejected on serialization.
#pragma once

#include "circuit/circuit.h"
#include "common/json.h"

namespace eqc::testing {

json::Value circuit_to_json(const circuit::Circuit& c);
circuit::Circuit circuit_from_json(const json::Value& v);

}  // namespace eqc::testing
