#include "noise/model.h"

#include "common/assert.h"

namespace eqc::noise {

double NoiseModel::probability_for(circuit::FaultSite::Kind kind) const {
  using Kind = circuit::FaultSite::Kind;
  switch (kind) {
    case Kind::Input: return p * input_scale;
    case Kind::PrepOutput: return p * prep_scale;
    case Kind::GateOutput: return p * gate_scale;
    case Kind::MeasureInput: return p * measure_scale;
    case Kind::Idle: return p * idle_scale;
  }
  return 0.0;
}

pauli::PauliString sample_error(Channel channel,
                                const std::vector<std::uint32_t>& site_qubits,
                                std::size_t num_qubits, Rng& rng,
                                double z_bias) {
  EQC_EXPECTS(!site_qubits.empty() && site_qubits.size() <= 3);
  const std::size_t k = site_qubits.size();
  pauli::PauliString err(num_qubits);
  switch (channel) {
    case Channel::Depolarizing: {
      // Draw a non-zero index into {I,X,Y,Z}^k.
      const std::uint64_t idx = 1 + rng.below((std::uint64_t{1} << (2 * k)) - 1);
      for (std::size_t i = 0; i < k; ++i) {
        const auto code = static_cast<pauli::Pauli>((idx >> (2 * i)) & 3);
        err.set(site_qubits[i], code);
      }
      break;
    }
    case Channel::BitFlip: {
      const std::uint64_t mask = 1 + rng.below((std::uint64_t{1} << k) - 1);
      for (std::size_t i = 0; i < k; ++i)
        if (mask & (std::uint64_t{1} << i))
          err.set(site_qubits[i], pauli::Pauli::X);
      break;
    }
    case Channel::PhaseFlip: {
      const std::uint64_t mask = 1 + rng.below((std::uint64_t{1} << k) - 1);
      for (std::size_t i = 0; i < k; ++i)
        if (mask & (std::uint64_t{1} << i))
          err.set(site_qubits[i], pauli::Pauli::Z);
      break;
    }
    case Channel::SingleQubitPauli: {
      const std::size_t i = rng.below(k);
      static constexpr pauli::Pauli kChoices[3] = {
          pauli::Pauli::X, pauli::Pauli::Y, pauli::Pauli::Z};
      err.set(site_qubits[i], kChoices[rng.below(3)]);
      break;
    }
    case Channel::BiasedZ: {
      const std::size_t i = rng.below(k);
      if (rng.bernoulli(z_bias)) {
        err.set(site_qubits[i], pauli::Pauli::Z);
      } else {
        err.set(site_qubits[i],
                rng.below(2) == 0 ? pauli::Pauli::X : pauli::Pauli::Y);
      }
      break;
    }
  }
  return err;
}

void StochasticInjector::visit(const circuit::FaultSite& site,
                               circuit::Backend& backend) {
  const double p = model_.probability_for(site.kind);
  if (p <= 0.0 || !rng_.bernoulli(p)) return;
  backend.apply_pauli(sample_error(model_.channel, site.qubits,
                                   backend.num_qubits(), rng_, model_.z_bias));
  ++errors_;
}

}  // namespace eqc::noise
