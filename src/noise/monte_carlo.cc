#include "noise/monte_carlo.h"

#include <algorithm>

#include "common/assert.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace eqc::noise {

namespace {

/// Trials folded into a result counter.  Stable: the folded total of a
/// completed run never depends on the worker count — run_trials_until
/// adds only the trials its serial-equivalent scan consumed, not the
/// speculatively evaluated ones.
obs::Counter& trials_counter() {
  static obs::Counter& c = obs::counter("mc.trials", obs::Det::Stable);
  return c;
}
/// RNG streams actually derived, INCLUDING speculative evaluations the
/// early-stop scan later discards — so (rng_streams - trials) measures
/// speculation waste.  Jobs-dependent, hence Runtime.
obs::Counter& streams_counter() {
  static obs::Counter& c = obs::counter("mc.rng_streams", obs::Det::Runtime);
  return c;
}

/// Logical shards per worker.  More shards than workers keeps the pool
/// load-balanced when trial costs vary (a failing trial often runs longer
/// than a clean one); the shard count never affects results, only the
/// wall clock, because each trial's stream is a pure function of its index.
constexpr unsigned kShardsPerWorker = 8;

unsigned shard_count(std::uint64_t trials, unsigned workers) {
  const std::uint64_t want =
      static_cast<std::uint64_t>(workers) * kShardsPerWorker;
  return static_cast<unsigned>(std::min<std::uint64_t>(
      std::max<std::uint64_t>(1, trials), want));
}

}  // namespace

FailureCounter run_trials_indexed(
    std::uint64_t trials, std::uint64_t seed,
    const std::function<bool(std::uint64_t, Rng&)>& trial, unsigned jobs) {
  EQC_EXPECTS(trial != nullptr);
  const unsigned workers = parallel::resolve_jobs(jobs);
  obs::Span span("mc.run_trials");
  span.arg("trials", trials);
  trials_counter().add(trials);
  streams_counter().add(trials);

  if (workers == 1) {
    FailureCounter counter;
    for (std::uint64_t i = 0; i < trials; ++i) {
      Rng trial_rng(derive_stream_seed(seed, i));
      counter.add(trial(i, trial_rng));
    }
    return counter;
  }

  // Shard s owns trial indices s, s + S, s + 2S, ... (S = shards).  Each
  // shard accumulates privately; the merge below sums counts, which is
  // order-free, so the result equals the serial loop exactly.
  const unsigned shards = shard_count(trials, workers);
  std::vector<FailureCounter> partial(shards);
  parallel::for_each_shard(shards, workers, [&](unsigned s) {
    FailureCounter local;
    for (std::uint64_t i = s; i < trials; i += shards) {
      Rng trial_rng(derive_stream_seed(seed, i));
      local.add(trial(i, trial_rng));
    }
    partial[s] = local;
  });

  FailureCounter counter;
  for (const auto& p : partial) counter.merge(p);
  return counter;
}

FailureCounter run_trials(std::uint64_t trials, std::uint64_t seed,
                          const std::function<bool(Rng&)>& trial,
                          unsigned jobs) {
  return run_trials_indexed(
      trials, seed,
      [&trial](std::uint64_t, Rng& rng) { return trial(rng); }, jobs);
}

std::vector<double> run_trial_values(
    std::uint64_t trials, std::uint64_t seed,
    const std::function<double(std::uint64_t, Rng&)>& trial, unsigned jobs) {
  EQC_EXPECTS(trial != nullptr);
  obs::Span span("mc.run_trial_values");
  span.arg("trials", trials);
  trials_counter().add(trials);
  streams_counter().add(trials);
  std::vector<double> values(trials, 0.0);
  const unsigned workers = parallel::resolve_jobs(jobs);
  const unsigned shards = shard_count(trials, workers);
  parallel::for_each_shard(shards, workers, [&](unsigned s) {
    for (std::uint64_t i = s; i < trials; i += shards) {
      Rng trial_rng(derive_stream_seed(seed, i));
      values[i] = trial(i, trial_rng);
    }
  });
  return values;
}

McRunResult run_trials_resumable(
    std::uint64_t trials, std::uint64_t seed,
    const std::function<bool(std::uint64_t, Rng&)>& trial,
    const McResumableOptions& opt) {
  EQC_EXPECTS(trial != nullptr);
  EQC_EXPECTS(opt.start_index <= trials);
  const unsigned workers = parallel::resolve_jobs(opt.jobs);
  const std::uint64_t block =
      opt.block != 0
          ? opt.block
          : std::max<std::uint64_t>(
                std::uint64_t{workers} * kShardsPerWorker, 64);

  McRunResult res;
  res.counter = opt.initial;
  std::uint64_t next = opt.start_index;
  std::vector<std::uint8_t> outcomes;
  while (next < trials) {
    if (opt.stop != nullptr && opt.stop->load(std::memory_order_relaxed)) {
      res.next_index = next;
      res.complete = false;
      return res;
    }
    const std::uint64_t count = std::min(block, trials - next);
    obs::Span span("mc.block");
    span.arg("start", next).arg("count", count);
    trials_counter().add(count);
    streams_counter().add(count);
    if (workers == 1) {
      for (std::uint64_t j = 0; j < count; ++j) {
        Rng trial_rng(derive_stream_seed(seed, next + j));
        res.counter.add(trial(next + j, trial_rng));
      }
    } else {
      outcomes.assign(static_cast<std::size_t>(count), 0);
      parallel::for_each_shard(
          static_cast<unsigned>(count), workers, [&](unsigned j) {
            Rng trial_rng(derive_stream_seed(seed, next + j));
            outcomes[j] = trial(next + j, trial_rng) ? 1 : 0;
          });
      // Fold in index order; sums are order-free, so this equals the
      // serial loop exactly.
      for (std::uint64_t j = 0; j < count; ++j)
        res.counter.add(outcomes[j] != 0);
    }
    next += count;
    if (opt.on_block) opt.on_block(McProgress{next, res.counter});
  }
  res.next_index = next;
  res.complete = true;
  return res;
}

FailureCounter run_trials_until(std::uint64_t max_trials,
                                std::uint64_t max_failures, std::uint64_t seed,
                                const std::function<bool(Rng&)>& trial,
                                unsigned jobs) {
  EQC_EXPECTS(trial != nullptr);
  EQC_EXPECTS(max_failures > 0);
  const unsigned workers = parallel::resolve_jobs(jobs);
  FailureCounter counter;
  obs::Span span("mc.run_trials_until");
  std::uint64_t streams = 0;
  struct FoldOnExit {
    const FailureCounter& c;
    const std::uint64_t& streams;
    ~FoldOnExit() {
      trials_counter().add(c.trials);
      streams_counter().add(streams);
    }
  } fold{counter, streams};

  if (workers == 1) {
    for (std::uint64_t i = 0; i < max_trials; ++i) {
      Rng trial_rng(derive_stream_seed(seed, i));
      counter.add(trial(trial_rng));
      ++streams;
      if (counter.failures >= max_failures) {
        counter.stopped_early = true;
        break;
      }
    }
    return counter;
  }

  // Parallel early stop: evaluate a block of upcoming indices concurrently
  // (each outcome is a pure function of its index), then scan the block in
  // index order, discarding everything past the stopping point.  The scan
  // reproduces the serial loop exactly; speculation only costs wasted
  // evaluations in the final block.
  const std::uint64_t block =
      std::max<std::uint64_t>(std::uint64_t{workers} * kShardsPerWorker, 1);
  std::vector<std::uint8_t> outcomes;
  for (std::uint64_t start = 0; start < max_trials; start += block) {
    const std::uint64_t count = std::min(block, max_trials - start);
    streams += count;
    outcomes.assign(static_cast<std::size_t>(count), 0);
    parallel::for_each_shard(
        static_cast<unsigned>(count), workers, [&](unsigned j) {
          Rng trial_rng(derive_stream_seed(seed, start + j));
          outcomes[j] = trial(trial_rng) ? 1 : 0;
        });
    for (std::uint64_t j = 0; j < count; ++j) {
      counter.add(outcomes[j] != 0);
      if (counter.failures >= max_failures) {
        counter.stopped_early = true;
        return counter;
      }
    }
  }
  return counter;
}

}  // namespace eqc::noise
