#include "noise/monte_carlo.h"

namespace eqc::noise {

FailureCounter run_trials(std::uint64_t trials, std::uint64_t seed,
                          const std::function<bool(Rng&)>& trial) {
  Rng master(seed);
  FailureCounter counter;
  for (std::uint64_t i = 0; i < trials; ++i) {
    Rng trial_rng = master.split();
    counter.add(trial(trial_rng));
  }
  return counter;
}

FailureCounter run_trials_until(std::uint64_t max_trials,
                                std::uint64_t max_failures, std::uint64_t seed,
                                const std::function<bool(Rng&)>& trial) {
  Rng master(seed);
  FailureCounter counter;
  for (std::uint64_t i = 0; i < max_trials; ++i) {
    Rng trial_rng = master.split();
    counter.add(trial(trial_rng));
    if (counter.failures >= max_failures) break;
  }
  return counter;
}

}  // namespace eqc::noise
