// Stochastic error models.
//
// The paper analyzes the standard independent stochastic model: "For a
// probability p of an error (per gate, per input bit, and per delay line)".
// NoiseModel assigns an error probability to every fault site the executor
// visits; StochasticInjector samples a uniformly random error from the
// chosen channel when a site fires.
#pragma once

#include "circuit/execute.h"
#include "common/rng.h"

namespace eqc::noise {

enum class Channel {
  Depolarizing,  ///< uniform over the 4^k - 1 non-identity Paulis on the site
  BitFlip,       ///< uniform over the 2^k - 1 non-trivial X patterns
  PhaseFlip,     ///< uniform over the 2^k - 1 non-trivial Z patterns
  /// One uniformly chosen qubit of the site gets one uniform Pauli — the
  /// paper's "probability p of an error per gate, per input bit, and per
  /// delay line" model, with no correlated multi-qubit errors.
  SingleQubitPauli,
};

struct NoiseModel {
  double p = 0.0;
  Channel channel = Channel::Depolarizing;
  // Relative strength per site kind (0 disables that class of faults).
  double input_scale = 1.0;
  double prep_scale = 1.0;
  double gate_scale = 1.0;
  double measure_scale = 1.0;
  double idle_scale = 1.0;

  double probability_for(circuit::FaultSite::Kind kind) const;

  static NoiseModel depolarizing(double p) { return NoiseModel{.p = p}; }
  static NoiseModel bit_flip(double p) {
    return NoiseModel{.p = p, .channel = Channel::BitFlip};
  }
  static NoiseModel phase_flip(double p) {
    return NoiseModel{.p = p, .channel = Channel::PhaseFlip};
  }
  /// The paper's per-location single-qubit error model.
  static NoiseModel paper_model(double p) {
    return NoiseModel{.p = p, .channel = Channel::SingleQubitPauli};
  }
};

/// Samples a uniformly random non-identity error of the channel's type over
/// `site_qubits`, as an operator on the full `num_qubits`-wide register.
pauli::PauliString sample_error(Channel channel,
                                const std::vector<std::uint32_t>& site_qubits,
                                std::size_t num_qubits, Rng& rng);

/// FaultInjector applying NoiseModel errors during execution.
class StochasticInjector final : public circuit::FaultInjector {
 public:
  StochasticInjector(NoiseModel model, Rng rng)
      : model_(model), rng_(rng) {}

  void visit(const circuit::FaultSite& site,
             circuit::Backend& backend) override;

  /// Number of errors injected so far (diagnostics).
  std::size_t errors_injected() const { return errors_; }

 private:
  NoiseModel model_;
  Rng rng_;
  std::size_t errors_ = 0;
};

}  // namespace eqc::noise
