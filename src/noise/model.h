// Stochastic error models.
//
// The paper analyzes the standard independent stochastic model: "For a
// probability p of an error (per gate, per input bit, and per delay line)".
// NoiseModel assigns an error probability to every fault site the executor
// visits; StochasticInjector samples a uniformly random error from the
// chosen channel when a site fires.
#pragma once

#include "circuit/execute.h"
#include "common/rng.h"

namespace eqc::noise {

enum class Channel {
  Depolarizing,  ///< uniform over the 4^k - 1 non-identity Paulis on the site
  BitFlip,       ///< uniform over the 2^k - 1 non-trivial X patterns
  PhaseFlip,     ///< uniform over the 2^k - 1 non-trivial Z patterns
  /// One uniformly chosen qubit of the site gets one uniform Pauli — the
  /// paper's "probability p of an error per gate, per input bit, and per
  /// delay line" model, with no correlated multi-qubit errors.
  SingleQubitPauli,
  /// One uniformly chosen qubit of the site gets a Z with probability
  /// `z_bias`, else a uniform X/Y — a dephasing-dominated ensemble (NMR)
  /// variant of the paper model.  Still single-qubit, no correlations.
  BiasedZ,
};

struct NoiseModel {
  double p = 0.0;
  Channel channel = Channel::Depolarizing;
  /// Probability that a BiasedZ error is a Z (the rest splits evenly
  /// between X and Y).  Ignored by the other channels.
  double z_bias = 0.9;
  // Relative strength per site kind (0 disables that class of faults).
  double input_scale = 1.0;
  double prep_scale = 1.0;
  double gate_scale = 1.0;
  double measure_scale = 1.0;
  double idle_scale = 1.0;

  double probability_for(circuit::FaultSite::Kind kind) const;

  static NoiseModel depolarizing(double p) { return NoiseModel{.p = p}; }
  static NoiseModel bit_flip(double p) {
    return NoiseModel{.p = p, .channel = Channel::BitFlip};
  }
  static NoiseModel phase_flip(double p) {
    return NoiseModel{.p = p, .channel = Channel::PhaseFlip};
  }
  /// The paper's per-location single-qubit error model.
  static NoiseModel paper_model(double p) {
    return NoiseModel{.p = p, .channel = Channel::SingleQubitPauli};
  }
  /// Dephasing-dominated single-qubit model: Z with probability `z_bias`.
  static NoiseModel biased_z(double p, double z_bias = 0.9) {
    return NoiseModel{.p = p, .channel = Channel::BiasedZ, .z_bias = z_bias};
  }
};

/// Samples a uniformly random non-identity error of the channel's type over
/// `site_qubits`, as an operator on the full `num_qubits`-wide register.
/// `z_bias` only affects Channel::BiasedZ.
pauli::PauliString sample_error(Channel channel,
                                const std::vector<std::uint32_t>& site_qubits,
                                std::size_t num_qubits, Rng& rng,
                                double z_bias = 0.9);

/// FaultInjector applying NoiseModel errors during execution.
class StochasticInjector final : public circuit::FaultInjector {
 public:
  StochasticInjector(NoiseModel model, Rng rng)
      : model_(model), rng_(rng) {}

  void visit(const circuit::FaultSite& site,
             circuit::Backend& backend) override;

  /// Number of errors injected so far (diagnostics).
  std::size_t errors_injected() const { return errors_; }

 private:
  NoiseModel model_;
  Rng rng_;
  std::size_t errors_ = 0;
};

}  // namespace eqc::noise
