// Deterministic (parallel) Monte-Carlo trial driver.
//
// Every trial's RNG stream is counter-split off `(seed, trial_index)` via
// derive_stream_seed — never drawn from a sequentially advanced master —
// so trial i's outcome is a pure function of the seed and i: it does not
// change when the trial budget grows, when trials run out of order, or
// when they run on worker threads.  Consequently the returned counter is
// BYTE-IDENTICAL for every `jobs` value; parallelism only changes the
// wall clock.
//
// When `jobs != 1`, the trial callable is invoked concurrently from
// multiple threads and must be safe to do so (the usual pattern — build
// backend, injector and circuit state locally inside the trial — already
// is).  `jobs == 0` means one worker per hardware thread.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace eqc::noise {

/// Runs `trials` independent trials; `trial` returns true on failure.
FailureCounter run_trials(std::uint64_t trials, std::uint64_t seed,
                          const std::function<bool(Rng&)>& trial,
                          unsigned jobs = 1);

/// Like run_trials, but the callable also receives its trial index (for
/// callers that record per-trial artifacts, and for the regression tests
/// pinning the stream-per-index contract).
FailureCounter run_trials_indexed(
    std::uint64_t trials, std::uint64_t seed,
    const std::function<bool(std::uint64_t, Rng&)>& trial, unsigned jobs = 1);

/// Deterministic parallel map over trial indices: returns `trial`'s value
/// for every index, in index order, independent of `jobs`.  For benches
/// that accumulate real-valued figures (infidelities, magnetizations)
/// rather than failure bits; fold the vector into RunningStats serially
/// and the statistics are byte-identical for any worker count.
std::vector<double> run_trial_values(
    std::uint64_t trials, std::uint64_t seed,
    const std::function<double(std::uint64_t, Rng&)>& trial,
    unsigned jobs = 1);

/// Like run_trials but stops early once `max_failures` have been seen
/// (useful when sweeping into the very-low-p regime).  The stop is applied
/// in trial-index order — parallel runs speculatively evaluate a block of
/// upcoming indices and discard outcomes past the stopping point — so the
/// counter is byte-identical to the serial one.  When the failure budget
/// (not the trial budget) terminates the run, the counter's
/// `stopped_early` flag is set: the sample size is then data-dependent
/// (negative-binomial stopping rule) and the plain binomial rate/Wilson
/// interval are biased; see FailureCounter::rate_unbiased().
FailureCounter run_trials_until(std::uint64_t max_trials,
                                std::uint64_t max_failures, std::uint64_t seed,
                                const std::function<bool(Rng&)>& trial,
                                unsigned jobs = 1);

}  // namespace eqc::noise
