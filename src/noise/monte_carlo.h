// Deterministic (parallel) Monte-Carlo trial driver.
//
// Every trial's RNG stream is counter-split off `(seed, trial_index)` via
// derive_stream_seed — never drawn from a sequentially advanced master —
// so trial i's outcome is a pure function of the seed and i: it does not
// change when the trial budget grows, when trials run out of order, or
// when they run on worker threads.  Consequently the returned counter is
// BYTE-IDENTICAL for every `jobs` value; parallelism only changes the
// wall clock.
//
// When `jobs != 1`, the trial callable is invoked concurrently from
// multiple threads and must be safe to do so (the usual pattern — build
// backend, injector and circuit state locally inside the trial — already
// is).  `jobs == 0` means one worker per hardware thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace eqc::noise {

/// Runs `trials` independent trials; `trial` returns true on failure.
FailureCounter run_trials(std::uint64_t trials, std::uint64_t seed,
                          const std::function<bool(Rng&)>& trial,
                          unsigned jobs = 1);

/// Like run_trials, but the callable also receives its trial index (for
/// callers that record per-trial artifacts, and for the regression tests
/// pinning the stream-per-index contract).
FailureCounter run_trials_indexed(
    std::uint64_t trials, std::uint64_t seed,
    const std::function<bool(std::uint64_t, Rng&)>& trial, unsigned jobs = 1);

/// Deterministic parallel map over trial indices: returns `trial`'s value
/// for every index, in index order, independent of `jobs`.  For benches
/// that accumulate real-valued figures (infidelities, magnetizations)
/// rather than failure bits; fold the vector into RunningStats serially
/// and the statistics are byte-identical for any worker count.
std::vector<double> run_trial_values(
    std::uint64_t trials, std::uint64_t seed,
    const std::function<double(std::uint64_t, Rng&)>& trial,
    unsigned jobs = 1);

/// Like run_trials but stops early once `max_failures` have been seen
/// (useful when sweeping into the very-low-p regime).  The stop is applied
/// in trial-index order — parallel runs speculatively evaluate a block of
/// upcoming indices and discard outcomes past the stopping point — so the
/// counter is byte-identical to the serial one.  When the failure budget
/// (not the trial budget) terminates the run, the counter's
/// `stopped_early` flag is set: the sample size is then data-dependent
/// (negative-binomial stopping rule) and the plain binomial rate/Wilson
/// interval are biased; see FailureCounter::rate_unbiased().
FailureCounter run_trials_until(std::uint64_t max_trials,
                                std::uint64_t max_failures, std::uint64_t seed,
                                const std::function<bool(Rng&)>& trial,
                                unsigned jobs = 1);

/// Progress snapshot handed to McResumableOptions::on_block: every trial
/// index below `next_index` is folded into `counter`.
struct McProgress {
  std::uint64_t next_index = 0;
  FailureCounter counter;
};

/// Options for run_trials_resumable — the crash-safe/cancellable flavor of
/// the indexed trial driver used by long-running services.
struct McResumableOptions {
  /// Worker threads (0 = one per hardware thread); never changes the
  /// counter, only the wall clock.
  unsigned jobs = 1;
  /// First trial index of this run (resume point); indices below it are
  /// assumed already folded into `initial`.
  std::uint64_t start_index = 0;
  /// Counter state at `start_index` (from a checkpoint).
  FailureCounter initial{};
  /// Trial indices evaluated per parallel block (0 = auto).  The block
  /// size bounds both the progress-callback cadence and the work discarded
  /// on cancellation; it never changes the counter.
  std::uint64_t block = 0;
  /// Cooperative cancellation, polled between blocks.
  const std::atomic<bool>* stop = nullptr;
  /// Invoked after each completed block (from the calling thread) — the
  /// checkpoint hook: persisting (next_index, counter) makes the run
  /// resumable from exactly that point.
  std::function<void(const McProgress&)> on_block;
};

struct McRunResult {
  FailureCounter counter;
  /// First trial index NOT folded into `counter` (== trials when complete).
  std::uint64_t next_index = 0;
  /// False when the stop token ended the run early.
  bool complete = false;
};

/// Resumable, cancellable indexed trial driver.  Trials are evaluated in
/// index-ordered blocks; because every trial's stream is counter-split off
/// (seed, index), a run resumed from any (next_index, counter) checkpoint —
/// across any number of process restarts, with any `jobs` values — folds to
/// a final counter BYTE-IDENTICAL to run_trials(trials, seed, ...).
McRunResult run_trials_resumable(
    std::uint64_t trials, std::uint64_t seed,
    const std::function<bool(std::uint64_t, Rng&)>& trial,
    const McResumableOptions& opt = {});

}  // namespace eqc::noise
