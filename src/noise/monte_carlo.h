// Monte-Carlo trial driver with reproducible per-trial RNG streams.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.h"
#include "common/stats.h"

namespace eqc::noise {

/// Runs `trials` independent trials; `trial` returns true on failure.
/// Each trial receives its own RNG split off a master stream seeded with
/// `seed`, so results are reproducible and order-independent.
FailureCounter run_trials(std::uint64_t trials, std::uint64_t seed,
                          const std::function<bool(Rng&)>& trial);

/// Like run_trials but stops early once `max_failures` have been seen
/// (useful when sweeping into the very-low-p regime).
FailureCounter run_trials_until(std::uint64_t max_trials,
                                std::uint64_t max_failures, std::uint64_t seed,
                                const std::function<bool(Rng&)>& trial);

}  // namespace eqc::noise
