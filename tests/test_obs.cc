// Tests for the observability layer (src/obs/): histogram bucket-edge
// math, registry determinism-class enforcement, byte-identical snapshot
// merges across thread counts, span nesting in the Chrome trace output,
// and the disabled path's zero-allocation guarantee.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

// Global operator new replacement counting every allocation in the test
// binary, so the disabled-path test can assert a Span construction loop
// allocates nothing.  (The default operator new[] forwards here too.)
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace eqc::obs {
namespace {

// ---------------------------------------------------------------------------
// Histogram bucket semantics

TEST(Histogram, BucketEdgesAreLowerInclusive) {
  Histogram h({1.0, 2.0, 5.0});
  h.record(0.5);   // bucket 0: v < b0
  h.record(1.0);   // bucket 1: exactly b0 (lower-inclusive)
  h.record(1.99);  // bucket 1
  h.record(2.0);   // bucket 2: exactly b1
  h.record(4.99);  // bucket 2
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // n boundaries -> n+1 buckets
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[3], 0u);
  EXPECT_EQ(h.count(), 5u);
}

TEST(Histogram, OverflowBucketCatchesEverythingAtOrAboveLastBoundary) {
  Histogram h({1.0, 2.0, 5.0});
  h.record(5.0);     // exactly the last boundary -> overflow
  h.record(1e9);     // far overflow
  const auto counts = h.bucket_counts();
  EXPECT_EQ(counts[3], 2u);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.sum(), 5.0 + 1e9);
}

TEST(Histogram, RejectsMalformedBoundaries) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Registry semantics

TEST(Registry, LookupIsIdempotentAndEnforcesDetAgreement) {
  Registry reg;
  Counter& c1 = reg.counter("x.count", Det::Stable);
  Counter& c2 = reg.counter("x.count", Det::Stable);
  EXPECT_EQ(&c1, &c2);
  c1.add(5);
  EXPECT_EQ(c2.value(), 5u);
  EXPECT_THROW(reg.counter("x.count", Det::Runtime), std::logic_error);
}

TEST(Registry, HistogramReRegistrationMustAgreeOnBoundaries) {
  Registry reg;
  Histogram& h1 = reg.histogram("x.ms", {1.0, 2.0}, Det::Runtime);
  Histogram& h2 = reg.histogram("x.ms", {1.0, 2.0}, Det::Runtime);
  EXPECT_EQ(&h1, &h2);
  EXPECT_THROW(reg.histogram("x.ms", {1.0, 3.0}, Det::Runtime),
               std::logic_error);
  EXPECT_THROW(reg.histogram("x.ms", {1.0, 2.0}, Det::Stable),
               std::logic_error);
}

TEST(Registry, SnapshotSplitsSectionsByDetClass) {
  Registry reg;
  reg.counter("stable.items", Det::Stable).add(3);
  reg.counter("runtime.polls", Det::Runtime).add(7);
  reg.gauge("stable.progress", Det::Stable).set(-2);
  reg.histogram("runtime.lat_ms", {1.0}, Det::Runtime).record(0.5);

  const json::Value snap = reg.snapshot();
  EXPECT_EQ(snap.at("kind").as_string(), "eqc_metrics");
  EXPECT_EQ(snap.at("schema_version").as_u64(), 1u);

  const json::Value& stable = snap.at("metrics");
  const json::Value& runtime = snap.at("runtime");
  EXPECT_EQ(stable.at("counters").at("stable.items").as_u64(), 3u);
  EXPECT_EQ(stable.at("gauges").at("stable.progress").as_i64(), -2);
  EXPECT_EQ(stable.find("counters")->find("runtime.polls"), nullptr);
  EXPECT_EQ(runtime.at("counters").at("runtime.polls").as_u64(), 7u);
  const json::Value& hist = runtime.at("histograms").at("runtime.lat_ms");
  EXPECT_EQ(hist.at("count").as_u64(), 1u);
  EXPECT_EQ(hist.at("counts").as_array().size(), 2u);
}

// The tentpole guarantee: N threads hammering the striped cells merge to
// the exact same snapshot bytes as one thread doing the same work.
TEST(Registry, ThreadedMergeIsByteIdenticalToSerial) {
  constexpr unsigned kThreads = 8;
  constexpr int kRounds = 250;
  // Every recorded value and every partial sum is exactly representable,
  // so the atomic-double sum is order-independent.
  const std::vector<double> samples = {0.5, 1.5, 7.0};

  auto work = [&](Registry& reg, int rounds) {
    Counter& items = reg.counter("work.items", Det::Stable);
    Histogram& lat = reg.histogram("work.ms", {1.0, 5.0}, Det::Runtime);
    Gauge& depth = reg.gauge("work.depth", Det::Runtime);
    for (int r = 0; r < rounds; ++r) {
      items.add(1);
      for (double v : samples) lat.record(v);
      depth.set(7);
    }
  };

  Registry serial;
  work(serial, kRounds * kThreads);

  Registry threaded;
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t)
    pool.emplace_back([&] { work(threaded, kRounds); });
  for (auto& th : pool) th.join();

  EXPECT_EQ(serial.snapshot().dump(), threaded.snapshot().dump());
}

TEST(LatencyTimer, RecordsOnlyWhileTimingIsEnabled) {
  Histogram h({1e6});  // one huge boundary: everything lands in bucket 0
  enable_timing(false);
  { LatencyTimer t(h); }
  EXPECT_EQ(h.count(), 0u);
  enable_timing(true);
  { LatencyTimer t(h); }
  enable_timing(false);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.bucket_counts()[0], 1u);
}

// ---------------------------------------------------------------------------
// Trace spans

const json::Value* find_event(const json::Value& doc, const std::string& name) {
  for (const auto& ev : doc.at("traceEvents").as_array())
    if (ev.at("name").as_string() == name) return &ev;
  return nullptr;
}

TEST(Trace, NestedSpansRecordOrderedCompleteEvents) {
  install_trace_sink();
  {
    Span outer("test.outer");
    outer.arg("items", 3);
    {
      Span inner("test.inner", "cell-a");
      inner.arg("index", 1).arg("size", 2);
    }
  }
  const json::Value doc = json::Value::parse(trace_json());
  shutdown_trace_sink();

  const json::Value* outer = find_event(doc, "test.outer");
  const json::Value* inner = find_event(doc, "test.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  for (const json::Value* ev : {outer, inner}) {
    EXPECT_EQ(ev->at("ph").as_string(), "X");
    EXPECT_EQ(ev->at("cat").as_string(), "eqc");
    EXPECT_EQ(ev->at("pid").as_u64(), 1u);
  }
  // Nesting: the inner span starts no earlier and ends no later.
  const double o_ts = outer->at("ts").as_double();
  const double o_end = o_ts + outer->at("dur").as_double();
  const double i_ts = inner->at("ts").as_double();
  const double i_end = i_ts + inner->at("dur").as_double();
  EXPECT_GE(i_ts, o_ts);
  EXPECT_LE(i_end, o_end);
  // Args round-trip, including the string detail.
  EXPECT_EQ(outer->at("args").at("items").as_u64(), 3u);
  EXPECT_EQ(inner->at("args").at("detail").as_string(), "cell-a");
  EXPECT_EQ(inner->at("args").at("index").as_u64(), 1u);
  EXPECT_EQ(inner->at("args").at("size").as_u64(), 2u);
}

TEST(Trace, ThreadLabelsEmitMetadataEventsWithTheWorkerTid) {
  install_trace_sink();
  unsigned worker_tid = 0;
  std::thread worker([&] {
    set_thread_label("worker-test");
    worker_tid = thread_slot();
    Span s("test.worker_span");
  });
  worker.join();
  const json::Value doc = json::Value::parse(trace_json());
  shutdown_trace_sink();

  const json::Value* meta = nullptr;
  for (const auto& ev : doc.at("traceEvents").as_array())
    if (ev.at("name").as_string() == "thread_name" &&
        ev.at("args").at("name").as_string() == "worker-test")
      meta = &ev;
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->at("ph").as_string(), "M");
  EXPECT_EQ(meta->at("tid").as_u64(), worker_tid);
  const json::Value* span = find_event(doc, "test.worker_span");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->at("tid").as_u64(), worker_tid);
}

TEST(Trace, ShutdownDropsEventsAndDisablesTiming) {
  install_trace_sink();
  EXPECT_TRUE(trace_active());
  EXPECT_TRUE(timing_enabled());
  { Span s("test.dropped"); }
  shutdown_trace_sink();
  EXPECT_FALSE(trace_active());
  EXPECT_FALSE(timing_enabled());
  const json::Value doc = json::Value::parse(trace_json());
  EXPECT_EQ(find_event(doc, "test.dropped"), nullptr);
}

TEST(Trace, DisabledSpansPerformZeroAllocations) {
  shutdown_trace_sink();  // make sure the sink is off
  ASSERT_FALSE(trace_active());
  // Warm the thread slot so its one-time registration doesn't count.
  (void)thread_slot();

  const std::uint64_t before = g_alloc_count.load();
  for (int i = 0; i < 1000; ++i) {
    Span s("test.cold", "never-stored");
    s.arg("a", 1).arg("b", 2).arg("c", 3).arg("d", 4).arg("extra", 5);
  }
  const std::uint64_t after = g_alloc_count.load();
  EXPECT_EQ(after - before, 0u);
}

}  // namespace
}  // namespace eqc::obs
