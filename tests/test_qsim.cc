// Unit tests for the dense state-vector simulator.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/assert.h"
#include "common/rng.h"
#include "qsim/gates.h"
#include "qsim/state_vector.h"

namespace eqc::qsim {
namespace {

constexpr double kEps = 1e-10;

TEST(Gates, AllUnitary) {
  for (const Mat2& g :
       {gate_i(), gate_x(), gate_y(), gate_z(), gate_h(), gate_s(), gate_sdg(),
        gate_t(), gate_tdg(), gate_rz(0.7), gate_rx(1.1), gate_ry(2.3),
        gate_phase(0.4), gate_sqrt_x()}) {
    EXPECT_TRUE(g.is_unitary());
  }
}

TEST(Gates, AlgebraicIdentities) {
  EXPECT_TRUE(approx_equal(gate_s() * gate_s(), gate_z()));
  EXPECT_TRUE(approx_equal(gate_t() * gate_t(), gate_s()));
  EXPECT_TRUE(approx_equal(gate_s() * gate_sdg(), gate_i()));
  EXPECT_TRUE(approx_equal(gate_t() * gate_tdg(), gate_i()));
  EXPECT_TRUE(approx_equal(gate_h() * gate_h(), gate_i()));
  EXPECT_TRUE(approx_equal(gate_sqrt_x() * gate_sqrt_x(), gate_x()));
  EXPECT_TRUE(
      approx_equal(gate_h() * gate_x() * gate_h(), gate_z()));
  EXPECT_TRUE(approx_equal_up_to_phase(gate_rz(M_PI / 2), gate_s()));
  // S^dagger Z = S (the identity behind the Steane logical S).
  EXPECT_TRUE(approx_equal(gate_sdg() * gate_z(), gate_s()));
}

TEST(StateVector, InitialState) {
  StateVector sv(3);
  EXPECT_EQ(sv.num_qubits(), 3u);
  EXPECT_EQ(sv.dim(), 8u);
  EXPECT_EQ(sv.amplitude(0), cplx(1, 0));
  EXPECT_NEAR(sv.norm(), 1.0, kEps);
  for (std::size_t q = 0; q < 3; ++q) EXPECT_NEAR(sv.expectation_z(q), 1.0, kEps);
}

TEST(StateVector, HadamardCreatesSuperposition) {
  StateVector sv(1);
  sv.apply1(0, gate_h());
  EXPECT_NEAR(std::abs(sv.amplitude(0)), 1 / std::sqrt(2.0), kEps);
  EXPECT_NEAR(std::abs(sv.amplitude(1)), 1 / std::sqrt(2.0), kEps);
  EXPECT_NEAR(sv.expectation_z(0), 0.0, kEps);
}

TEST(StateVector, XFlips) {
  StateVector sv(2);
  sv.apply1(1, gate_x());
  EXPECT_EQ(std::abs(sv.amplitude(0b10)), 1.0);
  EXPECT_NEAR(sv.expectation_z(1), -1.0, kEps);
  EXPECT_NEAR(sv.expectation_z(0), 1.0, kEps);
}

TEST(StateVector, BellStateViaCnot) {
  StateVector sv(2);
  sv.apply1(0, gate_h());
  sv.apply_cnot(0, 1);
  EXPECT_NEAR(std::abs(sv.amplitude(0b00)), 1 / std::sqrt(2.0), kEps);
  EXPECT_NEAR(std::abs(sv.amplitude(0b11)), 1 / std::sqrt(2.0), kEps);
  EXPECT_NEAR(std::abs(sv.amplitude(0b01)), 0.0, kEps);
  // Measuring both qubits gives correlated outcomes.
  Rng rng(4);
  auto copy = sv;
  const bool m0 = copy.measure(0, rng);
  const bool m1 = copy.measure(1, rng);
  EXPECT_EQ(m0, m1);
}

TEST(StateVector, CzPhases) {
  StateVector sv(2);
  sv.apply1(0, gate_h());
  sv.apply1(1, gate_h());
  sv.apply_cz(0, 1);
  EXPECT_NEAR(sv.amplitude(0b11).real(), -0.5, kEps);
  EXPECT_NEAR(sv.amplitude(0b01).real(), 0.5, kEps);
}

TEST(StateVector, SwapMovesAmplitude) {
  StateVector sv(2);
  sv.apply1(0, gate_x());
  sv.apply_swap(0, 1);
  EXPECT_EQ(std::abs(sv.amplitude(0b10)), 1.0);
}

TEST(StateVector, ControlledGateOnlyFiresWhenControlsSet) {
  StateVector sv(3);
  sv.apply1(0, gate_x());  // control 0 = 1, control 1 = 0
  sv.apply_controlled({0, 1}, 2, gate_x());
  EXPECT_EQ(std::abs(sv.amplitude(0b001)), 1.0);  // target unchanged
  sv.apply1(1, gate_x());
  sv.apply_controlled({0, 1}, 2, gate_x());
  EXPECT_EQ(std::abs(sv.amplitude(0b111)), 1.0);  // target flipped
}

TEST(StateVector, Apply2MatchesKron) {
  Rng rng(21);
  StateVector a(2), b(2);
  a.apply1(0, gate_h());
  b.apply1(0, gate_h());
  const Mat4 zx = kron(gate_z(), gate_x());  // Z on qubit 1 (high), X on 0
  a.apply2(1, 0, zx);
  b.apply1(1, gate_z());
  b.apply1(0, gate_x());
  for (std::uint64_t i = 0; i < 4; ++i)
    EXPECT_NEAR(std::abs(a.amplitude(i) - b.amplitude(i)), 0.0, kEps);
}

TEST(StateVector, MeasureCollapsesAndNormalizes) {
  Rng rng(8);
  StateVector sv(1);
  sv.apply1(0, gate_h());
  const bool m = sv.measure(0, rng);
  EXPECT_NEAR(std::abs(sv.amplitude(m ? 1 : 0)), 1.0, kEps);
  EXPECT_NEAR(sv.norm(), 1.0, kEps);
  // Re-measuring yields the same value.
  EXPECT_EQ(sv.measure(0, rng), m);
}

TEST(StateVector, MeasureStatistics) {
  Rng rng(17);
  int ones = 0;
  for (int i = 0; i < 2000; ++i) {
    StateVector sv(1);
    sv.apply1(0, gate_ry(2.0 * std::acos(std::sqrt(0.25))));  // P(1)=0.75
    ones += sv.measure(0, rng) ? 1 : 0;
  }
  EXPECT_NEAR(ones / 2000.0, 0.75, 0.04);
}

TEST(StateVector, ResetGivesZeroRegardlessOfOutcome) {
  Rng rng(31);
  for (int i = 0; i < 20; ++i) {
    StateVector sv(2);
    sv.apply1(0, gate_h());
    sv.apply_cnot(0, 1);
    sv.reset(0, rng);
    EXPECT_NEAR(sv.prob_one(0), 0.0, kEps);
    EXPECT_NEAR(sv.norm(), 1.0, kEps);
  }
}

TEST(StateVector, ApplyPauliMatchesGates) {
  Rng rng(3);
  StateVector a(3), b(3);
  for (auto* sv : {&a, &b}) {
    sv->apply1(0, gate_h());
    sv->apply_cnot(0, 2);
  }
  a.apply_pauli(pauli::PauliString::from_string("XZY"));
  b.apply1(0, gate_x());
  b.apply1(1, gate_z());
  b.apply1(2, gate_y());
  for (std::uint64_t i = 0; i < 8; ++i)
    EXPECT_NEAR(std::abs(a.amplitude(i) - b.amplitude(i)), 0.0, kEps);
}

TEST(StateVector, PermutationAppliesBijection) {
  StateVector sv(2);
  sv.apply1(0, gate_h());
  // Map |x> -> |x+1 mod 4>.
  sv.apply_permutation([](std::uint64_t x) { return (x + 1) % 4; });
  EXPECT_NEAR(std::abs(sv.amplitude(1)), 1 / std::sqrt(2.0), kEps);
  EXPECT_NEAR(std::abs(sv.amplitude(2)), 1 / std::sqrt(2.0), kEps);
}

TEST(StateVector, PermutationRejectsNonBijection) {
  StateVector sv(1);
  sv.apply1(0, gate_h());
  EXPECT_THROW(sv.apply_permutation([](std::uint64_t) { return 0ull; }),
               ContractViolation);
}

TEST(StateVector, PhaseOracleFlipsMarked) {
  StateVector sv(2);
  sv.apply1(0, gate_h());
  sv.apply1(1, gate_h());
  sv.apply_phase_oracle([](std::uint64_t x) { return x == 3; });
  EXPECT_NEAR(sv.amplitude(3).real(), -0.5, kEps);
  EXPECT_NEAR(sv.amplitude(1).real(), 0.5, kEps);
}

TEST(StateVector, InnerProductAndFidelity) {
  StateVector a(1), b(1);
  b.apply1(0, gate_h());
  EXPECT_NEAR(std::abs(a.inner_product(b)), 1 / std::sqrt(2.0), kEps);
  EXPECT_NEAR(a.fidelity(b), 0.5, kEps);
  EXPECT_NEAR(a.fidelity(a), 1.0, kEps);
}

TEST(StateVector, ReducedDensityMatrixOfBellHalf) {
  StateVector sv(2);
  sv.apply1(0, gate_h());
  sv.apply_cnot(0, 1);
  const auto rho = sv.reduced_density_matrix({0});
  EXPECT_NEAR(rho[0].real(), 0.5, kEps);  // maximally mixed
  EXPECT_NEAR(rho[3].real(), 0.5, kEps);
  EXPECT_NEAR(std::abs(rho[1]), 0.0, kEps);
}

TEST(StateVector, SubsystemFidelityDetectsProductState) {
  StateVector sv(3);
  sv.apply1(1, gate_h());  // qubit 1 in |+>, others |0>
  const double inv = 1 / std::sqrt(2.0);
  const std::vector<cplx> plus = {inv, inv};
  EXPECT_NEAR(sv.subsystem_fidelity({1}, plus), 1.0, kEps);
  const std::vector<cplx> zero = {1.0, 0.0};
  EXPECT_NEAR(sv.subsystem_fidelity({1}, zero), 0.5, kEps);
  EXPECT_NEAR(sv.subsystem_fidelity({0}, zero), 1.0, kEps);
}

TEST(StateVector, SubsystemFidelityOnEntangledHalfIsBelowOne) {
  StateVector sv(2);
  sv.apply1(0, gate_h());
  sv.apply_cnot(0, 1);
  const double inv = 1 / std::sqrt(2.0);
  EXPECT_NEAR(sv.subsystem_fidelity({0}, {inv, inv}), 0.5, kEps);
}

// Generic single-qubit update, written out longhand as the oracle for the
// specialized kernels (apply1's shape dispatch, apply_h, apply_x).
StateVector reference_apply1(const StateVector& in, std::size_t q,
                             const Mat2& u) {
  std::vector<cplx> amp(in.dim());
  for (std::uint64_t i = 0; i < in.dim(); ++i) amp[i] = in.amplitude(i);
  const std::uint64_t bit = std::uint64_t{1} << q;
  for (std::uint64_t i = 0; i < in.dim(); ++i) {
    if (i & bit) continue;
    const cplx a0 = amp[i], a1 = amp[i | bit];
    amp[i] = u(0, 0) * a0 + u(0, 1) * a1;
    amp[i | bit] = u(1, 0) * a0 + u(1, 1) * a1;
  }
  return StateVector::from_amplitudes(std::move(amp));
}

StateVector random_state(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cplx> amp(std::uint64_t{1} << n);
  double norm2 = 0;
  for (auto& a : amp) {
    a = cplx{rng.uniform() - 0.5, rng.uniform() - 0.5};
    norm2 += std::norm(a);
  }
  for (auto& a : amp) a /= std::sqrt(norm2);
  return StateVector::from_amplitudes(std::move(amp));
}

TEST(StateVector, SpecializedKernelsMatchGenericUpdate) {
  // Every library gate that apply1 routes to a specialized kernel
  // (diagonal, anti-diagonal, H, X) must agree with the longhand generic
  // update on a dense random state, on every qubit position.
  const Mat2 gates[] = {gate_i(), gate_x(),   gate_y(), gate_z(),
                        gate_h(), gate_s(),   gate_sdg(), gate_t(),
                        gate_tdg(), gate_rz(0.7), gate_phase(0.4),
                        gate_rx(1.1)};
  for (std::size_t q = 0; q < 4; ++q) {
    int g = 0;
    for (const Mat2& u : gates) {
      StateVector sv = random_state(4, 17 + q);
      const StateVector want = reference_apply1(sv, q, u);
      sv.apply1(q, u);
      for (std::uint64_t i = 0; i < sv.dim(); ++i)
        EXPECT_NEAR(std::abs(sv.amplitude(i) - want.amplitude(i)), 0.0, kEps)
            << "gate " << g << " qubit " << q << " basis " << i;
      ++g;
    }
  }
}

TEST(StateVector, DedicatedHAndXKernelsMatchApply1) {
  for (std::size_t q = 0; q < 3; ++q) {
    StateVector a = random_state(3, 5 + q);
    StateVector b = a;
    a.apply_h(q);
    b.apply1(q, gate_h());
    for (std::uint64_t i = 0; i < a.dim(); ++i)
      EXPECT_NEAR(std::abs(a.amplitude(i) - b.amplitude(i)), 0.0, kEps);
    a.apply_x(q);
    b.apply1(q, gate_x());
    for (std::uint64_t i = 0; i < a.dim(); ++i)
      EXPECT_NEAR(std::abs(a.amplitude(i) - b.amplitude(i)), 0.0, kEps);
  }
}

TEST(StateVector, GhzExpectations) {
  StateVector sv(4);
  sv.apply1(0, gate_h());
  for (std::size_t q = 1; q < 4; ++q) sv.apply_cnot(0, q);
  for (std::size_t q = 0; q < 4; ++q)
    EXPECT_NEAR(sv.expectation_z(q), 0.0, kEps);
  // Parity correlations: measuring all qubits agrees.
  Rng rng(5);
  const bool m0 = sv.measure(0, rng);
  for (std::size_t q = 1; q < 4; ++q) EXPECT_EQ(sv.measure(q, rng), m0);
}

TEST(StateVector, ProjectZForcesOutcomeAndReturnsProbability) {
  // |+>: both outcomes have probability 1/2; projection collapses fully.
  for (const bool outcome : {false, true}) {
    StateVector sv(1);
    sv.apply1(0, gate_h());
    EXPECT_NEAR(sv.project_z(0, outcome), 0.5, kEps);
    EXPECT_NEAR(sv.expectation_z(0), outcome ? -1.0 : 1.0, kEps);
    EXPECT_NEAR(sv.norm(), 1.0, kEps);
  }
}

TEST(StateVector, ProjectZOnBellCollapsesPartner) {
  StateVector sv(2);
  sv.apply1(0, gate_h());
  sv.apply_cnot(0, 1);
  EXPECT_NEAR(sv.project_z(0, true), 0.5, kEps);
  // The entangled partner collapses to the same value.
  EXPECT_NEAR(sv.expectation_z(1), -1.0, kEps);
  // Re-projecting onto the recorded outcome is now certain.
  EXPECT_NEAR(sv.project_z(1, true), 1.0, kEps);
}

TEST(StateVector, ProjectZRejectsImpossibleOutcome) {
  // |0>: outcome 1 has probability zero — the forced collapse must refuse
  // rather than divide by zero.
  StateVector sv(1);
  EXPECT_THROW(sv.project_z(0, true), ContractViolation);
}

TEST(StateVector, ProjectZMatchesMeasureDistribution) {
  // project_z's returned probability equals the Born probability that
  // measure() samples from (biased state via partial rotation).
  StateVector sv(2);
  sv.apply1(0, gate_h());
  sv.apply1(0, gate_s());
  sv.apply1(0, gate_h());  // HSH biases P(1) away from 1/2
  const double p1 = sv.prob_one(0);
  StateVector copy = sv;
  EXPECT_NEAR(copy.project_z(0, true), p1, kEps);
  EXPECT_NEAR(sv.project_z(0, false), 1.0 - p1, kEps);
}

}  // namespace
}  // namespace eqc::qsim
