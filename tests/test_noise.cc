// Tests for the noise module: channel statistics, per-site-kind scaling,
// and Monte-Carlo driver reproducibility.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/execute.h"
#include "circuit/tab_backend.h"
#include "common/assert.h"
#include "common/rng.h"
#include "noise/model.h"
#include "noise/monte_carlo.h"

namespace eqc::noise {
namespace {

using circuit::Circuit;
using circuit::TabBackend;

TEST(NoiseModel, ProbabilityPerKind) {
  NoiseModel m;
  m.p = 0.01;
  m.idle_scale = 0.5;
  m.measure_scale = 2.0;
  m.prep_scale = 0.0;
  using Kind = circuit::FaultSite::Kind;
  EXPECT_DOUBLE_EQ(m.probability_for(Kind::GateOutput), 0.01);
  EXPECT_DOUBLE_EQ(m.probability_for(Kind::Idle), 0.005);
  EXPECT_DOUBLE_EQ(m.probability_for(Kind::MeasureInput), 0.02);
  EXPECT_DOUBLE_EQ(m.probability_for(Kind::PrepOutput), 0.0);
  EXPECT_DOUBLE_EQ(m.probability_for(Kind::Input), 0.01);
}

TEST(NoiseModel, Factories) {
  EXPECT_EQ(NoiseModel::depolarizing(0.1).channel, Channel::Depolarizing);
  EXPECT_EQ(NoiseModel::bit_flip(0.1).channel, Channel::BitFlip);
  EXPECT_EQ(NoiseModel::phase_flip(0.1).channel, Channel::PhaseFlip);
  EXPECT_EQ(NoiseModel::paper_model(0.1).channel, Channel::SingleQubitPauli);
}

TEST(SampleError, SingleQubitPauliIsAlwaysWeightOne) {
  Rng rng(11);
  std::map<std::string, int> seen;
  for (int i = 0; i < 3000; ++i) {
    const auto e = sample_error(Channel::SingleQubitPauli, {0, 1, 2}, 3, rng);
    EXPECT_EQ(e.weight(), 1u);
    seen[e.to_string()]++;
  }
  // 3 qubits x 3 Paulis = 9 weight-1 errors, roughly uniform.
  EXPECT_EQ(seen.size(), 9u);
  for (const auto& [key, count] : seen) {
    EXPECT_GT(count, 3000 / 9 / 2) << key;
    EXPECT_LT(count, 3000 / 9 * 2) << key;
  }
}

TEST(SampleError, DepolarizingThreeQubitsCovers63) {
  Rng rng(13);
  std::set<std::string> seen;
  for (int i = 0; i < 20000; ++i)
    seen.insert(
        sample_error(Channel::Depolarizing, {0, 1, 2}, 3, rng).to_string());
  EXPECT_EQ(seen.size(), 63u);
}

TEST(SampleError, PhaseFlipNeverTouchesX) {
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const auto e = sample_error(Channel::PhaseFlip, {0, 1}, 2, rng);
    for (std::size_t q = 0; q < 2; ++q) EXPECT_FALSE(e.x_bit(q));
    EXPECT_GE(e.weight(), 1u);
  }
}

TEST(SampleError, BitFlipNeverTouchesZ) {
  Rng rng(19);
  for (int i = 0; i < 500; ++i) {
    const auto e = sample_error(Channel::BitFlip, {0, 1}, 2, rng);
    for (std::size_t q = 0; q < 2; ++q) EXPECT_FALSE(e.z_bit(q));
  }
}

TEST(StochasticInjector, RespectsKindScales) {
  // Idle noise disabled: a circuit of idles never accumulates errors.
  Circuit c(1);
  for (int i = 0; i < 400; ++i) c.idle(0);
  NoiseModel m = NoiseModel::depolarizing(0.5);
  m.idle_scale = 0.0;
  StochasticInjector inj(m, Rng(3));
  TabBackend b(1, Rng(2));
  circuit::execute(c, b, &inj);
  EXPECT_EQ(inj.errors_injected(), 0u);
}

TEST(StochasticInjector, MeasurementErrorsFlipOutcomes) {
  // p(measure) = 1 with bit-flip noise: a |0> qubit always reads 1.
  Circuit c(1);
  const auto slot = c.measure_z(0);
  NoiseModel m = NoiseModel::bit_flip(1.0);
  for (int i = 0; i < 20; ++i) {
    StochasticInjector inj(m, Rng(100 + i));
    TabBackend b(1, Rng(2));
    const auto result = circuit::execute(c, b, &inj);
    EXPECT_TRUE(result.cbits[slot]);
  }
}

TEST(MonteCarlo, ReproducibleAcrossRuns) {
  auto trial = [](Rng& rng) { return rng.bernoulli(0.37); };
  const auto a = run_trials(500, 99, trial);
  const auto b = run_trials(500, 99, trial);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_NEAR(a.rate(), 0.37, 0.08);
}

TEST(MonteCarlo, DifferentSeedsDiffer) {
  auto trial = [](Rng& rng) { return rng.bernoulli(0.5); };
  const auto a = run_trials(200, 1, trial);
  const auto b = run_trials(200, 2, trial);
  EXPECT_NE(a.failures, b.failures);  // overwhelmingly likely
}

TEST(MonteCarlo, UntilStopsAtFailureBudget) {
  auto trial = [](Rng&) { return true; };  // always fails
  const auto c = run_trials_until(100000, 7, 3, trial);
  EXPECT_EQ(c.failures, 7u);
  EXPECT_EQ(c.trials, 7u);
  EXPECT_TRUE(c.stopped_early);
}

TEST(MonteCarlo, UntilRunsOutOfTrials) {
  auto trial = [](Rng&) { return false; };
  const auto c = run_trials_until(50, 3, 3, trial);
  EXPECT_EQ(c.trials, 50u);
  EXPECT_EQ(c.failures, 0u);
  EXPECT_FALSE(c.stopped_early);
}

// The CI determinism gate: a worker pool must not change any reported
// number.  Per-trial streams are counter-split from (seed, index), and
// shard counters merge by order-free sums, so every jobs value produces a
// byte-identical FailureCounter (compared via the deterministic JSON dump).
TEST(MonteCarlo, ParallelByteIdenticalToSerial) {
  auto trial = [](Rng& rng) {
    // Consume a varying amount of the stream so trials are not trivially
    // symmetric under reordering.
    const int draws = 1 + static_cast<int>(rng.below(5));
    bool fail = false;
    for (int i = 0; i < draws; ++i) fail = rng.bernoulli(0.23);
    return fail;
  };
  const auto serial = run_trials(1000, 77, trial, 1);
  for (unsigned jobs : {2u, 8u}) {
    const auto parallel = run_trials(1000, 77, trial, jobs);
    EXPECT_EQ(serial.to_json_value().dump(), parallel.to_json_value().dump())
        << "jobs=" << jobs;
  }
}

TEST(MonteCarlo, UntilParallelMatchesSerial) {
  // Early stopping must also be jobs-invariant: the parallel driver
  // speculates ahead but commits outcomes in index order.
  auto trial = [](Rng& rng) { return rng.bernoulli(0.05); };
  const auto serial = run_trials_until(5000, 11, 123, trial, 1);
  for (unsigned jobs : {2u, 8u}) {
    const auto parallel = run_trials_until(5000, 11, 123, trial, jobs);
    EXPECT_EQ(serial.to_json_value().dump(), parallel.to_json_value().dump())
        << "jobs=" << jobs;
  }
}

// Regression for the sequential-master-RNG bug: trial i's outcome is a pure
// function of (seed, i) — invariant to how many trials run and how many
// workers run them.
TEST(MonteCarlo, TrialOutcomeInvariantToTrialCountAndJobs) {
  auto outcome_map = [](std::uint64_t trials, unsigned jobs) {
    std::vector<int> out(static_cast<std::size_t>(trials), -1);
    std::mutex mu;
    run_trials_indexed(
        trials, 5,
        [&](std::uint64_t i, Rng& rng) {
          const bool fail = rng.bernoulli(0.4);
          std::lock_guard<std::mutex> lock(mu);
          out[static_cast<std::size_t>(i)] = fail ? 1 : 0;
          return fail;
        },
        jobs);
    return out;
  };
  const auto base = outcome_map(64, 1);
  const auto longer = outcome_map(256, 1);
  for (std::size_t i = 0; i < base.size(); ++i)
    EXPECT_EQ(base[i], longer[i]) << "trial " << i
                                  << " changed with the trial count";
  for (unsigned jobs : {2u, 8u}) {
    const auto par = outcome_map(256, jobs);
    EXPECT_EQ(longer, par) << "jobs=" << jobs;
  }
}

TEST(MonteCarlo, TrialValuesOrderedAndJobsInvariant) {
  auto trial = [](std::uint64_t i, Rng& rng) {
    return static_cast<double>(i) + rng.uniform();
  };
  const auto serial = run_trial_values(100, 9, trial, 1);
  ASSERT_EQ(serial.size(), 100u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_GE(serial[i], static_cast<double>(i));
    EXPECT_LT(serial[i], static_cast<double>(i) + 1.0);
  }
  EXPECT_EQ(serial, run_trial_values(100, 9, trial, 4));
}

// Property: injected error count over a known number of sites follows the
// expected binomial mean for every channel.
class ChannelRate : public ::testing::TestWithParam<Channel> {};

TEST_P(ChannelRate, MatchesExpectedMean) {
  Circuit c(2);
  for (int i = 0; i < 300; ++i) c.cnot(0, 1);
  NoiseModel m;
  m.p = 0.05;
  m.channel = GetParam();
  std::size_t total = 0;
  const int reps = 30;
  for (int r = 0; r < reps; ++r) {
    StochasticInjector inj(m, Rng(1000 + r));
    TabBackend b(2, Rng(2));
    circuit::execute(c, b, &inj);
    total += inj.errors_injected();
  }
  const double mean = double(total) / reps;
  EXPECT_NEAR(mean, 300 * 0.05, 4.0);
}

INSTANTIATE_TEST_SUITE_P(AllChannels, ChannelRate,
                         ::testing::Values(Channel::Depolarizing,
                                           Channel::BitFlip,
                                           Channel::PhaseFlip,
                                           Channel::SingleQubitPauli));

// --- resumable trial driver -------------------------------------------------

namespace {

// A cheap deterministic per-index trial: pure function of (seed, index).
bool toy_trial(std::uint64_t, Rng& rng) { return rng.uniform() < 0.125; }

}  // namespace

TEST(MonteCarloResumable, MatchesRunTrialsForAnyJobsValue) {
  const std::uint64_t trials = 5000, seed = 17;
  const auto reference =
      run_trials_indexed(trials, seed, toy_trial, /*jobs=*/1);
  for (unsigned jobs : {1u, 3u}) {
    McResumableOptions opt;
    opt.jobs = jobs;
    const auto result = run_trials_resumable(trials, seed, toy_trial, opt);
    EXPECT_TRUE(result.complete);
    EXPECT_EQ(result.next_index, trials);
    EXPECT_EQ(result.counter.trials, reference.trials);
    EXPECT_EQ(result.counter.failures, reference.failures);
  }
}

TEST(MonteCarloResumable, StopTokenFlushesAResumablePoint) {
  const std::uint64_t trials = 5000, seed = 17;
  const auto reference = run_trials_indexed(trials, seed, toy_trial, 1);

  std::atomic<bool> stop{false};
  McResumableOptions opt;
  opt.jobs = 2;
  opt.block = 256;
  opt.stop = &stop;
  std::uint64_t blocks_seen = 0;
  opt.on_block = [&](const McProgress& p) {
    ++blocks_seen;
    if (p.next_index >= 1024) stop.store(true);
  };
  const auto partial = run_trials_resumable(trials, seed, toy_trial, opt);
  EXPECT_FALSE(partial.complete);
  EXPECT_LT(partial.next_index, trials);
  EXPECT_EQ(partial.counter.trials, partial.next_index);
  EXPECT_GT(blocks_seen, 0u);

  // Resume from exactly the stopping point -> identical final counter.
  McResumableOptions resume;
  resume.jobs = 3;
  resume.start_index = partial.next_index;
  resume.initial = partial.counter;
  const auto resumed = run_trials_resumable(trials, seed, toy_trial, resume);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.counter.trials, reference.trials);
  EXPECT_EQ(resumed.counter.failures, reference.failures);
}

TEST(MonteCarloResumable, ResumeIsByteIdenticalAcrossAnySplitPoint) {
  const std::uint64_t trials = 600, seed = 5;
  const auto reference = run_trials_indexed(trials, seed, toy_trial, 1);
  for (std::uint64_t split : {std::uint64_t{1}, std::uint64_t{137},
                              std::uint64_t{599}, std::uint64_t{600}}) {
    McResumableOptions first;
    first.block = 64;
    std::atomic<bool> stop{false};
    first.stop = &stop;
    first.on_block = [&](const McProgress& p) {
      if (p.next_index >= split) stop.store(true);
    };
    const auto head = run_trials_resumable(trials, seed, toy_trial, first);

    McResumableOptions rest;
    rest.start_index = head.next_index;
    rest.initial = head.counter;
    const auto tail = run_trials_resumable(trials, seed, toy_trial, rest);
    EXPECT_TRUE(tail.complete);
    EXPECT_EQ(tail.counter.to_json_value().dump(),
              reference.to_json_value().dump())
        << "split at " << split;
  }
}

TEST(MonteCarloResumable, PreSetStopRunsNothing) {
  std::atomic<bool> stop{true};
  McResumableOptions opt;
  opt.stop = &stop;
  opt.start_index = 40;
  FailureCounter initial;
  initial.trials = 40;
  initial.failures = 3;
  opt.initial = initial;
  const auto result = run_trials_resumable(1000, 1, toy_trial, opt);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.next_index, 40u);
  EXPECT_EQ(result.counter.trials, 40u);
  EXPECT_EQ(result.counter.failures, 3u);
}

TEST(MonteCarloResumable, OnBlockSeesMonotoneCheckpoints) {
  McResumableOptions opt;
  opt.jobs = 2;
  opt.block = 100;
  std::uint64_t last = 0;
  opt.on_block = [&last](const McProgress& p) {
    EXPECT_GT(p.next_index, last);
    EXPECT_EQ(p.counter.trials, p.next_index);
    last = p.next_index;
  };
  const auto result = run_trials_resumable(950, 9, toy_trial, opt);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(last, 950u);
}

}  // namespace
}  // namespace eqc::noise
