// Tests for the noise module: channel statistics, per-site-kind scaling,
// and Monte-Carlo driver reproducibility.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "circuit/circuit.h"
#include "circuit/execute.h"
#include "circuit/tab_backend.h"
#include "common/assert.h"
#include "common/rng.h"
#include "noise/model.h"
#include "noise/monte_carlo.h"

namespace eqc::noise {
namespace {

using circuit::Circuit;
using circuit::TabBackend;

TEST(NoiseModel, ProbabilityPerKind) {
  NoiseModel m;
  m.p = 0.01;
  m.idle_scale = 0.5;
  m.measure_scale = 2.0;
  m.prep_scale = 0.0;
  using Kind = circuit::FaultSite::Kind;
  EXPECT_DOUBLE_EQ(m.probability_for(Kind::GateOutput), 0.01);
  EXPECT_DOUBLE_EQ(m.probability_for(Kind::Idle), 0.005);
  EXPECT_DOUBLE_EQ(m.probability_for(Kind::MeasureInput), 0.02);
  EXPECT_DOUBLE_EQ(m.probability_for(Kind::PrepOutput), 0.0);
  EXPECT_DOUBLE_EQ(m.probability_for(Kind::Input), 0.01);
}

TEST(NoiseModel, Factories) {
  EXPECT_EQ(NoiseModel::depolarizing(0.1).channel, Channel::Depolarizing);
  EXPECT_EQ(NoiseModel::bit_flip(0.1).channel, Channel::BitFlip);
  EXPECT_EQ(NoiseModel::phase_flip(0.1).channel, Channel::PhaseFlip);
  EXPECT_EQ(NoiseModel::paper_model(0.1).channel, Channel::SingleQubitPauli);
}

TEST(SampleError, SingleQubitPauliIsAlwaysWeightOne) {
  Rng rng(11);
  std::map<std::string, int> seen;
  for (int i = 0; i < 3000; ++i) {
    const auto e = sample_error(Channel::SingleQubitPauli, {0, 1, 2}, 3, rng);
    EXPECT_EQ(e.weight(), 1u);
    seen[e.to_string()]++;
  }
  // 3 qubits x 3 Paulis = 9 weight-1 errors, roughly uniform.
  EXPECT_EQ(seen.size(), 9u);
  for (const auto& [key, count] : seen) {
    EXPECT_GT(count, 3000 / 9 / 2) << key;
    EXPECT_LT(count, 3000 / 9 * 2) << key;
  }
}

TEST(SampleError, DepolarizingThreeQubitsCovers63) {
  Rng rng(13);
  std::set<std::string> seen;
  for (int i = 0; i < 20000; ++i)
    seen.insert(
        sample_error(Channel::Depolarizing, {0, 1, 2}, 3, rng).to_string());
  EXPECT_EQ(seen.size(), 63u);
}

TEST(SampleError, PhaseFlipNeverTouchesX) {
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const auto e = sample_error(Channel::PhaseFlip, {0, 1}, 2, rng);
    for (std::size_t q = 0; q < 2; ++q) EXPECT_FALSE(e.x_bit(q));
    EXPECT_GE(e.weight(), 1u);
  }
}

TEST(SampleError, BitFlipNeverTouchesZ) {
  Rng rng(19);
  for (int i = 0; i < 500; ++i) {
    const auto e = sample_error(Channel::BitFlip, {0, 1}, 2, rng);
    for (std::size_t q = 0; q < 2; ++q) EXPECT_FALSE(e.z_bit(q));
  }
}

TEST(StochasticInjector, RespectsKindScales) {
  // Idle noise disabled: a circuit of idles never accumulates errors.
  Circuit c(1);
  for (int i = 0; i < 400; ++i) c.idle(0);
  NoiseModel m = NoiseModel::depolarizing(0.5);
  m.idle_scale = 0.0;
  StochasticInjector inj(m, Rng(3));
  TabBackend b(1, Rng(2));
  circuit::execute(c, b, &inj);
  EXPECT_EQ(inj.errors_injected(), 0u);
}

TEST(StochasticInjector, MeasurementErrorsFlipOutcomes) {
  // p(measure) = 1 with bit-flip noise: a |0> qubit always reads 1.
  Circuit c(1);
  const auto slot = c.measure_z(0);
  NoiseModel m = NoiseModel::bit_flip(1.0);
  for (int i = 0; i < 20; ++i) {
    StochasticInjector inj(m, Rng(100 + i));
    TabBackend b(1, Rng(2));
    const auto result = circuit::execute(c, b, &inj);
    EXPECT_TRUE(result.cbits[slot]);
  }
}

TEST(MonteCarlo, ReproducibleAcrossRuns) {
  auto trial = [](Rng& rng) { return rng.bernoulli(0.37); };
  const auto a = run_trials(500, 99, trial);
  const auto b = run_trials(500, 99, trial);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_NEAR(a.rate(), 0.37, 0.08);
}

TEST(MonteCarlo, DifferentSeedsDiffer) {
  auto trial = [](Rng& rng) { return rng.bernoulli(0.5); };
  const auto a = run_trials(200, 1, trial);
  const auto b = run_trials(200, 2, trial);
  EXPECT_NE(a.failures, b.failures);  // overwhelmingly likely
}

TEST(MonteCarlo, UntilStopsAtFailureBudget) {
  auto trial = [](Rng&) { return true; };  // always fails
  const auto c = run_trials_until(100000, 7, 3, trial);
  EXPECT_EQ(c.failures, 7u);
  EXPECT_EQ(c.trials, 7u);
}

TEST(MonteCarlo, UntilRunsOutOfTrials) {
  auto trial = [](Rng&) { return false; };
  const auto c = run_trials_until(50, 3, 3, trial);
  EXPECT_EQ(c.trials, 50u);
  EXPECT_EQ(c.failures, 0u);
}

// Property: injected error count over a known number of sites follows the
// expected binomial mean for every channel.
class ChannelRate : public ::testing::TestWithParam<Channel> {};

TEST_P(ChannelRate, MatchesExpectedMean) {
  Circuit c(2);
  for (int i = 0; i < 300; ++i) c.cnot(0, 1);
  NoiseModel m;
  m.p = 0.05;
  m.channel = GetParam();
  std::size_t total = 0;
  const int reps = 30;
  for (int r = 0; r < reps; ++r) {
    StochasticInjector inj(m, Rng(1000 + r));
    TabBackend b(2, Rng(2));
    circuit::execute(c, b, &inj);
    total += inj.errors_injected();
  }
  const double mean = double(total) / reps;
  EXPECT_NEAR(mean, 300 * 0.05, 4.0);
}

INSTANTIATE_TEST_SUITE_P(AllChannels, ChannelRate,
                         ::testing::Values(Channel::Depolarizing,
                                           Channel::BitFlip,
                                           Channel::PhaseFlip,
                                           Channel::SingleQubitPauli));

}  // namespace
}  // namespace eqc::noise
