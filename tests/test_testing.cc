// Self-tests of the fuzzing harness (src/testing): generator determinism
// and budget discipline, circuit JSON round-trips, circuit inversion, the
// oracles on healthy backends, planted-bug end-to-end detection with
// shrinking and replay, --jobs byte-identity, and shrinker 1-minimality.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <set>
#include <string>

#include "circuit/circuit.h"
#include "circuit/execute.h"
#include "circuit/op.h"
#include "common/assert.h"
#include "common/checkpoint.h"
#include "common/rng.h"
#include "testing/circuit_edit.h"
#include "testing/circuit_gen.h"
#include "testing/circuit_json.h"
#include "testing/fuzz.h"
#include "testing/oracles.h"
#include "testing/shrink.h"

namespace eqc::testing {
namespace {

using circuit::Circuit;
using circuit::OpKind;

bool same_ops(const Circuit& a, const Circuit& b) {
  if (a.num_qubits() != b.num_qubits() || a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a.ops()[i];
    const auto& y = b.ops()[i];
    if (x.kind != y.kind) return false;
    for (int k = 0; k < circuit::arity(x.kind); ++k)
      if (x.q[k] != y.q[k]) return false;
  }
  return true;
}

// --- generator ------------------------------------------------------------

TEST(CircuitGen, DeterministicPerSeed) {
  for (auto gs : {GateSet::Clifford, GateSet::CliffordCC, GateSet::CliffordT}) {
    CircuitGenOptions opt;
    opt.gate_set = gs;
    opt.measure_prob = 0.2;
    opt.prep_prob = 0.05;
    const CircuitGen gen(opt);
    Rng r1(42), r2(42), r3(43);
    const auto a = gen.generate(r1);
    const auto b = gen.generate(r2);
    const auto c = gen.generate(r3);
    EXPECT_TRUE(same_ops(a, b)) << to_string(gs);
    EXPECT_FALSE(same_ops(a, c)) << to_string(gs);
  }
}

TEST(CircuitGen, RespectsBudgets) {
  CircuitGenOptions opt;
  opt.qubits = 6;
  opt.depth = 55;
  const CircuitGen gen(opt);
  Rng rng(7);
  const auto c = gen.generate(rng);
  EXPECT_EQ(c.num_qubits(), 6u);
  EXPECT_EQ(c.size(), 55u);
  for (const auto& op : c.ops())
    for (int k = 0; k < circuit::arity(op.kind); ++k)
      EXPECT_LT(op.q[k], 6u);
}

TEST(CircuitGen, CliffordCircuitsAreUnitaryCliffordOnly) {
  const CircuitGen gen(CircuitGenOptions{});
  Rng rng(9);
  const auto c = gen.generate(rng);
  for (const auto& op : c.ops())
    EXPECT_TRUE(circuit::is_clifford_unitary(op.kind))
        << circuit::name(op.kind);
}

TEST(CircuitGen, CliffordCcKeepsClassicalAncillasClassical) {
  // Every CC circuit must execute on the tableau: the lowering relies on the
  // trailing ancilla register staying Z-deterministic.
  CircuitGenOptions opt;
  opt.gate_set = GateSet::CliffordCC;
  opt.qubits = 6;
  opt.depth = 80;
  const CircuitGen gen(opt);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const auto c = gen.generate(rng);
    circuit::TabBackend tab(c.num_qubits(), Rng(seed));
    EXPECT_NO_THROW(circuit::execute(c, tab)) << "seed " << seed;
  }
}

TEST(CircuitGen, SharedHelperMatchesLegacyMenu) {
  Rng rng(5);
  const auto c = random_clifford_circuit(4, 30, rng);
  EXPECT_EQ(c.num_qubits(), 4u);
  EXPECT_EQ(c.size(), 30u);
  const std::set<OpKind> allowed{OpKind::H,    OpKind::S,  OpKind::Sdg,
                                 OpKind::X,    OpKind::Y,  OpKind::Z,
                                 OpKind::CNOT, OpKind::CZ, OpKind::Swap};
  for (const auto& op : c.ops()) EXPECT_TRUE(allowed.count(op.kind));
}

// --- circuit edits and JSON -----------------------------------------------

TEST(CircuitEdit, KeepOpsAndRelabel) {
  Circuit c(3);
  c.h(0);
  c.cnot(0, 1);
  c.s(2);
  const auto kept = keep_ops(c, {true, false, true});
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept.ops()[0].kind, OpKind::H);
  EXPECT_EQ(kept.ops()[1].kind, OpKind::S);

  const auto relabeled = relabel_qubits(c, {2, 0, 1});
  EXPECT_EQ(relabeled.ops()[1].q[0], 2u);
  EXPECT_EQ(relabeled.ops()[1].q[1], 0u);
  EXPECT_EQ(relabeled.ops()[2].q[0], 1u);
}

TEST(CircuitEdit, CompactDropsUnusedQubits) {
  Circuit c(5);
  c.h(1);
  c.cnot(1, 4);
  const auto compact = compact_qubits(c);
  EXPECT_EQ(compact.num_qubits(), 2u);
  EXPECT_EQ(compact.ops()[0].q[0], 0u);
  EXPECT_EQ(compact.ops()[1].q[1], 1u);
}

TEST(CircuitJson, RoundTripsEveryRepresentableOp) {
  CircuitGenOptions opt;
  opt.gate_set = GateSet::CliffordT;
  opt.qubits = 5;
  opt.depth = 60;
  opt.measure_prob = 0.2;
  opt.prep_prob = 0.1;
  Rng rng(31);
  const auto c = CircuitGen(opt).generate(rng);
  const auto back = circuit_from_json(circuit_to_json(c));
  EXPECT_TRUE(same_ops(c, back));
  EXPECT_EQ(c.num_cbits(), back.num_cbits());
  // And byte-stable serialization.
  EXPECT_EQ(circuit_to_json(c).dump(), circuit_to_json(back).dump());
}

// --- inverse ---------------------------------------------------------------

TEST(CircuitInverse, RoundTripIsIdentityOnStateVector) {
  Rng rng(17);
  auto c = random_clifford_circuit(4, 50, rng);
  c.t(0);  // inverse() also covers non-Clifford unitaries
  c.cs(0, 1);
  auto round_trip = c;
  round_trip.append(circuit::inverse(c));
  circuit::SvBackend sv(4, Rng(1));
  circuit::execute(round_trip, sv);
  for (std::size_t q = 0; q < 4; ++q)
    EXPECT_NEAR(sv.expectation_z(q), 1.0, 1e-9);
}

TEST(CircuitInverse, RejectsNonUnitaryOps) {
  Circuit c(1);
  c.measure_z(0);
  EXPECT_THROW(circuit::inverse(c), ContractViolation);
  Circuit p(1);
  p.prep_z(0);
  EXPECT_THROW(circuit::inverse(p), ContractViolation);
}

// --- oracles on healthy backends -------------------------------------------

TEST(Oracles, AllPassOnHealthyBackends) {
  for (auto gs : {GateSet::Clifford, GateSet::CliffordCC, GateSet::CliffordT}) {
    CircuitGenOptions opt;
    opt.gate_set = gs;
    opt.qubits = 4;
    opt.depth = 30;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      Rng rng(seed);
      const auto c = CircuitGen(opt).generate(rng);
      for (const auto& name : unitary_oracles(gs)) {
        const auto r = run_named_oracle(name, c, seed * 7919, 1e-7);
        EXPECT_TRUE(r.ok) << to_string(gs) << "/" << name << " seed " << seed
                          << ": " << r.detail;
      }
    }
  }
}

TEST(Oracles, MeasuredOraclesPassOnHealthyBackends) {
  for (auto gs : {GateSet::Clifford, GateSet::CliffordCC}) {
    CircuitGenOptions opt;
    opt.gate_set = gs;
    opt.qubits = 4;
    opt.depth = 30;
    opt.measure_prob = 0.25;
    opt.prep_prob = 0.1;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      Rng rng(seed);
      const auto c = CircuitGen(opt).generate(rng);
      for (const auto& name : measured_oracles(gs)) {
        const auto r = run_named_oracle(name, c, seed * 104729, 1e-7);
        EXPECT_TRUE(r.ok) << to_string(gs) << "/" << name << " seed " << seed
                          << ": " << r.detail;
      }
    }
  }
}

TEST(Oracles, DifferentialCatchesSInvertedViaStabilizers) {
  // The canonical 2-op counterexample: per-qubit <Z> cannot distinguish S
  // from Sdg on |+> (complex conjugation preserves all Z expectations), but
  // the stabilizer cross-check can (Y vs -Y).
  Circuit c(1);
  c.h(0);
  c.s(0);
  EXPECT_TRUE(run_named_oracle("differential", c, 3, 1e-7).ok);
  const auto r =
      run_named_oracle("differential", c, 3, 1e-7, PlantedBug::SInverted);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("stabilizer"), std::string::npos) << r.detail;
}

// --- planted-bug end-to-end -------------------------------------------------

TEST(FuzzEndToEnd, FindsAndShrinksPlantedBug) {
  FuzzConfig cfg;
  cfg.trials = 10;
  cfg.qubits = 4;
  cfg.depth = 20;
  cfg.seed = 3;
  cfg.bug = PlantedBug::SInverted;
  const auto report = run_fuzz(cfg);
  ASSERT_FALSE(report.failures.empty());
  for (const auto& f : report.failures) {
    // Acceptance criterion: shrunk to a handful of ops.
    EXPECT_LE(f.circuit.size(), 5u) << f.oracle;
    EXPECT_LE(f.circuit.size(), f.original_ops);
    // Every artifact replays deterministically...
    EXPECT_TRUE(replay_failure(f)) << f.oracle;
    // ...including after a JSON round-trip (the --replay path).
    const auto round_trip = FailureArtifact::from_json(
        json::Value::parse(f.to_json_value().dump()));
    EXPECT_TRUE(replay_failure(round_trip)) << f.oracle;
    // The regression snippet mentions the oracle and the planted bug.
    const auto snippet = f.regression_snippet();
    EXPECT_NE(snippet.find(f.oracle), std::string::npos);
    EXPECT_NE(snippet.find("s-inverted"), std::string::npos);
  }
}

TEST(FuzzEndToEnd, HealthyBackendsProduceNoFailures) {
  for (auto gs : {GateSet::Clifford, GateSet::CliffordCC, GateSet::CliffordT,
                  GateSet::Frames}) {
    FuzzConfig cfg;
    cfg.gate_set = gs;
    cfg.trials = 5;
    cfg.qubits = 4;
    cfg.depth = 25;
    cfg.seed = 11;
    const auto report = run_fuzz(cfg);
    EXPECT_EQ(report.trials_run, cfg.trials);
    EXPECT_TRUE(report.failures.empty()) << to_string(gs);
  }
}

TEST(FuzzEndToEnd, ReportIsByteIdenticalAcrossJobs) {
  for (auto bug : {PlantedBug::None, PlantedBug::CnotReversed}) {
    FuzzConfig cfg;
    cfg.trials = 12;
    cfg.qubits = 4;
    cfg.depth = 20;
    cfg.seed = 5;
    cfg.bug = bug;
    cfg.jobs = 1;
    const auto serial = run_fuzz(cfg);
    cfg.jobs = 4;
    const auto sharded = run_fuzz(cfg);
    EXPECT_EQ(serial.to_json(), sharded.to_json());
  }
}

TEST(FuzzEndToEnd, AllPlantedBugsAreDetected) {
  const struct {
    PlantedBug bug;
    GateSet gs;
  } cases[] = {
      {PlantedBug::SInverted, GateSet::Clifford},
      {PlantedBug::CnotReversed, GateSet::Clifford},
      {PlantedBug::CzDropped, GateSet::Clifford},
      {PlantedBug::CczWrongPair, GateSet::CliffordCC},
      // The frame-vs-trial oracle must catch a defective frame engine
      // (fuzzing the frame fuzzer).
      {PlantedBug::FrameCnotSwapped, GateSet::Frames},
  };
  for (const auto& tc : cases) {
    FuzzConfig cfg;
    cfg.gate_set = tc.gs;
    cfg.trials = 10;
    cfg.qubits = 5;
    cfg.depth = 40;
    cfg.seed = 2;
    cfg.bug = tc.bug;
    cfg.shrink = false;  // detection only; keep the test fast
    const auto report = run_fuzz(cfg);
    EXPECT_FALSE(report.failures.empty()) << to_string(tc.bug);
  }
}

// --- shrinker ---------------------------------------------------------------

TEST(Shrink, ProducesOneMinimalFailingCircuit) {
  // Predicate: circuit contains at least 2 H gates and at least 1 CNOT.
  auto fails = [](const Circuit& c) {
    int h = 0, cx = 0;
    for (const auto& op : c.ops()) {
      h += op.kind == OpKind::H;
      cx += op.kind == OpKind::CNOT;
    }
    return h >= 2 && cx >= 1;
  };
  Rng rng(23);
  const auto big = random_clifford_circuit(5, 60, rng);
  if (!fails(big)) GTEST_SKIP() << "seed produced no qualifying circuit";
  const auto small = shrink_circuit(big, fails);
  EXPECT_TRUE(fails(small));
  EXPECT_EQ(small.size(), 3u);  // exactly 2 H + 1 CNOT is 1-minimal
  // 1-minimality: removing any single op breaks the predicate.
  for (std::size_t i = 0; i < small.size(); ++i) {
    std::vector<bool> keep(small.size(), true);
    keep[i] = false;
    EXPECT_FALSE(fails(keep_ops(small, keep))) << "op " << i;
  }
}

TEST(Shrink, PreservesFailureOnRealOracle) {
  // Shrinking a real planted-bug failure never loses the failure.
  CircuitGenOptions opt;
  opt.qubits = 4;
  opt.depth = 30;
  Rng rng(3);
  const auto c = CircuitGen(opt).generate(rng);
  auto fails = [](const Circuit& cand) {
    return !run_named_oracle("append-inverse-tab", cand, 1, 1e-7,
                             PlantedBug::SInverted)
                .ok;
  };
  if (!fails(c)) GTEST_SKIP() << "seed did not trigger the planted bug";
  const auto small = shrink_circuit(c, fails);
  EXPECT_TRUE(fails(small));
  EXPECT_LE(small.size(), 5u);
}

// --- checkpoint / resume ----------------------------------------------------

namespace {

// A scratch file that cleans up after itself.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name) {
    path = ::testing::TempDir() + name;
    std::remove(path.c_str());
    std::remove((path + ".corrupt").c_str());
  }
  ~TempFile() {
    std::remove(path.c_str());
    std::remove((path + ".corrupt").c_str());
  }
};

FuzzConfig small_buggy_config() {
  FuzzConfig cfg;
  cfg.qubits = 4;
  cfg.depth = 20;
  cfg.trials = 120;
  cfg.seed = 7;
  cfg.jobs = 2;
  cfg.bug = PlantedBug::SInverted;  // guarantees failures in the report
  return cfg;
}

std::string slurp_file(const std::string& path) {
  std::string text;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

void spit_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(text.data(), 1, text.size(), f), text.size());
  std::fclose(f);
}

}  // namespace

TEST(FuzzResume, KillResumeReachesTheByteIdenticalReport) {
  FuzzConfig cfg = small_buggy_config();
  const auto reference = run_fuzz(cfg);  // uninterrupted, no checkpointing
  ASSERT_GT(reference.failures.size(), 0u);

  TempFile ck("fuzz_ck.json");
  cfg.checkpoint_path = ck.path;
  cfg.checkpoint_every = 16;
  cfg.max_trials_this_run = 50;  // simulated kill
  const auto killed = run_fuzz(cfg);
  EXPECT_TRUE(killed.interrupted);
  EXPECT_LT(killed.trials_run, cfg.trials);

  cfg.resume = true;
  cfg.max_trials_this_run = 37;  // a second, differently-placed kill
  const auto middle = run_fuzz(cfg);
  EXPECT_TRUE(middle.interrupted);

  cfg.max_trials_this_run = 0;  // run to completion
  cfg.jobs = 3;                 // a different worker count must not matter
  const auto resumed = run_fuzz(cfg);
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.to_json(), reference.to_json());
}

TEST(FuzzResume, StopTokenInterruptsAndCheckpointResumes) {
  FuzzConfig cfg = small_buggy_config();
  const auto reference = run_fuzz(cfg);

  TempFile ck("fuzz_stop_ck.json");
  cfg.checkpoint_path = ck.path;
  cfg.checkpoint_every = 16;
  std::atomic<bool> stop{false};
  cfg.stop = &stop;
  cfg.on_progress = [&stop](std::uint64_t merged, std::size_t) {
    if (merged >= 32) stop.store(true);
  };
  const auto interrupted = run_fuzz(cfg);
  EXPECT_TRUE(interrupted.interrupted);
  EXPECT_LT(interrupted.trials_run, cfg.trials);
  EXPECT_FALSE(slurp_file(ck.path).empty());  // final checkpoint flushed

  cfg.stop = nullptr;
  cfg.on_progress = nullptr;
  cfg.resume = true;
  const auto resumed = run_fuzz(cfg);
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.to_json(), reference.to_json());
}

TEST(FuzzResume, PreSetStopRunsNoTrials) {
  FuzzConfig cfg = small_buggy_config();
  std::atomic<bool> stop{true};
  cfg.stop = &stop;
  const auto report = run_fuzz(cfg);
  EXPECT_TRUE(report.interrupted);
  EXPECT_EQ(report.trials_run, 0u);
}

TEST(FuzzResume, ResumeRejectsAMismatchedCheckpoint) {
  FuzzConfig cfg = small_buggy_config();
  TempFile ck("fuzz_mismatch_ck.json");
  cfg.checkpoint_path = ck.path;
  cfg.max_trials_this_run = 40;
  (void)run_fuzz(cfg);

  cfg.resume = true;
  cfg.seed = 99;  // different campaign -> different fingerprint
  EXPECT_THROW((void)run_fuzz(cfg), ContractViolation);
}

TEST(FuzzResume, CorruptCheckpointThrowsTheDistinctError) {
  FuzzConfig cfg = small_buggy_config();
  TempFile ck("fuzz_corrupt_ck.json");
  cfg.checkpoint_path = ck.path;
  cfg.max_trials_this_run = 40;
  (void)run_fuzz(cfg);

  const std::string original = slurp_file(ck.path);
  ASSERT_FALSE(original.empty());
  cfg.resume = true;
  cfg.max_trials_this_run = 0;

  // Truncation at a sample of byte offsets: always the distinct
  // CheckpointCorrupt (a strict prefix of a JSON document never parses).
  for (std::size_t len : {std::size_t{0}, std::size_t{1},
                          original.size() / 2, original.size() - 1}) {
    spit_file(ck.path, original.substr(0, len));
    EXPECT_THROW((void)run_fuzz(cfg), CheckpointCorrupt) << "offset " << len;
  }

  // fresh_on_corrupt: quarantine + fresh start reaches the reference
  // report anyway (determinism makes the fallback safe).
  FuzzConfig clean = small_buggy_config();
  const auto reference = run_fuzz(clean);
  spit_file(ck.path, original.substr(0, original.size() / 2));
  cfg.fresh_on_corrupt = true;
  const auto recovered = run_fuzz(cfg);
  EXPECT_FALSE(recovered.interrupted);
  EXPECT_EQ(recovered.to_json(), reference.to_json());
  EXPECT_FALSE(slurp_file(ck.path + ".corrupt").empty());
}

TEST(FuzzResume, CheckpointingNeverChangesTheReport) {
  FuzzConfig cfg = small_buggy_config();
  const auto reference = run_fuzz(cfg);

  TempFile ck("fuzz_cadence_ck.json");
  cfg.checkpoint_path = ck.path;
  for (std::uint64_t every : {std::uint64_t{8}, std::uint64_t{64},
                              std::uint64_t{1000}}) {
    cfg.checkpoint_every = every;
    std::remove(ck.path.c_str());
    const auto report = run_fuzz(cfg);
    EXPECT_EQ(report.to_json(), reference.to_json())
        << "checkpoint_every " << every;
  }
}

}  // namespace
}  // namespace eqc::testing
