// Tests for the eqc_serve stack: the write-ahead journal's crash model
// (torn tails, truncation at every offset, byte corruption), job spec
// round-trips, the crash-safe scheduler (resume, cancellation, drain),
// the socket server, and the kill -9 soak harness proving resumed runs
// produce byte-identical final reports.
#include <gtest/gtest.h>

#include <dirent.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/assert.h"
#include "common/checkpoint.h"
#include "common/rng.h"
#include "serve/jobs.h"
#include "serve/journal.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "serve/server.h"

namespace eqc::serve {
namespace {

// A scratch state directory that cleans up after itself.
struct TempDir {
  std::string path;
  explicit TempDir(const std::string& name) {
    path = ::testing::TempDir() + name + "-" + std::to_string(::getpid());
    remove_all();
    ::mkdir(path.c_str(), 0755);
  }
  ~TempDir() { remove_all(); }

  void remove_all() {
    DIR* dir = ::opendir(path.c_str());
    if (dir != nullptr) {
      while (dirent* e = ::readdir(dir)) {
        const std::string name = e->d_name;
        if (name == "." || name == "..") continue;
        std::remove((path + "/" + name).c_str());
      }
      ::closedir(dir);
    }
    ::rmdir(path.c_str());
  }

  std::string file(const std::string& name) const { return path + "/" + name; }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spit(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

json::Value event(const char* name, std::uint64_t id) {
  json::Object obj;
  obj.emplace_back("event", name);
  obj.emplace_back("id", id);
  return json::Value(std::move(obj));
}

JobSpec small_mc_spec() {
  JobSpec spec;
  spec.type = JobType::MonteCarlo;
  spec.gadget.gadget = "ngate";
  spec.jobs = 2;
  spec.seed = 7;
  spec.mc.p = 1e-3;
  spec.mc.trials = 1200;
  spec.mc.block = 64;
  return spec;
}

JobSpec small_campaign_spec() {
  JobSpec spec;
  spec.type = JobType::Campaign;
  spec.gadget.gadget = "ngate";
  spec.jobs = 2;
  spec.campaign.k = 2;
  spec.campaign.budget = 300;
  spec.checkpoint_every = 32;
  return spec;
}

JobSpec small_fuzz_spec() {
  JobSpec spec;
  spec.type = JobType::Fuzz;
  spec.jobs = 2;
  spec.seed = 3;
  spec.fuzz.qubits = 4;
  spec.fuzz.depth = 20;
  spec.fuzz.trials = 120;
  spec.fuzz.bug = testing::PlantedBug::SInverted;
  spec.checkpoint_every = 16;
  return spec;
}

JobSpec small_matrix_spec() {
  JobSpec spec;
  spec.type = JobType::Matrix;
  spec.jobs = 2;
  spec.seed = 9;
  spec.matrix.gadgets = {"ngate"};
  spec.matrix.codes = {"steane"};
  spec.matrix.ks = {1};
  spec.matrix.noises = {"paper"};
  spec.matrix.budget = 60;
  return spec;
}

// --- journal ----------------------------------------------------------------

TEST(Journal, AppendLoadRoundTripsWithSequentialSeq) {
  TempDir dir("journal-roundtrip");
  const std::string path = dir.file("journal.jsonl");
  {
    Journal journal(path, 0);
    journal.append(event("submit", 0));
    journal.append(event("start", 0));
    journal.append(event("done", 0));
  }
  const auto records = Journal::load(path);
  ASSERT_EQ(records.size(), 3u);
  for (std::size_t i = 0; i < records.size(); ++i)
    EXPECT_EQ(records[i].at("seq").as_u64(), i);
  EXPECT_EQ(records[1].at("event").as_string(), "start");
}

TEST(Journal, AppendContinuesAnExistingHistory) {
  TempDir dir("journal-continue");
  const std::string path = dir.file("journal.jsonl");
  {
    Journal journal(path, 0);
    journal.append(event("submit", 0));
  }
  {
    const auto records = Journal::load(path);
    Journal journal(path, records.size());
    journal.append(event("done", 0));
  }
  const auto records = Journal::load(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].at("seq").as_u64(), 1u);
}

TEST(Journal, MissingFileLoadsEmpty) {
  TempDir dir("journal-missing");
  EXPECT_TRUE(Journal::load(dir.file("journal.jsonl")).empty());
}

TEST(Journal, TornTailIsDiscardedNotFatal) {
  TempDir dir("journal-torn");
  const std::string path = dir.file("journal.jsonl");
  {
    Journal journal(path, 0);
    journal.append(event("submit", 0));
    journal.append(event("start", 0));
  }
  // Simulate a crash mid-append: a fragment with no trailing newline.
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << R"({"seq":2,"event":"do)";
  out.close();
  const auto records = Journal::load(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].at("event").as_string(), "start");
}

TEST(Journal, LoadStatsReportRecordCountAndTornTailBytes) {
  TempDir dir("journal-stats");
  const std::string path = dir.file("journal.jsonl");
  {
    Journal journal(path, 0);
    journal.append(event("submit", 0));
    journal.append(event("start", 0));
  }
  const std::string fragment = R"({"seq":2,"event":"do)";
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << fragment;
  }
  JournalLoadStats stats;
  const auto records = Journal::load(path, &stats);
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.torn_bytes, fragment.size());

  // A clean journal reports zero torn bytes.
  JournalLoadStats clean;
  parse_journal_text(R"({"seq":0,"event":"submit","id":0})"
                     "\n",
                     &clean);
  EXPECT_EQ(clean.records, 1u);
  EXPECT_EQ(clean.torn_bytes, 0u);
}

TEST(Journal, TruncationAtEveryByteOffsetNeverCrashes) {
  TempDir dir("journal-truncate");
  const std::string path = dir.file("journal.jsonl");
  {
    Journal journal(path, 0);
    journal.append(event("submit", 0));
    journal.append(event("start", 0));
    journal.append(event("cancel", 0));
    journal.append(event("cancelled", 0));
  }
  const std::string full = slurp(path);
  ASSERT_FALSE(full.empty());
  const auto complete = Journal::load(path);

  for (std::size_t len = 0; len <= full.size(); ++len) {
    const std::string trunc = full.substr(0, len);
    spit(path, trunc);
    // A truncated journal is a complete prefix of records plus at most a
    // torn tail: load() must return exactly the records whose full line
    // (including '\n') survived — never throw, never crash.
    std::vector<json::Value> records;
    ASSERT_NO_THROW(records = Journal::load(path)) << "offset " << len;
    std::size_t expected = 0;
    for (std::size_t i = 0; i < len; ++i)
      if (full[i] == '\n') ++expected;
    EXPECT_EQ(records.size(), expected) << "offset " << len;
  }
  spit(path, full);
  EXPECT_EQ(Journal::load(path).size(), complete.size());
}

TEST(Journal, SingleByteCorruptionIsCaughtOrHarmless) {
  TempDir dir("journal-corrupt");
  const std::string path = dir.file("journal.jsonl");
  {
    Journal journal(path, 0);
    journal.append(event("submit", 0));
    journal.append(event("start", 0));
    journal.append(event("done", 0));
  }
  const std::string full = slurp(path);
  Rng rng(2026);
  for (int i = 0; i < 200; ++i) {
    const std::size_t pos = rng.below(full.size());
    std::string damaged = full;
    damaged[pos] = static_cast<char>(rng.below(256));
    if (damaged == full) continue;
    spit(path, damaged);
    // Either the damage is syntactically harmless (e.g. inside a string)
    // or it must surface as the distinct CheckpointCorrupt — never a
    // crash, never a different exception type.
    try {
      (void)Journal::load(path);
    } catch (const CheckpointCorrupt&) {
      // expected for structural damage
    }
  }
}

TEST(Journal, OutOfOrderSeqIsCorrupt) {
  TempDir dir("journal-seq");
  const std::string path = dir.file("journal.jsonl");
  spit(path,
       "{\"seq\":0,\"event\":\"submit\",\"id\":0}\n"
       "{\"seq\":2,\"event\":\"done\",\"id\":0}\n");
  EXPECT_THROW((void)Journal::load(path), CheckpointCorrupt);
}

// --- job specs --------------------------------------------------------------

TEST(JobSpec, RoundTripsThroughJson) {
  for (const JobSpec& spec :
       {small_mc_spec(), small_campaign_spec(), small_fuzz_spec(),
        small_matrix_spec()}) {
    const json::Value v = spec.to_json_value();
    const JobSpec back = JobSpec::from_json(v);
    EXPECT_EQ(back.to_json_value().dump(), v.dump());
  }
}

TEST(JobSpec, ScenarioRoundTripsAndLegacyKeysStillParse) {
  // New scenario fields survive the round trip...
  JobSpec spec = small_mc_spec();
  spec.gadget.scenario.code = "rm15";
  spec.gadget.scenario.repetition_k = 2;
  spec.gadget.scenario.noise = "biased-z";
  const JobSpec back = JobSpec::from_json(spec.to_json_value());
  EXPECT_EQ(back.gadget.scenario.code, "rm15");
  EXPECT_EQ(back.gadget.scenario.repetition_k, 2);
  EXPECT_EQ(back.gadget.scenario.noise, "biased-z");

  // ...and pre-refactor specs (reps + correlated flag, no code/noise keys)
  // map onto the scenario: reps=5 -> k=2, correlated=true -> noise.
  const JobSpec legacy = JobSpec::from_json(json::Value::parse(
      R"({"type":"mc","gadget":"ngate","reps":5,"correlated":true})"));
  EXPECT_EQ(legacy.gadget.scenario.code, "steane");
  EXPECT_EQ(legacy.gadget.scenario.repetition_k, 2);
  EXPECT_EQ(legacy.gadget.scenario.noise, "correlated");
  EXPECT_EQ(legacy.gadget.scenario.reps(), 5);

  // Even repetition counts are rejected.
  EXPECT_THROW((void)JobSpec::from_json(json::Value::parse(
                   R"({"type":"mc","gadget":"ngate","reps":4})")),
               ContractViolation);
}

TEST(RunJob, MatrixJobWritesAMatrixReport) {
  const JobSpec spec = small_matrix_spec();
  TempDir dir("runjob-matrix");
  JobPaths paths{dir.file("ck.json"), dir.file("report.json")};
  JobProgress last;
  const auto outcome = run_job(spec, paths, nullptr,
                               [&last](const JobProgress& p) { last = p; });
  ASSERT_TRUE(outcome.complete);
  EXPECT_EQ(last.items_done, last.total_items);
  EXPECT_EQ(last.total_items, 1u);  // one grid cell
  const auto report = json::Value::parse(slurp(paths.report));
  const auto& obj = report.as_object();
  ASSERT_FALSE(obj.empty());
  EXPECT_EQ(obj[0].first, "kind");
  EXPECT_EQ(obj[0].second.as_string(), "eqc_matrix_report");
  // Re-running the completed job (per-cell checkpoints in place) must
  // reproduce the report byte for byte.
  const std::string first = slurp(paths.report);
  const auto again = run_job(spec, paths, nullptr, nullptr);
  ASSERT_TRUE(again.complete);
  EXPECT_EQ(slurp(paths.report), first);
}

TEST(JobSpec, RejectsUnknownTypeAndGadget) {
  EXPECT_THROW((void)JobSpec::from_json(json::Value::parse(
                   R"({"type":"frobnicate"})")),
               ContractViolation);
  EXPECT_THROW((void)JobSpec::from_json(json::Value::parse(
                   R"({"type":"mc","gadget":"nope"})")),
               ContractViolation);
}

// --- job runner -------------------------------------------------------------

TEST(RunJob, McJobResumesToByteIdenticalReport) {
  const JobSpec spec = small_mc_spec();

  TempDir baseline_dir("runjob-mc-baseline");
  JobPaths baseline{baseline_dir.file("ck.json"), baseline_dir.file("report.json")};
  const auto ref = run_job(spec, baseline, nullptr, nullptr);
  ASSERT_TRUE(ref.complete);
  const std::string ref_report = slurp(baseline.report);

  // Interrupted run: stop partway through via the progress hook, then
  // resume from the checkpoint.
  TempDir dir("runjob-mc-resume");
  JobPaths paths{dir.file("ck.json"), dir.file("report.json")};
  std::atomic<bool> stop{false};
  const auto interrupted =
      run_job(spec, paths, &stop, [&stop](const JobProgress& p) {
        if (p.items_done >= 300) stop.store(true);
      });
  EXPECT_FALSE(interrupted.complete);
  EXPECT_TRUE(slurp(paths.report).empty());  // no report until complete

  const auto resumed = run_job(spec, paths, nullptr, nullptr);
  ASSERT_TRUE(resumed.complete);
  EXPECT_EQ(slurp(paths.report), ref_report);
}

TEST(RunJob, ProgressReportsUniformCounterShape) {
  const JobSpec spec = small_campaign_spec();
  TempDir dir("runjob-progress");
  JobPaths paths{dir.file("ck.json"), dir.file("report.json")};
  JobProgress last;
  const auto outcome =
      run_job(spec, paths, nullptr,
              [&last](const JobProgress& p) { last = p; });
  ASSERT_TRUE(outcome.complete);
  EXPECT_EQ(last.items_done, last.total_items);
  EXPECT_EQ(last.counter.trials, spec.campaign.budget);
}

// --- scheduler --------------------------------------------------------------

TEST(Scheduler, RunsSubmittedJobsToDone) {
  TempDir dir("sched-basic");
  SchedulerConfig cfg;
  cfg.state_dir = dir.path;
  cfg.max_concurrent_jobs = 2;
  Scheduler sched(cfg);
  const std::uint64_t mc = sched.submit(small_mc_spec());
  const std::uint64_t fz = sched.submit(small_fuzz_spec());
  ASSERT_TRUE(sched.wait_idle(60.0));
  EXPECT_EQ(sched.status(mc).at("status").as_string(), "done");
  EXPECT_EQ(sched.status(fz).at("status").as_string(), "done");
  EXPECT_EQ(sched.unfinished(), 0u);
  EXPECT_FALSE(slurp(dir.file("job-0.report.json")).empty());
  EXPECT_FALSE(slurp(dir.file("job-1.report.json")).empty());
  // The fuzz job found the planted bug; the status counter says so.
  EXPECT_GT(sched.status(fz).at("counter").at("failures").as_u64(), 0u);
}

TEST(Scheduler, CancelQueuedJobNeverRuns) {
  TempDir dir("sched-cancel-queued");
  SchedulerConfig cfg;
  cfg.state_dir = dir.path;
  cfg.max_concurrent_jobs = 1;
  Scheduler sched(cfg);
  // One long job occupies the single slot; the second stays queued.
  JobSpec big = small_mc_spec();
  big.mc.trials = 500000;
  big.mc.block = 64;
  const std::uint64_t first = sched.submit(big);
  const std::uint64_t second = sched.submit(small_mc_spec());
  EXPECT_TRUE(sched.cancel(second));
  EXPECT_EQ(sched.status(second).at("status").as_string(), "cancelled");
  EXPECT_TRUE(sched.cancel(first));
  ASSERT_TRUE(sched.wait_idle(60.0));
  EXPECT_EQ(sched.status(first).at("status").as_string(), "cancelled");
  EXPECT_FALSE(sched.cancel(first));  // already terminal
  EXPECT_EQ(sched.unfinished(), 0u);
}

TEST(Scheduler, DrainThenNewSchedulerResumesToByteIdenticalReport) {
  const JobSpec spec = [] {
    JobSpec s = small_mc_spec();
    s.mc.trials = 10000;
    return s;
  }();

  TempDir baseline_dir("sched-resume-baseline");
  {
    SchedulerConfig cfg;
    cfg.state_dir = baseline_dir.path;
    Scheduler sched(cfg);
    sched.submit(spec);
    // 10k trials run twice in this test; under ASan on a single core the
    // run alone can take minutes, so the deadline is generous.
    ASSERT_TRUE(sched.wait_idle(600.0));
  }
  const std::string ref = slurp(baseline_dir.file("job-0.report.json"));
  ASSERT_FALSE(ref.empty());

  TempDir dir("sched-resume");
  {
    SchedulerConfig cfg;
    cfg.state_dir = dir.path;
    Scheduler sched(cfg);
    sched.submit(spec);
    // Give the job a moment to start and checkpoint, then drain.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    sched.drain();
    EXPECT_EQ(sched.unfinished(), 1u);
  }
  {
    SchedulerConfig cfg;
    cfg.state_dir = dir.path;
    Scheduler sched(cfg);  // recovery re-enqueues and resumes
    ASSERT_TRUE(sched.wait_idle(600.0));
    EXPECT_EQ(sched.status(0).at("status").as_string(), "done");
  }
  EXPECT_EQ(slurp(dir.file("job-0.report.json")), ref);
}

TEST(Scheduler, CancelRequestedBeforeCrashIsHonouredAtRecovery) {
  TempDir dir("sched-cancel-recover");
  // Hand-build a journal: submitted, started, cancel requested, no
  // terminal event (the process died before honouring it).
  {
    Journal journal(dir.file("journal.jsonl"), 0);
    json::Value submit = event("submit", 0);
    submit.set("spec", small_mc_spec().to_json_value());
    journal.append(std::move(submit));
    journal.append(event("start", 0));
    journal.append(event("cancel", 0));
  }
  SchedulerConfig cfg;
  cfg.state_dir = dir.path;
  Scheduler sched(cfg);
  EXPECT_EQ(sched.status(0).at("status").as_string(), "cancelled");
  EXPECT_EQ(sched.unfinished(), 0u);
}

TEST(Scheduler, CorruptJournalIsQuarantinedAndStartsFresh) {
  TempDir dir("sched-journal-corrupt");
  spit(dir.file("journal.jsonl"), "this is not a journal\n");
  SchedulerConfig cfg;
  cfg.state_dir = dir.path;
  Scheduler sched(cfg);
  EXPECT_EQ(sched.unfinished(), 0u);
  EXPECT_FALSE(slurp(dir.file("journal.jsonl.corrupt")).empty());
  // The fresh journal works: submit and run a job.
  sched.submit(small_fuzz_spec());
  ASSERT_TRUE(sched.wait_idle(60.0));
  EXPECT_EQ(sched.status(0).at("status").as_string(), "done");
}

// --- server + protocol ------------------------------------------------------

struct InThreadServer {
  std::atomic<bool> stop{false};
  std::thread thread;
  std::size_t unfinished = 0;

  InThreadServer(const std::string& state_dir, const std::string& socket) {
    ServerConfig cfg;
    cfg.state_dir = state_dir;
    cfg.socket_path = socket;
    cfg.max_concurrent_jobs = 2;
    cfg.stop = &stop;
    cfg.log = [](const std::string&) {};
    thread = std::thread([this, cfg] { unfinished = run_server(cfg); });
    for (int i = 0; i < 100 && !server_alive(socket); ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ~InThreadServer() {
    stop.store(true);
    if (thread.joinable()) thread.join();
  }
};

json::Value verb(const char* v) {
  json::Object obj;
  obj.emplace_back("verb", v);
  return json::Value(std::move(obj));
}

TEST(Server, SubmitStatusShutdownOverTheSocket) {
  TempDir dir("server-basic");
  const std::string socket = dir.file("serve.sock");
  InThreadServer server(dir.path, socket);
  ASSERT_TRUE(server_alive(socket));

  Client client(socket);
  json::Value submit = verb("submit");
  submit.set("job", small_fuzz_spec().to_json_value());
  const json::Value resp = client.request(submit);
  ASSERT_TRUE(resp.at("ok").as_bool());
  const std::uint64_t id = resp.at("id").as_u64();

  // Poll status until the job lands.
  std::string status;
  for (int i = 0; i < 300; ++i) {
    json::Value req = verb("status");
    req.set("id", id);
    const json::Value s = client.request(req);
    ASSERT_TRUE(s.at("ok").as_bool());
    status = s.at("jobs").as_array().at(0).at("status").as_string();
    if (status == "done" || status == "failed") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(status, "done");

  json::Value shutdown = verb("shutdown");
  shutdown.set("mode", "finish");
  EXPECT_TRUE(client.request(shutdown).at("ok").as_bool());
  server.thread.join();
  EXPECT_EQ(server.unfinished, 0u);
}

TEST(Server, RejectsMalformedRequestsWithoutDying) {
  TempDir dir("server-bad-requests");
  const std::string socket = dir.file("serve.sock");
  InThreadServer server(dir.path, socket);
  ASSERT_TRUE(server_alive(socket));

  Client client(socket);
  EXPECT_FALSE(client.request(json::Value::parse("{}")).at("ok").as_bool());
  EXPECT_FALSE(client.request(verb("frobnicate")).at("ok").as_bool());
  json::Value bad_submit = verb("submit");
  bad_submit.set("job", json::Value::parse(R"({"type":"nope"})"));
  EXPECT_FALSE(client.request(bad_submit).at("ok").as_bool());
  json::Value bad_cancel = verb("cancel");
  bad_cancel.set("id", std::uint64_t{999});
  const json::Value resp = client.request(bad_cancel);
  EXPECT_TRUE(resp.at("ok").as_bool());
  EXPECT_FALSE(resp.at("cancelled").as_bool());
  EXPECT_TRUE(server_alive(socket));
}

TEST(Server, MetricsVerbReturnsTheObsSnapshot) {
  TempDir dir("server-metrics");
  const std::string socket = dir.file("serve.sock");
  InThreadServer server(dir.path, socket);
  ASSERT_TRUE(server_alive(socket));

  Client client(socket);
  const json::Value resp = client.request(verb("metrics"));
  ASSERT_TRUE(resp.at("ok").as_bool());
  const json::Value& snap = resp.at("metrics");
  EXPECT_EQ(snap.at("kind").as_string(), "eqc_metrics");
  // Both determinism sections are present with their three metric kinds.
  for (const char* section : {"metrics", "runtime"}) {
    EXPECT_NE(snap.at(section).find("counters"), nullptr);
    EXPECT_NE(snap.at(section).find("gauges"), nullptr);
    EXPECT_NE(snap.at(section).find("histograms"), nullptr);
  }
}

TEST(Server, WatchVerbStreamsProgressUntilTerminal) {
  TempDir dir("server-watch");
  const std::string socket = dir.file("serve.sock");
  InThreadServer server(dir.path, socket);
  ASSERT_TRUE(server_alive(socket));

  std::uint64_t id = 0;
  {
    Client submit_client(socket);
    json::Value submit = verb("submit");
    submit.set("job", small_fuzz_spec().to_json_value());
    const json::Value resp = submit_client.request(submit);
    ASSERT_TRUE(resp.at("ok").as_bool());
    id = resp.at("id").as_u64();
  }

  Client client(socket);
  json::Value req = verb("watch");
  req.set("id", id);
  client.send(req);
  client.set_read_timeout(30.0);

  // First response acknowledges the watch; then progress events stream
  // until the job is terminal and the server hangs up.
  json::Value resp;
  ASSERT_TRUE(client.read_response(resp));
  ASSERT_TRUE(resp.at("ok").as_bool());
  EXPECT_EQ(resp.at("watching").as_u64(), id);

  std::string last_status;
  std::size_t events = 0;
  while (client.read_response(resp)) {
    ASSERT_TRUE(resp.at("ok").as_bool());
    EXPECT_EQ(resp.at("event").as_string(), "progress");
    const json::Value& job = resp.at("job");
    EXPECT_EQ(job.at("id").as_u64(), id);
    EXPECT_NE(job.find("elapsed_sec"), nullptr);
    EXPECT_NE(job.find("rate_per_sec"), nullptr);
    last_status = job.at("status").as_string();
    ++events;
  }
  EXPECT_GE(events, 1u);
  EXPECT_EQ(last_status, "done");

  // An unknown job id is rejected up front, not silently streamed.
  Client bad(socket);
  json::Value bad_req = verb("watch");
  bad_req.set("id", std::uint64_t{999});
  EXPECT_FALSE(bad.request(bad_req).at("ok").as_bool());
}

// --- kill -9 soak -----------------------------------------------------------

// Runs the server in a forked child over `state_dir` (the child never
// returns through gtest: it _exits).
pid_t spawn_server(const std::string& state_dir, const std::string& socket) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    ServerConfig cfg;
    cfg.state_dir = state_dir;
    cfg.socket_path = socket;
    cfg.max_concurrent_jobs = 2;
    cfg.log = [](const std::string&) {};
    std::size_t unfinished = 1;
    try {
      unfinished = run_server(cfg);
    } catch (...) {
      ::_exit(2);
    }
    ::_exit(unfinished == 0 ? 0 : 3);
  }
  for (int i = 0; i < 250 && !server_alive(socket); ++i)
    ::usleep(20 * 1000);
  return pid;
}

void submit_soak_jobs(const std::string& socket) {
  Client client(socket);
  for (const JobSpec& spec : {
           [] {  // MC: big enough to straddle several kills
             JobSpec s = small_mc_spec();
             s.mc.trials = 12000;
             s.mc.block = 128;
             return s;
           }(),
           [] {  // campaign with shrinking work per item
             JobSpec s = small_campaign_spec();
             s.campaign.budget = 1200;
             return s;
           }(),
           small_fuzz_spec(),
       }) {
    json::Value req = verb("submit");
    req.set("job", spec.to_json_value());
    ASSERT_TRUE(client.request(req).at("ok").as_bool());
  }
}

void finish_and_reap(pid_t pid, const std::string& socket) {
  {
    Client client(socket);
    json::Value req = verb("shutdown");
    req.set("mode", "finish");
    ASSERT_TRUE(client.request(req).at("ok").as_bool());
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), 0);
}

TEST(Soak, Kill9MidFlightResumesToByteIdenticalReports) {
  // Short socket paths: sun_path is only ~108 bytes and TempDir may sit
  // under a deep build path.
  const std::string sock_a = "/tmp/eqc-soak-a-" + std::to_string(::getpid());
  const std::string sock_b = "/tmp/eqc-soak-b-" + std::to_string(::getpid());

  // Baseline: the same three jobs, uninterrupted.
  TempDir baseline_dir("soak-baseline");
  {
    const pid_t pid = spawn_server(baseline_dir.path, sock_a);
    ASSERT_GT(pid, 0);
    ASSERT_TRUE(server_alive(sock_a));
    submit_soak_jobs(sock_a);
    finish_and_reap(pid, sock_a);
  }
  std::vector<std::string> reference;
  for (int i = 0; i < 3; ++i) {
    reference.push_back(
        slurp(baseline_dir.file("job-" + std::to_string(i) + ".report.json")));
    ASSERT_FALSE(reference.back().empty()) << "baseline job " << i;
  }

  // Soak: submit once, then kill -9 / restart at randomized points.
  TempDir dir("soak-killed");
  pid_t pid = spawn_server(dir.path, sock_b);
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(server_alive(sock_b));
  submit_soak_jobs(sock_b);

  Rng rng(1234);
  for (int cycle = 0; cycle < 4; ++cycle) {
    ::usleep(static_cast<useconds_t>((50 + rng.below(250)) * 1000));
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(wstatus));
    pid = spawn_server(dir.path, sock_b);  // recovery resumes the jobs
    ASSERT_GT(pid, 0);
    ASSERT_TRUE(server_alive(sock_b));
  }
  finish_and_reap(pid, sock_b);

  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(
        slurp(dir.file("job-" + std::to_string(i) + ".report.json")),
        reference[static_cast<std::size_t>(i)])
        << "job " << i << " diverged after kill -9 resume";
  }
  ::unlink(sock_a.c_str());
  ::unlink(sock_b.c_str());
}

}  // namespace
}  // namespace eqc::serve
