// Unit + property tests for PauliString: group algebra, commutation, and —
// critically — that every Clifford conjugation rule matches exact
// state-vector semantics (G P |psi> == P' G |psi> with P' = G P G^dagger).
#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.h"
#include "common/rng.h"
#include "pauli/pauli_string.h"
#include "qsim/gates.h"
#include "qsim/state_vector.h"

namespace eqc::pauli {
namespace {

using qsim::StateVector;

StateVector random_state(std::size_t n, Rng& rng) {
  std::vector<cplx> amp(std::size_t{1} << n);
  for (auto& a : amp) a = cplx{rng.uniform() - 0.5, rng.uniform() - 0.5};
  auto sv = StateVector::from_amplitudes(std::move(amp));
  sv.normalize();
  return sv;
}

PauliString random_pauli(std::size_t n, Rng& rng) {
  PauliString p(n);
  for (std::size_t q = 0; q < n; ++q)
    p.set(q, static_cast<Pauli>(rng.below(4)));
  p.set_phase(static_cast<int>(rng.below(4)));
  return p;
}

double max_amp_diff(const StateVector& a, const StateVector& b) {
  double m = 0.0;
  for (std::uint64_t i = 0; i < a.dim(); ++i)
    m = std::max(m, std::abs(a.amplitude(i) - b.amplitude(i)));
  return m;
}

TEST(PauliString, FromStringRoundTrip) {
  const auto p = PauliString::from_string("IXYZ");
  EXPECT_EQ(p.get(0), Pauli::I);
  EXPECT_EQ(p.get(1), Pauli::X);
  EXPECT_EQ(p.get(2), Pauli::Y);
  EXPECT_EQ(p.get(3), Pauli::Z);
  EXPECT_EQ(p.to_string(), "IXYZ");
}

TEST(PauliString, FromStringRejectsGarbage) {
  EXPECT_THROW(PauliString::from_string("XQ"), ContractViolation);
}

TEST(PauliString, WeightAndSupport) {
  const auto p = PauliString::from_string("IXIYZ");
  EXPECT_EQ(p.weight(), 3u);
  EXPECT_EQ(p.support(), (std::vector<std::size_t>{1, 3, 4}));
  EXPECT_FALSE(p.is_identity());
  EXPECT_TRUE(PauliString(5).is_identity());
}

TEST(PauliString, SetOverwriteKeepsPhaseExact) {
  PauliString p(1);
  p.set(0, Pauli::Y);  // stores i * XZ
  p.set(0, Pauli::Y);  // overwrite must not accumulate phase
  EXPECT_EQ(p.get(0), Pauli::Y);
  PauliString y = PauliString::single(1, 0, Pauli::Y);
  EXPECT_TRUE(p == y);
  p.set(0, Pauli::X);
  EXPECT_EQ(p.phase(), 0);
}

TEST(PauliString, SingleQubitProductsMatchAlgebra) {
  // X*Y = iZ, Y*Z = iX, Z*X = iY, and squares are identity.
  auto X = PauliString::single(1, 0, Pauli::X);
  auto Y = PauliString::single(1, 0, Pauli::Y);
  auto Z = PauliString::single(1, 0, Pauli::Z);

  auto xy = X;
  xy.multiply_by(Y);
  EXPECT_EQ(xy.get(0), Pauli::Z);
  EXPECT_EQ(xy.phase(), 1);  // +i

  auto yz = Y;
  yz.multiply_by(Z);
  EXPECT_EQ(yz.get(0), Pauli::X);
  EXPECT_EQ(yz.phase(), 1);

  auto zx = Z;
  zx.multiply_by(X);
  EXPECT_EQ(zx.get(0), Pauli::Y);
  // i*Y in the XZ-literal storage: Y itself carries phase 1, so i*Y has 2.
  auto iy = Y;
  iy.set_phase(iy.phase() + 1);
  EXPECT_TRUE(zx == iy);

  auto yx = Y;
  yx.multiply_by(X);
  EXPECT_EQ(yx.get(0), Pauli::Z);
  EXPECT_EQ(yx.phase(), 3);  // -i

  for (auto* p : {&X, &Y, &Z}) {
    auto sq = *p;
    sq.multiply_by(*p);
    EXPECT_TRUE(sq.is_identity());
    EXPECT_EQ(sq.phase(), 0);
  }
}

TEST(PauliString, CommutationRules) {
  auto X = PauliString::single(2, 0, Pauli::X);
  auto Z0 = PauliString::single(2, 0, Pauli::Z);
  auto Z1 = PauliString::single(2, 1, Pauli::Z);
  EXPECT_FALSE(X.commutes_with(Z0));
  EXPECT_TRUE(X.commutes_with(Z1));
  auto XX = PauliString::from_string("XX");
  auto ZZ = PauliString::from_string("ZZ");
  EXPECT_TRUE(XX.commutes_with(ZZ));  // two anticommuting pairs
}

// Property: multiplication phase agrees with dense matrix action.
TEST(PauliString, MultiplicationMatchesStateVectorAction) {
  Rng rng(1234);
  for (int rep = 0; rep < 50; ++rep) {
    const std::size_t n = 1 + rng.below(4);
    auto a = random_pauli(n, rng);
    auto b = random_pauli(n, rng);
    auto ab = a;
    ab.multiply_by(b);

    auto sv = random_state(n, rng);
    auto lhs = sv;  // apply b then a
    lhs.apply_pauli(b);
    lhs.apply_pauli(a);
    auto rhs = sv;
    rhs.apply_pauli(ab);
    EXPECT_LT(max_amp_diff(lhs, rhs), 1e-10) << "n=" << n;
  }
}

// Property: commutes_with matches whether the dense actions commute.
TEST(PauliString, CommutationMatchesStateVector) {
  Rng rng(77);
  for (int rep = 0; rep < 30; ++rep) {
    const std::size_t n = 1 + rng.below(3);
    auto a = random_pauli(n, rng);
    auto b = random_pauli(n, rng);
    auto sv = random_state(n, rng);
    auto ab = sv, ba = sv;
    ab.apply_pauli(b);
    ab.apply_pauli(a);
    ba.apply_pauli(a);
    ba.apply_pauli(b);
    const double diff = max_amp_diff(ab, ba);
    if (a.commutes_with(b))
      EXPECT_LT(diff, 1e-10);
    else
      EXPECT_GT(diff, 1e-3);
  }
}

// --- Conjugation property tests: G P == P' G as operators. ---------------

enum class Gate1 { H, S, Sdg, X, Y, Z };

class ConjugationSingleQubit : public ::testing::TestWithParam<Gate1> {};

TEST_P(ConjugationSingleQubit, MatchesStateVector) {
  Rng rng(55);
  const Gate1 g = GetParam();
  for (int rep = 0; rep < 40; ++rep) {
    const std::size_t n = 1 + rng.below(3);
    const std::size_t q = rng.below(n);
    auto p = random_pauli(n, rng);

    auto conj = p;
    Mat2 u;
    switch (g) {
      case Gate1::H: conj.conjugate_h(q); u = qsim::gate_h(); break;
      case Gate1::S: conj.conjugate_s(q); u = qsim::gate_s(); break;
      case Gate1::Sdg: conj.conjugate_sdg(q); u = qsim::gate_sdg(); break;
      case Gate1::X: conj.conjugate_x(q); u = qsim::gate_x(); break;
      case Gate1::Y: conj.conjugate_y(q); u = qsim::gate_y(); break;
      case Gate1::Z: conj.conjugate_z(q); u = qsim::gate_z(); break;
    }

    auto sv = random_state(n, rng);
    auto lhs = sv;  // G P |psi>
    lhs.apply_pauli(p);
    lhs.apply1(q, u);
    auto rhs = sv;  // P' G |psi>
    rhs.apply1(q, u);
    rhs.apply_pauli(conj);
    EXPECT_LT(max_amp_diff(lhs, rhs), 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(AllGates, ConjugationSingleQubit,
                         ::testing::Values(Gate1::H, Gate1::S, Gate1::Sdg,
                                           Gate1::X, Gate1::Y, Gate1::Z));

enum class Gate2 { CNOT, CZ, SWAP };

class ConjugationTwoQubit : public ::testing::TestWithParam<Gate2> {};

TEST_P(ConjugationTwoQubit, MatchesStateVector) {
  Rng rng(66);
  const Gate2 g = GetParam();
  for (int rep = 0; rep < 60; ++rep) {
    const std::size_t n = 2 + rng.below(2);
    const std::size_t a = rng.below(n);
    std::size_t b = rng.below(n);
    while (b == a) b = rng.below(n);
    auto p = random_pauli(n, rng);

    auto conj = p;
    switch (g) {
      case Gate2::CNOT: conj.conjugate_cnot(a, b); break;
      case Gate2::CZ: conj.conjugate_cz(a, b); break;
      case Gate2::SWAP: conj.conjugate_swap(a, b); break;
    }

    auto apply_gate = [&](qsim::StateVector& sv) {
      switch (g) {
        case Gate2::CNOT: sv.apply_cnot(a, b); break;
        case Gate2::CZ: sv.apply_cz(a, b); break;
        case Gate2::SWAP: sv.apply_swap(a, b); break;
      }
    };

    auto sv = random_state(n, rng);
    auto lhs = sv;
    lhs.apply_pauli(p);
    apply_gate(lhs);
    auto rhs = sv;
    apply_gate(rhs);
    rhs.apply_pauli(conj);
    EXPECT_LT(max_amp_diff(lhs, rhs), 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(AllGates, ConjugationTwoQubit,
                         ::testing::Values(Gate2::CNOT, Gate2::CZ,
                                           Gate2::SWAP));

// The paper's central error-propagation facts, as direct assertions.
TEST(ErrorPropagation, CnotSpreadsBitErrorsForward) {
  auto p = PauliString::single(2, 0, Pauli::X);  // X on control
  p.conjugate_cnot(0, 1);
  EXPECT_EQ(p.to_string(), "XX");  // spreads to target
}

TEST(ErrorPropagation, CnotSpreadsPhaseErrorsBackward) {
  auto p = PauliString::single(2, 1, Pauli::Z);  // Z on target
  p.conjugate_cnot(0, 1);
  EXPECT_EQ(p.to_string(), "ZZ");  // spreads to control
}

TEST(ErrorPropagation, CnotDoesNotSpreadTargetBitError) {
  auto p = PauliString::single(2, 1, Pauli::X);
  p.conjugate_cnot(0, 1);
  EXPECT_EQ(p.to_string(), "IX");
}

TEST(ErrorPropagation, CnotDoesNotSpreadControlPhaseError) {
  auto p = PauliString::single(2, 0, Pauli::Z);
  p.conjugate_cnot(0, 1);
  EXPECT_EQ(p.to_string(), "ZI");
}

}  // namespace
}  // namespace eqc::pauli
