// Tests for the measurement-based baseline protocols and the verification
// helpers — the comparison points every experiment measures against.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "circuit/circuit.h"
#include "circuit/execute.h"
#include "circuit/sv_backend.h"
#include "circuit/tab_backend.h"
#include "codes/steane.h"
#include "common/assert.h"
#include "ftqc/baselines.h"
#include "ftqc/layout.h"
#include "ftqc/recovery.h"

namespace eqc::ftqc {
namespace {

using circuit::Circuit;
using circuit::SvBackend;
using circuit::TabBackend;
using codes::Block;
using codes::Steane;
using pauli::Pauli;
using pauli::PauliString;

TEST(MeasuredReadout, DecodesLogicalBasisStates) {
  for (bool one : {false, true}) {
    Circuit c(7);
    const auto block = Block::contiguous(0);
    Steane::append_encode_zero(c, block);
    if (one) Steane::append_logical_x(c, block);
    const auto f = append_measured_logical_readout(c, block);
    // Evaluate the classical function after execution.
    TabBackend b(7, Rng(3));
    const auto result = circuit::execute(c, b);
    EXPECT_EQ(c.classical_funcs()[f](result.cbits), one);
  }
}

class MeasuredReadoutRobust : public ::testing::TestWithParam<int> {};

TEST_P(MeasuredReadoutRobust, SurvivesOneBitError) {
  const int pos = GetParam();
  Circuit c(7);
  const auto block = Block::contiguous(0);
  Steane::append_encode_zero(c, block);
  Steane::append_logical_x(c, block);
  c.x(block.q[pos]);  // one pre-measurement bit error
  const auto f = append_measured_logical_readout(c, block);
  TabBackend b(7, Rng(3));
  const auto result = circuit::execute(c, b);
  EXPECT_TRUE(c.classical_funcs()[f](result.cbits));
}

INSTANTIATE_TEST_SUITE_P(AllPositions, MeasuredReadoutRobust,
                         ::testing::Range(0, 7));

TEST(MeasuredReadout, SuperpositionCollapsesToConsistentValue) {
  // On |+>_L the measured word is a random Hamming codeword, but decode is
  // deterministic per run and the machine state collapses accordingly.
  int ones = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Circuit c(7);
    const auto block = Block::contiguous(0);
    Steane::append_encode_plus(c, block);
    const auto f = append_measured_logical_readout(c, block);
    TabBackend b(7, Rng(seed));
    const auto result = circuit::execute(c, b);
    ones += c.classical_funcs()[f](result.cbits) ? 1 : 0;
  }
  EXPECT_GT(ones, 8);
  EXPECT_LT(ones, 32);  // roughly fair coin
}

TEST(VerificationEc, FixesEveryWeightOneErrorOnSv) {
  const double inv = 1.0 / std::sqrt(2.0);
  for (int pos = 0; pos < 7; ++pos) {
    for (Pauli p : {Pauli::X, Pauli::Y, Pauli::Z}) {
      ftqc::Layout layout;
      const Block block = layout.steane_block();
      const auto anc = layout.bit();
      Circuit c(layout.total());
      Steane::append_encode_plus(c, block);
      switch (p) {
        case Pauli::X: c.x(block.q[pos]); break;
        case Pauli::Y: c.y(block.q[pos]); break;
        case Pauli::Z: c.z(block.q[pos]); break;
        default: break;
      }
      append_measured_verification_ec(c, block, anc);
      SvBackend b(layout.total(), Rng(5));
      circuit::execute(c, b);
      const auto want = Steane::encoded_amplitudes(inv, inv);
      std::vector<std::size_t> qs(block.q.begin(), block.q.end());
      EXPECT_NEAR(b.state().subsystem_fidelity(qs, want), 1.0, 1e-9)
          << pos << " " << pauli::to_char(p);
    }
  }
}

TEST(Recovery, SingleRoundVariantAlsoCorrects) {
  // rounds = 1 exercises the no-vote branch; with a noiseless gadget it
  // must still correct planted weight-1 errors.
  for (int pos = 0; pos < 7; ++pos) {
    ftqc::Layout layout;
    const Block data = layout.steane_block();
    auto anc = allocate_recovery_ancillas(layout, 1);
    Circuit c(layout.total());
    Steane::append_encode_zero(c, data);
    c.x(data.q[pos]);
    RecoveryOptions opt;
    opt.rounds = 1;
    append_recovery(c, data, anc, opt);
    TabBackend b(layout.total(), Rng(7));
    circuit::execute(c, b);
    EXPECT_TRUE(Steane::block_in_codespace(b.tableau(), data));
    EXPECT_EQ(Steane::logical_z_expectation(b.tableau(), data), 1.0);
  }
}

TEST(Recovery, MeasuredSingleRoundVariant) {
  ftqc::Layout layout;
  const Block data = layout.steane_block();
  auto anc = allocate_recovery_ancillas(layout, 1);
  Circuit c(layout.total());
  Steane::append_encode_zero(c, data);
  c.z(data.q[3]);
  RecoveryOptions opt;
  opt.rounds = 1;
  opt.measurement_free = false;
  append_recovery(c, data, anc, opt);
  TabBackend b(layout.total(), Rng(7));
  circuit::execute(c, b);
  EXPECT_TRUE(Steane::block_in_codespace(b.tableau(), data));
  EXPECT_EQ(Steane::logical_z_expectation(b.tableau(), data), 1.0);
}

TEST(MeasuredToffoli, RandomSeedsAllCorrect) {
  // Feed-forward randomness must never change the logical outcome.
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    ftqc::Layout layout;
    BareToffoliRegs r;
    r.a = layout.bit(); r.b = layout.bit(); r.c = layout.bit();
    r.x = layout.bit(); r.y = layout.bit(); r.z = layout.bit();
    r.m1 = layout.bit(); r.m2 = layout.bit(); r.m3 = layout.bit();
    r.m12 = layout.bit();
    Circuit c(layout.total());
    c.x(r.x);
    c.x(r.y);  // x = y = 1, z = 0 -> c out = 1
    append_bare_and_state(c, r.a, r.b, r.c);
    append_measured_toffoli_gadget_bare(c, r);
    SvBackend b(layout.total(), Rng(seed));
    circuit::execute(c, b);
    EXPECT_NEAR(b.state().prob_one(r.a), 1.0, 1e-9);
    EXPECT_NEAR(b.state().prob_one(r.b), 1.0, 1e-9);
    EXPECT_NEAR(b.state().prob_one(r.c), 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace eqc::ftqc
