// Tests for the fault-enumeration engine and the support-propagation
// analyzer.
#include <gtest/gtest.h>

#include "analysis/fault_enum.h"
#include "analysis/support_prop.h"
#include "codes/steane.h"
#include "common/assert.h"
#include "ftqc/layout.h"
#include "ftqc/ngate.h"

namespace eqc::analysis {
namespace {

using circuit::Circuit;
using codes::Block;
using codes::Steane;

// Builds the Fig. 1 N-gate fault experiment: encode |one ? 1 : 0>_L
// noiselessly, run the N gate under injection, fail if the majority-decoded
// classical value is wrong or the quantum ancilla is not correctable.
FaultExperiment make_ngate_experiment(bool one, int repetitions,
                                      bool syndrome_check) {
  ftqc::Layout layout;
  const Block source = layout.steane_block();
  auto anc = ftqc::allocate_ngate_ancillas(layout, repetitions);
  const auto out = layout.reg(7);

  FaultExperiment ex;
  ex.num_qubits = layout.total();
  ex.prep = Circuit(layout.total());
  Steane::append_encode_zero(ex.prep, source);
  if (one) Steane::append_logical_x(ex.prep, source);
  ex.gadget = Circuit(layout.total());
  ftqc::NGateOptions opt;
  opt.repetitions = repetitions;
  opt.syndrome_check = syndrome_check;
  ftqc::append_ngate(ex.gadget, source, out, anc, opt);

  ex.failed = [out, source, one](circuit::TabBackend& backend,
                                 const circuit::ExecResult&) {
    int ones = 0;
    for (auto q : out)
      ones += backend.tableau().deterministic_z_value(q) ? 1 : 0;
    const bool decoded = 2 * ones > static_cast<int>(out.size());
    if (decoded != one) return true;
    Rng rng(3);
    Steane::perfect_correct(backend.tableau(), source, rng);
    return Steane::logical_z_expectation(backend.tableau(), source) !=
           (one ? -1.0 : 1.0);
  };
  return ex;
}

TEST(FaultEnum, NGateIsSingleFaultTolerantInThePaperModel) {
  const auto ex = make_ngate_experiment(true, 3, true);
  const auto report = run_single_faults(ex);
  EXPECT_GT(report.faults_tested, 400u);
  EXPECT_EQ(report.failures, 0u) << "first failing ordinal: "
                                 << (report.failing.empty()
                                         ? 0
                                         : report.failing[0].ordinal);
}

TEST(FaultEnum, SingleRepetitionIsNotFaultTolerant) {
  // Ablation: with one repetition (no majority), single faults break the
  // classical copy.
  const auto ex = make_ngate_experiment(true, 1, true);
  const auto report = run_single_faults(ex);
  EXPECT_GT(report.failures, 0u);
}

TEST(FaultEnum, CorrelatedGateFaultsExposeTheMajorityFanOut) {
  // Under the stronger correlated-fault model, a single CCX fault can flip
  // two of the three repetition copies at once and defeat the majority —
  // a model subtlety the paper's per-location counting does not cover.
  auto ex = make_ngate_experiment(true, 3, true);
  ex.model = FaultModel::FullDepolarizing;
  const auto report = run_single_faults(ex);
  EXPECT_GT(report.failures, 0u);
}

TEST(FaultEnum, SampledScanCoversTheUniverseWhenSmall) {
  const auto ex = make_ngate_experiment(true, 3, true);
  const auto full = run_single_faults(ex);
  const auto sampled = run_single_faults_sampled(ex, 1u << 30);
  EXPECT_EQ(sampled.faults_tested, full.faults_tested);
  EXPECT_EQ(sampled.failures, full.failures);
}

TEST(FaultEnum, SampledScanRespectsBudget) {
  const auto ex = make_ngate_experiment(true, 3, true);
  const auto sampled = run_single_faults_sampled(ex, 100);
  EXPECT_EQ(sampled.faults_tested, 100u);
  EXPECT_EQ(sampled.failures, 0u);
}

TEST(FaultEnum, PairEnumerationFindsMalignantPairs) {
  auto ex = make_ngate_experiment(false, 3, true);
  const auto report = run_fault_pairs(ex, /*budget=*/4000);
  EXPECT_EQ(report.pairs_tested, 4000u);
  EXPECT_GT(report.malignant, 0u);  // two faults can defeat distance 3
  EXPECT_GT(report.p_squared_coefficient(), 0.0);
  EXPECT_LT(report.pseudo_threshold(), 1.0);
  EXPECT_GT(report.pseudo_threshold(), 0.0);
}

TEST(FaultEnum, PairSamplingDeduplicatesOnASmallUniverse) {
  // A universe small enough that a random-pair budget overshoots the number
  // of DISTINCT different-site pairs: the sampler must deduplicate and stop
  // at the full universe instead of re-testing duplicates.
  FaultExperiment ex;
  ex.num_qubits = 2;
  ex.prep = Circuit(2);
  ex.gadget = Circuit(2);
  ex.gadget.h(0).cnot(0, 1);
  ex.failed = [](circuit::TabBackend&, const circuit::ExecResult&) {
    return false;
  };

  const auto faults = enumerate_single_faults(ex);
  const std::uint64_t n = faults.size();
  std::uint64_t same_site = 0;
  for (std::uint64_t i = 0; i < n;) {
    std::uint64_t j = i;
    while (j < n && faults[j].ordinal == faults[i].ordinal) ++j;
    same_site += (j - i) * (j - i - 1) / 2;
    i = j;
  }
  const std::uint64_t total = n * (n - 1) / 2;
  const std::uint64_t valid = total - same_site;
  ASSERT_GT(same_site, 0u);  // multi-fault sites exist, so total > valid

  // A budget strictly between `valid` and `total` forces the sampled branch
  // while still covering every distinct valid pair.
  const auto report = run_fault_pairs(ex, valid + (total - valid + 1) / 2);
  EXPECT_EQ(report.pairs_tested, valid);
  EXPECT_TRUE(report.exhaustive);
}

TEST(FaultEnum, RunWithFaultsRejectsAnUnvisitedPlant) {
  // A plant whose ordinal never occurs in the gadget would silently test
  // the WRONG (weaker) fault set; the executor must refuse instead.
  auto ex = make_ngate_experiment(false, 3, true);
  const auto sites = circuit::enumerate_fault_sites(ex.gadget);
  std::vector<Fault> faults = {
      Fault{sites.size() + 17,
            pauli::PauliString::single(ex.num_qubits, 0, pauli::Pauli::X)}};
  EXPECT_THROW((void)run_with_faults(ex, faults), ContractViolation);
}

TEST(FaultEnum, PairReportMath) {
  PairReport r;
  r.num_sites = 100;
  r.pairs_tested = 1000;
  r.malignant = 10;
  EXPECT_DOUBLE_EQ(r.malignant_fraction(), 0.01);
  EXPECT_DOUBLE_EQ(r.p_squared_coefficient(), 0.5 * 100 * 99 * 0.01);
  EXPECT_DOUBLE_EQ(r.pseudo_threshold(), 1.0 / (0.5 * 100 * 99 * 0.01));
}

TEST(FaultEnum, RunWithFaultsAppliesExactlyThePlantedErrors) {
  // A planted logical X flips the copied value: the oracle sees it.
  auto ex = make_ngate_experiment(false, 3, true);
  // Find a gadget site on a source-block qubit (input to the gadget).
  const auto sites = circuit::enumerate_fault_sites(ex.gadget);
  // Build a weight-2 X error on source qubits 0 and 1 at one site...
  // (two X faults at different sites defeat the Hamming check).
  std::vector<Fault> faults;
  int planted = 0;
  for (const auto& site : sites) {
    if (planted == 2) break;
    if (site.qubits.size() == 1 && site.qubits[0] < 7 &&
        site.qubits[0] == static_cast<std::uint32_t>(planted)) {
      faults.push_back(Fault{
          site.ordinal, pauli::PauliString::single(ex.num_qubits,
                                                   site.qubits[0],
                                                   pauli::Pauli::X)});
      ++planted;
    }
  }
  if (planted == 2) {
    EXPECT_TRUE(run_with_faults(ex, faults));
  }
}

// --- Support propagation ---------------------------------------------------

TEST(SupportProp, CnotPropagatesForwardXBackwardZ) {
  Circuit c(2);
  c.h(0);  // site 0 on qubit 0
  c.cnot(0, 1);
  const std::vector<bool> classical(2, false);
  // X fault on qubit 0 after H: spreads to qubit 1 through the CNOT.
  auto st = propagate_supports(c, {SupportFault{0, true, false}}, classical);
  EXPECT_TRUE(st.x[0]);
  EXPECT_TRUE(st.x[1]);
  EXPECT_FALSE(st.z[0]);
  EXPECT_FALSE(st.z[1]);
  // Z fault stays on the control.
  st = propagate_supports(c, {SupportFault{0, false, true}}, classical);
  EXPECT_TRUE(st.z[0]);
  EXPECT_FALSE(st.z[1]);
  EXPECT_FALSE(st.x[1]);
}

TEST(SupportProp, ZTargetFlowsToControl) {
  Circuit c(2);
  c.cnot(0, 1);  // site 0
  c.idle(1);     // site 1: fault on the target after the CNOT
  c.cnot(0, 1);  // second CNOT propagates Z(target) -> control
  const std::vector<bool> classical(2, false);
  auto st = propagate_supports(c, {SupportFault{1, false, true}}, classical);
  EXPECT_TRUE(st.z[0]);
  EXPECT_TRUE(st.z[1]);
}

TEST(SupportProp, ClassicalQubitsScrubPhaseCorruption) {
  Circuit c(2);
  c.cnot(0, 1);
  c.idle(1);
  c.cnot(0, 1);
  std::vector<bool> classical(2, false);
  classical[1] = true;  // the target is a classical ancilla
  auto st = propagate_supports(c, {SupportFault{1, false, true}}, classical);
  EXPECT_FALSE(st.z[0]);  // phase error died on the classical bit
  EXPECT_FALSE(st.z[1]);
}

TEST(SupportProp, PrepClearsCorruption) {
  Circuit c(1);
  c.h(0);       // site 0
  c.prep_z(0);  // fresh qubit afterwards
  const std::vector<bool> classical(1, false);
  auto st = propagate_supports(c, {SupportFault{0, true, true}}, classical);
  EXPECT_FALSE(st.x[0]);
  EXPECT_FALSE(st.z[0]);
}

TEST(SupportProp, HSwapsComponents) {
  Circuit c(1);
  c.idle(0);  // site 0
  c.h(0);
  const std::vector<bool> classical(1, false);
  auto st = propagate_supports(c, {SupportFault{0, true, false}}, classical);
  EXPECT_FALSE(st.x[0]);
  EXPECT_TRUE(st.z[0]);
}

TEST(SupportProp, TransversalCnotKeepsBlocksWithinTolerance) {
  // Two 7-qubit blocks coupled transversally: any single fault corrupts at
  // most one qubit per block.
  Circuit c(14);
  const auto a = Block::contiguous(0);
  const auto b = Block::contiguous(7);
  Steane::append_logical_cnot(c, a, b);
  std::vector<BlockSpec> blocks = {
      {"a", {a.q.begin(), a.q.end()}, false, 1},
      {"b", {b.q.begin(), b.q.end()}, false, 1},
  };
  const auto report = analyze_supports(c, blocks,
                                       std::vector<bool>(14, false), 1u << 20);
  EXPECT_EQ(report.single_fault_violations, 0u);
  EXPECT_TRUE(report.exhaustive);
}

TEST(SupportProp, IntraBlockCouplingViolatesImmediately) {
  // A CNOT inside one block lets a single fault corrupt two block qubits:
  // the analyzer must flag it.
  Circuit c(7);
  c.cnot(0, 1);
  c.cnot(0, 2);
  const auto a = Block::contiguous(0);
  std::vector<BlockSpec> blocks = {{"a", {a.q.begin(), a.q.end()}, false, 1}};
  const auto report =
      analyze_supports(c, blocks, std::vector<bool>(7, false), 1u << 20);
  EXPECT_GT(report.single_fault_violations, 0u);
}

TEST(SupportProp, ClassicalBlockIgnoresZDamage) {
  // Z-only damage on a classical register never counts.
  Circuit c(3);
  c.h(0);  // site 0: a single-qubit site on qubit 0
  c.cz(0, 1);
  c.cz(0, 2);
  std::vector<bool> classical = {false, true, true};
  std::vector<BlockSpec> blocks = {{"cl", {1, 2}, true, 0}};
  // X fault on qubit 0 alone sends only Z onto qubits 1 and 2.
  auto st = propagate_supports(c, {SupportFault{0, true, false}}, classical);
  const auto damage = assess_blocks(st, blocks);
  EXPECT_EQ(damage[0].corrupted, 0);
  EXPECT_FALSE(damage[0].exceeded());
}

TEST(SupportProp, SiteFilterRestrictsUniverse) {
  Circuit c(2);
  c.h(0).h(1).cnot(0, 1);
  std::vector<BlockSpec> blocks = {{"all", {0, 1}, false, 2}};
  const auto all = analyze_supports(c, blocks, std::vector<bool>(2, false),
                                    1u << 20);
  const auto filtered = analyze_supports(
      c, blocks, std::vector<bool>(2, false), 1u << 20, 7,
      [](const circuit::FaultSite& s) { return s.moment == 0; });
  EXPECT_LT(filtered.num_sites, all.num_sites);
}

}  // namespace
}  // namespace eqc::analysis
