// Tests for algorithmic cooling (the paper's cited ancilla-reset mechanism
// for ensemble computers).
#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/cooling.h"
#include "common/assert.h"
#include "common/rng.h"
#include "ensemble/machine.h"

namespace eqc::algorithms {
namespace {

TEST(Cooling, BiasedPreparationHasRequestedExpectation) {
  for (double eps : {0.0, 0.1, 0.3, 0.7, 1.0}) {
    qsim::StateVector sv(1);
    prepare_biased_qubit(sv, 0, eps);
    EXPECT_NEAR(sv.expectation_z(0), eps, 1e-10) << eps;
  }
}

TEST(Cooling, CompressionBiasFormula) {
  EXPECT_DOUBLE_EQ(compression_bias(0.0), 0.0);
  EXPECT_DOUBLE_EQ(compression_bias(1.0), 1.0);
  EXPECT_NEAR(compression_bias(0.1), 0.1495, 1e-10);
  // Small-eps limit: ~ 3 eps / 2.
  EXPECT_NEAR(compression_bias(0.01) / 0.01, 1.5, 1e-3);
}

TEST(Cooling, BasicCompressionBoostsTheLeader) {
  for (double eps : {0.05, 0.2, 0.5}) {
    qsim::StateVector sv(3);
    for (std::size_t q = 0; q < 3; ++q) prepare_biased_qubit(sv, q, eps);
    apply_basic_compression(sv, 0, 1, 2);
    EXPECT_NEAR(sv.expectation_z(0), compression_bias(eps), 1e-10) << eps;
  }
}

TEST(Cooling, CompressionIsAPermutation) {
  // Norm preservation on a fully mixed-like uniform superposition implies
  // the map was bijective (apply_permutation checks this internally too).
  qsim::StateVector sv(3);
  for (std::size_t q = 0; q < 3; ++q) prepare_biased_qubit(sv, q, 0.3);
  EXPECT_NO_THROW(apply_basic_compression(sv, 0, 1, 2));
  EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(Cooling, CompressionConservesTotalZPolarizationBudget) {
  // Reversible dynamics cannot create polarization from nothing: the
  // leader's gain is paid for by the other two qubits.
  const double eps = 0.2;
  qsim::StateVector sv(3);
  for (std::size_t q = 0; q < 3; ++q) prepare_biased_qubit(sv, q, eps);
  apply_basic_compression(sv, 0, 1, 2);
  const double total =
      sv.expectation_z(0) + sv.expectation_z(1) + sv.expectation_z(2);
  EXPECT_LT(sv.expectation_z(1) + sv.expectation_z(2), 2 * eps);
  EXPECT_LT(total, 3 * eps + 1e-9);  // no free polarization
}

TEST(Cooling, RecursiveCoolingMatchesPrediction) {
  const double eps = 0.3;
  qsim::StateVector sv(9);
  for (std::size_t q = 0; q < 9; ++q) prepare_biased_qubit(sv, q, eps);
  const auto leader = apply_recursive_cooling(sv, 0, 2);
  EXPECT_EQ(leader, 0u);
  EXPECT_NEAR(sv.expectation_z(leader), recursive_bias(eps, 2), 1e-10);
  EXPECT_GT(sv.expectation_z(leader), eps * 1.8);  // ~ (3/2)^2 boost
}

TEST(Cooling, RecursiveBiasFormula) {
  EXPECT_NEAR(recursive_bias(0.01, 3), 0.01 * std::pow(1.5, 3), 1e-5);
}

TEST(Cooling, DepthLimitsEnforced) {
  qsim::StateVector sv(3);
  EXPECT_THROW(apply_recursive_cooling(sv, 0, 0), ContractViolation);
  EXPECT_THROW(apply_recursive_cooling(sv, 0, 2), ContractViolation);  // 9 > 3
}

TEST(Cooling, EnsembleMachineObservesTheBoost) {
  // On the ensemble machine the polarization boost is directly visible in
  // the expectation readout — no measurement anywhere, as required.
  ensemble::EnsembleMachine m(3, 0, 1);
  const double eps = 0.25;
  m.apply([&](qsim::StateVector& sv) {
    for (std::size_t q = 0; q < 3; ++q) prepare_biased_qubit(sv, q, eps);
    apply_basic_compression(sv, 0, 1, 2);
  });
  EXPECT_NEAR(m.readout_z(0), compression_bias(eps), 1e-10);
  EXPECT_GT(m.readout_z(0), eps);
}

}  // namespace
}  // namespace eqc::algorithms
