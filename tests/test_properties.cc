// Property-based sweeps across modules: randomized invariants that go
// beyond the targeted unit tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "circuit/circuit.h"
#include "circuit/execute.h"
#include "circuit/schedule.h"
#include "circuit/sv_backend.h"
#include "circuit/tab_backend.h"
#include "codes/hamming.h"
#include "codes/steane.h"
#include "common/assert.h"
#include "common/rng.h"
#include "pauli/pauli_string.h"
#include "qsim/gates.h"
#include "testing/circuit_gen.h"

namespace eqc {
namespace {

using circuit::Circuit;
using circuit::OpKind;
using pauli::Pauli;
using pauli::PauliString;
using testing::random_clifford_circuit;

// Scheduling must not change semantics: a circuit executed through the
// moment-based executor equals gate-by-gate application on a state vector.
class ScheduleSemantics : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleSemantics, ExecutorMatchesDirectApplication) {
  Rng rng(GetParam());
  const std::size_t n = 2 + rng.below(4);
  const auto c = random_clifford_circuit(n, 40, rng);

  circuit::SvBackend scheduled(n, Rng(1));
  circuit::execute(c, scheduled);

  qsim::StateVector direct(n);
  for (const auto& op : c.ops()) {
    switch (op.kind) {
      case OpKind::H: direct.apply1(op.q[0], qsim::gate_h()); break;
      case OpKind::S: direct.apply1(op.q[0], qsim::gate_s()); break;
      case OpKind::Sdg: direct.apply1(op.q[0], qsim::gate_sdg()); break;
      case OpKind::X: direct.apply1(op.q[0], qsim::gate_x()); break;
      case OpKind::Y: direct.apply1(op.q[0], qsim::gate_y()); break;
      case OpKind::Z: direct.apply1(op.q[0], qsim::gate_z()); break;
      case OpKind::CNOT: direct.apply_cnot(op.q[0], op.q[1]); break;
      case OpKind::CZ: direct.apply_cz(op.q[0], op.q[1]); break;
      case OpKind::Swap: direct.apply_swap(op.q[0], op.q[1]); break;
      default: FAIL() << "unexpected op";
    }
  }
  EXPECT_NEAR(scheduled.state().fidelity(direct), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleSemantics,
                         ::testing::Range<std::uint64_t>(300, 312));

// Schedule structural invariants: per-qubit program order is preserved and
// no two ops in one moment share a qubit.
class ScheduleStructure : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleStructure, MomentsAreConflictFreeAndOrdered) {
  Rng rng(GetParam());
  const std::size_t n = 2 + rng.below(5);
  const auto c = random_clifford_circuit(n, 60, rng);
  const auto sched = circuit::schedule(c);

  std::vector<std::size_t> moment_of(c.size());
  for (std::size_t t = 0; t < sched.moments.size(); ++t) {
    std::vector<bool> used(n, false);
    for (auto idx : sched.moments[t]) {
      moment_of[idx] = t;
      for (int k = 0; k < circuit::arity(c.ops()[idx].kind); ++k) {
        EXPECT_FALSE(used[c.ops()[idx].q[k]]) << "conflict in moment " << t;
        used[c.ops()[idx].q[k]] = true;
      }
    }
  }
  // Program order per qubit.
  for (std::size_t i = 0; i < c.size(); ++i) {
    for (std::size_t j = i + 1; j < c.size(); ++j) {
      bool shares = false;
      for (int a = 0; a < circuit::arity(c.ops()[i].kind); ++a)
        for (int b = 0; b < circuit::arity(c.ops()[j].kind); ++b)
          shares |= c.ops()[i].q[a] == c.ops()[j].q[b];
      if (shares) {
        EXPECT_LT(moment_of[i], moment_of[j]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleStructure,
                         ::testing::Range<std::uint64_t>(400, 410));

// Pauli algebra: (PQ)R == P(QR) with exact phases, and P * P^(-1) == I.
class PauliAssociativity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PauliAssociativity, GroupLaws) {
  Rng rng(GetParam());
  const std::size_t n = 1 + rng.below(6);
  auto random_p = [&] {
    PauliString p(n);
    for (std::size_t q = 0; q < n; ++q)
      p.set(q, static_cast<Pauli>(rng.below(4)));
    p.set_phase(static_cast<int>(rng.below(4)));
    return p;
  };
  const auto p = random_p();
  const auto q = random_p();
  const auto r = random_p();

  auto pq_r = p;
  pq_r.multiply_by(q);
  pq_r.multiply_by(r);
  auto qr = q;
  qr.multiply_by(r);
  auto p_qr = p;
  p_qr.multiply_by(qr);
  EXPECT_TRUE(pq_r == p_qr);

  // Hermitian squares: (i^-phase P)^2 = I for the label part.
  auto sq = p;
  sq.multiply_by(p);
  EXPECT_TRUE(sq.is_identity());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PauliAssociativity,
                         ::testing::Range<std::uint64_t>(500, 516));

// Reduced density matrices: tracing out nothing is the full projector and
// partial traces have unit trace.
TEST(ReducedDensity, TraceIsOne) {
  Rng rng(77);
  for (int rep = 0; rep < 10; ++rep) {
    std::vector<cplx> amp(8);
    for (auto& a : amp) a = cplx{rng.uniform() - 0.5, rng.uniform() - 0.5};
    auto sv = qsim::StateVector::from_amplitudes(std::move(amp));
    sv.normalize();
    for (const auto& subset :
         std::vector<std::vector<std::size_t>>{{0}, {1}, {2}, {0, 2}, {1, 2}}) {
      const auto rho = sv.reduced_density_matrix(subset);
      const std::uint64_t d = std::uint64_t{1} << subset.size();
      cplx trace = 0;
      for (std::uint64_t i = 0; i < d; ++i) trace += rho[i * d + i];
      EXPECT_NEAR(trace.real(), 1.0, 1e-10);
      EXPECT_NEAR(trace.imag(), 0.0, 1e-10);
      // Hermitian.
      for (std::uint64_t a = 0; a < d; ++a)
        for (std::uint64_t b = 0; b < d; ++b)
          EXPECT_NEAR(std::abs(rho[a * d + b] - std::conj(rho[b * d + a])),
                      0.0, 1e-10);
    }
  }
}

// Steane encoding survives a random transversal Clifford layer: the state
// stays in the code space when the layer is one of the transversal logical
// gates.
class TransversalClosure : public ::testing::TestWithParam<int> {};

TEST_P(TransversalClosure, LogicalGatesPreserveTheCodeSpace) {
  const int which = GetParam();
  Circuit c(7);
  const auto block = codes::Block::contiguous(0);
  codes::Steane::append_encode_plus(c, block);
  switch (which) {
    case 0: codes::Steane::append_logical_x(c, block); break;
    case 1: codes::Steane::append_logical_z(c, block); break;
    case 2: codes::Steane::append_logical_h(c, block); break;
    case 3: codes::Steane::append_logical_s(c, block); break;
    case 4: codes::Steane::append_logical_sdg(c, block); break;
  }
  circuit::TabBackend b(7, Rng(3));
  circuit::execute(c, b);
  EXPECT_TRUE(codes::Steane::block_in_codespace(b.tableau(), block));
}

INSTANTIATE_TEST_SUITE_P(AllGates, TransversalClosure, ::testing::Range(0, 5));

// Random single-qubit errors never change the *syndrome-corrected* logical
// readout of an encoded basis state (classical decoding property).
class DecodeRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecodeRobustness, HammingDecodeAbsorbsSingleBitFlips) {
  Rng rng(GetParam());
  for (int rep = 0; rep < 50; ++rep) {
    // Random Hamming codeword + random single flip.
    const auto words = codes::Hamming74::codewords();
    const unsigned cw = words[rng.below(words.size())];
    const unsigned pos = static_cast<unsigned>(rng.below(7));
    const bool logical = codes::word_parity(cw);
    EXPECT_EQ(codes::Steane::decode_logical_bit(cw ^ (1u << pos)), logical);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecodeRobustness,
                         ::testing::Range<std::uint64_t>(600, 606));

}  // namespace
}  // namespace eqc
