// Targeted cross-backend equivalence tests: the TabBackend's CCX/CCZ/CS/CSdg
// classical-control lowering edge cases, checked gate-by-gate against the
// dense state vector, plus expectation_z semantics through mid-circuit
// measurement collapse.  These pin down by hand the corners the fuzz harness
// (tools/eqc_fuzz) sweeps randomly.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.h"
#include "circuit/execute.h"
#include "circuit/sv_backend.h"
#include "circuit/tab_backend.h"
#include "common/assert.h"
#include "common/rng.h"
#include "testing/oracles.h"

namespace eqc {
namespace {

using circuit::Circuit;
using circuit::SvBackend;
using circuit::TabBackend;

constexpr double kEps = 1e-9;

// Runs `c` through both backends and compares every per-qubit <Z>, plus the
// tableau's claimed stabilizers against the dense state.
void expect_backends_agree(const Circuit& c, std::uint64_t seed = 1) {
  SvBackend sv(c.num_qubits(), Rng(seed));
  TabBackend tab(c.num_qubits(), Rng(seed + 1));
  circuit::execute(c, sv);
  circuit::execute(c, tab);
  for (std::size_t q = 0; q < c.num_qubits(); ++q)
    EXPECT_NEAR(sv.expectation_z(q), tab.expectation_z(q), kEps)
        << "qubit " << q;
  for (std::size_t i = 0; i < c.num_qubits(); ++i) {
    const auto g = tab.tableau().stabilizer(i);
    const auto e = testing::dense_expectation(sv.state(), g);
    EXPECT_NEAR(e.real(), 1.0, 1e-8) << "stabilizer " << i;
    EXPECT_NEAR(e.imag(), 0.0, 1e-8) << "stabilizer " << i;
  }
}

// --- CCX lowering ---------------------------------------------------------

TEST(CcxLowering, BothControlsClassicalZero) {
  // Controls |00>: CCX is the identity on the target (even in superposition).
  Circuit c(3);
  c.h(2);
  c.ccx(0, 1, 2);
  c.h(2);  // H . I . H = I, so qubit 2 must return to |0>
  expect_backends_agree(c);
  TabBackend tab(3, Rng(1));
  circuit::execute(c, tab);
  EXPECT_EQ(tab.expectation_z(2), 1.0);
}

TEST(CcxLowering, BothControlsClassicalOne) {
  // Controls |11>: CCX acts as X on the target.
  Circuit c(3);
  c.x(0);
  c.x(1);
  c.ccx(0, 1, 2);
  expect_backends_agree(c);
  TabBackend tab(3, Rng(1));
  circuit::execute(c, tab);
  EXPECT_EQ(tab.expectation_z(2), -1.0);
}

TEST(CcxLowering, MixedClassicalAndSuperposedControl) {
  // Control 0 classical-|1>, control 1 in superposition: CCX lowers to
  // CNOT(1 -> target), producing a Bell pair on qubits {1, 2}.
  Circuit c(3);
  c.x(0);
  c.h(1);
  c.ccx(0, 1, 2);
  expect_backends_agree(c);

  // And with the classical control at |0>, the superposed control is
  // irrelevant: identity on the target.
  Circuit c0(3);
  c0.h(1);
  c0.ccx(0, 1, 2);
  expect_backends_agree(c0);
  TabBackend tab(3, Rng(1));
  circuit::execute(c0, tab);
  EXPECT_EQ(tab.expectation_z(2), 1.0);
}

TEST(CcxLowering, ThrowsWhenBothControlsSuperposed) {
  TabBackend tab(3, Rng(1));
  tab.h(0);
  tab.h(1);
  EXPECT_THROW(tab.ccx(0, 1, 2), ContractViolation);
}

// --- CCZ lowering ---------------------------------------------------------

TEST(CczLowering, ClassicalParticipantOne) {
  // One participant classical-|1>: CCZ lowers to CZ on the other two.
  Circuit c(3);
  c.x(0);
  c.h(1);
  c.h(2);
  c.ccz(0, 1, 2);
  c.h(2);  // CZ after H/H is CNOT-like entanglement; compare both backends
  expect_backends_agree(c);
}

TEST(CczLowering, ClassicalParticipantZero) {
  // One participant classical-|0>: CCZ is the identity.
  Circuit c(3);
  c.h(1);
  c.h(2);
  c.ccz(0, 1, 2);
  expect_backends_agree(c);
}

TEST(CczLowering, AnyPositionLowers) {
  // CCZ is symmetric: the classical participant may sit in any slot.
  for (int pos = 0; pos < 3; ++pos) {
    Circuit c(3);
    c.x(static_cast<std::uint32_t>(pos));
    for (std::uint32_t q = 0; q < 3; ++q)
      if (static_cast<int>(q) != pos) c.h(q);
    c.ccz(0, 1, 2);
    expect_backends_agree(c, 7 + static_cast<std::uint64_t>(pos));
  }
}

TEST(CczLowering, ThrowsWhenAllParticipantsSuperposed) {
  TabBackend tab(3, Rng(1));
  tab.h(0);
  tab.h(1);
  tab.h(2);
  EXPECT_THROW(tab.ccz(0, 1, 2), ContractViolation);
}

// --- CS / CSdg ------------------------------------------------------------

TEST(ControlledPhase, CsClassicalControlOne) {
  // Control |1>: CS acts as S on the target.  S|+> has <Z> = 0 but definite
  // stabilizer Y; the stabilizer cross-check distinguishes S from Sdg.
  Circuit c(2);
  c.x(0);
  c.h(1);
  c.cs(0, 1);
  expect_backends_agree(c);

  Circuit cdg(2);
  cdg.x(0);
  cdg.h(1);
  cdg.csdg(0, 1);
  expect_backends_agree(cdg);
}

TEST(ControlledPhase, CsClassicalControlZeroIsIdentity) {
  Circuit c(2);
  c.h(1);
  c.cs(0, 1);
  c.h(1);
  expect_backends_agree(c);
  TabBackend tab(2, Rng(1));
  circuit::execute(c, tab);
  EXPECT_EQ(tab.expectation_z(1), 1.0);
}

TEST(ControlledPhase, CsAndCsdgCancel) {
  Circuit c(2);
  c.x(0);
  c.h(1);
  c.cs(0, 1);
  c.csdg(0, 1);
  c.h(1);  // net identity on qubit 1
  expect_backends_agree(c);
  TabBackend tab(2, Rng(1));
  circuit::execute(c, tab);
  EXPECT_EQ(tab.expectation_z(1), 1.0);
}

TEST(ControlledPhase, ThrowsOnSuperposedControl) {
  TabBackend tab(2, Rng(1));
  tab.h(0);
  EXPECT_THROW(tab.cs(0, 1), ContractViolation);
  EXPECT_THROW(tab.csdg(0, 1), ContractViolation);
}

// On the state vector CS is exact (no lowering): |11> picks up phase i.
TEST(ControlledPhase, SvCsPhaseIsExact) {
  SvBackend sv(2, Rng(1));
  sv.x(0);
  sv.x(1);
  sv.cs(0, 1);
  const auto& amp = sv.state().amplitudes();
  EXPECT_NEAR(std::abs(amp[3] - cplx{0.0, 1.0}), 0.0, kEps);
}

// --- expectation_z across mid-circuit measurement collapse ----------------

TEST(MeasureCollapse, ExpectationTracksCollapseOnBothBackends) {
  // Bell pair, measure one half: the other half must collapse to the same
  // value, and expectation_z must report it deterministically (+-1).
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    SvBackend sv(2, Rng(seed));
    sv.h(0);
    sv.cnot(0, 1);
    const bool m = sv.measure_z(0);
    const double want = m ? -1.0 : 1.0;
    EXPECT_NEAR(sv.expectation_z(0), want, kEps);
    EXPECT_NEAR(sv.expectation_z(1), want, kEps);

    TabBackend tab(2, Rng(seed));
    tab.h(0);
    tab.cnot(0, 1);
    const bool mt = tab.measure_z(0);
    const double want_t = mt ? -1.0 : 1.0;
    EXPECT_EQ(tab.expectation_z(0), want_t);
    EXPECT_EQ(tab.expectation_z(1), want_t);
  }
}

TEST(MeasureCollapse, RemeasureIsDeterministic) {
  // After collapse, re-measuring yields the same outcome and <Z> is frozen.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SvBackend sv(1, Rng(seed));
    sv.h(0);
    const bool first = sv.measure_z(0);
    EXPECT_EQ(sv.measure_z(0), first);
    EXPECT_NEAR(sv.expectation_z(0), first ? -1.0 : 1.0, kEps);

    TabBackend tab(1, Rng(seed ^ 0xBEEF));
    tab.h(0);
    const bool tfirst = tab.measure_z(0);
    EXPECT_EQ(tab.measure_z(0), tfirst);
    EXPECT_EQ(tab.expectation_z(0), tfirst ? -1.0 : 1.0);
  }
}

TEST(MeasureCollapse, PartialEntanglementLeavesOtherQubitFree) {
  // |+>|+>: measuring qubit 0 must not disturb qubit 1's <Z> = 0.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SvBackend sv(2, Rng(seed));
    sv.h(0);
    sv.h(1);
    (void)sv.measure_z(0);
    EXPECT_NEAR(sv.expectation_z(1), 0.0, kEps);

    TabBackend tab(2, Rng(seed));
    tab.h(0);
    tab.h(1);
    (void)tab.measure_z(0);
    EXPECT_EQ(tab.expectation_z(1), 0.0);
  }
}

}  // namespace
}  // namespace eqc
