// Tests for the ensemble quantum computer model.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "circuit/circuit.h"
#include "common/assert.h"
#include "common/rng.h"
#include "common/stats.h"
#include "ensemble/machine.h"
#include "qsim/gates.h"

namespace eqc::ensemble {
namespace {

using circuit::Circuit;

TEST(EnsembleMachine, ExactModeReadsExpectations) {
  EnsembleMachine m(2, 0, /*seed=*/1);
  Circuit c(2);
  c.x(0).h(1);
  m.run(c);
  EXPECT_NEAR(m.readout_z(0), -1.0, 1e-12);
  EXPECT_NEAR(m.readout_z(1), 0.0, 1e-12);
}

TEST(EnsembleMachine, SampledModeMatchesExactInNoiselessCase) {
  EnsembleMachine m(1, 50, 3);
  Circuit c(1);
  c.h(0).s(0).h(0);  // <Z> = 0 after H S H? (HSH is sqrt-X-like)
  m.run(c);
  EnsembleMachine exact(1, 0, 3);
  exact.run(c);
  EXPECT_NEAR(m.readout_z(0), exact.readout_z(0), 1e-9);
}

TEST(EnsembleMachine, RejectsMeasurementPrograms) {
  EnsembleMachine m(2, 0, 1);
  Circuit c(2);
  c.h(0);
  c.measure_z(0);
  EXPECT_THROW(m.run(c), ContractViolation);
}

TEST(EnsembleMachine, RejectsClassicallyConditionedPrograms) {
  EnsembleMachine m(2, 0, 1);
  Circuit c(2);
  const auto slot = c.measure_z(0);
  const auto f = c.cbit_func(slot);
  c.x_if(f, 1);
  EXPECT_THROW(m.run(c), ContractViolation);
}

TEST(EnsembleMachine, RejectsNoiseInExactMode) {
  EnsembleMachine m(1, 0, 1);
  Circuit c(1);
  c.h(0);
  const auto model = noise::NoiseModel::depolarizing(0.01);
  EXPECT_THROW(m.run(c, &model), ContractViolation);
}

TEST(EnsembleMachine, ShotNoiseShrinksWithEnsembleSize) {
  // Standard deviation of the sampled readout of |+> scales as 1/sqrt(M).
  auto readout_std = [](std::size_t m_size, std::uint64_t seed) {
    RunningStats stats;
    for (int t = 0; t < 60; ++t) {
      EnsembleMachine m(1, m_size, seed + t);
      Circuit c(1);
      c.h(0);
      m.run(c);
      stats.add(m.readout_z(0, /*shot_sampled=*/true));
    }
    return stats.stddev();
  };
  const double small = readout_std(25, 11);
  const double big = readout_std(2500, 13);
  EXPECT_GT(small, 3.0 * big);  // ~10x expected
}

TEST(EnsembleMachine, NoiseDecoheresTheEnsemble) {
  // Depolarizing noise on repeated idles drives <Z> of |0> toward 0.
  EnsembleMachine noisy(1, 400, 17);
  Circuit c(1);
  for (int i = 0; i < 30; ++i) c.idle(0);
  const auto model = noise::NoiseModel::depolarizing(0.05);
  noisy.run(c, &model);
  const double z = noisy.readout_z(0);
  EXPECT_LT(z, 0.5);
  EXPECT_GT(z, -0.2);  // decayed toward 0, not inverted
}

TEST(EnsembleMachine, ApplyRunsArbitraryPrograms) {
  EnsembleMachine m(3, 0, 1);
  m.apply([](qsim::StateVector& sv) {
    sv.apply1(0, qsim::gate_h());
    sv.apply_cnot(0, 1);
    sv.apply_cnot(0, 2);
  });
  // GHZ: every single-qubit readout is 0 — individually useless, exactly
  // the ensemble-readout blind spot.
  for (std::size_t q = 0; q < 3; ++q)
    EXPECT_NEAR(m.readout_z(q), 0.0, 1e-12);
}

TEST(EnsembleMachine, ReadoutAllMatchesPerQubit) {
  EnsembleMachine m(3, 0, 1);
  Circuit c(3);
  c.x(1);
  m.run(c);
  const auto all = m.readout_all();
  EXPECT_NEAR(all[0], 1.0, 1e-12);
  EXPECT_NEAR(all[1], -1.0, 1e-12);
  EXPECT_NEAR(all[2], 1.0, 1e-12);
}

TEST(EnsembleMachine, PolarizationScalesTheSignal) {
  EnsembleMachine m(1, 0, 1);
  Circuit c(1);
  c.x(0);
  m.run(c);
  EXPECT_NEAR(m.readout_z(0), -1.0, 1e-12);
  m.set_polarization(0.01);  // room-temperature pseudo-pure deviation
  EXPECT_NEAR(m.readout_z(0), -0.01, 1e-12);
  EXPECT_THROW(m.set_polarization(0.0), ContractViolation);
  EXPECT_THROW(m.set_polarization(1.5), ContractViolation);
}

TEST(CliffordEnsemble, MatchesExactReadoutOnCliffordPrograms) {
  Circuit c(2);
  c.h(0).cnot(0, 1).x(1);
  CliffordEnsembleMachine m(2, 10, 5);
  m.run(c);
  EnsembleMachine exact(2, 0, 5);
  exact.run(c);
  for (std::size_t q = 0; q < 2; ++q)
    EXPECT_NEAR(m.readout_z(q), exact.readout_z(q), 1e-12);
}

TEST(CliffordEnsemble, RejectsMeasurementPrograms) {
  Circuit c(1);
  c.measure_z(0);
  CliffordEnsembleMachine m(1, 2, 1);
  EXPECT_THROW(m.run(c), ContractViolation);
}

TEST(CliffordEnsemble, NoiseMakesComputersDisagree) {
  Circuit c(1);
  for (int i = 0; i < 60; ++i) c.idle(0);
  CliffordEnsembleMachine m(1, 200, 9);
  const auto model = noise::NoiseModel::paper_model(0.02);
  m.run(c, &model);
  const double z = m.readout_z(0);
  EXPECT_LT(z, 1.0);
  EXPECT_GT(z, 0.0);
}

TEST(CliffordEnsemble, ShotSamplingAddsNoise) {
  Circuit c(1);
  c.h(0);
  CliffordEnsembleMachine m(1, 50, 3);
  m.run(c);
  EXPECT_NEAR(m.readout_z(0), 0.0, 1e-12);  // exact expectation
  // Shot-sampled readout of a coin is noisy but bounded.
  const double s = m.readout_z(0, /*shot_sampled=*/true);
  EXPECT_LE(std::abs(s), 1.0);
}

TEST(EnsembleMachine, DebugTrajectoryAccessIsExplicit) {
  EnsembleMachine m(1, 3, 5);
  Circuit c(1);
  c.x(0);
  m.run(c);
  EXPECT_NEAR(debug::trajectory(m, 0).prob_one(0), 1.0, 1e-12);
  EXPECT_THROW(debug::trajectory(m, 3), std::out_of_range);
}

}  // namespace
}  // namespace eqc::ensemble
