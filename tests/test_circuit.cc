// Tests for the circuit IR, scheduler, executor, fault sites and injectors.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "circuit/circuit.h"
#include "circuit/execute.h"
#include "circuit/schedule.h"
#include "circuit/sv_backend.h"
#include "circuit/tab_backend.h"
#include "common/assert.h"
#include "common/rng.h"
#include "noise/model.h"
#include "qsim/gates.h"

namespace eqc::circuit {
namespace {

using pauli::Pauli;
using pauli::PauliString;

TEST(Circuit, BuilderRecordsOps) {
  Circuit c(3);
  c.h(0).cnot(0, 1).ccx(0, 1, 2);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.ops()[0].kind, OpKind::H);
  EXPECT_EQ(c.ops()[1].kind, OpKind::CNOT);
  EXPECT_EQ(c.ops()[2].kind, OpKind::CCX);
  EXPECT_EQ(c.ops()[2].q[2], 2u);
}

TEST(Circuit, RejectsBadOperands) {
  Circuit c(2);
  EXPECT_THROW(c.h(2), ContractViolation);
  EXPECT_THROW(c.cnot(0, 0), ContractViolation);
  EXPECT_THROW(c.cnot(0, 5), ContractViolation);
}

TEST(Circuit, MeasureAllocatesSlots) {
  Circuit c(2);
  const auto s0 = c.measure_z(0);
  const auto s1 = c.measure_z(1);
  EXPECT_EQ(s0, 0u);
  EXPECT_EQ(s1, 1u);
  EXPECT_EQ(c.num_cbits(), 2u);
}

TEST(Circuit, ClassicalFuncGuardsConditionedOps) {
  Circuit c(2);
  const auto slot = c.measure_z(0);
  const auto f = c.cbit_func(slot);
  c.x_if(f, 1);
  EXPECT_EQ(c.ops().back().kind, OpKind::XIfC);
  EXPECT_THROW(c.x_if(99, 1), ContractViolation);
}

TEST(Schedule, ParallelOpsShareMoment) {
  Circuit c(4);
  c.h(0).h(1).h(2).h(3).cnot(0, 1).cnot(2, 3);
  const auto sched = schedule(c);
  EXPECT_EQ(sched.depth(), 2u);
  EXPECT_EQ(sched.moments[0].size(), 4u);
  EXPECT_EQ(sched.moments[1].size(), 2u);
}

TEST(Schedule, DependentOpsSequenced) {
  Circuit c(2);
  c.h(0).cnot(0, 1).h(0);
  const auto sched = schedule(c);
  EXPECT_EQ(sched.depth(), 3u);
}

TEST(Schedule, IdleLocationsCounted) {
  Circuit c(2);
  // Qubit 1 is used at moments 0 and 2 (the CNOT waits for qubit 0);
  // it idles at moment 1.
  c.h(1).h(0).h(0).cnot(0, 1);
  const auto sched = schedule(c);
  ASSERT_EQ(sched.depth(), 3u);
  EXPECT_EQ(sched.idle[1].size(), 1u);
  EXPECT_EQ(sched.idle[1][0], 1u);
  EXPECT_EQ(sched.total_idle_locations(), 1u);
}

TEST(Schedule, IdleLocationsWithReusedAndSingleUseQubits) {
  Circuit c(3);
  // Qubit 0 acts every moment (never idles).  Qubit 1 is reused — it acts
  // at the first and last moments and idles in between.  Qubit 2 is used
  // exactly once: idle locations only exist while a qubit is live (between
  // its first and last use), so it contributes none.
  c.h(1).h(2).h(0).h(0).h(0).cnot(0, 1);
  const auto sched = schedule(c);
  ASSERT_EQ(sched.depth(), 4u);
  // idle[t] lists the qubits idling at moment t: only qubit 1, at the two
  // moments between its first and last use.
  EXPECT_TRUE(sched.idle[0].empty());
  EXPECT_EQ(sched.idle[1], std::vector<std::uint32_t>{1});
  EXPECT_EQ(sched.idle[2], std::vector<std::uint32_t>{1});
  EXPECT_TRUE(sched.idle[3].empty());
  EXPECT_EQ(sched.total_idle_locations(), 2u);
}

TEST(Schedule, SingleMomentCircuitHasNoIdles) {
  Circuit c(2);
  c.h(0).h(1);
  EXPECT_EQ(schedule(c).total_idle_locations(), 0u);
}

TEST(Schedule, ClassicalDependencyOrdersConditionedOp) {
  Circuit c(2);
  const auto slot = c.measure_z(0);
  const auto f = c.cbit_func(slot);
  c.x_if(f, 1);
  const auto sched = schedule(c);
  // x_if must come strictly after the measurement's moment.
  EXPECT_GE(sched.depth(), 2u);
}

TEST(Execute, BellCircuitOnBothBackends) {
  Circuit c(2);
  c.h(0).cnot(0, 1);
  {
    SvBackend b(2, Rng(1));
    execute(c, b);
    EXPECT_NEAR(b.state().prob_one(0), 0.5, 1e-9);
  }
  {
    TabBackend b(2, Rng(1));
    execute(c, b);
    EXPECT_FALSE(b.tableau().is_deterministic_z(0));
    EXPECT_TRUE(b.tableau().state_is_stabilized_by(
        PauliString::from_string("XX")));
  }
}

TEST(Execute, SvBackendGateFusionMatchesEagerApplication) {
  // SvBackend fuses adjacent single-qubit gates into one 2x2 product before
  // touching the amplitude array.  A gate-dense circuit (runs of 1q gates
  // interrupted by 2q gates, measurements and Pauli injection) must produce
  // the same state as applying every gate eagerly, one at a time.
  Circuit c(3);
  c.h(0).t(0).s(0).h(0).x(1).z(1).s(1).sdg(2).tdg(2).y(2);
  c.cnot(0, 1);
  c.t(1).t(1).h(2);
  c.cz(1, 2);
  c.s(0).h(1).x(2).z(0);

  SvBackend fused(3, Rng(1));
  execute(c, fused);

  qsim::StateVector eager(3);
  for (const auto& op : c.ops()) {
    switch (op.kind) {
      case OpKind::H: eager.apply1(op.q[0], qsim::gate_h()); break;
      case OpKind::X: eager.apply1(op.q[0], qsim::gate_x()); break;
      case OpKind::Y: eager.apply1(op.q[0], qsim::gate_y()); break;
      case OpKind::Z: eager.apply1(op.q[0], qsim::gate_z()); break;
      case OpKind::S: eager.apply1(op.q[0], qsim::gate_s()); break;
      case OpKind::Sdg: eager.apply1(op.q[0], qsim::gate_sdg()); break;
      case OpKind::T: eager.apply1(op.q[0], qsim::gate_t()); break;
      case OpKind::Tdg: eager.apply1(op.q[0], qsim::gate_tdg()); break;
      case OpKind::CNOT: eager.apply_cnot(op.q[0], op.q[1]); break;
      case OpKind::CZ: eager.apply_cz(op.q[0], op.q[1]); break;
      default: FAIL() << "unexpected op";
    }
  }
  for (std::uint64_t i = 0; i < eager.dim(); ++i)
    EXPECT_NEAR(std::abs(fused.state().amplitude(i) - eager.amplitude(i)),
                0.0, 1e-10)
        << "basis " << i;
}

TEST(Execute, SvBackendFlushesBeforeMeasurementAndPauli) {
  // A pending fused product must be applied before a measurement or an
  // injected Pauli consumes the qubit — otherwise program order breaks.
  Circuit c(1);
  c.h(0).z(0).h(0);  // HZH = X: deterministic |1>
  const auto slot = c.measure_z(0);
  SvBackend b(1, Rng(7));
  const auto result = execute(c, b);
  EXPECT_TRUE(result.cbits[slot]);

  SvBackend b2(2, Rng(3));
  b2.x(0);  // pending
  b2.apply_pauli(PauliString::from_string("XI"));  // must see |1> on qubit 0
  EXPECT_NEAR(b2.state().prob_one(0), 0.0, 1e-12);
}

TEST(Execute, MeasurementFeedsClassicalControl) {
  // Quantum teleport-like feed-forward: X on qubit 1 iff qubit 0 measured 1.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Circuit c(2);
    c.h(0);
    const auto m = c.measure_z(0);
    const auto f = c.cbit_func(m);
    c.x_if(f, 1);
    TabBackend b(2, Rng(seed));
    const auto result = execute(c, b);
    // Qubit 1 now equals the measured bit.
    EXPECT_EQ(b.tableau().deterministic_z_value(1), result.cbits[0]);
  }
}

TEST(Execute, DerivedClassicalFunction) {
  // Majority of three measured bits controls an X.
  Circuit c(4);
  c.x(0).x(1);  // bits: 1,1,0 -> majority 1
  const auto m0 = c.measure_z(0);
  const auto m1 = c.measure_z(1);
  const auto m2 = c.measure_z(2);
  const auto maj = c.add_classical_func([=](const std::vector<bool>& bits) {
    return (bits[m0] && bits[m1]) || (bits[m0] && bits[m2]) ||
           (bits[m1] && bits[m2]);
  });
  c.x_if(maj, 3);
  TabBackend b(4, Rng(5));
  execute(c, b);
  EXPECT_EQ(b.tableau().expectation_z(3), -1.0);
}

TEST(Execute, CcxLowersOnClassicalControls) {
  Circuit c(3);
  c.x(0).x(1).ccx(0, 1, 2);
  TabBackend b(3, Rng(1));
  execute(c, b);
  EXPECT_EQ(b.tableau().expectation_z(2), -1.0);

  Circuit c2(3);
  c2.x(0).ccx(0, 1, 2);  // second control is 0
  TabBackend b2(3, Rng(1));
  execute(c2, b2);
  EXPECT_EQ(b2.tableau().expectation_z(2), 1.0);
}

TEST(Execute, CcxOnSuperposedControlsThrowsOnTableau) {
  Circuit c(3);
  c.h(0).h(1).ccx(0, 1, 2);
  TabBackend b(3, Rng(1));
  EXPECT_THROW(execute(c, b), ContractViolation);
  // The state vector handles it fine.
  SvBackend sb(3, Rng(1));
  EXPECT_NO_THROW(execute(c, sb));
  EXPECT_NEAR(sb.state().prob_one(2), 0.25, 1e-9);
}

TEST(Execute, CczLowersViaAnyClassicalParticipant) {
  Circuit c(3);
  c.h(0).h(1).x(2).ccz(0, 1, 2);  // qubit 2 classical |1> -> CZ(0,1)
  TabBackend b(3, Rng(1));
  execute(c, b);
  // After H H CZ the state is stabilized by XZ on (0,1).
  EXPECT_TRUE(b.tableau().state_is_stabilized_by(
      PauliString::from_string("XZI")));
}

TEST(Execute, TGateRejectedOnTableau) {
  Circuit c(1);
  c.t(0);
  TabBackend b(1, Rng(1));
  EXPECT_THROW(execute(c, b), ContractViolation);
}

TEST(Execute, PrepZResetsMidCircuit) {
  Circuit c(2);
  c.h(0).cnot(0, 1).prep_z(0).h(1);
  TabBackend b(2, Rng(3));
  execute(c, b);
  EXPECT_EQ(b.tableau().expectation_z(0), 1.0);
}

TEST(FaultSites, EnumerationMatchesExecutionOrder) {
  Circuit c(3);
  c.h(0).cnot(0, 1).prep_z(2).cnot(1, 2);
  const auto stat = enumerate_fault_sites(c);
  TabBackend b(3, Rng(1));
  SiteCollector collector;
  execute(c, b, &collector);
  ASSERT_EQ(stat.size(), collector.sites().size());
  for (std::size_t i = 0; i < stat.size(); ++i) {
    EXPECT_EQ(stat[i].ordinal, collector.sites()[i].ordinal);
    EXPECT_EQ(stat[i].kind, collector.sites()[i].kind);
    EXPECT_EQ(stat[i].qubits, collector.sites()[i].qubits);
    EXPECT_EQ(stat[i].moment, collector.sites()[i].moment);
  }
}

TEST(FaultSites, InputSitesIncludedWhenRequested) {
  Circuit c(3);
  c.h(0).cnot(0, 1);  // qubit 2 never used -> no input site for it
  ExecOptions opt;
  opt.include_input_sites = true;
  const auto sites = enumerate_fault_sites(c, opt);
  int inputs = 0;
  for (const auto& s : sites)
    if (s.kind == FaultSite::Kind::Input) ++inputs;
  EXPECT_EQ(inputs, 2);
}

TEST(FaultSites, MeasureSiteComesBeforeReadout) {
  // Planting X right before a measurement flips the recorded bit.
  Circuit c(1);
  const auto slot = c.measure_z(0);
  const auto sites = enumerate_fault_sites(c);
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0].kind, FaultSite::Kind::MeasureInput);

  PlantedInjector inj;
  inj.plant(sites[0].ordinal, PauliString::single(1, 0, Pauli::X));
  TabBackend b(1, Rng(1));
  const auto result = execute(c, b, &inj);
  EXPECT_TRUE(result.cbits[slot]);
}

TEST(FaultSites, PlantedFaultMustRespectSiteQubits) {
  Circuit c(2);
  c.h(0).h(1);
  const auto sites = enumerate_fault_sites(c);
  PlantedInjector inj;
  // Fault on qubit 1 planted at a site for qubit 0: contract violation.
  inj.plant(sites[0].ordinal, PauliString::single(2, 1, Pauli::X));
  TabBackend b(2, Rng(1));
  if (sites[0].qubits[0] == 0) {
    EXPECT_THROW(execute(c, b, &inj), ContractViolation);
  }
}

TEST(FaultSites, PlantedInjectorTracksUnvisitedPlants) {
  Circuit c(2);
  c.h(0).h(1);
  const auto sites = enumerate_fault_sites(c);
  PlantedInjector inj;
  inj.plant(sites[0].ordinal, PauliString::single(2, sites[0].qubits[0],
                                                  Pauli::X));
  const std::size_t bogus = sites.size() + 99;  // never enumerated
  inj.plant(bogus, PauliString::single(2, 0, Pauli::Z));
  EXPECT_FALSE(inj.all_planted_visited());
  TabBackend b(2, Rng(1));
  execute(c, b, &inj);
  EXPECT_FALSE(inj.all_planted_visited());
  ASSERT_EQ(inj.unvisited_ordinals().size(), 1u);
  EXPECT_EQ(inj.unvisited_ordinals()[0], bogus);
}

TEST(FaultSites, PlantedPairBothApplied) {
  Circuit c(2);
  c.h(0).h(0).h(1).h(1);  // H H = identity; planted X errors persist
  const auto sites = enumerate_fault_sites(c);
  ASSERT_GE(sites.size(), 4u);
  PlantedInjector inj;
  // After the second H on each qubit, plant an X.
  for (const auto& s : sites)
    if (s.moment == 1)
      inj.plant(s.ordinal, PauliString::single(2, s.qubits[0], Pauli::X));
  TabBackend b(2, Rng(1));
  execute(c, b, &inj);
  EXPECT_EQ(b.tableau().expectation_z(0), -1.0);
  EXPECT_EQ(b.tableau().expectation_z(1), -1.0);
}

TEST(Noise, ZeroProbabilityInjectsNothing) {
  Circuit c(2);
  for (int i = 0; i < 50; ++i) c.h(0).cnot(0, 1);
  noise::StochasticInjector inj(noise::NoiseModel::depolarizing(0.0), Rng(1));
  TabBackend b(2, Rng(2));
  execute(c, b, &inj);
  EXPECT_EQ(inj.errors_injected(), 0u);
}

TEST(Noise, InjectionRateTracksP) {
  Circuit c(1);
  for (int i = 0; i < 200; ++i) c.x(0);
  noise::StochasticInjector inj(noise::NoiseModel::depolarizing(0.1), Rng(4));
  TabBackend b(1, Rng(2));
  execute(c, b, &inj);
  EXPECT_NEAR(inj.errors_injected() / 200.0, 0.1, 0.06);
}

TEST(Noise, BitFlipChannelOnlyFlipsBits) {
  // On |0>, bit-flip noise can flip the value but never makes it random.
  Circuit c(1);
  for (int i = 0; i < 100; ++i) c.idle(0);
  c.x(0);
  noise::StochasticInjector inj(noise::NoiseModel::bit_flip(0.2), Rng(6));
  TabBackend b(1, Rng(2));
  execute(c, b, &inj);
  EXPECT_TRUE(b.tableau().is_deterministic_z(0));
}

TEST(Noise, SampleErrorCoversAllPaulisOnOneQubit) {
  Rng rng(8);
  bool saw[4] = {false, false, false, false};
  for (int i = 0; i < 200; ++i) {
    const auto e = noise::sample_error(noise::Channel::Depolarizing, {0}, 1, rng);
    saw[static_cast<int>(e.get(0))] = true;
  }
  EXPECT_FALSE(saw[0]);  // never identity
  EXPECT_TRUE(saw[1] && saw[2] && saw[3]);
}

TEST(Noise, TwoQubitDepolarizingCovers15) {
  Rng rng(9);
  std::set<std::string> seen;
  for (int i = 0; i < 2000; ++i)
    seen.insert(
        noise::sample_error(noise::Channel::Depolarizing, {0, 1}, 2, rng)
            .to_string());
  EXPECT_EQ(seen.size(), 15u);
}

TEST(CircuitAppend, RebasesClassicalSlots) {
  Circuit inner(2);
  const auto m = inner.measure_z(0);
  const auto f = inner.cbit_func(m);
  inner.x_if(f, 1);

  Circuit outer(2);
  outer.x(0);
  const auto m0 = outer.measure_z(0);  // slot 0 of outer
  (void)m0;
  outer.x(0);  // back to |0>... then measure |1> again for inner
  outer.x(0);
  outer.append(inner);

  TabBackend b(2, Rng(3));
  const auto result = execute(outer, b);
  ASSERT_EQ(result.cbits.size(), 2u);
  EXPECT_TRUE(result.cbits[0]);
  // Inner circuit measured |1> (x applied twice then once more = |1>).
  EXPECT_TRUE(result.cbits[1]);
  EXPECT_EQ(b.tableau().expectation_z(1), -1.0);
}

}  // namespace
}  // namespace eqc::circuit
