// Tests for the [[15,1,3]] quantum Reed-Muller code: the Steane code's
// transversality mirror (T free, H missing).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <complex>
#include <set>

#include "circuit/circuit.h"
#include "circuit/execute.h"
#include "circuit/sv_backend.h"
#include "circuit/tab_backend.h"
#include "codes/reed_muller.h"
#include "common/assert.h"
#include "common/rng.h"
#include "qsim/gates.h"

namespace eqc::codes {
namespace {

using circuit::Circuit;
using circuit::SvBackend;
using circuit::TabBackend;
using pauli::Pauli;
using pauli::PauliString;

TEST(ReedMuller, MaskStructure) {
  // Each X mask has weight 8; pair intersections have weight 4.
  for (int j = 0; j < 4; ++j)
    EXPECT_EQ(std::popcount(ReedMuller15::x_mask(j)), 8) << j;
  const auto& zm = ReedMuller15::z_masks();
  ASSERT_EQ(zm.size(), 10u);
  for (int k = 0; k < 4; ++k) EXPECT_EQ(std::popcount(zm[k]), 8);
  for (int k = 4; k < 10; ++k) EXPECT_EQ(std::popcount(zm[k]), 4);
}

TEST(ReedMuller, CodewordsAreOrthogonalToZMasks) {
  // Every |0>_L component must satisfy every Z check (even overlap).
  for (unsigned cw : ReedMuller15::codewords_zero())
    for (unsigned mask : ReedMuller15::z_masks())
      EXPECT_EQ(std::popcount(cw & mask) % 2, 0);
  // |1>_L components too (complements).
  for (unsigned cw : ReedMuller15::codewords_zero())
    for (unsigned mask : ReedMuller15::z_masks())
      EXPECT_EQ(std::popcount((cw ^ 0x7FFF) & mask) % 2, 0);
}

TEST(ReedMuller, CodewordWeightsSupportTransversalT) {
  // |0>_L components have weight 0 mod 8; |1>_L components have weight
  // congruent to 7 mod 8 — which is what makes T^(x)15 a logical phase.
  for (unsigned cw : ReedMuller15::codewords_zero()) {
    EXPECT_EQ(std::popcount(cw) % 8, 0);
    EXPECT_EQ(std::popcount(cw ^ 0x7FFF) % 8, 7);
  }
}

TEST(ReedMuller, StabilizersCommute) {
  const auto block = RmBlock::contiguous(0);
  std::vector<PauliString> gens;
  for (int j = 0; j < 4; ++j)
    gens.push_back(ReedMuller15::x_stabilizer(15, block, j));
  for (int k = 0; k < 10; ++k)
    gens.push_back(ReedMuller15::z_stabilizer(15, block, k));
  for (const auto& a : gens)
    for (const auto& b : gens) EXPECT_TRUE(a.commutes_with(b));
  const auto lx = ReedMuller15::logical_x_op(15, block);
  const auto lz = ReedMuller15::logical_z_op(15, block);
  for (const auto& g : gens) {
    EXPECT_TRUE(lx.commutes_with(g));
    EXPECT_TRUE(lz.commutes_with(g));
  }
  EXPECT_FALSE(lx.commutes_with(lz));
}

TEST(ReedMuller, EncoderProducesTheCodeSpace) {
  Circuit c(15);
  const auto block = RmBlock::contiguous(0);
  ReedMuller15::append_encode_zero(c, block);
  TabBackend b(15, Rng(1));
  circuit::execute(c, b);
  for (int j = 0; j < 4; ++j)
    EXPECT_EQ(b.tableau().expectation_pauli(
                  ReedMuller15::x_stabilizer(15, block, j)),
              1.0)
        << "X gen " << j;
  for (int k = 0; k < 10; ++k)
    EXPECT_EQ(b.tableau().expectation_pauli(
                  ReedMuller15::z_stabilizer(15, block, k)),
              1.0)
        << "Z gen " << k;
  EXPECT_EQ(b.tableau().expectation_pauli(
                ReedMuller15::logical_z_op(15, block)),
            1.0);
}

TEST(ReedMuller, EncoderMatchesAnalyticAmplitudes) {
  Circuit c(15);
  const auto block = RmBlock::contiguous(0);
  ReedMuller15::append_encode_zero(c, block);
  SvBackend b(15, Rng(1));
  circuit::execute(c, b);
  const auto want = qsim::StateVector::from_amplitudes(
      ReedMuller15::encoded_amplitudes(1.0, 0.0));
  EXPECT_NEAR(b.state().fidelity(want), 1.0, 1e-10);
}

TEST(ReedMuller, TransversalTIsLogicalTdg) {
  // Bit-wise T on |+>_L gives (|0>_L + e^{-i pi/4} |1>_L)/sqrt2.
  Circuit c(15);
  const auto block = RmBlock::contiguous(0);
  ReedMuller15::append_encode_zero(c, block);
  SvBackend b(15, Rng(1));
  circuit::execute(c, b);
  // Build |+>_L analytically, apply bit-wise T.
  const double inv = 1.0 / std::sqrt(2.0);
  auto plus = qsim::StateVector::from_amplitudes(
      ReedMuller15::encoded_amplitudes(inv, inv));
  for (std::size_t q = 0; q < 15; ++q) plus.apply1(q, qsim::gate_t());
  const auto want = qsim::StateVector::from_amplitudes(
      ReedMuller15::encoded_amplitudes(
          inv, inv * std::polar(1.0, -M_PI / 4)));
  EXPECT_NEAR(plus.fidelity(want), 1.0, 1e-10);
}

TEST(ReedMuller, LogicalTBuilderActsAsT) {
  const double inv = 1.0 / std::sqrt(2.0);
  Circuit c(15);
  const auto block = RmBlock::contiguous(0);
  ReedMuller15::append_logical_t(c, block);
  SvBackend b(qsim::StateVector::from_amplitudes(
                  ReedMuller15::encoded_amplitudes(inv, inv)),
              Rng(1));
  circuit::execute(c, b);
  const auto want = qsim::StateVector::from_amplitudes(
      ReedMuller15::encoded_amplitudes(inv,
                                       inv * std::polar(1.0, M_PI / 4)));
  EXPECT_NEAR(b.state().fidelity(want), 1.0, 1e-10);
}

TEST(ReedMuller, LogicalTTimesTdgIsIdentity) {
  const double inv = 1.0 / std::sqrt(2.0);
  Circuit c(15);
  const auto block = RmBlock::contiguous(0);
  ReedMuller15::append_logical_t(c, block);
  ReedMuller15::append_logical_tdg(c, block);
  SvBackend b(qsim::StateVector::from_amplitudes(
                  ReedMuller15::encoded_amplitudes(inv, inv)),
              Rng(1));
  circuit::execute(c, b);
  const auto want = qsim::StateVector::from_amplitudes(
      ReedMuller15::encoded_amplitudes(inv, inv));
  EXPECT_NEAR(b.state().fidelity(want), 1.0, 1e-10);
}

TEST(ReedMuller, BitwiseHadamardLeavesTheCodeSpace) {
  // The mirror gap: H^(x)15 does NOT preserve the code space (the X and Z
  // stabilizer sets differ) — a measurement-free logical H on this code
  // would need the paper's machinery, just as T does on the Steane code.
  Circuit c(15);
  const auto block = RmBlock::contiguous(0);
  ReedMuller15::append_encode_zero(c, block);
  for (auto q : block.q) c.h(q);
  TabBackend b(15, Rng(1));
  circuit::execute(c, b);
  bool all_stabilized = true;
  for (int k = 0; k < 10 && all_stabilized; ++k)
    all_stabilized =
        b.tableau().expectation_pauli(
            ReedMuller15::z_stabilizer(15, block, k)) == 1.0;
  EXPECT_FALSE(all_stabilized);
}

TEST(ReedMuller, TransversalCnotIsLogical) {
  Circuit c(30);
  const auto a = RmBlock::contiguous(0);
  const auto t = RmBlock::contiguous(15);
  ReedMuller15::append_encode_zero(c, a);
  ReedMuller15::append_logical_x(c, a);
  ReedMuller15::append_encode_zero(c, t);
  ReedMuller15::append_logical_cnot(c, a, t);
  TabBackend b(30, Rng(1));
  circuit::execute(c, b);
  EXPECT_EQ(b.tableau().expectation_pauli(
                ReedMuller15::logical_z_op(30, a)),
            -1.0);
  EXPECT_EQ(b.tableau().expectation_pauli(
                ReedMuller15::logical_z_op(30, t)),
            -1.0);
}

TEST(ReedMuller, CodewordsFormTheXStabilizerSpan) {
  // |0>_L's Z-basis components are exactly the GF(2) span of the four
  // X-stabilizer masks: 16 words, closed under XOR, containing 0.
  std::set<unsigned> span = {0};
  for (int j = 0; j < 4; ++j) {
    std::set<unsigned> next = span;
    for (unsigned w : span) next.insert(w ^ ReedMuller15::x_mask(j));
    span = std::move(next);
  }
  EXPECT_EQ(span.size(), 16u);
  const auto zero_words = ReedMuller15::codewords_zero();
  std::set<unsigned> cws(zero_words.begin(), zero_words.end());
  EXPECT_EQ(cws, span);
  for (unsigned a : cws)
    for (unsigned b : cws) EXPECT_TRUE(cws.count(a ^ b)) << a << "^" << b;
}

TEST(ReedMuller, ExhaustiveDistanceIsExactlyThree) {
  // Quantum distance 3, checked exhaustively at the mask level: every
  // weight <= 2 X (Z) error pattern either trips a Z-type (X-type) check
  // or lies in the matching stabilizer span; and some weight-3 pattern is
  // an undetectable non-stabilizer (a logical).
  std::set<unsigned> z_span = {0};  // span of the ten Z masks
  for (unsigned m : ReedMuller15::z_masks()) {
    std::set<unsigned> next = z_span;
    for (unsigned w : z_span) next.insert(w ^ m);
    z_span = std::move(next);
  }
  std::set<unsigned> x_span = {0};  // span of the four X masks
  for (int j = 0; j < 4; ++j) {
    std::set<unsigned> next = x_span;
    for (unsigned w : x_span) next.insert(w ^ ReedMuller15::x_mask(j));
    x_span = std::move(next);
  }
  auto detected_x = [](unsigned e) {  // X error pattern e trips a Z check
    for (unsigned m : ReedMuller15::z_masks())
      if (std::popcount(m & e) % 2 != 0) return true;
    return false;
  };
  auto detected_z = [](unsigned e) {  // Z error pattern e trips an X check
    for (int j = 0; j < 4; ++j)
      if (std::popcount(ReedMuller15::x_mask(j) & e) % 2 != 0) return true;
    return false;
  };
  bool weight3_x_logical = false, weight3_z_logical = false;
  for (unsigned e = 1; e < (1u << 15); ++e) {
    const int w = std::popcount(e);
    if (w <= 2) {
      EXPECT_TRUE(detected_x(e) || x_span.count(e)) << "X pattern " << e;
      EXPECT_TRUE(detected_z(e) || z_span.count(e)) << "Z pattern " << e;
    } else if (w == 3) {
      weight3_x_logical |= !detected_x(e) && !x_span.count(e);
      weight3_z_logical |= !detected_z(e) && !z_span.count(e);
    }
  }
  // The distance is asymmetric: a weight-3 Z logical exists (d = 3 comes
  // from the Z side), while the minimum X logical is heavier — no weight-3
  // X pattern evades the ten Z-type checks.
  EXPECT_TRUE(weight3_z_logical);
  EXPECT_FALSE(weight3_x_logical);
}

TEST(ReedMuller, TransversalTPhasesEveryBasisComponent) {
  // The logical action of bit-wise T, component by component: each |0>_L
  // word picks up e^{i pi/4 * (weight mod 8)} = 1, each |1>_L word
  // e^{i pi/4 * 7} = e^{-i pi/4} — i.e. logical Tdg, which is why
  // append_logical_t emits bit-wise Tdg.
  for (unsigned cw : ReedMuller15::codewords_zero()) {
    EXPECT_EQ(std::popcount(cw) % 8, 0);
    const auto phase = std::polar(1.0, M_PI / 4 * (std::popcount(cw) % 8));
    EXPECT_NEAR(std::abs(phase - 1.0), 0.0, 1e-12);
    const unsigned one_cw = cw ^ 0x7FFF;
    const auto one_phase =
        std::polar(1.0, M_PI / 4 * (std::popcount(one_cw) % 8));
    EXPECT_NEAR(std::abs(one_phase - std::polar(1.0, -M_PI / 4)), 0.0, 1e-12);
  }
}

TEST(ReedMuller, DistanceThreeAgainstSingleErrors) {
  // Every weight-1 Z error anticommutes with at least one X generator and
  // every weight-1 X error with at least one Z generator (detectability).
  const auto block = RmBlock::contiguous(0);
  for (unsigned i = 0; i < 15; ++i) {
    bool detected_z = false;
    const auto ze = PauliString::single(15, i, Pauli::Z);
    for (int j = 0; j < 4; ++j)
      detected_z |= !ze.commutes_with(ReedMuller15::x_stabilizer(15, block, j));
    EXPECT_TRUE(detected_z) << i;
    bool detected_x = false;
    const auto xe = PauliString::single(15, i, Pauli::X);
    for (int k = 0; k < 10; ++k)
      detected_x |= !xe.commutes_with(ReedMuller15::z_stabilizer(15, block, k));
    EXPECT_TRUE(detected_x) << i;
  }
}

}  // namespace
}  // namespace eqc::codes
