// Tests for the runtime-polymorphic CssCode interface: registry lookup,
// classical structure (check masks, syndromes, decoding) and the encode /
// logical-operator circuit builders, exercised uniformly over both
// registered codes.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <set>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/execute.h"
#include "circuit/sv_backend.h"
#include "circuit/tab_backend.h"
#include "codes/css_code.h"
#include "codes/steane.h"
#include "common/rng.h"

namespace eqc::codes {
namespace {

using circuit::Circuit;
using circuit::SvBackend;
using circuit::TabBackend;

std::vector<const CssCode*> all_codes() {
  std::vector<const CssCode*> out;
  for (auto name : known_code_names()) out.push_back(find_code(name));
  return out;
}

TEST(CssCodeRegistry, LookupByName) {
  const auto names = known_code_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "steane");
  EXPECT_EQ(names[1], "rm15");
  EXPECT_EQ(find_code("steane"), &steane_code());
  EXPECT_EQ(find_code("rm15"), &rm15_code());
  EXPECT_EQ(find_code("shor9"), nullptr);
  EXPECT_EQ(find_code(""), nullptr);
}

TEST(CssCodeRegistry, Parameters) {
  const auto& s = steane_code();
  EXPECT_EQ(s.n(), 7u);
  EXPECT_EQ(s.distance(), 3);
  EXPECT_EQ(s.num_z_checks(), 3u);
  EXPECT_EQ(s.num_x_checks(), 3u);
  EXPECT_TRUE(s.self_dual());
  EXPECT_TRUE(s.has_transversal_s());
  EXPECT_FALSE(s.has_transversal_t());

  const auto& r = rm15_code();
  EXPECT_EQ(r.n(), 15u);
  EXPECT_EQ(r.distance(), 3);
  EXPECT_EQ(r.num_z_checks(), 10u);
  EXPECT_EQ(r.num_x_checks(), 4u);
  EXPECT_FALSE(r.self_dual());
  EXPECT_FALSE(r.has_transversal_s());
  EXPECT_TRUE(r.has_transversal_t());
}

TEST(CssCode, ChecksAreCssOrthogonal) {
  // Every Z-type mask overlaps every X-type mask evenly (the stabilizers
  // commute) and overlaps the all-ones logical supports evenly too.
  for (const auto* code : all_codes()) {
    const unsigned ones = (1u << code->n()) - 1;
    for (std::size_t z = 0; z < code->num_z_checks(); ++z) {
      for (std::size_t x = 0; x < code->num_x_checks(); ++x)
        EXPECT_EQ(std::popcount(code->z_check_mask(z) &
                                code->x_check_mask(x)) %
                      2,
                  0)
            << code->name() << " z" << z << " x" << x;
      EXPECT_EQ(std::popcount(code->z_check_mask(z) & ones) % 2, 0);
    }
    for (std::size_t x = 0; x < code->num_x_checks(); ++x)
      EXPECT_EQ(std::popcount(code->x_check_mask(x) & ones) % 2, 0);
  }
}

TEST(CssCode, SingleErrorSyndromesAreDistinctAndNonzero) {
  // Classical distance >= 3 in both directions: every single error is
  // detectable (nonzero syndrome) and correctable (distinct syndromes),
  // and the lookup positions invert the syndrome maps.
  for (const auto* code : all_codes()) {
    std::set<unsigned> zsyn, xsyn;
    for (std::size_t pos = 0; pos < code->n(); ++pos) {
      const unsigned sz = code->z_syndrome_of_x_error(pos);
      const unsigned sx = code->x_syndrome_of_z_error(pos);
      EXPECT_NE(sz, 0u) << code->name() << " pos " << pos;
      EXPECT_NE(sx, 0u) << code->name() << " pos " << pos;
      EXPECT_TRUE(zsyn.insert(sz).second) << code->name() << " pos " << pos;
      EXPECT_TRUE(xsyn.insert(sx).second) << code->name() << " pos " << pos;
      EXPECT_EQ(code->x_error_position(sz), static_cast<int>(pos));
      EXPECT_EQ(code->z_error_position(sx), static_cast<int>(pos));
    }
    EXPECT_EQ(code->x_error_position(0), -1);
    EXPECT_EQ(code->z_error_position(0), -1);
  }
}

TEST(CssCode, DecodeLogicalBitCorrectsSingleBitErrors) {
  // Enumerate the full classical code (all words with zero Z-syndrome);
  // the logical bit of a codeword is its parity, and it must survive any
  // single bit flip.
  for (const auto* code : all_codes()) {
    std::size_t codewords = 0;
    for (unsigned w = 0; w < (1u << code->n()); ++w) {
      if (code->z_syndrome_of_word(w) != 0) continue;
      ++codewords;
      const bool logical = std::popcount(w) % 2 != 0;
      EXPECT_EQ(code->decode_logical_bit(w), logical);
      for (std::size_t e = 0; e < code->n(); ++e)
        EXPECT_EQ(code->decode_logical_bit(w ^ (1u << e)), logical)
            << code->name() << " word " << w << " flip " << e;
    }
    // 2^(n - num_z_checks) words: both logical cosets.
    EXPECT_EQ(codewords, 1u << (code->n() - code->num_z_checks()));
  }
}

TEST(CssCode, EncodeZeroLandsInCodespace) {
  for (const auto* code : all_codes()) {
    const auto b = CodeBlock::contiguous(0, code->n());
    Circuit c(code->n());
    code->append_encode_zero(c, b);
    TabBackend back(code->n(), Rng(1));
    circuit::execute(c, back);
    EXPECT_TRUE(code->block_in_codespace(back.tableau(), b)) << code->name();
    EXPECT_EQ(code->logical_z_expectation(back.tableau(), b), 1.0)
        << code->name();
  }
}

TEST(CssCode, LogicalXFlipsTheEncodedBit) {
  for (const auto* code : all_codes()) {
    const auto b = CodeBlock::contiguous(0, code->n());
    Circuit c(code->n());
    code->append_encode_zero(c, b);
    code->append_logical_x(c, b);
    TabBackend back(code->n(), Rng(1));
    circuit::execute(c, back);
    EXPECT_TRUE(code->block_in_codespace(back.tableau(), b)) << code->name();
    EXPECT_EQ(code->logical_z_expectation(back.tableau(), b), -1.0)
        << code->name();
  }
}

TEST(CssCode, EncodePlusIsTheLogicalPlusState) {
  for (const auto* code : all_codes()) {
    const auto b = CodeBlock::contiguous(0, code->n());
    Circuit c(code->n());
    code->append_encode_plus(c, b);
    TabBackend back(code->n(), Rng(1));
    circuit::execute(c, back);
    EXPECT_TRUE(code->block_in_codespace(back.tableau(), b)) << code->name();
    EXPECT_EQ(code->logical_z_expectation(back.tableau(), b), 0.0)
        << code->name();
    EXPECT_EQ(back.tableau().expectation_pauli(
                  code->logical_x_op(code->n(), b)),
              1.0)
        << code->name();
  }
}

TEST(CssCode, PerfectCorrectRepairsSingleErrors) {
  for (const auto* code : all_codes()) {
    const auto b = CodeBlock::contiguous(0, code->n());
    for (std::size_t pos = 0; pos < code->n(); ++pos) {
      // X error on |0>_L.
      {
        Circuit c(code->n());
        code->append_encode_zero(c, b);
        c.x(b.q[pos]);
        TabBackend back(code->n(), Rng(7));
        circuit::execute(c, back);
        Rng rng(11);
        code->perfect_correct(back.tableau(), b, rng);
        EXPECT_TRUE(code->block_in_codespace(back.tableau(), b))
            << code->name() << " X@" << pos;
        EXPECT_EQ(code->logical_z_expectation(back.tableau(), b), 1.0)
            << code->name() << " X@" << pos;
      }
      // Z error on |+>_L.
      {
        Circuit c(code->n());
        code->append_encode_plus(c, b);
        c.z(b.q[pos]);
        TabBackend back(code->n(), Rng(7));
        circuit::execute(c, back);
        Rng rng(11);
        code->perfect_correct(back.tableau(), b, rng);
        EXPECT_TRUE(code->block_in_codespace(back.tableau(), b))
            << code->name() << " Z@" << pos;
        EXPECT_EQ(back.tableau().expectation_pauli(
                      code->logical_x_op(code->n(), b)),
                  1.0)
            << code->name() << " Z@" << pos;
      }
    }
  }
}

TEST(CssCode, SteaneLogicalHOnZeroGivesPlus) {
  const auto& code = steane_code();
  const auto b = CodeBlock::contiguous(0, 7);
  Circuit c(7);
  code.append_encode_zero(c, b);
  code.append_logical_h(c, b);
  TabBackend back(7, Rng(1));
  circuit::execute(c, back);
  EXPECT_TRUE(code.block_in_codespace(back.tableau(), b));
  EXPECT_EQ(code.logical_z_expectation(back.tableau(), b), 0.0);
  EXPECT_EQ(back.tableau().expectation_pauli(code.logical_x_op(7, b)), 1.0);
}

TEST(CssCode, SuperpositionEncoderSpansTheSteaneZeroState) {
  // |0>_L of the Steane code is the uniform superposition over the span of
  // the three X-stabilizer masks — the pivot-form encoder must reproduce
  // it exactly.
  const auto& code = steane_code();
  const auto b = CodeBlock::contiguous(0, 7);
  std::vector<unsigned> masks;
  for (std::size_t row = 0; row < code.num_x_checks(); ++row)
    masks.push_back(code.x_check_mask(row));
  Circuit c(7);
  append_superposition_encoder(c, b, masks);
  SvBackend back(7, Rng(1));
  circuit::execute(c, back);
  const auto want = qsim::StateVector::from_amplitudes(
      Steane::encoded_amplitudes(1.0, 0.0));
  EXPECT_NEAR(back.state().fidelity(want), 1.0, 1e-10);
}

TEST(CssCode, ZRepairPlanCoversEverySyndrome) {
  // Steane is perfect: the one-hot single-position decode already reaches
  // every nonzero syndrome.
  EXPECT_TRUE(z_repair_plan(steane_code()).single_qubit_complete);

  // RM15 is not (16 of 1024 syndromes are single-qubit): the plan must be
  // an exact syndrome cover — H f(s) = s for EVERY s — with per-bit fanout
  // within the X-error correction radius, so a single corrupted classical
  // syndrome bit can never inject an uncorrectable burst.
  const CssCode& rm = rm15_code();
  const auto plan = z_repair_plan(rm);
  EXPECT_FALSE(plan.single_qubit_complete);
  ASSERT_EQ(plan.positions.size(), rm.num_z_checks());
  ASSERT_EQ(plan.tags.size(), rm.num_z_checks());
  EXPECT_LE(plan.max_bit_fanout, 3u);
  for (unsigned s = 0; s < (1u << rm.num_z_checks()); ++s) {
    unsigned pattern = 0;
    for (std::size_t j = 0; j < plan.positions.size(); ++j)
      if (std::popcount(plan.tags[j] & s) & 1)
        pattern |= 1u << plan.positions[j];
    EXPECT_EQ(rm.z_syndrome_of_word(pattern), s);
  }
}

TEST(CssCode, EvenPairSyndromesAreDisjointFromOddErrorSyndromes) {
  // Perfect codes leave the N gate's OR compensation alone.
  EXPECT_TRUE(z_repair_even_pair_syndromes(steane_code()).empty());

  // RM15: the pair syndromes are exactly the even-weight bursts a single
  // classical fault in the burst repair can leave on a block.  The N gate
  // cancels OR(s) on them, which is only sound if no odd-weight
  // correctable error shares a syndrome with a pair — check against all
  // weight-1 and weight-3 errors.
  const CssCode& rm = rm15_code();
  const auto pairs = z_repair_even_pair_syndromes(rm);
  ASSERT_FALSE(pairs.empty());
  EXPECT_TRUE(std::is_sorted(pairs.begin(), pairs.end()));
  for (const unsigned s : pairs) {
    EXPECT_NE(s, 0u);
    for (std::size_t p = 0; p < rm.n(); ++p)
      EXPECT_NE(rm.z_syndrome_of_x_error(p), s);
    for (std::size_t p1 = 0; p1 < rm.n(); ++p1)
      for (std::size_t p2 = p1 + 1; p2 < rm.n(); ++p2)
        for (std::size_t p3 = p2 + 1; p3 < rm.n(); ++p3)
          ASSERT_NE(rm.z_syndrome_of_word((1u << p1) | (1u << p2) | (1u << p3)),
                    s);
  }
}

TEST(CssCode, PerfectCorrectRepairsTripleXErrorsOnRm15) {
  // RM15's X-distance is 7, so the ideal decoder must repair any weight-3
  // X error — the residue class the recovery gadget's repair machinery is
  // allowed to leave on the data after one internal fault.
  const CssCode& rm = rm15_code();
  const auto b = CodeBlock::contiguous(0, rm.n());
  for (std::size_t p1 = 0; p1 < rm.n(); ++p1)
    for (std::size_t p2 = p1 + 1; p2 < rm.n(); ++p2)
      for (std::size_t p3 = p2 + 1; p3 < rm.n(); ++p3) {
        Circuit c(rm.n());
        rm.append_encode_zero(c, b);
        c.x(b.q[p1]);
        c.x(b.q[p2]);
        c.x(b.q[p3]);
        TabBackend back(rm.n(), Rng(7));
        circuit::execute(c, back);
        Rng rng(11);
        rm.perfect_correct(back.tableau(), b, rng);
        ASSERT_EQ(rm.logical_z_expectation(back.tableau(), b), 1.0)
            << "X@" << p1 << "," << p2 << "," << p3;
      }
}

TEST(CssCode, CodeBlockConversionsRoundTrip) {
  const auto b = CodeBlock::contiguous(3, 7);
  const Block s = b.steane();
  EXPECT_EQ(s.q[0], 3u);
  EXPECT_EQ(s.q[6], 9u);
  EXPECT_EQ(CodeBlock::of(s).q, b.q);
  const auto r = CodeBlock::contiguous(1, 15);
  EXPECT_EQ(CodeBlock::of(r.rm15()).q, r.q);
}

}  // namespace
}  // namespace eqc::codes
