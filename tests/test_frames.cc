// Frame-vs-trial bit-exactness suite.
//
// The frame engine's contract is not statistical agreement but BYTE
// IDENTITY: for every (gadget, code, repetition, seed) configuration the
// 64-lane frame driver must fold exactly the same FailureCounter — and
// therefore exactly the same report JSON — as the per-trial TabBackend
// driver, for any jobs value and across any checkpoint/resume split.
// These tests pin that contract, cross-check the word-level failure
// oracle against the per-lane generic one, verify the packed frame
// planes against PauliString conjugation gate by gate, and prove the
// differential layer can actually see a planted propagation bug.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/experiments.h"
#include "analysis/fault_enum.h"
#include "analysis/frame_oracle.h"
#include "circuit/circuit.h"
#include "circuit/execute.h"
#include "circuit/tab_backend.h"
#include "codes/css_code.h"
#include "common/rng.h"
#include "common/stats.h"
#include "frame/driver.h"
#include "frame/frames.h"
#include "ftqc/ft_tgate.h"
#include "ftqc/ft_toffoli.h"
#include "ftqc/layout.h"
#include "ftqc/ngate.h"
#include "noise/model.h"
#include "noise/monte_carlo.h"
#include "pauli/pauli_string.h"

namespace eqc {
namespace {

using analysis::BuiltGadget;
using analysis::FaultExperiment;
using analysis::GadgetSpec;
using circuit::Circuit;
using circuit::TabBackend;
using pauli::Pauli;
using pauli::PauliString;

// The canonical per-trial Monte-Carlo lambda (identical to the one in
// analysis/matrix.cc and serve/jobs.cc) — the baseline every frame run
// must reproduce bit for bit.
FailureCounter per_trial_counter(const FaultExperiment& ex,
                                 const noise::NoiseModel& model,
                                 std::uint64_t trials, std::uint64_t seed,
                                 unsigned jobs = 1) {
  return noise::run_trials_indexed(
      trials, seed,
      [&ex, model](std::uint64_t, Rng& rng) {
        TabBackend backend(ex.num_qubits, rng.split());
        circuit::execute(ex.prep, backend);
        noise::StochasticInjector injector(model, rng.split());
        const auto r = circuit::execute(ex.gadget, backend, &injector);
        return ex.failed(backend, r);
      },
      jobs);
}

FailureCounter frame_counter(const std::string& gadget,
                             const BuiltGadget& built,
                             const noise::NoiseModel& model,
                             std::uint64_t trials, std::uint64_t seed,
                             unsigned jobs = 1) {
  const frame::FrameProgram prog = analysis::make_frame_program(built.ex);
  const frame::BatchOracle oracle =
      analysis::make_frame_oracle(gadget, built, prog);
  return frame::run_trials(prog, model, trials, seed, oracle, jobs);
}

void expect_byte_identical(const FailureCounter& want,
                           const FailureCounter& got,
                           const std::string& label) {
  EXPECT_EQ(want.trials, got.trials) << label;
  EXPECT_EQ(want.failures, got.failures) << label;
  EXPECT_EQ(want.stopped_early, got.stopped_early) << label;
  EXPECT_EQ(want.to_json_value().dump(), got.to_json_value().dump()) << label;
}

// --- the named-gadget equivalence grid -------------------------------------

// Every named gadget x {steane, rm15} x k in {1, 2}: the frame driver's
// counter and its JSON serialization are byte-identical to the per-trial
// driver's, on a pinned seed, under the paper noise model.
TEST(FrameEquiv, NamedGadgetGridBitExact) {
  const std::uint64_t kTrials = 192;
  std::uint64_t seed = 40;
  for (const std::string gadget : {"ngate", "recovery", "recovery-measured"}) {
    for (const std::string code : {"steane", "rm15"}) {
      for (int k : {1, 2}) {
        GadgetSpec spec;
        spec.gadget = gadget;
        spec.scenario.code = code;
        spec.scenario.repetition_k = k;
        spec.seed = ++seed;
        const BuiltGadget built = analysis::build_gadget_experiment(spec);
        const auto model =
            analysis::scenario_noise_model(spec.scenario, 2e-3);
        const std::string label = gadget + "/" + code + "/k=" +
                                  std::to_string(k);
        const auto trials =
            per_trial_counter(built.ex, model, kTrials, spec.seed, 4);
        const auto frames =
            frame_counter(gadget, built, model, kTrials, spec.seed, 4);
        expect_byte_identical(trials, frames, label);
      }
    }
  }
}

// The backend RNG stream contract: a lane's post-run RNG state equals the
// per-trial backend's, so predicates that keep drawing from it (and
// predicates reading the measurement record) still agree bit for bit.
// The circuit mixes random and deterministic measurements and resets —
// every case of the frame interpreter's draw-accounting.
TEST(FrameEquiv, BackendRngStreamBitExact) {
  FaultExperiment ex;
  ex.num_qubits = 4;
  ex.seed = 11;
  Circuit prep(4);
  ex.prep = prep;
  Circuit g(4);
  g.h(1);
  g.measure_z(1);        // random: one bernoulli draw
  g.cnot(1, 2);
  g.measure_z(2);        // deterministic: no draw
  g.prep_z(1);           // deterministic reset (q1 collapsed)
  g.prep_x(3);           // deterministic reset + H
  g.h(3);
  g.measure_z(3);        // deterministic again after H H = I
  ex.gadget = g;
  ex.failed = [](TabBackend& b, const circuit::ExecResult& r) {
    // Draw from the post-run backend stream — only matches when the frame
    // engine consumed exactly the same number of draws per lane.
    const bool coin = b.rng().bernoulli(0.5);
    return coin ^ r.cbits[0] ^ r.cbits[1];
  };

  const auto model = noise::NoiseModel::paper_model(0.05);
  const frame::FrameProgram prog = analysis::make_frame_program(ex);
  const auto oracle = analysis::make_generic_frame_oracle(ex, prog);
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto want = per_trial_counter(ex, model, 512, seed);
    const auto got = frame::run_trials(prog, model, 512, seed, oracle);
    expect_byte_identical(want, got, "rng-stream seed=" +
                                         std::to_string(seed));
  }
}

// --- T gate and Toffoli -----------------------------------------------------

// T-gadget experiment on tableau-friendly inputs: data |1>_L, special
// |0>_L (the magic-state prep needs a physical T and is exercised on the
// state-vector backend elsewhere; the gadget's classically-controlled
// CSdg layer is the frame-interesting part).  Steane only: the gadget
// requires transversal S.
FaultExperiment build_tgate_experiment(int repetitions, std::uint64_t seed,
                                       bool uncorrected) {
  ftqc::Layout layout;
  const auto regs =
      ftqc::allocate_tgate_registers(layout, codes::steane_code(),
                                     repetitions);
  FaultExperiment ex;
  ex.num_qubits = layout.total();
  ex.seed = seed;
  Circuit prep(layout.total());
  codes::steane_code().append_encode_zero(prep, regs.data);
  codes::steane_code().append_logical_x(prep, regs.data);  // |1>_L
  codes::steane_code().append_encode_zero(prep, regs.special);
  ex.prep = prep;
  Circuit g(layout.total());
  ftqc::NGateOptions opt;
  opt.repetitions = repetitions;
  ftqc::append_ft_t_gadget(g, codes::steane_code(), regs, opt);
  ex.gadget = g;
  const codes::CodeBlock data = regs.data;
  if (uncorrected) {
    // No correction round: any surviving error — including the pure-Z
    // errors the perfect-correct predicate would erase — reads as a
    // failure, which keeps a dephasing-only run non-vacuous.
    ex.failed = [data](TabBackend& b, const circuit::ExecResult&) {
      return !codes::steane_code().block_in_codespace(b.tableau(), data) ||
             codes::steane_code().logical_z_expectation(b.tableau(), data) !=
                 -1.0;
    };
  } else {
    ex.failed = [data](TabBackend& b, const circuit::ExecResult&) {
      Rng r(3);
      codes::steane_code().perfect_correct(b.tableau(), data, r);
      return codes::steane_code().logical_z_expectation(b.tableau(), data) !=
             -1.0;
    };
  }
  return ex;
}

// Planted single faults through the T gadget: every sampled fault either
// reproduces run_with_faults' verdict exactly, or throws FrameUnsupported
// (an X-type deviation on a classically-controlled S whose target is not
// classical — the documented limit of the frame model, handled by the
// campaign engine's per-item fallback).
TEST(FrameEquiv, TGadgetPlantedMatchesPerTrial) {
  for (int k : {1, 2}) {
    const FaultExperiment ex = build_tgate_experiment(2 * k + 1, 5, false);
    const frame::FrameProgram prog = analysis::make_frame_program(ex);
    const auto oracle = analysis::make_generic_frame_oracle(ex, prog);
    const auto faults = analysis::enumerate_single_faults(ex);
    ASSERT_FALSE(faults.empty());
    const std::size_t stride = faults.size() / 120 + 1;
    std::size_t compared = 0, unsupported = 0;
    for (std::size_t i = 0; i < faults.size(); i += stride) {
      const auto& f = faults[i];
      frame::FrameBatch batch(prog);
      try {
        batch.run_planted({{frame::PlantedFault{f.ordinal, f.error}}});
      } catch (const frame::FrameUnsupported&) {
        ++unsupported;
        continue;
      }
      const bool frame_verdict = (oracle(batch) & 1) != 0;
      EXPECT_EQ(frame_verdict, analysis::run_with_faults(ex, {f}))
          << "k=" << k << " ordinal=" << f.ordinal << " "
          << f.error.to_string();
      ++compared;
    }
    // A healthy majority of faults is word-comparable; the rest exercise
    // the documented FrameUnsupported fallback (X-type deviations on the
    // classically-controlled CSdg layer with a non-classical data target).
    EXPECT_GT(compared, 60u) << "k=" << k;
    EXPECT_GT(unsupported, 0u) << "k=" << k;
  }
}

// Stochastic T gadget under pure dephasing: Z-type frames never trigger a
// CSdg deviation (no Hadamard in the gadget converts them to X), so the
// frame engine runs the full trial budget — and must match the per-trial
// driver with an uncorrected-codespace predicate that makes Z errors
// visible.
TEST(FrameEquiv, TGadgetStochasticPhaseFlipBitExact) {
  for (int k : {1, 2}) {
    const FaultExperiment ex =
        build_tgate_experiment(2 * k + 1, 6 + static_cast<std::uint64_t>(k),
                               true);
    const auto model = noise::NoiseModel::phase_flip(3e-3);
    const frame::FrameProgram prog = analysis::make_frame_program(ex);
    const auto oracle = analysis::make_generic_frame_oracle(ex, prog);
    const auto want = per_trial_counter(ex, model, 192, 21);
    const auto got = frame::run_trials(prog, model, 192, 21, oracle, 2);
    expect_byte_identical(want, got, "tgate-phaseflip k=" +
                                         std::to_string(k));
    EXPECT_GT(got.failures, 0u) << "k=" << k
                                << ": test should not be vacuous";
  }
}

// Coded-Toffoli experiment on tableau-friendly inputs: z = |+>_L and
// c = |+>_L, so CNOT_L(z -> c) does not entangle them, H_L z lands in
// |0>_L, the deferred measurement of z is deterministic, and every
// CCZ/CCX lowering has a classical pivot.  The predicate compares the
// corrected logical readout of all three output blocks against the
// fault-free reference values captured at build time.
FaultExperiment build_toffoli_experiment(int repetitions,
                                         std::uint64_t seed) {
  ftqc::Layout layout;
  const auto regs = ftqc::allocate_coded_toffoli_registers(
      layout, codes::steane_code(), repetitions);
  FaultExperiment ex;
  ex.num_qubits = layout.total();
  ex.seed = seed;
  Circuit prep(layout.total());
  for (const codes::CodeBlock* b : {&regs.a, &regs.b, &regs.x})
    codes::steane_code().append_encode_zero(prep, *b);
  codes::steane_code().append_encode_plus(prep, regs.c);
  codes::steane_code().append_encode_zero(prep, regs.y);
  codes::steane_code().append_logical_x(prep, regs.y);  // y = |1>_L
  codes::steane_code().append_encode_plus(prep, regs.z);
  ex.prep = prep;
  Circuit g(layout.total());
  ftqc::NGateOptions opt;
  opt.repetitions = repetitions;
  ftqc::append_coded_toffoli_gadget(g, codes::steane_code(), regs, opt);
  ex.gadget = g;

  // Fault-free reference readout of the output blocks.
  const std::vector<codes::CodeBlock> outs = {regs.a, regs.b, regs.c};
  std::vector<double> want;
  {
    TabBackend b(layout.total(), Rng(seed));
    circuit::execute(ex.prep, b);
    circuit::execute(ex.gadget, b);
    Rng pr(3);
    for (const auto& blk : outs) {
      codes::steane_code().perfect_correct(b.tableau(), blk, pr);
      EXPECT_TRUE(codes::steane_code().block_in_codespace(b.tableau(), blk));
      want.push_back(
          codes::steane_code().logical_z_expectation(b.tableau(), blk));
    }
  }
  ex.failed = [outs, want](TabBackend& b, const circuit::ExecResult&) {
    Rng pr(3);
    for (std::size_t i = 0; i < outs.size(); ++i) {
      codes::steane_code().perfect_correct(b.tableau(), outs[i], pr);
      if (!codes::steane_code().block_in_codespace(b.tableau(), outs[i]))
        return true;
      if (codes::steane_code().logical_z_expectation(b.tableau(), outs[i]) !=
          want[i])
        return true;
    }
    return false;
  };
  return ex;
}

TEST(FrameEquiv, ToffoliPlantedMatchesPerTrial) {
  const FaultExperiment ex = build_toffoli_experiment(3, 9);
  const frame::FrameProgram prog = analysis::make_frame_program(ex);
  const auto oracle = analysis::make_generic_frame_oracle(ex, prog);
  const auto faults = analysis::enumerate_single_faults(ex);
  ASSERT_FALSE(faults.empty());
  const std::size_t stride = faults.size() / 90 + 1;
  std::size_t compared = 0, unsupported = 0;
  for (std::size_t i = 0; i < faults.size(); i += stride) {
    const auto& f = faults[i];
    frame::FrameBatch batch(prog);
    try {
      batch.run_planted({{frame::PlantedFault{f.ordinal, f.error}}});
    } catch (const frame::FrameUnsupported&) {
      ++unsupported;
      continue;
    }
    const bool frame_verdict = (oracle(batch) & 1) != 0;
    EXPECT_EQ(frame_verdict, analysis::run_with_faults(ex, {f}))
        << "ordinal=" << f.ordinal << " " << f.error.to_string();
    ++compared;
  }
  EXPECT_GT(compared, 50u);
}

// --- word oracle vs generic oracle -----------------------------------------

// On identical executed batches the closed-form word oracle must produce
// exactly the per-lane generic oracle's failure word (the generic one
// replays ex.failed on a frame-adjusted tableau copy, so it is exact by
// construction).
TEST(FrameOracle, WordMatchesGeneric) {
  std::uint64_t seed = 70;
  for (const std::string gadget : {"ngate", "recovery"}) {
    for (const std::string code : {"steane", "rm15"}) {
      GadgetSpec spec;
      spec.gadget = gadget;
      spec.scenario.code = code;
      spec.seed = ++seed;
      const BuiltGadget built = analysis::build_gadget_experiment(spec);
      const auto model = analysis::scenario_noise_model(spec.scenario, 1e-2);
      const frame::FrameProgram prog = analysis::make_frame_program(built.ex);
      const auto word = analysis::make_frame_oracle(gadget, built, prog);
      const auto generic =
          analysis::make_generic_frame_oracle(built.ex, prog);
      for (unsigned batch_i = 0; batch_i < 4; ++batch_i) {
        frame::FrameBatch batch(prog);
        batch.run_stochastic(model, spec.seed, batch_i * 64, 64);
        EXPECT_EQ(word(batch), generic(batch))
            << gadget << "/" << code << " batch " << batch_i;
      }
      // Partially filled batch: bits above count() must agree after the
      // active-mask, and unused lanes must not leak into the verdict.
      frame::FrameBatch tail(prog);
      tail.run_stochastic(model, spec.seed, 1000, 17);
      EXPECT_EQ(word(tail) & tail.active_mask(),
                generic(tail) & tail.active_mask())
          << gadget << "/" << code << " tail";
    }
  }
}

// --- packed-frame property tests -------------------------------------------

// Pack/unpack round trip: planted per-lane Paulis land on exactly the
// right (fx, fz) bit positions, and lane_frame() reads them back.
TEST(FrameProp, PackUnpackRoundTrip) {
  const std::size_t n = 6;
  Circuit prep(n);
  Circuit g(n);
  for (std::uint32_t q = 0; q < n; ++q) g.x(q);  // one site per qubit
  FaultExperiment ex;
  ex.num_qubits = n;
  ex.prep = prep;
  ex.gadget = g;
  ex.seed = 1;
  const frame::FrameProgram prog = analysis::make_frame_program(ex);
  ASSERT_EQ(prog.num_sites(), n);

  Rng rng(1234);
  std::vector<PauliString> lanes_want;
  std::vector<std::vector<frame::PlantedFault>> lanes;
  for (unsigned l = 0; l < 64; ++l) {
    const PauliString p = PauliString::random(n, rng);
    std::vector<frame::PlantedFault> plant;
    for (std::size_t q = 0; q < n; ++q)
      if (p.get(q) != Pauli::I)
        plant.push_back(
            frame::PlantedFault{q, PauliString::single(n, q, p.get(q))});
    lanes_want.push_back(p);
    lanes.push_back(std::move(plant));
  }
  frame::FrameBatch batch(prog);
  batch.run_planted(lanes);
  EXPECT_EQ(batch.active_mask(), ~std::uint64_t{0});
  for (unsigned l = 0; l < 64; ++l) {
    const PauliString got = batch.lane_frame(l);
    for (std::size_t q = 0; q < n; ++q) {
      EXPECT_EQ(got.x_bit(q), lanes_want[l].x_bit(q)) << "lane " << l;
      EXPECT_EQ(got.z_bit(q), lanes_want[l].z_bit(q)) << "lane " << l;
      EXPECT_EQ((batch.fx(q) >> l) & 1, lanes_want[l].x_bit(q) ? 1u : 0u);
      EXPECT_EQ((batch.fz(q) >> l) & 1, lanes_want[l].z_bit(q) ? 1u : 0u);
    }
  }
}

// Word-level frame propagation vs PauliString conjugation, exhaustively
// over all 16 two-qubit Paulis for every plane-mixing gate (and the
// no-op rule for X/Y/Z, which only change the frame's phase).
TEST(FrameProp, GateConjugationMatchesPauliString) {
  struct GateCase {
    const char* name;
    void (*emit)(Circuit&);
    void (*conj)(PauliString&);
  };
  const GateCase cases[] = {
      {"h0", [](Circuit& c) { c.h(0); },
       [](PauliString& p) { p.conjugate_h(0); }},
      {"s0", [](Circuit& c) { c.s(0); },
       [](PauliString& p) { p.conjugate_s(0); }},
      {"sdg0", [](Circuit& c) { c.sdg(0); },
       [](PauliString& p) { p.conjugate_sdg(0); }},
      {"x0", [](Circuit& c) { c.x(0); },
       [](PauliString& p) { p.conjugate_x(0); }},
      {"y0", [](Circuit& c) { c.y(0); },
       [](PauliString& p) { p.conjugate_y(0); }},
      {"z0", [](Circuit& c) { c.z(0); },
       [](PauliString& p) { p.conjugate_z(0); }},
      {"cnot01", [](Circuit& c) { c.cnot(0, 1); },
       [](PauliString& p) { p.conjugate_cnot(0, 1); }},
      {"cnot10", [](Circuit& c) { c.cnot(1, 0); },
       [](PauliString& p) { p.conjugate_cnot(1, 0); }},
      {"cz01", [](Circuit& c) { c.cz(0, 1); },
       [](PauliString& p) { p.conjugate_cz(0, 1); }},
      {"swap01", [](Circuit& c) { c.swap(0, 1); },
       [](PauliString& p) { p.conjugate_swap(0, 1); }},
  };
  for (const auto& gc : cases) {
    Circuit prep(2);
    Circuit g(2);
    g.x(0);  // site 0 (injection point, qubit 0)
    g.x(1);  // site 1 (injection point, qubit 1)
    gc.emit(g);
    FaultExperiment ex;
    ex.num_qubits = 2;
    ex.prep = prep;
    ex.gadget = g;
    ex.seed = 1;
    const frame::FrameProgram prog = analysis::make_frame_program(ex);

    // 16 lanes, one per 2-qubit Pauli.
    std::vector<std::vector<frame::PlantedFault>> lanes;
    std::vector<PauliString> want;
    for (int p0 = 0; p0 < 4; ++p0) {
      for (int p1 = 0; p1 < 4; ++p1) {
        std::vector<frame::PlantedFault> plant;
        PauliString p(2);
        p.set(0, static_cast<Pauli>(p0));
        p.set(1, static_cast<Pauli>(p1));
        if (p0 != 0)
          plant.push_back(frame::PlantedFault{
              0, PauliString::single(2, 0, static_cast<Pauli>(p0))});
        if (p1 != 0)
          plant.push_back(frame::PlantedFault{
              1, PauliString::single(2, 1, static_cast<Pauli>(p1))});
        gc.conj(p);
        lanes.push_back(std::move(plant));
        want.push_back(p);
      }
    }
    frame::FrameBatch batch(prog);
    batch.run_planted(lanes);
    for (unsigned l = 0; l < want.size(); ++l) {
      const PauliString got = batch.lane_frame(l);
      for (std::size_t q = 0; q < 2; ++q) {
        EXPECT_EQ(got.x_bit(q), want[l].x_bit(q))
            << gc.name << " lane " << l << " q" << q;
        EXPECT_EQ(got.z_bit(q), want[l].z_bit(q))
            << gc.name << " lane " << l << " q" << q;
      }
    }
  }
}

// The packed classical record agrees with the per-lane record, and the
// word-level majority the N-gate oracle computes agrees with a scalar
// majority over the unpacked bits.
TEST(FrameProp, PackedCbitsAndMajorityMatchScalar) {
  GadgetSpec spec;  // ngate / steane / k = 1
  spec.seed = 91;
  const BuiltGadget built = analysis::build_gadget_experiment(spec);
  const frame::FrameProgram prog = analysis::make_frame_program(built.ex);
  const auto word = analysis::make_frame_oracle(spec.gadget, built, prog);
  const auto model = noise::NoiseModel::paper_model(1e-2);
  frame::FrameBatch batch(prog);
  batch.run_stochastic(model, spec.seed, 0, 64);

  // cbits_word vs lane_cbits.
  for (std::uint32_t slot = 0;
       slot < static_cast<std::uint32_t>(prog.num_gadget_cbits()); ++slot) {
    const std::uint64_t w = batch.cbits_word(slot);
    for (unsigned l = 0; l < 64; ++l)
      EXPECT_EQ((w >> l) & 1, batch.lane_cbits(l)[slot] ? 1u : 0u)
          << "slot " << slot << " lane " << l;
  }

  // The word verdict equals the exact per-lane replay...
  const std::uint64_t verdict = word(batch);
  const auto generic =
      analysis::make_generic_frame_oracle(built.ex, prog);
  EXPECT_EQ(verdict, generic(batch));

  // ...and its packed-popcount majority component agrees with a scalar
  // majority over the unpacked out-register bits (the reference run puts
  // |1>_L through the gate, so lane l's copied bit on out qubit q is the
  // reference value XOR the lane's X-frame bit; a failed majority is
  // sufficient for a failure verdict).
  TabBackend ref(prog.num_qubits(), Rng(spec.seed));
  {
    circuit::execute(built.ex.prep, ref);
    circuit::execute(built.ex.gadget, ref);
  }
  std::size_t majority_failures = 0;
  for (unsigned l = 0; l < 64; ++l) {
    std::size_t ones = 0;
    const PauliString f = batch.lane_frame(l);
    for (auto q : built.ngate_out) {
      bool v = ref.tableau().deterministic_z_value(q);
      if (f.x_bit(q)) v = !v;
      if (v) ++ones;
    }
    if (2 * ones <= built.ngate_out.size()) {
      ++majority_failures;
      EXPECT_EQ((verdict >> l) & 1, 1u) << "lane " << l;
    }
  }
  // p = 1e-2 over 64 lanes flips enough copies that the majority clause
  // is actually exercised.
  EXPECT_GT(majority_failures, 0u);
}

// --- scheduling-invariance and resume --------------------------------------

// jobs = 1 / 4 / 0 (hardware) and the per-trial driver all fold the same
// bytes.
TEST(FrameEquiv, JobsByteIdentity) {
  GadgetSpec spec;  // ngate / steane / k = 1
  spec.seed = 123;
  const BuiltGadget built = analysis::build_gadget_experiment(spec);
  const auto model = noise::NoiseModel::paper_model(2e-3);
  const frame::FrameProgram prog = analysis::make_frame_program(built.ex);
  const auto oracle = analysis::make_frame_oracle(spec.gadget, built, prog);
  const std::uint64_t kTrials = 1024;
  const auto serial =
      frame::run_trials(prog, model, kTrials, spec.seed, oracle, 1);
  const auto par4 =
      frame::run_trials(prog, model, kTrials, spec.seed, oracle, 4);
  const auto hw =
      frame::run_trials(prog, model, kTrials, spec.seed, oracle, 0);
  const auto trials =
      per_trial_counter(built.ex, model, kTrials, spec.seed, 4);
  expect_byte_identical(serial, par4, "jobs=4");
  expect_byte_identical(serial, hw, "jobs=0");
  expect_byte_identical(trials, serial, "per-trial vs frames");
}

// A run stopped mid-flight and resumed from its checkpoint folds to the
// same bytes as an uninterrupted run — across engines and jobs values.
TEST(FrameEquiv, CheckpointResumeByteIdentity) {
  GadgetSpec spec;  // ngate / steane / k = 1
  spec.seed = 321;
  const BuiltGadget built = analysis::build_gadget_experiment(spec);
  const auto model = noise::NoiseModel::paper_model(2e-3);
  const frame::FrameProgram prog = analysis::make_frame_program(built.ex);
  const auto oracle = analysis::make_frame_oracle(spec.gadget, built, prog);
  const std::uint64_t kTrials = 600;

  const auto full =
      frame::run_trials(prog, model, kTrials, spec.seed, oracle, 1);

  std::atomic<bool> stop{false};
  noise::McResumableOptions first;
  first.block = 128;
  first.on_block = [&stop](const noise::McProgress& pr) {
    if (pr.next_index >= 128) stop.store(true);
  };
  first.stop = &stop;
  const auto r1 = frame::run_trials_resumable(prog, model, kTrials,
                                              spec.seed, oracle, first);
  ASSERT_FALSE(r1.complete);
  ASSERT_LT(r1.next_index, kTrials);
  ASSERT_GT(r1.next_index, 0u);

  noise::McResumableOptions second;
  second.start_index = r1.next_index;
  second.initial = r1.counter;
  second.jobs = 3;
  const auto r2 = frame::run_trials_resumable(prog, model, kTrials,
                                              spec.seed, oracle, second);
  ASSERT_TRUE(r2.complete);
  EXPECT_EQ(r2.next_index, kTrials);
  expect_byte_identical(full, r2.counter, "stopped+resumed vs full");

  // Cross-engine: the per-trial resumable driver folds the same bytes too.
  const auto& ex = built.ex;
  const auto per_trial = noise::run_trials_resumable(
      kTrials, spec.seed,
      [&ex, model](std::uint64_t, Rng& rng) {
        TabBackend backend(ex.num_qubits, rng.split());
        circuit::execute(ex.prep, backend);
        noise::StochasticInjector injector(model, rng.split());
        const auto r = circuit::execute(ex.gadget, backend, &injector);
        return ex.failed(backend, r);
      },
      noise::McResumableOptions{});
  expect_byte_identical(per_trial.counter, r2.counter,
                        "per-trial resumable vs frames resumed");
}

// --- planted-fault replay ---------------------------------------------------

// 64 independent fault sets replayed in ONE batch give the same verdicts
// as analysis::run_with_faults one set at a time (single faults and
// pairs, ngate and recovery).
TEST(FramePlanted, MultiLaneMatchesRunWithFaults) {
  std::uint64_t seed = 200;
  for (const std::string gadget : {"ngate", "recovery"}) {
    GadgetSpec spec;
    spec.gadget = gadget;
    spec.seed = ++seed;
    const BuiltGadget built = analysis::build_gadget_experiment(spec);
    const frame::FrameProgram prog = analysis::make_frame_program(built.ex);
    const auto oracle =
        analysis::make_frame_oracle(gadget, built, prog);
    const auto faults = analysis::enumerate_single_faults(built.ex);
    ASSERT_GT(faults.size(), 64u);

    Rng rng(7);
    std::vector<std::vector<analysis::Fault>> sets;
    for (unsigned l = 0; l < 64; ++l) {
      std::vector<analysis::Fault> set = {
          faults[rng.below(faults.size())]};
      if (l % 2 == 1) {  // odd lanes carry a fault pair
        auto second = faults[rng.below(faults.size())];
        if (second.ordinal != set[0].ordinal) set.push_back(second);
      }
      sets.push_back(std::move(set));
    }
    std::vector<std::vector<frame::PlantedFault>> lanes;
    for (const auto& set : sets) {
      std::vector<frame::PlantedFault> lane;
      for (const auto& f : set)
        lane.push_back(frame::PlantedFault{f.ordinal, f.error});
      lanes.push_back(std::move(lane));
    }
    frame::FrameBatch batch(prog);
    batch.run_planted(lanes);
    const std::uint64_t verdict = oracle(batch);
    for (unsigned l = 0; l < 64; ++l) {
      EXPECT_EQ((verdict >> l) & 1,
                analysis::run_with_faults(built.ex, sets[l]) ? 1u : 0u)
          << gadget << " lane " << l;
    }
    // Planted lanes share the reference backend stream (compare by
    // drawing: equal states produce equal outputs).
    for (unsigned l = 0; l < 8; ++l) {
      Rng lane_rng = batch.lane_backend_rng(l);
      Rng ref_rng = prog.reference_rng_after();
      for (int d = 0; d < 4; ++d) EXPECT_EQ(lane_rng(), ref_rng());
    }
  }
}

// --- differential-layer self-tests -----------------------------------------

// The planted CNOT-swap bug visibly corrupts propagation: the differential
// layer is capable of catching a real frame bug.
TEST(FrameBug, CnotSwappedDiverges) {
  Circuit prep(2);
  Circuit g(2);
  g.x(0);  // site 0: injection point on the control
  g.cnot(0, 1);
  FaultExperiment ex;
  ex.num_qubits = 2;
  ex.prep = prep;
  ex.gadget = g;
  ex.seed = 1;

  frame::FrameProgram good = analysis::make_frame_program(ex);
  frame::FrameProgram bad = analysis::make_frame_program(ex);
  bad.set_planted_bug(frame::FrameBug::CnotSwapped);
  ASSERT_EQ(bad.planted_bug(), frame::FrameBug::CnotSwapped);

  const std::vector<std::vector<frame::PlantedFault>> lanes = {
      {frame::PlantedFault{0, PauliString::single(2, 0, Pauli::X)}}};
  frame::FrameBatch gb(good);
  gb.run_planted(lanes);
  frame::FrameBatch bb(bad);
  bb.run_planted(lanes);

  // Correct rule: X on the control copies onto the target.
  EXPECT_TRUE(gb.lane_frame(0).x_bit(0));
  EXPECT_TRUE(gb.lane_frame(0).x_bit(1));
  // Swapped rule: the X stays on the control only.
  EXPECT_TRUE(bb.lane_frame(0).x_bit(0));
  EXPECT_FALSE(bb.lane_frame(0).x_bit(1));
}

// A classically-controlled S whose control deviates while the target is
// not classical throws FrameUnsupported — and only when a lane actually
// deviates.
TEST(FrameBug, UnsupportedDeviationThrows) {
  Circuit prep(2);
  prep.h(0);  // target in |+>: not classical
  Circuit g(2);
  g.x(1);         // site 0: injection point on the control
  g.cs(1, 0);     // control |1> classical in the reference -> lowered
  FaultExperiment ex;
  ex.num_qubits = 2;
  ex.prep = prep;
  ex.gadget = g;
  ex.seed = 1;
  const frame::FrameProgram prog = analysis::make_frame_program(ex);

  // No deviation: fine.  Z-type deviation: absorbed.  X-type deviation on
  // the control with a non-classical target: unsupported.
  frame::FrameBatch clean(prog);
  EXPECT_NO_THROW(clean.run_planted({{}}));
  frame::FrameBatch zdev(prog);
  EXPECT_NO_THROW(zdev.run_planted(
      {{frame::PlantedFault{0, PauliString::single(2, 1, Pauli::Z)}}}));
  frame::FrameBatch xdev(prog);
  EXPECT_THROW(xdev.run_planted({{frame::PlantedFault{
                   0, PauliString::single(2, 1, Pauli::X)}}}),
               frame::FrameUnsupported);
}

}  // namespace
}  // namespace eqc
