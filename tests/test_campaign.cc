// Tests for the fault-injection campaign engine: determinism under
// parallelism, checkpoint/resume, counterexample shrinking, replay
// artifacts, chaos mode, invariant tripwires and the combinatorics
// underneath.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "analysis/campaign.h"
#include "analysis/experiments.h"
#include "analysis/fault_enum.h"
#include "codes/steane.h"
#include "common/assert.h"
#include "common/checkpoint.h"
#include "ftqc/layout.h"
#include "ftqc/ngate.h"
#include "ftqc/recovery.h"
#include "noise/model.h"

namespace eqc::analysis {
namespace {

using circuit::Circuit;
using codes::Block;
using codes::Steane;

// The Fig. 1 N-gate fault experiment (mirrors test_analysis.cc).
FaultExperiment make_ngate_experiment(bool one, int repetitions,
                                      bool syndrome_check) {
  ftqc::Layout layout;
  const Block source = layout.steane_block();
  auto anc = ftqc::allocate_ngate_ancillas(layout, repetitions);
  const auto out = layout.reg(7);

  FaultExperiment ex;
  ex.num_qubits = layout.total();
  ex.prep = Circuit(layout.total());
  Steane::append_encode_zero(ex.prep, source);
  if (one) Steane::append_logical_x(ex.prep, source);
  ex.gadget = Circuit(layout.total());
  ftqc::NGateOptions opt;
  opt.repetitions = repetitions;
  opt.syndrome_check = syndrome_check;
  ftqc::append_ngate(ex.gadget, source, out, anc, opt);

  ex.failed = [out, source, one](circuit::TabBackend& backend,
                                 const circuit::ExecResult&) {
    int ones = 0;
    for (auto q : out)
      ones += backend.tableau().deterministic_z_value(q) ? 1 : 0;
    const bool decoded = 2 * ones > static_cast<int>(out.size());
    if (decoded != one) return true;
    Rng rng(3);
    Steane::perfect_correct(backend.tableau(), source, rng);
    return Steane::logical_z_expectation(backend.tableau(), source) !=
           (one ? -1.0 : 1.0);
  };
  return ex;
}

// A scratch file that cleans up after itself.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name) {
    path = ::testing::TempDir() + name;
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

// --- combinatorics ----------------------------------------------------------

TEST(Campaign, BinomialOrMaxMatchesSmallCases) {
  EXPECT_EQ(binomial_or_max(0, 0), 1u);
  EXPECT_EQ(binomial_or_max(5, 0), 1u);
  EXPECT_EQ(binomial_or_max(5, 6), 0u);
  EXPECT_EQ(binomial_or_max(5, 2), 10u);
  EXPECT_EQ(binomial_or_max(10, 3), 120u);
  EXPECT_EQ(binomial_or_max(52, 5), 2598960u);
  // Symmetric and saturating.
  EXPECT_EQ(binomial_or_max(60, 30), binomial_or_max(60, 30));
  EXPECT_EQ(binomial_or_max(1000, 500), UINT64_MAX);
}

TEST(Campaign, CombinationUnrankIsABijectionInColexOrder) {
  const std::uint64_t n = 7;
  const std::size_t k = 3;
  const std::uint64_t total = binomial_or_max(n, k);
  std::set<std::vector<std::uint32_t>> seen;
  std::vector<std::uint32_t> prev;
  for (std::uint64_t r = 0; r < total; ++r) {
    const auto combo = combination_unrank(r, n, k);
    ASSERT_EQ(combo.size(), k);
    // Strictly ascending members, all in range.
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_LT(combo[i], n);
      if (i > 0) {
        EXPECT_LT(combo[i - 1], combo[i]);
      }
    }
    // Colex order: ranks sort by reversed-member lexicographic order.
    if (!prev.empty()) {
      std::vector<std::uint32_t> a(prev.rbegin(), prev.rend());
      std::vector<std::uint32_t> b(combo.rbegin(), combo.rend());
      EXPECT_LT(a, b);
    }
    prev = combo;
    seen.insert(combo);
  }
  EXPECT_EQ(seen.size(), total);  // bijection
}

// --- determinism under parallelism ------------------------------------------

TEST(Campaign, ParallelReportIsByteIdenticalToSerial) {
  const auto ex = make_ngate_experiment(true, 3, true);
  CampaignConfig cfg;
  cfg.mode = CampaignMode::KFault;
  cfg.k = 2;
  cfg.budget = 200;
  cfg.sample_seed = 7;

  cfg.jobs = 1;
  const auto serial = run_campaign(ex, cfg);
  cfg.jobs = 4;
  const auto parallel = run_campaign(ex, cfg);

  EXPECT_GT(serial.sets_tested, 0u);
  EXPECT_TRUE(serial.complete);
  EXPECT_EQ(serial.to_json(), parallel.to_json());
}

TEST(Campaign, ChaosModeIsDeterministicAcrossJobs) {
  const auto ex = make_ngate_experiment(true, 3, true);
  CampaignConfig cfg;
  cfg.mode = CampaignMode::Chaos;
  cfg.budget = 150;
  cfg.chaos_model = noise::NoiseModel::paper_model(0.01);
  cfg.sample_seed = 21;
  cfg.shrink = false;  // chaos sets can be large; keep the test fast

  cfg.jobs = 1;
  const auto serial = run_campaign(ex, cfg);
  cfg.jobs = 3;
  const auto parallel = run_campaign(ex, cfg);

  EXPECT_EQ(serial.sets_tested, 150u);
  EXPECT_EQ(serial.to_json(), parallel.to_json());
}

// --- checkpoint / resume ----------------------------------------------------

TEST(Campaign, CheckpointKillResumeReachesTheSameReport) {
  const auto ex = make_ngate_experiment(true, 3, true);
  CampaignConfig cfg;
  cfg.mode = CampaignMode::KFault;
  cfg.k = 2;
  cfg.budget = 160;
  cfg.sample_seed = 11;
  cfg.jobs = 2;

  // Reference: one uninterrupted run (no checkpointing involved).
  const auto reference = run_campaign(ex, cfg);
  ASSERT_TRUE(reference.complete);

  // Killed run: stop after 50 items, then resume twice.
  TempFile ck("campaign_ck.json");
  cfg.checkpoint_path = ck.path;
  cfg.checkpoint_every = 16;
  cfg.max_items_this_run = 50;
  const auto killed = run_campaign(ex, cfg);
  EXPECT_FALSE(killed.complete);
  EXPECT_LE(killed.sets_tested, 50u);

  cfg.resume = true;
  cfg.max_items_this_run = 60;
  const auto middle = run_campaign(ex, cfg);
  EXPECT_FALSE(middle.complete);
  EXPECT_GT(middle.sets_tested, killed.sets_tested);

  cfg.max_items_this_run = 0;  // run to completion
  const auto resumed = run_campaign(ex, cfg);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.to_json(), reference.to_json());
}

TEST(Campaign, ResumeRejectsAMismatchedCheckpoint) {
  const auto ex = make_ngate_experiment(true, 3, true);
  CampaignConfig cfg;
  cfg.k = 2;
  cfg.budget = 40;
  cfg.jobs = 1;
  TempFile ck("campaign_mismatch_ck.json");
  cfg.checkpoint_path = ck.path;
  cfg.max_items_this_run = 10;
  (void)run_campaign(ex, cfg);

  cfg.resume = true;
  cfg.budget = 80;  // different campaign -> different fingerprint
  EXPECT_THROW((void)run_campaign(ex, cfg), ContractViolation);
}

// --- checkpoint robustness --------------------------------------------------

namespace {

std::string slurp_file(const std::string& path) {
  std::string text;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

void spit_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(text.data(), 1, text.size(), f), text.size());
  std::fclose(f);
}

// Produces a mid-campaign checkpoint file and the campaign config that
// wrote it (small: k=1 keeps items cheap and the malignant list empty).
CampaignConfig checkpointed_campaign(const FaultExperiment& ex,
                                     const std::string& path) {
  CampaignConfig cfg;
  cfg.mode = CampaignMode::KFault;
  cfg.k = 1;
  cfg.budget = 60;
  cfg.checkpoint_path = path;
  cfg.checkpoint_every = 8;
  cfg.max_items_this_run = 30;
  const auto partial = run_campaign(ex, cfg);
  EXPECT_FALSE(partial.complete);
  cfg.max_items_this_run = 0;
  cfg.resume = true;
  return cfg;
}

}  // namespace

TEST(Campaign, CheckpointTruncatedAtEveryByteOffsetThrowsTheDistinctError) {
  const auto ex = make_ngate_experiment(true, 3, true);
  TempFile ck("campaign_truncate_ck.json");
  CampaignConfig cfg = checkpointed_campaign(ex, ck.path);
  const std::string original = slurp_file(ck.path);
  ASSERT_FALSE(original.empty());

  // A strict prefix of a JSON document never parses, so every truncation
  // point must surface as CheckpointCorrupt — never a crash, never a
  // ContractViolation, never a silent wrong resume.
  for (std::size_t len = 0; len < original.size(); ++len) {
    spit_file(ck.path, original.substr(0, len));
    EXPECT_THROW((void)run_campaign(ex, cfg), CheckpointCorrupt)
        << "truncated at byte " << len;
  }
  spit_file(ck.path, original);
  const auto resumed = run_campaign(ex, cfg);
  EXPECT_TRUE(resumed.complete);
}

TEST(Campaign, CheckpointSingleByteCorruptionNeverCrashes) {
  const auto ex = make_ngate_experiment(true, 3, true);
  TempFile ck("campaign_flip_ck.json");
  CampaignConfig cfg = checkpointed_campaign(ex, ck.path);
  const std::string original = slurp_file(ck.path);

  Rng rng(77);
  for (int i = 0; i < 100; ++i) {
    const std::size_t pos = rng.below(original.size());
    std::string damaged = original;
    damaged[pos] = static_cast<char>(rng.below(256));
    if (damaged == original) continue;
    spit_file(ck.path, damaged);
    std::remove((ck.path + ".corrupt").c_str());
    // Allowed outcomes: a report (the flip was harmless or quarantined
    // away under fresh_on_corrupt) or a ContractViolation (the flip
    // landed in the fingerprint, indistinguishable from a foreign
    // checkpoint).  Anything else is a bug.
    CampaignConfig tolerant = cfg;
    tolerant.fresh_on_corrupt = true;
    try {
      (void)run_campaign(ex, tolerant);
    } catch (const ContractViolation&) {
    }
  }
}

TEST(Campaign, FreshOnCorruptQuarantinesAndReachesTheReferenceReport) {
  const auto ex = make_ngate_experiment(true, 3, true);

  CampaignConfig clean;
  clean.mode = CampaignMode::KFault;
  clean.k = 1;
  clean.budget = 60;
  const auto reference = run_campaign(ex, clean);

  TempFile ck("campaign_fresh_ck.json");
  CampaignConfig cfg = checkpointed_campaign(ex, ck.path);
  const std::string original = slurp_file(ck.path);
  spit_file(ck.path, original.substr(0, original.size() / 2));

  // Without the fallback: the distinct error.
  EXPECT_THROW((void)run_campaign(ex, cfg), CheckpointCorrupt);

  // With it: quarantine + fresh start + the exact same final report
  // (determinism makes the fallback safe).
  cfg.fresh_on_corrupt = true;
  const auto recovered = run_campaign(ex, cfg);
  EXPECT_TRUE(recovered.complete);
  EXPECT_EQ(recovered.to_json(), reference.to_json());
  EXPECT_FALSE(slurp_file(ck.path + ".corrupt").empty());
  std::remove((ck.path + ".corrupt").c_str());
}

// --- shrinking and replay ---------------------------------------------------

TEST(Campaign, ShrunkMalignantSetsAreOneMinimalAndReplayable) {
  const auto ex = make_ngate_experiment(true, 3, true);
  CampaignConfig cfg;
  cfg.k = 2;
  cfg.budget = 300;
  cfg.sample_seed = 5;
  cfg.jobs = 4;
  const auto report = run_campaign(ex, cfg);
  ASSERT_GT(report.malignant, 0u) << "budget too small to find a pair";

  for (const auto& m : report.malignant_sets) {
    EXPECT_TRUE(m.minimal);
    // Replays to failure...
    EXPECT_TRUE(run_with_faults(ex, m.faults));
    // ...and removing ANY single fault no longer fails (1-minimality).
    for (std::size_t drop = 0; drop < m.faults.size(); ++drop) {
      std::vector<Fault> fewer;
      for (std::size_t i = 0; i < m.faults.size(); ++i)
        if (i != drop) fewer.push_back(m.faults[i]);
      if (fewer.empty()) continue;
      EXPECT_FALSE(run_with_faults(ex, fewer));
    }
  }
}

TEST(Campaign, ReplayArtifactRoundTripsThroughJson) {
  const auto ex = make_ngate_experiment(true, 3, true);
  CampaignConfig cfg;
  cfg.k = 2;
  cfg.budget = 300;
  cfg.sample_seed = 5;
  cfg.jobs = 4;
  const auto report = run_campaign(ex, cfg);
  ASSERT_GT(report.malignant, 0u);

  const auto sets = parse_fault_sets(report.to_json(), ex.num_qubits);
  ASSERT_EQ(sets.size(), report.malignant_sets.size());
  for (std::size_t i = 0; i < sets.size(); ++i) {
    ASSERT_EQ(sets[i].size(), report.malignant_sets[i].faults.size());
    for (std::size_t j = 0; j < sets[i].size(); ++j) {
      EXPECT_EQ(sets[i][j].ordinal, report.malignant_sets[i].faults[j].ordinal);
      EXPECT_EQ(sets[i][j].error.to_string(),
                report.malignant_sets[i].faults[j].error.to_string());
    }
    EXPECT_TRUE(run_with_faults(ex, sets[i]));
  }
}

// --- exhaustive campaigns ---------------------------------------------------

TEST(Campaign, ExhaustiveSingleFaultCampaignMatchesRunSingleFaults) {
  const auto ex = make_ngate_experiment(true, 1, true);  // NOT fault tolerant
  const auto single = run_single_faults(ex);
  ASSERT_GT(single.failures, 0u);

  CampaignConfig cfg;
  cfg.k = 1;
  cfg.budget = 0;  // exhaustive
  cfg.jobs = 4;
  cfg.shrink = false;
  const auto report = run_campaign(ex, cfg);
  EXPECT_TRUE(report.exhaustive);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.sets_tested, single.faults_tested);
  EXPECT_EQ(report.malignant, single.failures);
}

TEST(Campaign, ExhaustivePairCampaignSkipsSameSiteCollisions) {
  // A tiny universe where C(n, 2) is fully enumerable: the campaign must
  // test exactly the pairs on DISTINCT sites (same-site ranks skipped).
  FaultExperiment ex;
  ex.num_qubits = 3;
  ex.prep = Circuit(3);
  ex.gadget = Circuit(3);
  ex.gadget.h(0).cnot(0, 1).cnot(1, 2).h(2);
  ex.failed = [](circuit::TabBackend&, const circuit::ExecResult&) {
    return false;
  };

  const auto faults = enumerate_single_faults(ex);
  const std::uint64_t n = faults.size();
  std::uint64_t same_site = 0;
  for (std::uint64_t i = 0; i < n;) {
    std::uint64_t j = i;
    while (j < n && faults[j].ordinal == faults[i].ordinal) ++j;
    const std::uint64_t m = j - i;
    same_site += m * (m - 1) / 2;
    i = j;
  }
  const std::uint64_t valid = n * (n - 1) / 2 - same_site;

  CampaignConfig cfg;
  cfg.k = 2;
  cfg.budget = 0;  // exhaustive over C(n, 2) ranks
  cfg.jobs = 2;
  cfg.shrink = false;
  const auto report = run_campaign(ex, cfg);
  EXPECT_TRUE(report.exhaustive);
  EXPECT_EQ(report.sets_tested, valid);  // same-site pairs skipped, not counted
}

// --- tripwires --------------------------------------------------------------

TEST(Campaign, TripwireAttributesTheFirstCodespaceViolation) {
  ftqc::Layout layout;
  const Block source = layout.steane_block();
  auto ex = make_ngate_experiment(true, 3, true);

  TripwireOptions tripwire;
  tripwire.violated = [source](circuit::TabBackend& b) {
    return !Steane::block_in_codespace(b.tableau(), source);
  };
  tripwire.probe_after = calibrate_probe_sites(ex, tripwire.violated);
  ASSERT_FALSE(tripwire.probe_after.empty());

  // Fault-free, a calibrated tripwire never trips.
  {
    const auto clean = run_with_faults_probed(ex, {}, tripwire);
    EXPECT_FALSE(clean.failed);
    EXPECT_FALSE(clean.tripped);
  }

  // Find a malignant pair, then replay it under the tripwire.
  CampaignConfig cfg;
  cfg.k = 2;
  cfg.budget = 300;
  cfg.sample_seed = 5;
  cfg.jobs = 4;
  cfg.tripwire = tripwire;
  const auto report = run_campaign(ex, cfg);
  ASSERT_GT(report.malignant, 0u);

  std::size_t tripped = 0;
  for (const auto& m : report.malignant_sets) {
    if (!m.tripped) continue;
    ++tripped;
    // The trip site is a calibrated probe point, at or after the first
    // injected fault (the prefix before it is identical to the fault-free
    // run, which holds the invariant at every probe point).
    EXPECT_TRUE(std::binary_search(tripwire.probe_after.begin(),
                                   tripwire.probe_after.end(),
                                   m.trip_ordinal));
    std::size_t first_fault = m.faults.front().ordinal;
    for (const auto& f : m.faults)
      first_fault = std::min(first_fault, f.ordinal);
    EXPECT_GE(m.trip_ordinal, first_fault);
  }
  EXPECT_GT(tripped, 0u) << "no malignant set tripped the codespace probe";
}

// --- config validation ------------------------------------------------------

TEST(Campaign, RejectsMisconfiguredCampaigns) {
  const auto ex = make_ngate_experiment(true, 3, true);
  CampaignConfig cfg;
  cfg.k = 0;
  EXPECT_THROW((void)run_campaign(ex, cfg), ContractViolation);

  CampaignConfig chaos;
  chaos.mode = CampaignMode::Chaos;
  chaos.budget = 0;  // chaos needs a trial count
  EXPECT_THROW((void)run_campaign(ex, chaos), ContractViolation);
}

TEST(Campaign, Rm15RecoverySampledSingleFaultsAreBenign) {
  // Regression: the ancilla burst repair used a single-position one-hot
  // decode, which only covers the syndrome space of a PERFECT code; RM15
  // encoder bursts with unmatched syndromes survived it and landed on the
  // data as uncorrectable X bursts through the control-direction
  // transversal CNOT.  With the information-set repair every sampled
  // single fault must be benign.
  GadgetSpec spec;
  spec.gadget = "recovery";
  spec.scenario.code = "rm15";
  spec.scenario.repetition_k = 1;
  spec.seed = 7;
  const auto built = build_gadget_experiment(spec);

  CampaignConfig cfg;
  cfg.k = 1;
  cfg.budget = 300;
  cfg.jobs = 4;
  cfg.sample_seed = 33;
  cfg.shrink = false;
  const auto report = run_campaign(built.ex, cfg);
  EXPECT_EQ(report.sets_tested, 300u);
  EXPECT_EQ(report.malignant, 0u);
}

}  // namespace
}  // namespace eqc::analysis
