// Tests for the scenario-sweep matrix driver: grid construction, per-cell
// seed derivation, determinism under parallelism, stop-token handling,
// checkpoint/resume and the report JSON schema.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/matrix.h"
#include "common/assert.h"
#include "common/json.h"

namespace eqc::analysis {
namespace {

// Removes the per-cell checkpoint files a config would write.
struct TempCheckpoints {
  std::string prefix;
  std::vector<std::string> names;
  TempCheckpoints(const std::string& stem, std::vector<std::string> cells)
      : prefix(::testing::TempDir() + stem), names(std::move(cells)) {
    cleanup();
  }
  ~TempCheckpoints() { cleanup(); }
  void cleanup() {
    for (const auto& name : names)
      std::remove((prefix + name + ".ckpt").c_str());
  }
};

MatrixConfig tiny_campaign() {
  MatrixConfig cfg;
  cfg.mode = MatrixMode::Campaign;
  cfg.gadgets = {"ngate"};
  cfg.codes = {"steane"};
  cfg.ks = {1};
  cfg.noises = {"paper"};
  cfg.fault_k = 2;
  cfg.budget = 60;
  cfg.seed = 5;
  return cfg;
}

TEST(MatrixSeed, IsDeterministicAndDistinctPerCell) {
  // Pinned: the derivation is part of the report contract (changing it
  // silently reshuffles every published cell).
  EXPECT_EQ(matrix_cell_seed(1, 0), 0x910a2dec89025cc1ULL);
  EXPECT_EQ(matrix_cell_seed(1, 1), 0xbeeb8da1658eec67ULL);
  EXPECT_EQ(matrix_cell_seed(42, 5), 0xde4431fa3c80db06ULL);
  EXPECT_NE(matrix_cell_seed(1, 0), matrix_cell_seed(2, 0));
}

TEST(Matrix, CellNamesFollowTheGridOrder) {
  MatrixConfig cfg = tiny_campaign();
  cfg.gadgets = {"ngate", "recovery"};
  cfg.codes = {"steane", "rm15"};
  cfg.ks = {1, 2};
  cfg.noises = {"paper", "correlated"};
  // Don't run 16 campaign cells — just check the naming scheme on a cell.
  MatrixCell cell;
  cell.gadget = "recovery";
  cell.scenario.code = "rm15";
  cell.scenario.repetition_k = 2;
  cell.scenario.noise = "correlated";
  EXPECT_EQ(cell.name(), "recovery_rm15_k2_correlated");
  EXPECT_EQ(cell.scenario.reps(), 5);
}

TEST(Matrix, SingleCellCampaignCompletes) {
  const auto report = run_matrix(tiny_campaign());
  ASSERT_EQ(report.cells.size(), 1u);
  EXPECT_TRUE(report.complete);
  const auto& cell = report.cells[0];
  EXPECT_TRUE(cell.complete);
  EXPECT_EQ(cell.name(), "ngate_steane_k1_paper");
  EXPECT_GT(cell.trials, 0u);
  EXPECT_GT(cell.num_sites, 0u);
  EXPECT_LE(cell.failures, cell.trials);
  EXPECT_GE(cell.interval.low, 0.0);
  EXPECT_LE(cell.interval.high, 1.0);
  EXPECT_LE(cell.interval.low, cell.interval.high);
}

TEST(Matrix, ReportIsIdenticalAcrossJobCounts) {
  MatrixConfig cfg = tiny_campaign();
  cfg.jobs = 1;
  const auto serial = run_matrix(cfg);
  cfg.jobs = 4;
  const auto parallel = run_matrix(cfg);
  EXPECT_EQ(serial.to_json(), parallel.to_json());
}

TEST(Matrix, MonteCarloModeFillsTheSharedSchema) {
  MatrixConfig cfg = tiny_campaign();
  cfg.mode = MatrixMode::MonteCarlo;
  cfg.mc_p = 5e-3;
  cfg.mc_trials = 80;
  cfg.codes = {"steane", "rm15"};
  const auto report = run_matrix(cfg);
  ASSERT_EQ(report.cells.size(), 2u);
  EXPECT_TRUE(report.complete);
  for (const auto& cell : report.cells) {
    EXPECT_TRUE(cell.complete);
    EXPECT_EQ(cell.trials, 80u);
    EXPECT_LE(cell.interval.low, cell.interval.high);
    // Campaign-only extras stay zeroed in MC mode.
    EXPECT_EQ(cell.num_sites, 0u);
  }
  // MC reports are deterministic too.
  const auto again = run_matrix(cfg);
  EXPECT_EQ(report.to_json(), again.to_json());
}

TEST(Matrix, StopTokenEndsTheSweepAfterTheCurrentCell) {
  MatrixConfig cfg = tiny_campaign();
  cfg.noises = {"paper", "biased-z"};  // two cells
  std::atomic<bool> stop{false};
  cfg.stop = &stop;
  cfg.on_progress = [&stop](const MatrixProgress&) { stop.store(true); };
  const auto report = run_matrix(cfg);
  EXPECT_FALSE(report.complete);
  EXPECT_EQ(report.cells.size(), 1u);  // the second cell never started
}

TEST(Matrix, CheckpointedRerunReproducesTheReport) {
  TempCheckpoints ck("matrix_test_", {"ngate_steane_k1_paper"});
  MatrixConfig cfg = tiny_campaign();
  cfg.checkpoint_prefix = ck.prefix;
  cfg.checkpoint_every = 8;
  const auto first = run_matrix(cfg);
  EXPECT_TRUE(first.complete);
  // Second run resumes from the completed checkpoint and must emit the
  // exact same report (it re-reads the counters rather than recounting).
  const auto second = run_matrix(cfg);
  EXPECT_EQ(first.to_json(), second.to_json());
}

TEST(Matrix, ReportJsonSchema) {
  MatrixConfig cfg = tiny_campaign();
  const auto report = run_matrix(cfg);
  const auto v = json::Value::parse(report.to_json());
  const auto& obj = v.as_object();
  auto get = [&obj](const std::string& key) -> const json::Value& {
    for (const auto& [k, val] : obj)
      if (k == key) return val;
    ADD_FAILURE() << "missing key " << key;
    static const json::Value null;
    return null;
  };
  EXPECT_EQ(get("kind").as_string(), "eqc_matrix_report");
  EXPECT_EQ(get("mode").as_string(), "campaign");
  EXPECT_EQ(get("fault_k").as_u64(), 2u);
  EXPECT_EQ(get("seed").as_u64(), 5u);
  EXPECT_TRUE(get("complete").as_bool());
  const auto& cells = get("cells").as_array();
  ASSERT_EQ(cells.size(), 1u);
  const auto& cell = cells[0].as_object();
  std::vector<std::string> keys;
  for (const auto& [k, val] : cell) keys.push_back(k);
  const std::vector<std::string> want = {
      "cell",       "gadget",        "code",
      "k",          "reps",          "noise",
      "complete",   "trials",        "failures",
      "failure_rate", "wilson_low",  "wilson_high",
      "num_sites",  "single_faults", "exhaustive",
      "p_k_coefficient", "pseudo_threshold"};
  EXPECT_EQ(keys, want);
}

TEST(Matrix, RejectsUnknownAxisValues) {
  {
    MatrixConfig cfg = tiny_campaign();
    cfg.codes = {"shor9"};
    EXPECT_THROW(run_matrix(cfg), ContractViolation);
  }
  {
    MatrixConfig cfg = tiny_campaign();
    cfg.noises = {"thermal"};
    EXPECT_THROW(run_matrix(cfg), ContractViolation);
  }
  {
    MatrixConfig cfg = tiny_campaign();
    cfg.gadgets = {"grover"};
    EXPECT_THROW(run_matrix(cfg), ContractViolation);
  }
  {
    MatrixConfig cfg = tiny_campaign();
    cfg.ks = {};
    EXPECT_THROW(run_matrix(cfg), ContractViolation);
  }
}

}  // namespace
}  // namespace eqc::analysis
