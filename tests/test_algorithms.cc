// Tests for the algorithm layer: Grover (+ repeat-and-sort), order finding
// (+ coherent verification and randomize-bad-results), teleportation
// variants, and the RNG impossibility demo.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "algorithms/grover.h"
#include "algorithms/order_finding.h"
#include "algorithms/rng_demo.h"
#include "algorithms/teleport.h"
#include "common/assert.h"
#include "common/rng.h"
#include "common/stats.h"
#include "ensemble/machine.h"

namespace eqc::algorithms {
namespace {

using ensemble::EnsembleMachine;

// --- QFT --------------------------------------------------------------------

class InverseQft : public ::testing::TestWithParam<std::size_t> {};

TEST_P(InverseQft, RecoverssPhaseBasisStates) {
  const std::size_t t = 3;
  const std::uint64_t y = GetParam();
  const std::uint64_t dim = 1ULL << t;
  // Prepare QFT|y> = sum_x e^{2 pi i x y / 2^t} |x> / sqrt(2^t).
  std::vector<cplx> amp(dim);
  for (std::uint64_t x = 0; x < dim; ++x)
    amp[x] = std::polar(1.0 / std::sqrt(double(dim)),
                        2.0 * M_PI * double(x) * double(y) / double(dim));
  auto sv = qsim::StateVector::from_amplitudes(std::move(amp));
  apply_inverse_qft(sv, 0, t);
  EXPECT_NEAR(std::abs(sv.amplitude(y)), 1.0, 1e-9) << "y=" << y;
}

INSTANTIATE_TEST_SUITE_P(AllY, InverseQft, ::testing::Range<std::size_t>(0, 8));

TEST(InverseQft, LinearityOnSuperposition) {
  const std::size_t t = 4;
  const std::uint64_t dim = 1ULL << t;
  // (QFT|3> + QFT|9>)/sqrt2 -> (|3> + |9>)/sqrt2.
  std::vector<cplx> amp(dim, cplx{0, 0});
  for (std::uint64_t x = 0; x < dim; ++x) {
    for (std::uint64_t y : {3ull, 9ull})
      amp[x] += std::polar(1.0 / std::sqrt(2.0 * dim),
                           2.0 * M_PI * double(x * y) / double(dim));
  }
  auto sv = qsim::StateVector::from_amplitudes(std::move(amp));
  apply_inverse_qft(sv, 0, t);
  EXPECT_NEAR(std::norm(sv.amplitude(3)), 0.5, 1e-9);
  EXPECT_NEAR(std::norm(sv.amplitude(9)), 0.5, 1e-9);
}

// --- Number theory helpers --------------------------------------------------

TEST(NumberTheory, ModPow) {
  EXPECT_EQ(mod_pow(7, 0, 15), 1u);
  EXPECT_EQ(mod_pow(7, 1, 15), 7u);
  EXPECT_EQ(mod_pow(7, 2, 15), 4u);
  EXPECT_EQ(mod_pow(7, 4, 15), 1u);
  EXPECT_EQ(mod_pow(2, 10, 1000), 24u);
}

TEST(NumberTheory, MultiplicativeOrder) {
  EXPECT_EQ(multiplicative_order(7, 15), 4u);
  EXPECT_EQ(multiplicative_order(2, 15), 4u);
  EXPECT_EQ(multiplicative_order(2, 21), 6u);
  EXPECT_EQ(multiplicative_order(4, 15), 2u);
}

TEST(NumberTheory, CandidateOrderFromGoodPhases) {
  // t = 8, N = 15, a = 7 (order 4): y = 64 and 192 encode 1/4 and 3/4.
  EXPECT_EQ(candidate_order(64, 8, 7, 15), 4u);
  EXPECT_EQ(candidate_order(192, 8, 7, 15), 4u);
  // y = 128 encodes 1/2 -> the convergent gives r = 2, which fails
  // verification, but the standard denominator-doubling step recovers 4.
  EXPECT_EQ(candidate_order(128, 8, 7, 15), 4u);
  EXPECT_EQ(candidate_order(0, 8, 7, 15), 0u);
  EXPECT_EQ(candidate_order(1, 8, 7, 15), 0u);
}

// --- Order finding -----------------------------------------------------------

TEST(OrderFinding, PhaseRegisterPeaksAtMultiplesOfQuarter) {
  OrderFindingParams p;  // N=15, a=7, t=8
  const auto l = order_finding_layout(p);
  qsim::StateVector sv(l.total);
  apply_order_finding(sv, p);
  // The order is 4 = power of two, so the distribution is exactly
  // supported on y in {0, 64, 128, 192}, each with probability 1/4.
  const std::uint64_t ymask = (1ULL << p.phase_bits) - 1;
  std::vector<double> py(ymask + 1, 0.0);
  for (std::uint64_t idx = 0; idx < sv.dim(); ++idx)
    py[idx & ymask] += std::norm(sv.amplitude(idx));
  for (std::uint64_t y : {0ull, 64ull, 128ull, 192ull})
    EXPECT_NEAR(py[y], 0.25, 1e-9) << y;
  EXPECT_NEAR(py[1], 0.0, 1e-9);
}

TEST(OrderFinding, RandomizedBadResultsYieldReadableOrder) {
  OrderFindingParams p;
  const auto l = order_finding_layout(p);

  EnsembleMachine machine(l.total, 0, 1);
  machine.apply([&](qsim::StateVector& sv) {
    apply_order_finding(sv, p);
    apply_coherent_verification(sv, p);
    apply_randomize_bad_results(sv, p);
  });
  const auto z = machine.readout_all();
  // P(good) = 3/4 (y = 64, 128, 192 all verify); answer = 4 = 0b100.
  EXPECT_NEAR(z[l.answer0 + 2], -0.75, 1e-9);  // bit 2 set on good computers
  EXPECT_NEAR(z[l.answer0 + 0], +0.75, 1e-9);
  EXPECT_NEAR(z[l.answer0 + 1], +0.75, 1e-9);
  // Thresholding the signs recovers the order.
  const std::uint64_t decoded =
      decode_readout(z, l.answer0, p.order_bits);
  EXPECT_EQ(decoded, multiplicative_order(p.base, p.modulus));
}

TEST(OrderFinding, WithoutRandomizationBadResultsBiasTheSignal) {
  OrderFindingParams p;
  const auto l = order_finding_layout(p);
  EnsembleMachine machine(l.total, 0, 1);
  machine.apply([&](qsim::StateVector& sv) {
    apply_order_finding(sv, p);
    apply_coherent_verification(sv, p);
    // no randomize-bad-results
  });
  const auto z = machine.readout_all();
  // The bad computers (P = 1/4, answer register 0) do not average out: they
  // add +P(bad) to every bit's signal, biasing bit 2 from -0.75 to -0.5.
  // With enough bad outcomes (P(bad) > P(good)) the sign would flip and
  // the decoded answer would be wrong — see bench_sec2_ensemble for a
  // configuration where that happens.
  EXPECT_NEAR(z[l.answer0 + 2], -0.5, 1e-9);
  EXPECT_NEAR(z[l.answer0 + 0], +1.0 * 0.25 + 0.75, 1e-9);
}

// --- Grover ------------------------------------------------------------------

TEST(Grover, SingleMarkedItemFound) {
  GroverParams p;
  p.num_bits = 3;
  p.marked = {5};
  qsim::StateVector sv(3);
  apply_grover(sv, p, 0);
  EXPECT_GT(success_probability(sv, p, 0), 0.9);
  EXPECT_GT(std::norm(sv.amplitude(5)), 0.9);
}

TEST(Grover, SingleMarkedItemReadableOnEnsemble) {
  GroverParams p;
  p.num_bits = 3;
  p.marked = {5};
  EnsembleMachine m(3, 0, 1);
  m.apply([&](qsim::StateVector& sv) { apply_grover(sv, p, 0); });
  const auto z = m.readout_all();
  EXPECT_EQ(decode_readout(z, 0, 3), 5u);
}

TEST(Grover, TwoSolutionsWashOutTheDisagreeingBit) {
  // Solutions 1 = 0b001 and 6 = 0b110 disagree on every bit: all three
  // expectation signals collapse toward 0 and the readout is useless.
  GroverParams p;
  p.num_bits = 3;
  p.marked = {1, 6};
  EnsembleMachine m(3, 0, 1);
  m.apply([&](qsim::StateVector& sv) { apply_grover(sv, p, 0); });
  const auto z = m.readout_all();
  for (std::size_t b = 0; b < 3; ++b) EXPECT_LT(std::abs(z[b]), 0.1) << b;
  // Yet every computer DID find a solution:
  qsim::StateVector sv(3);
  apply_grover(sv, p, 0);
  EXPECT_GT(success_probability(sv, p, 0), 0.9);
}

TEST(Grover, RepeatAndSortRecoversTheMinimumSolution) {
  GroverParams p;
  p.num_bits = 3;
  p.marked = {1, 6};
  const std::size_t repeats = 4;
  const std::size_t width = repeat_and_sort_width(p, repeats);
  EnsembleMachine m(width, 0, 1);
  m.apply([&](qsim::StateVector& sv) {
    apply_repeat_and_sort(sv, p, repeats);
  });
  const auto z = m.readout_all();
  // Register 0 (the minimum of 4 draws) concentrates on solution 1:
  // P(all draws = 6) ~ (1/2)^4, so the signal is strong.
  EXPECT_EQ(decode_readout(z, 0, 3), 1u);
  EXPECT_LT(z[0], -0.7);  // bit 0 of "1" clearly set
}

TEST(Grover, SortNetworkIsExactOnClassicalInputs) {
  // Feed basis states through the comparator network: register 0 must end
  // as the minimum, register 1 as the maximum.
  GroverParams p;
  p.num_bits = 2;
  for (std::uint64_t a = 0; a < 4; ++a) {
    for (std::uint64_t b = 0; b < 4; ++b) {
      qsim::StateVector sv(5);  // 2 registers + 1 flag
      // Prepare |a>|b>: set bits.
      std::vector<cplx> amp(32, cplx{0, 0});
      amp[a | (b << 2)] = 1.0;
      sv = qsim::StateVector::from_amplitudes(std::move(amp));
      // One comparator via the same permutation used in repeat_and_sort:
      // reuse apply_repeat_and_sort's building block indirectly by sorting
      // two registers with repeats=2 equivalent — construct manually:
      sv.apply_permutation([&](std::uint64_t idx) {
        const std::uint64_t ra = idx & 3;
        const std::uint64_t rb = (idx >> 2) & 3;
        const bool f_in = (idx >> 4) & 1;
        const bool f_out = f_in != (ra > rb);
        std::uint64_t out = idx & ~std::uint64_t{0x1F};
        out |= (f_out ? rb : ra);
        out |= (f_out ? ra : rb) << 2;
        if (f_out) out |= 1ULL << 4;
        return out;
      });
      EXPECT_NEAR(std::norm(sv.amplitude(std::min(a, b) |
                                         (std::max(a, b) << 2) |
                                         ((a > b ? 1ull : 0ull) << 4))),
                  1.0, 1e-12)
          << a << "," << b;
    }
  }
}

// --- Teleportation -----------------------------------------------------------

TEST(Teleport, StandardProtocolIsPerfectPerComputer) {
  Rng rng(5);
  const double inv = 1.0 / std::sqrt(2.0);
  for (const Qubit& q :
       {Qubit{1.0, 0.0}, Qubit{inv, inv}, Qubit{0.6, cplx{0.0, 0.8}}}) {
    for (int rep = 0; rep < 10; ++rep)
      EXPECT_NEAR(teleport_standard(q, rng), 1.0, 1e-9);
  }
}

TEST(Teleport, EnsembleAttemptAveragesToHalf) {
  Rng rng(6);
  const Qubit q{0.6, cplx{0.0, 0.8}};
  RunningStats stats;
  for (int rep = 0; rep < 4000; ++rep)
    stats.add(teleport_ensemble_attempt(q, rng));
  EXPECT_NEAR(stats.mean(), 0.5, 0.03);
}

TEST(Teleport, FullyQuantumIsPerfectAndMeasurementFree) {
  const double inv = 1.0 / std::sqrt(2.0);
  for (const Qubit& q :
       {Qubit{1.0, 0.0}, Qubit{inv, inv}, Qubit{0.6, cplx{0.0, 0.8}},
        Qubit{inv, cplx{0.0, -inv}}}) {
    EXPECT_NEAR(teleport_fully_quantum(q), 1.0, 1e-9);
  }
}

// --- RNG impossibility ---------------------------------------------------------

TEST(RngDemo, SingleComputerProducesEntropy) {
  Rng rng(7);
  const auto bits = single_computer_rng(0.5, 4000, rng);
  EXPECT_GT(empirical_entropy(bits), 0.99);
  const auto biased = single_computer_rng(0.9, 4000, rng);
  const double h = empirical_entropy(biased);
  EXPECT_GT(h, 0.3);
  EXPECT_LT(h, 0.7);  // H(0.1) ~ 0.47
}

TEST(RngDemo, EnsembleReadoutIsDeterministic) {
  const auto readouts = ensemble_rng_readouts(0.7, 10000, 20, 42);
  RunningStats stats;
  for (double r : readouts) stats.add(r);
  // All readouts cluster tightly at 2 p0 - 1 = 0.4: no extractable entropy.
  EXPECT_NEAR(stats.mean(), 0.4, 0.02);
  EXPECT_LT(stats.stddev(), 0.03);
  // Thresholded "bits" are constant -> zero entropy.
  std::vector<bool> bits;
  for (double r : readouts) bits.push_back(r > 0.0);
  EXPECT_EQ(empirical_entropy(bits), 0.0);
}

TEST(RngDemo, EntropyHelperEdgeCases) {
  EXPECT_EQ(empirical_entropy({}), 0.0);
  EXPECT_EQ(empirical_entropy({true, true}), 0.0);
  EXPECT_NEAR(empirical_entropy({true, false}), 1.0, 1e-12);
}

}  // namespace
}  // namespace eqc::algorithms
