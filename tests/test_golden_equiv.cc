// Golden-equivalence contract: every generic gadget builder instantiated
// with (Steane, paper-era repetition counts) must emit a circuit
// byte-identical to the pre-refactor hard-wired builder it replaced.
//
// The expected values below are FNV-1a fingerprints (circuit/fingerprint.h)
// captured from the seed builders BEFORE the CssCode refactor landed, with
// the exact register layouts the seed used.  A mismatch means the generic
// path changed the emitted op stream for the Steane instantiation — which
// would silently invalidate every previously published campaign number.
//
// Note: the seed's repetitions=5 N-gate entries are intentionally absent —
// the generic majority counter allocates its scratch differently at
// 2k+1 >= 5 (documented behavior change), so only the paper's r=1 and r=3
// configurations are pinned.
#include <gtest/gtest.h>

#include <cstdint>

#include "analysis/experiments.h"
#include "circuit/fingerprint.h"
#include "codes/css_code.h"
#include "ftqc/baselines.h"
#include "ftqc/cat.h"
#include "ftqc/ft_tgate.h"
#include "ftqc/ft_toffoli.h"
#include "ftqc/layout.h"
#include "ftqc/ngate.h"
#include "ftqc/recovery.h"
#include "ftqc/special_state.h"

namespace eqc::ftqc {
namespace {

using circuit::Circuit;
using circuit::fingerprint;

const codes::CssCode& steane() { return codes::steane_code(); }

TEST(GoldenEquiv, NGate) {
  struct Case {
    int reps;
    bool syndrome;
    std::uint64_t want;
  };
  const Case cases[] = {
      {1, true, 0xb278e538f63c71f3ULL},
      {1, false, 0x9d3c93c5f6ded313ULL},
      {3, true, 0x5c9ec6d76f2692f9ULL},
      {3, false, 0x598674c8352c9a8bULL},
  };
  for (const auto& tc : cases) {
    Layout layout;
    const auto source = layout.block(steane());
    auto anc = allocate_ngate_ancillas(layout, steane(), tc.reps);
    const auto out = layout.reg(7);
    Circuit c(layout.total());
    NGateOptions opt;
    opt.repetitions = tc.reps;
    opt.syndrome_check = tc.syndrome;
    append_ngate(c, steane(), source, out, anc, opt);
    EXPECT_EQ(fingerprint(c), tc.want)
        << "reps=" << tc.reps << " syndrome=" << tc.syndrome;

    // The Block compatibility overload must agree with the generic path.
    Layout l2;
    const auto src2 = l2.steane_block();
    auto anc2 = allocate_ngate_ancillas(l2, tc.reps);
    const auto out2 = l2.reg(7);
    Circuit c2(l2.total());
    append_ngate(c2, src2, out2, anc2, opt);
    EXPECT_EQ(fingerprint(c2), tc.want)
        << "compat overload, reps=" << tc.reps;
  }
}

TEST(GoldenEquiv, Recovery) {
  struct Case {
    int rounds;
    bool mf;
    std::uint64_t want;
  };
  const Case cases[] = {
      {1, true, 0x4c821b5e3c6e68a4ULL},
      {1, false, 0x4c59b4480921418cULL},
      {3, true, 0xd07b3a96f01b374fULL},
      {3, false, 0x10e9a93b9c7dd53aULL},
  };
  for (const auto& tc : cases) {
    Layout layout;
    const auto data = layout.block(steane());
    auto anc = allocate_recovery_ancillas(layout, steane(), tc.rounds);
    Circuit c(layout.total());
    RecoveryOptions opt;
    opt.rounds = tc.rounds;
    opt.measurement_free = tc.mf;
    append_recovery(c, steane(), data, anc, opt);
    EXPECT_EQ(fingerprint(c), tc.want)
        << "rounds=" << tc.rounds << " mf=" << tc.mf;

    Layout l2;
    const auto d2 = l2.steane_block();
    auto anc2 = allocate_recovery_ancillas(l2, tc.rounds);
    Circuit c2(l2.total());
    append_recovery(c2, d2, anc2, opt);
    EXPECT_EQ(fingerprint(c2), tc.want)
        << "compat overload, rounds=" << tc.rounds;
  }
}

TEST(GoldenEquiv, TGate) {
  Layout layout;
  TGateRegisters regs;
  regs.data = layout.block(steane());
  regs.special = layout.block(steane());
  regs.n_anc = allocate_ngate_ancillas(layout, steane(), 3);
  regs.control = layout.reg(7);
  auto ss = allocate_special_state_ancillas(layout, 7, 3);

  Circuit g(layout.total());
  append_ft_t_gadget(g, steane(), regs);
  EXPECT_EQ(fingerprint(g), 0x53972a719ea6ae6fULL);

  Circuit f(layout.total());
  append_ft_t_gate(f, steane(), regs, ss);
  EXPECT_EQ(fingerprint(f), 0xbef996f8e8e745cbULL);

  // Compat overloads.
  Circuit g2(layout.total());
  append_ft_t_gadget(g2, regs);
  EXPECT_EQ(fingerprint(g2), 0x53972a719ea6ae6fULL);
  Circuit f2(layout.total());
  append_ft_t_gate(f2, regs, ss);
  EXPECT_EQ(fingerprint(f2), 0xbef996f8e8e745cbULL);
}

TEST(GoldenEquiv, SpecialStates) {
  {
    Layout layout;
    const auto special = layout.block(steane());
    auto ss = allocate_special_state_ancillas(layout, 7, 3);
    Circuit c(layout.total());
    append_t_state_prep(c, steane(), special, ss, 3);
    EXPECT_EQ(fingerprint(c), 0xdc3bda176377e237ULL);
  }
  {
    Layout layout;
    const auto a = layout.block(steane());
    const auto b = layout.block(steane());
    const auto cc = layout.block(steane());
    auto ss = allocate_special_state_ancillas(layout, 7, 3);
    Circuit c(layout.total());
    append_and_state_prep(c, steane(), a, b, cc, ss, 3);
    EXPECT_EQ(fingerprint(c), 0x321680d7326a942cULL);
  }
  {
    // With cat-verification bits enabled.
    Layout layout;
    const auto special = layout.block(steane());
    auto ss = allocate_special_state_ancillas(layout, 7, 3);
    ss.verify = layout.reg(6);
    Circuit c(layout.total());
    append_t_state_prep(c, steane(), special, ss, 3);
    EXPECT_EQ(fingerprint(c), 0xd37266a94b2f08f7ULL);
  }
}

TEST(GoldenEquiv, CodedToffoli) {
  Layout layout;
  CodedToffoliRegs r;
  r.a = layout.block(steane());
  r.b = layout.block(steane());
  r.c = layout.block(steane());
  r.x = layout.block(steane());
  r.y = layout.block(steane());
  r.z = layout.block(steane());
  r.ss_anc = allocate_special_state_ancillas(layout, 7, 3);
  r.n_anc = allocate_ngate_ancillas(layout, steane(), 3);
  r.m1 = layout.reg(7);
  r.m2 = layout.reg(7);
  r.m3 = layout.reg(7);
  r.m12 = layout.reg(7);

  Circuit g(layout.total());
  append_coded_toffoli_gadget(g, steane(), r);
  EXPECT_EQ(fingerprint(g), 0xa4d67112594c3d5aULL);

  Circuit f(layout.total());
  append_coded_toffoli(f, steane(), r);
  EXPECT_EQ(fingerprint(f), 0x24212abac319ab40ULL);

  Circuit g2(layout.total());
  append_coded_toffoli_gadget(g2, r);
  EXPECT_EQ(fingerprint(g2), 0xa4d67112594c3d5aULL);
}

TEST(GoldenEquiv, CatStates) {
  Layout layout;
  const auto cat = layout.reg(7);
  const auto verify = layout.reg(6);
  Circuit c(layout.total());
  append_cat_prep(c, cat);
  EXPECT_EQ(fingerprint(c), 0x3ce29edc0b10f00eULL);
  Circuit v(layout.total());
  append_verified_cat(v, cat, verify);
  EXPECT_EQ(fingerprint(v), 0x5269093f243e7d54ULL);
}

TEST(GoldenEquiv, MeasuredBaselines) {
  {
    Layout layout;
    const auto data = layout.block(steane());
    const auto special = layout.block(steane());
    Circuit c(layout.total());
    append_measured_t_gadget(c, steane(), data, special);
    EXPECT_EQ(fingerprint(c), 0xa063bb691222f524ULL);
  }
  {
    Layout layout;
    const auto block = layout.block(steane());
    const auto anc = layout.bit();
    Circuit c(layout.total());
    append_measured_verification_ec(c, steane(), block, anc);
    EXPECT_EQ(fingerprint(c), 0x5414cd5fc635c258ULL);
  }
}

TEST(GoldenEquiv, GadgetExperiments) {
  // The default GadgetSpec scenario is (steane, k=1 -> 3 repetitions,
  // paper noise) — exactly the seed defaults.  Both the prep and the
  // gadget circuits, and the experiment width, must be unchanged.
  struct Case {
    const char* gadget;
    std::uint64_t prep;
    std::uint64_t want;
    std::size_t qubits;
  };
  const Case cases[] = {
      {"ngate", 0x896188f6fbfc59f9ULL, 0x5c9ec6d76f2692f9ULL, 22},
      {"recovery", 0x5545ba1f7018412dULL, 0xd07b3a96f01b374fULL, 78},
      {"recovery-measured", 0x5545ba1f7018412dULL, 0x10e9a93b9c7dd53aULL, 78},
  };
  for (const auto& tc : cases) {
    analysis::GadgetSpec spec;
    spec.gadget = tc.gadget;
    const auto built = analysis::build_gadget_experiment(spec);
    EXPECT_EQ(built.ex.num_qubits, tc.qubits) << tc.gadget;
    EXPECT_EQ(fingerprint(built.ex.prep), tc.prep) << tc.gadget;
    EXPECT_EQ(fingerprint(built.ex.gadget), tc.want) << tc.gadget;
  }
}

}  // namespace
}  // namespace eqc::ftqc
