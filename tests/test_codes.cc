// Tests for the classical Hamming code, reversible-logic gadgets, and the
// Steane [[7,1,3]] code (encoding, logical gates, stabilizers, decoding).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "circuit/circuit.h"
#include "circuit/execute.h"
#include "circuit/sv_backend.h"
#include "circuit/tab_backend.h"
#include "codes/classical_logic.h"
#include "codes/hamming.h"
#include "codes/steane.h"
#include "common/assert.h"
#include "common/rng.h"
#include "qsim/gates.h"

namespace eqc::codes {
namespace {

using circuit::Circuit;
using circuit::SvBackend;
using circuit::TabBackend;
using pauli::Pauli;
using pauli::PauliString;

TEST(Hamming, SixteenCodewords) {
  EXPECT_EQ(Hamming74::codewords().size(), 16u);
}

TEST(Hamming, MinimumDistanceThree) {
  int min_weight = 7;
  for (unsigned w : Hamming74::codewords())
    if (w != 0) min_weight = std::min(min_weight, std::popcount(w));
  EXPECT_EQ(min_weight, 3);
}

TEST(Hamming, SyndromePointsAtErrorPosition) {
  for (unsigned cw : Hamming74::codewords()) {
    EXPECT_EQ(Hamming74::syndrome(cw), 0u);
    for (int pos = 0; pos < 7; ++pos) {
      const unsigned corrupted = cw ^ (1u << pos);
      EXPECT_EQ(Hamming74::error_position(Hamming74::syndrome(corrupted)), pos);
      EXPECT_EQ(Hamming74::correct(corrupted), cw);
    }
  }
}

TEST(Hamming, DualCodeIsEvenWeightSubcode) {
  const auto dual = Hamming74::dual_codewords();
  EXPECT_EQ(dual.size(), 8u);
  for (unsigned w : dual) {
    EXPECT_TRUE(Hamming74::is_codeword(w));  // C2 subset of C1
    EXPECT_EQ(std::popcount(w) % 2, 0);
    // Dual property: orthogonal to every codeword.
    for (unsigned c : Hamming74::codewords())
      EXPECT_EQ(std::popcount(w & c) % 2, 0);
  }
}

TEST(Hamming, AllOnesIsCodewordOutsideDual) {
  EXPECT_TRUE(Hamming74::is_codeword(0x7F));
  for (unsigned w : Hamming74::dual_codewords()) EXPECT_NE(w, 0x7Fu);
}

TEST(Majority, OddVotes) {
  EXPECT_FALSE(majority({false, false, true}));
  EXPECT_TRUE(majority({true, false, true}));
  EXPECT_TRUE(majority({true, true, true, false, false}));
  EXPECT_THROW(majority({true, false}), ContractViolation);
}

TEST(ClassicalLogic, Majority3TruthTable) {
  for (unsigned in = 0; in < 8; ++in) {
    Circuit c(4);
    for (int b = 0; b < 3; ++b)
      if (in & (1u << b)) c.x(b);
    const std::uint32_t targets[1] = {3};
    append_majority3(c, 0, 1, 2, targets);
    TabBackend backend(4, Rng(1));
    execute(c, backend);
    const bool expect_maj = std::popcount(in) >= 2;
    EXPECT_EQ(backend.tableau().deterministic_z_value(3), expect_maj)
        << "input " << in;
  }
}

TEST(ClassicalLogic, Majority3FanOutToMany) {
  Circuit c(8);
  c.x(0).x(2);
  const std::uint32_t targets[5] = {3, 4, 5, 6, 7};
  append_majority3(c, 0, 1, 2, targets);
  TabBackend backend(8, Rng(1));
  execute(c, backend);
  for (int t = 3; t < 8; ++t)
    EXPECT_TRUE(backend.tableau().deterministic_z_value(t));
}

TEST(ClassicalLogic, Or3TruthTable) {
  for (unsigned in = 0; in < 8; ++in) {
    Circuit c(6);
    for (int b = 0; b < 3; ++b)
      if (in & (1u << b)) c.x(b);
    append_or3_into(c, 0, 1, 2, 3, 4, 5);
    TabBackend backend(6, Rng(1));
    execute(c, backend);
    EXPECT_EQ(backend.tableau().deterministic_z_value(5), in != 0)
        << "input " << in;
  }
}

TEST(ClassicalLogic, FanoutCopies) {
  Circuit c(4);
  c.x(0);
  const std::uint32_t targets[3] = {1, 2, 3};
  append_fanout(c, 0, targets);
  TabBackend backend(4, Rng(1));
  execute(c, backend);
  for (int t = 1; t < 4; ++t)
    EXPECT_TRUE(backend.tableau().deterministic_z_value(t));
}

// --- Steane code ---------------------------------------------------------

TEST(Steane, EncodedZeroAmplitudes) {
  const auto sv = Steane::logical_zero();
  const double w = 1.0 / std::sqrt(8.0);
  for (unsigned c : Hamming74::dual_codewords())
    EXPECT_NEAR(std::abs(sv.amplitude(c)), w, 1e-12);
  // Non-dual words carry no amplitude.
  EXPECT_NEAR(std::abs(sv.amplitude(0x7F)), 0.0, 1e-12);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(Steane, EncoderCircuitMatchesAnalyticState) {
  Circuit c(7);
  Steane::append_encode_zero(c, Block::contiguous(0));
  SvBackend b(7, Rng(1));
  execute(c, b);
  EXPECT_NEAR(b.state().fidelity(Steane::logical_zero()), 1.0, 1e-10);
}

TEST(Steane, EncoderCircuitStabilizersOnTableau) {
  Circuit c(7);
  const auto block = Block::contiguous(0);
  Steane::append_encode_zero(c, block);
  TabBackend b(7, Rng(1));
  execute(c, b);
  EXPECT_TRUE(Steane::block_in_codespace(b.tableau(), block));
  EXPECT_EQ(Steane::logical_z_expectation(b.tableau(), block), 1.0);
}

TEST(Steane, LogicalXMapsZeroToOne) {
  Circuit c(7);
  const auto block = Block::contiguous(0);
  Steane::append_encode_zero(c, block);
  Steane::append_logical_x(c, block);
  SvBackend b(7, Rng(1));
  execute(c, b);
  EXPECT_NEAR(b.state().fidelity(Steane::logical_one()), 1.0, 1e-10);
}

TEST(Steane, LogicalHCreatesPlus) {
  Circuit c(7);
  const auto block = Block::contiguous(0);
  Steane::append_encode_plus(c, block);
  SvBackend b(7, Rng(1));
  execute(c, b);
  const double inv = 1.0 / std::sqrt(2.0);
  const auto plus =
      qsim::StateVector::from_amplitudes(Steane::encoded_amplitudes(inv, inv));
  EXPECT_NEAR(b.state().fidelity(plus), 1.0, 1e-10);
}

TEST(Steane, DirectPlusEncoderMatchesPlus) {
  Circuit c(7);
  const auto block = Block::contiguous(0);
  Steane::append_encode_plus_direct(c, block);
  SvBackend b(7, Rng(1));
  execute(c, b);
  const double inv = 1.0 / std::sqrt(2.0);
  const auto plus =
      qsim::StateVector::from_amplitudes(Steane::encoded_amplitudes(inv, inv));
  EXPECT_NEAR(b.state().fidelity(plus), 1.0, 1e-10);
}

TEST(Steane, LogicalSActsAsS) {
  // S_L on |+>_L should give (|0>_L + i |1>_L)/sqrt2.
  Circuit c(7);
  const auto block = Block::contiguous(0);
  Steane::append_encode_plus(c, block);
  Steane::append_logical_s(c, block);
  SvBackend b(7, Rng(1));
  execute(c, b);
  const double inv = 1.0 / std::sqrt(2.0);
  const auto want = qsim::StateVector::from_amplitudes(
      Steane::encoded_amplitudes(inv, cplx{0, inv}));
  EXPECT_NEAR(b.state().fidelity(want), 1.0, 1e-10);
}

TEST(Steane, LogicalSdgInvertsLogicalS) {
  Circuit c(7);
  const auto block = Block::contiguous(0);
  Steane::append_encode_plus(c, block);
  Steane::append_logical_s(c, block);
  Steane::append_logical_sdg(c, block);
  SvBackend b(7, Rng(1));
  execute(c, b);
  const double inv = 1.0 / std::sqrt(2.0);
  const auto plus =
      qsim::StateVector::from_amplitudes(Steane::encoded_amplitudes(inv, inv));
  EXPECT_NEAR(b.state().fidelity(plus), 1.0, 1e-10);
}

TEST(Steane, BitwiseSAloneIsLogicalSdg) {
  // The paper's remark: bit-wise sigma_z^{1/2} gives the *inverse* logical
  // gate on the 7-qubit code.
  Circuit c(7);
  const auto block = Block::contiguous(0);
  Steane::append_encode_plus(c, block);
  for (auto q : block.q) c.s(q);
  SvBackend b(7, Rng(1));
  execute(c, b);
  const double inv = 1.0 / std::sqrt(2.0);
  const auto want = qsim::StateVector::from_amplitudes(
      Steane::encoded_amplitudes(inv, cplx{0, -inv}));  // S^dagger |+>_L
  EXPECT_NEAR(b.state().fidelity(want), 1.0, 1e-10);
}

TEST(Steane, TransversalCnotIsLogicalCnot) {
  // |1>_L (x) |0>_L -> |1>_L (x) |1>_L.
  Circuit c(14);
  const auto a = Block::contiguous(0);
  const auto b2 = Block::contiguous(7);
  Steane::append_encode_zero(c, a);
  Steane::append_logical_x(c, a);
  Steane::append_encode_zero(c, b2);
  Steane::append_logical_cnot(c, a, b2);
  TabBackend backend(14, Rng(1));
  execute(c, backend);
  EXPECT_EQ(Steane::logical_z_expectation(backend.tableau(), a), -1.0);
  EXPECT_EQ(Steane::logical_z_expectation(backend.tableau(), b2), -1.0);
  EXPECT_TRUE(Steane::block_in_codespace(backend.tableau(), a));
  EXPECT_TRUE(Steane::block_in_codespace(backend.tableau(), b2));
}

TEST(Steane, TransversalCzIsLogicalCz) {
  // CZ_L on |+>_L|+>_L: resulting state stabilized by X_L (x) Z_L.
  Circuit c(14);
  const auto a = Block::contiguous(0);
  const auto b2 = Block::contiguous(7);
  Steane::append_encode_plus(c, a);
  Steane::append_encode_plus(c, b2);
  Steane::append_logical_cz(c, a, b2);
  TabBackend backend(14, Rng(1));
  execute(c, backend);
  auto xz = Steane::logical_x_op(14, a);
  xz.multiply_by(Steane::logical_z_op(14, b2));
  EXPECT_TRUE(backend.tableau().state_is_stabilized_by(xz));
  auto zx = Steane::logical_z_op(14, a);
  zx.multiply_by(Steane::logical_x_op(14, b2));
  EXPECT_TRUE(backend.tableau().state_is_stabilized_by(zx));
}

TEST(Steane, DecodeLogicalBitHandlesSingleErrors) {
  for (unsigned cw : Hamming74::codewords()) {
    const bool logical = std::popcount(cw) % 2 == 1;
    EXPECT_EQ(Steane::decode_logical_bit(cw), logical);
    for (int pos = 0; pos < 7; ++pos)
      EXPECT_EQ(Steane::decode_logical_bit(cw ^ (1u << pos)), logical);
  }
}

class SteaneSingleError : public ::testing::TestWithParam<int> {};

TEST_P(SteaneSingleError, PerfectCorrectFixesAnySingleError) {
  const int pos = GetParam();
  for (Pauli p : {Pauli::X, Pauli::Y, Pauli::Z}) {
    Circuit c(7);
    const auto block = Block::contiguous(0);
    Steane::append_encode_zero(c, block);
    TabBackend b(7, Rng(11));
    execute(c, b);
    b.tableau().apply_pauli(PauliString::single(7, pos, p));
    Rng rng(21);
    Steane::perfect_correct(b.tableau(), block, rng);
    EXPECT_TRUE(Steane::block_in_codespace(b.tableau(), block));
    EXPECT_EQ(Steane::logical_z_expectation(b.tableau(), block), 1.0)
        << "pauli " << pauli::to_char(p) << " at " << pos;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPositions, SteaneSingleError,
                         ::testing::Range(0, 7));

TEST(Steane, WeightTwoXErrorCausesLogicalFlip) {
  // Two X errors defeat a distance-3 code: correction yields the wrong
  // logical value (it "corrects" onto the other codeword coset).
  Circuit c(7);
  const auto block = Block::contiguous(0);
  Steane::append_encode_zero(c, block);
  TabBackend b(7, Rng(1));
  execute(c, b);
  b.tableau().apply_pauli(PauliString::from_string("XXIIIII"));
  Rng rng(2);
  Steane::perfect_correct(b.tableau(), block, rng);
  EXPECT_TRUE(Steane::block_in_codespace(b.tableau(), block));
  EXPECT_EQ(Steane::logical_z_expectation(b.tableau(), block), -1.0);
}

TEST(Steane, StabilizersCommute) {
  const auto block = Block::contiguous(0);
  std::vector<PauliString> gens;
  for (int r = 0; r < 3; ++r) {
    gens.push_back(Steane::x_stabilizer(7, block, r));
    gens.push_back(Steane::z_stabilizer(7, block, r));
  }
  for (const auto& a : gens)
    for (const auto& b : gens) EXPECT_TRUE(a.commutes_with(b));
  // Logical operators commute with all stabilizers, anticommute together.
  const auto lx = Steane::logical_x_op(7, block);
  const auto lz = Steane::logical_z_op(7, block);
  for (const auto& g : gens) {
    EXPECT_TRUE(lx.commutes_with(g));
    EXPECT_TRUE(lz.commutes_with(g));
  }
  EXPECT_FALSE(lx.commutes_with(lz));
}

TEST(Steane, EncodedStatesOrthonormal) {
  const auto zero = Steane::logical_zero();
  const auto one = Steane::logical_one();
  EXPECT_NEAR(zero.fidelity(one), 0.0, 1e-12);
  EXPECT_NEAR(zero.norm(), 1.0, 1e-12);
  EXPECT_NEAR(one.norm(), 1.0, 1e-12);
}

}  // namespace
}  // namespace eqc::codes
