// Unit + cross-validation tests for the CHP stabilizer tableau.
//
// The centerpiece is a property test: random Clifford circuits are run on
// both the tableau and the exact state vector, and every single-qubit
// probability and every Pauli expectation must agree.
#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.h"
#include "common/rng.h"
#include "pauli/pauli_string.h"
#include "qsim/gates.h"
#include "qsim/state_vector.h"
#include "stab/tableau.h"
#include "testing/circuit_gen.h"

namespace eqc::stab {
namespace {

using pauli::Pauli;
using pauli::PauliString;
using qsim::StateVector;

constexpr double kEps = 1e-9;

// <psi|P|psi> computed densely.
cplx dense_expectation(const StateVector& sv, const PauliString& p) {
  StateVector tmp = sv;
  tmp.apply_pauli(p);
  return sv.inner_product(tmp);
}

TEST(Tableau, InitialStateStabilizedByZ) {
  Tableau tab(3);
  for (std::size_t q = 0; q < 3; ++q) {
    EXPECT_TRUE(tab.is_deterministic_z(q));
    EXPECT_FALSE(tab.deterministic_z_value(q));
    EXPECT_EQ(tab.expectation_z(q), 1.0);
  }
  tab.check_invariants();
}

TEST(Tableau, XFlipsDeterministicValue) {
  Tableau tab(2);
  tab.x(1);
  EXPECT_EQ(tab.expectation_z(1), -1.0);
  EXPECT_EQ(tab.expectation_z(0), 1.0);
}

TEST(Tableau, HMakesOutcomeRandom) {
  Tableau tab(1);
  tab.h(0);
  EXPECT_FALSE(tab.is_deterministic_z(0));
  EXPECT_EQ(tab.expectation_z(0), 0.0);
}

TEST(Tableau, MeasurementCollapsesAndRepeats) {
  Rng rng(2);
  for (int rep = 0; rep < 20; ++rep) {
    Tableau tab(1);
    tab.h(0);
    const bool m = tab.measure(0, rng);
    EXPECT_TRUE(tab.is_deterministic_z(0));
    EXPECT_EQ(tab.measure(0, rng), m);
  }
}

TEST(Tableau, MeasurementIsUnbiased) {
  Rng rng(3);
  int ones = 0;
  for (int i = 0; i < 2000; ++i) {
    Tableau tab(1);
    tab.h(0);
    ones += tab.measure(0, rng) ? 1 : 0;
  }
  EXPECT_NEAR(ones / 2000.0, 0.5, 0.05);
}

TEST(Tableau, BellPairCorrelations) {
  Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    Tableau tab(2);
    tab.h(0);
    tab.cnot(0, 1);
    EXPECT_FALSE(tab.is_deterministic_z(0));
    const bool m0 = tab.measure(0, rng);
    EXPECT_TRUE(tab.is_deterministic_z(1));
    EXPECT_EQ(tab.measure(1, rng), m0);
  }
}

TEST(Tableau, GhzStabilizers) {
  Tableau tab(4);
  tab.h(0);
  for (std::size_t q = 1; q < 4; ++q) tab.cnot(0, q);
  EXPECT_TRUE(tab.state_is_stabilized_by(PauliString::from_string("XXXX")));
  EXPECT_TRUE(tab.state_is_stabilized_by(PauliString::from_string("ZZII")));
  EXPECT_TRUE(tab.state_is_stabilized_by(PauliString::from_string("IZZI")));
  EXPECT_FALSE(tab.state_is_stabilized_by(PauliString::from_string("ZIII")));
  // -XXXX does not stabilize GHZ+.
  auto minus = PauliString::from_string("XXXX");
  minus.set_phase(2);
  EXPECT_FALSE(tab.state_is_stabilized_by(minus));
}

TEST(Tableau, ApplyPauliFlipsSigns) {
  Tableau tab(2);
  tab.h(0);
  tab.cnot(0, 1);  // stabilized by XX, ZZ
  tab.apply_pauli(PauliString::from_string("ZI"));
  auto mxx = PauliString::from_string("XX");
  mxx.set_phase(2);
  EXPECT_TRUE(tab.state_is_stabilized_by(mxx));
  EXPECT_TRUE(tab.state_is_stabilized_by(PauliString::from_string("ZZ")));
}

TEST(Tableau, ResetForcesZero) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    Tableau tab(2);
    tab.h(0);
    tab.cnot(0, 1);
    tab.reset(0, rng);
    EXPECT_EQ(tab.expectation_z(0), 1.0);
    tab.check_invariants();
  }
}

TEST(Tableau, MeasurePauliDeterministicCases) {
  Rng rng(11);
  Tableau tab(2);
  tab.h(0);
  tab.cnot(0, 1);
  // XX stabilizes Bell+ -> outcome 0, deterministic.
  EXPECT_FALSE(tab.measure_pauli(PauliString::from_string("XX"), rng));
  EXPECT_FALSE(tab.measure_pauli(PauliString::from_string("ZZ"), rng));
  // After a Z error on one half, XX anti-stabilizes.
  tab.z(0);
  EXPECT_TRUE(tab.measure_pauli(PauliString::from_string("XX"), rng));
}

TEST(Tableau, MeasurePauliRandomCaseInstallsStabilizer) {
  Rng rng(13);
  for (int i = 0; i < 20; ++i) {
    Tableau tab(2);
    const bool m = tab.measure_pauli(PauliString::from_string("XX"), rng);
    auto xx = PauliString::from_string("XX");
    if (m) xx.set_phase(2);
    EXPECT_TRUE(tab.state_is_stabilized_by(xx));
    // Z0Z1 survives measuring XX (they commute).
    EXPECT_TRUE(tab.state_is_stabilized_by(PauliString::from_string("ZZ")));
    tab.check_invariants();
  }
}

TEST(Tableau, MeasurePauliRejectsNonHermitian) {
  Rng rng(1);
  Tableau tab(1);
  auto p = PauliString::single(1, 0, Pauli::X);
  p.set_phase(1);
  EXPECT_THROW(tab.measure_pauli(p, rng), ContractViolation);
}

// --- Cross-validation against the state vector ---------------------------

struct RandomCliffordCase {
  std::uint64_t seed;
  std::size_t qubits;
  int gates;
};

class CrossValidation
    : public ::testing::TestWithParam<RandomCliffordCase> {};

TEST_P(CrossValidation, TableauMatchesStateVector) {
  const auto param = GetParam();
  Rng rng(param.seed);
  Tableau tab(param.qubits);
  StateVector sv(param.qubits);

  // Shared fuzz-harness generator (src/testing), applied to both
  // representations op by op.
  const auto c =
      testing::random_clifford_circuit(param.qubits, param.gates, rng);
  for (const auto& op : c.ops()) {
    const std::size_t q = op.q[0];
    const std::size_t q2 = op.q[1];
    switch (op.kind) {
      case circuit::OpKind::H: tab.h(q); sv.apply1(q, qsim::gate_h()); break;
      case circuit::OpKind::S: tab.s(q); sv.apply1(q, qsim::gate_s()); break;
      case circuit::OpKind::Sdg:
        tab.sdg(q); sv.apply1(q, qsim::gate_sdg()); break;
      case circuit::OpKind::X: tab.x(q); sv.apply1(q, qsim::gate_x()); break;
      case circuit::OpKind::Y: tab.y(q); sv.apply1(q, qsim::gate_y()); break;
      case circuit::OpKind::Z: tab.z(q); sv.apply1(q, qsim::gate_z()); break;
      case circuit::OpKind::CNOT: tab.cnot(q, q2); sv.apply_cnot(q, q2); break;
      case circuit::OpKind::CZ: tab.cz(q, q2); sv.apply_cz(q, q2); break;
      case circuit::OpKind::Swap: tab.swap(q, q2); sv.apply_swap(q, q2); break;
      default: FAIL() << "unexpected op in Clifford gate set";
    }
  }

  tab.check_invariants();
  // Every single-qubit Z probability agrees.
  for (std::size_t q = 0; q < param.qubits; ++q)
    EXPECT_NEAR(tab.expectation_z(q), sv.expectation_z(q), kEps);

  // Every stabilizer generator reported by the tableau stabilizes the dense
  // state, and random Paulis have matching expectations.
  for (std::size_t i = 0; i < param.qubits; ++i) {
    const auto gst = tab.stabilizer(i);
    EXPECT_NEAR(dense_expectation(sv, gst).real(), 1.0, 1e-8);
  }
  Rng prng(param.seed ^ 0xABCD);
  for (int i = 0; i < 10; ++i) {
    PauliString p(param.qubits);
    for (std::size_t q = 0; q < param.qubits; ++q)
      p.set(q, static_cast<Pauli>(prng.below(4)));
    if (p.is_identity()) continue;
    EXPECT_NEAR(tab.expectation_pauli(p), dense_expectation(sv, p).real(),
                1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomCircuits, CrossValidation,
    ::testing::Values(RandomCliffordCase{101, 2, 20},
                      RandomCliffordCase{102, 3, 40},
                      RandomCliffordCase{103, 4, 60},
                      RandomCliffordCase{104, 5, 80},
                      RandomCliffordCase{105, 6, 120},
                      RandomCliffordCase{106, 4, 200},
                      RandomCliffordCase{107, 7, 150},
                      RandomCliffordCase{108, 8, 250}));

// Measurement statistics cross-check: tableau respects Born probabilities
// after a random circuit (tested via many collapses on copies).
TEST(CrossValidationMeasure, BornRule) {
  Rng circuit_rng(2024);
  Tableau tab(3);
  StateVector sv(3);
  // A fixed small circuit creating partial entanglement.
  tab.h(0); sv.apply1(0, qsim::gate_h());
  tab.cnot(0, 1); sv.apply_cnot(0, 1);
  tab.s(1); sv.apply1(1, qsim::gate_s());
  tab.h(2); sv.apply1(2, qsim::gate_h());
  tab.cz(1, 2); sv.apply_cz(1, 2);
  tab.h(1); sv.apply1(1, qsim::gate_h());

  const double p1 = sv.prob_one(1);
  Rng mrng(4);
  int ones = 0;
  const int shots = 4000;
  for (int i = 0; i < shots; ++i) {
    Tableau copy = tab;
    ones += copy.measure(1, mrng) ? 1 : 0;
  }
  EXPECT_NEAR(ones / double(shots), p1, 0.04);
}

}  // namespace
}  // namespace eqc::stab
