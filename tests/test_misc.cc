// Coverage for the smaller API surfaces: op metadata, printing, matrix
// algebra corners, tableau introspection, Pauli helpers.
#include <gtest/gtest.h>

#include <string>

#include "circuit/circuit.h"
#include "circuit/execute.h"
#include "circuit/sv_backend.h"
#include "circuit/tab_backend.h"
#include "circuit/op.h"
#include "common/assert.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "pauli/pauli_string.h"
#include "qsim/gates.h"
#include "stab/tableau.h"

namespace eqc {
namespace {

using circuit::OpKind;

TEST(OpMetadata, ArityTable) {
  EXPECT_EQ(circuit::arity(OpKind::H), 1);
  EXPECT_EQ(circuit::arity(OpKind::PrepZ), 1);
  EXPECT_EQ(circuit::arity(OpKind::MeasureZ), 1);
  EXPECT_EQ(circuit::arity(OpKind::CNOT), 2);
  EXPECT_EQ(circuit::arity(OpKind::CS), 2);
  EXPECT_EQ(circuit::arity(OpKind::CNOTIfC), 2);
  EXPECT_EQ(circuit::arity(OpKind::CCX), 3);
  EXPECT_EQ(circuit::arity(OpKind::CCZ), 3);
}

TEST(OpMetadata, CliffordTable) {
  EXPECT_TRUE(circuit::is_clifford_unitary(OpKind::H));
  EXPECT_TRUE(circuit::is_clifford_unitary(OpKind::CNOT));
  EXPECT_TRUE(circuit::is_clifford_unitary(OpKind::S));
  EXPECT_FALSE(circuit::is_clifford_unitary(OpKind::T));
  EXPECT_FALSE(circuit::is_clifford_unitary(OpKind::CS));
  EXPECT_FALSE(circuit::is_clifford_unitary(OpKind::CCX));
  EXPECT_FALSE(circuit::is_clifford_unitary(OpKind::CCZ));
}

TEST(OpMetadata, ClassicalControlTable) {
  EXPECT_TRUE(circuit::is_classically_controlled(OpKind::XIfC));
  EXPECT_TRUE(circuit::is_classically_controlled(OpKind::CZIfC));
  EXPECT_FALSE(circuit::is_classically_controlled(OpKind::X));
  EXPECT_FALSE(circuit::is_classically_controlled(OpKind::MeasureZ));
}

TEST(OpMetadata, EveryKindHasAName) {
  for (int k = 0; k <= static_cast<int>(OpKind::Idle); ++k) {
    const auto n = circuit::name(static_cast<OpKind>(k));
    EXPECT_FALSE(n.empty());
    EXPECT_NE(n, "?");
  }
}

TEST(CircuitPrinting, ToStringListsOps) {
  circuit::Circuit c(3);
  c.h(0).cnot(0, 1).ccx(0, 1, 2);
  c.measure_z(2);
  const auto s = c.to_string();
  EXPECT_NE(s.find("H 0"), std::string::npos);
  EXPECT_NE(s.find("CNOT 0 1"), std::string::npos);
  EXPECT_NE(s.find("CCX 0 1 2"), std::string::npos);
  EXPECT_NE(s.find("MZ 2 c0"), std::string::npos);
}

TEST(Matrix4, AdjointAndProduct) {
  const Mat4 cz = [] {
    Mat4 m = Mat4::identity();
    m(3, 3) = -1;
    return m;
  }();
  EXPECT_TRUE(cz.is_unitary());
  EXPECT_TRUE(approx_equal(cz * cz, Mat4::identity()));
  EXPECT_TRUE(approx_equal(cz.adjoint(), cz));
}

TEST(Matrix4, KronMatchesManual) {
  const auto hh = kron(qsim::gate_h(), qsim::gate_h());
  EXPECT_TRUE(hh.is_unitary());
  // (H (x) H)^2 = I.
  EXPECT_TRUE(approx_equal(hh * hh, Mat4::identity()));
}

TEST(PauliHelpers, CountYAndHermiticity) {
  auto p = pauli::PauliString::from_string("YIYZ");
  EXPECT_EQ(p.count_y(), 2u);
  EXPECT_TRUE(p.is_hermitian());
  p.set_phase(p.phase() + 1);
  EXPECT_FALSE(p.is_hermitian());
}

TEST(PauliHelpers, ConjugateSwapMovesOperators) {
  auto p = pauli::PauliString::from_string("XZI");
  p.conjugate_swap(0, 2);
  EXPECT_EQ(p.to_string(), "IZX");
}

TEST(PauliHelpers, ToCharRoundTrip) {
  EXPECT_EQ(pauli::to_char(pauli::Pauli::I), 'I');
  EXPECT_EQ(pauli::to_char(pauli::Pauli::X), 'X');
  EXPECT_EQ(pauli::to_char(pauli::Pauli::Y), 'Y');
  EXPECT_EQ(pauli::to_char(pauli::Pauli::Z), 'Z');
}

TEST(TableauIntrospection, DestabilizersAnticommuteWithTheirStabilizer) {
  stab::Tableau tab(4);
  tab.h(0);
  tab.cnot(0, 1);
  tab.s(2);
  tab.cz(2, 3);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(tab.stabilizer(i).commutes_with(tab.destabilizer(i)));
    for (std::size_t j = 0; j < 4; ++j)
      if (i != j) {
        EXPECT_TRUE(tab.stabilizer(i).commutes_with(tab.destabilizer(j)));
      }
  }
}

TEST(TableauIntrospection, ExpectationPauliZeroOnNonMember) {
  stab::Tableau tab(2);
  tab.h(0);
  // X0 stabilizes; Z0 anti...? Z0 anticommutes with X0 -> expectation 0.
  EXPECT_EQ(tab.expectation_pauli(pauli::PauliString::from_string("XI")), 1.0);
  EXPECT_EQ(tab.expectation_pauli(pauli::PauliString::from_string("ZI")), 0.0);
  EXPECT_EQ(tab.expectation_pauli(pauli::PauliString::from_string("IZ")), 1.0);
  auto mz = pauli::PauliString::from_string("IZ");
  mz.set_phase(2);
  EXPECT_EQ(tab.expectation_pauli(mz), -1.0);
}

TEST(Gates, RotationComposition) {
  // Rz(a) Rz(b) = Rz(a+b) up to nothing (same branch), Rx likewise.
  const auto a = qsim::gate_rz(0.4) * qsim::gate_rz(0.9);
  EXPECT_TRUE(approx_equal(a, qsim::gate_rz(1.3)));
  const auto b = qsim::gate_rx(0.4) * qsim::gate_rx(0.9);
  EXPECT_TRUE(approx_equal(b, qsim::gate_rx(1.3)));
  const auto c = qsim::gate_ry(0.4) * qsim::gate_ry(0.9);
  EXPECT_TRUE(approx_equal(c, qsim::gate_ry(1.3)));
}

TEST(Gates, PhaseVsRz) {
  // phase(t) = e^{i t/2} Rz(t).
  EXPECT_TRUE(approx_equal_up_to_phase(qsim::gate_phase(0.7),
                                       qsim::gate_rz(0.7)));
}

TEST(ControlledPhaseGates, CsAndCsdgSemantics) {
  // CS adds phase i only on |11>.
  qsim::StateVector sv(2);
  sv.apply1(0, qsim::gate_h());
  sv.apply1(1, qsim::gate_h());
  sv.apply_controlled({0}, 1, qsim::gate_s());
  EXPECT_NEAR(std::abs(sv.amplitude(0b11) - cplx(0, 0.5)), 0.0, 1e-10);
  EXPECT_NEAR(std::abs(sv.amplitude(0b01) - cplx(0.5, 0)), 0.0, 1e-10);
  // CSdg undoes it.
  sv.apply_controlled({0}, 1, qsim::gate_sdg());
  EXPECT_NEAR(std::abs(sv.amplitude(0b11) - cplx(0.5, 0)), 0.0, 1e-10);
}

TEST(ControlledPhaseGates, CircuitOpsMatchDirectApplication) {
  circuit::Circuit c(2);
  c.h(0).h(1).cs(0, 1).csdg(0, 1);
  // Build via ops and compare to plain |++>.
  qsim::StateVector want(2);
  want.apply1(0, qsim::gate_h());
  want.apply1(1, qsim::gate_h());
  // (execute requires a backend; reuse SvBackend through the public path.)
  circuit::SvBackend b(2, Rng(1));
  circuit::execute(c, b);
  EXPECT_NEAR(b.state().fidelity(want), 1.0, 1e-10);
}

TEST(TableauClassicalLowering, CsOnClassicalControl) {
  circuit::Circuit c(2);
  c.x(0).h(1).cs(0, 1).cs(0, 1);  // CS^2 with control |1> = Z on target
  circuit::TabBackend b(2, Rng(1));
  circuit::execute(c, b);
  // |-> on qubit 1: stabilized by -X.
  auto mx = pauli::PauliString::from_string("IX");
  mx.set_phase(2);
  EXPECT_TRUE(b.tableau().state_is_stabilized_by(mx));
}

TEST(TableauClassicalLowering, CsOnSuperposedControlThrows) {
  circuit::Circuit c(2);
  c.h(0).cs(0, 1);
  circuit::TabBackend b(2, Rng(1));
  EXPECT_THROW(circuit::execute(c, b), ContractViolation);
}

TEST(Rng, SplitChildrenAreDecorrelated) {
  Rng parent(5);
  Rng a = parent.split();
  Rng b = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace eqc
