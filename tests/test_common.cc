// Unit tests for the common substrate: RNG, matrices, statistics, contracts.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/assert.h"
#include "common/checkpoint.h"
#include "common/json.h"
#include "common/matrix.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stats.h"

namespace eqc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(3);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, BernoulliRate) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues reached
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(13);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroViolatesContract) {
  Rng rng(1);
  EXPECT_THROW(rng.below(0), ContractViolation);
}

TEST(Rng, BernoulliNaNViolatesContract) {
  // NaN compares false against everything, so an unguarded bernoulli(NaN)
  // would silently return false — a noise model with a NaN probability
  // would look perfectly clean.  It must be a contract violation instead.
  Rng rng(2);
  EXPECT_THROW(rng.bernoulli(std::nan("")), ContractViolation);
}

TEST(Rng, DeriveStreamSeedIsPureAndDecorrelated) {
  // Pure function of (seed, index)...
  EXPECT_EQ(derive_stream_seed(42, 7), derive_stream_seed(42, 7));
  // ...and adjacent indices (or seeds) give unrelated streams: across many
  // derivations no two collide and the derived Rngs disagree immediately.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i)
    seeds.insert(derive_stream_seed(42, i));
  for (std::uint64_t s = 10000; s < 10100; ++s)
    seeds.insert(derive_stream_seed(s, 0));
  EXPECT_EQ(seeds.size(), 1100u);
  Rng a(derive_stream_seed(42, 0)), b(derive_stream_seed(42, 1));
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitStreamsAreIndependentAndReproducible) {
  Rng parent1(99), parent2(99);
  Rng child1 = parent1.split();
  Rng child2 = parent2.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(child1(), child2());
  // Parent continues deterministically after the split.
  for (int i = 0; i < 32; ++i) EXPECT_EQ(parent1(), parent2());
}

TEST(Matrix, IdentityIsUnitary) {
  EXPECT_TRUE(Mat2::identity().is_unitary());
  EXPECT_TRUE(Mat4::identity().is_unitary());
}

TEST(Matrix, ProductAndAdjoint) {
  Mat2 h;
  const double s = 1.0 / std::sqrt(2.0);
  h(0, 0) = s;
  h(0, 1) = s;
  h(1, 0) = s;
  h(1, 1) = -s;
  EXPECT_TRUE(h.is_unitary());
  EXPECT_TRUE(approx_equal(h * h, Mat2::identity()));
  EXPECT_TRUE(approx_equal(h.adjoint(), h));
}

TEST(Matrix, NonUnitaryDetected) {
  Mat2 m;
  m(0, 0) = 2.0;
  EXPECT_FALSE(m.is_unitary());
}

TEST(Matrix, ApproxEqualUpToPhase) {
  Mat2 a = Mat2::identity();
  Mat2 b = cplx{0, 1} * Mat2::identity();
  EXPECT_FALSE(approx_equal(a, b));
  EXPECT_TRUE(approx_equal_up_to_phase(a, b));
}

TEST(Matrix, KroneckerOfIdentities) {
  EXPECT_TRUE(approx_equal(kron(Mat2::identity(), Mat2::identity()),
                           Mat4::identity()));
}

TEST(Matrix, KroneckerOrdering) {
  Mat2 z = Mat2::identity();
  z(1, 1) = -1;
  // Z (x) I: sign depends on the high bit.
  const Mat4 zi = kron(z, Mat2::identity());
  EXPECT_EQ(zi(0, 0), cplx(1, 0));
  EXPECT_EQ(zi(1, 1), cplx(1, 0));
  EXPECT_EQ(zi(2, 2), cplx(-1, 0));
  EXPECT_EQ(zi(3, 3), cplx(-1, 0));
}

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, WilsonIntervalContainsTruth) {
  const auto iv = wilson_interval(30, 100);
  EXPECT_NEAR(iv.center, 0.3, 1e-12);
  EXPECT_LT(iv.low, 0.3);
  EXPECT_GT(iv.high, 0.3);
  EXPECT_GE(iv.low, 0.0);
  EXPECT_LE(iv.high, 1.0);
}

TEST(Stats, WilsonIntervalZeroTrials) {
  const auto iv = wilson_interval(0, 0);
  EXPECT_EQ(iv.center, 0.0);
}

TEST(Stats, WilsonIntervalExtremes) {
  const auto zero = wilson_interval(0, 50);
  EXPECT_EQ(zero.center, 0.0);
  EXPECT_GT(zero.high, 0.0);  // still uncertain
  const auto all = wilson_interval(50, 50);
  EXPECT_EQ(all.center, 1.0);
  EXPECT_LT(all.low, 1.0);
}

TEST(Stats, FailureCounter) {
  FailureCounter c;
  c.add(true);
  c.add(false);
  c.add(false);
  c.add(true);
  EXPECT_EQ(c.trials, 4u);
  EXPECT_EQ(c.failures, 2u);
  EXPECT_DOUBLE_EQ(c.rate(), 0.5);
}

TEST(Parallel, ResolveJobs) {
  EXPECT_EQ(parallel::resolve_jobs(1), 1u);
  EXPECT_EQ(parallel::resolve_jobs(7), 7u);
  EXPECT_GE(parallel::resolve_jobs(0), 1u);  // 0 = hardware concurrency
}

TEST(Parallel, EveryShardRunsExactlyOnce) {
  for (unsigned jobs : {1u, 2u, 16u}) {
    std::vector<std::atomic<int>> hits(37);
    parallel::for_each_shard(37, jobs, [&](unsigned s) { ++hits[s]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(Parallel, ZeroShardsIsANoOp) {
  parallel::for_each_shard(0, 4, [](unsigned) { FAIL(); });
}

TEST(Parallel, FirstExceptionPropagates) {
  for (unsigned jobs : {1u, 4u}) {
    EXPECT_THROW(parallel::for_each_shard(
                     8, jobs,
                     [](unsigned s) {
                       if (s == 3) throw std::runtime_error("boom");
                     }),
                 std::runtime_error)
        << "jobs=" << jobs;
  }
}

TEST(Contracts, MacrosThrow) {
  EXPECT_THROW(EQC_EXPECTS(false), ContractViolation);
  EXPECT_THROW(EQC_ENSURES(false), ContractViolation);
  EXPECT_THROW(EQC_CHECK(false), ContractViolation);
  EXPECT_NO_THROW(EQC_EXPECTS(true));
}

TEST(Json, ParseDumpRoundTripIsByteStable) {
  const std::string text =
      R"({"a":1,"b":[true,false,null],"c":{"n":-7,"s":"hi\"there"},"d":0.5})";
  const auto v = json::Value::parse(text);
  EXPECT_EQ(v.dump(), text);
  // dump(parse(dump(x))) is a fixed point.
  EXPECT_EQ(json::Value::parse(v.dump()).dump(), text);
}

TEST(Json, ObjectsKeepInsertionOrder) {
  json::Value obj{json::Object{}};
  obj.set("zebra", 1);
  obj.set("alpha", 2);
  obj.set("zebra", 3);  // replace in place, order unchanged
  EXPECT_EQ(obj.dump(), R"({"zebra":3,"alpha":2})");
  EXPECT_EQ(obj.at("zebra").as_i64(), 3);
  EXPECT_EQ(obj.find("missing"), nullptr);
  EXPECT_THROW(obj.at("missing"), json::JsonError);
}

TEST(Json, SixtyFourBitIntegersRoundTripExactly) {
  // Values a double cannot represent must survive parse/dump unchanged.
  const std::uint64_t big_u = 18446744073709551615ull;  // 2^64 - 1
  const std::int64_t big_i = -9223372036854775807ll - 1;  // -2^63
  json::Value obj{json::Object{}};
  obj.set("u", big_u);
  obj.set("i", big_i);
  const auto back = json::Value::parse(obj.dump());
  EXPECT_EQ(back.at("u").as_u64(), big_u);
  EXPECT_EQ(back.at("i").as_i64(), big_i);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(json::Value::parse(""), json::JsonError);
  EXPECT_THROW(json::Value::parse("{"), json::JsonError);
  EXPECT_THROW(json::Value::parse("[1,]"), json::JsonError);
  EXPECT_THROW(json::Value::parse("{\"a\":1} trailing"), json::JsonError);
  EXPECT_THROW(json::Value::parse("nul"), json::JsonError);
  EXPECT_THROW(json::Value::parse("'single'"), json::JsonError);
}

TEST(Json, StringEscapesRoundTrip) {
  json::Value v{std::string("line\nbreak\ttab \x01 quote\" back\\")};
  const auto back = json::Value::parse(v.dump());
  EXPECT_EQ(back.as_string(), v.as_string());
  // \uXXXX escapes decode to UTF-8.
  EXPECT_EQ(json::Value::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
}

TEST(Stats, FailureCounterMergeAndInterval) {
  FailureCounter a;
  for (int i = 0; i < 60; ++i) a.add(i < 15);
  FailureCounter b;
  for (int i = 0; i < 40; ++i) b.add(i < 10);
  a.merge(b);
  EXPECT_EQ(a.trials, 100u);
  EXPECT_EQ(a.failures, 25u);
  const auto iv = a.interval();
  EXPECT_LT(iv.low, 0.25);
  EXPECT_GT(iv.high, 0.25);
  EXPECT_GT(iv.low, 0.15);
  EXPECT_LT(iv.high, 0.37);
}

TEST(Stats, MergePropagatesStoppedEarly) {
  FailureCounter a, b;
  a.add(false);
  b.add(true);
  b.stopped_early = true;
  a.merge(b);
  EXPECT_TRUE(a.stopped_early);
  FailureCounter c;
  c.add(false);
  a.merge(c);  // merging a clean counter must not clear the flag
  EXPECT_TRUE(a.stopped_early);
}

TEST(Stats, RateUnbiasedCorrectsStoppingBias) {
  // Under the stop-at-r-failures (negative binomial) rule, failures/trials
  // is biased high; (failures-1)/(trials-1) is the unbiased estimator.
  FailureCounter c;
  c.trials = 21;
  c.failures = 5;
  EXPECT_DOUBLE_EQ(c.rate_unbiased(), c.rate());  // no early stop: plain rate
  c.stopped_early = true;
  EXPECT_DOUBLE_EQ(c.rate_unbiased(), 4.0 / 20.0);
  // Degenerate cases fall back to rate() instead of dividing by zero.
  FailureCounter d;
  d.trials = 1;
  d.failures = 1;
  d.stopped_early = true;
  EXPECT_DOUBLE_EQ(d.rate_unbiased(), 1.0);
}

TEST(Stats, FailureCounterJsonRoundTrip) {
  FailureCounter c;
  c.trials = 40;
  c.failures = 4;
  c.stopped_early = true;
  const auto v = c.to_json_value();
  EXPECT_EQ(v.at("trials").as_u64(), 40u);
  EXPECT_EQ(v.at("failures").as_u64(), 4u);
  EXPECT_DOUBLE_EQ(v.at("rate").as_double(), 0.1);
  EXPECT_DOUBLE_EQ(v.at("rate_unbiased").as_double(), 3.0 / 39.0);
  EXPECT_TRUE(v.at("stopped_early").as_bool());
  const auto iv = c.interval();
  EXPECT_DOUBLE_EQ(v.at("wilson_low").as_double(), iv.low);
  EXPECT_DOUBLE_EQ(v.at("wilson_high").as_double(), iv.high);
}

// --- checkpoint plumbing ----------------------------------------------------

TEST(Checkpoint, WriteAtomicallyRoundTripsAndReplaces) {
  const std::string path = ::testing::TempDir() + "ck_atomic.json";
  std::remove(path.c_str());
  write_file_atomically(path, "first");
  std::string content;
  ASSERT_TRUE(read_file(path, content));
  EXPECT_EQ(content, "first");
  write_file_atomically(path, "second");
  ASSERT_TRUE(read_file(path, content));
  EXPECT_EQ(content, "second");
  std::remove(path.c_str());
}

TEST(Checkpoint, ReadFileFalseWhenMissing) {
  std::string content;
  EXPECT_FALSE(read_file(::testing::TempDir() + "ck_missing.json", content));
}

TEST(Checkpoint, QuarantineMovesTheEvidenceAside) {
  const std::string path = ::testing::TempDir() + "ck_quarantine.json";
  write_file_atomically(path, "damaged");
  const std::string moved = quarantine_corrupt_file(path);
  EXPECT_EQ(moved, path + ".corrupt");
  std::string content;
  EXPECT_FALSE(read_file(path, content));
  ASSERT_TRUE(read_file(moved, content));
  EXPECT_EQ(content, "damaged");
  std::remove(moved.c_str());
  // Nothing to quarantine: empty return, no throw.
  EXPECT_TRUE(quarantine_corrupt_file(path).empty());
}

TEST(Checkpoint, ParseDocumentValidatesTheEnvelope) {
  const auto doc = parse_checkpoint_document(
      R"({"kind":"test-kind","schema_version":3,"payload":7})", "test-kind", 3);
  EXPECT_EQ(doc.at("payload").as_u64(), 7u);

  EXPECT_THROW((void)parse_checkpoint_document("not json", "test-kind", 3),
               CheckpointCorrupt);
  EXPECT_THROW((void)parse_checkpoint_document("[1,2]", "test-kind", 3),
               CheckpointCorrupt);
  EXPECT_THROW((void)parse_checkpoint_document(
                   R"({"kind":"other","schema_version":3})", "test-kind", 3),
               CheckpointCorrupt);
  EXPECT_THROW((void)parse_checkpoint_document(
                   R"({"kind":"test-kind","schema_version":2})", "test-kind", 3),
               CheckpointCorrupt);
  EXPECT_THROW((void)parse_checkpoint_document(R"({"schema_version":3})",
                                               "test-kind", 3),
               CheckpointCorrupt);
  EXPECT_THROW((void)parse_checkpoint_document(R"({"kind":"test-kind"})",
                                               "test-kind", 3),
               CheckpointCorrupt);
}

TEST(CheckpointCadence, ItemCountLegFiresEveryN) {
  const auto t0 = CheckpointCadence::Clock::now();
  CheckpointCadence cadence(3, 0.0, t0);
  EXPECT_FALSE(cadence.item_done(t0));
  EXPECT_FALSE(cadence.item_done(t0));
  EXPECT_TRUE(cadence.item_done(t0));  // third item: due
  cadence.wrote(t0);
  EXPECT_FALSE(cadence.item_done(t0));  // counter reset
}

TEST(CheckpointCadence, WallTimeLegBoundsTheLossWindow) {
  using namespace std::chrono;
  const auto t0 = CheckpointCadence::Clock::now();
  CheckpointCadence cadence(1000000, 5.0, t0);
  // Far below the item leg, but past the time leg: due.
  EXPECT_FALSE(cadence.item_done(t0 + seconds(4)));
  EXPECT_TRUE(cadence.item_done(t0 + seconds(6)));
  cadence.wrote(t0 + seconds(6));
  EXPECT_FALSE(cadence.item_done(t0 + seconds(10)));  // clock restarted
  EXPECT_TRUE(cadence.item_done(t0 + seconds(12)));
}

TEST(CheckpointCadence, ZeroIntervalDisablesTheTimeLeg) {
  using namespace std::chrono;
  const auto t0 = CheckpointCadence::Clock::now();
  CheckpointCadence cadence(10, 0.0, t0);
  EXPECT_FALSE(cadence.item_done(t0 + hours(100)));
}

TEST(CheckpointCadence, EveryZeroItemsMeansEveryItem) {
  const auto t0 = CheckpointCadence::Clock::now();
  CheckpointCadence cadence(0, 0.0, t0);
  EXPECT_TRUE(cadence.item_done(t0));
}

}  // namespace
}  // namespace eqc
