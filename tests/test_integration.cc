// Cross-module integration tests: full protocols composed end-to-end.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "circuit/execute.h"
#include "circuit/sv_backend.h"
#include "circuit/tab_backend.h"
#include "codes/steane.h"
#include "common/assert.h"
#include "ensemble/machine.h"
#include "ftqc/baselines.h"
#include "ftqc/ft_tgate.h"
#include "ftqc/layout.h"
#include "ftqc/ngate.h"
#include "ftqc/recovery.h"
#include "noise/model.h"

namespace eqc {
namespace {

using circuit::Circuit;
using circuit::SvBackend;
using circuit::TabBackend;
using codes::Block;
using codes::Steane;
using pauli::Pauli;
using pauli::PauliString;

// Encoded memory: K rounds of measurement-free recovery with a planted
// error before each round; the logical qubit must survive all of them.
TEST(Integration, MemorySurvivesRepeatedRecoveryRounds) {
  ftqc::Layout layout;
  const Block data = layout.steane_block();
  auto anc = ftqc::allocate_recovery_ancillas(layout);

  Circuit prep(layout.total());
  Steane::append_encode_plus(prep, data);
  TabBackend b(layout.total(), Rng(5));
  circuit::execute(prep, b);

  Rng err_rng(17);
  for (int round = 0; round < 5; ++round) {
    // One adversarial weight-1 error per round.
    b.tableau().apply_pauli(PauliString::random_single(
        layout.total(), data.q[err_rng.below(7)], err_rng));
    Circuit rec(layout.total());
    ftqc::append_recovery(rec, data, anc);
    circuit::execute(rec, b);
    EXPECT_TRUE(Steane::block_in_codespace(b.tableau(), data))
        << "round " << round;
  }
  EXPECT_EQ(b.tableau().expectation_pauli(
                Steane::logical_x_op(layout.total(), data)),
            1.0);
}

// The same memory protocol with the measurement-based recovery baseline.
TEST(Integration, MemoryWithMeasuredRecoveryBaseline) {
  ftqc::Layout layout;
  const Block data = layout.steane_block();
  auto anc = ftqc::allocate_recovery_ancillas(layout);

  Circuit prep(layout.total());
  Steane::append_encode_zero(prep, data);
  TabBackend b(layout.total(), Rng(5));
  circuit::execute(prep, b);

  Rng err_rng(19);
  for (int round = 0; round < 5; ++round) {
    b.tableau().apply_pauli(PauliString::random_single(
        layout.total(), data.q[err_rng.below(7)], err_rng));
    Circuit rec(layout.total());
    ftqc::RecoveryOptions opt;
    opt.measurement_free = false;
    ftqc::append_recovery(rec, data, anc, opt);
    circuit::execute(rec, b);
  }
  EXPECT_TRUE(Steane::block_in_codespace(b.tableau(), data));
  EXPECT_EQ(Steane::logical_z_expectation(b.tableau(), data), 1.0);
}

// T gate composed with recovery: apply the measurement-free T, inject an
// error, recover, and verify the state is still T_L |+>_L.
TEST(Integration, TGateThenRecovery) {
  const double inv = 1.0 / std::sqrt(2.0);
  const cplx omega = std::polar(1.0, M_PI / 4);

  ftqc::Layout layout;
  ftqc::TGateRegisters regs;
  regs.data = layout.block(codes::steane_code());
  regs.special = layout.block(codes::steane_code());
  regs.n_anc.copies = layout.reg(1);
  regs.n_anc.syndrome = {0, 1, 2};
  regs.n_anc.work = {3, 4};
  regs.control.assign(regs.special.q.begin(), regs.special.q.end());
  const auto ec_ancilla = layout.bit();

  // Initial state: |+>_L (x) |psi_0>.
  const auto data_amps = Steane::encoded_amplitudes(inv, inv);
  const auto psi0 = Steane::encoded_amplitudes(inv, inv * omega);
  std::vector<cplx> amp(std::uint64_t{1} << layout.total(), cplx{0, 0});
  for (unsigned d = 0; d < 128; ++d)
    for (unsigned s = 0; s < 128; ++s)
      amp[(std::uint64_t{s} << 7) | d] = data_amps[d] * psi0[s];
  SvBackend b(qsim::StateVector::from_amplitudes(std::move(amp)), Rng(3));

  Circuit gadget(layout.total());
  ftqc::NGateOptions opt;
  opt.repetitions = 1;
  opt.syndrome_check = false;
  ftqc::append_ft_t_gadget(gadget, regs, opt);
  circuit::execute(gadget, b);

  // Inject a weight-1 error, then run (noiseless, measured) verification EC.
  b.state().apply_pauli(
      PauliString::single(layout.total(), regs.data.q[4], Pauli::Y));
  Circuit rec(layout.total());
  ftqc::append_measured_verification_ec(rec, codes::steane_code(),
                                        regs.data, ec_ancilla);
  circuit::execute(rec, b);

  const auto want = Steane::encoded_amplitudes(inv, omega * inv);
  std::vector<std::size_t> qs(regs.data.q.begin(), regs.data.q.end());
  EXPECT_NEAR(b.state().subsystem_fidelity(qs, want), 1.0, 1e-9);
}

// Two encoded qubits: transversal CNOT entangles them into a logical Bell
// pair; measurement-free recovery on both blocks preserves it.
TEST(Integration, LogicalBellPairSurvivesRecovery) {
  ftqc::Layout layout;
  const Block a = layout.steane_block();
  const Block c = layout.steane_block();
  auto anc = ftqc::allocate_recovery_ancillas(layout);

  Circuit prep(layout.total());
  Steane::append_encode_plus(prep, a);
  Steane::append_encode_zero(prep, c);
  Steane::append_logical_cnot(prep, a, c);
  TabBackend b(layout.total(), Rng(7));
  circuit::execute(prep, b);

  // Logical Bell stabilizers X_L X_L and Z_L Z_L.
  auto xx = Steane::logical_x_op(layout.total(), a);
  xx.multiply_by(Steane::logical_x_op(layout.total(), c));
  auto zz = Steane::logical_z_op(layout.total(), a);
  zz.multiply_by(Steane::logical_z_op(layout.total(), c));
  EXPECT_TRUE(b.tableau().state_is_stabilized_by(xx));
  EXPECT_TRUE(b.tableau().state_is_stabilized_by(zz));

  // Damage each block and recover both.
  b.tableau().apply_pauli(
      PauliString::single(layout.total(), a.q[2], Pauli::X));
  b.tableau().apply_pauli(
      PauliString::single(layout.total(), c.q[5], Pauli::Z));
  for (const Block* blk : {&a, &c}) {
    Circuit rec(layout.total());
    ftqc::append_recovery(rec, *blk, anc);
    circuit::execute(rec, b);
  }
  EXPECT_TRUE(b.tableau().state_is_stabilized_by(xx));
  EXPECT_TRUE(b.tableau().state_is_stabilized_by(zz));
}

// The ensemble machine refuses protocols that need measurement, but runs
// the measurement-free N gate and reads the classical register out as an
// expectation value — the full "bulk fault tolerance" story end to end.
TEST(Integration, EnsembleRunsTheNGate) {
  ftqc::Layout layout;
  const Block source = layout.steane_block();
  auto anc = ftqc::allocate_ngate_ancillas(layout, 3);
  const auto out = layout.reg(7);

  Circuit c(layout.total());
  Steane::append_encode_zero(c, source);
  Steane::append_logical_x(c, source);  // |1>_L
  ftqc::append_ngate(c, source, out, anc);

  ensemble::EnsembleMachine machine(layout.total(), 0, 1);
  machine.run(c);
  for (auto q : out) EXPECT_NEAR(machine.readout_z(q), -1.0, 1e-9);
}

// Under sampled per-computer noise the ensemble's classical-register signal
// degrades gracefully rather than collapsing (each computer still holds a
// definite register value).
TEST(Integration, EnsembleNGateUnderNoise) {
  // Small configuration (1 repetition, 15 qubits) so the multi-trajectory
  // state-vector ensemble stays fast; the FT properties themselves are the
  // tableau experiments' job.
  ftqc::Layout layout;
  const Block source = layout.steane_block();
  auto anc = ftqc::allocate_ngate_ancillas(layout, 1);
  const auto out = layout.reg(3);

  Circuit c(layout.total());
  Steane::append_encode_zero(c, source);
  Steane::append_logical_x(c, source);
  ftqc::NGateOptions opt;
  opt.repetitions = 1;
  ftqc::append_ngate(c, source, out, anc, opt);

  ensemble::EnsembleMachine machine(layout.total(), 12, 21);
  const auto model = noise::NoiseModel::paper_model(1e-3);
  machine.run(c, &model);
  double sum = 0;
  for (auto q : out) sum += machine.readout_z(q);
  EXPECT_LT(sum / 3.0, -0.7);  // still clearly reads "1"
}

}  // namespace
}  // namespace eqc
